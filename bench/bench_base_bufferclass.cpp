// §1/§2 baseline cost: structured buffer pools (Gerla-Kleinrock / Karol et
// al.) — a packet moves to a higher buffer class each hop, and with at
// least as many classes as the longest path there is no cyclic buffer
// dependency. The drawback the paper leans on: "commodity switches with
// shallow buffer can support at most 2 lossless traffic classes", while
// large-diameter networks need many.
//
// Sweeps the class count on deadlocking rings of increasing size and
// reports the minimum class count that (a) makes the dependency graph
// acyclic and (b) avoids deadlock in simulation.
//
// Flags: --run_ms=8.
#include <cstdio>

#include "dcdl/analysis/bdg.hpp"
#include "dcdl/common/flags.hpp"
#include "dcdl/scenarios/scenario.hpp"
#include "dcdl/stats/csv.hpp"

using namespace dcdl;
using namespace dcdl::literals;
using namespace dcdl::scenarios;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const Time run_for = Time{flags.get_int("run_ms", 8) * 1'000'000'000};
  flags.check_unused();

  stats::CsvWriter csv;
  std::printf("# baseline: structured buffer pool (hop-count classes) on "
              "deadlocking rings\n");
  csv.header({"ring_size", "span_hops", "classes", "cbd_acyclic",
              "sim_deadlock"});

  for (const int n : {3, 5, 8}) {
    const int span = std::min(3, n - 1);
    for (int classes = 1; classes <= 8; ++classes) {
      RingDeadlockParams p;
      p.num_switches = n;
      p.span = span;
      p.num_classes = classes;
      p.hop_classes = true;
      Scenario s = make_ring_deadlock(p);
      const bool acyclic =
          !analysis::BufferDependencyGraph::build(*s.net, s.flows).has_cycle();
      const RunSummary r = run_and_check(s, run_for, 10_ms);
      csv.row({stats::CsvWriter::num(std::int64_t{n}),
               stats::CsvWriter::num(std::int64_t{span}),
               stats::CsvWriter::num(std::int64_t{classes}),
               stats::CsvWriter::num(std::int64_t{acyclic}),
               stats::CsvWriter::num(std::int64_t{r.deadlocked})});
    }
  }
  std::printf("# expectation: acyclic (and deadlock-free) once classes > "
              "span hops — i.e. class demand grows with path length, beyond "
              "the ~2 lossless classes of shallow-buffer switches\n");
  return 0;
}
