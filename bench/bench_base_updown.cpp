// §1/§2 baseline cost: "Approaches based on routing restriction usually
// waste link bandwidth and limit throughput performance."
//
// Compares shortest-path ECMP against deadlock-free up*/down* routing on a
// fat-tree and on Jellyfish, under random-permutation greedy traffic:
//   - cyclic-buffer-dependency presence (up*/down* must be acyclic),
//   - aggregate and worst-flow goodput (the price of the restriction),
//   - average path stretch.
//
// Flags: --run_ms=5, --seed=1.
#include <cstdio>
#include <string>

#include "dcdl/analysis/bdg.hpp"
#include "dcdl/common/flags.hpp"
#include "dcdl/common/rng.hpp"
#include "dcdl/device/host.hpp"
#include "dcdl/device/switch.hpp"
#include "dcdl/routing/compute.hpp"
#include "dcdl/stats/csv.hpp"
#include "dcdl/topo/generators.hpp"

using namespace dcdl;
using namespace dcdl::literals;
using namespace dcdl::topo;

namespace {

struct RoutingResult {
  bool cbd_cycle = false;
  double agg_gbps = 0;
  double worst_gbps = 0;
  double mean_hops = 0;
};

// Walks installed tables to measure the path length of one flow.
int path_hops(const Network& net, FlowId flow, NodeId src, NodeId dst) {
  NodeId cur = net.topo().peer(src, 0).peer_node;
  int hops = 0;
  while (net.topo().is_switch(cur) && hops < 64) {
    const auto eg = net.switch_at(cur).routes().lookup(flow, dst);
    if (!eg) return -1;
    cur = net.topo().peer(cur, *eg).peer_node;
    ++hops;
  }
  return cur == dst ? hops : -1;
}

RoutingResult run_one(const Topology& base_topo,
                      const std::vector<NodeId>& hosts, bool updown,
                      std::uint64_t seed, Time run_for) {
  Simulator sim;
  Topology topo = base_topo;
  Network net(sim, topo, NetConfig{});
  if (updown) {
    routing::install_up_down(net);
  } else {
    routing::install_shortest_paths(net);
  }

  // Random permutation traffic.
  std::vector<NodeId> dsts = hosts;
  Rng rng(seed);
  rng.shuffle(dsts.begin(), dsts.end());
  std::vector<FlowSpec> flows;
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    if (hosts[i] == dsts[i]) continue;
    FlowSpec f;
    f.id = static_cast<FlowId>(i + 1);
    f.src_host = hosts[i];
    f.dst_host = dsts[i];
    f.packet_bytes = 1000;
    f.ttl = 64;
    net.host_at(f.src_host).add_flow(f);
    flows.push_back(f);
  }

  RoutingResult res;
  res.cbd_cycle =
      analysis::BufferDependencyGraph::build(net, flows).has_cycle();
  int hop_count = 0, hop_flows = 0;
  for (const FlowSpec& f : flows) {
    const int h = path_hops(net, f.id, f.src_host, f.dst_host);
    if (h > 0) {
      hop_count += h;
      ++hop_flows;
    }
  }
  res.mean_hops = hop_flows ? static_cast<double>(hop_count) / hop_flows : 0;

  sim.run_until(run_for);
  double worst = 1e30;
  double total = 0;
  for (const FlowSpec& f : flows) {
    const double gbps =
        static_cast<double>(net.host_at(f.dst_host).delivered_bytes(f.id)) *
        8 / run_for.sec() / 1e9;
    total += gbps;
    worst = std::min(worst, gbps);
  }
  res.agg_gbps = total;
  res.worst_gbps = flows.empty() ? 0 : worst;
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const Time run_for = Time{flags.get_int("run_ms", 5) * 1'000'000'000};
  const std::uint64_t seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  flags.check_unused();

  stats::CsvWriter csv;
  std::printf("# baseline: deadlock-free up*/down* routing vs shortest-path "
              "ECMP, random permutation traffic\n");
  csv.header({"topology", "routing", "cbd_cycle", "agg_goodput_gbps",
              "worst_flow_gbps", "mean_path_hops"});

  const FatTreeTopo ft = make_fat_tree(4);
  const JellyfishTopo jf = make_jellyfish(12, 4, 2, 21);
  struct Case {
    std::string name;
    const Topology* topo;
    std::vector<NodeId> hosts;
  };
  std::vector<NodeId> jf_hosts;
  for (const auto& per_switch : jf.hosts) {
    for (const NodeId h : per_switch) jf_hosts.push_back(h);
  }
  for (const Case& c : {Case{"fat_tree_k4", &ft.topo, ft.all_hosts},
                        Case{"jellyfish_12x4", &jf.topo, jf_hosts}}) {
    for (const bool updown : {false, true}) {
      const RoutingResult r = run_one(*c.topo, c.hosts, updown, seed, run_for);
      csv.row({c.name, updown ? "up_down" : "ecmp",
               stats::CsvWriter::num(std::int64_t{r.cbd_cycle}),
               stats::CsvWriter::num(r.agg_gbps),
               stats::CsvWriter::num(r.worst_gbps),
               stats::CsvWriter::num(r.mean_hops)});
    }
  }
  std::printf("# paper expectation: up*/down* removes the CBD cycle but "
              "costs goodput (path restriction, root bottleneck), "
              "especially on the non-tree topology\n");
  return 0;
}
