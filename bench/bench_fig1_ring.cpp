// Figure 1: the canonical PFC-induced deadlock — circulating traffic on a
// switch ring drives every ingress counter past the PFC threshold, the
// PAUSE chain closes on itself, and throughput collapses to zero.
//
// Prints time-to-deadlock and pre/post throughput for ring sizes and flow
// spans, demonstrating the figure's "no switch in the cycle can proceed"
// and the back-pressure victim effect.
//
// Flags: --run_ms=20.
#include <cstdio>

#include "dcdl/analysis/bdg.hpp"
#include "dcdl/common/flags.hpp"
#include "dcdl/device/host.hpp"
#include "dcdl/scenarios/scenario.hpp"
#include "dcdl/stats/csv.hpp"

using namespace dcdl;
using namespace dcdl::literals;
using namespace dcdl::scenarios;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const Time run_for = Time{flags.get_int("run_ms", 20) * 1'000'000'000};
  flags.check_unused();

  stats::CsvWriter csv;
  std::printf("# Fig.1: PFC-induced deadlock on a switch ring\n");
  csv.header({"switches", "span", "cbd_cycle", "deadlock", "detect_ms",
              "goodput_gbps_before_lock", "trapped_bytes"});

  for (const int n : {3, 4, 5, 6, 8}) {
    for (int span = 2; span <= std::min(n - 1, 4); ++span) {
      RingDeadlockParams p;
      p.num_switches = n;
      p.span = span;
      Scenario s = make_ring_deadlock(p);
      const auto bdg = analysis::BufferDependencyGraph::build(*s.net, s.flows);
      const RunSummary r = run_and_check(s, run_for, 10_ms);
      std::int64_t delivered = 0;
      for (const auto& [flow, bytes] : r.delivered) delivered += bytes;
      const double window_ms =
          r.detected_at ? r.detected_at->ms() : run_for.ms();
      const double goodput =
          window_ms > 0 ? static_cast<double>(delivered) * 8 /
                              (window_ms * 1e-3) / 1e9
                        : 0.0;
      csv.row({stats::CsvWriter::num(std::int64_t{n}),
               stats::CsvWriter::num(std::int64_t{span}),
               stats::CsvWriter::num(std::int64_t{bdg.has_cycle()}),
               stats::CsvWriter::num(std::int64_t{r.deadlocked}),
               stats::CsvWriter::num(r.detected_at ? r.detected_at->ms() : -1.0),
               stats::CsvWriter::num(goodput),
               stats::CsvWriter::num(r.trapped_bytes)});
    }
  }
  std::printf("# paper expectation: spans >= 2 on small rings form the Fig.1 "
              "cycle; once locked, throughput -> 0\n");
  return 0;
}
