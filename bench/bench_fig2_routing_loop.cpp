// §3.1 / Figure 2: a single looping flow creates a cyclic buffer
// dependency but deadlocks only above the boundary-state threshold.
//
// Series 1: injection-rate sweep at the paper's testbed parameters
//           (B=40G, n=2, TTL=16; threshold 5 Gbps) — deadlock y/n plus
//           detection time and trapped bytes.
// Series 2: TTL sweep at fixed rate (deadlock iff TTL > n*B/r).
// Series 3: loop-length sweep at fixed rate and TTL.
// Series 4: §4 rate-limiting mitigation — greedy host, switch-side
//           ingress shaper swept across the threshold.
//
// Flags: --bw_gbps, --ttl, --loop_len, --run_ms.
#include <cstdio>

#include "dcdl/analysis/boundary.hpp"
#include "dcdl/common/flags.hpp"
#include "dcdl/device/switch.hpp"
#include "dcdl/scenarios/scenario.hpp"
#include "dcdl/stats/csv.hpp"

using namespace dcdl;
using namespace dcdl::literals;
using analysis::BoundaryModel;
using namespace dcdl::scenarios;

namespace {

struct Outcome {
  bool deadlocked;
  double detect_ms;
  std::int64_t trapped;
};

Outcome run_loop(RoutingLoopParams p, Time run_for, Rate shaper = Rate::zero()) {
  Scenario s = make_routing_loop(p);
  if (!shaper.is_zero()) {
    const NodeId s0 = s.node("S0");
    const NodeId h0 = s.node("H0");
    s.net->switch_at(s0).set_ingress_shaper(*s.topo->port_towards(s0, h0),
                                            shaper, p.packet_bytes);
  }
  const RunSummary r = run_and_check(s, run_for, run_for + 10_ms);
  return Outcome{r.deadlocked, r.detected_at ? r.detected_at->ms() : -1.0,
                 r.trapped_bytes};
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  RoutingLoopParams base;
  base.bandwidth = Rate::gbps(flags.get_double("bw_gbps", 40));
  base.ttl = static_cast<int>(flags.get_int("ttl", 16));
  base.loop_len = static_cast<int>(flags.get_int("loop_len", 2));
  const Time run_for = Time{flags.get_int("run_ms", 6) * 1'000'000'000};
  flags.check_unused();

  stats::CsvWriter csv;
  const Rate thr = BoundaryModel::deadlock_threshold(base.loop_len,
                                                     base.bandwidth, base.ttl);
  std::printf("# Fig.2 / §3.1: routing-loop deadlock vs injection rate\n");
  std::printf("# analytic threshold n*B/TTL = %.3f Gbps (paper: 5 Gbps at "
              "n=2,B=40G,TTL=16)\n", thr.as_gbps());

  csv.section("series 1: injection rate sweep");
  csv.header({"inject_gbps", "analytic_deadlock", "sim_deadlock",
              "detect_ms", "trapped_bytes"});
  for (double g = 1.0; g <= 10.0; g += 0.5) {
    RoutingLoopParams p = base;
    p.inject = Rate::gbps(g);
    const Outcome o = run_loop(p, run_for);
    csv.row({stats::CsvWriter::num(g),
             stats::CsvWriter::num(std::int64_t{
                 BoundaryModel::predicts_deadlock(p.loop_len, p.bandwidth,
                                                  p.ttl, p.inject)}),
             stats::CsvWriter::num(std::int64_t{o.deadlocked}),
             stats::CsvWriter::num(o.detect_ms),
             stats::CsvWriter::num(o.trapped)});
  }

  csv.section("series 2: TTL sweep at 6 Gbps (deadlock iff TTL > n*B/r = 13.3)");
  csv.header({"ttl", "analytic_deadlock", "sim_deadlock"});
  for (const int ttl : {4, 8, 12, 13, 14, 16, 24, 32, 48, 64}) {
    RoutingLoopParams p = base;
    p.ttl = ttl;
    p.inject = Rate::gbps(6);
    const Outcome o = run_loop(p, run_for);
    csv.row({stats::CsvWriter::num(std::int64_t{ttl}),
             stats::CsvWriter::num(std::int64_t{BoundaryModel::predicts_deadlock(
                 p.loop_len, p.bandwidth, ttl, p.inject)}),
             stats::CsvWriter::num(std::int64_t{o.deadlocked})});
  }

  csv.section("series 3: loop length sweep at 6 Gbps, TTL 16");
  csv.header({"loop_len", "threshold_gbps", "analytic_deadlock", "sim_deadlock"});
  for (const int n : {2, 3, 4, 5, 6, 8}) {
    RoutingLoopParams p = base;
    p.loop_len = n;
    p.inject = Rate::gbps(6);
    const Outcome o = run_loop(p, run_for);
    csv.row({stats::CsvWriter::num(std::int64_t{n}),
             stats::CsvWriter::num(BoundaryModel::deadlock_threshold(
                                       n, p.bandwidth, p.ttl)
                                       .as_gbps()),
             stats::CsvWriter::num(std::int64_t{BoundaryModel::predicts_deadlock(
                 n, p.bandwidth, p.ttl, p.inject)}),
             stats::CsvWriter::num(std::int64_t{o.deadlocked})});
  }

  csv.section(
      "series 4: rate-limit mitigation (greedy host, switch ingress shaper)");
  csv.header({"shaper_gbps", "sim_deadlock"});
  for (double g = 2.0; g <= 9.0; g += 1.0) {
    RoutingLoopParams p = base;
    p.inject = Rate::zero();  // greedy
    const Outcome o = run_loop(p, run_for, Rate::gbps(g));
    csv.row({stats::CsvWriter::num(g),
             stats::CsvWriter::num(std::int64_t{o.deadlocked})});
  }
  return 0;
}
