// §3.1 / Figure 2: a single looping flow creates a cyclic buffer
// dependency but deadlocks only above the boundary-state threshold.
//
// Series 1: injection-rate sweep at the paper's testbed parameters
//           (B=40G, n=2, TTL=16; threshold 5 Gbps) — deadlock y/n plus
//           detection time and trapped bytes.
// Series 2: TTL sweep at fixed rate (deadlock iff TTL > n*B/r).
// Series 3: loop-length sweep at fixed rate and TTL.
// Series 4: §4 rate-limiting mitigation — greedy host, switch-side
//           ingress shaper swept across the threshold.
//
// All four series expand into one run list executed by the dcdl::campaign
// thread pool; series 4 rides on a bench-registered "routing_loop_shaped"
// scenario (the built-in loop plus a switch ingress shaper).
//
// Flags: --bw_gbps, --ttl, --loop_len, --run_ms, --jobs, --out=fig2.json,
// --timing.
#include <cstdio>
#include <vector>

#include "dcdl/analysis/boundary.hpp"
#include "dcdl/campaign/campaign.hpp"
#include "dcdl/common/flags.hpp"
#include "dcdl/device/switch.hpp"
#include "dcdl/scenarios/scenario.hpp"
#include "dcdl/stats/csv.hpp"

using namespace dcdl;
using namespace dcdl::literals;
using namespace dcdl::campaign;
using analysis::BoundaryModel;

namespace {

// The built-in routing loop plus a switch-side ingress shaper on S0's
// host-facing port (§4 rate-limiting mitigation; host stays greedy).
void register_shaped_loop(ScenarioRegistry& reg) {
  const ScenarioDef& base = reg.at("routing_loop");
  ScenarioDef def;
  def.name = "routing_loop_shaped";
  def.description =
      "paper §4: routing loop with a switch ingress shaper at the source "
      "edge port";
  def.params = base.params;
  def.params.push_back(
      {"shaper_gbps", ParamKind::kDouble, "gbps", "ingress shaper rate"});
  def.make = [make = base.make](const ParamMap& pm) {
    scenarios::Scenario s = make(pm);
    const NodeId s0 = s.node("S0");
    const NodeId h0 = s.node("H0");
    const auto packet_bytes =
        static_cast<std::uint32_t>(pm.get_int("packet_bytes", 1000));
    s.net->switch_at(s0).set_ingress_shaper(
        *s.topo->port_towards(s0, h0),
        Rate::gbps(pm.get_double("shaper_gbps", 0)), packet_bytes);
    return s;
  };
  reg.add(std::move(def));
}

std::vector<RunSpec> expand_into(const SweepSpec& spec,
                                 std::vector<RunSpec>& all) {
  std::vector<RunSpec> runs = expand(spec);
  for (RunSpec& r : runs) {
    r.run_index = static_cast<int>(all.size());
    all.push_back(r);
  }
  return runs;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const double bw_gbps = flags.get_double("bw_gbps", 40);
  const int ttl = static_cast<int>(flags.get_int("ttl", 16));
  const int loop_len = static_cast<int>(flags.get_int("loop_len", 2));
  const Time run_for = Time{flags.get_int("run_ms", 6) * 1'000'000'000};
  const int jobs = flags.jobs();
  const std::string out_path = flags.out();
  const bool timing = flags.get_bool("timing", false);
  flags.check_unused();

  const Rate bandwidth = Rate::gbps(bw_gbps);
  ScenarioRegistry& reg = ScenarioRegistry::global();
  register_shaped_loop(reg);

  SweepSpec base;
  base.scenario = "routing_loop";
  base.base.set("bw_gbps", ParamValue::of_double(bw_gbps));
  base.base.set("ttl", ParamValue::of_int(ttl));
  base.base.set("loop_len", ParamValue::of_int(loop_len));
  base.run_for = run_for;
  base.drain_grace = run_for + 10_ms;

  std::vector<RunSpec> all;

  // Series 1: injection rate 1..10 Gbps in 0.5 steps.
  SweepSpec s1 = base;
  GridAxis inject_axis{"inject", {}};
  for (double g = 1.0; g <= 10.0; g += 0.5) {
    inject_axis.values.push_back(ParamValue::of_double(g));
  }
  s1.axes = {inject_axis};
  const std::vector<RunSpec> runs1 = expand_into(s1, all);

  // Series 2: TTL sweep at 6 Gbps.
  SweepSpec s2 = base;
  s2.base.set("inject", ParamValue::of_double(6));
  GridAxis ttl_axis{"ttl", {}};
  const std::vector<int> ttls = {4, 8, 12, 13, 14, 16, 24, 32, 48, 64};
  for (const int t : ttls) ttl_axis.values.push_back(ParamValue::of_int(t));
  s2.axes = {ttl_axis};
  const std::vector<RunSpec> runs2 = expand_into(s2, all);

  // Series 3: loop length sweep at 6 Gbps.
  SweepSpec s3 = base;
  s3.base.set("inject", ParamValue::of_double(6));
  GridAxis len_axis{"loop_len", {}};
  const std::vector<int> lens = {2, 3, 4, 5, 6, 8};
  for (const int n : lens) len_axis.values.push_back(ParamValue::of_int(n));
  s3.axes = {len_axis};
  const std::vector<RunSpec> runs3 = expand_into(s3, all);

  // Series 4: greedy host behind a swept switch ingress shaper.
  SweepSpec s4 = base;
  s4.scenario = "routing_loop_shaped";
  s4.base.set("inject", ParamValue::of_double(0));  // greedy
  GridAxis shaper_axis{"shaper_gbps", {}};
  for (double g = 2.0; g <= 9.0; g += 1.0) {
    shaper_axis.values.push_back(ParamValue::of_double(g));
  }
  s4.axes = {shaper_axis};
  const std::vector<RunSpec> runs4 = expand_into(s4, all);

  ExecutorOptions opts;
  opts.jobs = jobs;
  CampaignExecutor exec(reg, opts);
  const CampaignResult result = exec.run(all, base.root_seed);
  std::fprintf(stderr, "# campaign: %zu runs in %.0f ms wall on %d job(s)\n",
               result.records.size(), result.total_wall_ms, result.jobs);

  stats::CsvWriter csv;
  const Rate thr = BoundaryModel::deadlock_threshold(loop_len, bandwidth, ttl);
  std::printf("# Fig.2 / §3.1: routing-loop deadlock vs injection rate\n");
  std::printf("# analytic threshold n*B/TTL = %.3f Gbps (paper: 5 Gbps at "
              "n=2,B=40G,TTL=16)\n", thr.as_gbps());

  std::size_t next = 0;
  csv.section("series 1: injection rate sweep");
  csv.header({"inject_gbps", "analytic_deadlock", "sim_deadlock",
              "detect_ms", "trapped_bytes"});
  for (std::size_t i = 0; i < runs1.size(); ++i, ++next) {
    const RunRecord& r = result.records[next];
    const Rate inject = Rate::gbps(r.params.get_double("inject", 0));
    csv.row({stats::CsvWriter::num(inject.as_gbps()),
             stats::CsvWriter::num(std::int64_t{BoundaryModel::predicts_deadlock(
                 loop_len, bandwidth, ttl, inject)}),
             stats::CsvWriter::num(std::int64_t{r.deadlocked}),
             stats::CsvWriter::num(r.detect_ms),
             stats::CsvWriter::num(r.trapped_bytes)});
  }

  csv.section("series 2: TTL sweep at 6 Gbps (deadlock iff TTL > n*B/r = 13.3)");
  csv.header({"ttl", "analytic_deadlock", "sim_deadlock"});
  for (std::size_t i = 0; i < runs2.size(); ++i, ++next) {
    const RunRecord& r = result.records[next];
    const int t = static_cast<int>(r.params.get_int("ttl", 0));
    csv.row({stats::CsvWriter::num(std::int64_t{t}),
             stats::CsvWriter::num(std::int64_t{BoundaryModel::predicts_deadlock(
                 loop_len, bandwidth, t, Rate::gbps(6))}),
             stats::CsvWriter::num(std::int64_t{r.deadlocked})});
  }

  csv.section("series 3: loop length sweep at 6 Gbps, TTL 16");
  csv.header({"loop_len", "threshold_gbps", "analytic_deadlock", "sim_deadlock"});
  for (std::size_t i = 0; i < runs3.size(); ++i, ++next) {
    const RunRecord& r = result.records[next];
    const int n = static_cast<int>(r.params.get_int("loop_len", 0));
    csv.row({stats::CsvWriter::num(std::int64_t{n}),
             stats::CsvWriter::num(
                 BoundaryModel::deadlock_threshold(n, bandwidth, ttl)
                     .as_gbps()),
             stats::CsvWriter::num(std::int64_t{BoundaryModel::predicts_deadlock(
                 n, bandwidth, ttl, Rate::gbps(6))}),
             stats::CsvWriter::num(std::int64_t{r.deadlocked})});
  }

  csv.section(
      "series 4: rate-limit mitigation (greedy host, switch ingress shaper)");
  csv.header({"shaper_gbps", "sim_deadlock"});
  for (std::size_t i = 0; i < runs4.size(); ++i, ++next) {
    const RunRecord& r = result.records[next];
    csv.row({stats::CsvWriter::num(r.params.get_double("shaper_gbps", 0)),
             stats::CsvWriter::num(std::int64_t{r.deadlocked})});
  }

  if (!out_path.empty()) {
    WriteOptions wopts;
    wopts.include_timing = timing;
    write_text_file(out_path, to_json(result, wopts));
    std::fprintf(stderr, "# wrote %s\n", out_path.c_str());
  }
  return 0;
}
