// §3.2 / Figure 3: two flows create a cyclic buffer dependency among four
// switches, yet no deadlock forms.
//
// Regenerates:
//   3(c) pause events at links L1..L4 (expected: L2 and L4 pause
//        continuously, L1 and L3 never),
//   3(d-g) per-flow instantaneous buffer occupancy at the four RX1 queues
//        sampled every 1 us (expected: the critical queues oscillate in a
//        band around the 40 KB PFC threshold; the others stay well below),
// and verifies the headline: cyclic dependency present, no deadlock.
//
// Flags: --run_ms=10, --events (dump raw pause transitions), --samples
// (dump occupancy series), --max_rows.
#include <cstdio>

#include "dcdl/analysis/bdg.hpp"
#include "dcdl/common/flags.hpp"
#include "dcdl/scenarios/scenario.hpp"
#include "dcdl/stats/csv.hpp"
#include "dcdl/stats/pause_log.hpp"
#include "dcdl/stats/sampler.hpp"

using namespace dcdl;
using namespace dcdl::literals;
using namespace dcdl::scenarios;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const Time run_for = Time{flags.get_int("run_ms", 10) * 1'000'000'000};
  const bool dump_events = flags.get_bool("events", false);
  const bool dump_samples = flags.get_bool("samples", false);
  const std::int64_t max_rows = flags.get_int("max_rows", 200);
  flags.check_unused();

  FourSwitchParams p;  // defaults reproduce the paper's §3.2 setup
  Scenario s = make_four_switch(p);

  const auto bdg = analysis::BufferDependencyGraph::build(*s.net, s.flows);
  std::printf("# Fig.3: two flows, four switches (A,B,C,D)\n");
  std::printf("# cyclic buffer dependency present: %d (paper: yes, 4-queue cycle)\n",
              bdg.has_cycle() ? 1 : 0);

  stats::PauseEventLog log(*s.net);
  // Fig 3(d-g): flow 2 at A.RX1, flow 1 at B.RX1, flow 1 at C.RX1,
  // flow 2 at D.RX1.
  stats::OccupancySampler sampler(
      *s.net,
      {{s.node("A"), s.cycle_queues[3].port, 0, FlowId{2}},
       {s.node("B"), s.cycle_queues[0].port, 0, FlowId{1}},
       {s.node("C"), s.cycle_queues[1].port, 0, FlowId{1}},
       {s.node("D"), s.cycle_queues[2].port, 0, FlowId{2}}},
      1_us);
  sampler.start(Time::zero(), run_for);
  s.sim->run_until(run_for);

  stats::CsvWriter csv;
  csv.section("fig3c: pause activity per link (paper: L2,L4 pause; L1,L3 never)");
  csv.header({"link", "pause_events", "total_paused_ms", "paused_fraction"});
  for (std::size_t i = 0; i < s.cycle_queues.size(); ++i) {
    const Time paused = log.total_paused(s.cycle_queues[i], s.sim->now());
    csv.row({s.cycle_labels[i],
             stats::CsvWriter::num(
                 static_cast<std::int64_t>(log.pause_count(s.cycle_queues[i]))),
             stats::CsvWriter::num(paused.ms()),
             stats::CsvWriter::num(paused.ms() / s.sim->now().ms())});
  }

  csv.section("fig3d-g: per-flow occupancy bands at RX1 (bytes; threshold 40960)");
  csv.header({"queue", "min_after_1ms", "max", "crosses_threshold"});
  const char* names[] = {"flow2@A.RX1", "flow1@B.RX1", "flow1@C.RX1",
                         "flow2@D.RX1"};
  const std::size_t order[] = {0, 1, 2, 3};
  for (const std::size_t i : order) {
    const auto lo = sampler.min_bytes_after(i, 1_ms);
    const auto hi = sampler.max_bytes(i);
    csv.row({names[i], stats::CsvWriter::num(lo), stats::CsvWriter::num(hi),
             stats::CsvWriter::num(std::int64_t{hi >= 40 * 1024})});
  }

  if (dump_events) {
    csv.section("raw pause transitions (t_us, link, paused)");
    csv.header({"t_us", "link", "paused"});
    std::int64_t rows = 0;
    for (const auto& e : log.events()) {
      for (std::size_t i = 0; i < s.cycle_queues.size(); ++i) {
        const auto& k = s.cycle_queues[i];
        if (e.node == k.node && e.port == k.port && e.cls == k.cls) {
          csv.row({stats::CsvWriter::num(e.t.us()), s.cycle_labels[i],
                   stats::CsvWriter::num(std::int64_t{e.paused})});
          if (++rows >= max_rows) break;
        }
      }
      if (rows >= max_rows) break;
    }
  }

  if (dump_samples) {
    csv.section("occupancy series (t_us, then one column per queue)");
    csv.header({"t_us", "flow2_at_A", "flow1_at_B", "flow1_at_C",
                "flow2_at_D"});
    const auto& s0 = sampler.series(0);
    for (std::size_t i = 0;
         i < s0.size() && static_cast<std::int64_t>(i) < max_rows; ++i) {
      csv.row({stats::CsvWriter::num(s0[i].t.us()),
               stats::CsvWriter::num(sampler.series(0)[i].bytes),
               stats::CsvWriter::num(sampler.series(1)[i].bytes),
               stats::CsvWriter::num(sampler.series(2)[i].bytes),
               stats::CsvWriter::num(sampler.series(3)[i].bytes)});
    }
  }

  const auto drain = analysis::stop_and_drain(*s.net, 20_ms);
  csv.section("verdict");
  csv.header({"cyclic_buffer_dependency", "deadlock", "trapped_bytes"});
  csv.row({stats::CsvWriter::num(std::int64_t{bdg.has_cycle()}),
           stats::CsvWriter::num(std::int64_t{drain.deadlocked}),
           stats::CsvWriter::num(drain.trapped_bytes)});
  std::printf("# paper expectation: dependency yes, deadlock NO\n");
  return 0;
}
