// §3.2 / Figure 4: adding flow 3 (B -> C) to the Figure-3 scenario leaves
// the cyclic buffer dependency unchanged but now produces a deadlock.
//
// Regenerates:
//   4(b) the dependency graph (unchanged 4-queue cycle + one extra edge
//        outside it),
//   4(c) pause events at L1..L4 (expected: all four links pause; at some
//        instant all four are paused simultaneously),
// and the paper's stop-the-flows experiment: pauses persist and packets
// stay trapped after the sources go quiet (the paper stops flows at
// 1000 ms; the deadlock here forms within a few hundred microseconds, so
// the default stop time is 50 ms — override with --run_ms=1000 to match
// the paper exactly).
//
// Flags: --run_ms=50, --events, --max_rows.
#include <cstdio>

#include "dcdl/analysis/bdg.hpp"
#include "dcdl/common/flags.hpp"
#include "dcdl/scenarios/scenario.hpp"
#include "dcdl/stats/csv.hpp"
#include "dcdl/stats/pause_log.hpp"

using namespace dcdl;
using namespace dcdl::literals;
using namespace dcdl::scenarios;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const Time run_for = Time{flags.get_int("run_ms", 50) * 1'000'000'000};
  const bool dump_events = flags.get_bool("events", false);
  const std::int64_t max_rows = flags.get_int("max_rows", 200);
  flags.check_unused();

  FourSwitchParams p;
  p.with_flow3 = true;
  Scenario s = make_four_switch(p);

  const auto bdg = analysis::BufferDependencyGraph::build(*s.net, s.flows);
  std::printf("# Fig.4: three flows, four switches\n");
  std::printf("# dependency cycle size: %zu (paper: same 4-queue cycle as Fig.3)\n",
              bdg.cycles().empty() ? 0 : bdg.cycles()[0].size());

  stats::PauseEventLog log(*s.net);
  analysis::DeadlockMonitor monitor(*s.net, 50_us, 1_ms);
  monitor.start(Time::zero(), run_for);
  s.sim->run_until(run_for);

  stats::CsvWriter csv;
  csv.section("fig4c: pause activity per link (paper: all four links pause)");
  csv.header({"link", "pause_events", "total_paused_ms", "paused_at_end"});
  for (std::size_t i = 0; i < s.cycle_queues.size(); ++i) {
    csv.row({s.cycle_labels[i],
             stats::CsvWriter::num(
                 static_cast<std::int64_t>(log.pause_count(s.cycle_queues[i]))),
             stats::CsvWriter::num(
                 log.total_paused(s.cycle_queues[i], s.sim->now()).ms()),
             stats::CsvWriter::num(
                 std::int64_t{log.paused_at_end(s.cycle_queues[i])})});
  }

  const auto all4 = log.first_all_paused(s.cycle_queues, s.sim->now());
  csv.section("simultaneous pause of the whole cycle");
  csv.header({"all_four_paused", "first_at_ms", "deadlock_confirmed_at_ms"});
  csv.row({stats::CsvWriter::num(std::int64_t{all4.has_value()}),
           stats::CsvWriter::num(all4 ? all4->ms() : -1.0),
           stats::CsvWriter::num(monitor.detected_at()
                                     ? monitor.detected_at()->ms()
                                     : -1.0)});

  if (dump_events) {
    csv.section("raw pause transitions (t_us, link, paused)");
    csv.header({"t_us", "link", "paused"});
    std::int64_t rows = 0;
    for (const auto& e : log.events()) {
      for (std::size_t i = 0; i < s.cycle_queues.size(); ++i) {
        const auto& k = s.cycle_queues[i];
        if (e.node == k.node && e.port == k.port && e.cls == k.cls) {
          csv.row({stats::CsvWriter::num(e.t.us()), s.cycle_labels[i],
                   stats::CsvWriter::num(std::int64_t{e.paused})});
          if (++rows >= max_rows) break;
        }
      }
      if (rows >= max_rows) break;
    }
  }

  // The paper's criterion: stop all flows, watch whether the pauses clear.
  const std::size_t events_before = log.events().size();
  const auto drain = analysis::stop_and_drain(*s.net, 20_ms);
  csv.section("stop-the-flows experiment (paper: pauses persist => deadlock)");
  csv.header({"deadlock", "trapped_bytes", "pauses_cleared_after_stop"});
  bool any_resumed = false;
  for (std::size_t i = events_before; i < log.events().size(); ++i) {
    if (!log.events()[i].paused) any_resumed = true;
  }
  bool all_cycle_paused_at_end = true;
  for (const auto& key : s.cycle_queues) {
    all_cycle_paused_at_end &= log.paused_at_end(key);
  }
  csv.row({stats::CsvWriter::num(std::int64_t{drain.deadlocked}),
           stats::CsvWriter::num(drain.trapped_bytes),
           stats::CsvWriter::num(std::int64_t{any_resumed &&
                                              !all_cycle_paused_at_end})});
  std::printf("# paper expectation: deadlock YES, cycle still paused after stop\n");
  return 0;
}
