// §3.3 / Figure 5: rate-limiting flow 3 at switch B's ingress determines
// whether the Figure-4 deadlock forms. The paper observed no deadlock at
// <= 2 Gbps and deadlock at 3 Gbps.
//
// Deadlock formation near the boundary is stochastic (the paper itself
// could not analyze it and our EXPERIMENTS.md discusses the regimes), so
// this harness sweeps the limit across several seeds and reports the
// deadlock fraction, plus the Figure 5(c)/(d) occupancy comparison of a
// surviving and a deadlocking configuration.
//
// Flags: --run_ms=20, --seeds=5.
#include <cstdio>
#include <string>

#include "dcdl/common/flags.hpp"
#include "dcdl/scenarios/scenario.hpp"
#include "dcdl/stats/csv.hpp"
#include "dcdl/stats/pause_log.hpp"
#include "dcdl/stats/sampler.hpp"

using namespace dcdl;
using namespace dcdl::literals;
using namespace dcdl::scenarios;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const Time run_for = Time{flags.get_int("run_ms", 20) * 1'000'000'000};
  const int seeds = static_cast<int>(flags.get_int("seeds", 5));
  flags.check_unused();

  stats::CsvWriter csv;
  std::printf("# Fig.5 / §3.3: rate limiting flow 3 vs deadlock formation\n");
  std::printf("# paper: no deadlock at <=2 Gbps, deadlock at 3 Gbps and "
              "unlimited\n");

  csv.section("series 1: deadlock fraction vs flow-3 rate limit");
  csv.header({"limit_gbps", "deadlock_fraction", "runs"});
  for (const double g : {0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 4.0, 5.0, 6.0, 8.0, 0.0}) {
    int deadlocks = 0;
    for (int seed = 1; seed <= seeds; ++seed) {
      FourSwitchParams p;
      p.with_flow3 = true;
      p.seed = static_cast<std::uint64_t>(seed);
      if (g > 0) p.flow3_limit = Rate::gbps(g);
      Scenario s = make_four_switch(p);
      if (run_and_check(s, run_for, 10_ms).deadlocked) ++deadlocks;
    }
    csv.row({g > 0 ? stats::CsvWriter::num(g) : std::string("unlimited"),
             stats::CsvWriter::num(static_cast<double>(deadlocks) / seeds),
             stats::CsvWriter::num(std::int64_t{seeds})});
  }

  // Fig 5(c)/(d): occupancy of flow 1 at B.RX1 with a surviving and a
  // deadlocking limiter value.
  csv.section("series 2: flow1@B.RX1 occupancy band (fig 5c vs 5d)");
  csv.header({"limit_gbps", "min_after_1ms", "max", "deadlock"});
  for (const double g : {2.0, 3.0}) {
    FourSwitchParams p;
    p.with_flow3 = true;
    p.flow3_limit = Rate::gbps(g);
    Scenario s = make_four_switch(p);
    stats::OccupancySampler sampler(
        *s.net, {{s.node("B"), s.cycle_queues[0].port, 0, FlowId{1}}}, 1_us);
    sampler.start(Time::zero(), run_for);
    const RunSummary r = run_and_check(s, run_for, 10_ms);
    csv.row({stats::CsvWriter::num(g),
             stats::CsvWriter::num(sampler.min_bytes_after(0, 1_ms)),
             stats::CsvWriter::num(sampler.max_bytes(0)),
             stats::CsvWriter::num(std::int64_t{r.deadlocked})});
  }

  // Fig 5(b): with a low enough limit, links still pause frequently but
  // the four are never paused simultaneously.
  csv.section("series 3: simultaneous-pause check at 2 Gbps (fig 5b zoom)");
  csv.header({"link", "pause_events"});
  {
    FourSwitchParams p;
    p.with_flow3 = true;
    p.flow3_limit = Rate::gbps(2);
    Scenario s = make_four_switch(p);
    stats::PauseEventLog log(*s.net);
    s.sim->run_until(run_for);
    for (std::size_t i = 0; i < s.cycle_queues.size(); ++i) {
      csv.row({s.cycle_labels[i],
               stats::CsvWriter::num(static_cast<std::int64_t>(
                   log.pause_count(s.cycle_queues[i])))});
    }
    const auto all4 = log.first_all_paused(s.cycle_queues, s.sim->now());
    std::printf("# all four links simultaneously paused: %s (paper: never at "
                "2 Gbps)\n",
                all4 ? "yes" : "never");
  }
  return 0;
}
