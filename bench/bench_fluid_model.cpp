// §3.3 extension: the fluid model the paper announces as future work,
// compared against packet-level simulation series-for-series.
//
// Series 1: routing-loop deadlock threshold — fluid vs packet vs Eq. 3.
// Series 2: Figure-3 occupancy/pause comparison — the fluid model captures
//           the host-queue sawtooth but shows *empty* ring queues, i.e. it
//           is exactly the "flow-level stable state analysis" the paper
//           demonstrates to be insufficient.
// Series 3: Figure-4 — the measurable gap: fluid predicts no deadlock and
//           20 Gbps shares; packets deadlock.
//
// Flags: --run_ms=10.
#include <cstdio>

#include "dcdl/analysis/boundary.hpp"
#include "dcdl/analysis/fluid.hpp"
#include "dcdl/common/flags.hpp"
#include "dcdl/scenarios/scenario.hpp"
#include "dcdl/stats/csv.hpp"
#include "dcdl/stats/sampler.hpp"

using namespace dcdl;
using namespace dcdl::literals;
using namespace dcdl::analysis;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const Time run_for = Time{flags.get_int("run_ms", 10) * 1'000'000'000};
  flags.check_unused();

  stats::CsvWriter csv;
  std::printf("# fluid model vs packet-level simulation\n");

  csv.section("series 1: routing-loop threshold (n=2, B=40G, TTL=16; Eq.3 = 5 Gbps)");
  csv.header({"inject_gbps", "eq3_deadlock", "fluid_deadlock",
              "packet_deadlock"});
  for (const double g : {3.0, 4.0, 4.5, 5.5, 6.0, 8.0}) {
    FluidModel fm =
        make_fluid_routing_loop(2, Rate::gbps(40), 16, Rate::gbps(g));
    const bool fluid = fm.run(run_for).deadlocked;
    scenarios::RoutingLoopParams p;
    p.inject = Rate::gbps(g);
    scenarios::Scenario s = scenarios::make_routing_loop(p);
    const bool packet =
        scenarios::run_and_check(s, run_for, 15_ms).deadlocked;
    csv.row({stats::CsvWriter::num(g),
             stats::CsvWriter::num(std::int64_t{BoundaryModel::predicts_deadlock(
                 2, Rate::gbps(40), 16, Rate::gbps(g))}),
             stats::CsvWriter::num(std::int64_t{fluid}),
             stats::CsvWriter::num(std::int64_t{packet})});
  }

  csv.section("series 2: Figure 3 — occupancy bands, fluid vs packet (bytes)");
  csv.header({"queue", "fluid_min", "fluid_max", "fluid_paused_frac",
              "packet_min", "packet_max"});
  {
    FluidFourSwitch fs = make_fluid_four_switch(false);
    const FluidResult fr = fs.model.run(run_for);

    scenarios::FourSwitchParams p;
    scenarios::Scenario s = scenarios::make_four_switch(p);
    stats::OccupancySampler sampler(
        *s.net,
        {{s.node("A"), s.cycle_queues[3].port, 0, std::nullopt},
         {s.node("B"), s.cycle_queues[0].port, 0, std::nullopt}},
        1_us);
    sampler.start(Time::zero(), run_for);
    s.sim->run_until(run_for);

    const struct {
      const char* name;
      int fluid_q;
      int packet_idx;  // -1: not sampled
    } rows[] = {
        {"A.RX2(host)", 0, -1},
        {"A.RX1(ring)", fs.rx1_A, 0},
        {"B.RX1(ring)", fs.rx1_B, 1},
    };
    for (const auto& row : rows) {
      csv.row({row.name,
               stats::CsvWriter::num(
                   fr.min_bytes[static_cast<std::size_t>(row.fluid_q)]),
               stats::CsvWriter::num(
                   fr.max_bytes[static_cast<std::size_t>(row.fluid_q)]),
               stats::CsvWriter::num(
                   fr.paused_fraction[static_cast<std::size_t>(row.fluid_q)]),
               row.packet_idx >= 0
                   ? stats::CsvWriter::num(sampler.min_bytes_after(
                         static_cast<std::size_t>(row.packet_idx), 1_ms))
                   : "-",
               row.packet_idx >= 0
                   ? stats::CsvWriter::num(sampler.max_bytes(
                         static_cast<std::size_t>(row.packet_idx)))
                   : "-"});
    }
  }

  csv.section("series 3: Figure 4 — the flow-level blind spot");
  csv.header({"model", "deadlock", "flow1_gbps", "flow2_gbps", "flow3_gbps"});
  {
    FluidFourSwitch fs = make_fluid_four_switch(true, Rate::gbps(40));
    const FluidResult fr = fs.model.run(run_for);
    csv.row({"fluid", stats::CsvWriter::num(std::int64_t{fr.deadlocked}),
             stats::CsvWriter::num(fr.mean_goodput_bps[0] / 1e9),
             stats::CsvWriter::num(fr.mean_goodput_bps[1] / 1e9),
             stats::CsvWriter::num(fr.mean_goodput_bps[2] / 1e9)});

    scenarios::FourSwitchParams p;
    p.with_flow3 = true;
    scenarios::Scenario s = scenarios::make_four_switch(p);
    const auto r = scenarios::run_and_check(s, 20_ms, 10_ms);
    double gbps[3] = {0, 0, 0};
    for (std::size_t i = 0; i < r.delivered.size() && i < 3; ++i) {
      const double window_ms = r.detected_at ? r.detected_at->ms() : 20.0;
      gbps[i] = static_cast<double>(r.delivered[i].second) * 8 /
                (window_ms * 1e-3) / 1e9;
    }
    csv.row({"packet", stats::CsvWriter::num(std::int64_t{r.deadlocked}),
             stats::CsvWriter::num(gbps[0]), stats::CsvWriter::num(gbps[1]),
             stats::CsvWriter::num(gbps[2])});
  }
  std::printf("# the paper's §3.2 takeaway, quantified: flow-level (fluid) "
              "analysis predicts feasible 20G shares and no deadlock; the "
              "packet level disagrees\n");
  return 0;
}
