// Turn-model ablation on 2D meshes (the family of the paper's reference
// [22], Wu's odd-even model): deadlock-freedom is a property of the
// allowed turn set, not of the topology.
//
// Series 1: XY, YX, the known-cyclic turn mix, and random mixes — CBD
//           certification + deadlock under adversarial diagonal traffic.
// Series 2: mesh-size sweep for the cyclic combination (time to deadlock).
//
// Flags: --run_ms=10.
#include <cstdio>
#include <string>

#include "dcdl/analysis/bdg.hpp"
#include "dcdl/analysis/deadlock.hpp"
#include "dcdl/common/flags.hpp"
#include "dcdl/device/host.hpp"
#include "dcdl/routing/compute.hpp"
#include "dcdl/routing/mesh_routing.hpp"
#include "dcdl/stats/csv.hpp"
#include "dcdl/topo/generators.hpp"

using namespace dcdl;
using namespace dcdl::literals;
using namespace dcdl::topo;

namespace {

std::vector<FlowSpec> diagonal_flows(const MeshTopo& mesh) {
  const std::size_t R = static_cast<std::size_t>(mesh.rows - 1);
  const std::size_t C = static_cast<std::size_t>(mesh.cols - 1);
  const NodeId tl = mesh.host[0][0], tr = mesh.host[0][C];
  const NodeId br = mesh.host[R][C], bl = mesh.host[R][0];
  const std::pair<NodeId, NodeId> pairs[4] = {
      {tl, br}, {br, tl}, {tr, bl}, {bl, tr}};
  std::vector<FlowSpec> flows;
  for (int i = 0; i < 4; ++i) {
    FlowSpec f;
    f.id = static_cast<FlowId>(i + 1);
    f.src_host = pairs[i].first;
    f.dst_host = pairs[i].second;
    f.packet_bytes = 1000;
    f.ttl = 64;
    flows.push_back(f);
  }
  return flows;
}

struct Outcome {
  bool cbd;
  bool deadlock;
  double detect_ms;
};

Outcome run_mesh(int rows, int cols, const std::string& mode, Time run_for,
                 std::uint64_t seed = 5) {
  Simulator sim;
  const MeshTopo mesh = make_mesh(rows, cols);
  Topology topo = mesh.topo;
  NetConfig cfg;
  cfg.tx_jitter = Time{10'000};
  Network net(sim, topo, cfg);
  if (mode == "xy") {
    routing::install_xy_routing(net, mesh);
  } else if (mode == "yx") {
    routing::install_yx_routing(net, mesh);
  } else if (mode == "cyclic_combo") {
    routing::install_xy_routing(net, mesh);
    const int R = mesh.rows - 1, C = mesh.cols - 1;
    routing::install_mesh_route(net, mesh, R, C, true);
    routing::install_mesh_route(net, mesh, 0, 0, true);
    routing::install_mesh_route(net, mesh, R, 0, false);
    routing::install_mesh_route(net, mesh, 0, C, false);
  } else {
    routing::install_mixed_xy_yx(net, mesh, seed);
  }
  const auto flows = diagonal_flows(mesh);
  Outcome out;
  out.cbd = analysis::BufferDependencyGraph::build(net, flows).has_cycle();
  for (const FlowSpec& f : flows) net.host_at(f.src_host).add_flow(f);
  analysis::DeadlockMonitor monitor(net);
  monitor.start(Time::zero(), run_for + 20_ms);
  sim.run_until(run_for);
  const auto drain = analysis::stop_and_drain(net, 20_ms);
  out.deadlock = drain.deadlocked;
  out.detect_ms =
      monitor.detected_at() ? monitor.detected_at()->ms() : -1.0;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const Time run_for = Time{flags.get_int("run_ms", 10) * 1'000'000'000};
  flags.check_unused();

  stats::CsvWriter csv;
  std::printf("# turn-model routing on 2D meshes: deadlock-freedom is a "
              "property of the turn set\n");
  csv.section("series 1: routing mode on a 3x3 mesh, diagonal traffic");
  csv.header({"mode", "cbd_cycle", "deadlock", "detect_ms"});
  for (const std::string mode :
       {"xy", "yx", "cyclic_combo", "mixed_seed5", "mixed_seed9"}) {
    const Outcome o = run_mesh(3, 3, mode, run_for,
                               mode == "mixed_seed9" ? 9 : 5);
    csv.row({mode, stats::CsvWriter::num(std::int64_t{o.cbd}),
             stats::CsvWriter::num(std::int64_t{o.deadlock}),
             stats::CsvWriter::num(o.detect_ms)});
  }

  csv.section("series 2: mesh size sweep, cyclic turn combination");
  csv.header({"rows", "cols", "cbd_cycle", "deadlock", "detect_ms"});
  for (const auto [r, c] : {std::pair{3, 3}, {3, 4}, {4, 4}, {5, 5}}) {
    const Outcome o = run_mesh(r, c, "cyclic_combo", run_for);
    csv.row({stats::CsvWriter::num(std::int64_t{r}),
             stats::CsvWriter::num(std::int64_t{c}),
             stats::CsvWriter::num(std::int64_t{o.cbd}),
             stats::CsvWriter::num(std::int64_t{o.deadlock}),
             stats::CsvWriter::num(o.detect_ms)});
  }
  std::printf("# expectation: XY/YX certified acyclic and never deadlock; "
              "the full turn set deadlocks wherever the dependency ring "
              "closes\n");
  return 0;
}
