// §4 "Preventing PFC from being generated": the paper cites DCQCN and
// TIMELY as the transports "designed to reduce the possibility of PFC
// generation" — both are implemented and compared here. Feedback latency
// means neither can eliminate PFC, as the paper stresses.
//
// Workload: N-to-1 incast on a leaf-spine fabric.
// Modes: PFC only / DCQCN (real-queue ECN marking) / DCQCN + phantom queue
//        at 95% and 90% of line rate / TIMELY (RTT-gradient).
// Metrics: pause events, time-to-first-pause, goodput, mean sender rate.
//
// Flags: --run_ms=20, --senders=8.
#include <cstdio>
#include <string>

#include "dcdl/common/flags.hpp"
#include "dcdl/device/host.hpp"
#include "dcdl/mitigation/dcqcn.hpp"
#include "dcdl/mitigation/timely.hpp"
#include "dcdl/routing/compute.hpp"
#include "dcdl/scenarios/scenario.hpp"
#include "dcdl/topo/generators.hpp"
#include "dcdl/stats/csv.hpp"
#include "dcdl/stats/pause_log.hpp"

using namespace dcdl;
using namespace dcdl::literals;
using namespace dcdl::scenarios;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const Time run_for = Time{flags.get_int("run_ms", 20) * 1'000'000'000};
  const int senders = static_cast<int>(flags.get_int("senders", 8));
  flags.check_unused();

  stats::CsvWriter csv;
  std::printf("# §4 DCQCN + phantom queues vs PFC generation (%d-to-1 "
              "incast)\n", senders);
  csv.header({"mode", "pause_events", "first_pause_us", "goodput_gbps",
              "mean_sender_rate_gbps"});

  struct Mode {
    std::string name;
    bool dcqcn;
    bool timely;
    double phantom;
  };
  for (const Mode mode : {Mode{"pfc_only", false, false, 1.0},
                          Mode{"dcqcn", true, false, 1.0},
                          Mode{"dcqcn_phantom95", true, false, 0.95},
                          Mode{"dcqcn_phantom90", true, false, 0.90},
                          Mode{"timely", false, true, 1.0}}) {
    Scenario s;
    if (mode.timely) {
      // TIMELY needs per-packet RTT feedback rather than ECN; built here
      // directly on the same leaf-spine fabric.
      s.sim = std::make_unique<Simulator>();
      topo::LeafSpineTopo ls = topo::make_leaf_spine(4, 2, 4);
      s.topo = std::make_unique<Topology>(std::move(ls.topo));
      NetConfig cfg;
      cfg.rtt_feedback = true;
      s.net = std::make_unique<Network>(*s.sim, *s.topo, cfg);
      routing::install_shortest_paths(*s.net);
      const NodeId receiver = ls.hosts[0][0];
      int made = 0;
      for (int leaf = 1; leaf < 4 && made < senders; ++leaf) {
        for (int h = 0; h < 4 && made < senders; ++h) {
          FlowSpec f;
          f.id = static_cast<FlowId>(made + 1);
          f.src_host = ls.hosts[static_cast<std::size_t>(leaf)]
                               [static_cast<std::size_t>(h)];
          f.dst_host = receiver;
          f.packet_bytes = 1000;
          s.net->host_at(f.src_host).add_flow(
              f, std::make_unique<mitigation::TimelyPacer>(
                     mitigation::TimelyParams{}));
          s.flows.push_back(f);
          ++made;
        }
      }
    } else {
      IncastParams p;
      p.num_senders = senders;
      p.ecn = mode.dcqcn;
      p.dcqcn = mode.dcqcn;
      p.phantom_speed_fraction = mode.phantom;
      s = make_incast(p);
    }
    stats::PauseEventLog log(*s.net);
    s.sim->run_until(run_for);

    std::uint64_t pauses = 0;
    double first_pause_us = -1;
    for (const auto& e : log.events()) {
      if (e.paused) {
        if (pauses == 0) first_pause_us = e.t.us();
        ++pauses;
      }
    }
    std::int64_t delivered = 0;
    double rate_sum = 0;
    int rate_count = 0;
    for (const FlowSpec& f : s.flows) {
      delivered += s.net->host_at(f.dst_host).delivered_bytes(f.id);
      if (auto* pacer = s.net->host_at(f.src_host).pacer(f.id)) {
        if (const auto r = pacer->current_rate()) {
          rate_sum += r->as_gbps();
          ++rate_count;
        }
      }
    }
    csv.row({mode.name,
             stats::CsvWriter::num(static_cast<std::int64_t>(pauses)),
             stats::CsvWriter::num(first_pause_us),
             stats::CsvWriter::num(static_cast<double>(delivered) * 8 /
                                   run_for.sec() / 1e9),
             stats::CsvWriter::num(rate_count ? rate_sum / rate_count : -1.0)});
  }
  std::printf("# paper expectation: DCQCN cuts pause generation by orders of "
              "magnitude; phantom queues signal earlier; neither reaches "
              "zero in general\n");
  return 0;
}
