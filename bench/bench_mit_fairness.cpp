// §4's open trade-off: "these solutions may lead to other issues including
// the unfairness between long (across different high tier switches) and
// short (e.g., within the same rack) flows. This trade-off requires
// further study." — this harness is that study.
//
// Workload: a leaf-spine fabric with LONG flows (cross-rack, via spines)
// and SHORT flows (intra-rack) sharing destination leaves. Threshold
// policies sweep from uniform to strongly tiered/directional; metrics are
// per-group goodput and p99 latency.
//
// Flags: --run_ms=10.
#include <cstdio>
#include <string>
#include <vector>

#include "dcdl/common/flags.hpp"
#include "dcdl/device/host.hpp"
#include "dcdl/mitigation/thresholds.hpp"
#include "dcdl/routing/compute.hpp"
#include "dcdl/stats/csv.hpp"
#include "dcdl/stats/latency.hpp"
#include "dcdl/topo/generators.hpp"

using namespace dcdl;
using namespace dcdl::literals;
using namespace dcdl::topo;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const Time run_for = Time{flags.get_int("run_ms", 10) * 1'000'000'000};
  flags.check_unused();

  stats::CsvWriter csv;
  std::printf("# §4 threshold-policy fairness: long (cross-spine) vs short "
              "(intra-rack) flows\n");
  csv.header({"policy", "long_goodput_gbps", "short_goodput_gbps",
              "long_p99_us", "short_p99_us", "goodput_ratio_short_to_long"});

  for (const std::string policy :
       {"uniform", "tiered", "directional"}) {
    Simulator sim;
    const LeafSpineTopo ls = make_leaf_spine(3, 2, 4);
    Topology topo = ls.topo;
    NetConfig cfg;
    cfg.tx_jitter = Time{10'000};
    Network net(sim, topo, cfg);
    routing::install_shortest_paths(net);
    const std::int64_t small = 10 * 1024, large = 120 * 1024, hyst = 2000;
    if (policy == "tiered") {
      mitigation::apply_tier_thresholds(net, {small, small, large}, hyst);
    } else if (policy == "directional") {
      mitigation::apply_directional_thresholds(net, small, large, hyst);
    }

    // Long flows: leaf1/leaf2 hosts -> leaf0 hosts (cross-spine).
    // Short flows: within leaf0 (host -> host on the same leaf), competing
    // for the same destination hosts' access links.
    std::vector<FlowId> long_ids, short_ids;
    FlowId next_id = 1;
    for (int i = 0; i < 2; ++i) {
      FlowSpec f;
      f.id = next_id++;
      f.src_host = ls.hosts[1][static_cast<std::size_t>(i)];
      f.dst_host = ls.hosts[0][static_cast<std::size_t>(i)];
      f.packet_bytes = 1000;
      net.host_at(f.src_host).add_flow(f);
      long_ids.push_back(f.id);
      FlowSpec g;
      g.id = next_id++;
      g.src_host = ls.hosts[2][static_cast<std::size_t>(i)];
      g.dst_host = ls.hosts[0][static_cast<std::size_t>(i)];
      g.packet_bytes = 1000;
      net.host_at(g.src_host).add_flow(g);
      long_ids.push_back(g.id);
    }
    for (int i = 0; i < 2; ++i) {
      FlowSpec f;
      f.id = next_id++;
      f.src_host = ls.hosts[0][static_cast<std::size_t>(2 + i)];
      f.dst_host = ls.hosts[0][static_cast<std::size_t>(i)];
      f.packet_bytes = 1000;
      net.host_at(f.src_host).add_flow(f);
      short_ids.push_back(f.id);
    }

    stats::LatencyMeter latency(net);
    sim.run_until(run_for);

    const auto goodput = [&](const std::vector<FlowId>& ids) {
      std::int64_t bytes = 0;
      for (const FlowId id : ids) {
        for (const NodeId h : topo.hosts()) {
          bytes += net.host_at(h).delivered_bytes(id);
        }
      }
      return static_cast<double>(bytes) * 8 / run_for.sec() / 1e9;
    };
    const double lg = goodput(long_ids);
    const double sg = goodput(short_ids);
    csv.row({policy, stats::CsvWriter::num(lg), stats::CsvWriter::num(sg),
             stats::CsvWriter::num(latency.percentile_of(long_ids, 0.99).us()),
             stats::CsvWriter::num(latency.percentile_of(short_ids, 0.99).us()),
             stats::CsvWriter::num(lg > 0 ? sg / lg * long_ids.size() /
                                       short_ids.size()
                                          : 0)});
  }
  std::printf("# the paper's predicted trade-off: burst-absorbing (large "
              "upstream) thresholds shift congestion costs between the flow "
              "classes — compare the per-group p99 latencies\n");
  return 0;
}
