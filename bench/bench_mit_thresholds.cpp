// §4 "Limiting PFC pause frames propagation": threshold policies that make
// pauses originate near sources and let higher tiers absorb bursts.
//
// Workload: bursty senders (randomized on/off, ~50 KB bursts) across a
// leaf-spine fabric into one receiver. Metrics: PFC pause events split by
// tier, buffer-overflow drops (must be 0), and goodput.
//
// Policies: uniform small, uniform large, per-tier (larger upstream), and
// directional (small on downstream-facing ports, large on upstream).
//
// The four policy runs go through the dcdl::campaign engine as a sweep over
// a bench-registered "mit_thresholds" scenario whose instrumentation hook
// splits pause assertions by tier and runs the cascade analysis at stop.
//
// Flags: --run_ms=10, --senders=6, --jobs, --out=mit.json, --timing.
#include <cstdio>
#include <memory>
#include <string>

#include "dcdl/campaign/campaign.hpp"
#include "dcdl/common/flags.hpp"
#include "dcdl/device/host.hpp"
#include "dcdl/mitigation/thresholds.hpp"
#include "dcdl/routing/compute.hpp"
#include "dcdl/stats/cascade.hpp"
#include "dcdl/stats/csv.hpp"
#include "dcdl/stats/hooks.hpp"
#include "dcdl/stats/pause_log.hpp"
#include "dcdl/topo/generators.hpp"

using namespace dcdl;
using namespace dcdl::literals;
using namespace dcdl::campaign;
using namespace dcdl::topo;

namespace {

void register_mit_thresholds(ScenarioRegistry& reg) {
  ScenarioDef def;
  def.name = "mit_thresholds";
  def.description =
      "paper §4: PFC threshold policy on a 3x2 leaf-spine under bursty "
      "incast";
  def.params = {
      {"policy", ParamKind::kString, "",
       "uniform_small | uniform_large | tiered | directional"},
      {"senders", ParamKind::kInt, "", "bursty sending hosts"},
      {"small_bytes", ParamKind::kInt, "", "small (edge) XOFF threshold"},
      {"large_bytes", ParamKind::kInt, "", "large (core) XOFF threshold"},
      {"hyst_bytes", ParamKind::kInt, "", "XON hysteresis"},
  };
  def.make = [](const ParamMap& pm) {
    scenarios::Scenario s;
    s.sim = std::make_unique<Simulator>();
    const LeafSpineTopo ls = make_leaf_spine(3, 2, 4);
    s.topo = std::make_unique<Topology>(ls.topo);
    s.net = std::make_unique<Network>(*s.sim, *s.topo, NetConfig{});
    routing::install_shortest_paths(*s.net);

    const std::int64_t small = pm.get_int("small_bytes", 8 * 1024);
    const std::int64_t large = pm.get_int("large_bytes", 160 * 1024);
    const std::int64_t hyst = pm.get_int("hyst_bytes", 2000);
    const std::string policy = pm.get_string("policy", "tiered");
    if (policy == "uniform_small") {
      mitigation::apply_tier_thresholds(*s.net, {small, small, small}, hyst);
    } else if (policy == "uniform_large") {
      mitigation::apply_tier_thresholds(*s.net, {large, large, large}, hyst);
    } else if (policy == "tiered") {
      mitigation::apply_tier_thresholds(*s.net, {small, small, large}, hyst);
    } else if (policy == "directional") {
      mitigation::apply_directional_thresholds(*s.net, small, large, hyst);
    } else {
      throw CampaignError("mit_thresholds: unknown policy '" + policy + "'");
    }

    const int senders = static_cast<int>(pm.get_int("senders", 6));
    const NodeId receiver = ls.hosts[0][0];
    int made = 0;
    for (int leaf = 1; leaf < 3 && made < senders; ++leaf) {
      for (int h = 0; h < 4 && made < senders; ++h) {
        FlowSpec f;
        f.id = static_cast<FlowId>(made + 1);
        f.src_host = ls.hosts[static_cast<std::size_t>(leaf)]
                             [static_cast<std::size_t>(h)];
        f.dst_host = receiver;
        f.packet_bytes = 1000;
        s.net->host_at(f.src_host).add_flow(
            f, std::make_unique<OnOffPacer>(10_us, 60_us,
                                            /*seed=*/17 * (made + 1),
                                            /*randomized=*/true));
        s.flows.push_back(f);
        ++made;
      }
    }
    return s;
  };
  def.instrument = [](scenarios::Scenario& s, const ParamMap&) {
    struct TierCounts {
      std::uint64_t tier1 = 0, tier2 = 0, host = 0;
    };
    auto counts = std::make_shared<TierCounts>();
    auto log = std::make_shared<stats::PauseEventLog>(*s.net);
    Network* net = s.net.get();
    stats::append_hook<Time, NodeId, PortId, ClassId, bool>(
        net->trace().pfc_state,
        [counts, net](Time, NodeId node, PortId port, ClassId, bool paused) {
          if (!paused) return;
          const NodeId peer = net->topo().peer(node, port).peer_node;
          if (net->topo().is_host(peer)) {
            ++counts->host;
          } else if (net->topo().node(node).tier == 1) {
            ++counts->tier1;
          } else {
            ++counts->tier2;
          }
        });
    return [counts, log, net](const RunRecord&, MetricSink& out) {
      out.emplace_back("pauses_tier1", static_cast<double>(counts->tier1));
      out.emplace_back("pauses_tier2", static_cast<double>(counts->tier2));
      out.emplace_back("pauses_host", static_cast<double>(counts->host));
      const stats::CascadeStats cascade =
          stats::analyze_pause_cascade(*net, *log);
      out.emplace_back("cascade_mean_depth", cascade.mean_depth);
      out.emplace_back("cascade_max_depth",
                       static_cast<double>(cascade.max_depth));
      out.emplace_back(
          "overflow_drops",
          static_cast<double>(net->drops(DropReason::kBufferOverflow)));
    };
  };
  reg.add(std::move(def));
}

double metric(const RunRecord& rec, const std::string& name) {
  for (const auto& [k, v] : rec.metrics) {
    if (k == name) return v;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const Time run_for = Time{flags.get_int("run_ms", 10) * 1'000'000'000};
  const int senders = static_cast<int>(flags.get_int("senders", 6));
  const int jobs = flags.jobs();
  const std::string out_path = flags.out();
  const bool timing = flags.get_bool("timing", false);
  flags.check_unused();

  ScenarioRegistry& reg = ScenarioRegistry::global();
  register_mit_thresholds(reg);

  SweepSpec spec;
  spec.scenario = "mit_thresholds";
  spec.base.set("senders", ParamValue::of_int(senders));
  GridAxis policy_axis{"policy", {}};
  for (const char* p :
       {"uniform_small", "uniform_large", "tiered", "directional"}) {
    policy_axis.values.push_back(ParamValue::of_string(p));
  }
  spec.axes = {policy_axis};
  spec.run_for = run_for;
  spec.drain_grace = 10_ms;

  ExecutorOptions opts;
  opts.jobs = jobs;
  CampaignExecutor exec(reg, opts);
  const CampaignResult result = exec.run(expand(spec), spec.root_seed);
  std::fprintf(stderr, "# campaign: %zu runs in %.0f ms wall on %d job(s)\n",
               result.records.size(), result.total_wall_ms, result.jobs);

  stats::CsvWriter csv;
  std::printf("# §4 threshold policies vs PFC pause generation "
              "(bursty incast, leaf-spine)\n");
  csv.header({"policy", "pauses_at_leaves", "pauses_at_spines",
              "pauses_on_hosts", "goodput_gbps", "cascade_mean_depth",
              "cascade_max_depth"});
  for (const RunRecord& r : result.records) {
    if (metric(r, "overflow_drops") > 0) {
      std::printf("# WARNING: overflow drops under policy %s\n",
                  r.params.get_string("policy", "?").c_str());
    }
    csv.row({r.params.get_string("policy", "?"),
             stats::CsvWriter::num(
                 static_cast<std::int64_t>(metric(r, "pauses_tier1"))),
             stats::CsvWriter::num(
                 static_cast<std::int64_t>(metric(r, "pauses_tier2"))),
             stats::CsvWriter::num(
                 static_cast<std::int64_t>(metric(r, "pauses_host"))),
             stats::CsvWriter::num(r.goodput_gbps),
             stats::CsvWriter::num(metric(r, "cascade_mean_depth")),
             stats::CsvWriter::num(
                 static_cast<std::int64_t>(metric(r, "cascade_max_depth")))});
  }
  std::printf("# paper expectation: larger thresholds at higher tiers absorb "
              "bursts -> fabric pauses drop; pauses that remain originate "
              "near the edge\n");

  if (!out_path.empty()) {
    WriteOptions wopts;
    wopts.include_timing = timing;
    write_text_file(out_path, to_json(result, wopts));
    std::fprintf(stderr, "# wrote %s\n", out_path.c_str());
  }
  return 0;
}
