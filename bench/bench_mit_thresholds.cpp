// §4 "Limiting PFC pause frames propagation": threshold policies that make
// pauses originate near sources and let higher tiers absorb bursts.
//
// Workload: bursty senders (randomized on/off, ~50 KB bursts) across a
// leaf-spine fabric into one receiver. Metrics: PFC pause events split by
// tier, buffer-overflow drops (must be 0), and goodput.
//
// Policies: uniform small, uniform large, per-tier (larger upstream), and
// directional (small on downstream-facing ports, large on upstream).
//
// Flags: --run_ms=10, --senders=6.
#include <cstdio>
#include <map>
#include <string>

#include "dcdl/common/flags.hpp"
#include "dcdl/device/host.hpp"
#include "dcdl/mitigation/thresholds.hpp"
#include "dcdl/routing/compute.hpp"
#include "dcdl/stats/cascade.hpp"
#include "dcdl/stats/csv.hpp"
#include "dcdl/stats/hooks.hpp"
#include "dcdl/stats/pause_log.hpp"
#include "dcdl/topo/generators.hpp"

using namespace dcdl;
using namespace dcdl::literals;
using namespace dcdl::topo;

namespace {

struct Result {
  std::uint64_t pauses_tier1 = 0;  // at leaves
  std::uint64_t pauses_tier2 = 0;  // at spines
  std::uint64_t pauses_host = 0;   // asserted against hosts
  std::int64_t goodput_bytes = 0;
  double cascade_mean_depth = 0;   // pause propagation (stats::cascade)
  int cascade_max_depth = 0;
};

Result run_policy(const std::string& policy, int senders, Time run_for) {
  Simulator sim;
  const LeafSpineTopo ls = make_leaf_spine(3, 2, 4);
  Topology topo = ls.topo;
  Network net(sim, topo, NetConfig{});
  routing::install_shortest_paths(net);

  const std::int64_t small = 8 * 1024, large = 160 * 1024, hyst = 2000;
  if (policy == "uniform_small") {
    mitigation::apply_tier_thresholds(net, {small, small, small}, hyst);
  } else if (policy == "uniform_large") {
    mitigation::apply_tier_thresholds(net, {large, large, large}, hyst);
  } else if (policy == "tiered") {
    mitigation::apply_tier_thresholds(net, {small, small, large}, hyst);
  } else if (policy == "directional") {
    mitigation::apply_directional_thresholds(net, small, large, hyst);
  }

  Result res;
  stats::PauseEventLog log(net);
  stats::append_hook<Time, NodeId, PortId, ClassId, bool>(
      net.trace().pfc_state,
      [&](Time, NodeId node, PortId port, ClassId, bool paused) {
        if (!paused) return;
        const NodeId peer = net.topo().peer(node, port).peer_node;
        if (net.topo().is_host(peer)) {
          ++res.pauses_host;
        } else if (net.topo().node(node).tier == 1) {
          ++res.pauses_tier1;
        } else {
          ++res.pauses_tier2;
        }
      });

  const NodeId receiver = ls.hosts[0][0];
  int made = 0;
  for (int leaf = 1; leaf < 3 && made < senders; ++leaf) {
    for (int h = 0; h < 4 && made < senders; ++h) {
      FlowSpec f;
      f.id = static_cast<FlowId>(made + 1);
      f.src_host = ls.hosts[static_cast<std::size_t>(leaf)]
                           [static_cast<std::size_t>(h)];
      f.dst_host = receiver;
      f.packet_bytes = 1000;
      net.host_at(f.src_host).add_flow(
          f, std::make_unique<OnOffPacer>(10_us, 60_us,
                                          /*seed=*/17 * (made + 1),
                                          /*randomized=*/true));
      ++made;
    }
  }
  sim.run_until(run_for);
  for (int i = 1; i <= made; ++i) {
    res.goodput_bytes +=
        net.host_at(receiver).delivered_bytes(static_cast<FlowId>(i));
  }
  const stats::CascadeStats cascade = stats::analyze_pause_cascade(net, log);
  res.cascade_mean_depth = cascade.mean_depth;
  res.cascade_max_depth = cascade.max_depth;
  if (net.drops(DropReason::kBufferOverflow) > 0) {
    std::printf("# WARNING: overflow drops under policy %s\n", policy.c_str());
  }
  return res;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const Time run_for = Time{flags.get_int("run_ms", 10) * 1'000'000'000};
  const int senders = static_cast<int>(flags.get_int("senders", 6));
  flags.check_unused();

  stats::CsvWriter csv;
  std::printf("# §4 threshold policies vs PFC pause generation "
              "(bursty incast, leaf-spine)\n");
  csv.header({"policy", "pauses_at_leaves", "pauses_at_spines",
              "pauses_on_hosts", "goodput_gbps", "cascade_mean_depth",
              "cascade_max_depth"});
  for (const std::string policy :
       {"uniform_small", "uniform_large", "tiered", "directional"}) {
    const Result r = run_policy(policy, senders, run_for);
    csv.row({policy,
             stats::CsvWriter::num(static_cast<std::int64_t>(r.pauses_tier1)),
             stats::CsvWriter::num(static_cast<std::int64_t>(r.pauses_tier2)),
             stats::CsvWriter::num(static_cast<std::int64_t>(r.pauses_host)),
             stats::CsvWriter::num(static_cast<double>(r.goodput_bytes) * 8 /
                                   run_for.sec() / 1e9),
             stats::CsvWriter::num(r.cascade_mean_depth),
             stats::CsvWriter::num(std::int64_t{r.cascade_max_depth})});
  }
  std::printf("# paper expectation: larger thresholds at higher tiers absorb "
              "bursts -> fabric pauses drop; pauses that remain originate "
              "near the edge\n");
  return 0;
}
