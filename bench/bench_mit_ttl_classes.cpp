// §4 "TTL-based mitigation": banding TTLs into PFC priority classes bounds
// the effective TTL per class. Sweeps the band width and class count on
// the routing-loop scenario and reports where the loop becomes immune.
//
// The honest model result (recorded in EXPERIMENTS.md): banding works when
// the *top clamped band* is no wider than about the loop length; wider
// bands leave the top class vulnerable, and because classes share the
// wire, they do not buy the naive nB/X threshold the back-of-envelope
// suggests — exactly the "worst-case scenarios" caveat of §4.
//
// Flags: --run_ms=6, --inject_gbps=10.
#include <cstdio>

#include "dcdl/common/flags.hpp"
#include "dcdl/scenarios/scenario.hpp"
#include "dcdl/stats/csv.hpp"

using namespace dcdl;
using namespace dcdl::literals;
using namespace dcdl::scenarios;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const Time run_for = Time{flags.get_int("run_ms", 6) * 1'000'000'000};
  const double inject = flags.get_double("inject_gbps", 10);
  flags.check_unused();

  stats::CsvWriter csv;
  std::printf("# §4 TTL-class mitigation on the 2-switch loop, TTL 16, %g "
              "Gbps (unmitigated threshold 5 Gbps)\n",
              inject);
  csv.section("band sweep with 8 classes");
  csv.header({"band", "top_band_ttl_width", "deadlock"});
  for (const int band : {0, 1, 2, 3, 4, 8}) {
    RoutingLoopParams p;
    p.ttl = 16;
    p.inject = Rate::gbps(inject);
    if (band > 0) {
      p.num_classes = 8;
      p.ttl_class_band = band;
    }
    Scenario s = make_routing_loop(p);
    const RunSummary r = run_and_check(s, run_for, 15_ms);
    const int top_width = band > 0 ? 16 - (8 - 1) * band + band : 16;
    csv.row({stats::CsvWriter::num(std::int64_t{band}),
             stats::CsvWriter::num(
                 std::int64_t{band > 0 ? std::max(band, top_width) : 16}),
             stats::CsvWriter::num(std::int64_t{r.deadlocked})});
  }

  csv.section("class-count sweep at band 2 (commodity switches offer ~2 "
              "lossless classes)");
  csv.header({"classes", "deadlock"});
  for (const int classes : {1, 2, 3, 4, 6, 8}) {
    RoutingLoopParams p;
    p.ttl = 16;
    p.inject = Rate::gbps(inject);
    p.num_classes = classes;
    p.ttl_class_band = 2;
    Scenario s = make_routing_loop(p);
    const RunSummary r = run_and_check(s, run_for, 15_ms);
    csv.row({stats::CsvWriter::num(std::int64_t{classes}),
             stats::CsvWriter::num(std::int64_t{r.deadlocked})});
  }

  csv.section("rate sweep at the working configuration (band 2, 8 classes)");
  csv.header({"inject_gbps", "deadlock_unmitigated", "deadlock_banded"});
  for (const double g : {4.0, 6.0, 10.0, 20.0, 30.0}) {
    int plain = 0, banded = 0;
    {
      RoutingLoopParams p;
      p.ttl = 16;
      p.inject = Rate::gbps(g);
      Scenario s = make_routing_loop(p);
      plain = run_and_check(s, run_for, 15_ms).deadlocked ? 1 : 0;
    }
    {
      RoutingLoopParams p;
      p.ttl = 16;
      p.inject = Rate::gbps(g);
      p.num_classes = 8;
      p.ttl_class_band = 2;
      Scenario s = make_routing_loop(p);
      banded = run_and_check(s, run_for, 15_ms).deadlocked ? 1 : 0;
    }
    csv.row({stats::CsvWriter::num(g), stats::CsvWriter::num(std::int64_t{plain}),
             stats::CsvWriter::num(std::int64_t{banded})});
  }
  return 0;
}
