// Simulator performance microbenchmarks (google-benchmark): events/sec on
// the paper's scenarios, so regressions in the data path are visible.
#include <benchmark/benchmark.h>

#include "dcdl/device/host.hpp"
#include "dcdl/routing/compute.hpp"
#include "dcdl/scenarios/scenario.hpp"
#include "dcdl/topo/generators.hpp"

using namespace dcdl;
using namespace dcdl::literals;
using namespace dcdl::scenarios;

namespace {

void BM_FourSwitchMillisecond(benchmark::State& state) {
  for (auto _ : state) {
    Scenario s = make_four_switch(FourSwitchParams{});
    s.sim->run_until(1_ms);
    state.counters["events"] = static_cast<double>(s.sim->events_executed());
    benchmark::DoNotOptimize(s.net->total_queued_bytes());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FourSwitchMillisecond)->Unit(benchmark::kMillisecond);

void BM_RoutingLoopMillisecond(benchmark::State& state) {
  for (auto _ : state) {
    RoutingLoopParams p;
    p.inject = Rate::gbps(8);
    Scenario s = make_routing_loop(p);
    s.sim->run_until(1_ms);
    benchmark::DoNotOptimize(s.net->total_queued_bytes());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RoutingLoopMillisecond)->Unit(benchmark::kMillisecond);

void BM_IncastMillisecond(benchmark::State& state) {
  for (auto _ : state) {
    IncastParams p;
    p.num_senders = static_cast<int>(state.range(0));
    Scenario s = make_incast(p);
    s.sim->run_until(1_ms);
    benchmark::DoNotOptimize(s.net->total_queued_bytes());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IncastMillisecond)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_FatTreePermutation(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Simulator sim;
    const topo::FatTreeTopo ft = topo::make_fat_tree(4);
    Topology topo = ft.topo;
    Network net(sim, topo, NetConfig{});
    routing::install_shortest_paths(net);
    const auto n = ft.all_hosts.size();
    for (std::size_t i = 0; i < n; ++i) {
      FlowSpec f;
      f.id = static_cast<FlowId>(i + 1);
      f.src_host = ft.all_hosts[i];
      f.dst_host = ft.all_hosts[(i + n / 2) % n];
      f.packet_bytes = 1000;
      net.host_at(f.src_host).add_flow(f);
    }
    state.ResumeTiming();
    sim.run_until(200_us);
    benchmark::DoNotOptimize(net.total_queued_bytes());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FatTreePermutation)->Unit(benchmark::kMillisecond);

void BM_EventQueueChurn(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    std::int64_t fired = 0;
    for (int i = 0; i < 100'000; ++i) {
      sim.schedule_at(Time{(i * 7919) % 1'000'000}, [&fired] { ++fired; });
    }
    sim.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 100'000);
}
BENCHMARK(BM_EventQueueChurn)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
