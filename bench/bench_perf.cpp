// Simulator performance benchmarks.
//
// Four modes:
//   bench_perf [google-benchmark flags]   microbenchmark suite (BM_*)
//   bench_perf --json [PATH]              fixed scenario timings written as
//                                         dcdl.bench_perf.v7 JSON (default
//                                         PATH: BENCH_perf.json)
//   bench_perf --baseline PATH            rerun the fixed scenarios and
//                                         compare events/sec against a
//                                         committed v1-v7 artifact; exits
//                                         non-zero on a >10% regression
//   bench_perf --shards N [--k K] [--ms M]
//                                         sharded-scaling probe: run the
//                                         fat-tree permutation at 1 and N
//                                         shards and print the speedup (the
//                                         manual dimension for large-k runs
//                                         on multi-core machines)
//
// The --json mode measures events/sec on the paper's scenarios (Fig. 1
// ring, Fig. 2 routing loop, fat-tree permutation) plus the pure scheduler
// churn micro, so the perf trajectory of the hot path is tracked as a
// committed artifact from PR 3 onward. Each scenario is run once to warm
// the allocator, then `reps` times; the best run is reported (events/sec is
// a throughput metric — best-of-N rejects scheduler noise). v2 added the
// simulator's allocation-shape counters (slab slots/grows, heap high water,
// cancellations); v3 adds sharded fat-tree entries (fat_tree_s2/_s4) with
// the engine's window statistics — shard count, windows, stalled (idle)
// windows, cross-shard mailbox deliveries, and per-shard event counts — so
// both raw throughput and the window protocol's efficiency are tracked;
// v4 adds routing_loop_dp — the same routing-loop steady state with the
// in-switch dataplane pipeline armed (policy=detect) — so the per-packet
// tag-stage overhead rides the same >10% regression gate as everything
// else; v5 adds the hybrid fluid/packet pair fat_tree_local /
// fat_tree_local_hy — a k=8 fat-tree with congestion localized to pod 0
// (intra-pod incast) and CBR background inside every other pod, run pure
// packet and under the risk-guided hybrid engine — with sim_ms /
// sim_ms_per_sec so the speedup is measured as simulated-time per wall
// second (the event streams intentionally differ); v6 adds
// routing_loop_probe — the routing-loop steady state with the always-on
// dcdl::probe sampling at 100 us — so the time-series layer's hot-path
// overhead (hook observers plus sampler events) rides the same regression
// gate; v7 adds routing_loop_watch — the same steady state with the
// dcdl::watch early-warning stack attached (wait-for snapshots, the alert
// rule engine, periodic risk reassessment) — so the watch layer's
// overhead is gated the same way. The emission keeps one scenario object
// per line with "name" before "events_per_sec", so a v7 artifact still
// parses as a --baseline input for older binaries and vice versa.
//
//   bench_perf --hybrid [--k K] [--ms M]  hybrid-speedup probe: run the
//                                         localized-congestion fat-tree
//                                         (default k=16) pure packet and
//                                         under --hybrid risk, print the
//                                         simulated-time/sec speedup and
//                                         the fluid-time fraction
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "dcdl/device/host.hpp"
#include "dcdl/hybrid/hybrid.hpp"
#include "dcdl/probe/probe.hpp"
#include "dcdl/routing/compute.hpp"
#include "dcdl/scenarios/scenario.hpp"
#include "dcdl/sim/sharded.hpp"
#include "dcdl/topo/generators.hpp"
#include "dcdl/traffic/flow.hpp"
#include "dcdl/watch/watch.hpp"

using namespace dcdl;
using namespace dcdl::literals;
using namespace dcdl::scenarios;

namespace {

void BM_FourSwitchMillisecond(benchmark::State& state) {
  for (auto _ : state) {
    Scenario s = make_four_switch(FourSwitchParams{});
    s.sim->run_until(1_ms);
    state.counters["events"] = static_cast<double>(s.sim->events_executed());
    benchmark::DoNotOptimize(s.net->total_queued_bytes());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FourSwitchMillisecond)->Unit(benchmark::kMillisecond);

void BM_RoutingLoopMillisecond(benchmark::State& state) {
  for (auto _ : state) {
    RoutingLoopParams p;
    p.inject = Rate::gbps(8);
    Scenario s = make_routing_loop(p);
    s.sim->run_until(1_ms);
    benchmark::DoNotOptimize(s.net->total_queued_bytes());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RoutingLoopMillisecond)->Unit(benchmark::kMillisecond);

void BM_IncastMillisecond(benchmark::State& state) {
  for (auto _ : state) {
    IncastParams p;
    p.num_senders = static_cast<int>(state.range(0));
    Scenario s = make_incast(p);
    s.sim->run_until(1_ms);
    benchmark::DoNotOptimize(s.net->total_queued_bytes());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IncastMillisecond)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_FatTreePermutation(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Simulator sim;
    const topo::FatTreeTopo ft = topo::make_fat_tree(4);
    Topology topo = ft.topo;
    Network net(sim, topo, NetConfig{});
    routing::install_shortest_paths(net);
    const auto n = ft.all_hosts.size();
    for (std::size_t i = 0; i < n; ++i) {
      FlowSpec f;
      f.id = static_cast<FlowId>(i + 1);
      f.src_host = ft.all_hosts[i];
      f.dst_host = ft.all_hosts[(i + n / 2) % n];
      f.packet_bytes = 1000;
      net.host_at(f.src_host).add_flow(f);
    }
    state.ResumeTiming();
    sim.run_until(200_us);
    benchmark::DoNotOptimize(net.total_queued_bytes());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FatTreePermutation)->Unit(benchmark::kMillisecond);

void BM_EventQueueChurn(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    std::int64_t fired = 0;
    for (int i = 0; i < 100'000; ++i) {
      sim.schedule_at(Time{(i * 7919) % 1'000'000}, [&fired] { ++fired; });
    }
    sim.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 100'000);
}
BENCHMARK(BM_EventQueueChurn)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// --json mode: fixed scenario timings as a committed artifact.

/// Everything one timed run yields. Legacy runs fill only `counters`;
/// sharded runs add the engine's window statistics (counters are summed
/// over the control plus all shard simulators so slab/heap shapes remain
/// comparable across engines).
struct RunOutcome {
  Simulator::Counters counters{};
  int shards = 0;  ///< 0 = legacy engine
  std::uint64_t windows = 0;
  std::uint64_t device_passes = 0;
  std::uint64_t stalled_windows = 0;  ///< shard-passes that fired 0 events
  std::uint64_t cross_shard_events = 0;
  std::vector<std::uint64_t> shard_events;
  /// Hybrid fluid/packet engine (v5 scenarios only).
  bool hybrid = false;
  double fluid_fraction = 0;
  std::uint64_t zoom_events = 0;
  std::uint64_t credited_packets = 0;
};

struct JsonResult {
  std::string name;
  std::uint64_t events = 0;
  double best_wall_ms = 0;
  double events_per_sec = 0;
  /// Simulated horizon (0 = not tracked for this scenario); with
  /// best_wall_ms this yields sim_ms_per_sec, the hybrid speedup metric.
  double sim_ms = 0;
  RunOutcome outcome{};
};

/// Runs `body` (which returns the run's outcome) once to warm up, then
/// `reps` times; reports the fastest run.
template <typename Body>
JsonResult measure(const std::string& name, int reps, Body body) {
  JsonResult r;
  r.name = name;
  body();  // warm-up: page in code, size allocator pools
  for (int i = 0; i < reps; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    const RunOutcome outcome = body();
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    if (i == 0 || ms < r.best_wall_ms) {
      r.best_wall_ms = ms;
      r.events = outcome.counters.executed;
      r.outcome = outcome;
    }
  }
  r.events_per_sec = static_cast<double>(r.events) / (r.best_wall_ms / 1e3);
  return r;
}

RunOutcome run_ring() {
  RingDeadlockParams p;
  Scenario s = make_ring_deadlock(p);
  s.sim->run_until(2_ms);
  benchmark::DoNotOptimize(s.net->total_queued_bytes());
  return RunOutcome{s.sim->counters()};
}

RunOutcome run_routing_loop() {
  // Below the Eq. 3 boundary: packets circulate until TTL expiry forever,
  // the sustained per-packet/per-event steady state the refactor targets.
  RoutingLoopParams p;
  p.inject = Rate::gbps(4);
  Scenario s = make_routing_loop(p);
  s.sim->run_until(4_ms);
  benchmark::DoNotOptimize(s.net->total_queued_bytes());
  return RunOutcome{s.sim->counters()};
}

RunOutcome run_routing_loop_probe() {
  // The routing-loop steady state with the always-on dcdl::probe attached
  // at its default 100 us interval — hop-wait/latency histograms, PFC pause
  // tracking, per-link utilization accumulators, the sampler event stream.
  // Compare against routing_loop, which differs only in this instrument;
  // the acceptance budget is < 5% events/sec (the probe also rides the
  // shared >10% --baseline regression gate).
  RoutingLoopParams p;
  p.inject = Rate::gbps(4);
  Scenario s = make_routing_loop(p);
  probe::RunProbe rp(*s.net);
  rp.start(*s.sim, 4_ms);
  s.sim->run_until(4_ms);
  rp.finalize();
  benchmark::DoNotOptimize(rp.fct().count());
  benchmark::DoNotOptimize(s.net->total_queued_bytes());
  return RunOutcome{s.sim->counters()};
}

RunOutcome run_routing_loop_watch() {
  // The routing-loop steady state with the always-on dcdl::watch
  // early-warning layer attached at its default 100 us tick — wait-for
  // graph snapshots, pause-pressure/slope signals, the rule engine, and
  // the periodic risk reassessment. Compare against routing_loop, which
  // differs only in this instrument; the acceptance budget is < 5%
  // events/sec (the watch also rides the shared >10% --baseline gate).
  RoutingLoopParams p;
  p.inject = Rate::gbps(4);
  Scenario s = make_routing_loop(p);
  watch::RunWatch rw(*s.net, s.flows, {});
  rw.start(*s.sim, 4_ms);
  s.sim->run_until(4_ms);
  benchmark::DoNotOptimize(rw.engine().fires(watch::Severity::kWarn));
  benchmark::DoNotOptimize(s.net->total_queued_bytes());
  return RunOutcome{s.sim->counters()};
}

RunOutcome run_routing_loop_dp() {
  // The same steady state with the dataplane pipeline armed in its
  // detect-only policy: every forwarded packet takes the tag stage and
  // every Xoff carries a PauseTag, isolating the pipeline's hot-path cost
  // (compare against routing_loop, which differs only in this knob).
  RoutingLoopParams p;
  p.inject = Rate::gbps(4);
  p.dataplane.policy = dataplane::RecoveryPolicy::kDetect;
  Scenario s = make_routing_loop(p);
  s.sim->run_until(4_ms);
  benchmark::DoNotOptimize(s.net->total_queued_bytes());
  return RunOutcome{s.sim->counters()};
}

/// Fat-tree permutation at `shards` shards (0 = legacy engine). The
/// scenario is identical for every shard count — so are the delivered
/// streams; only the wall clock and the window statistics differ.
RunOutcome run_fat_tree(int shards, int k, Time run_for) {
  Simulator sim;
  const topo::FatTreeTopo ft = topo::make_fat_tree(k);
  Topology topo = ft.topo;
  std::optional<ScopedShardRequest> req;
  if (shards >= 1) req.emplace(shards);
  Network net(sim, topo, NetConfig{});
  req.reset();
  routing::install_shortest_paths(net);
  const auto n = ft.all_hosts.size();
  for (std::size_t i = 0; i < n; ++i) {
    FlowSpec f;
    f.id = static_cast<FlowId>(i + 1);
    f.src_host = ft.all_hosts[i];
    f.dst_host = ft.all_hosts[(i + n / 2) % n];
    f.packet_bytes = 1000;
    net.host_at(f.src_host).add_flow(f);
  }
  sim.run_until(run_for);
  benchmark::DoNotOptimize(net.total_queued_bytes());

  RunOutcome out;
  out.counters = sim.counters();  // executed already includes shard credits
  if (net.sharded()) {
    ShardedEngine& eng = net.engine();
    out.shards = eng.num_shards();
    const ShardedEngine::Stats& st = eng.stats();
    out.windows = st.windows;
    out.device_passes = st.device_passes;
    out.cross_shard_events = st.cross_shard_events;
    for (const ShardedEngine::ShardStats& sh : st.shard) {
      out.shard_events.push_back(sh.executed);
      out.stalled_windows += sh.idle_windows;
    }
    for (int i = 0; i < eng.num_shards(); ++i) {
      const Simulator::Counters c =
          eng.shard_sim(static_cast<std::uint32_t>(i)).counters();
      out.counters.scheduled += c.scheduled;
      out.counters.cancelled += c.cancelled;
      out.counters.slab_grows += c.slab_grows;
      out.counters.slab_slots += c.slab_slots;
      out.counters.heap_high_water += c.heap_high_water;
    }
  }
  return out;
}

/// Localized congestion on a k-ary fat-tree: pod 0 runs a greedy intra-pod
/// incast (every pod-0 host blasts host 0, crossing the aggregation layer),
/// while pods 1..k-1 carry a steady intra-pod CBR permutation at ~10% line
/// rate. The hot traffic never leaves pod 0 and the background never touches
/// it, so under the risk-guided hybrid engine the background pods fluidize
/// (token-bucket pacers, unsaturated paths, link-disjoint from every packet
/// flow) while pod 0 stays packet-accurate — the workload the zoom was built
/// for. The event streams differ between modes by design; compare
/// simulated-time per wall second, not events/sec.
RunOutcome run_fat_tree_localized(int k, Time run_for, hybrid::Mode mode) {
  Simulator sim;
  const topo::FatTreeTopo ft = topo::make_fat_tree(k);
  Topology topo = ft.topo;
  Network net(sim, topo, NetConfig{});
  routing::install_shortest_paths(net);

  const int half = k / 2;
  const int hp = half * half;  // hosts per pod
  std::vector<FlowSpec> flows;
  FlowId next_id = 1;
  // Hot pod: every pod-0 host except the victim sends greedy (no pacer) to
  // pod-0 host 0. Greedy flows are never fluidization-eligible.
  for (int i = 1; i < hp; ++i) {
    FlowSpec f;
    f.id = next_id++;
    f.src_host = ft.all_hosts[static_cast<std::size_t>(i)];
    f.dst_host = ft.all_hosts[0];
    f.packet_bytes = 1000;
    net.host_at(f.src_host).add_flow(f);
    flows.push_back(f);
  }
  // Background pods: host i -> host (i + half) % hp inside the same pod — a
  // bijection that always crosses to the next edge switch, exercising the
  // pod's aggregation layer without ever reaching the core tier.
  for (int pod = 1; pod < k; ++pod) {
    for (int i = 0; i < hp; ++i) {
      FlowSpec f;
      f.id = next_id++;
      f.src_host = ft.all_hosts[static_cast<std::size_t>(pod * hp + i)];
      f.dst_host =
          ft.all_hosts[static_cast<std::size_t>(pod * hp + (i + half) % hp)];
      f.packet_bytes = 1000;
      net.host_at(f.src_host).add_flow(
          f, std::make_unique<TokenBucketPacer>(Rate::gbps(4),
                                                2 * f.packet_bytes));
      flows.push_back(f);
    }
  }

  std::optional<hybrid::HybridController> ctl;
  if (mode != hybrid::Mode::kOff) {
    hybrid::HybridConfig hc;
    hc.mode = mode;
    ctl.emplace(net, flows, hc);
  }
  sim.run_until(run_for);
  benchmark::DoNotOptimize(net.total_queued_bytes());

  RunOutcome out;
  if (ctl) {
    ctl->finalize();
    out.hybrid = true;
    out.fluid_fraction = ctl->stats().fluid_fraction;
    out.zoom_events = ctl->stats().zoom_events;
    out.credited_packets = ctl->stats().credited_packets;
  }
  out.counters = sim.counters();
  return out;
}

RunOutcome run_event_churn() {
  Simulator sim;
  std::int64_t fired = 0;
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 100'000; ++i) {
      sim.schedule_in(Time{(i * 7919) % 1'000'000 + 1},
                      [&fired] { ++fired; });
    }
    sim.run();
  }
  benchmark::DoNotOptimize(fired);
  return RunOutcome{sim.counters()};
}

std::vector<JsonResult> run_suite() {
  constexpr int kReps = 5;
  std::vector<JsonResult> results;
  results.push_back(measure("ring", kReps, run_ring));
  results.push_back(measure("routing_loop", kReps, run_routing_loop));
  results.push_back(
      measure("routing_loop_probe", kReps, run_routing_loop_probe));
  results.push_back(
      measure("routing_loop_watch", kReps, run_routing_loop_watch));
  results.push_back(measure("routing_loop_dp", kReps, run_routing_loop_dp));
  results.push_back(measure("fat_tree", kReps,
                            [] { return run_fat_tree(0, 4, 500_us); }));
  results.push_back(measure("fat_tree_s2", kReps,
                            [] { return run_fat_tree(2, 4, 500_us); }));
  results.push_back(measure("fat_tree_s4", kReps,
                            [] { return run_fat_tree(4, 4, 500_us); }));
  {
    JsonResult r = measure("fat_tree_local", kReps, [] {
      return run_fat_tree_localized(8, 500_us, hybrid::Mode::kOff);
    });
    r.sim_ms = 0.5;
    results.push_back(std::move(r));
    r = measure("fat_tree_local_hy", kReps, [] {
      return run_fat_tree_localized(8, 500_us, hybrid::Mode::kRisk);
    });
    r.sim_ms = 0.5;
    results.push_back(std::move(r));
  }
  results.push_back(measure("event_churn", kReps, run_event_churn));
  return results;
}

void print_suite(const std::vector<JsonResult>& results) {
  for (const JsonResult& r : results) {
    std::printf("%-14s %10llu events  %8.2f ms  %12.0f events/sec  "
                "(slab %zu, heap hw %zu, cancelled %llu)\n",
                r.name.c_str(), static_cast<unsigned long long>(r.events),
                r.best_wall_ms, r.events_per_sec, r.outcome.counters.slab_slots,
                r.outcome.counters.heap_high_water,
                static_cast<unsigned long long>(r.outcome.counters.cancelled));
    if (r.outcome.shards > 0) {
      std::printf("  %-12s %d shards, %llu windows (%llu passes, %llu "
                  "stalled), %llu cross-shard events\n",
                  "", r.outcome.shards,
                  static_cast<unsigned long long>(r.outcome.windows),
                  static_cast<unsigned long long>(r.outcome.device_passes),
                  static_cast<unsigned long long>(r.outcome.stalled_windows),
                  static_cast<unsigned long long>(
                      r.outcome.cross_shard_events));
    }
    if (r.sim_ms > 0) {
      std::printf("  %-12s %.1f sim ms (%.2f sim-ms/sec)", "", r.sim_ms,
                  r.sim_ms / (r.best_wall_ms / 1e3));
      if (r.outcome.hybrid) {
        std::printf(", fluid fraction %.3f, %llu zoom event(s), %llu "
                    "credited pkt(s)",
                    r.outcome.fluid_fraction,
                    static_cast<unsigned long long>(r.outcome.zoom_events),
                    static_cast<unsigned long long>(
                        r.outcome.credited_packets));
      }
      std::printf("\n");
    }
  }
}

int run_json_mode(const std::string& path) {
  const std::vector<JsonResult> results = run_suite();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_perf: cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"schema\": \"dcdl.bench_perf.v7\",\n");
  std::fprintf(f, "  \"scenarios\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const JsonResult& r = results[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"events\": %llu, "
                 "\"best_wall_ms\": %.3f, \"events_per_sec\": %.0f, "
                 "\"events_cancelled\": %llu, \"slab_slots\": %zu, "
                 "\"slab_grows\": %llu, \"heap_high_water\": %zu",
                 r.name.c_str(),
                 static_cast<unsigned long long>(r.events), r.best_wall_ms,
                 r.events_per_sec,
                 static_cast<unsigned long long>(r.outcome.counters.cancelled),
                 r.outcome.counters.slab_slots,
                 static_cast<unsigned long long>(r.outcome.counters.slab_grows),
                 r.outcome.counters.heap_high_water);
    if (r.outcome.shards > 0) {
      std::fprintf(
          f,
          ", \"shards\": %d, \"windows\": %llu, \"device_passes\": %llu, "
          "\"stalled_windows\": %llu, \"cross_shard_events\": %llu, "
          "\"shard_events\": [",
          r.outcome.shards, static_cast<unsigned long long>(r.outcome.windows),
          static_cast<unsigned long long>(r.outcome.device_passes),
          static_cast<unsigned long long>(r.outcome.stalled_windows),
          static_cast<unsigned long long>(r.outcome.cross_shard_events));
      for (std::size_t s = 0; s < r.outcome.shard_events.size(); ++s) {
        std::fprintf(f, "%s%llu", s > 0 ? ", " : "",
                     static_cast<unsigned long long>(
                         r.outcome.shard_events[s]));
      }
      std::fprintf(f, "]");
    }
    if (r.sim_ms > 0) {
      std::fprintf(f, ", \"sim_ms\": %.3f, \"sim_ms_per_sec\": %.2f",
                   r.sim_ms, r.sim_ms / (r.best_wall_ms / 1e3));
    }
    if (r.outcome.hybrid) {
      std::fprintf(f,
                   ", \"hybrid\": true, \"fluid_fraction\": %.4f, "
                   "\"zoom_events\": %llu, \"credited_packets\": %llu",
                   r.outcome.fluid_fraction,
                   static_cast<unsigned long long>(r.outcome.zoom_events),
                   static_cast<unsigned long long>(
                       r.outcome.credited_packets));
    }
    std::fprintf(f, "}%s\n", i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  print_suite(results);
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

// ---------------------------------------------------------------------------
// --baseline mode: regression gate against a committed artifact.

/// Pulls {name -> events_per_sec} out of a dcdl.bench_perf.v1/v2/v3 JSON
/// file with a purpose-built scan (all schemas emit one scenario object per
/// line with "name" before "events_per_sec").
std::vector<std::pair<std::string, double>> parse_baseline(
    const std::string& text) {
  std::vector<std::pair<std::string, double>> out;
  std::size_t pos = 0;
  while ((pos = text.find("\"name\"", pos)) != std::string::npos) {
    const std::size_t open = text.find('"', pos + 6 + 1);
    if (open == std::string::npos) break;
    const std::size_t close = text.find('"', open + 1);
    if (close == std::string::npos) break;
    const std::string name = text.substr(open + 1, close - open - 1);
    const std::size_t eps = text.find("\"events_per_sec\"", close);
    if (eps == std::string::npos) break;
    const std::size_t colon = text.find(':', eps);
    if (colon == std::string::npos) break;
    out.emplace_back(name, std::strtod(text.c_str() + colon + 1, nullptr));
    pos = close;
  }
  return out;
}

int run_baseline_mode(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_perf: cannot read baseline %s\n",
                 path.c_str());
    return 1;
  }
  std::string text;
  char buf[4096];
  for (std::size_t n; (n = std::fread(buf, 1, sizeof(buf), f)) > 0;) {
    text.append(buf, n);
  }
  std::fclose(f);
  const auto baseline = parse_baseline(text);
  if (baseline.empty()) {
    std::fprintf(stderr, "bench_perf: no scenarios found in %s\n",
                 path.c_str());
    return 1;
  }

  const std::vector<JsonResult> results = run_suite();
  print_suite(results);

  constexpr double kRegressionTolerance = 0.10;
  int regressions = 0;
  for (const auto& [name, base_eps] : baseline) {
    const JsonResult* cur = nullptr;
    for (const JsonResult& r : results) {
      if (r.name == name) { cur = &r; break; }
    }
    if (cur == nullptr) {
      std::printf("%-14s MISSING (in baseline, not in suite)\n",
                  name.c_str());
      ++regressions;
      continue;
    }
    const double ratio = base_eps > 0 ? cur->events_per_sec / base_eps : 1.0;
    const bool regressed = ratio < 1.0 - kRegressionTolerance;
    std::printf("%-14s %12.0f -> %12.0f events/sec  %+6.1f%%  %s\n",
                name.c_str(), base_eps, cur->events_per_sec,
                (ratio - 1.0) * 100, regressed ? "REGRESSED" : "ok");
    regressions += regressed ? 1 : 0;
  }
  if (regressions > 0) {
    std::fprintf(stderr,
                 "bench_perf: %d scenario(s) regressed more than %.0f%% vs "
                 "%s\n",
                 regressions, kRegressionTolerance * 100, path.c_str());
    return 1;
  }
  std::printf("bench_perf: no events/sec regression beyond %.0f%% vs %s\n",
              kRegressionTolerance * 100, path.c_str());
  return 0;
}

// ---------------------------------------------------------------------------
// --shards mode: sharded-scaling probe.

int run_shards_mode(int shards, int k, double sim_ms) {
  if (shards < 1 || k < 4 || k % 2 != 0 || sim_ms <= 0) {
    std::fprintf(stderr,
                 "bench_perf: --shards needs shards >= 1, even k >= 4, "
                 "ms > 0\n");
    return 1;
  }
  const Time run_for = Time{static_cast<std::int64_t>(sim_ms * 1e9)};
  constexpr int kReps = 3;
  std::printf("fat-tree k=%d, %.1f simulated ms, best of %d:\n", k, sim_ms,
              kReps);
  const JsonResult one = measure(
      "fat_tree_s1", kReps, [k, run_for] { return run_fat_tree(1, k, run_for); });
  const JsonResult n = measure(
      "fat_tree_s" + std::to_string(shards), kReps,
      [shards, k, run_for] { return run_fat_tree(shards, k, run_for); });
  print_suite({one, n});
  std::printf("speedup (%d shards vs 1): %.2fx\n", n.outcome.shards,
              one.best_wall_ms / n.best_wall_ms);
  return 0;
}

// ---------------------------------------------------------------------------
// --hybrid mode: fluid/packet zoom speedup probe.

int run_hybrid_mode(int k, double sim_ms) {
  if (k < 4 || k % 2 != 0 || sim_ms <= 0) {
    std::fprintf(stderr, "bench_perf: --hybrid needs even k >= 4, ms > 0\n");
    return 1;
  }
  const Time run_for = Time{static_cast<std::int64_t>(sim_ms * 1e9)};
  constexpr int kReps = 3;
  std::printf(
      "fat-tree k=%d localized congestion, %.1f simulated ms, best of %d:\n",
      k, sim_ms, kReps);
  JsonResult off = measure("local_packet", kReps, [k, run_for] {
    return run_fat_tree_localized(k, run_for, hybrid::Mode::kOff);
  });
  off.sim_ms = sim_ms;
  JsonResult hy = measure("local_hybrid", kReps, [k, run_for] {
    return run_fat_tree_localized(k, run_for, hybrid::Mode::kRisk);
  });
  hy.sim_ms = sim_ms;
  print_suite({off, hy});
  std::printf("simulated-time/sec speedup (hybrid risk vs packet): %.2fx\n",
              off.best_wall_ms / hy.best_wall_ms);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  int shards = 0, k = 16;
  double sim_ms = 1.0;
  bool shards_mode = false, hybrid_mode = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      const std::string path =
          i + 1 < argc && argv[i + 1][0] != '-' ? argv[i + 1]
                                                : "BENCH_perf.json";
      return run_json_mode(path);
    }
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      return run_json_mode(argv[i] + 7);
    }
    if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc) {
      return run_baseline_mode(argv[i + 1]);
    }
    if (std::strncmp(argv[i], "--baseline=", 11) == 0) {
      return run_baseline_mode(argv[i] + 11);
    }
    if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      shards_mode = true;
      shards = std::atoi(argv[++i]);
      continue;
    }
    if (std::strcmp(argv[i], "--hybrid") == 0) {
      hybrid_mode = true;
      continue;
    }
    if (std::strcmp(argv[i], "--k") == 0 && i + 1 < argc) {
      k = std::atoi(argv[++i]);
      continue;
    }
    if (std::strcmp(argv[i], "--ms") == 0 && i + 1 < argc) {
      sim_ms = std::atof(argv[++i]);
      continue;
    }
  }
  if (shards_mode) return run_shards_mode(shards, k, sim_ms);
  if (hybrid_mode) return run_hybrid_mode(k, sim_ms);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
