// Simulator performance benchmarks.
//
// Three modes:
//   bench_perf [google-benchmark flags]   microbenchmark suite (BM_*)
//   bench_perf --json [PATH]              fixed scenario timings written as
//                                         dcdl.bench_perf.v2 JSON (default
//                                         PATH: BENCH_perf.json)
//   bench_perf --baseline PATH            rerun the fixed scenarios and
//                                         compare events/sec against a
//                                         committed v1/v2 artifact; exits
//                                         non-zero on a >10% regression
//
// The --json mode measures events/sec on the paper's scenarios (Fig. 1
// ring, Fig. 2 routing loop, fat-tree permutation) plus the pure scheduler
// churn micro, so the perf trajectory of the hot path is tracked as a
// committed artifact from PR 3 onward. Each scenario is run once to warm
// the allocator, then `reps` times; the best run is reported (events/sec is
// a throughput metric — best-of-N rejects scheduler noise). v2 additionally
// records the simulator's allocation-shape counters (slab slots/grows, heap
// high water, cancellations) so accidental arena regressions show up in the
// diff even when wall time happens to absorb them.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "dcdl/device/host.hpp"
#include "dcdl/routing/compute.hpp"
#include "dcdl/scenarios/scenario.hpp"
#include "dcdl/topo/generators.hpp"

using namespace dcdl;
using namespace dcdl::literals;
using namespace dcdl::scenarios;

namespace {

void BM_FourSwitchMillisecond(benchmark::State& state) {
  for (auto _ : state) {
    Scenario s = make_four_switch(FourSwitchParams{});
    s.sim->run_until(1_ms);
    state.counters["events"] = static_cast<double>(s.sim->events_executed());
    benchmark::DoNotOptimize(s.net->total_queued_bytes());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FourSwitchMillisecond)->Unit(benchmark::kMillisecond);

void BM_RoutingLoopMillisecond(benchmark::State& state) {
  for (auto _ : state) {
    RoutingLoopParams p;
    p.inject = Rate::gbps(8);
    Scenario s = make_routing_loop(p);
    s.sim->run_until(1_ms);
    benchmark::DoNotOptimize(s.net->total_queued_bytes());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RoutingLoopMillisecond)->Unit(benchmark::kMillisecond);

void BM_IncastMillisecond(benchmark::State& state) {
  for (auto _ : state) {
    IncastParams p;
    p.num_senders = static_cast<int>(state.range(0));
    Scenario s = make_incast(p);
    s.sim->run_until(1_ms);
    benchmark::DoNotOptimize(s.net->total_queued_bytes());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IncastMillisecond)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_FatTreePermutation(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Simulator sim;
    const topo::FatTreeTopo ft = topo::make_fat_tree(4);
    Topology topo = ft.topo;
    Network net(sim, topo, NetConfig{});
    routing::install_shortest_paths(net);
    const auto n = ft.all_hosts.size();
    for (std::size_t i = 0; i < n; ++i) {
      FlowSpec f;
      f.id = static_cast<FlowId>(i + 1);
      f.src_host = ft.all_hosts[i];
      f.dst_host = ft.all_hosts[(i + n / 2) % n];
      f.packet_bytes = 1000;
      net.host_at(f.src_host).add_flow(f);
    }
    state.ResumeTiming();
    sim.run_until(200_us);
    benchmark::DoNotOptimize(net.total_queued_bytes());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FatTreePermutation)->Unit(benchmark::kMillisecond);

void BM_EventQueueChurn(benchmark::State& state) {
  for (auto _ : state) {
    Simulator sim;
    std::int64_t fired = 0;
    for (int i = 0; i < 100'000; ++i) {
      sim.schedule_at(Time{(i * 7919) % 1'000'000}, [&fired] { ++fired; });
    }
    sim.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 100'000);
}
BENCHMARK(BM_EventQueueChurn)->Unit(benchmark::kMillisecond);

// ---------------------------------------------------------------------------
// --json mode: fixed scenario timings as a committed artifact.

struct JsonResult {
  std::string name;
  std::uint64_t events = 0;
  double best_wall_ms = 0;
  double events_per_sec = 0;
  Simulator::Counters counters{};
};

/// Runs `body` (which returns the simulator counters at completion) once to
/// warm up, then `reps` times; reports the fastest run.
template <typename Body>
JsonResult measure(const std::string& name, int reps, Body body) {
  JsonResult r;
  r.name = name;
  body();  // warm-up: page in code, size allocator pools
  for (int i = 0; i < reps; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    const Simulator::Counters counters = body();
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    if (i == 0 || ms < r.best_wall_ms) {
      r.best_wall_ms = ms;
      r.events = counters.executed;
      r.counters = counters;
    }
  }
  r.events_per_sec = static_cast<double>(r.events) / (r.best_wall_ms / 1e3);
  return r;
}

Simulator::Counters run_ring() {
  RingDeadlockParams p;
  Scenario s = make_ring_deadlock(p);
  s.sim->run_until(2_ms);
  benchmark::DoNotOptimize(s.net->total_queued_bytes());
  return s.sim->counters();
}

Simulator::Counters run_routing_loop() {
  // Below the Eq. 3 boundary: packets circulate until TTL expiry forever,
  // the sustained per-packet/per-event steady state the refactor targets.
  RoutingLoopParams p;
  p.inject = Rate::gbps(4);
  Scenario s = make_routing_loop(p);
  s.sim->run_until(4_ms);
  benchmark::DoNotOptimize(s.net->total_queued_bytes());
  return s.sim->counters();
}

Simulator::Counters run_fat_tree() {
  Simulator sim;
  const topo::FatTreeTopo ft = topo::make_fat_tree(4);
  Topology topo = ft.topo;
  Network net(sim, topo, NetConfig{});
  routing::install_shortest_paths(net);
  const auto n = ft.all_hosts.size();
  for (std::size_t i = 0; i < n; ++i) {
    FlowSpec f;
    f.id = static_cast<FlowId>(i + 1);
    f.src_host = ft.all_hosts[i];
    f.dst_host = ft.all_hosts[(i + n / 2) % n];
    f.packet_bytes = 1000;
    net.host_at(f.src_host).add_flow(f);
  }
  sim.run_until(500_us);
  benchmark::DoNotOptimize(net.total_queued_bytes());
  return sim.counters();
}

Simulator::Counters run_event_churn() {
  Simulator sim;
  std::int64_t fired = 0;
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 100'000; ++i) {
      sim.schedule_in(Time{(i * 7919) % 1'000'000 + 1},
                      [&fired] { ++fired; });
    }
    sim.run();
  }
  benchmark::DoNotOptimize(fired);
  return sim.counters();
}

std::vector<JsonResult> run_suite() {
  constexpr int kReps = 5;
  std::vector<JsonResult> results;
  results.push_back(measure("ring", kReps, run_ring));
  results.push_back(measure("routing_loop", kReps, run_routing_loop));
  results.push_back(measure("fat_tree", kReps, run_fat_tree));
  results.push_back(measure("event_churn", kReps, run_event_churn));
  return results;
}

void print_suite(const std::vector<JsonResult>& results) {
  for (const JsonResult& r : results) {
    std::printf("%-14s %10llu events  %8.2f ms  %12.0f events/sec  "
                "(slab %zu, heap hw %zu, cancelled %llu)\n",
                r.name.c_str(), static_cast<unsigned long long>(r.events),
                r.best_wall_ms, r.events_per_sec, r.counters.slab_slots,
                r.counters.heap_high_water,
                static_cast<unsigned long long>(r.counters.cancelled));
  }
}

int run_json_mode(const std::string& path) {
  const std::vector<JsonResult> results = run_suite();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_perf: cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"schema\": \"dcdl.bench_perf.v2\",\n");
  std::fprintf(f, "  \"scenarios\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const JsonResult& r = results[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"events\": %llu, "
                 "\"best_wall_ms\": %.3f, \"events_per_sec\": %.0f, "
                 "\"events_cancelled\": %llu, \"slab_slots\": %zu, "
                 "\"slab_grows\": %llu, \"heap_high_water\": %zu}%s\n",
                 r.name.c_str(),
                 static_cast<unsigned long long>(r.events), r.best_wall_ms,
                 r.events_per_sec,
                 static_cast<unsigned long long>(r.counters.cancelled),
                 r.counters.slab_slots,
                 static_cast<unsigned long long>(r.counters.slab_grows),
                 r.counters.heap_high_water,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  print_suite(results);
  std::printf("wrote %s\n", path.c_str());
  return 0;
}

// ---------------------------------------------------------------------------
// --baseline mode: regression gate against a committed artifact.

/// Pulls {name -> events_per_sec} out of a dcdl.bench_perf.v1/v2 JSON file
/// with a purpose-built scan (both schemas emit one scenario object per
/// line with "name" before "events_per_sec").
std::vector<std::pair<std::string, double>> parse_baseline(
    const std::string& text) {
  std::vector<std::pair<std::string, double>> out;
  std::size_t pos = 0;
  while ((pos = text.find("\"name\"", pos)) != std::string::npos) {
    const std::size_t open = text.find('"', pos + 6 + 1);
    if (open == std::string::npos) break;
    const std::size_t close = text.find('"', open + 1);
    if (close == std::string::npos) break;
    const std::string name = text.substr(open + 1, close - open - 1);
    const std::size_t eps = text.find("\"events_per_sec\"", close);
    if (eps == std::string::npos) break;
    const std::size_t colon = text.find(':', eps);
    if (colon == std::string::npos) break;
    out.emplace_back(name, std::strtod(text.c_str() + colon + 1, nullptr));
    pos = close;
  }
  return out;
}

int run_baseline_mode(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_perf: cannot read baseline %s\n",
                 path.c_str());
    return 1;
  }
  std::string text;
  char buf[4096];
  for (std::size_t n; (n = std::fread(buf, 1, sizeof(buf), f)) > 0;) {
    text.append(buf, n);
  }
  std::fclose(f);
  const auto baseline = parse_baseline(text);
  if (baseline.empty()) {
    std::fprintf(stderr, "bench_perf: no scenarios found in %s\n",
                 path.c_str());
    return 1;
  }

  const std::vector<JsonResult> results = run_suite();
  print_suite(results);

  constexpr double kRegressionTolerance = 0.10;
  int regressions = 0;
  for (const auto& [name, base_eps] : baseline) {
    const JsonResult* cur = nullptr;
    for (const JsonResult& r : results) {
      if (r.name == name) { cur = &r; break; }
    }
    if (cur == nullptr) {
      std::printf("%-14s MISSING (in baseline, not in suite)\n",
                  name.c_str());
      ++regressions;
      continue;
    }
    const double ratio = base_eps > 0 ? cur->events_per_sec / base_eps : 1.0;
    const bool regressed = ratio < 1.0 - kRegressionTolerance;
    std::printf("%-14s %12.0f -> %12.0f events/sec  %+6.1f%%  %s\n",
                name.c_str(), base_eps, cur->events_per_sec,
                (ratio - 1.0) * 100, regressed ? "REGRESSED" : "ok");
    regressions += regressed ? 1 : 0;
  }
  if (regressions > 0) {
    std::fprintf(stderr,
                 "bench_perf: %d scenario(s) regressed more than %.0f%% vs "
                 "%s\n",
                 regressions, kRegressionTolerance * 100, path.c_str());
    return 1;
  }
  std::printf("bench_perf: no events/sec regression beyond %.0f%% vs %s\n",
              kRegressionTolerance * 100, path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) {
      const std::string path =
          i + 1 < argc && argv[i + 1][0] != '-' ? argv[i + 1]
                                                : "BENCH_perf.json";
      return run_json_mode(path);
    }
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      return run_json_mode(argv[i] + 7);
    }
    if (std::strcmp(argv[i], "--baseline") == 0 && i + 1 < argc) {
      return run_baseline_mode(argv[i + 1]);
    }
    if (std::strncmp(argv[i], "--baseline=", 11) == 0) {
      return run_baseline_mode(argv[i] + 11);
    }
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
