// §1 taxonomy quantified: reactive recovery (PFC storm watchdog) vs
// proactive prevention (rate limiting / TTL classes) on the Figure-4
// deadlock and on a deadlocked routing loop.
//
// Metrics per strategy: whether a deadlock (transient or permanent)
// occurred, goodput over the run, packets dropped by the recovery (the
// "disruption" the paper warns about), and the longest delivery stall.
//
// Flags: --run_ms=40.
#include <algorithm>
#include <cstdio>
#include <string>

#include "dcdl/common/flags.hpp"
#include "dcdl/device/host.hpp"
#include "dcdl/device/switch.hpp"
#include "dcdl/mitigation/dcqcn.hpp"
#include "dcdl/mitigation/smart_limiter.hpp"
#include "dcdl/mitigation/watchdog.hpp"
#include "dcdl/routing/compute.hpp"
#include "dcdl/scenarios/scenario.hpp"
#include "dcdl/stats/csv.hpp"
#include "dcdl/stats/hooks.hpp"

using namespace dcdl;
using namespace dcdl::literals;
using namespace dcdl::scenarios;

namespace {

struct StrategyResult {
  bool permanent_deadlock = false;
  double goodput_gbps = 0;
  std::uint64_t dropped_packets = 0;
  double longest_stall_ms = 0;
};

// Builds the Figure-4 scenario from scratch with ECN marking and
// DCQCN-paced flows (the §4 "preventing PFC" strategy).
Scenario make_fig4_dcqcn() {
  Scenario s;
  s.sim = std::make_unique<Simulator>();
  s.topo = std::make_unique<Topology>();
  Topology& t = *s.topo;
  const NodeId A = t.add_switch("A"), B = t.add_switch("B");
  const NodeId C = t.add_switch("C"), D = t.add_switch("D");
  for (const auto [x, y] : {std::pair{A, B}, {B, C}, {C, D}, {D, A}}) {
    t.add_link(x, y, Rate::gbps(40), Time{2'000'000});
  }
  const NodeId hA = t.add_host("hA"), hB = t.add_host("hB");
  const NodeId hC = t.add_host("hC"), hD = t.add_host("hD");
  const NodeId hB3 = t.add_host("hB3"), hC3 = t.add_host("hC3");
  for (const auto [sw, h] : {std::pair{A, hA}, {B, hB}, {C, hC}, {D, hD},
                             {B, hB3}, {C, hC3}}) {
    t.add_link(sw, h, Rate::gbps(40), Time{2'000'000});
  }
  NetConfig cfg;
  cfg.tx_jitter = Time{10'000};
  cfg.ecn.enabled = true;
  cfg.ecn.mark_threshold_bytes = 20 * 1024;
  s.net = std::make_unique<Network>(*s.sim, t, cfg);
  routing::install_flow_path(*s.net, 1, {hA, A, B, C, D, hD});
  routing::install_flow_path(*s.net, 2, {hC, C, D, A, B, hB});
  routing::install_flow_path(*s.net, 3, {hB3, B, C, hC3});
  int i = 0;
  for (const auto [src, dst] : {std::pair{hA, hD}, {hC, hB}, {hB3, hC3}}) {
    FlowSpec f;
    f.id = static_cast<FlowId>(++i);
    f.src_host = src;
    f.dst_host = dst;
    f.packet_bytes = 1000;
    f.ttl = 64;
    f.ecn_capable = true;
    s.net->host_at(src).add_flow(
        f,
        std::make_unique<mitigation::DcqcnPacer>(mitigation::DcqcnParams{}));
    s.flows.push_back(f);
  }
  return s;
}

StrategyResult run_four_switch(const std::string& strategy, Time run_for) {
  FourSwitchParams p;
  p.with_flow3 = true;
  if (strategy == "proactive_rate_limit") p.flow3_limit = Rate::gbps(2);
  Scenario s = strategy == "proactive_dcqcn" ? make_fig4_dcqcn()
                                             : make_four_switch(p);
  if (strategy == "proactive_planner") {
    // §4's "intelligent rate limiting", automated: shape only the flows
    // the risk analyzer names, at their source NICs.
    const auto plan = mitigation::plan_rate_limits(*s.net, s.flows);
    mitigation::apply_rate_limits(*s.net, plan);
  }

  std::unique_ptr<mitigation::PfcWatchdog> wd;
  if (strategy == "reactive_watchdog") {
    wd = std::make_unique<mitigation::PfcWatchdog>(
        *s.net, mitigation::PfcWatchdog::Params{});
    wd->start(Time::zero(), run_for + 100_ms);
  }

  // Track delivery gaps (stalls) across all flows.
  Time last_delivery = Time::zero();
  Time longest_gap = Time::zero();
  stats::append_hook<Time, const Packet&>(
      s.net->trace().delivered, [&](Time t, const Packet&) {
        longest_gap = std::max(longest_gap, t - last_delivery);
        last_delivery = t;
      });

  s.sim->run_until(run_for);
  StrategyResult r;
  std::int64_t delivered = 0;
  for (const FlowSpec& f : s.flows) {
    delivered += s.net->host_at(f.dst_host).delivered_bytes(f.id);
  }
  r.goodput_gbps = static_cast<double>(delivered) * 8 / run_for.sec() / 1e9;
  r.dropped_packets = s.net->drops(DropReason::kWatchdogReset);
  longest_gap = std::max(longest_gap, s.sim->now() - last_delivery);
  r.longest_stall_ms = longest_gap.ms();
  r.permanent_deadlock = analysis::stop_and_drain(*s.net, 30_ms).deadlocked;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const Time run_for = Time{flags.get_int("run_ms", 40) * 1'000'000'000};
  flags.check_unused();

  stats::CsvWriter csv;
  std::printf("# §1 reactive vs proactive deadlock handling "
              "(Figure-4 workload, %lld ms)\n",
              static_cast<long long>(run_for.ps() / 1'000'000'000));
  csv.header({"strategy", "permanent_deadlock", "goodput_gbps",
              "packets_dropped", "longest_stall_ms"});
  for (const std::string strategy :
       {"none", "reactive_watchdog", "proactive_rate_limit",
        "proactive_planner", "proactive_dcqcn"}) {
    const StrategyResult r = run_four_switch(strategy, run_for);
    csv.row({strategy, stats::CsvWriter::num(std::int64_t{r.permanent_deadlock}),
             stats::CsvWriter::num(r.goodput_gbps),
             stats::CsvWriter::num(static_cast<std::int64_t>(r.dropped_packets)),
             stats::CsvWriter::num(r.longest_stall_ms)});
  }
  std::printf("# paper expectation: no handling -> permanent zero-throughput "
              "deadlock; the watchdog restores flow but drops packets and "
              "stalls for the storm threshold; proactive prevention avoids "
              "both\n");
  return 0;
}
