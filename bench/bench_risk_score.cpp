// Beyond the paper: a tighter-than-CBD deadlock condition, evaluated.
//
// The paper (§3 summary): "While we cannot obtain the tightest condition
// (i.e., necessary and sufficient condition), we know that a tighter
// condition should include those factors [traffic matrix, TTL, flow
// rates]." analysis::assess_deadlock_risk is such a condition: the BDG
// cycle (necessary) + max-min stable rates, with the reachability rule
// "lockable iff at most one cycle link is slack (utilization < 0.95)".
//
// This harness scores the rule against packet-level outcomes across the
// full scenario battery (multiple seeds where formation is stochastic)
// and prints a confusion summary.
//
// Flags: --run_ms=15, --seeds=3.
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "dcdl/analysis/risk.hpp"
#include "dcdl/common/flags.hpp"
#include "dcdl/scenarios/scenario.hpp"
#include "dcdl/stats/csv.hpp"

using namespace dcdl;
using namespace dcdl::literals;
using namespace dcdl::analysis;
using namespace dcdl::scenarios;

namespace {

struct Case {
  std::string name;
  std::function<Scenario(std::uint64_t seed)> build;
  std::vector<Rate> demands;  // analyzer inputs (zero = greedy)
};

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const Time run_for = Time{flags.get_int("run_ms", 15) * 1'000'000'000};
  const int seeds = static_cast<int>(flags.get_int("seeds", 3));
  flags.check_unused();

  std::vector<Case> cases;
  cases.push_back({"fig3_two_flows",
                   [](std::uint64_t seed) {
                     FourSwitchParams p;
                     p.seed = seed;
                     return make_four_switch(p);
                   },
                   {}});
  cases.push_back({"fig4_three_flows",
                   [](std::uint64_t seed) {
                     FourSwitchParams p;
                     p.with_flow3 = true;
                     p.seed = seed;
                     return make_four_switch(p);
                   },
                   {}});
  for (const double g : {2.0, 3.0, 8.0}) {
    cases.push_back({"fig5_limit_" + std::to_string(static_cast<int>(g)) + "G",
                     [g](std::uint64_t seed) {
                       FourSwitchParams p;
                       p.with_flow3 = true;
                       p.flow3_limit = Rate::gbps(g);
                       p.seed = seed;
                       return make_four_switch(p);
                     },
                     {Rate::zero(), Rate::zero(), Rate::gbps(g)}});
  }
  for (const double g : {3.0, 4.0, 6.0, 9.0}) {
    cases.push_back({"loop_" + std::to_string(static_cast<int>(g)) + "G",
                     [g](std::uint64_t) {
                       RoutingLoopParams p;
                       p.inject = Rate::gbps(g);
                       return make_routing_loop(p);
                     },
                     {Rate::gbps(g)}});
  }
  cases.push_back({"ring3_span2",
                   [](std::uint64_t seed) {
                     RingDeadlockParams p;
                     p.seed = seed;
                     return make_ring_deadlock(p);
                   },
                   {}});
  cases.push_back({"incast",
                   [](std::uint64_t) { return make_incast(IncastParams{}); },
                   {}});
  cases.push_back({"valley_two_flows",
                   [](std::uint64_t seed) {
                     ValleyViolationParams p;
                     p.with_extra_flow = false;
                     p.seed = seed;
                     return make_valley_violation(p);
                   },
                   {}});
  // Known counterexample to the slack rule (see
  // tests/test_valley_violation.cpp): max-min rates say "safe", the
  // start-up transient says otherwise.
  cases.push_back({"valley_three_flows",
                   [](std::uint64_t seed) {
                     ValleyViolationParams p;
                     p.seed = seed;
                     return make_valley_violation(p);
                   },
                   {}});

  stats::CsvWriter csv;
  std::printf("# tighter-condition evaluation: slack-link rule vs packet "
              "simulation (%d seed(s), %lld ms runs)\n",
              seeds, static_cast<long long>(run_for.ps() / 1'000'000'000));
  csv.header({"scenario", "cbd", "min_cycle_util", "slack_links",
              "predicted_lockable", "observed_deadlock_fraction", "verdict"});

  int agree = 0, total = 0;
  for (const Case& c : cases) {
    Scenario probe = c.build(1);
    const RiskReport risk =
        assess_deadlock_risk(*probe.net, probe.flows, c.demands);
    int deadlocks = 0;
    for (int seed = 1; seed <= seeds; ++seed) {
      Scenario s = c.build(static_cast<std::uint64_t>(seed));
      if (run_and_check(s, run_for, 10_ms).deadlocked) ++deadlocks;
    }
    const double fraction = static_cast<double>(deadlocks) / seeds;
    const bool predicted = risk.deadlock_reachable();
    const bool observed_any = deadlocks > 0;
    const bool ok = predicted == observed_any;
    agree += ok ? 1 : 0;
    ++total;
    int slack = -1;
    double min_util = 0;
    if (!risk.cycles.empty()) {
      slack = risk.cycles[0].slack_links;
      min_util = risk.cycles[0].min_utilization;
    }
    csv.row({c.name, stats::CsvWriter::num(std::int64_t{risk.cbd_present}),
             stats::CsvWriter::num(min_util),
             stats::CsvWriter::num(std::int64_t{slack}),
             stats::CsvWriter::num(std::int64_t{predicted}),
             stats::CsvWriter::num(fraction), ok ? "agree" : "DISAGREE"});
  }
  std::printf("# agreement: %d/%d scenarios\n", agree, total);
  std::printf("# the rule is a falsifiable heuristic, not a proof — "
              "sufficiency remains the paper's open problem\n");
  return 0;
}
