// Table 1 / Equations 1-3 (§3.1): the boundary-state model of deadlock in
// a routing loop. Prints the analytic deadlock threshold r_d = n*B/TTL
// over a grid of loop lengths, bandwidths, and TTLs, and cross-checks each
// cell against packet-level simulation just below and just above the
// threshold.
//
// Paper's reference point: B = 40 Gbps, n = 2, TTL = 16 -> 5 Gbps.
//
// Flags: --margin=0.3 (probe distance from threshold), --run_ms, --sim=1/0.
#include <cstdio>

#include "dcdl/analysis/boundary.hpp"
#include "dcdl/common/flags.hpp"
#include "dcdl/scenarios/scenario.hpp"
#include "dcdl/stats/csv.hpp"

using namespace dcdl;
using namespace dcdl::literals;
using analysis::BoundaryModel;
using scenarios::make_routing_loop;
using scenarios::RoutingLoopParams;
using scenarios::run_and_check;

namespace {

bool simulate(int n, Rate bandwidth, int ttl, Rate inject, Time run_for) {
  RoutingLoopParams p;
  p.loop_len = n;
  p.bandwidth = bandwidth;
  p.ttl = ttl;
  p.inject = inject;
  scenarios::Scenario s = make_routing_loop(p);
  return run_and_check(s, run_for, run_for + 10_ms).deadlocked;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const double margin = flags.get_double("margin", 0.3);
  const Time run_for = Time{flags.get_int("run_ms", 6) * 1'000'000'000};
  const bool sim = flags.get_bool("sim", true);
  flags.check_unused();

  stats::CsvWriter csv;
  std::printf("# Table 1 / Eq.3: r_d = n*B/TTL (boundary-state model)\n");
  std::printf("# paper reference: n=2, B=40G, TTL=16 -> 5 Gbps\n");
  csv.header({"loop_len", "bandwidth_gbps", "ttl", "threshold_gbps",
              "sim_below_deadlock", "sim_above_deadlock", "model_validated"});

  for (const int n : {2, 3, 4, 8}) {
    for (const double b : {10.0, 40.0, 100.0}) {
      for (const int ttl : {8, 16, 32, 64}) {
        const Rate bw = Rate::gbps(b);
        const Rate thr = BoundaryModel::deadlock_threshold(n, bw, ttl);
        int below = -1, above = -1, ok = -1;
        if (sim) {
          below = simulate(n, bw, ttl,
                           Rate{static_cast<std::int64_t>(
                               thr.bps() * (1.0 - margin))},
                           run_for)
                      ? 1
                      : 0;
          above = simulate(n, bw, ttl,
                           Rate{static_cast<std::int64_t>(
                               thr.bps() * (1.0 + margin))},
                           run_for)
                      ? 1
                      : 0;
          ok = (below == 0 && above == 1) ? 1 : 0;
        }
        csv.row({stats::CsvWriter::num(std::int64_t{n}),
                 stats::CsvWriter::num(b), stats::CsvWriter::num(std::int64_t{ttl}),
                 stats::CsvWriter::num(thr.as_gbps()),
                 stats::CsvWriter::num(std::int64_t{below}),
                 stats::CsvWriter::num(std::int64_t{above}),
                 stats::CsvWriter::num(std::int64_t{ok})});
      }
    }
  }
  return 0;
}
