// Table 1 / Equations 1-3 (§3.1): the boundary-state model of deadlock in
// a routing loop. Prints the analytic deadlock threshold r_d = n*B/TTL
// over a grid of loop lengths, bandwidths, and TTLs, and cross-checks each
// cell against packet-level simulation just below and just above the
// threshold.
//
// The 96 probe simulations run through the dcdl::campaign engine (one cell
// per (n, B, TTL, ±margin) probe) on a thread pool, so the table
// regenerates in wall time ~ serial/jobs and can be exported as a
// structured artifact.
//
// Paper's reference point: B = 40 Gbps, n = 2, TTL = 16 -> 5 Gbps.
//
// Flags: --margin=0.3 (probe distance from threshold), --run_ms, --sim=1/0,
// --jobs=N (default: hardware threads), --out=table1.json, --timing.
#include <cstdio>

#include "dcdl/analysis/boundary.hpp"
#include "dcdl/campaign/campaign.hpp"
#include "dcdl/common/flags.hpp"
#include "dcdl/scenarios/scenario.hpp"
#include "dcdl/stats/csv.hpp"

using namespace dcdl;
using namespace dcdl::literals;
using namespace dcdl::campaign;
using analysis::BoundaryModel;

namespace {

constexpr int kLoopLens[] = {2, 3, 4, 8};
constexpr double kBandwidthsGbps[] = {10.0, 40.0, 100.0};
constexpr int kTtls[] = {8, 16, 32, 64};

// One probe of the boundary model: the routing-loop scenario injected at
// threshold * (1 + margin); margin < 0 probes below, > 0 above.
void register_table1_cell(ScenarioRegistry& reg) {
  ScenarioDef def;
  def.name = "table1_cell";
  def.description =
      "Table 1 probe: routing loop injected at r_d * (1 + margin)";
  def.params = {
      {"loop_len", ParamKind::kInt, "", "switches in the loop"},
      {"bw_gbps", ParamKind::kDouble, "gbps", "link bandwidth"},
      {"ttl", ParamKind::kInt, "", "initial packet TTL"},
      {"margin", ParamKind::kDouble, "", "signed probe distance from r_d"},
  };
  def.make = [](const ParamMap& pm) {
    scenarios::RoutingLoopParams p;
    p.loop_len = static_cast<int>(pm.get_int("loop_len", 2));
    p.bandwidth = Rate::gbps(pm.get_double("bw_gbps", 40));
    p.ttl = static_cast<int>(pm.get_int("ttl", 16));
    const Rate thr =
        BoundaryModel::deadlock_threshold(p.loop_len, p.bandwidth, p.ttl);
    p.inject = Rate{static_cast<std::int64_t>(
        static_cast<double>(thr.bps()) * (1.0 + pm.get_double("margin", 0)))};
    return scenarios::make_routing_loop(p);
  };
  reg.add(std::move(def));
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const double margin = flags.get_double("margin", 0.3);
  const Time run_for = Time{flags.get_int("run_ms", 6) * 1'000'000'000};
  const bool sim = flags.get_bool("sim", true);
  const int jobs = flags.jobs();
  const std::string out_path = flags.out();
  const bool timing = flags.get_bool("timing", false);
  flags.check_unused();

  ScenarioRegistry& reg = ScenarioRegistry::global();
  register_table1_cell(reg);

  CampaignResult result;
  if (sim) {
    SweepSpec spec;
    spec.scenario = "table1_cell";
    GridAxis loop_axis{"loop_len", {}};
    for (const int n : kLoopLens) {
      loop_axis.values.push_back(ParamValue::of_int(n));
    }
    GridAxis bw_axis{"bw_gbps", {}};
    for (const double b : kBandwidthsGbps) {
      bw_axis.values.push_back(ParamValue::of_double(b));
    }
    GridAxis ttl_axis{"ttl", {}};
    for (const int ttl : kTtls) {
      ttl_axis.values.push_back(ParamValue::of_int(ttl));
    }
    GridAxis margin_axis{"margin",
                         {ParamValue::of_double(-margin),
                          ParamValue::of_double(margin)}};
    spec.axes = {loop_axis, bw_axis, ttl_axis, margin_axis};
    spec.run_for = run_for;
    spec.drain_grace = run_for + 10_ms;

    ExecutorOptions opts;
    opts.jobs = jobs;
    CampaignExecutor exec(reg, opts);
    result = exec.run(expand(spec), spec.root_seed);
    std::fprintf(stderr,
                 "# campaign: %zu probe runs in %.0f ms wall on %d job(s)\n",
                 result.records.size(), result.total_wall_ms, result.jobs);
  }

  stats::CsvWriter csv;
  std::printf("# Table 1 / Eq.3: r_d = n*B/TTL (boundary-state model)\n");
  std::printf("# paper reference: n=2, B=40G, TTL=16 -> 5 Gbps\n");
  csv.header({"loop_len", "bandwidth_gbps", "ttl", "threshold_gbps",
              "sim_below_deadlock", "sim_above_deadlock", "model_validated"});

  std::size_t next_record = 0;
  for (const int n : kLoopLens) {
    for (const double b : kBandwidthsGbps) {
      for (const int ttl : kTtls) {
        const Rate bw = Rate::gbps(b);
        const Rate thr = BoundaryModel::deadlock_threshold(n, bw, ttl);
        int below = -1, above = -1, ok = -1;
        if (sim) {
          // Cells expand margin-fastest: the below probe precedes above.
          const RunRecord& lo = result.records[next_record++];
          const RunRecord& hi = result.records[next_record++];
          below = lo.status == RunStatus::kOk ? (lo.deadlocked ? 1 : 0) : -1;
          above = hi.status == RunStatus::kOk ? (hi.deadlocked ? 1 : 0) : -1;
          ok = (below == 0 && above == 1) ? 1 : 0;
        }
        csv.row({stats::CsvWriter::num(std::int64_t{n}),
                 stats::CsvWriter::num(b), stats::CsvWriter::num(std::int64_t{ttl}),
                 stats::CsvWriter::num(thr.as_gbps()),
                 stats::CsvWriter::num(std::int64_t{below}),
                 stats::CsvWriter::num(std::int64_t{above}),
                 stats::CsvWriter::num(std::int64_t{ok})});
      }
    }
  }
  if (sim && !out_path.empty()) {
    WriteOptions wopts;
    wopts.include_timing = timing;
    write_text_file(out_path, to_json(result, wopts));
    std::fprintf(stderr, "# wrote %s\n", out_path.c_str());
  }
  return 0;
}
