// §1: transient loops (BGP re-route, SDN update, misconfiguration) meet
// lossless traffic; the resulting deadlock outlives the loop.
//
// Series 1: loop-lifetime sweep — does a deadlock formed inside the
//           window persist after repair? (Controlled loop injector.)
// Series 2: injection-rate sweep at a fixed 2 ms window.
// Series 3: SDN update comparison — naive vs ordered application of the
//           same route change under lossless load.
// Series 4: BGP reconvergence on a ring with live lossless traffic: the
//           failure triggers withdrawals/updates while packets are in
//           flight.
//
// Flags: --run_ms=10.
#include <cstdio>

#include "dcdl/common/flags.hpp"
#include "dcdl/device/host.hpp"
#include "dcdl/device/switch.hpp"
#include "dcdl/routing/bgp.hpp"
#include "dcdl/routing/compute.hpp"
#include "dcdl/routing/sdn.hpp"
#include "dcdl/scenarios/scenario.hpp"
#include "dcdl/stats/csv.hpp"
#include "dcdl/topo/generators.hpp"

using namespace dcdl;
using namespace dcdl::literals;
using namespace dcdl::scenarios;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const Time run_for = Time{flags.get_int("run_ms", 10) * 1'000'000'000};
  flags.check_unused();

  stats::CsvWriter csv;
  std::printf("# §1: transient loops cause non-transient deadlocks\n");

  csv.section("series 1: loop lifetime sweep (10 Gbps, threshold 5 Gbps)");
  csv.header({"loop_us", "deadlock_after_repair", "delivery_resumed"});
  for (const std::int64_t loop_us : {10, 50, 100, 200, 500, 1000, 2000}) {
    TransientLoopParams p;
    p.inject = Rate::gbps(10);
    p.loop_duration = Time{loop_us * 1'000'000};
    Scenario s = make_transient_loop(p);
    s.sim->run_until(run_for);
    const auto before = s.net->host_at(s.flows[0].dst_host).delivered_bytes(1);
    s.sim->run_until(run_for + 1_ms);
    const auto after = s.net->host_at(s.flows[0].dst_host).delivered_bytes(1);
    const auto drain = analysis::stop_and_drain(*s.net, 20_ms);
    csv.row({stats::CsvWriter::num(loop_us),
             stats::CsvWriter::num(std::int64_t{drain.deadlocked}),
             stats::CsvWriter::num(std::int64_t{after > before})});
  }

  csv.section("series 2: injection rate sweep (2 ms loop window)");
  csv.header({"inject_gbps", "deadlock_after_repair"});
  for (const double g : {2.0, 4.0, 5.0, 6.0, 8.0, 10.0, 15.0}) {
    TransientLoopParams p;
    p.inject = Rate::gbps(g);
    Scenario s = make_transient_loop(p);
    s.sim->run_until(run_for);
    const auto drain = analysis::stop_and_drain(*s.net, 20_ms);
    csv.row({stats::CsvWriter::num(g),
             stats::CsvWriter::num(std::int64_t{drain.deadlocked})});
  }

  csv.section("series 3: SDN update, naive vs ordered (ring, greedy flow)");
  csv.header({"mode", "transient_loop_seen", "deadlock"});
  for (const bool ordered : {false, true}) {
    Simulator sim;
    const topo::RingTopo ring = topo::make_ring(4, 1);
    Topology t = ring.topo;
    Network net(sim, t, NetConfig{});
    routing::install_shortest_paths(net, /*ecmp=*/false);
    const NodeId dst = ring.hosts[2][0];
    FlowSpec f;
    f.id = 1;
    f.src_host = ring.hosts[0][0];
    f.dst_host = dst;
    f.packet_bytes = 1000;
    f.ttl = 16;
    net.host_at(f.src_host).add_flow(f);
    routing::SdnUpdatePlan plan(dst);
    plan.add(ring.switches[1], *t.port_towards(ring.switches[1], ring.switches[0]));
    plan.add(ring.switches[0], *t.port_towards(ring.switches[0], ring.switches[3]));
    if (ordered) {
      plan.apply_ordered(net, 1_ms, 200_us);
    } else {
      plan.apply_naive(net, 1_ms, 1_ms, /*seed=*/2);  // unlucky order
    }
    bool loop_seen = false;
    for (Time at = 1_ms; at <= 2_ms + 100_us; at += 20_us) {
      sim.run_until(at);
      loop_seen |= routing::find_forwarding_loop(net, dst).has_value();
    }
    sim.run_until(run_for);
    const auto drain = analysis::stop_and_drain(net, 20_ms);
    csv.row({ordered ? "ordered" : "naive",
             stats::CsvWriter::num(std::int64_t{loop_seen}),
             stats::CsvWriter::num(std::int64_t{drain.deadlocked})});
  }

  csv.section("series 4: BGP link failure under lossless load (ring of 4)");
  csv.header({"phase", "reachable", "messages", "deadlock"});
  {
    Simulator sim;
    const topo::RingTopo ring = topo::make_ring(4, 1);
    Topology t = ring.topo;
    Network net(sim, t, NetConfig{});
    routing::BgpFabric bgp(net, routing::BgpFabric::Params{});
    bgp.start();
    sim.run_until(100_ms);
    // Lossless traffic across the ring.
    FlowSpec f;
    f.id = 1;
    f.src_host = ring.hosts[0][0];
    f.dst_host = ring.hosts[2][0];
    f.packet_bytes = 1000;
    f.ttl = 16;
    net.host_at(f.src_host).add_flow(f);
    sim.run_until(102_ms);
    const auto port = t.port_towards(ring.switches[0], ring.switches[1]);
    const std::uint32_t link = t.peer(ring.switches[0], *port).link;
    bgp.fail_link(link);
    sim.run_until(110_ms);
    const bool converged = bgp.converged();
    const auto delivered_a =
        net.host_at(ring.hosts[2][0]).delivered_bytes(1);
    sim.run_until(115_ms);
    const auto delivered_b =
        net.host_at(ring.hosts[2][0]).delivered_bytes(1);
    const auto drain = analysis::stop_and_drain(net, 20_ms);
    csv.row({"after_failure",
             stats::CsvWriter::num(std::int64_t{delivered_b > delivered_a}),
             stats::CsvWriter::num(
                 static_cast<std::int64_t>(bgp.messages_sent())),
             stats::CsvWriter::num(std::int64_t{drain.deadlocked})});
    std::printf("# bgp converged after failure: %d\n", converged ? 1 : 0);
  }
  std::printf("# paper expectation: long-enough loops above threshold leave a "
              "deadlock that repair cannot clear\n");
  return 0;
}
