file(REMOVE_RECURSE
  "../bench/bench_base_bufferclass"
  "../bench/bench_base_bufferclass.pdb"
  "CMakeFiles/bench_base_bufferclass.dir/bench_base_bufferclass.cpp.o"
  "CMakeFiles/bench_base_bufferclass.dir/bench_base_bufferclass.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_base_bufferclass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
