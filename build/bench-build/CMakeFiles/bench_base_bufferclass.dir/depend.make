# Empty dependencies file for bench_base_bufferclass.
# This may be replaced when dependencies are built.
