file(REMOVE_RECURSE
  "../bench/bench_base_updown"
  "../bench/bench_base_updown.pdb"
  "CMakeFiles/bench_base_updown.dir/bench_base_updown.cpp.o"
  "CMakeFiles/bench_base_updown.dir/bench_base_updown.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_base_updown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
