# Empty dependencies file for bench_base_updown.
# This may be replaced when dependencies are built.
