file(REMOVE_RECURSE
  "../bench/bench_fig1_ring"
  "../bench/bench_fig1_ring.pdb"
  "CMakeFiles/bench_fig1_ring.dir/bench_fig1_ring.cpp.o"
  "CMakeFiles/bench_fig1_ring.dir/bench_fig1_ring.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_ring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
