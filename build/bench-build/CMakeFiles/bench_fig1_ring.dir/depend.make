# Empty dependencies file for bench_fig1_ring.
# This may be replaced when dependencies are built.
