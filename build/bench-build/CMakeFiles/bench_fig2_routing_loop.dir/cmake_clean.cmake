file(REMOVE_RECURSE
  "../bench/bench_fig2_routing_loop"
  "../bench/bench_fig2_routing_loop.pdb"
  "CMakeFiles/bench_fig2_routing_loop.dir/bench_fig2_routing_loop.cpp.o"
  "CMakeFiles/bench_fig2_routing_loop.dir/bench_fig2_routing_loop.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_routing_loop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
