file(REMOVE_RECURSE
  "../bench/bench_fig3_two_flows"
  "../bench/bench_fig3_two_flows.pdb"
  "CMakeFiles/bench_fig3_two_flows.dir/bench_fig3_two_flows.cpp.o"
  "CMakeFiles/bench_fig3_two_flows.dir/bench_fig3_two_flows.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_two_flows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
