# Empty dependencies file for bench_fig4_three_flows.
# This may be replaced when dependencies are built.
