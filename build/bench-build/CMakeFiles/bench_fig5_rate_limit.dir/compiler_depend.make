# Empty compiler generated dependencies file for bench_fig5_rate_limit.
# This may be replaced when dependencies are built.
