file(REMOVE_RECURSE
  "../bench/bench_fluid_model"
  "../bench/bench_fluid_model.pdb"
  "CMakeFiles/bench_fluid_model.dir/bench_fluid_model.cpp.o"
  "CMakeFiles/bench_fluid_model.dir/bench_fluid_model.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fluid_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
