# Empty dependencies file for bench_fluid_model.
# This may be replaced when dependencies are built.
