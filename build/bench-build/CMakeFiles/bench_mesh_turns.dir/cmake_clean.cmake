file(REMOVE_RECURSE
  "../bench/bench_mesh_turns"
  "../bench/bench_mesh_turns.pdb"
  "CMakeFiles/bench_mesh_turns.dir/bench_mesh_turns.cpp.o"
  "CMakeFiles/bench_mesh_turns.dir/bench_mesh_turns.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mesh_turns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
