# Empty compiler generated dependencies file for bench_mesh_turns.
# This may be replaced when dependencies are built.
