file(REMOVE_RECURSE
  "../bench/bench_mit_dcqcn"
  "../bench/bench_mit_dcqcn.pdb"
  "CMakeFiles/bench_mit_dcqcn.dir/bench_mit_dcqcn.cpp.o"
  "CMakeFiles/bench_mit_dcqcn.dir/bench_mit_dcqcn.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mit_dcqcn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
