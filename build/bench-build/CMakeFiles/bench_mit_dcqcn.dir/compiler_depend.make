# Empty compiler generated dependencies file for bench_mit_dcqcn.
# This may be replaced when dependencies are built.
