file(REMOVE_RECURSE
  "../bench/bench_mit_fairness"
  "../bench/bench_mit_fairness.pdb"
  "CMakeFiles/bench_mit_fairness.dir/bench_mit_fairness.cpp.o"
  "CMakeFiles/bench_mit_fairness.dir/bench_mit_fairness.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mit_fairness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
