file(REMOVE_RECURSE
  "../bench/bench_mit_thresholds"
  "../bench/bench_mit_thresholds.pdb"
  "CMakeFiles/bench_mit_thresholds.dir/bench_mit_thresholds.cpp.o"
  "CMakeFiles/bench_mit_thresholds.dir/bench_mit_thresholds.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mit_thresholds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
