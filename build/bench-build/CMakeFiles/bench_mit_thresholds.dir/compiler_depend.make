# Empty compiler generated dependencies file for bench_mit_thresholds.
# This may be replaced when dependencies are built.
