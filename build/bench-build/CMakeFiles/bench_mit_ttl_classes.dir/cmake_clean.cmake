file(REMOVE_RECURSE
  "../bench/bench_mit_ttl_classes"
  "../bench/bench_mit_ttl_classes.pdb"
  "CMakeFiles/bench_mit_ttl_classes.dir/bench_mit_ttl_classes.cpp.o"
  "CMakeFiles/bench_mit_ttl_classes.dir/bench_mit_ttl_classes.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mit_ttl_classes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
