# Empty compiler generated dependencies file for bench_mit_ttl_classes.
# This may be replaced when dependencies are built.
