file(REMOVE_RECURSE
  "../bench/bench_risk_score"
  "../bench/bench_risk_score.pdb"
  "CMakeFiles/bench_risk_score.dir/bench_risk_score.cpp.o"
  "CMakeFiles/bench_risk_score.dir/bench_risk_score.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_risk_score.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
