# Empty compiler generated dependencies file for bench_risk_score.
# This may be replaced when dependencies are built.
