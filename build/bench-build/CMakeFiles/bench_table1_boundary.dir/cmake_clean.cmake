file(REMOVE_RECURSE
  "../bench/bench_table1_boundary"
  "../bench/bench_table1_boundary.pdb"
  "CMakeFiles/bench_table1_boundary.dir/bench_table1_boundary.cpp.o"
  "CMakeFiles/bench_table1_boundary.dir/bench_table1_boundary.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_boundary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
