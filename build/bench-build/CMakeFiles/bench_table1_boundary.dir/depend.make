# Empty dependencies file for bench_table1_boundary.
# This may be replaced when dependencies are built.
