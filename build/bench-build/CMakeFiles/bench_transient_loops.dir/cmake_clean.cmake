file(REMOVE_RECURSE
  "../bench/bench_transient_loops"
  "../bench/bench_transient_loops.pdb"
  "CMakeFiles/bench_transient_loops.dir/bench_transient_loops.cpp.o"
  "CMakeFiles/bench_transient_loops.dir/bench_transient_loops.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_transient_loops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
