# Empty dependencies file for bench_transient_loops.
# This may be replaced when dependencies are built.
