file(REMOVE_RECURSE
  "../examples/dcdl_sim"
  "../examples/dcdl_sim.pdb"
  "CMakeFiles/dcdl_sim.dir/dcdl_sim.cpp.o"
  "CMakeFiles/dcdl_sim.dir/dcdl_sim.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcdl_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
