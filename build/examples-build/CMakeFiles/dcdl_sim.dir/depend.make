# Empty dependencies file for dcdl_sim.
# This may be replaced when dependencies are built.
