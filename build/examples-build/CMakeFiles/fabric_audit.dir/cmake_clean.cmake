file(REMOVE_RECURSE
  "../examples/fabric_audit"
  "../examples/fabric_audit.pdb"
  "CMakeFiles/fabric_audit.dir/fabric_audit.cpp.o"
  "CMakeFiles/fabric_audit.dir/fabric_audit.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fabric_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
