# Empty dependencies file for fabric_audit.
# This may be replaced when dependencies are built.
