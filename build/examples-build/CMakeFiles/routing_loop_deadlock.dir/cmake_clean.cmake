file(REMOVE_RECURSE
  "../examples/routing_loop_deadlock"
  "../examples/routing_loop_deadlock.pdb"
  "CMakeFiles/routing_loop_deadlock.dir/routing_loop_deadlock.cpp.o"
  "CMakeFiles/routing_loop_deadlock.dir/routing_loop_deadlock.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/routing_loop_deadlock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
