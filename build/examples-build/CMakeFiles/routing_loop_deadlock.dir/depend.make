# Empty dependencies file for routing_loop_deadlock.
# This may be replaced when dependencies are built.
