file(REMOVE_RECURSE
  "../examples/transient_loop_bgp"
  "../examples/transient_loop_bgp.pdb"
  "CMakeFiles/transient_loop_bgp.dir/transient_loop_bgp.cpp.o"
  "CMakeFiles/transient_loop_bgp.dir/transient_loop_bgp.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transient_loop_bgp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
