# Empty compiler generated dependencies file for transient_loop_bgp.
# This may be replaced when dependencies are built.
