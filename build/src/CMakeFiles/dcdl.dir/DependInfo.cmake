
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dcdl/analysis/bdg.cpp" "src/CMakeFiles/dcdl.dir/dcdl/analysis/bdg.cpp.o" "gcc" "src/CMakeFiles/dcdl.dir/dcdl/analysis/bdg.cpp.o.d"
  "/root/repo/src/dcdl/analysis/deadlock.cpp" "src/CMakeFiles/dcdl.dir/dcdl/analysis/deadlock.cpp.o" "gcc" "src/CMakeFiles/dcdl.dir/dcdl/analysis/deadlock.cpp.o.d"
  "/root/repo/src/dcdl/analysis/fluid.cpp" "src/CMakeFiles/dcdl.dir/dcdl/analysis/fluid.cpp.o" "gcc" "src/CMakeFiles/dcdl.dir/dcdl/analysis/fluid.cpp.o.d"
  "/root/repo/src/dcdl/analysis/risk.cpp" "src/CMakeFiles/dcdl.dir/dcdl/analysis/risk.cpp.o" "gcc" "src/CMakeFiles/dcdl.dir/dcdl/analysis/risk.cpp.o.d"
  "/root/repo/src/dcdl/common/flags.cpp" "src/CMakeFiles/dcdl.dir/dcdl/common/flags.cpp.o" "gcc" "src/CMakeFiles/dcdl.dir/dcdl/common/flags.cpp.o.d"
  "/root/repo/src/dcdl/common/log.cpp" "src/CMakeFiles/dcdl.dir/dcdl/common/log.cpp.o" "gcc" "src/CMakeFiles/dcdl.dir/dcdl/common/log.cpp.o.d"
  "/root/repo/src/dcdl/common/rng.cpp" "src/CMakeFiles/dcdl.dir/dcdl/common/rng.cpp.o" "gcc" "src/CMakeFiles/dcdl.dir/dcdl/common/rng.cpp.o.d"
  "/root/repo/src/dcdl/common/units.cpp" "src/CMakeFiles/dcdl.dir/dcdl/common/units.cpp.o" "gcc" "src/CMakeFiles/dcdl.dir/dcdl/common/units.cpp.o.d"
  "/root/repo/src/dcdl/device/host.cpp" "src/CMakeFiles/dcdl.dir/dcdl/device/host.cpp.o" "gcc" "src/CMakeFiles/dcdl.dir/dcdl/device/host.cpp.o.d"
  "/root/repo/src/dcdl/device/network.cpp" "src/CMakeFiles/dcdl.dir/dcdl/device/network.cpp.o" "gcc" "src/CMakeFiles/dcdl.dir/dcdl/device/network.cpp.o.d"
  "/root/repo/src/dcdl/device/switch.cpp" "src/CMakeFiles/dcdl.dir/dcdl/device/switch.cpp.o" "gcc" "src/CMakeFiles/dcdl.dir/dcdl/device/switch.cpp.o.d"
  "/root/repo/src/dcdl/mitigation/class_policy.cpp" "src/CMakeFiles/dcdl.dir/dcdl/mitigation/class_policy.cpp.o" "gcc" "src/CMakeFiles/dcdl.dir/dcdl/mitigation/class_policy.cpp.o.d"
  "/root/repo/src/dcdl/mitigation/dcqcn.cpp" "src/CMakeFiles/dcdl.dir/dcdl/mitigation/dcqcn.cpp.o" "gcc" "src/CMakeFiles/dcdl.dir/dcdl/mitigation/dcqcn.cpp.o.d"
  "/root/repo/src/dcdl/mitigation/smart_limiter.cpp" "src/CMakeFiles/dcdl.dir/dcdl/mitigation/smart_limiter.cpp.o" "gcc" "src/CMakeFiles/dcdl.dir/dcdl/mitigation/smart_limiter.cpp.o.d"
  "/root/repo/src/dcdl/mitigation/thresholds.cpp" "src/CMakeFiles/dcdl.dir/dcdl/mitigation/thresholds.cpp.o" "gcc" "src/CMakeFiles/dcdl.dir/dcdl/mitigation/thresholds.cpp.o.d"
  "/root/repo/src/dcdl/mitigation/timely.cpp" "src/CMakeFiles/dcdl.dir/dcdl/mitigation/timely.cpp.o" "gcc" "src/CMakeFiles/dcdl.dir/dcdl/mitigation/timely.cpp.o.d"
  "/root/repo/src/dcdl/mitigation/watchdog.cpp" "src/CMakeFiles/dcdl.dir/dcdl/mitigation/watchdog.cpp.o" "gcc" "src/CMakeFiles/dcdl.dir/dcdl/mitigation/watchdog.cpp.o.d"
  "/root/repo/src/dcdl/routing/bgp.cpp" "src/CMakeFiles/dcdl.dir/dcdl/routing/bgp.cpp.o" "gcc" "src/CMakeFiles/dcdl.dir/dcdl/routing/bgp.cpp.o.d"
  "/root/repo/src/dcdl/routing/compute.cpp" "src/CMakeFiles/dcdl.dir/dcdl/routing/compute.cpp.o" "gcc" "src/CMakeFiles/dcdl.dir/dcdl/routing/compute.cpp.o.d"
  "/root/repo/src/dcdl/routing/mesh_routing.cpp" "src/CMakeFiles/dcdl.dir/dcdl/routing/mesh_routing.cpp.o" "gcc" "src/CMakeFiles/dcdl.dir/dcdl/routing/mesh_routing.cpp.o.d"
  "/root/repo/src/dcdl/routing/route_table.cpp" "src/CMakeFiles/dcdl.dir/dcdl/routing/route_table.cpp.o" "gcc" "src/CMakeFiles/dcdl.dir/dcdl/routing/route_table.cpp.o.d"
  "/root/repo/src/dcdl/routing/sdn.cpp" "src/CMakeFiles/dcdl.dir/dcdl/routing/sdn.cpp.o" "gcc" "src/CMakeFiles/dcdl.dir/dcdl/routing/sdn.cpp.o.d"
  "/root/repo/src/dcdl/scenarios/scenario.cpp" "src/CMakeFiles/dcdl.dir/dcdl/scenarios/scenario.cpp.o" "gcc" "src/CMakeFiles/dcdl.dir/dcdl/scenarios/scenario.cpp.o.d"
  "/root/repo/src/dcdl/sim/simulator.cpp" "src/CMakeFiles/dcdl.dir/dcdl/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/dcdl.dir/dcdl/sim/simulator.cpp.o.d"
  "/root/repo/src/dcdl/stats/cascade.cpp" "src/CMakeFiles/dcdl.dir/dcdl/stats/cascade.cpp.o" "gcc" "src/CMakeFiles/dcdl.dir/dcdl/stats/cascade.cpp.o.d"
  "/root/repo/src/dcdl/stats/csv.cpp" "src/CMakeFiles/dcdl.dir/dcdl/stats/csv.cpp.o" "gcc" "src/CMakeFiles/dcdl.dir/dcdl/stats/csv.cpp.o.d"
  "/root/repo/src/dcdl/stats/latency.cpp" "src/CMakeFiles/dcdl.dir/dcdl/stats/latency.cpp.o" "gcc" "src/CMakeFiles/dcdl.dir/dcdl/stats/latency.cpp.o.d"
  "/root/repo/src/dcdl/stats/pause_log.cpp" "src/CMakeFiles/dcdl.dir/dcdl/stats/pause_log.cpp.o" "gcc" "src/CMakeFiles/dcdl.dir/dcdl/stats/pause_log.cpp.o.d"
  "/root/repo/src/dcdl/stats/sampler.cpp" "src/CMakeFiles/dcdl.dir/dcdl/stats/sampler.cpp.o" "gcc" "src/CMakeFiles/dcdl.dir/dcdl/stats/sampler.cpp.o.d"
  "/root/repo/src/dcdl/stats/throughput.cpp" "src/CMakeFiles/dcdl.dir/dcdl/stats/throughput.cpp.o" "gcc" "src/CMakeFiles/dcdl.dir/dcdl/stats/throughput.cpp.o.d"
  "/root/repo/src/dcdl/topo/generators.cpp" "src/CMakeFiles/dcdl.dir/dcdl/topo/generators.cpp.o" "gcc" "src/CMakeFiles/dcdl.dir/dcdl/topo/generators.cpp.o.d"
  "/root/repo/src/dcdl/topo/topology.cpp" "src/CMakeFiles/dcdl.dir/dcdl/topo/topology.cpp.o" "gcc" "src/CMakeFiles/dcdl.dir/dcdl/topo/topology.cpp.o.d"
  "/root/repo/src/dcdl/traffic/flow.cpp" "src/CMakeFiles/dcdl.dir/dcdl/traffic/flow.cpp.o" "gcc" "src/CMakeFiles/dcdl.dir/dcdl/traffic/flow.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
