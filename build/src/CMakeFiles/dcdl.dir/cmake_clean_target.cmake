file(REMOVE_RECURSE
  "libdcdl.a"
)
