# Empty dependencies file for dcdl.
# This may be replaced when dependencies are built.
