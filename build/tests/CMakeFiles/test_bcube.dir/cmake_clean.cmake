file(REMOVE_RECURSE
  "CMakeFiles/test_bcube.dir/test_bcube.cpp.o"
  "CMakeFiles/test_bcube.dir/test_bcube.cpp.o.d"
  "test_bcube"
  "test_bcube.pdb"
  "test_bcube[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bcube.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
