file(REMOVE_RECURSE
  "CMakeFiles/test_bdg.dir/test_bdg.cpp.o"
  "CMakeFiles/test_bdg.dir/test_bdg.cpp.o.d"
  "test_bdg"
  "test_bdg.pdb"
  "test_bdg[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bdg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
