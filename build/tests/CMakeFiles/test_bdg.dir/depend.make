# Empty dependencies file for test_bdg.
# This may be replaced when dependencies are built.
