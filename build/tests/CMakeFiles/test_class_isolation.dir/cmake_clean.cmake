file(REMOVE_RECURSE
  "CMakeFiles/test_class_isolation.dir/test_class_isolation.cpp.o"
  "CMakeFiles/test_class_isolation.dir/test_class_isolation.cpp.o.d"
  "test_class_isolation"
  "test_class_isolation.pdb"
  "test_class_isolation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_class_isolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
