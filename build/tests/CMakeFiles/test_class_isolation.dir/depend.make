# Empty dependencies file for test_class_isolation.
# This may be replaced when dependencies are built.
