file(REMOVE_RECURSE
  "CMakeFiles/test_dcqcn_deadlock.dir/test_dcqcn_deadlock.cpp.o"
  "CMakeFiles/test_dcqcn_deadlock.dir/test_dcqcn_deadlock.cpp.o.d"
  "test_dcqcn_deadlock"
  "test_dcqcn_deadlock.pdb"
  "test_dcqcn_deadlock[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dcqcn_deadlock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
