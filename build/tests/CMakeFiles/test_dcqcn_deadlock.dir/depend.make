# Empty dependencies file for test_dcqcn_deadlock.
# This may be replaced when dependencies are built.
