file(REMOVE_RECURSE
  "CMakeFiles/test_deadlock_detector.dir/test_deadlock_detector.cpp.o"
  "CMakeFiles/test_deadlock_detector.dir/test_deadlock_detector.cpp.o.d"
  "test_deadlock_detector"
  "test_deadlock_detector.pdb"
  "test_deadlock_detector[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_deadlock_detector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
