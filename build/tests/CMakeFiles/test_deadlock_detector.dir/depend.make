# Empty dependencies file for test_deadlock_detector.
# This may be replaced when dependencies are built.
