file(REMOVE_RECURSE
  "CMakeFiles/test_fig2_threshold.dir/test_fig2_threshold.cpp.o"
  "CMakeFiles/test_fig2_threshold.dir/test_fig2_threshold.cpp.o.d"
  "test_fig2_threshold"
  "test_fig2_threshold.pdb"
  "test_fig2_threshold[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fig2_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
