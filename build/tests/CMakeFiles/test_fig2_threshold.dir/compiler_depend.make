# Empty compiler generated dependencies file for test_fig2_threshold.
# This may be replaced when dependencies are built.
