file(REMOVE_RECURSE
  "CMakeFiles/test_mesh_routing.dir/test_mesh_routing.cpp.o"
  "CMakeFiles/test_mesh_routing.dir/test_mesh_routing.cpp.o.d"
  "test_mesh_routing"
  "test_mesh_routing.pdb"
  "test_mesh_routing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mesh_routing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
