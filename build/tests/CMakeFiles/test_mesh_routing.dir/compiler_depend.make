# Empty compiler generated dependencies file for test_mesh_routing.
# This may be replaced when dependencies are built.
