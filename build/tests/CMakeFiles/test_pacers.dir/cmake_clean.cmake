file(REMOVE_RECURSE
  "CMakeFiles/test_pacers.dir/test_pacers.cpp.o"
  "CMakeFiles/test_pacers.dir/test_pacers.cpp.o.d"
  "test_pacers"
  "test_pacers.pdb"
  "test_pacers[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pacers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
