# Empty compiler generated dependencies file for test_pacers.
# This may be replaced when dependencies are built.
