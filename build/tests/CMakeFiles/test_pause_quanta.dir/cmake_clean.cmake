file(REMOVE_RECURSE
  "CMakeFiles/test_pause_quanta.dir/test_pause_quanta.cpp.o"
  "CMakeFiles/test_pause_quanta.dir/test_pause_quanta.cpp.o.d"
  "test_pause_quanta"
  "test_pause_quanta.pdb"
  "test_pause_quanta[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pause_quanta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
