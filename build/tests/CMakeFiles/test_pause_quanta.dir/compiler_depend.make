# Empty compiler generated dependencies file for test_pause_quanta.
# This may be replaced when dependencies are built.
