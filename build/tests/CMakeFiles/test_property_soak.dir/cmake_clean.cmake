file(REMOVE_RECURSE
  "CMakeFiles/test_property_soak.dir/test_property_soak.cpp.o"
  "CMakeFiles/test_property_soak.dir/test_property_soak.cpp.o.d"
  "test_property_soak"
  "test_property_soak.pdb"
  "test_property_soak[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property_soak.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
