# Empty dependencies file for test_property_soak.
# This may be replaced when dependencies are built.
