file(REMOVE_RECURSE
  "CMakeFiles/test_risk_edges.dir/test_risk_edges.cpp.o"
  "CMakeFiles/test_risk_edges.dir/test_risk_edges.cpp.o.d"
  "test_risk_edges"
  "test_risk_edges.pdb"
  "test_risk_edges[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_risk_edges.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
