# Empty dependencies file for test_risk_edges.
# This may be replaced when dependencies are built.
