file(REMOVE_RECURSE
  "CMakeFiles/test_routing_compute.dir/test_routing_compute.cpp.o"
  "CMakeFiles/test_routing_compute.dir/test_routing_compute.cpp.o.d"
  "test_routing_compute"
  "test_routing_compute.pdb"
  "test_routing_compute[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_routing_compute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
