# Empty dependencies file for test_routing_compute.
# This may be replaced when dependencies are built.
