file(REMOVE_RECURSE
  "CMakeFiles/test_scenario_smoke.dir/test_scenario_smoke.cpp.o"
  "CMakeFiles/test_scenario_smoke.dir/test_scenario_smoke.cpp.o.d"
  "test_scenario_smoke"
  "test_scenario_smoke.pdb"
  "test_scenario_smoke[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_scenario_smoke.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
