# Empty dependencies file for test_scenario_smoke.
# This may be replaced when dependencies are built.
