file(REMOVE_RECURSE
  "CMakeFiles/test_smart_limiter.dir/test_smart_limiter.cpp.o"
  "CMakeFiles/test_smart_limiter.dir/test_smart_limiter.cpp.o.d"
  "test_smart_limiter"
  "test_smart_limiter.pdb"
  "test_smart_limiter[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_smart_limiter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
