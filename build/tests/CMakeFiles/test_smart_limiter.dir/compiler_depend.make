# Empty compiler generated dependencies file for test_smart_limiter.
# This may be replaced when dependencies are built.
