file(REMOVE_RECURSE
  "CMakeFiles/test_switch_internals.dir/test_switch_internals.cpp.o"
  "CMakeFiles/test_switch_internals.dir/test_switch_internals.cpp.o.d"
  "test_switch_internals"
  "test_switch_internals.pdb"
  "test_switch_internals[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_switch_internals.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
