# Empty dependencies file for test_switch_internals.
# This may be replaced when dependencies are built.
