file(REMOVE_RECURSE
  "CMakeFiles/test_timely.dir/test_timely.cpp.o"
  "CMakeFiles/test_timely.dir/test_timely.cpp.o.d"
  "test_timely"
  "test_timely.pdb"
  "test_timely[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_timely.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
