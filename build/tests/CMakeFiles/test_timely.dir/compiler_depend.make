# Empty compiler generated dependencies file for test_timely.
# This may be replaced when dependencies are built.
