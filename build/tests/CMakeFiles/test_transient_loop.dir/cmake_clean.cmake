file(REMOVE_RECURSE
  "CMakeFiles/test_transient_loop.dir/test_transient_loop.cpp.o"
  "CMakeFiles/test_transient_loop.dir/test_transient_loop.cpp.o.d"
  "test_transient_loop"
  "test_transient_loop.pdb"
  "test_transient_loop[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_transient_loop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
