# Empty dependencies file for test_transient_loop.
# This may be replaced when dependencies are built.
