file(REMOVE_RECURSE
  "CMakeFiles/test_valley_violation.dir/test_valley_violation.cpp.o"
  "CMakeFiles/test_valley_violation.dir/test_valley_violation.cpp.o.d"
  "test_valley_violation"
  "test_valley_violation.pdb"
  "test_valley_violation[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_valley_violation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
