# Empty dependencies file for test_valley_violation.
# This may be replaced when dependencies are built.
