// dcdl_forensics — offline deadlock post-mortem. Feed it a recorded
// `dcdl.telemetry.v1` JSONL dump (a <run>.telemetry.jsonl or
// <run>.postmortem.jsonl written by dcdl_sim / dcdl_sweep --trace) and it
// reconstructs the causal pause-propagation DAG, attributes every cascade
// to its initial trigger, and prints the human-readable report:
//
//   $ ./dcdl_forensics out/fig1.postmortem.jsonl
//   deadlock: confirmed at t=2.101 ms, wait-for cycle of 3 queue(s): ...
//   initial trigger: switch s2 port 1 class 0 at t=0.512 ms
//       (congestion-cascade origin)
//     cascade depth 4, width 2, 9 span(s); time-to-deadlock 1.589 ms
//
// The dump must carry a topology header (every trace written since the
// forensics tooling landed does); older topology-less dumps are rejected
// with a pointer to re-record.
//
// Flags:
//   --dot <file>       also write the causality DAG as Graphviz DOT
//   --perfetto <file>  also re-export the records as Chrome trace_event
//                      JSON with the cascade's cause->effect flow arrows
//   --max_cascades N   components listed individually in the report (8)
#include <cstdio>
#include <string>

#include "dcdl/campaign/result.hpp"
#include "dcdl/common/flags.hpp"
#include "dcdl/forensics/forensics.hpp"

using namespace dcdl;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::string dot_path = flags.get_string("dot", "");
  const std::string perfetto_path = flags.get_string("perfetto", "");
  const auto max_cascades =
      static_cast<std::size_t>(flags.get_int("max_cascades", 8));
  flags.check_unused();

  if (flags.positional().size() != 1) {
    std::fprintf(stderr,
                 "usage: dcdl_forensics <trace.jsonl> [--dot out.dot] "
                 "[--perfetto out.json] [--max_cascades N]\n"
                 "  <trace.jsonl>: a dcdl.telemetry.v1 dump "
                 "(*.telemetry.jsonl or *.postmortem.jsonl)\n");
    return 2;
  }
  const std::string& input = flags.positional().front();

  try {
    const forensics::LoadedTrace trace = forensics::load_jsonl_file(input);
    const forensics::CausalInput in = forensics::input_from_trace(trace);
    const forensics::CascadeReport report = forensics::analyze(in);

    forensics::TextOptions topts;
    topts.max_components = max_cascades;
    std::printf("%s: %zu record(s)%s\n", input.c_str(),
                trace.records.size(),
                trace.post_mortem ? " (deadlock post-mortem window)" : "");
    std::printf("%s", forensics::to_text(report, topts).c_str());

    if (!dot_path.empty()) {
      campaign::write_text_file(dot_path, forensics::to_dot(report));
      std::printf("causality DAG -> %s\n", dot_path.c_str());
    }
    if (!perfetto_path.empty()) {
      campaign::write_text_file(
          perfetto_path,
          telemetry::to_perfetto_json(trace.topo, trace.records, {},
                                      forensics::flow_arrows(report)));
      std::printf("annotated Perfetto trace -> %s\n", perfetto_path.c_str());
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dcdl_forensics: %s\n", e.what());
    return 2;
  }
  return 0;
}
