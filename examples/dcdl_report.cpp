// dcdl_report — aggregate a campaign output directory into one markdown
// report: per-run time-series summaries, latency-histogram tables, and
// deadlock-onset timelines, plus a campaign-level run table when the sweep
// JSON is present.
//
//   $ ./dcdl_sweep --scenario valley --set "dataplane=reroute" --seeds 2
//         --trace out/ --out out/campaign.json
//   $ ./dcdl_report --dir out/ > report.md
//
// Inputs, all produced by dcdl_sweep/dcdl_sim:
//   * run_NNNNN.timeseries.jsonl / <scenario>.timeseries.jsonl — the
//     dcdl.timeseries.v1 artifacts (series + histograms);
//   * a dcdl.campaign.v* JSON (auto-detected in --dir, or named explicitly
//     with --json) for the per-run scenario/params/goodput/detection table.
//
// Flags: --dir <path> (required), --json <file> (campaign JSON; default:
// first *.json in --dir bearing a dcdl.campaign schema), --out <file>
// (default stdout).
//
// Determinism: files are scanned in sorted name order and every number is
// formatted with fixed printf precision, so re-running the report over the
// same directory diffs clean (the acceptance bar for all probe artifacts).
#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <optional>
#include <string>
#include <vector>

#include "dcdl/campaign/campaign.hpp"
#include "dcdl/common/flags.hpp"

namespace fs = std::filesystem;

namespace {

// ---- minimal line/object scanners (same idiom as forensics/trace_io) ----

std::optional<double> find_num(const std::string& s, const char* key,
                               std::size_t from = 0) {
  const std::string needle = std::string("\"") + key + "\":";
  const std::size_t at = s.find(needle, from);
  if (at == std::string::npos) return std::nullopt;
  const char* p = s.c_str() + at + needle.size();
  char* end = nullptr;
  const double v = std::strtod(p, &end);
  if (end == p) return std::nullopt;
  return v;
}

std::optional<std::string> find_string(const std::string& s, const char* key,
                                       std::size_t from = 0) {
  const std::string needle = std::string("\"") + key + "\":\"";
  const std::size_t at = s.find(needle, from);
  if (at == std::string::npos) return std::nullopt;
  const std::size_t begin = at + needle.size();
  const std::size_t end = s.find('"', begin);
  if (end == std::string::npos) return std::nullopt;
  return s.substr(begin, end - begin);
}

std::optional<bool> find_bool(const std::string& s, const char* key) {
  const std::string needle = std::string("\"") + key + "\":";
  const std::size_t at = s.find(needle);
  if (at == std::string::npos) return std::nullopt;
  return s.compare(at + needle.size(), 4, "true") == 0;
}

/// Content between the balanced brackets opening at s[open].
std::string bracket_region(const std::string& s, std::size_t open,
                           char open_ch, char close_ch) {
  int depth = 0;
  for (std::size_t p = open; p < s.size(); ++p) {
    if (s[p] == open_ch) ++depth;
    if (s[p] == close_ch && --depth == 0) {
      return s.substr(open + 1, p - open - 1);
    }
  }
  return std::string();
}

/// Splits a "{...},{...}" array body into its top-level objects.
std::vector<std::string> split_objects(const std::string& body) {
  std::vector<std::string> out;
  int depth = 0;
  std::size_t begin = 0;
  for (std::size_t p = 0; p < body.size(); ++p) {
    if (body[p] == '{') {
      if (depth == 0) begin = p;
      ++depth;
    } else if (body[p] == '}') {
      if (--depth == 0) out.push_back(body.substr(begin, p - begin + 1));
    }
  }
  return out;
}

// ---- dcdl.timeseries.v1 artifact ----

struct HistRow {
  std::string name;
  double count = 0, p50 = 0, p90 = 0, p99 = 0, max = 0;
};

struct SeriesAgg {
  std::string name;
  double max = 0, mean = 0, last = 0;
};

struct TsArtifact {
  std::string stem;  ///< file name without .timeseries.jsonl
  double interval_ps = 0;
  long long ticks = 0, dropped = 0;
  std::vector<SeriesAgg> series;
  std::vector<HistRow> hists;
  // Deadlock-onset timeline, derived from the series while scanning.
  double first_pause_ms = -1;  ///< first tick with pfc.active_pauses > 0
  double peak_queue_bytes = 0;
  double peak_queue_ms = -1;
  double end_active_pauses = 0;
};

std::optional<TsArtifact> load_timeseries(const fs::path& path) {
  std::FILE* f = std::fopen(path.string().c_str(), "r");
  if (!f) return std::nullopt;
  std::string content;
  char buf[1 << 14];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) content.append(buf, n);
  std::fclose(f);

  TsArtifact out;
  out.stem = path.filename().string();
  out.stem.resize(out.stem.size() - std::string(".timeseries.jsonl").size());

  std::size_t pos = 0;
  bool header_seen = false;
  int queue_idx = -1, pause_idx = -1;
  while (pos < content.size()) {
    std::size_t eol = content.find('\n', pos);
    if (eol == std::string::npos) eol = content.size();
    const std::string line = content.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    if (!header_seen) {
      if (find_string(line, "schema").value_or("") != "dcdl.timeseries.v1") {
        return std::nullopt;
      }
      out.interval_ps = find_num(line, "interval_ps").value_or(0);
      out.ticks = static_cast<long long>(find_num(line, "ticks").value_or(0));
      out.dropped =
          static_cast<long long>(find_num(line, "dropped_ticks").value_or(0));
      const std::size_t at = line.find("\"series\":");
      const std::string names =
          bracket_region(line, line.find('[', at), '[', ']');
      std::size_t q = 0;
      while ((q = names.find('"', q)) != std::string::npos) {
        const std::size_t end = names.find('"', q + 1);
        if (end == std::string::npos) break;
        out.series.push_back(SeriesAgg{names.substr(q + 1, end - q - 1)});
        q = end + 1;
      }
      for (std::size_t i = 0; i < out.series.size(); ++i) {
        if (out.series[i].name == "queue_bytes") queue_idx = int(i);
        if (out.series[i].name == "pfc.active_pauses") pause_idx = int(i);
      }
      header_seen = true;
      continue;
    }
    if (const auto h = find_string(line, "hist")) {
      HistRow row;
      row.name = *h;
      row.count = find_num(line, "count").value_or(0);
      row.p50 = find_num(line, "p50").value_or(0);
      row.p90 = find_num(line, "p90").value_or(0);
      row.p99 = find_num(line, "p99").value_or(0);
      row.max = find_num(line, "max").value_or(0);
      out.hists.push_back(std::move(row));
      continue;
    }
    const auto t_ps = find_num(line, "t_ps");
    if (!t_ps) continue;
    const std::size_t at = line.find("\"v\":");
    if (at == std::string::npos) continue;
    const std::string vals = bracket_region(line, line.find('[', at),
                                            '[', ']');
    const char* p = vals.c_str();
    for (std::size_t i = 0; i < out.series.size(); ++i) {
      char* end = nullptr;
      const double v = std::strtod(p, &end);
      if (end == p) break;
      p = *end == ',' ? end + 1 : end;
      SeriesAgg& s = out.series[i];
      s.max = std::max(s.max, v);
      s.mean += v;  // divided by tick count after the scan
      s.last = v;
      if (int(i) == pause_idx && v > 0 && out.first_pause_ms < 0) {
        out.first_pause_ms = *t_ps / 1e9;
      }
      if (int(i) == queue_idx && v > out.peak_queue_bytes) {
        out.peak_queue_bytes = v;
        out.peak_queue_ms = *t_ps / 1e9;
      }
    }
  }
  if (out.ticks > 0) {
    for (SeriesAgg& s : out.series) s.mean /= static_cast<double>(out.ticks);
  }
  if (pause_idx >= 0) out.end_active_pauses = out.series[size_t(pause_idx)].last;
  return out;
}

// ---- campaign JSON run table ----

struct RunRow {
  long long run = -1;
  std::string scenario, status, params;
  bool deadlocked = false;
  double goodput = 0, detect_ns = -1, recover_ns = -1;
};

std::vector<RunRow> load_campaign(const std::string& content) {
  std::vector<RunRow> rows;
  const std::size_t at = content.find("\"runs\":");
  if (at == std::string::npos) return rows;
  const std::string body =
      bracket_region(content, content.find('[', at), '[', ']');
  for (const std::string& obj : split_objects(body)) {
    RunRow row;
    row.run = static_cast<long long>(find_num(obj, "run").value_or(-1));
    row.scenario = find_string(obj, "scenario").value_or("?");
    row.status = find_string(obj, "status").value_or("?");
    row.deadlocked = find_bool(obj, "deadlocked").value_or(false);
    row.goodput = find_num(obj, "goodput_gbps").value_or(0);
    row.detect_ns = find_num(obj, "detection_latency_ns").value_or(-1);
    row.recover_ns = find_num(obj, "recovery_time_ns").value_or(-1);
    const std::size_t pat = obj.find("\"params\":");
    if (pat != std::string::npos) {
      row.params = bracket_region(obj, obj.find('{', pat), '{', '}');
      std::erase(row.params, '"');
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

void append(std::string& out, const char* fmt, ...) {
  char buf[1024];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  out += buf;
}

}  // namespace

int main(int argc, char** argv) {
  dcdl::Flags flags(argc, argv);
  const std::string dir = flags.get_string("dir", "");
  std::string json_path = flags.get_string("json", "");
  const std::string out_path = flags.get_string("out", "");
  flags.check_unused();
  if (dir.empty()) {
    std::fprintf(stderr,
                 "usage: dcdl_report --dir <campaign-output-dir> "
                 "[--json campaign.json] [--out report.md]\n");
    return 2;
  }
  if (!fs::is_directory(dir)) {
    std::fprintf(stderr, "dcdl_report: '%s' is not a directory\n",
                 dir.c_str());
    return 2;
  }

  // Sorted name order: the report is a deterministic function of the
  // directory contents, independent of readdir order.
  std::vector<fs::path> ts_files;
  std::vector<fs::path> json_files;
  for (const fs::directory_entry& e : fs::directory_iterator(dir)) {
    const std::string name = e.path().filename().string();
    if (name.size() > 17 &&
        name.compare(name.size() - 17, 17, ".timeseries.jsonl") == 0) {
      ts_files.push_back(e.path());
    } else if (name.size() > 5 &&
               name.compare(name.size() - 5, 5, ".json") == 0) {
      json_files.push_back(e.path());
    }
  }
  std::sort(ts_files.begin(), ts_files.end());
  std::sort(json_files.begin(), json_files.end());

  auto slurp = [](const fs::path& p) {
    std::string content;
    if (std::FILE* f = std::fopen(p.string().c_str(), "r")) {
      char buf[1 << 14];
      std::size_t n;
      while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
        content.append(buf, n);
      }
      std::fclose(f);
    }
    return content;
  };

  std::string campaign;
  if (!json_path.empty()) {
    campaign = slurp(json_path);
  } else {
    for (const fs::path& p : json_files) {
      const std::string content = slurp(p);
      if (content.find("\"schema\":\"dcdl.campaign.") != std::string::npos) {
        campaign = content;
        json_path = p.string();
        break;
      }
    }
  }
  const std::vector<RunRow> runs = load_campaign(campaign);

  std::string md;
  append(md, "# dcdl campaign report\n\n");
  append(md, "Source: `%s`", dir.c_str());
  if (!json_path.empty()) append(md, " (campaign: `%s`)", json_path.c_str());
  append(md, "\n\n");

  if (!runs.empty()) {
    append(md, "## Runs\n\n");
    append(md,
           "| run | scenario | params | status | deadlocked | goodput "
           "(Gbps) | detect (ms) | recover (ms) |\n");
    append(md, "|--:|---|---|---|---|--:|--:|--:|\n");
    for (const RunRow& r : runs) {
      append(md, "| %lld | %s | `%s` | %s | %s | %.3f | ", r.run,
             r.scenario.c_str(), r.params.empty() ? "-" : r.params.c_str(),
             r.status.c_str(), r.deadlocked ? "yes" : "no", r.goodput);
      if (r.detect_ns >= 0) {
        append(md, "%.3f | ", r.detect_ns / 1e6);
      } else {
        append(md, "- | ");
      }
      if (r.recover_ns >= 0) {
        append(md, "%.3f |\n", r.recover_ns / 1e6);
      } else {
        append(md, "- |\n");
      }
    }
    append(md, "\n");
  }

  std::size_t loaded = 0;
  for (const fs::path& p : ts_files) {
    const std::optional<TsArtifact> ts = load_timeseries(p);
    if (!ts) {
      std::fprintf(stderr, "dcdl_report: skipping '%s' (not a "
                   "dcdl.timeseries.v1 artifact)\n", p.string().c_str());
      continue;
    }
    ++loaded;
    append(md, "## %s\n\n", ts->stem.c_str());
    append(md, "%lld tick(s) at %.0f us", ts->ticks,
           ts->interval_ps / 1e6);
    if (ts->dropped > 0) {
      append(md, " (%lld older tick(s) evicted from the ring)", ts->dropped);
    }
    append(md, "\n\n");

    // Deadlock-onset timeline: the paper's formation story in three
    // numbers — when pausing starts, when occupancy peaks, and whether the
    // run ends wedged.
    append(md, "**Deadlock onset:** ");
    if (ts->first_pause_ms < 0) {
      append(md, "no PFC pause observed.\n\n");
    } else {
      append(md,
             "first PFC pause at %.3f ms; peak queue occupancy %.0f bytes "
             "at %.3f ms; %s at end of run (%.0f active pause(s)).\n\n",
             ts->first_pause_ms, ts->peak_queue_bytes, ts->peak_queue_ms,
             ts->end_active_pauses > 0 ? "still paused" : "pauses cleared",
             ts->end_active_pauses);
    }

    append(md, "| series | max | mean | last |\n|---|--:|--:|--:|\n");
    for (const SeriesAgg& s : ts->series) {
      // Per-channel utilization rows are summarized by util.max; skip them
      // to keep wide fabrics readable.
      if (s.name.compare(0, 5, "util.") == 0 && s.name != "util.max") {
        continue;
      }
      append(md, "| %s | %.4g | %.4g | %.4g |\n", s.name.c_str(), s.max,
             s.mean, s.last);
    }
    append(md, "\n");

    bool any_hist = false;
    for (const HistRow& h : ts->hists) any_hist |= h.count > 0;
    if (any_hist) {
      append(md,
             "| histogram | count | p50 (us) | p90 (us) | p99 (us) | "
             "max (us) |\n|---|--:|--:|--:|--:|--:|\n");
      for (const HistRow& h : ts->hists) {
        if (h.count == 0) continue;
        append(md, "| %s | %.0f | %.1f | %.1f | %.1f | %.1f |\n",
               h.name.c_str(), h.count, h.p50 / 1e6, h.p90 / 1e6,
               h.p99 / 1e6, h.max / 1e6);
      }
      append(md, "\n");
    }
  }

  if (loaded == 0 && runs.empty()) {
    std::fprintf(stderr,
                 "dcdl_report: no dcdl.timeseries.v1 artifacts or campaign "
                 "JSON found in '%s'\n", dir.c_str());
    return 1;
  }

  if (out_path.empty()) {
    std::fputs(md.c_str(), stdout);
  } else {
    dcdl::campaign::write_text_file(out_path, md);
    std::fprintf(stderr, "dcdl_report: %zu timeseries artifact(s), %zu "
                 "run record(s) -> %s\n", loaded, runs.size(),
                 out_path.c_str());
  }
  return 0;
}
