// dcdl_report — aggregate a campaign output directory into one markdown
// report: per-run time-series summaries, latency-histogram tables, and
// deadlock-onset timelines, plus a campaign-level run table, a cross-run
// anomaly section (robust z-scores over probe/alert metrics within each
// scenario identity class), and a skipped-artifacts note when the sweep
// directory is partial (missing or truncated per-run files are reported,
// never fatal).
//
//   $ ./dcdl_sweep --scenario valley --set "dataplane=reroute" --seeds 2
//         --trace out/ --out out/campaign.json
//   $ ./dcdl_report --dir out/ > report.md
//
// Inputs, all produced by dcdl_sweep/dcdl_sim:
//   * run_NNNNN.timeseries.jsonl / <scenario>.timeseries.jsonl — the
//     dcdl.timeseries.v1 artifacts (series + histograms);
//   * a dcdl.campaign.v* JSON (auto-detected in --dir, or named explicitly
//     with --json) for the per-run scenario/params/goodput/detection table.
//
// Flags: --dir <path> (required), --json <file> (campaign JSON; default:
// first *.json in --dir bearing a dcdl.campaign schema), --out <file>
// (default stdout).
//
// Determinism: files are scanned in sorted name order and every number is
// formatted with fixed printf precision, so re-running the report over the
// same directory diffs clean (the acceptance bar for all probe artifacts).
#include <algorithm>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "dcdl/campaign/campaign.hpp"
#include "dcdl/common/flags.hpp"

namespace fs = std::filesystem;

namespace {

// ---- minimal line/object scanners (same idiom as forensics/trace_io) ----

std::optional<double> find_num(const std::string& s, const char* key,
                               std::size_t from = 0) {
  const std::string needle = std::string("\"") + key + "\":";
  const std::size_t at = s.find(needle, from);
  if (at == std::string::npos) return std::nullopt;
  const char* p = s.c_str() + at + needle.size();
  char* end = nullptr;
  const double v = std::strtod(p, &end);
  if (end == p) return std::nullopt;
  return v;
}

std::optional<std::string> find_string(const std::string& s, const char* key,
                                       std::size_t from = 0) {
  const std::string needle = std::string("\"") + key + "\":\"";
  const std::size_t at = s.find(needle, from);
  if (at == std::string::npos) return std::nullopt;
  const std::size_t begin = at + needle.size();
  const std::size_t end = s.find('"', begin);
  if (end == std::string::npos) return std::nullopt;
  return s.substr(begin, end - begin);
}

std::optional<bool> find_bool(const std::string& s, const char* key) {
  const std::string needle = std::string("\"") + key + "\":";
  const std::size_t at = s.find(needle);
  if (at == std::string::npos) return std::nullopt;
  return s.compare(at + needle.size(), 4, "true") == 0;
}

/// Content between the balanced brackets opening at s[open].
std::string bracket_region(const std::string& s, std::size_t open,
                           char open_ch, char close_ch) {
  int depth = 0;
  for (std::size_t p = open; p < s.size(); ++p) {
    if (s[p] == open_ch) ++depth;
    if (s[p] == close_ch && --depth == 0) {
      return s.substr(open + 1, p - open - 1);
    }
  }
  return std::string();
}

/// Splits a "{...},{...}" array body into its top-level objects.
std::vector<std::string> split_objects(const std::string& body) {
  std::vector<std::string> out;
  int depth = 0;
  std::size_t begin = 0;
  for (std::size_t p = 0; p < body.size(); ++p) {
    if (body[p] == '{') {
      if (depth == 0) begin = p;
      ++depth;
    } else if (body[p] == '}') {
      if (--depth == 0) out.push_back(body.substr(begin, p - begin + 1));
    }
  }
  return out;
}

// ---- dcdl.timeseries.v1 artifact ----

struct HistRow {
  std::string name;
  double count = 0, p50 = 0, p90 = 0, p99 = 0, p999 = 0, max = 0;
};

struct SeriesAgg {
  std::string name;
  double max = 0, mean = 0, last = 0;
};

struct TsArtifact {
  std::string stem;  ///< file name without .timeseries.jsonl
  double interval_ps = 0;
  long long ticks = 0, dropped = 0;
  std::vector<SeriesAgg> series;
  std::vector<HistRow> hists;
  // Deadlock-onset timeline, derived from the series while scanning.
  double first_pause_ms = -1;  ///< first tick with pfc.active_pauses > 0
  double peak_queue_bytes = 0;
  double peak_queue_ms = -1;
  double end_active_pauses = 0;
  long long data_rows = 0;  ///< sample lines actually present in the file
};

/// Loads one dcdl.timeseries.v1 artifact. On failure `why` explains what
/// was wrong (unreadable, wrong schema) so the report can carry a
/// skipped-artifacts note instead of silently dropping the file.
std::optional<TsArtifact> load_timeseries(const fs::path& path,
                                          std::string& why) {
  std::FILE* f = std::fopen(path.string().c_str(), "r");
  if (!f) {
    why = "unreadable";
    return std::nullopt;
  }
  std::string content;
  char buf[1 << 14];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) content.append(buf, n);
  std::fclose(f);

  TsArtifact out;
  out.stem = path.filename().string();
  out.stem.resize(out.stem.size() - std::string(".timeseries.jsonl").size());

  std::size_t pos = 0;
  bool header_seen = false;
  int queue_idx = -1, pause_idx = -1;
  while (pos < content.size()) {
    std::size_t eol = content.find('\n', pos);
    if (eol == std::string::npos) eol = content.size();
    const std::string line = content.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    if (!header_seen) {
      if (find_string(line, "schema").value_or("") != "dcdl.timeseries.v1") {
        why = "not a dcdl.timeseries.v1 artifact";
        return std::nullopt;
      }
      out.interval_ps = find_num(line, "interval_ps").value_or(0);
      out.ticks = static_cast<long long>(find_num(line, "ticks").value_or(0));
      out.dropped =
          static_cast<long long>(find_num(line, "dropped_ticks").value_or(0));
      const std::size_t at = line.find("\"series\":");
      const std::string names =
          bracket_region(line, line.find('[', at), '[', ']');
      std::size_t q = 0;
      while ((q = names.find('"', q)) != std::string::npos) {
        const std::size_t end = names.find('"', q + 1);
        if (end == std::string::npos) break;
        out.series.push_back(SeriesAgg{names.substr(q + 1, end - q - 1)});
        q = end + 1;
      }
      for (std::size_t i = 0; i < out.series.size(); ++i) {
        if (out.series[i].name == "queue_bytes") queue_idx = int(i);
        if (out.series[i].name == "pfc.active_pauses") pause_idx = int(i);
      }
      header_seen = true;
      continue;
    }
    if (const auto h = find_string(line, "hist")) {
      HistRow row;
      row.name = *h;
      row.count = find_num(line, "count").value_or(0);
      row.p50 = find_num(line, "p50").value_or(0);
      row.p90 = find_num(line, "p90").value_or(0);
      row.p99 = find_num(line, "p99").value_or(0);
      row.p999 = find_num(line, "p999").value_or(0);
      row.max = find_num(line, "max").value_or(0);
      out.hists.push_back(std::move(row));
      continue;
    }
    const auto t_ps = find_num(line, "t_ps");
    if (!t_ps) continue;
    ++out.data_rows;
    const std::size_t at = line.find("\"v\":");
    if (at == std::string::npos) continue;
    const std::string vals = bracket_region(line, line.find('[', at),
                                            '[', ']');
    const char* p = vals.c_str();
    for (std::size_t i = 0; i < out.series.size(); ++i) {
      char* end = nullptr;
      const double v = std::strtod(p, &end);
      if (end == p) break;
      p = *end == ',' ? end + 1 : end;
      SeriesAgg& s = out.series[i];
      s.max = std::max(s.max, v);
      s.mean += v;  // divided by tick count after the scan
      s.last = v;
      if (int(i) == pause_idx && v > 0 && out.first_pause_ms < 0) {
        out.first_pause_ms = *t_ps / 1e9;
      }
      if (int(i) == queue_idx && v > out.peak_queue_bytes) {
        out.peak_queue_bytes = v;
        out.peak_queue_ms = *t_ps / 1e9;
      }
    }
  }
  if (!header_seen) {
    why = "truncated before the header line";
    return std::nullopt;
  }
  if (out.ticks > 0) {
    for (SeriesAgg& s : out.series) s.mean /= static_cast<double>(out.ticks);
  }
  if (pause_idx >= 0) out.end_active_pauses = out.series[size_t(pause_idx)].last;
  return out;
}

// ---- campaign JSON run table ----

struct RunRow {
  long long run = -1;
  std::string scenario, status, params;
  bool deadlocked = false;
  double goodput = 0, detect_ns = -1, recover_ns = -1;
  double critical_fires = -1, lead_ms = -1;  ///< from the "alerts" object
  /// Flat numeric metrics for the anomaly pass, names prefixed with the
  /// subobject they came from ("probe.", "alerts.") plus goodput_gbps.
  std::vector<std::pair<std::string, double>> metrics;
};

/// Parses the flat `"name":value,...` pairs of the named subobject of
/// `obj` (the campaign JSON's "probe"/"alerts" digests). Non-numeric
/// values are skipped.
std::vector<std::pair<std::string, double>> parse_metric_object(
    const std::string& obj, const char* key) {
  std::vector<std::pair<std::string, double>> out;
  const std::string needle = std::string("\"") + key + "\":{";
  const std::size_t at = obj.find(needle);
  if (at == std::string::npos) return out;
  const std::string body =
      bracket_region(obj, at + needle.size() - 1, '{', '}');
  std::size_t p = 0;
  while (p < body.size()) {
    const std::size_t q = body.find('"', p);
    if (q == std::string::npos) break;
    const std::size_t q2 = body.find('"', q + 1);
    if (q2 == std::string::npos) break;
    p = q2 + 1;
    if (p >= body.size() || body[p] != ':') continue;
    char* end = nullptr;
    const char* num = body.c_str() + p + 1;
    const double v = std::strtod(num, &end);
    if (end == num) continue;
    out.emplace_back(body.substr(q + 1, q2 - q - 1), v);
    p = static_cast<std::size_t>(end - body.c_str());
  }
  return out;
}

/// Removes the derived per-run "seed" entry from a flattened params string
/// ("inject_gbps:7,seed:123" -> "inject_gbps:7"): seeds distinguish
/// replicas, not identity classes, so the anomaly grouping must ignore
/// them.
std::string strip_seed(const std::string& params) {
  const std::size_t at = params.find("seed:");
  if (at != std::string::npos && (at == 0 || params[at - 1] == ',')) {
    std::size_t end = params.find(',', at);
    if (end == std::string::npos) {
      return params.substr(0, at == 0 ? 0 : at - 1);
    }
    return params.substr(0, at) + params.substr(end + 1);
  }
  return params;
}

std::vector<RunRow> load_campaign(const std::string& content) {
  std::vector<RunRow> rows;
  const std::size_t at = content.find("\"runs\":");
  if (at == std::string::npos) return rows;
  const std::string body =
      bracket_region(content, content.find('[', at), '[', ']');
  for (const std::string& obj : split_objects(body)) {
    RunRow row;
    row.run = static_cast<long long>(find_num(obj, "run").value_or(-1));
    row.scenario = find_string(obj, "scenario").value_or("?");
    row.status = find_string(obj, "status").value_or("?");
    row.deadlocked = find_bool(obj, "deadlocked").value_or(false);
    row.goodput = find_num(obj, "goodput_gbps").value_or(0);
    row.detect_ns = find_num(obj, "detection_latency_ns").value_or(-1);
    row.recover_ns = find_num(obj, "recovery_time_ns").value_or(-1);
    const std::size_t pat = obj.find("\"params\":");
    if (pat != std::string::npos) {
      row.params = bracket_region(obj, obj.find('{', pat), '{', '}');
      std::erase(row.params, '"');
    }
    row.metrics.emplace_back("goodput_gbps", row.goodput);
    for (auto& [name, v] : parse_metric_object(obj, "probe")) {
      row.metrics.emplace_back("probe." + name, v);
    }
    for (auto& [name, v] : parse_metric_object(obj, "alerts")) {
      if (name == "fired.critical") row.critical_fires = v;
      if (name == "lead_ms") row.lead_ms = v;
      row.metrics.emplace_back("alerts." + name, v);
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

// ---- cross-run anomaly detection ----

struct Anomaly {
  std::string group, metric;
  long long run = -1;
  double value = 0, median = 0, z = 0;
};

/// Robust per-metric outlier scan within each scenario identity class
/// (scenario + params minus the seed). The score is the classic robust z:
/// (x - median) / max(1.4826 * MAD, floor). The floor keeps a
/// nearly-degenerate spread from amplifying formatting-level jitter into
/// an outlier, while a genuinely divergent replica (MAD == 0 because every
/// other seed agrees exactly) is still flagged. Groups need >= 4 ok runs
/// for the median/MAD to mean anything. Output order is deterministic:
/// group, then metric, then run index.
std::vector<Anomaly> find_anomalies(const std::vector<RunRow>& runs,
                                    double z_threshold = 3.5) {
  std::map<std::string, std::vector<const RunRow*>> groups;
  for (const RunRow& r : runs) {
    if (r.status != "ok") continue;
    groups[r.scenario + " `" + strip_seed(r.params) + "`"].push_back(&r);
  }
  std::vector<Anomaly> out;
  for (const auto& [group, members] : groups) {
    if (members.size() < 4) continue;
    std::map<std::string, std::vector<std::pair<long long, double>>> by_metric;
    for (const RunRow* r : members) {
      for (const auto& [name, v] : r->metrics) {
        by_metric[name].emplace_back(r->run, v);
      }
    }
    for (const auto& [metric, obs] : by_metric) {
      if (obs.size() < 4) continue;
      std::vector<double> vals;
      vals.reserve(obs.size());
      for (const auto& [run, v] : obs) vals.push_back(v);
      std::sort(vals.begin(), vals.end());
      const double med = vals[vals.size() / 2];
      std::vector<double> dev;
      dev.reserve(vals.size());
      for (const double v : vals) dev.push_back(std::fabs(v - med));
      std::sort(dev.begin(), dev.end());
      const double mad = dev[dev.size() / 2];
      const double floor =
          1e-6 * std::max(1.0, std::fabs(med));
      const double scale = std::max(1.4826 * mad, floor);
      for (const auto& [run, v] : obs) {
        const double z = (v - med) / scale;
        if (std::fabs(z) < z_threshold) continue;
        Anomaly a;
        a.group = group;
        a.metric = metric;
        a.run = run;
        a.value = v;
        a.median = med;
        a.z = z;
        out.push_back(std::move(a));
      }
    }
  }
  return out;
}

void append(std::string& out, const char* fmt, ...) {
  char buf[1024];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  out += buf;
}

}  // namespace

int main(int argc, char** argv) {
  dcdl::Flags flags(argc, argv);
  const std::string dir = flags.get_string("dir", "");
  std::string json_path = flags.get_string("json", "");
  const std::string out_path = flags.get_string("out", "");
  flags.check_unused();
  if (dir.empty()) {
    std::fprintf(stderr,
                 "usage: dcdl_report --dir <campaign-output-dir> "
                 "[--json campaign.json] [--out report.md]\n");
    return 2;
  }
  if (!fs::is_directory(dir)) {
    std::fprintf(stderr, "dcdl_report: '%s' is not a directory\n",
                 dir.c_str());
    return 2;
  }

  // Sorted name order: the report is a deterministic function of the
  // directory contents, independent of readdir order.
  std::vector<fs::path> ts_files;
  std::vector<fs::path> json_files;
  for (const fs::directory_entry& e : fs::directory_iterator(dir)) {
    const std::string name = e.path().filename().string();
    if (name.size() > 17 &&
        name.compare(name.size() - 17, 17, ".timeseries.jsonl") == 0) {
      ts_files.push_back(e.path());
    } else if (name.size() > 5 &&
               name.compare(name.size() - 5, 5, ".json") == 0) {
      json_files.push_back(e.path());
    }
  }
  std::sort(ts_files.begin(), ts_files.end());
  std::sort(json_files.begin(), json_files.end());

  auto slurp = [](const fs::path& p) {
    std::string content;
    if (std::FILE* f = std::fopen(p.string().c_str(), "r")) {
      char buf[1 << 14];
      std::size_t n;
      while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
        content.append(buf, n);
      }
      std::fclose(f);
    }
    return content;
  };

  std::string campaign;
  if (!json_path.empty()) {
    campaign = slurp(json_path);
  } else {
    for (const fs::path& p : json_files) {
      const std::string content = slurp(p);
      if (content.find("\"schema\":\"dcdl.campaign.") != std::string::npos) {
        campaign = content;
        json_path = p.string();
        break;
      }
    }
  }
  const std::vector<RunRow> runs = load_campaign(campaign);

  std::string md;
  append(md, "# dcdl campaign report\n\n");
  append(md, "Source: `%s`", dir.c_str());
  if (!json_path.empty()) append(md, " (campaign: `%s`)", json_path.c_str());
  append(md, "\n\n");

  if (!runs.empty()) {
    append(md, "## Runs\n\n");
    append(md,
           "| run | scenario | params | status | deadlocked | goodput "
           "(Gbps) | detect (ms) | recover (ms) | crit alerts | lead (ms) "
           "|\n");
    append(md, "|--:|---|---|---|---|--:|--:|--:|--:|--:|\n");
    for (const RunRow& r : runs) {
      append(md, "| %lld | %s | `%s` | %s | %s | %.3f | ", r.run,
             r.scenario.c_str(), r.params.empty() ? "-" : r.params.c_str(),
             r.status.c_str(), r.deadlocked ? "yes" : "no", r.goodput);
      if (r.detect_ns >= 0) {
        append(md, "%.3f | ", r.detect_ns / 1e6);
      } else {
        append(md, "- | ");
      }
      if (r.recover_ns >= 0) {
        append(md, "%.3f | ", r.recover_ns / 1e6);
      } else {
        append(md, "- | ");
      }
      if (r.critical_fires >= 0) {
        append(md, "%.0f | ", r.critical_fires);
      } else {
        append(md, "- | ");
      }
      if (r.lead_ms >= 0) {
        append(md, "%.3f |\n", r.lead_ms);
      } else {
        append(md, "- |\n");
      }
    }
    append(md, "\n");
  }

  // Cross-run anomaly scan: robust z-scores over the probe/alert digests
  // within each scenario identity class (same scenario + params, seeds
  // differing). Deterministic ordering, so the section diffs clean.
  const std::vector<Anomaly> anomalies = find_anomalies(runs);
  if (!runs.empty()) {
    append(md, "## Anomalies\n\n");
    if (anomalies.empty()) {
      append(md,
             "No cross-run anomalies (robust z >= 3.5 within an identity "
             "class of >= 4 runs).\n\n");
    } else {
      append(md,
             "| identity class | metric | run | value | class median | "
             "robust z |\n|---|---|--:|--:|--:|--:|\n");
      constexpr std::size_t kMaxAnomalyRows = 64;
      for (std::size_t i = 0;
           i < anomalies.size() && i < kMaxAnomalyRows; ++i) {
        const Anomaly& a = anomalies[i];
        append(md, "| %s | %s | %lld | %.6g | %.6g | %+.3g |\n",
               a.group.c_str(), a.metric.c_str(), a.run, a.value, a.median,
               a.z);
      }
      if (anomalies.size() > kMaxAnomalyRows) {
        append(md, "\n(%zu more anomaly row(s) suppressed)\n",
               anomalies.size() - kMaxAnomalyRows);
      }
      append(md, "\n");
    }
  }

  // Partial-directory notes: a sweep that was interrupted (or whose files
  // were pruned) yields a report with this section instead of an abort.
  std::vector<std::string> skipped;

  std::size_t loaded = 0;
  for (const fs::path& p : ts_files) {
    std::string why;
    const std::optional<TsArtifact> ts = load_timeseries(p, why);
    if (!ts) {
      skipped.push_back("`" + p.filename().string() + "` — " + why);
      std::fprintf(stderr, "dcdl_report: skipping '%s' (%s)\n",
                   p.string().c_str(), why.c_str());
      continue;
    }
    const long long expected_rows = ts->ticks - ts->dropped;
    if (ts->data_rows < expected_rows) {
      char note[256];
      std::snprintf(note, sizeof(note),
                    "`%s` — truncated: header declares %lld sample row(s), "
                    "file holds %lld (summarized as-is)",
                    p.filename().string().c_str(), expected_rows,
                    ts->data_rows);
      skipped.push_back(note);
    }
    ++loaded;
    append(md, "## %s\n\n", ts->stem.c_str());
    append(md, "%lld tick(s) at %.0f us", ts->ticks,
           ts->interval_ps / 1e6);
    if (ts->dropped > 0) {
      append(md, " (%lld older tick(s) evicted from the ring)", ts->dropped);
    }
    append(md, "\n\n");

    // Deadlock-onset timeline: the paper's formation story in three
    // numbers — when pausing starts, when occupancy peaks, and whether the
    // run ends wedged.
    append(md, "**Deadlock onset:** ");
    if (ts->first_pause_ms < 0) {
      append(md, "no PFC pause observed.\n\n");
    } else {
      append(md,
             "first PFC pause at %.3f ms; peak queue occupancy %.0f bytes "
             "at %.3f ms; %s at end of run (%.0f active pause(s)).\n\n",
             ts->first_pause_ms, ts->peak_queue_bytes, ts->peak_queue_ms,
             ts->end_active_pauses > 0 ? "still paused" : "pauses cleared",
             ts->end_active_pauses);
    }

    append(md, "| series | max | mean | last |\n|---|--:|--:|--:|\n");
    for (const SeriesAgg& s : ts->series) {
      // Per-channel utilization rows are summarized by util.max; skip them
      // to keep wide fabrics readable.
      if (s.name.compare(0, 5, "util.") == 0 && s.name != "util.max") {
        continue;
      }
      append(md, "| %s | %.4g | %.4g | %.4g |\n", s.name.c_str(), s.max,
             s.mean, s.last);
    }
    append(md, "\n");

    bool any_hist = false;
    for (const HistRow& h : ts->hists) any_hist |= h.count > 0;
    if (any_hist) {
      append(md,
             "| histogram | count | p50 (us) | p90 (us) | p99 (us) | "
             "p999 (us) | max (us) |\n|---|--:|--:|--:|--:|--:|--:|\n");
      for (const HistRow& h : ts->hists) {
        if (h.count == 0) continue;
        append(md, "| %s | %.0f | %.1f | %.1f | %.1f | %.1f | %.1f |\n",
               h.name.c_str(), h.count, h.p50 / 1e6, h.p90 / 1e6,
               h.p99 / 1e6, h.p999 / 1e6, h.max / 1e6);
      }
      append(md, "\n");
    }
  }

  // Per-run artifact completeness: when the directory holds per-run
  // (run_NNNNN.*) artifacts, every ok run in the campaign JSON should have
  // its timeseries, alerts, and forensics files. Missing ones get a note.
  bool any_run_files = false;
  for (const fs::path& p : ts_files) {
    if (p.filename().string().compare(0, 4, "run_") == 0) {
      any_run_files = true;
      break;
    }
  }
  if (any_run_files) {
    for (const RunRow& r : runs) {
      if (r.status != "ok" || r.run < 0) continue;
      char stem[32];
      std::snprintf(stem, sizeof(stem), "run_%05lld", r.run);
      for (const char* suffix :
           {".timeseries.jsonl", ".alerts.jsonl", ".forensics.txt"}) {
        const fs::path expect = fs::path(dir) / (std::string(stem) + suffix);
        if (!fs::exists(expect)) {
          skipped.push_back("`" + expect.filename().string() +
                            "` — missing for ok run " +
                            std::to_string(r.run));
        }
      }
    }
  }

  if (!skipped.empty()) {
    append(md, "## Skipped artifacts\n\n");
    append(md,
           "The campaign directory is partial; these artifacts were "
           "skipped or flagged (the rest of the report is unaffected):\n\n");
    for (const std::string& s : skipped) append(md, "- %s\n", s.c_str());
    append(md, "\n");
  }

  if (loaded == 0 && runs.empty()) {
    std::fprintf(stderr,
                 "dcdl_report: no dcdl.timeseries.v1 artifacts or campaign "
                 "JSON found in '%s'\n", dir.c_str());
    return 1;
  }

  if (out_path.empty()) {
    std::fputs(md.c_str(), stdout);
  } else {
    dcdl::campaign::write_text_file(out_path, md);
    std::fprintf(stderr, "dcdl_report: %zu timeseries artifact(s), %zu "
                 "run record(s) -> %s\n", loaded, runs.size(),
                 out_path.c_str());
  }
  return 0;
}
