// dcdl_sim — the general-purpose scenario runner: pick a scenario, set its
// knobs from flags, and get the full diagnostic report (static analysis,
// risk score, pause statistics, cascade depth, per-flow goodput, deadlock
// verdicts from both detectors).
//
//   $ ./dcdl_sim --scenario=fig4
//   $ ./dcdl_sim --scenario=loop --inject_gbps=7 --ttl=24
//   $ ./dcdl_sim --scenario=fig5 --flow3_gbps=2.5 --seed=3
//   $ ./dcdl_sim --scenario=valley --watchdog
//
// Scenarios: fig1 (ring), loop, fig3, fig4, fig5, transient, valley,
// incast. Common flags: --run_ms, --seed, --watchdog, --smart_limit,
// --shards N (run on the sharded conservative engine with N worker
// threads — every report byte is identical for all N >= 1),
// --dataplane <off|detect|drop|reroute|pfc_lift> (arm the in-switch DCFIT
// detection pipeline with the given recovery policy, e.g.
// `dcdl_sim --scenario=loop --dataplane=reroute`),
// --hybrid <off|static|risk> (run under the hybrid fluid/packet engine:
// uncongested regions integrate as fluid flows, deadlock-capable ones stay
// packet — the verdict is identical by construction), --fluid (also run the
// scenario's pure-fluid twin and print its verdict next to the packet one;
// fig4 is the paper's §3.2 case where the two disagree).
// Observability: --trace <dir> writes <scenario>.trace.json (Perfetto, with
// pause-cascade flow arrows; open in chrome://tracing or ui.perfetto.dev),
// <scenario>.telemetry.jsonl (topology-bearing, replayable through
// dcdl_forensics), <scenario>.forensics.{txt,dot}, the dcdl::probe
// artifacts <scenario>.timeseries.jsonl (dcdl.timeseries.v1, consumed by
// dcdl_report) and <scenario>.counters.json (Perfetto counter tracks), the
// dcdl::watch artifacts <scenario>.alerts.jsonl (dcdl.alerts.v1) and
// <scenario>.alerts.perfetto.json (alert instants on the trace timeline),
// and — when a deadlock is confirmed — <scenario>.postmortem.jsonl captured
// at the confirmation instant. --metrics prints the full metrics snapshot
// after the run; the probe summary (FCT / pause-duration / queuing-delay
// percentiles) prints after every run. --probe_us N changes the sampling
// interval (default 100). The early-warning watcher (dcdl::watch) is
// always on and its alert digest prints after every run; --watch
// additionally streams a live status line plus every alert edge to stderr
// while the simulation runs. --profile installs the wall-clock engine
// self-profiler and prints its span table (nondeterministic; never in the
// artifacts). A forensic post-mortem (initial trigger, cascade shape) is
// printed after every run.
#include <cstdio>
#include <optional>
#include <string>

#include "dcdl/dcdl.hpp"

using namespace dcdl;
using namespace dcdl::literals;
using namespace dcdl::scenarios;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::string which = flags.get_string("scenario", "fig4");
  const Time run_for = Time{flags.get_int("run_ms", 20) * 1'000'000'000};
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const bool watchdog = flags.get_bool("watchdog", false);
  const bool smart_limit = flags.get_bool("smart_limit", false);
  const double inject = flags.get_double("inject_gbps", 8);
  const int ttl = static_cast<int>(flags.get_int("ttl", 16));
  const double flow3 = flags.get_double("flow3_gbps", 0);
  const std::string trace_dir = flags.get_string("trace", "");
  const bool metrics = flags.get_bool("metrics", false);
  const Time probe_interval =
      Time{flags.get_int("probe_us", 100) * 1'000'000};
  const bool watch_live = flags.get_bool("watch", false);
  const bool profile = flags.get_bool("profile", false);
  const int shards = static_cast<int>(flags.get_int("shards", 0));
  const std::string dp_str = flags.get_string("dataplane", "off");
  dataplane::DataplaneConfig dp_cfg;
  if (!dataplane::parse_policy(dp_str, &dp_cfg.policy)) {
    std::fprintf(stderr,
                 "unknown --dataplane=%s (off|detect|drop|reroute|pfc_lift)\n",
                 dp_str.c_str());
    return 2;
  }
  const std::string hybrid_str = flags.get_string("hybrid", "off");
  const std::optional<hybrid::Mode> hybrid_mode =
      hybrid::parse_mode(hybrid_str);
  if (!hybrid_mode) {
    std::fprintf(stderr, "unknown --hybrid=%s (off|static|risk)\n",
                 hybrid_str.c_str());
    return 2;
  }
  const bool fluid_twin = flags.get_bool("fluid", false);

  Scenario s = [&]() -> Scenario {
    // The request only needs to cover Network construction: the network
    // latches its engine there, and everything downstream (monitors,
    // watchdog, run_and_check) drives it through the run delegate.
    std::optional<ScopedShardRequest> shard_request;
    if (shards >= 1) shard_request.emplace(shards);
    if (which == "fig1") {
      RingDeadlockParams p;
      p.dataplane = dp_cfg;
      p.seed = seed;
      return make_ring_deadlock(p);
    }
    if (which == "loop") {
      RoutingLoopParams p;
      p.dataplane = dp_cfg;
      p.inject = Rate::gbps(inject);
      p.ttl = ttl;
      return make_routing_loop(p);
    }
    if (which == "fig3") {
      FourSwitchParams p;
      p.dataplane = dp_cfg;
      p.seed = seed;
      return make_four_switch(p);
    }
    if (which == "fig4" || which == "fig5") {
      FourSwitchParams p;
      p.dataplane = dp_cfg;
      p.with_flow3 = true;
      p.seed = seed;
      if (which == "fig5" || flow3 > 0) {
        p.flow3_limit = Rate::gbps(flow3 > 0 ? flow3 : 2.0);
      }
      return make_four_switch(p);
    }
    if (which == "transient") {
      TransientLoopParams p;
      p.dataplane = dp_cfg;
      p.inject = Rate::gbps(inject);
      p.ttl = ttl;
      return make_transient_loop(p);
    }
    if (which == "valley") {
      ValleyViolationParams p;
      p.dataplane = dp_cfg;
      p.seed = seed;
      return make_valley_violation(p);
    }
    if (which == "incast") {
      IncastParams p;
      return make_incast(p);
    }
    std::fprintf(stderr, "unknown --scenario=%s\n", which.c_str());
    std::exit(2);
  }();
  flags.check_unused();

  std::printf("scenario: %s (%zu switches, %zu hosts, %zu flows)\n",
              which.c_str(), s.topo->switches().size(),
              s.topo->hosts().size(), s.flows.size());
  if (s.net->sharded()) {
    std::printf("engine: sharded, %d shard(s), %zu cut link(s), "
                "lookahead %.2f us\n",
                s.net->engine().num_shards(),
                s.net->shard_plan().cut_links.size(),
                s.net->engine().lookahead().us());
  }

  // Static analysis before any packet moves.
  const auto bdg = analysis::BufferDependencyGraph::build(*s.net, s.flows);
  std::printf("static: cyclic buffer dependency %s (%zu cycle(s))\n",
              bdg.has_cycle() ? "PRESENT" : "absent", bdg.cycles().size());
  if (bdg.has_cycle()) {
    const auto risk = analysis::assess_deadlock_risk(*s.net, s.flows);
    for (const auto& c : risk.cycles) {
      std::printf("  cycle of %zu queues: min link utilization %.2f, %d "
                  "slack link(s) -> lockable: %s\n",
                  c.cycle.size(), c.min_utilization, c.slack_links,
                  c.reachable() ? "yes" : "no");
    }
  }

  if (smart_limit) {
    const auto plan = mitigation::plan_rate_limits(*s.net, s.flows);
    std::printf("smart limiter: shaping %zu flow(s) at source NICs\n",
                plan.actions.size());
    for (const auto& a : plan.actions) {
      std::printf("  flow %u -> %s\n", a.flow, a.rate.to_string().c_str());
    }
    mitigation::apply_rate_limits(*s.net, plan);
  }
  std::unique_ptr<mitigation::PfcWatchdog> wd;
  if (watchdog) {
    wd = std::make_unique<mitigation::PfcWatchdog>(
        *s.net, mitigation::PfcWatchdog::Params{});
    wd->start(Time::zero(), run_for + 60_ms);
    std::printf("PFC watchdog armed (storm threshold 2 ms)\n");
  }

  // The hybrid controller reads the live pacers, so it must come after any
  // mitigation rewiring (smart_limit swaps pacers at the source NICs).
  std::unique_ptr<hybrid::HybridController> hyb;
  if (*hybrid_mode != hybrid::Mode::kOff) {
    hybrid::HybridConfig hcfg;
    hcfg.mode = *hybrid_mode;
    hyb = std::make_unique<hybrid::HybridController>(*s.net, s.flows, hcfg);
    std::printf("hybrid: %s mode, %d region(s), %zu of %zu flow(s) fluid "
                "at t=0\n",
                hybrid::to_string(hcfg.mode), hyb->num_regions(),
                hyb->fluid_flows(), s.flows.size());
  }

  stats::PauseEventLog pauses(*s.net);
  stats::LatencyMeter latency(*s.net);
  std::vector<forensics::CausalInput::Drop> drop_log;
  stats::append_hook(
      s.net->trace().dropped,
      [&drop_log](Time t, const Packet&, NodeId node, DropReason reason) {
        drop_log.push_back({t.ps(), node, static_cast<std::uint8_t>(reason)});
      });
  telemetry::RunTelemetry run_telemetry(*s.net);
  probe::ProbeOptions probe_opts;
  probe_opts.interval = probe_interval;
  probe::RunProbe run_probe(*s.net, probe_opts);
  if (hyb) {
    run_probe.add_gauge_series("hybrid.fluid_flows", [ctl = hyb.get()] {
      return static_cast<double>(ctl->fluid_flows());
    });
  }
  // Always-on early-warning watcher; --watch streams its live view.
  watch::WatchOptions watch_opts;
  watch_opts.interval = probe_interval;
  watch::RunWatch run_watch(*s.net, s.flows, watch_opts);
  if (watch_live) {
    run_watch.set_on_event([&s, &run_watch](const watch::AlertEvent& ev) {
      std::fprintf(stderr, "\n[watch] %8.3f ms  %-8s %s %s (%s=%g) @ %s\n",
                   ev.t.ms(), watch::to_string(ev.severity),
                   run_watch.engine().rules()[ev.rule].name.c_str(),
                   ev.firing ? "FIRE" : "clear",
                   run_watch.engine().rules()[ev.rule].signal.c_str(),
                   ev.value, watch::node_label(*s.topo, ev.node).c_str());
    });
    run_watch.set_on_tick([](Time t, const watch::RunWatch& w) {
      const auto sig = [&w](const char* name) {
        const auto& names = w.signal_names();
        for (std::size_t i = 0; i < names.size(); ++i) {
          if (names[i] == name) return w.signal_values()[i];
        }
        return 0.0;
      };
      const auto ceiling = w.engine().active_ceiling();
      std::fprintf(stderr,
                   "\r[watch] t=%7.2f ms  queued=%9.0f B  pause_frac=%4.2f "
                   " age=%7.1f us  wedge=%2.0f  risk=%4.2f  [%s]   ",
                   t.ms(), sig("queue_bytes"), sig("pause_frac"),
                   sig("pause_age_us"), sig("wedge_queues"),
                   sig("risk_max"),
                   ceiling ? watch::to_string(*ceiling) : "ok");
    });
  }
  std::unique_ptr<telemetry::FlightRecorder> recorder;
  if (!trace_dir.empty()) {
    try {
      campaign::ensure_output_dir(trace_dir);
    } catch (const campaign::CampaignError& e) {
      std::fprintf(stderr, "dcdl_sim: %s\n", e.what());
      return 2;
    }
    recorder = std::make_unique<telemetry::FlightRecorder>();
    recorder->attach(*s.net);
  }
  // The confirmed-deadlock hook: snapshot the flight recorder while the
  // wedged state is live, before stop_and_drain perturbs the queues.
  std::string post_mortem;
  run_probe.start(*s.sim, s.sim->now() + run_for);
  run_watch.start(*s.sim, s.sim->now() + run_for);
  // The profiler installs on this thread only: shard workers see a null
  // thread_local and record nothing (the coordinator-side barrier span
  // stands in for their wall time).
  probe::Profiler profiler;
  std::optional<probe::Profiler::ScopedInstall> profile_scope;
  if (profile) profile_scope.emplace(profiler);
  const RunSummary r = run_and_check(
      s, run_for, 30_ms, Time{1'000'000'000},
      [&](const analysis::DeadlockMonitor& m) {
        if (recorder != nullptr) {
          post_mortem = telemetry::post_mortem_jsonl(
              *s.topo, *recorder, m.cycle(), *m.detected_at());
        }
      });

  std::printf("\nafter %.0f ms:\n", run_for.ms());
  for (const auto& [flow, bytes] : r.delivered) {
    std::printf("  flow %u: %.2f Gbps goodput, p99 latency %.1f us\n", flow,
                static_cast<double>(bytes) * 8 / run_for.sec() / 1e9,
                latency.percentile(flow, 0.99).us());
  }
  std::uint64_t pause_count = 0;
  for (const auto& e : pauses.events()) pause_count += e.paused ? 1 : 0;
  const auto cascade = stats::analyze_pause_cascade(*s.net, pauses);
  std::printf("  pauses: %llu assertions, cascade mean depth %.2f (max %d)\n",
              static_cast<unsigned long long>(pause_count),
              cascade.mean_depth, cascade.max_depth);
  if (wd) {
    std::printf("  watchdog: %llu resets, %llu packets dropped\n",
                static_cast<unsigned long long>(wd->resets()),
                static_cast<unsigned long long>(wd->packets_dropped()));
  }
  run_probe.finalize();
  std::printf("  probe: %zu tick(s) @ %.0f us\n",
              run_probe.series().ticks(), run_probe.interval().us());
  for (const auto& [name, hist] : run_probe.histograms()) {
    if (hist->count() == 0) continue;
    std::printf("    %-10s n=%-8llu p50=%.1f us  p99=%.1f us  max=%.1f us\n",
                name, static_cast<unsigned long long>(hist->count()),
                static_cast<double>(hist->percentile(0.5)) / 1e6,
                static_cast<double>(hist->percentile(0.99)) / 1e6,
                static_cast<double>(hist->max()) / 1e6);
  }
  if (watch_live) std::fprintf(stderr, "\n");
  const auto& eng = run_watch.engine();
  std::printf("  watch: %llu info / %llu warn / %llu critical alert(s), "
              "%llu suppressed\n",
              static_cast<unsigned long long>(
                  eng.fires(watch::Severity::kInfo)),
              static_cast<unsigned long long>(
                  eng.fires(watch::Severity::kWarn)),
              static_cast<unsigned long long>(
                  eng.fires(watch::Severity::kCritical)),
              static_cast<unsigned long long>(eng.suppressed()));
  const auto first_critical = eng.first_fire(watch::Severity::kCritical);
  if (first_critical) {
    std::printf("    first critical at %.3f ms", first_critical->ms());
    if (r.detected_at) {
      std::printf("  (lead time %.3f ms over the monitor confirm)",
                  r.detected_at->ms() - first_critical->ms());
    }
    std::printf("\n");
  }
  std::printf("verdict: deadlock %s", r.deadlocked ? "YES" : "no");
  if (r.detected_at) std::printf(" (online detection at %.2f ms)",
                                 r.detected_at->ms());
  std::printf(", %lld bytes trapped\n",
              static_cast<long long>(r.trapped_bytes));

  if (hyb) {
    hyb->finalize();
    const hybrid::HybridStats& hs = hyb->stats();
    std::printf("hybrid: %llu zoom event(s) (%llu escalation(s), %llu "
                "de-escalation(s)), fluid fraction %.3f, %llu packet(s) "
                "credited via the fluid adapter\n",
                static_cast<unsigned long long>(hs.zoom_events),
                static_cast<unsigned long long>(hs.escalations),
                static_cast<unsigned long long>(hs.deescalations),
                hs.fluid_fraction,
                static_cast<unsigned long long>(hs.credited_packets));
  }

  // --fluid: run the scenario's fluid twin over the same horizon and print
  // its verdict next to the packet one (the paper's §3.2 gap, on demand).
  if (fluid_twin) {
    std::optional<analysis::FluidResult> fr;
    if (which == "loop") {
      RoutingLoopParams p;
      analysis::FluidModel fm = analysis::make_fluid_routing_loop(
          p.loop_len, p.bandwidth, ttl, Rate::gbps(inject));
      fr = fm.run(run_for);
    } else if (which == "fig3" || which == "fig4" || which == "fig5") {
      const bool with_flow3 = which != "fig3";
      // The fluid model needs an explicit demand; greedy = line rate.
      Rate flow3_rate = Rate::gbps(40);
      if (which == "fig5" || flow3 > 0) {
        flow3_rate = Rate::gbps(flow3 > 0 ? flow3 : 2.0);
      }
      analysis::FluidFourSwitch fs2 =
          analysis::make_fluid_four_switch(with_flow3, flow3_rate);
      fr = fs2.model.run(run_for);
    }
    if (fr) {
      std::printf("fluid twin: deadlock %s", fr->deadlocked ? "YES" : "no");
      if (fr->deadlocked) {
        std::printf(" at %.2f ms, frozen cycle of %zu queue(s):",
                    fr->deadlock_at.ms(), fr->deadlock_queues.size());
        for (const int q : fr->deadlock_queues) std::printf(" q%d", q);
      }
      std::printf("%s\n", fr->deadlocked != r.deadlocked
                              ? "  << disagrees with the packet level"
                              : "");
    } else {
      std::printf("fluid twin: none for scenario '%s' (loop, fig3, fig4, "
                  "fig5 have twins)\n",
                  which.c_str());
    }
  }

  if (s.net->config().dataplane.enabled()) {
    std::printf("dataplane (%s): %llu candidate(s), %llu confirm(s), %llu "
                "recover(ies), %llu false alarm(s)\n",
                dataplane::to_string(s.net->config().dataplane.policy),
                static_cast<unsigned long long>(r.dp_candidates),
                static_cast<unsigned long long>(r.dp_confirms),
                static_cast<unsigned long long>(r.dp_recoveries),
                static_cast<unsigned long long>(r.dp_false_alarms));
    if (r.dp_detected_at) {
      std::printf("  in-band detection at %.3f ms, trigger switch %s\n",
                  r.dp_detected_at->ms(),
                  s.topo->node(*r.dp_trigger).name.c_str());
    }
    if (r.dp_recovered_at && r.dp_detected_at) {
      std::printf("  recovery %.1f us after detection\n",
                  (*r.dp_recovered_at - *r.dp_detected_at).us());
    }
  }

  // Forensic post-mortem: the causal pause-propagation DAG over the whole
  // run, with the initial trigger attributed and classified.
  forensics::CausalInput causal =
      forensics::input_from_pause_log(*s.topo, pauses, s.sim->now());
  causal.drops = std::move(drop_log);
  causal.deadlock_cycle = r.cycle;
  if (r.detected_at) causal.deadlock_at_ps = r.detected_at->ps();
  const forensics::CascadeReport report = forensics::analyze(causal);
  std::printf("\n%s", forensics::to_text(report).c_str());

  if (metrics) {
    std::printf("\nmetrics:\n");
    for (const auto& [name, value] : run_telemetry.snapshot().flatten()) {
      std::printf("  %-40s %.6g\n", name.c_str(), value);
    }
    std::printf("\nprobe summary:\n");
    for (const auto& [name, value] : run_probe.summary()) {
      std::printf("  %-40s %.6g\n", name.c_str(), value);
    }
    std::printf("\nwatch summary:\n");
    for (const auto& [name, value] : run_watch.summary()) {
      std::printf("  %-40s %.6g\n", name.c_str(), value);
    }
  }
  if (profile) {
    std::printf("\n%s", profiler.report().c_str());
  }
  if (recorder) {
    const std::string stem = trace_dir + "/" + which;
    const auto records = recorder->snapshot();
    // Flow arrows from the recorded window (not the full pause log), so
    // every arrow lands on a span the Perfetto export actually shows.
    forensics::CausalInput win_in =
        forensics::input_from_records(*s.topo, records);
    win_in.deadlock_cycle = causal.deadlock_cycle;
    win_in.deadlock_at_ps = causal.deadlock_at_ps;
    const forensics::CascadeReport win_report = forensics::analyze(win_in);
    campaign::write_text_file(
        stem + ".trace.json",
        telemetry::to_perfetto_json(*s.topo, records, {},
                                    forensics::flow_arrows(win_report)));
    campaign::write_text_file(stem + ".telemetry.jsonl",
                              telemetry::to_jsonl(*s.topo, records));
    campaign::write_text_file(stem + ".forensics.txt",
                              forensics::to_text(report));
    campaign::write_text_file(stem + ".forensics.dot",
                              forensics::to_dot(report));
    campaign::write_text_file(stem + ".timeseries.jsonl",
                              probe::to_timeseries_jsonl(run_probe));
    campaign::write_text_file(stem + ".counters.json",
                              probe::to_perfetto_counters(run_probe));
    campaign::write_text_file(stem + ".alerts.jsonl",
                              watch::to_alerts_jsonl(run_watch, *s.topo));
    campaign::write_text_file(
        stem + ".alerts.perfetto.json",
        watch::to_perfetto_alerts(run_watch, *s.topo));
    if (!post_mortem.empty()) {
      campaign::write_text_file(stem + ".postmortem.jsonl", post_mortem);
      std::printf("post-mortem: %s.postmortem.jsonl (deadlock window)\n",
                  stem.c_str());
    }
    std::printf("trace: %zu of %llu record(s) -> %s.trace.json\n",
                records.size(),
                static_cast<unsigned long long>(recorder->total_recorded()),
                stem.c_str());
  }
  return r.deadlocked ? 1 : 0;
}
