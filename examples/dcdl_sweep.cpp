// dcdl_sweep — the campaign CLI: run a (scenario x parameter-grid x seeds)
// sweep on a thread pool and emit structured JSON/CSV artifacts.
//
//   $ ./dcdl_sweep --scenario routing_loop --grid inject=2..8gbps:7
//         --seeds 4 --jobs 8 --out out.json
//   $ ./dcdl_sweep --scenario four_switch
//         --grid "with_flow3=true;flow3_limit=1..8gbps:15" --seeds 5
//         --run_ms=20 --out fig5.json --csv fig5.csv
//   $ ./dcdl_sweep --scenario valley --set "dataplane=reroute" --seeds 3
//         --out recovery.json   # in-switch DCFIT pipeline; v3 artifacts
//         # carry detection_latency_ns / recovery_time_ns / false_positive
//   $ ./dcdl_sweep --list
//
// Flags: --scenario, --grid "a=lo..hi:steps;b=x,y,z", --set "k=v;k2=v2",
// --seeds, --root_seed, --run_ms, --drain_ms, --dwell_ms, --jobs, --out,
// --csv, --timeout_ms (0 = off), --timing (include wall-clock in artifacts;
// breaks byte-stable diffing), --quiet, --shards (worker threads *inside*
// each run via the sharded conservative engine; artifacts are
// byte-identical for every --shards >= 1, and shard threads multiply with
// --jobs — shard wide runs with few jobs, or leave at 0 when the campaign
// already saturates the cores), --hybrid <off|static|risk> (run every run
// under the hybrid fluid/packet engine; v4 artifacts carry hybrid_mode /
// zoom_events / fluid_fraction, and verdicts are identical to --hybrid off
// by construction).
//
// Observability: --progress (live completed/total counter with run rate and
// ETA on stderr — stdout artifacts stay byte-identical), --trace <dir>
// (per-run Perfetto + dcdl.telemetry.v1 JSONL + dcdl.timeseries.v1 JSONL
// exports, plus deadlock post-mortems; feed the directory to dcdl_report
// for an aggregated markdown report), --probe_us N (time-series sampling
// interval, default 100), --metrics (aggregate telemetry summary on stderr
// after the sweep).
#include <chrono>
#include <cstdio>
#include <map>
#include <string>

#include "dcdl/campaign/campaign.hpp"
#include "dcdl/common/flags.hpp"

using namespace dcdl;
using namespace dcdl::campaign;

namespace {

void list_scenarios(const ScenarioRegistry& reg) {
  for (const std::string& name : reg.names()) {
    const ScenarioDef& def = reg.at(name);
    std::printf("%s — %s\n", name.c_str(), def.description.c_str());
    for (const ParamSpec& p : def.params) {
      std::printf("  --%s (%s%s%s): %s\n", p.name.c_str(),
                  to_string(p.kind), p.unit.empty() ? "" : ", ",
                  p.unit.c_str(), p.description.c_str());
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const bool list = flags.get_bool("list", false);
  const std::string scenario = flags.get_string("scenario", "");
  const std::string grid = flags.get_string("grid", "");
  const std::string sets = flags.get_string("set", "");
  const int seeds = static_cast<int>(flags.get_int("seeds", 1));
  const auto root_seed =
      static_cast<std::uint64_t>(flags.get_int("root_seed", 1));
  const std::int64_t run_ms = flags.get_int("run_ms", 6);
  const std::int64_t drain_ms = flags.get_int("drain_ms", run_ms + 10);
  const std::int64_t dwell_ms = flags.get_int("dwell_ms", 1);
  const int jobs = flags.jobs();
  const int shards = static_cast<int>(flags.get_int("shards", 0));
  const std::string out_json = flags.out();
  const std::string out_csv = flags.get_string("csv", "");
  const double timeout_ms = flags.get_double("timeout_ms", 0);
  const bool timing = flags.get_bool("timing", false);
  const bool quiet = flags.get_bool("quiet", false);
  const bool progress = flags.get_bool("progress", false);
  const std::string trace_dir = flags.get_string("trace", "");
  const std::int64_t probe_us = flags.get_int("probe_us", 100);
  const bool metrics = flags.get_bool("metrics", false);
  const std::string hybrid_str = flags.get_string("hybrid", "off");
  const std::optional<hybrid::Mode> hybrid_mode =
      hybrid::parse_mode(hybrid_str);
  if (!hybrid_mode) {
    std::fprintf(stderr, "dcdl_sweep: unknown --hybrid=%s (off|static|risk)\n",
                 hybrid_str.c_str());
    return 2;
  }
  flags.check_unused();

  ScenarioRegistry& reg = ScenarioRegistry::global();
  if (list) {
    list_scenarios(reg);
    return 0;
  }
  if (scenario.empty()) {
    std::fprintf(stderr,
                 "usage: dcdl_sweep --scenario <name> [--grid ...] "
                 "[--seeds N] [--jobs N] [--out file.json]\n"
                 "       dcdl_sweep --list\n");
    return 2;
  }

  try {
    SweepSpec spec;
    spec.scenario = scenario;
    spec.axes = parse_grid(grid);
    apply_sets(spec.base, sets);
    spec.seeds_per_cell = seeds;
    spec.root_seed = root_seed;
    spec.run_for = Time{run_ms * 1'000'000'000};
    spec.drain_grace = Time{drain_ms * 1'000'000'000};
    spec.monitor_dwell = Time{dwell_ms * 1'000'000'000};
    reg.validate_params(scenario, spec.base);
    for (const GridAxis& axis : spec.axes) {
      ParamMap probe;
      probe.set(axis.param, axis.values.front());
      reg.validate_params(scenario, probe);
    }

    const std::vector<RunSpec> runs = expand(spec);
    if (!quiet) {
      std::fprintf(stderr,
                   "dcdl_sweep: %zu run(s) of '%s' (%zu axis/axes, %d "
                   "seed(s)/cell) on %d job(s)\n",
                   runs.size(), scenario.c_str(), spec.axes.size(), seeds,
                   jobs);
    }

    ExecutorOptions opts;
    opts.jobs = jobs;
    opts.shards = shards;
    opts.hybrid.mode = *hybrid_mode;
    opts.run_wall_budget_ms = timeout_ms;
    opts.probe_interval = Time{probe_us * 1'000'000};
    if (!trace_dir.empty()) {
      ensure_output_dir(trace_dir);
      opts.trace_dir = trace_dir;
    }
    std::size_t done = 0;
    const auto sweep0 = std::chrono::steady_clock::now();
    if (progress) {
      // A single live counter, rewritten in place, with the observed run
      // rate and the ETA it implies. Strictly stderr: stdout carries the
      // JSON/CSV artifacts and must stay byte-identical whether or not
      // anyone is watching. format_progress renders `--.- run/s, eta --:--`
      // until the first run completes, so long sweeps show a sane line
      // immediately instead of an inf/nan extrapolation.
      std::fprintf(stderr, "\r%s ",
                   format_progress(0, runs.size(), -1, "", 0.0).c_str());
      std::fflush(stderr);
      opts.on_run_done = [&done, &runs, sweep0](const RunRecord& rec) {
        ++done;
        const double elapsed_s =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          sweep0)
                .count();
        std::fprintf(stderr, "\r%s ",
                     format_progress(done, runs.size(), rec.run_index,
                                     to_string(rec.status), elapsed_s)
                         .c_str());
        std::fflush(stderr);
      };
    } else if (!quiet) {
      opts.on_run_done = [&done, &runs](const RunRecord& rec) {
        ++done;
        std::fprintf(stderr, "  [%zu/%zu] run %d %s%s%s\n", done, runs.size(),
                     rec.run_index, to_string(rec.status),
                     rec.error.empty() ? "" : ": ", rec.error.c_str());
      };
    }
    CampaignExecutor exec(reg, opts);
    const CampaignResult result = exec.run(runs, root_seed);
    if (progress) std::fputc('\n', stderr);

    WriteOptions wopts;
    wopts.include_timing = timing;
    if (!out_json.empty()) write_text_file(out_json, to_json(result, wopts));
    if (!out_csv.empty()) write_text_file(out_csv, to_csv(result));
    if (out_json.empty() && out_csv.empty()) {
      std::fputs(to_csv(result).c_str(), stdout);
    }

    if (metrics) {
      // Aggregate telemetry across ok runs: counters sum; everything is
      // printed in first-seen (registration) order for stable output.
      std::vector<std::string> order;
      std::map<std::string, double> sums;
      std::size_t ok_runs = 0;
      for (const RunRecord& rec : result.records) {
        if (rec.status != RunStatus::kOk) continue;
        ++ok_runs;
        for (const auto& [name, value] : rec.telemetry) {
          if (sums.emplace(name, 0.0).second) order.push_back(name);
          sums[name] += value;
        }
      }
      std::fprintf(stderr, "dcdl_sweep: telemetry totals over %zu ok run(s)\n",
                   ok_runs);
      for (const std::string& name : order) {
        std::fprintf(stderr, "  %-40s %.6g\n", name.c_str(), sums[name]);
      }
    }

    std::fprintf(stderr,
                 "dcdl_sweep: %zu ok, %zu failed, %zu timeout, %zu cancelled "
                 "in %.0f ms wall (%d jobs)%s%s\n",
                 result.count(RunStatus::kOk),
                 result.count(RunStatus::kFailed),
                 result.count(RunStatus::kTimeout),
                 result.count(RunStatus::kCancelled), result.total_wall_ms,
                 result.jobs, out_json.empty() ? "" : " -> ",
                 out_json.c_str());
    return result.count(RunStatus::kFailed) == 0 ? 0 : 1;
  } catch (const CampaignError& e) {
    std::fprintf(stderr, "dcdl_sweep: %s\n", e.what());
    return 2;
  }
}
