// Fabric deadlock audit — the tool a network operator would run before
// enabling PFC: build the fabric, install the intended routing, and check
// whether any cyclic buffer dependency exists for a worst-case all-pairs
// traffic pattern; then stress the fabric with permutation traffic and
// report goodput and pause pressure.
//
//   $ ./fabric_audit --topo=fattree --routing=ecmp
//   $ ./fabric_audit --topo=jellyfish --routing=ecmp     # CBD cycles!
//   $ ./fabric_audit --topo=jellyfish --routing=updown   # certified free
//   $ ./fabric_audit --topo=bcube_relay --routing=ecmp  # server relays
//
// Flags: --topo=fattree|leafspine|jellyfish|bcube|bcube_relay,
//        --routing=ecmp|updown, --run_ms=3, --seed=1.
#include <cstdio>
#include <string>

#include "dcdl/analysis/bdg.hpp"
#include "dcdl/analysis/risk.hpp"
#include "dcdl/common/flags.hpp"
#include "dcdl/common/rng.hpp"
#include "dcdl/device/host.hpp"
#include "dcdl/routing/compute.hpp"
#include "dcdl/scenarios/scenario.hpp"
#include "dcdl/stats/pause_log.hpp"
#include "dcdl/topo/generators.hpp"

using namespace dcdl;
using namespace dcdl::literals;
using namespace dcdl::topo;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const std::string topo_name = flags.get_string("topo", "fattree");
  const std::string routing_name = flags.get_string("routing", "ecmp");
  const Time run_for = Time{flags.get_int("run_ms", 3) * 1'000'000'000};
  const std::uint64_t seed =
      static_cast<std::uint64_t>(flags.get_int("seed", 1));
  flags.check_unused();

  // Build the requested fabric.
  Topology topo;
  std::vector<NodeId> hosts;
  if (topo_name == "fattree") {
    FatTreeTopo t = make_fat_tree(4);
    hosts = t.all_hosts;
    topo = std::move(t.topo);
  } else if (topo_name == "leafspine") {
    LeafSpineTopo t = make_leaf_spine(4, 2, 4);
    for (const auto& per_leaf : t.hosts) {
      hosts.insert(hosts.end(), per_leaf.begin(), per_leaf.end());
    }
    topo = std::move(t.topo);
  } else if (topo_name == "jellyfish") {
    JellyfishTopo t = make_jellyfish(12, 4, 2, 21);
    for (const auto& per_sw : t.hosts) {
      hosts.insert(hosts.end(), per_sw.begin(), per_sw.end());
    }
    topo = std::move(t.topo);
  } else if (topo_name == "bcube") {
    BCubeTopo t = make_bcube(4, 1);
    hosts = t.hosts;
    topo = std::move(t.topo);
  } else if (topo_name == "bcube_relay") {
    BCubeRelayTopo t = make_bcube_relay(3, 1);
    hosts = t.hosts;
    topo = std::move(t.topo);
  } else {
    std::fprintf(stderr, "unknown --topo=%s\n", topo_name.c_str());
    return 2;
  }

  Simulator sim;
  Network net(sim, topo, NetConfig{});
  if (routing_name == "updown") {
    routing::install_up_down(net);
  } else {
    routing::install_shortest_paths(net);
  }
  std::printf("fabric: %s (%zu nodes, %zu links), routing: %s\n",
              topo_name.c_str(), topo.node_count(), topo.link_count(),
              routing_name.c_str());

  // Static audit: all-pairs worst case.
  std::vector<FlowSpec> all_pairs;
  FlowId id = 1;
  for (const NodeId a : hosts) {
    for (const NodeId b : hosts) {
      if (a == b) continue;
      FlowSpec f;
      f.id = id++;
      f.src_host = a;
      f.dst_host = b;
      all_pairs.push_back(f);
    }
  }
  const auto bdg = analysis::BufferDependencyGraph::build(net, all_pairs);
  std::printf("static audit (all-pairs): %zu buffer queues, %zu dependency "
              "cycles -> %s\n",
              bdg.vertices().size(), bdg.cycles().size(),
              bdg.has_cycle()
                  ? "NOT deadlock-free: do not enable PFC without mitigation"
                  : "certified deadlock-free (Dally-Seitz)");
  if (bdg.has_cycle()) {
    // Tighter condition: are the cycles actually saturable under the
    // worst-case traffic, and where is the weakest (rate-limitable) hop?
    const auto risk = analysis::assess_deadlock_risk(net, all_pairs);
    int lockable = 0;
    for (const auto& c : risk.cycles) lockable += c.reachable() ? 1 : 0;
    std::printf("risk analysis: %d of %zu cycles lockable under all-pairs "
                "greedy traffic (max cycle saturation %.2f)\n",
                lockable, risk.cycles.size(), risk.max_risk);
  }

  // Dynamic stress: random permutation of greedy flows.
  std::vector<NodeId> dsts = hosts;
  Rng rng(seed);
  rng.shuffle(dsts.begin(), dsts.end());
  std::vector<FlowSpec> flows;
  for (std::size_t i = 0; i < hosts.size(); ++i) {
    if (hosts[i] == dsts[i]) continue;
    FlowSpec f;
    f.id = 100000 + static_cast<FlowId>(i);
    f.src_host = hosts[i];
    f.dst_host = dsts[i];
    f.packet_bytes = 1000;
    f.ttl = 64;
    net.host_at(f.src_host).add_flow(f);
    flows.push_back(f);
  }
  stats::PauseEventLog log(net);
  analysis::DeadlockMonitor monitor(net);
  monitor.start(Time::zero(), run_for);
  sim.run_until(run_for);

  double total = 0;
  for (const FlowSpec& f : flows) {
    total += static_cast<double>(net.host_at(f.dst_host).delivered_bytes(f.id)) *
             8 / run_for.sec() / 1e9;
  }
  std::printf("dynamic stress (%zu-flow permutation, %.0f ms): aggregate "
              "goodput %.1f Gbps, %zu pause events, deadlock: %s\n",
              flows.size(), run_for.ms(), total, log.events().size(),
              monitor.deadlocked() ? "DETECTED" : "none");
  std::printf("overflow drops: %llu (must be 0 under PFC)\n",
              static_cast<unsigned long long>(
                  net.drops(DropReason::kBufferOverflow)));
  return 0;
}
