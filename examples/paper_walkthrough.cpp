// Guided tour of the paper: runs every case study in order and narrates
// what happens, printing claim vs. measurement at each step. Start here if
// you have read the paper and want to see it live.
//
//   $ ./paper_walkthrough
//
// (Each section is a compressed version of the corresponding bench_*
// harness; see EXPERIMENTS.md for the full series.)
#include <cstdio>

#include "dcdl/analysis/bdg.hpp"
#include "dcdl/analysis/boundary.hpp"
#include "dcdl/analysis/fluid.hpp"
#include "dcdl/analysis/risk.hpp"
#include "dcdl/mitigation/smart_limiter.hpp"
#include "dcdl/scenarios/scenario.hpp"
#include "dcdl/stats/pause_log.hpp"

using namespace dcdl;
using namespace dcdl::literals;
using namespace dcdl::scenarios;

namespace {

void section(const char* title) { std::printf("\n=== %s\n", title); }

}  // namespace

int main() {
  std::printf("Deadlocks in Datacenter Networks (HotNets'16) — live "
              "walkthrough\n");

  section("Figure 1: the canonical PFC deadlock");
  {
    Scenario s = make_ring_deadlock(RingDeadlockParams{});
    const RunSummary r = run_and_check(s, 10_ms, 10_ms);
    std::printf("3-switch ring, circulating greedy traffic: deadlock=%s "
                "(detected %.2f ms), %lld bytes trapped forever\n",
                r.deadlocked ? "YES" : "no",
                r.detected_at ? r.detected_at->ms() : -1.0,
                static_cast<long long>(r.trapped_bytes));
  }

  section("§3.1 / Eq.3: the routing-loop threshold r > n*B/TTL");
  {
    const Rate thr =
        analysis::BoundaryModel::deadlock_threshold(2, Rate::gbps(40), 16);
    std::printf("analytic threshold (n=2, B=40G, TTL=16): %s — paper's "
                "testbed said 5 Gbps\n",
                thr.to_string().c_str());
    for (const double g : {4.0, 6.0}) {
      RoutingLoopParams p;
      p.inject = Rate::gbps(g);
      Scenario s = make_routing_loop(p);
      const RunSummary r = run_and_check(s, 6_ms, 15_ms);
      std::printf("  inject %.0f Gbps -> %s\n", g,
                  r.deadlocked ? "DEADLOCK" : "no deadlock");
    }
  }

  section("§3.2 / Figure 3: cyclic dependency is NOT sufficient");
  {
    Scenario s = make_four_switch(FourSwitchParams{});
    const auto bdg = analysis::BufferDependencyGraph::build(*s.net, s.flows);
    stats::PauseEventLog log(*s.net);
    const RunSummary r = run_and_check(s, 10_ms, 10_ms);
    std::printf("two flows, 4-queue dependency cycle: %s; pauses: L2=%llu "
                "L4=%llu, L1=%llu L3=%llu; deadlock=%s\n",
                bdg.has_cycle() ? "present" : "absent",
                static_cast<unsigned long long>(
                    log.pause_count(s.cycle_queues[1])),
                static_cast<unsigned long long>(
                    log.pause_count(s.cycle_queues[3])),
                static_cast<unsigned long long>(
                    log.pause_count(s.cycle_queues[0])),
                static_cast<unsigned long long>(
                    log.pause_count(s.cycle_queues[2])),
                r.deadlocked ? "YES" : "no");
    std::printf("  (paper: L2/L4 pause continuously, L1/L3 never, no "
                "deadlock)\n");
  }

  section("§3.2 / Figure 4: one more flow, same cycle — deadlock");
  {
    FourSwitchParams p;
    p.with_flow3 = true;
    Scenario s = make_four_switch(p);
    stats::PauseEventLog log(*s.net);
    const RunSummary r = run_and_check(s, 20_ms, 10_ms);
    std::printf("flow 3 added (B->C): deadlock=%s, all four links "
                "simultaneously paused: %s\n",
                r.deadlocked ? "YES" : "no",
                log.ever_all_paused(s.cycle_queues, Time{30'000'000'000})
                    ? "yes"
                    : "never");
  }

  section("§3.3 / Figure 5: rate-limiting flow 3");
  {
    for (const double g : {2.0, 0.0}) {
      FourSwitchParams p;
      p.with_flow3 = true;
      if (g > 0) p.flow3_limit = Rate::gbps(g);
      Scenario s = make_four_switch(p);
      const RunSummary r = run_and_check(s, 20_ms, 10_ms);
      std::printf("  flow 3 %s -> %s\n",
                  g > 0 ? "limited to 2 Gbps" : "unlimited",
                  r.deadlocked ? "DEADLOCK" : "no deadlock");
    }
  }

  section("§1: a transient loop, a permanent deadlock");
  {
    TransientLoopParams p;
    p.inject = Rate::gbps(10);
    Scenario s = make_transient_loop(p);
    s.sim->run_until(10_ms);
    const auto drain = analysis::stop_and_drain(*s.net, 20_ms);
    std::printf("2 ms loop window at 10 Gbps; 7 ms after the routes were "
                "repaired: deadlock=%s, trapped=%lld bytes\n",
                drain.deadlocked ? "YES (the loop is gone, the deadlock is "
                                   "not)"
                                 : "no",
                static_cast<long long>(drain.trapped_bytes));
  }

  section("§3.2's analysis gap, made measurable (fluid model)");
  {
    analysis::FluidFourSwitch fs =
        analysis::make_fluid_four_switch(true, Rate::gbps(40));
    const analysis::FluidResult fr = fs.model.run(10_ms);
    std::printf("flow-level (fluid) model of Figure 4: deadlock=%s, shares "
                "%.0f/%.0f/%.0f Gbps — the packet level disagrees, which "
                "is the paper's point\n",
                fr.deadlocked ? "yes" : "NO",
                fr.mean_goodput_bps[0] / 1e9, fr.mean_goodput_bps[1] / 1e9,
                fr.mean_goodput_bps[2] / 1e9);
  }

  section("Beyond the paper: the tighter condition + intelligent limiting");
  {
    FourSwitchParams p;
    p.with_flow3 = true;
    Scenario s = make_four_switch(p);
    const auto risk = analysis::assess_deadlock_risk(*s.net, s.flows);
    std::printf("risk analyzer: %d slack link(s) in the cycle -> lockable=%s\n",
                risk.cycles[0].slack_links,
                risk.deadlock_reachable() ? "yes" : "no");
    const auto plan = mitigation::plan_rate_limits(*s.net, s.flows);
    std::printf("planner: %zu flow(s) shaped at their source NICs, %zu left "
                "untouched\n",
                plan.actions.size(), plan.untouched.size());
    mitigation::apply_rate_limits(*s.net, plan);
    const RunSummary r = run_and_check(s, 20_ms, 10_ms);
    std::int64_t delivered = 0;
    for (const auto& [flow, bytes] : r.delivered) delivered += bytes;
    std::printf("result: deadlock=%s, aggregate goodput %.1f Gbps\n",
                r.deadlocked ? "yes" : "NO",
                static_cast<double>(delivered) * 8 / 20e-3 / 1e9);
  }

  std::printf("\nDone. Regenerate the full figures with "
              "`for b in build/bench/*; do $b; done`.\n");
  return 0;
}
