// Quickstart: build a small lossless (PFC) network, pin two flows onto a
// cyclic route set, analyze the buffer dependency graph, run packet-level
// simulation, and check for deadlock — the paper's Figure 3 in ~60 lines.
//
//   $ ./quickstart
//
// Everything here is the library's public API: Topology -> Network ->
// routes -> flows -> run -> analyze.
#include <cstdio>

#include "dcdl/analysis/bdg.hpp"
#include "dcdl/analysis/deadlock.hpp"
#include "dcdl/analysis/risk.hpp"
#include "dcdl/device/host.hpp"
#include "dcdl/device/switch.hpp"
#include "dcdl/routing/compute.hpp"
#include "dcdl/sim/simulator.hpp"
#include "dcdl/topo/topology.hpp"

using namespace dcdl;
using namespace dcdl::literals;

int main() {
  // 1. Describe the physical network: four switches in a ring, one host
  //    on each, 40 Gbps links with 2 us propagation delay.
  Topology topo;
  const NodeId A = topo.add_switch("A"), B = topo.add_switch("B");
  const NodeId C = topo.add_switch("C"), D = topo.add_switch("D");
  for (const auto [x, y] : {std::pair{A, B}, {B, C}, {C, D}, {D, A}}) {
    topo.add_link(x, y, Rate::gbps(40), 2_us);
  }
  const NodeId hA = topo.add_host("hA"), hB = topo.add_host("hB");
  const NodeId hC = topo.add_host("hC"), hD = topo.add_host("hD");
  for (const auto [sw, h] : {std::pair{A, hA}, {B, hB}, {C, hC}, {D, hD}}) {
    topo.add_link(sw, h, Rate::gbps(40), 2_us);
  }

  // 2. Bring it to life: a simulator plus a Network with the paper's PFC
  //    parameters (40 KB Xoff per ingress queue, 12 MB shared buffer).
  Simulator sim;
  NetConfig cfg;
  cfg.pfc.xoff_bytes = 40 * kKiB;
  cfg.pfc.xon_bytes = 38 * kKiB;
  cfg.tx_jitter = 10_ns;  // physical-layer asynchrony (see DESIGN.md)
  Network net(sim, topo, cfg);

  // 3. Static routes that pin the two flows of the paper's Figure 3.
  FlowSpec f1;
  f1.id = 1;
  f1.src_host = hA;
  f1.dst_host = hD;
  routing::install_flow_path(net, f1.id, {hA, A, B, C, D, hD});
  FlowSpec f2;
  f2.id = 2;
  f2.src_host = hC;
  f2.dst_host = hB;
  routing::install_flow_path(net, f2.id, {hC, C, D, A, B, hB});

  // 4. Static analysis first: is the necessary condition present?
  const auto bdg =
      analysis::BufferDependencyGraph::build(net, {f1, f2});
  std::printf("cyclic buffer dependency: %s\n",
              bdg.has_cycle() ? "PRESENT" : "absent");
  std::printf("%s", bdg.describe(net).c_str());
  const auto risk = analysis::assess_deadlock_risk(net, {f1, f2});
  std::printf("risk analysis: cycle saturation %.2f, %d slack link(s) -> "
              "lockable: %s\n",
              risk.max_risk, risk.cycles[0].slack_links,
              risk.deadlock_reachable() ? "yes" : "no");

  // 5. Inject greedy (infinite-demand) UDP flows and run 10 ms.
  net.host_at(hA).add_flow(f1);
  net.host_at(hC).add_flow(f2);
  analysis::DeadlockMonitor monitor(net);
  monitor.start(Time::zero(), 10_ms);
  sim.run_until(10_ms);

  // 6. Results: per-flow goodput and the deadlock verdict.
  for (const FlowSpec& f : {f1, f2}) {
    const double gbps =
        static_cast<double>(net.host_at(f.dst_host).delivered_bytes(f.id)) *
        8 / 10e-3 / 1e9;
    std::printf("flow %u goodput: %.1f Gbps\n", f.id, gbps);
  }
  const auto drain = analysis::stop_and_drain(net, 20_ms);
  std::printf("deadlock: %s (monitor: %s, trapped bytes: %lld)\n",
              drain.deadlocked ? "YES" : "no",
              monitor.deadlocked() ? "confirmed" : "none",
              static_cast<long long>(drain.trapped_bytes));
  std::printf("=> the paper's point: the dependency cycle alone is NOT "
              "sufficient for deadlock.\n");
  return 0;
}
