// Routing-loop deadlock explorer (paper §3.1): configure a forwarding
// loop, pick an injection rate and TTL, and see whether the boundary-state
// model and the packet-level simulator agree — then get the mitigation
// menu for your configuration.
//
//   $ ./routing_loop_deadlock --rate_gbps=6 --ttl=16 --loop_len=2
//   $ ./routing_loop_deadlock --rate_gbps=6 --ttl=16 --ttl_band=2 --classes=8
//
// Flags: --rate_gbps (0 = greedy), --ttl, --loop_len, --bw_gbps, --run_ms,
//        --ttl_band/--classes (enable the §4 TTL-class mitigation),
//        --shaper_gbps (switch-side rate limiting).
#include <cstdio>

#include "dcdl/analysis/boundary.hpp"
#include "dcdl/common/flags.hpp"
#include "dcdl/device/switch.hpp"
#include "dcdl/scenarios/scenario.hpp"

using namespace dcdl;
using namespace dcdl::literals;
using namespace dcdl::scenarios;
using analysis::BoundaryModel;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  RoutingLoopParams p;
  p.inject = Rate::gbps(flags.get_double("rate_gbps", 6));
  p.ttl = static_cast<int>(flags.get_int("ttl", 16));
  p.loop_len = static_cast<int>(flags.get_int("loop_len", 2));
  p.bandwidth = Rate::gbps(flags.get_double("bw_gbps", 40));
  p.ttl_class_band = static_cast<int>(flags.get_int("ttl_band", 0));
  p.num_classes = static_cast<int>(flags.get_int("classes", 1));
  const Time run_for = Time{flags.get_int("run_ms", 6) * 1'000'000'000};
  const double shaper = flags.get_double("shaper_gbps", 0);
  flags.check_unused();

  const Rate thr =
      BoundaryModel::deadlock_threshold(p.loop_len, p.bandwidth, p.ttl);
  std::printf("routing loop: %d switches at %s, TTL %d\n", p.loop_len,
              p.bandwidth.to_string().c_str(), p.ttl);
  std::printf("boundary-state model (Eq.3): deadlock iff r > n*B/TTL = %s\n",
              thr.to_string().c_str());
  if (p.inject.is_zero()) {
    std::printf("injection: greedy (line rate)\n");
  } else {
    std::printf("injection: %s -> model predicts %s\n",
                p.inject.to_string().c_str(),
                BoundaryModel::predicts_deadlock(p.loop_len, p.bandwidth,
                                                 p.ttl, p.inject)
                    ? "DEADLOCK"
                    : "no deadlock");
  }

  Scenario s = make_routing_loop(p);
  if (shaper > 0) {
    const NodeId s0 = s.node("S0");
    const NodeId h0 = s.node("H0");
    s.net->switch_at(s0).set_ingress_shaper(*s.topo->port_towards(s0, h0),
                                            Rate::gbps(shaper),
                                            p.packet_bytes);
    std::printf("switch-side ingress shaper: %.2f Gbps\n", shaper);
  }
  std::uint64_t ttl_drops = 0;
  s.net->trace().dropped = [&](Time, const Packet&, NodeId, DropReason r) {
    if (r == DropReason::kTtlExpired) ++ttl_drops;
  };
  const RunSummary r = run_and_check(s, run_for, run_for + 10_ms);

  std::printf("\nsimulation (%lld ms + drain):\n",
              static_cast<long long>(run_for.ps() / 1'000'000'000));
  std::printf("  TTL-expiry drops (the r_d drain): %llu\n",
              static_cast<unsigned long long>(ttl_drops));
  std::printf("  deadlock: %s", r.deadlocked ? "YES" : "no");
  if (r.detected_at) {
    std::printf(" (detected online at %.2f ms)", r.detected_at->ms());
  }
  std::printf("\n  trapped bytes: %lld\n",
              static_cast<long long>(r.trapped_bytes));

  if (r.deadlocked) {
    std::printf("\nmitigations for this configuration (§4):\n");
    std::printf("  - cap the flow below %s (rate limiting)\n",
                thr.to_string().c_str());
    std::printf("  - lower the initial TTL to <= %d\n",
                BoundaryModel::max_safe_ttl(p.loop_len, p.bandwidth,
                                            p.inject.is_zero() ? p.bandwidth
                                                               : p.inject));
    std::printf("  - band TTLs into classes: --ttl_band=%d --classes=8\n",
                std::max(1, p.loop_len));
  }
  return 0;
}
