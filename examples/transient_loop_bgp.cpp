// Production-style incident replay (paper §1): a BGP fabric converges, an
// RDMA-style lossless flow runs — then routing churn opens a transient
// forwarding loop. The loop heals in 2 ms; the deadlock it caused does
// not. Re-run with --mitigate to see TTL-class banding ride through the
// same incident.
//
//   $ ./transient_loop_bgp
//   $ ./transient_loop_bgp --mitigate
//
// Flags: --mitigate, --rate_gbps=10, --loop_ms=2, --run_ms=12.
#include <cstdio>

#include "dcdl/common/flags.hpp"
#include "dcdl/device/host.hpp"
#include "dcdl/scenarios/scenario.hpp"
#include "dcdl/stats/pause_log.hpp"

using namespace dcdl;
using namespace dcdl::literals;
using namespace dcdl::scenarios;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const bool mitigate = flags.get_bool("mitigate", false);
  const double rate = flags.get_double("rate_gbps", 10);
  const std::int64_t loop_ms = flags.get_int("loop_ms", 2);
  const Time run_for = Time{flags.get_int("run_ms", 12) * 1'000'000'000};
  flags.check_unused();

  TransientLoopParams p;
  p.inject = Rate::gbps(rate);
  p.ttl = 16;
  p.loop_start = 1_ms;
  p.loop_duration = Time{loop_ms * 1'000'000'000};
  if (mitigate) {
    p.num_classes = 8;
    p.ttl_class_band = 2;  // effective TTL ~ loop length: immune (§4)
  }
  Scenario s = make_transient_loop(p);
  stats::PauseEventLog log(*s.net);

  std::printf("incident replay: %s lossless flow, transient loop window "
              "[%.0f ms, %.0f ms)%s\n",
              p.inject.to_string().c_str(), p.loop_start.ms(),
              (p.loop_start + p.loop_duration).ms(),
              mitigate ? ", TTL-class mitigation ON" : "");

  const NodeId dst = s.flows[0].dst_host;
  std::int64_t last = 0;
  for (Time t = 1_ms; t <= run_for; t += 1_ms) {
    s.sim->run_until(t);
    const std::int64_t now_bytes = s.net->host_at(dst).delivered_bytes(1);
    const double gbps = static_cast<double>(now_bytes - last) * 8 / 1e-3 / 1e9;
    const char* phase =
        t <= p.loop_start ? "pre-loop"
        : t <= p.loop_start + p.loop_duration ? "LOOP OPEN"
                                              : "routes repaired";
    std::printf("  t=%5.1f ms  goodput %6.2f Gbps   [%s]\n", t.ms(), gbps,
                phase);
    last = now_bytes;
  }

  const auto drain = analysis::stop_and_drain(*s.net, 20_ms);
  std::printf("\nfinal verdict: %s\n",
              drain.deadlocked
                  ? "DEADLOCK — the loop is gone, the deadlock is not "
                    "(reset links/hosts to recover)"
                  : "network recovered by itself");
  std::printf("pause events recorded: %zu, trapped bytes: %lld\n",
              log.events().size(),
              static_cast<long long>(drain.trapped_bytes));
  return 0;
}
