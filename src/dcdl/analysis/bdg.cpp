#include "dcdl/analysis/bdg.hpp"

#include <algorithm>
#include <functional>

#include "dcdl/common/contract.hpp"
#include "dcdl/device/switch.hpp"

namespace dcdl::analysis {

BufferDependencyGraph BufferDependencyGraph::build(
    const Network& net, const std::vector<FlowSpec>& flows, int max_steps) {
  BufferDependencyGraph g;
  const Topology& topo = net.topo();
  const auto& cfg = net.config();

  for (const FlowSpec& flow : flows) {
    // Mirror the data path: start at the source host, walk lookups.
    Packet pkt;
    pkt.flow = flow.id;
    pkt.src = flow.src_host;
    pkt.dst = flow.dst_host;
    pkt.ttl = flow.ttl;
    pkt.prio = flow.prio;
    pkt.hops = 0;

    const PortPeer& first = topo.peer(flow.src_host, 0);
    NodeId cur = first.peer_node;
    PortId in_port = first.peer_port;
    std::set<std::tuple<NodeId, PortId, ClassId>> visited;
    bool looping = false;

    for (int step = 0; step < max_steps; ++step) {
      if (!topo.is_switch(cur)) break;  // reached a host
      const auto& sw = net.switch_at(cur);
      const auto egress = sw.routes().lookup(pkt.flow, pkt.dst);
      if (!egress) break;  // blackhole: no dependency beyond this queue
      const NodeId next = topo.peer(cur, *egress).peer_node;
      if (topo.is_switch(next)) {
        if (pkt.ttl == 0) break;  // TTL drain ends the walk
        pkt.ttl -= 1;
      }
      const ClassId cls_here = pkt.prio;
      const QueueKey here{cur, in_port, cls_here};
      g.vertices_.insert(here);
      if (!visited.insert({cur, in_port, cls_here}).second) {
        looping = true;
        break;  // walked the loop once: all its edges are recorded
      }
      // Departure class after the reclass hook (hops as it will be on wire).
      Packet out = pkt;
      if (topo.is_switch(next)) out.hops += 1;
      const ClassId out_cls = cfg.reclass ? cfg.reclass(out, cur) : out.prio;
      DCDL_ASSERT(out_cls < cfg.num_classes);
      if (topo.is_switch(next)) {
        const QueueKey there{next, topo.peer(cur, *egress).peer_port, out_cls};
        g.vertices_.insert(there);
        g.edges_[here].insert(there);
      }
      pkt.hops = out.hops;
      pkt.prio = out_cls;
      in_port = topo.peer(cur, *egress).peer_port;
      cur = next;
    }
    if (looping) g.looping_flows_.push_back(flow.id);
  }
  return g;
}

namespace {

// Tarjan SCC over the QueueKey graph.
struct Tarjan {
  const std::map<QueueKey, std::set<QueueKey>>& edges;
  std::map<QueueKey, int> index, low;
  std::map<QueueKey, bool> on_stack;
  std::vector<QueueKey> stack;
  int counter = 0;
  std::vector<std::vector<QueueKey>> sccs;

  void strongconnect(const QueueKey& v) {
    index[v] = low[v] = counter++;
    stack.push_back(v);
    on_stack[v] = true;
    if (const auto it = edges.find(v); it != edges.end()) {
      for (const QueueKey& w : it->second) {
        if (!index.count(w)) {
          strongconnect(w);
          low[v] = std::min(low[v], low[w]);
        } else if (on_stack[w]) {
          low[v] = std::min(low[v], index[w]);
        }
      }
    }
    if (low[v] == index[v]) {
      std::vector<QueueKey> scc;
      while (true) {
        const QueueKey w = stack.back();
        stack.pop_back();
        on_stack[w] = false;
        scc.push_back(w);
        if (w == v) break;
      }
      sccs.push_back(std::move(scc));
    }
  }
};

std::vector<std::vector<QueueKey>> strongly_connected(
    const std::set<QueueKey>& vertices,
    const std::map<QueueKey, std::set<QueueKey>>& edges) {
  Tarjan t{edges, {}, {}, {}, {}, 0, {}};
  for (const QueueKey& v : vertices) {
    if (!t.index.count(v)) t.strongconnect(v);
  }
  return t.sccs;
}

bool has_self_loop(const std::map<QueueKey, std::set<QueueKey>>& edges,
                   const QueueKey& v) {
  const auto it = edges.find(v);
  return it != edges.end() && it->second.count(v) > 0;
}

}  // namespace

bool BufferDependencyGraph::has_cycle() const {
  for (const auto& scc : strongly_connected(vertices_, edges_)) {
    if (scc.size() > 1) return true;
    if (scc.size() == 1 && has_self_loop(edges_, scc[0])) return true;
  }
  return false;
}

std::vector<std::vector<QueueKey>> BufferDependencyGraph::cycles() const {
  std::vector<std::vector<QueueKey>> out;
  for (const auto& scc : strongly_connected(vertices_, edges_)) {
    if (scc.size() == 1 && !has_self_loop(edges_, scc[0])) continue;
    if (scc.size() == 1) {
      out.push_back({scc[0]});
      continue;
    }
    // Extract one cycle within the SCC by DFS back to the start vertex.
    const std::set<QueueKey> members(scc.begin(), scc.end());
    const QueueKey start = scc[0];
    std::vector<QueueKey> path{start};
    std::set<QueueKey> on_path{start};
    std::function<bool(const QueueKey&)> dfs =
        [&](const QueueKey& v) -> bool {
      const auto it = edges_.find(v);
      if (it == edges_.end()) return false;
      for (const QueueKey& w : it->second) {
        if (!members.count(w)) continue;
        if (w == start && path.size() > 1) return true;
        if (on_path.count(w)) continue;
        path.push_back(w);
        on_path.insert(w);
        if (dfs(w)) return true;
        path.pop_back();
        on_path.erase(w);
      }
      return false;
    };
    if (dfs(start)) out.push_back(path);
  }
  return out;
}

std::string BufferDependencyGraph::describe(const Network& net) const {
  std::string out = "buffer dependency graph:\n";
  char buf[160];
  for (const auto& [from, tos] : edges_) {
    for (const auto& to : tos) {
      std::snprintf(buf, sizeof(buf), "  %s[rx%u,c%u] -> %s[rx%u,c%u]\n",
                    net.topo().node(from.node).name.c_str(), from.port,
                    from.cls, net.topo().node(to.node).name.c_str(), to.port,
                    to.cls);
      out += buf;
    }
  }
  const auto cyc = cycles();
  std::snprintf(buf, sizeof(buf), "  cycles: %zu, looping flows: %zu\n",
                cyc.size(), looping_flows_.size());
  out += buf;
  return out;
}

bool routing_deadlock_free(const Network& net,
                           const std::vector<FlowSpec>& flows) {
  return !BufferDependencyGraph::build(net, flows).has_cycle();
}

}  // namespace dcdl::analysis
