// Buffer dependency graph (paper §2/§3; "channel dependency graph" in the
// Dally–Seitz tradition).
//
// Vertices are switch ingress queues (switch, ingress port, class). There
// is an edge (A, rxA, c) -> (B, rxB, c') when some flow's packets occupying
// (A, rxA, c) are forwarded over the link into (B, rxB, c'): whether A can
// drain that queue depends on B's queue staying below its PFC threshold.
// A cycle in this graph is the *necessary* condition for deadlock the
// paper starts from — and the whole point of the paper is that it is not
// sufficient.
//
// The graph is derived by walking each flow's forwarding path through the
// live route tables, applying the same TTL and re-classification rules the
// switches apply, so routing loops and class-remapping mitigations are
// analyzed faithfully.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "dcdl/device/network.hpp"
#include "dcdl/stats/pause_log.hpp"
#include "dcdl/traffic/flow.hpp"

namespace dcdl::analysis {

using QueueKey = stats::QueueKey;  // (node, port, cls)

class BufferDependencyGraph {
 public:
  /// Builds the dependency graph for the given flows over the network's
  /// current route tables. `max_steps` bounds path walks (covers routing
  /// loops; TTL exhaustion also terminates walks).
  static BufferDependencyGraph build(const Network& net,
                                     const std::vector<FlowSpec>& flows,
                                     int max_steps = 4096);

  const std::set<QueueKey>& vertices() const { return vertices_; }
  const std::map<QueueKey, std::set<QueueKey>>& edges() const {
    return edges_;
  }

  bool has_cycle() const;

  /// One representative cycle per strongly-connected component with >1 node
  /// (or a self-loop). Each cycle is a vertex sequence v0 -> v1 -> ... -> v0.
  std::vector<std::vector<QueueKey>> cycles() const;

  /// Flows whose walk revisited a queue state: they are trapped in a
  /// routing loop.
  const std::vector<FlowId>& looping_flows() const { return looping_flows_; }

  std::string describe(const Network& net) const;

 private:
  std::set<QueueKey> vertices_;
  std::map<QueueKey, std::set<QueueKey>> edges_;
  std::vector<FlowId> looping_flows_;
};

/// Certifies the routing configuration deadlock-free for the given flow set:
/// true iff the buffer dependency graph is acyclic (Dally–Seitz; the
/// paper's §5 cites this as necessary and sufficient for deadlock-free
/// *routing*, i.e. freedom for any traffic pattern over those paths).
bool routing_deadlock_free(const Network& net,
                           const std::vector<FlowSpec>& flows);

}  // namespace dcdl::analysis
