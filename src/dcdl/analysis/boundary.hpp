// Boundary-state analysis of deadlock in a routing loop (paper §3.1).
//
// Model: packets are injected into a loop of n switches at rate r; links in
// the loop run at B; every packet carries an initial TTL. In the boundary
// state, injection and drain balance on every switch:
//
//   Eq. 1:  r + B - r_d = B          (first switch: inject + carry = drain)
//   Eq. 2:  n * B = TTL * r          (sum of TTL in the system is stable:
//                                     every loop-link transmission burns one
//                                     TTL unit; injections add TTL each)
//   Eq. 3:  deadlock  <=>  r > r_d = n * B / TTL
//
// The paper's testbed check: B = 40 Gbps, n = 2, TTL = 16 gives a 5 Gbps
// deadlock threshold, which the packet-level simulator must (and does)
// reproduce.
#pragma once

#include "dcdl/common/units.hpp"

namespace dcdl::analysis {

struct BoundaryModel {
  /// Eq. 3: deadlock threshold rate r_d = n*B/TTL. Injecting strictly above
  /// this rate deadlocks the loop; at or below it, TTL drain keeps up.
  static Rate deadlock_threshold(int loop_len, Rate bandwidth, int ttl) {
    return Rate{static_cast<std::int64_t>(loop_len) * bandwidth.bps() / ttl};
  }

  /// Largest initial TTL for which injection at `inject` cannot deadlock an
  /// n-switch loop: TTL <= n*B/r.
  static int max_safe_ttl(int loop_len, Rate bandwidth, Rate inject) {
    if (inject.is_zero()) return 255;
    const std::int64_t ttl =
        static_cast<std::int64_t>(loop_len) * bandwidth.bps() / inject.bps();
    return static_cast<int>(ttl > 255 ? 255 : ttl);
  }

  /// TTL <= n makes the threshold equal B, which an injector can never
  /// exceed: the loop is unconditionally deadlock-free (paper §4,
  /// TTL-based mitigation).
  static bool ttl_unconditionally_safe(int loop_len, int ttl) {
    return ttl <= loop_len;
  }

  /// Predicts whether a loop scenario deadlocks.
  static bool predicts_deadlock(int loop_len, Rate bandwidth, int ttl,
                                Rate inject) {
    return inject > deadlock_threshold(loop_len, bandwidth, ttl);
  }
};

}  // namespace dcdl::analysis
