#include "dcdl/analysis/deadlock.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "dcdl/common/contract.hpp"
#include "dcdl/device/host.hpp"
#include "dcdl/device/switch.hpp"

namespace dcdl::analysis {

// In the output-queued/ingress-counted switch, a deadlock is a mutually
// sustaining "frozen set":
//   - an egress (port, class) queue is frozen if it is non-empty, paused,
//     and its pauser (the downstream ingress counter of the same class)
//     is frozen;
//   - an ingress counter is frozen if it holds its upstream paused and
//     every byte attributed to it sits in frozen egress queues (so it can
//     never fall below Xon).
// We compute the greatest fixpoint: start from all currently paused
// entities and iteratively un-freeze anything with an escape path. A
// non-empty result is a deadlock *candidate*; DeadlockMonitor confirms it
// by re-checking after a dwell with no departures.
WaitForSnapshot snapshot_wait_for(const Network& net) {
  const Topology& topo = net.topo();
  const int num_classes = net.config().num_classes;

  struct EqKey {
    NodeId sw;
    PortId port;
    ClassId cls;
    auto operator<=>(const EqKey&) const = default;
  };

  std::set<EqKey> frozen_eq;
  std::set<QueueKey> frozen_ctr;
  // Pauser of each egress queue: the downstream ingress counter.
  std::map<EqKey, QueueKey> pauser;

  for (const NodeId sw_id : topo.switches()) {
    const auto& sw = net.switch_at(sw_id);
    for (PortId p = 0; p < sw.num_ports(); ++p) {
      for (ClassId c = 0; c < num_classes; ++c) {
        if (sw.egress_paused(p, c) && sw.egress_queue_bytes(p, c) > 0) {
          const PortPeer& pp = topo.peer(sw_id, p);
          if (!topo.is_switch(pp.peer_node)) continue;  // hosts never pause
          const EqKey eq{sw_id, p, c};
          frozen_eq.insert(eq);
          pauser[eq] = QueueKey{pp.peer_node, pp.peer_port, c};
        }
        if (sw.pause_asserted(p, c)) {
          frozen_ctr.insert(QueueKey{sw_id, p, c});
        }
      }
    }
  }

  bool changed = true;
  while (changed) {
    changed = false;
    // A counter escapes if bytes are held by a shaper (which always
    // releases) or sit in any non-frozen egress queue.
    for (auto it = frozen_ctr.begin(); it != frozen_ctr.end();) {
      const QueueKey k = *it;
      const auto& sw = net.switch_at(k.node);
      bool escapes = sw.shaper_held_bytes(k.port) > 0 &&
                     sw.ingress_bytes(k.port, k.cls) > 0;
      if (!escapes) {
        for (PortId e = 0; e < sw.num_ports() && !escapes; ++e) {
          for (ClassId c = 0; c < num_classes && !escapes; ++c) {
            if (sw.egress_bytes_from(e, c, k.port, k.cls) > 0 &&
                !frozen_eq.count(EqKey{k.node, e, c})) {
              escapes = true;
            }
          }
        }
      }
      if (escapes) {
        it = frozen_ctr.erase(it);
        changed = true;
      } else {
        ++it;
      }
    }
    for (auto it = frozen_eq.begin(); it != frozen_eq.end();) {
      if (!frozen_ctr.count(pauser.at(*it))) {
        it = frozen_eq.erase(it);
        changed = true;
      } else {
        ++it;
      }
    }
  }

  WaitForSnapshot out;
  if (!frozen_eq.empty() && !frozen_ctr.empty()) {
    out.has_cycle = true;
    out.cycle.assign(frozen_ctr.begin(), frozen_ctr.end());
  }
  return out;
}

DeadlockMonitor::DeadlockMonitor(Network& net, Time poll, Time dwell)
    : net_(net), poll_(poll), dwell_(dwell) {
  DCDL_EXPECTS(poll > Time::zero());
  DCDL_EXPECTS(dwell >= poll);
}

void DeadlockMonitor::start(Time from, Time until) {
  until_ = until;
  polling_ = true;
  net_.sim().schedule_at(from, [this] { poll_once(); });
}

void DeadlockMonitor::rearm() {
  deadlocked_ = false;
  cycle_.clear();
  candidate_.clear();
  candidate_departures_.clear();
  const Time now = net_.sim().now();
  if (!polling_ && now + poll_ <= until_) {
    polling_ = true;
    net_.sim().schedule_in(poll_, [this] { poll_once(); });
  }
}

std::vector<std::uint64_t> DeadlockMonitor::departures_of(
    const std::vector<QueueKey>& keys) const {
  std::vector<std::uint64_t> out;
  out.reserve(keys.size());
  for (const auto& k : keys) {
    out.push_back(net_.switch_at(k.node).departures(k.port, k.cls));
  }
  return out;
}

void DeadlockMonitor::poll_once() {
  if (deadlocked_) {
    polling_ = false;
    return;
  }
  const Time now = net_.sim().now();
  WaitForSnapshot snap = snapshot_wait_for(net_);
  if (!snap.has_cycle) {
    candidate_.clear();
  } else {
    std::vector<QueueKey> sorted = snap.cycle;
    std::sort(sorted.begin(), sorted.end());
    if (sorted != candidate_) {
      candidate_ = std::move(sorted);
      candidate_departures_ = departures_of(candidate_);
      candidate_since_ = now;
    } else if (now - candidate_since_ >= dwell_) {
      if (departures_of(candidate_) == candidate_departures_) {
        deadlocked_ = true;
        polling_ = false;  // rearm() restarts the chain if wanted
        detected_at_ = now;
        cycle_ = candidate_;
        ++confirmations_;
        if (on_confirmed_) on_confirmed_(*this);
        return;
      }
      // Progress happened inside the candidate: restart the dwell clock.
      candidate_departures_ = departures_of(candidate_);
      candidate_since_ = now;
    }
  }
  if (now + poll_ <= until_) {
    net_.sim().schedule_in(poll_, [this] { poll_once(); });
  } else {
    polling_ = false;
  }
}

DrainResult stop_and_drain(Network& net, Time grace) {
  for (const NodeId h : net.topo().hosts()) {
    net.host_at(h).stop_all_flows();
  }
  const Time deadline = net.sim().now() + grace;
  net.sim().run_until(deadline);
  DrainResult out;
  out.trapped_bytes = net.total_queued_bytes();
  out.deadlocked = out.trapped_bytes > 0;
  out.quiesced_at = net.sim().now();
  return out;
}

}  // namespace dcdl::analysis
