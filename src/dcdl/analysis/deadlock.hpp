// Runtime deadlock detection.
//
// Two complementary detectors:
//
// 1. Wait-for-graph snapshot (`snapshot_wait_for`): an ingress queue waits
//    on the downstream ingress queue whose Xoff is pausing the egress its
//    head packet needs. A cycle of waiting queues at one instant is a
//    *candidate* deadlock; `DeadlockMonitor` confirms it by re-checking
//    after a dwell period during which none of the cycle's queues made a
//    departure — then no queue in the cycle can ever drain (each head needs
//    an egress paused by the next queue, whose occupancy can only grow).
//
// 2. Stop-and-drain (paper §3.2 methodology): stop all flows, keep the
//    simulator running; if buffered bytes remain once the network goes
//    quiet, those packets are permanently trapped — deadlock.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "dcdl/common/units.hpp"
#include "dcdl/device/network.hpp"
#include "dcdl/stats/pause_log.hpp"

namespace dcdl::analysis {

using QueueKey = stats::QueueKey;

struct WaitForSnapshot {
  bool has_cycle = false;
  /// One blocked-queue cycle q0 -> q1 -> ... -> q0 (qi waits on qi+1).
  std::vector<QueueKey> cycle;
};

/// Builds the instantaneous wait-for graph and returns a cycle if present.
WaitForSnapshot snapshot_wait_for(const Network& net);

/// Polls the wait-for graph and confirms persistent cycles.
class DeadlockMonitor {
 public:
  /// Polls every `poll`; a detected cycle is confirmed as deadlock if after
  /// `dwell` the same queues are still cycle-blocked with zero departures.
  DeadlockMonitor(Network& net, Time poll = Time{100'000'000},   // 100 us
                  Time dwell = Time{1'000'000'000});             // 1 ms

  /// Starts polling at `from` until `until` or confirmation.
  void start(Time from, Time until);

  bool deadlocked() const { return deadlocked_; }
  /// Instant of the most recent confirmation (the first, unless rearm()
  /// was called and a second deadlock was confirmed). Survives rearm() so
  /// post-run reporting still sees that a deadlock was confirmed even
  /// after a data-plane recovery cleared it.
  std::optional<Time> detected_at() const { return detected_at_; }
  const std::vector<QueueKey>& cycle() const { return cycle_; }
  /// Total confirmations in this run (> 1 only with rearm()).
  std::uint64_t confirmations() const { return confirmations_; }

  /// Re-arms the monitor after a confirmation — the data-plane recovery
  /// path: once the pipeline clears the cycle, call this so a *second*
  /// deadlock in the same run can be confirmed (firing on_confirmed once
  /// per confirmation, never twice for the same one). Clears the confirmed
  /// cycle and candidate state and resumes the poll chain if it had
  /// stopped; never double-schedules polls. A no-op on an idle monitor.
  void rearm();

  /// Invoked (at most once) at the simulated instant a cycle is confirmed,
  /// with cycle()/detected_at() already filled in. The flight-recorder
  /// post-mortem hangs off this: the callback snapshots the last-N-events
  /// window while the wedged state is still live.
  void set_on_confirmed(std::function<void(const DeadlockMonitor&)> fn) {
    on_confirmed_ = std::move(fn);
  }

 private:
  void poll_once();
  std::vector<std::uint64_t> departures_of(const std::vector<QueueKey>& keys) const;

  Network& net_;
  Time poll_, dwell_, until_ = Time::zero();
  std::function<void(const DeadlockMonitor&)> on_confirmed_;
  bool deadlocked_ = false;
  bool polling_ = false;  ///< a poll event is pending on the simulator
  std::uint64_t confirmations_ = 0;
  std::optional<Time> detected_at_;
  std::vector<QueueKey> cycle_;
  // Pending candidate awaiting confirmation.
  std::vector<QueueKey> candidate_;
  std::vector<std::uint64_t> candidate_departures_;
  Time candidate_since_ = Time::zero();
};

/// Stop-and-drain check: stops every flow now, runs the simulator until the
/// event queue empties or `grace` elapses, and reports trapped bytes
/// (non-zero == deadlock). The network is not usable for further traffic
/// afterwards.
struct DrainResult {
  bool deadlocked = false;
  std::int64_t trapped_bytes = 0;
  Time quiesced_at = Time::zero();
};
DrainResult stop_and_drain(Network& net, Time grace);

}  // namespace dcdl::analysis
