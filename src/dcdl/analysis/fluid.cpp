#include "dcdl/analysis/fluid.hpp"

#include <algorithm>
#include <deque>
#include <limits>

#include "dcdl/common/contract.hpp"

namespace dcdl::analysis {

namespace {
constexpr double kEpsBytes = 1.0;         // "queue empty" tolerance
constexpr double kLarge = 1e15;           // "unconstrained" offered rate

// Max-min (water-filling) allocation of `capacity` among users with
// offered-rate caps. Returns per-user allocations.
std::vector<double> water_fill(double capacity, const std::vector<double>& caps) {
  std::vector<double> alloc(caps.size(), 0.0);
  std::vector<std::size_t> active;
  for (std::size_t i = 0; i < caps.size(); ++i) {
    if (caps[i] > 0) active.push_back(i);
  }
  double remaining = capacity;
  while (!active.empty() && remaining > 1e-6) {
    const double share = remaining / static_cast<double>(active.size());
    bool any_capped = false;
    std::vector<std::size_t> still;
    for (const std::size_t i : active) {
      if (caps[i] - alloc[i] <= share) {
        remaining -= caps[i] - alloc[i];
        alloc[i] = caps[i];
        any_capped = true;
      } else {
        still.push_back(i);
      }
    }
    if (!any_capped) {
      for (const std::size_t i : still) alloc[i] += share;
      remaining = 0;
    }
    active = std::move(still);
  }
  return alloc;
}
}  // namespace

int FluidModel::add_queue(FluidQueue q) {
  DCDL_EXPECTS(q.xon_bytes <= q.xoff_bytes);
  queues_.push_back(std::move(q));
  return static_cast<int>(queues_.size()) - 1;
}

int FluidModel::add_link(FluidLink l) {
  DCDL_EXPECTS(l.capacity.bps() > 0);
  links_.push_back(std::move(l));
  return static_cast<int>(links_.size()) - 1;
}

int FluidModel::add_flow(FluidFlow f) {
  DCDL_EXPECTS(!f.queues.empty());
  if (f.loop_from >= 0) {
    DCDL_EXPECTS(f.loop_from < static_cast<int>(f.queues.size()));
    DCDL_EXPECTS(f.loop_links >= 1);
    DCDL_EXPECTS(f.ttl >= 1);
  }
  flows_.push_back(std::move(f));
  return static_cast<int>(flows_.size()) - 1;
}

void FluidModel::begin(Time dt) {
  DCDL_EXPECTS(dt > Time::zero());
  st_ = State{};
  st_.dt = dt;
  st_.dt_s = dt.sec();
  st_.occupancy.assign(queues_.size(), 0.0);
  st_.queue_asserted.assign(queues_.size(), 0);
  st_.link_paused.assign(links_.size(), 0);
  st_.loop_fluid.assign(flows_.size(), 0.0);
  st_.step_delivered.assign(flows_.size(), 0.0);
}

double FluidModel::occupancy(int q) const {
  return st_.occupancy.at(static_cast<std::size_t>(q));
}

bool FluidModel::queue_asserted(int q) const {
  return st_.queue_asserted.at(static_cast<std::size_t>(q)) != 0;
}

double FluidModel::step_delivered(int f) const {
  return st_.step_delivered.at(static_cast<std::size_t>(f));
}

void FluidModel::step() {
  const std::size_t nq = queues_.size();
  const std::size_t nl = links_.size();
  const std::size_t nf = flows_.size();
  const double dt_s = st_.dt_s;
  std::vector<double>& occupancy = st_.occupancy;
  std::vector<char>& queue_asserted = st_.queue_asserted;
  std::vector<char>& link_paused = st_.link_paused;
  std::deque<Transition>& pending = st_.pending;
  std::vector<double>& loop_fluid = st_.loop_fluid;
  const Time now = st_.now;
  st_.step_delivered.assign(nf, 0.0);

  {
    // 1. Apply due pause/resume transitions.
    while (!pending.empty() && pending.front().at <= now) {
      link_paused[static_cast<std::size_t>(pending.front().link)] =
          pending.front().paused ? 1 : 0;
      pending.pop_front();
    }

    // 2. Compute hop rates to a fixpoint (caps propagate downstream; a few
    //    sweeps suffice for the path lengths we model).
    std::vector<std::vector<double>> rate(nf);
    for (std::size_t f = 0; f < nf; ++f) {
      const int hops = flows_[f].loop_from >= 0 ? flows_[f].loop_from + 1
                                                : static_cast<int>(
                                                      flows_[f].queues.size());
      rate[f].assign(static_cast<std::size_t>(hops), 0.0);
    }
    std::vector<double> loop_flux(nf, 0.0);

    for (int sweep = 0; sweep < 6; ++sweep) {
      // Offered rate (cap) of each hop user, then per-link water-filling.
      struct User {
        std::size_t flow;
        int hop;  // -1 encodes the circulating loop flux
      };
      std::vector<std::vector<User>> users(nl);
      std::vector<std::vector<double>> caps(nl);
      for (std::size_t f = 0; f < nf; ++f) {
        const FluidFlow& fl = flows_[f];
        const std::size_t hops = rate[f].size();
        for (std::size_t j = 0; j < hops; ++j) {
          const int link = queues_[static_cast<std::size_t>(fl.queues[j])]
                               .upstream_link;
          DCDL_EXPECTS(link >= 0);
          double cap;
          if (j == 0) {
            cap = fl.demand.is_zero()
                      ? static_cast<double>(
                            links_[static_cast<std::size_t>(link)]
                                .capacity.bps()) / 8.0
                      : static_cast<double>(fl.demand.bps()) / 8.0;
          } else {
            const double backlog =
                occupancy[static_cast<std::size_t>(fl.queues[j - 1])];
            cap = backlog > kEpsBytes ? kLarge : rate[f][j - 1];
          }
          users[static_cast<std::size_t>(link)].push_back(
              User{f, static_cast<int>(j)});
          caps[static_cast<std::size_t>(link)].push_back(cap);
        }
        if (fl.loop_from >= 0) {
          // The circulating flux uses every loop link; register it on the
          // loop-entry queue's upstream link as the binding constraint
          // (symmetric loops share one bottleneck).
          const int entry = fl.queues[static_cast<std::size_t>(fl.loop_from)];
          const int link = queues_[static_cast<std::size_t>(entry)].upstream_link;
          users[static_cast<std::size_t>(link)].push_back(User{f, -1});
          caps[static_cast<std::size_t>(link)].push_back(
              loop_fluid[f] > kEpsBytes ? kLarge : 0.0);
        }
      }
      for (std::size_t l = 0; l < nl; ++l) {
        if (users[l].empty()) continue;
        const double capacity_Bps =
            link_paused[l] ? 0.0
                           : static_cast<double>(links_[l].capacity.bps()) / 8.0;
        const std::vector<double> alloc = water_fill(capacity_Bps, caps[l]);
        for (std::size_t u = 0; u < users[l].size(); ++u) {
          if (users[l][u].hop < 0) {
            loop_flux[users[l][u].flow] = alloc[u];
          } else {
            rate[users[l][u].flow]
                [static_cast<std::size_t>(users[l][u].hop)] = alloc[u];
          }
        }
      }
    }

    // 3. Integrate occupancies.
    for (std::size_t f = 0; f < nf; ++f) {
      const FluidFlow& fl = flows_[f];
      const std::size_t hops = rate[f].size();
      for (std::size_t j = 0; j < hops; ++j) {
        const std::size_t q = static_cast<std::size_t>(fl.queues[j]);
        const double in = rate[f][j];
        // Outflow of hop j = inflow of hop j+1 (or loop/delivery).
        double out;
        if (j + 1 < hops) {
          out = rate[f][j + 1];
        } else if (fl.loop_from >= 0) {
          out = rate[f][j];  // injection hop feeds the loop directly
        } else {
          out = occupancy[q] > kEpsBytes
                    ? std::max(in, rate[f][j])  // uncontended delivery
                    : in;
        }
        if (fl.loop_from >= 0 && static_cast<int>(j) == fl.loop_from) {
          // Last injection hop: fluid moves into the loop aggregate.
          loop_fluid[f] += in * dt_s;
        } else {
          occupancy[q] += (in - out) * dt_s;
          if (occupancy[q] < 0) occupancy[q] = 0;
        }
        if (fl.loop_from < 0 && j + 1 == hops) {
          st_.step_delivered[f] += out * dt_s;
        }
      }
      if (fl.loop_from >= 0) {
        // TTL drain (Eq. 2 in fluid form): every byte-hop on a loop link
        // burns one TTL unit, and freshly injected fluid circulates too —
        // at the boundary the entry link saturates at inj + F = B, giving
        // the drain n*B/TTL of Eq. 1-3.
        const double circulating =
            loop_flux[f] + rate[f][static_cast<std::size_t>(fl.loop_from)];
        const double drain = static_cast<double>(fl.loop_links) *
                             circulating / static_cast<double>(fl.ttl);
        loop_fluid[f] -= drain * dt_s;
        if (loop_fluid[f] < 0) loop_fluid[f] = 0;
        // The loop fluid sits spread over the loop queues.
        const std::size_t loop_queues =
            flows_[f].queues.size() - static_cast<std::size_t>(fl.loop_from);
        for (std::size_t j = static_cast<std::size_t>(fl.loop_from);
             j < fl.queues.size(); ++j) {
          occupancy[static_cast<std::size_t>(fl.queues[j])] =
              loop_fluid[f] / static_cast<double>(loop_queues);
        }
      }
    }

    // 4. PFC hysteresis: schedule pause/resume after the control delay.
    for (std::size_t q = 0; q < nq; ++q) {
      const int link = queues_[q].upstream_link;
      if (link < 0) continue;
      const Time delay = links_[static_cast<std::size_t>(link)].control_delay;
      if (!queue_asserted[q] &&
          occupancy[q] >= static_cast<double>(queues_[q].xoff_bytes)) {
        queue_asserted[q] = 1;
        pending.push_back(Transition{now + delay, link, true});
      } else if (queue_asserted[q] &&
                 occupancy[q] < static_cast<double>(queues_[q].xon_bytes)) {
        queue_asserted[q] = 0;
        pending.push_back(Transition{now + delay, link, false});
      }
    }

    // 5. Freeze ingredients: fluid present but nothing moves anywhere.
    double total_fluid = 0, total_motion = 0;
    for (std::size_t q = 0; q < nq; ++q) total_fluid += occupancy[q];
    for (std::size_t f = 0; f < nf; ++f) {
      for (const double r : rate[f]) total_motion += r;
      total_motion += loop_flux[f];
    }
    st_.total_fluid = total_fluid;
    st_.total_motion = total_motion;
  }

  st_.now = now + st_.dt;
}

FluidResult FluidModel::run(Time horizon, Time dt, Time warmup, Time dwell) {
  const std::size_t nq = queues_.size();
  const std::size_t nf = flows_.size();
  const double dt_s = dt.sec();
  std::vector<double> delivered(nf, 0.0);  // bytes delivered after warmup

  FluidResult res;
  res.min_bytes.assign(nq, std::numeric_limits<std::int64_t>::max());
  res.max_bytes.assign(nq, 0);
  res.paused_fraction.assign(nq, 0.0);
  res.mean_goodput_bps.assign(nf, 0.0);

  begin(dt);
  Time frozen_since = Time::max();
  while (st_.now < horizon) {
    const Time now = st_.now;  // start of this step
    step();

    // Freeze detection over the dwell window.
    if (st_.total_fluid > 10 * kEpsBytes && st_.total_motion < 1.0) {
      if (frozen_since == Time::max()) frozen_since = now;
      if (now - frozen_since >= dwell && !res.deadlocked) {
        res.deadlocked = true;
        res.deadlock_at = frozen_since;
        // The frozen cycle's membership: queues still occupied while
        // holding their upstream paused at the confirmation instant.
        for (std::size_t q = 0; q < nq; ++q) {
          if (st_.queue_asserted[q] && st_.occupancy[q] > kEpsBytes) {
            res.deadlock_queues.push_back(static_cast<int>(q));
          }
        }
      }
    } else {
      frozen_since = Time::max();
    }

    // Statistics.
    if (now >= warmup) {
      for (std::size_t f = 0; f < nf; ++f) {
        delivered[f] += st_.step_delivered[f];
      }
      for (std::size_t q = 0; q < nq; ++q) {
        const auto bytes = static_cast<std::int64_t>(st_.occupancy[q]);
        res.min_bytes[q] = std::min(res.min_bytes[q], bytes);
        res.max_bytes[q] = std::max(res.max_bytes[q], bytes);
        if (st_.queue_asserted[q]) {
          res.paused_fraction[q] += dt_s;
        }
      }
    }
  }

  const double window_s = (horizon - warmup).sec();
  for (std::size_t q = 0; q < nq; ++q) {
    if (res.min_bytes[q] == std::numeric_limits<std::int64_t>::max()) {
      res.min_bytes[q] = 0;
    }
    if (window_s > 0) res.paused_fraction[q] /= window_s;
  }
  for (std::size_t f = 0; f < nf; ++f) {
    if (window_s > 0) res.mean_goodput_bps[f] = delivered[f] * 8.0 / window_s;
  }
  return res;
}

FluidModel make_fluid_routing_loop(int loop_len, Rate bandwidth, int ttl,
                                   Rate inject, Time control_delay) {
  DCDL_EXPECTS(loop_len >= 2);
  FluidModel m;
  // Links: host -> S0, then the ring links S_i -> S_{i+1}.
  const int host_link = m.add_link(FluidLink{"host->S0", bandwidth,
                                             control_delay});
  std::vector<int> ring_links;
  for (int i = 0; i < loop_len; ++i) {
    ring_links.push_back(m.add_link(FluidLink{
        "S" + std::to_string(i) + "->S" + std::to_string((i + 1) % loop_len),
        bandwidth, control_delay}));
  }
  // Queue 0: S0's host-facing ingress. Queues 1..n: ring ingresses, where
  // ring queue i is fed by ring link i-1 (S_{i-1} -> S_i in ring order).
  FluidFlow flow;
  flow.name = "loop_flow";
  flow.demand = inject;
  flow.queues.push_back(m.add_queue(FluidQueue{"S0.rxHost", 40 * kKiB,
                                               38 * kKiB, host_link}));
  for (int i = 0; i < loop_len; ++i) {
    flow.queues.push_back(m.add_queue(
        FluidQueue{"S" + std::to_string((i + 1) % loop_len) + ".rxRing",
                   40 * kKiB, 38 * kKiB, ring_links[static_cast<std::size_t>(i)]}));
  }
  flow.loop_from = 1;
  flow.ttl = ttl;
  flow.loop_links = loop_len;
  m.add_flow(flow);
  return m;
}

FluidFourSwitch make_fluid_four_switch(bool with_flow3, Rate flow3_rate,
                                       Time control_delay) {
  FluidFourSwitch out;
  FluidModel& m = out.model;
  const Rate B = Rate::gbps(40);
  // Links of the ring plus the three source access links.
  const int lAB = m.add_link(FluidLink{"A->B", B, control_delay});
  const int lBC = m.add_link(FluidLink{"B->C", B, control_delay});
  const int lCD = m.add_link(FluidLink{"C->D", B, control_delay});
  const int lDA = m.add_link(FluidLink{"D->A", B, control_delay});
  const int l_hA = m.add_link(FluidLink{"hA->A", B, control_delay});
  const int l_hC = m.add_link(FluidLink{"hC->C", B, control_delay});
  const int l_hB3 = m.add_link(FluidLink{"hB3->B", B, control_delay});

  const int rxA_host = m.add_queue(FluidQueue{"A.RX2", 40 * kKiB, 38 * kKiB, l_hA});
  const int rxC_host = m.add_queue(FluidQueue{"C.RX2", 40 * kKiB, 38 * kKiB, l_hC});
  const int rxB_host = m.add_queue(FluidQueue{"B.RX2", 40 * kKiB, 38 * kKiB, l_hB3});
  out.rx1_B = m.add_queue(FluidQueue{"B.RX1", 40 * kKiB, 38 * kKiB, lAB});
  out.rx1_C = m.add_queue(FluidQueue{"C.RX1", 40 * kKiB, 38 * kKiB, lBC});
  out.rx1_D = m.add_queue(FluidQueue{"D.RX1", 40 * kKiB, 38 * kKiB, lCD});
  out.rx1_A = m.add_queue(FluidQueue{"A.RX1", 40 * kKiB, 38 * kKiB, lDA});

  // Flow 1: hA -> A -> B -> C -> D -> hD.
  FluidFlow f1;
  f1.name = "flow1";
  f1.queues = {rxA_host, out.rx1_B, out.rx1_C, out.rx1_D};
  m.add_flow(f1);
  // Flow 2: hC -> C -> D -> A -> B -> hB.
  FluidFlow f2;
  f2.name = "flow2";
  f2.queues = {rxC_host, out.rx1_D, out.rx1_A, out.rx1_B};
  m.add_flow(f2);
  if (with_flow3) {
    FluidFlow f3;
    f3.name = "flow3";
    f3.demand = flow3_rate;
    f3.queues = {rxB_host, out.rx1_C};
    m.add_flow(f3);
  }
  return out;
}

}  // namespace dcdl::analysis
