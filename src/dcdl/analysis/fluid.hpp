// Fluid (rate-based) model of PFC dynamics — the analysis tool the paper
// announces as future work in §3.3 ("We are currently working on analysis
// tools, e.g., a fluid model that can describe PFC behavior").
//
// The network is a set of fluid queues (the ingress counters), links with
// finite capacity, and flows with fixed routes and demands. Time advances
// in small fixed steps; at each step:
//
//   1. Flow rates are computed by progressive filling (max-min fairness)
//      over the links, with links paused for a flow's class carrying zero —
//      this encodes PFC's per-hop fairness at the flow level.
//   2. A flow's rate *into* queue i is its rate at the previous hop
//      (backlogged queues forward at their drain rate, so rate changes
//      propagate hop by hop); queue occupancies integrate
//      inflow − outflow.
//   3. Queues crossing Xoff schedule a pause of their upstream link after
//      the control delay τ; falling below Xon schedules the resume —
//      reproducing the threshold-crossing sawtooth with its
//      delay-dependent amplitude.
//
// Looping flows (routing loops) drain by TTL expiry: a circulating flux F
// on an n-link loop consumes TTL budget at rate n·F while injection adds
// TTL·r, so the model reproduces Eq. 1–3 exactly (deadlock iff
// r > n·B/TTL).
//
// The fluid model *deliberately* has no packet-level state. The paper's
// central §3.2 lesson is that such flow-level analysis predicts "no
// deadlock" for Figure 4 although the packet simulation deadlocks — this
// model makes that gap measurable (see bench_fluid_model).
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "dcdl/common/units.hpp"

namespace dcdl::analysis {

struct FluidQueue {
  std::string name;
  std::int64_t xoff_bytes = 40 * kKiB;
  std::int64_t xon_bytes = 38 * kKiB;
  /// Link feeding this queue (whose upstream the queue pauses), by index;
  /// -1 for injection queues fed directly by a source.
  int upstream_link = -1;
};

struct FluidLink {
  std::string name;
  Rate capacity = Rate::gbps(40);
  /// One-way control delay: time from a queue crossing Xoff/Xon to the
  /// upstream link actually stopping/starting.
  Time control_delay = Time{2'000'000};
};

/// A flow visits queues in order; between consecutive queues it crosses
/// the later queue's upstream link. The final hop (delivery) is modelled
/// as an always-unpaused sink link.
struct FluidFlow {
  std::string name;
  /// Demand at the source; Rate::zero() = greedy (line rate).
  Rate demand = Rate::zero();
  std::vector<int> queues;  ///< queue indices in visit order
  /// Loop flows re-circulate from the last queue back to queues[loop_from]
  /// and drain by TTL; -1 = normal (delivered after the last queue).
  int loop_from = -1;
  int ttl = 64;
  int loop_links = 0;  ///< number of links in the loop (for TTL drain)
};

struct FluidResult {
  bool deadlocked = false;
  Time deadlock_at = Time::zero();
  /// Queue membership of the frozen pause cycle at the confirmation
  /// instant: every queue that was holding its upstream paused while still
  /// occupied. Empty unless `deadlocked`.
  std::vector<int> deadlock_queues;
  /// Occupancy extrema per queue over the sampled window.
  std::vector<std::int64_t> min_bytes, max_bytes;
  /// Fraction of time each queue held its upstream paused.
  std::vector<double> paused_fraction;
  /// Mean delivery rate per flow (bytes/s).
  std::vector<double> mean_goodput_bps;
};

class FluidModel {
 public:
  int add_queue(FluidQueue q);
  int add_link(FluidLink l);
  int add_flow(FluidFlow f);

  /// Integrates for `horizon` with step `dt`; statistics are collected
  /// after `warmup`. Deadlock = every queue of some pause cycle saturated
  /// with zero outflow for `dwell`. Implemented on top of begin()/step(),
  /// so batch results and incremental stepping are arithmetically
  /// identical.
  FluidResult run(Time horizon, Time dt = Time{100'000},
                  Time warmup = Time{1'000'000'000},
                  Time dwell = Time{1'000'000'000});

  /// Incremental stepping — the hybrid engine's integration mode. begin()
  /// resets all dynamic state and fixes the step; each step() then
  /// advances the model by one dt using exactly the per-iteration
  /// arithmetic of run(). After step() returns, now() is the end of the
  /// step and the observers below describe the step just taken.
  void begin(Time dt);
  void step();
  Time now() const { return st_.now; }
  double occupancy(int q) const;
  bool queue_asserted(int q) const;
  /// Bytes delivered by flow `f` during the most recent step() (zero for
  /// loop flows — they drain by TTL, not delivery).
  double step_delivered(int f) const;
  /// Total resident fluid (bytes) and total motion (bytes/s) after the
  /// last step — the ingredients of the freeze predicate.
  double total_fluid() const { return st_.total_fluid; }
  double total_motion() const { return st_.total_motion; }

  const std::vector<FluidQueue>& queues() const { return queues_; }
  const std::vector<FluidFlow>& flows() const { return flows_; }

 private:
  /// Dynamic integration state between begin() and the last step().
  struct Transition {
    Time at;
    int link;
    bool paused;
  };
  struct State {
    Time dt = Time::zero();
    double dt_s = 0;
    Time now = Time::zero();
    std::vector<double> occupancy;
    std::vector<char> queue_asserted;
    std::vector<char> link_paused;
    std::deque<Transition> pending;
    std::vector<double> loop_fluid;
    std::vector<double> step_delivered;
    double total_fluid = 0, total_motion = 0;
  };

  std::vector<FluidQueue> queues_;
  std::vector<FluidLink> links_;
  std::vector<FluidFlow> flows_;
  State st_;
};

/// Canonical fluid instances mirroring the packet-level scenarios, so the
/// two models can be compared series-for-series.

/// §3.1 routing loop: `loop_len` switches, injection at `inject`
/// (zero = greedy). Queue 0 is the host-facing ingress; queues 1.. are the
/// ring ingresses.
FluidModel make_fluid_routing_loop(int loop_len, Rate bandwidth, int ttl,
                                   Rate inject,
                                   Time control_delay = Time{1'000'000});

struct FluidFourSwitch {
  FluidModel model;
  /// Ring ingress queues in paper order: B.RX1, C.RX1, D.RX1, A.RX1 —
  /// i.e. the queues whose pause state is L1..L4.
  int rx1_B, rx1_C, rx1_D, rx1_A;
};

/// §3.2 four-switch scenario (Figures 3/4) in fluid form; `flow3_rate`
/// zero disables flow 3, Rate::gbps(40) makes it greedy.
FluidFourSwitch make_fluid_four_switch(bool with_flow3,
                                       Rate flow3_rate = Rate::zero(),
                                       Time control_delay = Time{2'000'000});

}  // namespace dcdl::analysis
