#include "dcdl/analysis/risk.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <set>

#include "dcdl/common/contract.hpp"
#include "dcdl/device/switch.hpp"

namespace dcdl::analysis {

namespace {

// Directed channel out of (node, port).
using Channel = std::pair<NodeId, PortId>;

struct FlowPath {
  std::vector<Channel> channels;     // acyclic prefix (up to the loop)
  bool looping = false;
  std::vector<Channel> loop;         // the cyclic portion, once
  int ttl_at_loop = 0;               // TTL when first crossing the loop
};

FlowPath walk_path(const Network& net, const FlowSpec& flow) {
  const Topology& topo = net.topo();
  FlowPath out;
  NodeId cur = flow.src_host;
  PortId out_port = 0;  // hosts transmit on their single port
  int ttl = flow.ttl;
  std::map<std::pair<NodeId, PortId>, std::size_t> seen;  // channel -> index
  std::vector<int> ttl_at;  // TTL when each channel is first crossed
  for (int step = 0; step < 4096; ++step) {
    const Channel chan{cur, out_port};
    if (const auto it = seen.find(chan); it != seen.end()) {
      out.looping = true;
      out.loop.assign(out.channels.begin() +
                          static_cast<std::ptrdiff_t>(it->second),
                      out.channels.end());
      out.ttl_at_loop = ttl_at[it->second];
      out.channels.resize(it->second);
      return out;
    }
    seen[chan] = out.channels.size();
    out.channels.push_back(chan);
    ttl_at.push_back(ttl);
    const PortPeer& pp = topo.peer(cur, out_port);
    const NodeId next = pp.peer_node;
    if (!topo.is_switch(next)) return out;  // delivered
    if (topo.is_switch(cur)) {
      if (ttl == 0) return out;  // TTL would expire before looping forever
      --ttl;
    }
    const auto eg = net.switch_at(next).routes().lookup(flow.id, flow.dst_host);
    if (!eg) return out;  // blackhole
    cur = next;
    out_port = *eg;
  }
  return out;
}

double channel_capacity_Bps(const Network& net, const Channel& c) {
  return static_cast<double>(net.link_rate(c.first, c.second).bps()) / 8.0;
}

// Offered load (bytes/s) per directed channel: fair-share rates on acyclic
// paths, plus the circulating flux r*TTL/n of looping flows on their loop
// channels (Eq. 2), capped at line rate.
std::map<Channel, double> offered_load(const Network& net,
                                       const std::vector<FlowSpec>& flows,
                                       const std::vector<Rate>& stable) {
  std::map<Channel, double> load;
  for (std::size_t i = 0; i < flows.size(); ++i) {
    const FlowPath path = walk_path(net, flows[i]);
    const double r = static_cast<double>(stable[i].bps()) / 8.0;
    for (const Channel& c : path.channels) load[c] += r;
    if (path.looping && !path.loop.empty()) {
      const int ttl = path.ttl_at_loop;
      const double flux =
          r * static_cast<double>(ttl) / static_cast<double>(path.loop.size());
      for (const Channel& c : path.loop) {
        load[c] += std::min(flux, channel_capacity_Bps(net, c));
      }
    }
  }
  return load;
}

}  // namespace

std::vector<Rate> stable_flow_rates(const Network& net,
                                    const std::vector<FlowSpec>& flows,
                                    const std::vector<Rate>& demands) {
  const std::size_t n = flows.size();
  std::vector<FlowPath> paths;
  paths.reserve(n);
  for (const FlowSpec& f : flows) paths.push_back(walk_path(net, f));

  std::vector<double> rate(n, 0.0);
  std::vector<char> frozen(n, 0);
  const auto demand_of = [&](std::size_t i) -> double {
    if (i < demands.size() && !demands[i].is_zero()) {
      return static_cast<double>(demands[i].bps()) / 8.0;
    }
    return std::numeric_limits<double>::infinity();
  };

  // Looping flows are excluded from fair sharing (their fate is the
  // boundary model's business); they get their demand capped at line rate.
  for (std::size_t i = 0; i < n; ++i) {
    if (paths[i].looping) {
      frozen[i] = 1;
      rate[i] = std::min(demand_of(i),
                         channel_capacity_Bps(net, paths[i].channels.front()));
    }
  }

  // Progressive filling (classic max-min with demand caps).
  while (true) {
    // Gather channels with unfrozen flows.
    std::map<Channel, std::pair<double, int>> load;  // frozen load, unfrozen n
    for (std::size_t i = 0; i < n; ++i) {
      for (const Channel& c : paths[i].channels) {
        auto& entry = load[c];
        if (frozen[i]) {
          entry.first += rate[i];
        } else {
          entry.second += 1;
        }
      }
    }
    double bottleneck = std::numeric_limits<double>::infinity();
    for (const auto& [chan, entry] : load) {
      if (entry.second == 0) continue;
      const double share =
          std::max(0.0, channel_capacity_Bps(net, chan) - entry.first) /
          entry.second;
      bottleneck = std::min(bottleneck, share);
    }
    // Demand caps can bind before any channel does.
    double min_demand = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < n; ++i) {
      if (!frozen[i]) min_demand = std::min(min_demand, demand_of(i));
    }
    if (bottleneck == std::numeric_limits<double>::infinity() &&
        min_demand == std::numeric_limits<double>::infinity()) {
      break;  // nothing left to allocate
    }
    if (min_demand <= bottleneck) {
      // Freeze demand-bound flows.
      bool any = false;
      for (std::size_t i = 0; i < n; ++i) {
        if (!frozen[i] && demand_of(i) <= bottleneck) {
          rate[i] = demand_of(i);
          frozen[i] = 1;
          any = true;
        }
      }
      if (any) continue;
    }
    // Freeze the flows on the bottleneck channel(s) at the bottleneck rate.
    bool froze = false;
    for (const auto& [chan, entry] : load) {
      if (entry.second == 0) continue;
      const double share =
          std::max(0.0, channel_capacity_Bps(net, chan) - entry.first) /
          entry.second;
      if (share <= bottleneck + 1e-6) {
        for (std::size_t i = 0; i < n; ++i) {
          if (frozen[i]) continue;
          for (const Channel& c : paths[i].channels) {
            if (c == chan) {
              rate[i] = bottleneck;
              frozen[i] = 1;
              froze = true;
              break;
            }
          }
        }
      }
    }
    if (!froze) break;  // defensive: no progress
    if (std::all_of(frozen.begin(), frozen.end(),
                    [](char f) { return f != 0; })) {
      break;
    }
  }

  std::vector<Rate> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(Rate{static_cast<std::int64_t>(rate[i] * 8.0)});
  }
  return out;
}

std::vector<std::vector<std::pair<NodeId, PortId>>> flow_channels(
    const Network& net, const std::vector<FlowSpec>& flows) {
  std::vector<std::vector<std::pair<NodeId, PortId>>> out;
  out.reserve(flows.size());
  for (const FlowSpec& f : flows) {
    const FlowPath path = walk_path(net, f);
    std::vector<std::pair<NodeId, PortId>> channels = path.channels;
    channels.insert(channels.end(), path.loop.begin(), path.loop.end());
    out.push_back(std::move(channels));
  }
  return out;
}

RiskReport assess_deadlock_risk(const Network& net,
                                const std::vector<FlowSpec>& flows,
                                const std::vector<Rate>& demands) {
  RiskReport report;
  const auto bdg = BufferDependencyGraph::build(net, flows);
  report.cbd_present = bdg.has_cycle();
  report.stable_rates = stable_flow_rates(net, flows, demands);
  report.looping_flows = bdg.looping_flows();
  if (!report.cbd_present) return report;

  const std::map<Channel, double> load =
      offered_load(net, flows, report.stable_rates);

  constexpr double kSaturated = 0.95;
  const std::set<FlowId> looping(bdg.looping_flows().begin(),
                                 bdg.looping_flows().end());
  for (const auto& cycle : bdg.cycles()) {
    CycleRisk risk;
    risk.cycle = cycle;
    risk.min_utilization = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < cycle.size(); ++i) {
      // Cycle link i feeds cycle[(i+1)]: it is that queue's upstream
      // channel.
      const QueueKey& next = cycle[(i + 1) % cycle.size()];
      const PortPeer& pp = net.topo().peer(next.node, next.port);
      const Channel chan{pp.peer_node, pp.peer_port};
      const double util =
          std::min(1.0, (load.count(chan) ? load.at(chan) : 0.0) /
                            channel_capacity_Bps(net, chan));
      risk.link_utilization.push_back(util);
      if (util < kSaturated) risk.slack_links += 1;
      if (util < risk.min_utilization) {
        risk.min_utilization = util;
        risk.weakest_hop = i;
      }
    }
    if (risk.min_utilization == std::numeric_limits<double>::infinity()) {
      risk.min_utilization = 0;
    }
    risk.from_routing_loop = !looping.empty();
    report.max_risk = std::max(report.max_risk, risk.min_utilization);
    report.cycles.push_back(std::move(risk));
  }
  return report;
}

std::map<std::pair<NodeId, PortId>, double> channel_utilization(
    const Network& net, const std::vector<FlowSpec>& flows,
    const std::vector<Rate>& demands) {
  const std::vector<Rate> stable = stable_flow_rates(net, flows, demands);
  const std::map<Channel, double> load = offered_load(net, flows, stable);
  std::map<Channel, double> util;
  for (const auto& [chan, bytes_per_s] : load) {
    util[chan] = bytes_per_s / channel_capacity_Bps(net, chan);
  }
  return util;
}

OnlineRiskAssessor::OnlineRiskAssessor(const Network& net,
                                       std::vector<FlowSpec> flows)
    : net_(net), flows_(std::move(flows)) {}

const RiskReport& OnlineRiskAssessor::reassess(
    const std::vector<Rate>& measured) {
  report_ = assess_deadlock_risk(net_, flows_, measured);
  ++assessments_;
  return report_;
}

}  // namespace dcdl::analysis
