// Deadlock risk assessment — a tighter-than-CBD condition in the spirit
// the paper asks for (§3 summary: "we know that a tighter condition
// should include those factors [traffic matrix, TTL, flow rates]").
//
// Insight from the case studies: a buffer-dependency cycle can only lock
// if *every* link along the cycle can be driven to saturation — each
// downstream ingress counter must be pinnable above Xon. In Figure 3 the
// link B->C carries a single 20 Gbps flow (utilization 0.5): L1 can never
// stay paused, so the cycle cannot close. Adding flow 3 (Figure 4) lifts
// that link to utilization 1.0 and the deadlock becomes reachable.
//
// The analyzer therefore:
//   1. builds the buffer dependency graph (necessary condition),
//   2. computes max-min fair stable flow rates over the installed routes
//      (the "flow-level stable state analysis" of §3.2),
//   3. classifies every link of each dependency cycle as *saturated*
//      (stable utilization ≈ 1: its downstream counter ratchets across
//      pause episodes and can reach Xoff on its own) or *slack*,
//   4. handles routing-loop cycles via the boundary-state model: the
//      circulating flux r·TTL/n puts every loop link at utilization
//      r / (n·B/TTL).
//
// Reachability rule (validated against the packet simulator across this
// repo's scenario battery; see bench_risk_score): a cycle can lock iff at
// most ONE of its links is slack. A saturated link's downstream queue
// oscillates at the threshold and seeds pauses; pause episodes compound
// around the cycle and can push one slack queue over Xoff (Figure 4's
// D->A link, utilization 0.5), but two interleaved slack queues recover
// faster than pauses can compound (Figure 3: B->C *and* D->A slack — the
// paper's "no deadlock despite cyclic dependency"). Sufficiency remains
// the paper's open problem; this is a falsifiable heuristic, reported
// honestly against simulation outcomes.
#pragma once

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "dcdl/analysis/bdg.hpp"
#include "dcdl/device/network.hpp"
#include "dcdl/traffic/flow.hpp"

namespace dcdl::analysis {

struct CycleRisk {
  std::vector<QueueKey> cycle;
  /// Utilization of each cycle link (link i feeds cycle[(i+1) % n]).
  std::vector<double> link_utilization;
  /// min over the cycle's links of (offered stable load / capacity).
  double min_utilization = 0;
  /// Links with utilization < saturation threshold (0.95).
  int slack_links = 0;
  /// Index (into cycle) of the link with the least utilization — the
  /// natural target for rate limiting ("intelligent rate limiting", §4).
  std::size_t weakest_hop = 0;
  bool from_routing_loop = false;

  /// The reachability heuristic: lockable iff at most one slack link.
  bool reachable() const { return slack_links <= 1; }
};

struct RiskReport {
  bool cbd_present = false;
  std::vector<CycleRisk> cycles;
  /// Highest min-utilization over cycles (0 when no cycle exists) — a
  /// continuous "distance to the boundary" indicator.
  double max_risk = 0;
  /// Max-min stable rate per flow (parallel to the input flow list).
  std::vector<Rate> stable_rates;
  /// Flows whose installed routes revisit a queue state (routing loops) —
  /// surfaced from the dependency-graph walk so online consumers (the
  /// hybrid zoom) need not rebuild the graph themselves.
  std::vector<FlowId> looping_flows;

  /// True if any dependency cycle passes the slack-link rule.
  bool deadlock_reachable() const {
    for (const auto& c : cycles) {
      if (c.reachable()) return true;
    }
    return false;
  }
};

/// Assesses the installed routing + flow set. `demands[i]` caps flow i
/// (zero / missing = greedy). Flows trapped in routing loops contribute a
/// boundary-model risk instead of a fair-share rate.
RiskReport assess_deadlock_risk(const Network& net,
                                const std::vector<FlowSpec>& flows,
                                const std::vector<Rate>& demands = {});

/// Max-min fair stable rates over the installed routes (progressive
/// filling; the §3.2 "flow-level stable state analysis based on PFC
/// fairness", exposed for reuse). Looping flows get their demand (they
/// are not capacity-fair-shared; the loop analysis handles them).
std::vector<Rate> stable_flow_rates(const Network& net,
                                    const std::vector<FlowSpec>& flows,
                                    const std::vector<Rate>& demands = {});

/// The sequence of directed channels (node, egress port) each flow
/// crosses under the installed routes. Loop portions appear once, after
/// the acyclic prefix. Used by the intelligent rate-limiting planner.
std::vector<std::vector<std::pair<NodeId, PortId>>> flow_channels(
    const Network& net, const std::vector<FlowSpec>& flows);

/// Stable-state utilization of every directed channel the flows cross:
/// offered load (fair-share rates on acyclic paths, circulating loop flux
/// on loop channels) over capacity. The hybrid engine's fluidization rule
/// reads this: a flow is only safe to integrate at flow level while every
/// channel it crosses stays clear of saturation.
std::map<std::pair<NodeId, PortId>, double> channel_utilization(
    const Network& net, const std::vector<FlowSpec>& flows,
    const std::vector<Rate>& demands = {});

/// Online risk mode (hybrid engine): periodically re-assesses the *live*
/// network — route tables are re-walked on every call, so loops that form
/// mid-run (BGP churn, SDN updates) surface here — with measured per-flow
/// rates standing in for demands. Holds the flow list by value; the
/// network must outlive the assessor.
class OnlineRiskAssessor {
 public:
  OnlineRiskAssessor(const Network& net, std::vector<FlowSpec> flows);

  /// `measured[i]` is flow i's observed rate (zero = treat as greedy).
  const RiskReport& reassess(const std::vector<Rate>& measured);

  const RiskReport& report() const { return report_; }
  std::uint64_t assessments() const { return assessments_; }

 private:
  const Network& net_;
  std::vector<FlowSpec> flows_;
  RiskReport report_;
  std::uint64_t assessments_ = 0;
};

}  // namespace dcdl::analysis
