// Umbrella for the campaign subsystem: parallel experiment sweeps with
// structured, diffable results.
//
//   ScenarioRegistry  — names + typed params -> scenarios::make_* factories
//   SweepSpec/expand  — cartesian grids + deterministic seed streams
//   CampaignExecutor  — thread pool, per-run guard rails, failure capture
//   CampaignResult    — JSON/CSV artifacts (schema dcdl.campaign.v3)
#pragma once

#include "dcdl/campaign/executor.hpp"
#include "dcdl/campaign/param.hpp"
#include "dcdl/campaign/registry.hpp"
#include "dcdl/campaign/result.hpp"
#include "dcdl/campaign/sweep.hpp"
