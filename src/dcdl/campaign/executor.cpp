#include "dcdl/campaign/executor.hpp"

#include <chrono>
#include <cstdio>
#include <mutex>
#include <thread>

#include <optional>

#include "dcdl/analysis/deadlock.hpp"
#include "dcdl/common/contract.hpp"
#include "dcdl/dataplane/dataplane.hpp"
#include "dcdl/forensics/forensics.hpp"
#include "dcdl/probe/export.hpp"
#include "dcdl/probe/probe.hpp"
#include "dcdl/sim/sharded.hpp"
#include "dcdl/sim/simulator.hpp"
#include "dcdl/stats/hooks.hpp"
#include "dcdl/stats/pause_log.hpp"
#include "dcdl/telemetry/telemetry.hpp"
#include "dcdl/watch/export.hpp"
#include "dcdl/watch/watch.hpp"

namespace dcdl::campaign {

namespace {

/// Thrown (per thread) in place of std::abort while a run executes.
struct ContractViolation : std::runtime_error {
  using std::runtime_error::runtime_error;
};

[[noreturn]] void throw_contract(const char* kind, const char* expr,
                                 const char* file, int line) {
  char buf[512];
  std::snprintf(buf, sizeof(buf), "contract %s violated: %s at %s:%d", kind,
                expr, file, line);
  throw ContractViolation(buf);
}

/// Installs the throwing contract handler for the current scope/thread.
class ScopedContractCapture {
 public:
  ScopedContractCapture() : prev_(detail::contract_handler) {
    detail::contract_handler = &throw_contract;
  }
  ~ScopedContractCapture() { detail::contract_handler = prev_; }
  ScopedContractCapture(const ScopedContractCapture&) = delete;
  ScopedContractCapture& operator=(const ScopedContractCapture&) = delete;

 private:
  detail::ContractHandler prev_;
};

double elapsed_ms(std::chrono::steady_clock::time_point since) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - since)
      .count();
}

}  // namespace

RunRecord execute_run(const ScenarioRegistry& registry, const RunSpec& spec,
                      const std::atomic<bool>* cancel,
                      const ExecutorOptions& opts) {
  RunRecord rec;
  rec.run_index = spec.run_index;
  rec.cell_index = spec.cell_index;
  rec.seed_index = spec.seed_index;
  rec.scenario = spec.scenario;
  rec.params = spec.params;
  rec.seed = spec.seed;

  const auto wall0 = std::chrono::steady_clock::now();
  ScopedContractCapture capture;
  try {
    const ScenarioDef& def = registry.at(spec.scenario);
    registry.validate_params(spec.scenario, spec.params);
    // The shard request only needs to cover Network construction — the
    // network latches its engine there; everything after (monitors, guard,
    // run_until) drives it transparently via the run delegate.
    std::optional<ScopedShardRequest> shard_request;
    if (opts.shards >= 1) shard_request.emplace(opts.shards);
    scenarios::Scenario s = def.make(spec.params);
    shard_request.reset();
    stats::PauseEventLog pauses(*s.net);
    // Drop log for trigger classification (a cascade seeded by TTL-expired
    // drops is a routing-loop origin). Rides the same observer mechanism as
    // PauseEventLog; both may grow their vectors, neither runs on the
    // zero-alloc packet path itself.
    std::vector<forensics::CausalInput::Drop> drop_log;
    stats::append_hook(
        s.net->trace().dropped,
        [&drop_log](Time t, const Packet&, NodeId node, DropReason r) {
          drop_log.push_back(
              {t.ps(), node, static_cast<std::uint8_t>(r)});
        });
    telemetry::RunTelemetry run_telemetry(*s.net);
    // With a trace directory configured, a flight recorder rides along and
    // its window is exported after the run (plus a post-mortem at the
    // instant a deadlock is confirmed).
    std::unique_ptr<telemetry::FlightRecorder> recorder;
    if (!opts.trace_dir.empty()) {
      recorder = std::make_unique<telemetry::FlightRecorder>(
          opts.trace_capacity);
      recorder->attach(*s.net);
    }
    ScenarioDef::Finisher finish;
    if (def.instrument) finish = def.instrument(s, spec.params);

    // Hybrid fluid/packet engine: the controller partitions the topology,
    // fluidizes eligible flows, and keeps its zoom decisions inside control
    // events — so with mode=off this block is a no-op and the event stream
    // is bit-for-bit the historical one.
    std::unique_ptr<hybrid::HybridController> hybrid_ctl;
    if (opts.hybrid.mode != hybrid::Mode::kOff) {
      hybrid_ctl = std::make_unique<hybrid::HybridController>(
          *s.net, s.flows, opts.hybrid);
    }

    // Always-on time-series probe: samples at opts.probe_interval on the
    // externally visible simulator (the control sim under --shards), so the
    // series are byte-identical across --jobs and --shards >= 1. Its sampler
    // events are part of the canonical stream — events_executed includes
    // them for every execution mode alike.
    probe::ProbeOptions probe_opts;
    probe_opts.interval = opts.probe_interval;
    probe_opts.capacity = opts.probe_capacity;
    probe::RunProbe run_probe(*s.net, probe_opts);
    if (hybrid_ctl != nullptr) {
      run_probe.add_gauge_series(
          "hybrid.fluid_flows", [ctl = hybrid_ctl.get()] {
            return static_cast<double>(ctl->fluid_flows());
          });
    }

    // Always-on early-warning watcher: like the probe, its sampler rides
    // the externally visible simulator, so the alert stream is a pure
    // function of the scenario for every --jobs x --shards with
    // shards >= 1.
    watch::RunWatch run_watch(*s.net, s.flows, opts.watch);

    // Cooperative guard: a recurring simulator event — always scheduled, so
    // the event stream (and events_executed) is identical whether a run
    // executes inside a campaign or standalone. `guard_active` ends the
    // recurrence once the measured window closes, keeping the drain phase
    // free of artificial wakeups.
    bool guard_active = true;
    bool timed_out = false;
    bool cancelled = false;
    Simulator* sim = s.sim.get();
    std::function<void()> guard = [&, sim] {
      if (!guard_active) return;
      if (cancel != nullptr && cancel->load(std::memory_order_relaxed)) {
        cancelled = true;
        sim->stop();
        return;
      }
      if (opts.run_wall_budget_ms > 0 &&
          elapsed_ms(wall0) > opts.run_wall_budget_ms) {
        timed_out = true;
        sim->stop();
        return;
      }
      sim->schedule_in(opts.guard_poll, guard);
    };
    sim->schedule_in(opts.guard_poll, guard);

    // Same sequence as scenarios::run_and_check, but with the at-stop
    // metric capture interposed between the measured run and the drain.
    analysis::DeadlockMonitor monitor(*s.net, Time{50'000'000},
                                      spec.monitor_dwell);
    // In-band dataplane pipeline capture (schema v3 columns). Every
    // recovery re-arms the centralized monitor so a second deadlock in the
    // same run is still confirmed. Under --shards the hook fires during
    // replay at window barriers on the control thread, where re-arming the
    // monitor (scheduling its next poll) is safe.
    std::optional<Time> dp_first_confirm;
    std::optional<Time> dp_first_recover;
    std::uint64_t dp_confirms = 0;
    std::uint64_t dp_recoveries = 0;
    if (s.net->config().dataplane.enabled()) {
      stats::append_hook(
          s.net->trace().dataplane,
          [&](Time t, NodeId, dataplane::DataplaneEvent ev, ClassId,
              std::uint64_t) {
            switch (ev) {
              case dataplane::DataplaneEvent::kConfirmed:
                ++dp_confirms;
                if (!dp_first_confirm) dp_first_confirm = t;
                break;
              case dataplane::DataplaneEvent::kRecovered:
                ++dp_recoveries;
                if (!dp_first_recover) dp_first_recover = t;
                monitor.rearm();
                break;
              default:
                break;
            }
          });
    }
    std::string post_mortem;
    if (recorder != nullptr) {
      monitor.set_on_confirmed(
          [&post_mortem, &recorder, &opts, &s](
              const analysis::DeadlockMonitor& m) {
            post_mortem = telemetry::post_mortem_jsonl(
                *s.topo, *recorder, m.cycle(), *m.detected_at(),
                opts.post_mortem_window);
          });
    }
    const Time start = sim->now();
    monitor.start(start, start + spec.run_for + spec.drain_grace);
    run_probe.start(*sim, start + spec.run_for);
    run_watch.start(*sim, start + spec.run_for);
    sim->run_until(start + spec.run_for);
    guard_active = false;
    rec.wall_ms = elapsed_ms(wall0);
    if (cancelled) {
      rec.status = RunStatus::kCancelled;
      return rec;
    }
    if (timed_out) {
      rec.status = RunStatus::kTimeout;
      rec.error = "per-run wall-clock budget exceeded";
      return rec;
    }

    // Close the hybrid accounting before the delivered capture so the tail
    // fluid credits are included in goodput exactly once.
    if (hybrid_ctl != nullptr) {
      hybrid_ctl->finalize();
      rec.hybrid_mode = hybrid::to_string(opts.hybrid.mode);
      rec.zoom_events = hybrid_ctl->stats().zoom_events;
      rec.fluid_fraction = hybrid_ctl->stats().fluid_fraction;
    }

    std::int64_t total = 0;
    for (const FlowSpec& f : s.flows) {
      const std::int64_t bytes =
          s.net->host_at(f.dst_host).delivered_bytes(f.id);
      rec.delivered.emplace_back(f.id, bytes);
      total += bytes;
    }
    rec.goodput_gbps =
        static_cast<double>(total) * 8 / spec.run_for.sec() / 1e9;
    for (const stats::PauseEvent& e : pauses.events()) {
      rec.pause_assertions += e.paused ? 1 : 0;
    }
    // Telemetry snapshot at stop time: same instant as goodput and
    // pause_assertions, before the drain phase perturbs the queues.
    rec.telemetry = run_telemetry.snapshot().flatten();
    // Probe summary and the timeseries artifact are captured at the same
    // stop instant, so the JSONL histograms match the record's probe.*
    // values exactly (the hooks would keep accumulating through the drain).
    run_probe.finalize();
    rec.probe = run_probe.summary();
    rec.alerts = run_watch.summary();
    std::string timeseries;
    std::string alerts_jsonl;
    if (recorder != nullptr) {
      timeseries = probe::to_timeseries_jsonl(run_probe);
      alerts_jsonl = watch::to_alerts_jsonl(run_watch, *s.topo);
    }
    rec.status = RunStatus::kOk;  // finisher sees a complete core record
    if (finish) finish(rec, rec.metrics);

    const analysis::DrainResult drain =
        analysis::stop_and_drain(*s.net, spec.drain_grace);
    rec.trapped_bytes = drain.trapped_bytes;
    rec.deadlocked = drain.deadlocked;
    if (monitor.detected_at()) rec.detect_ms = monitor.detected_at()->ms();
    // Early-warning lead time: how far the first critical alert beat the
    // dwell-confirmed monitor verdict (the headline watch metric).
    // Positive = the alert fired first.
    if (monitor.detected_at()) {
      const auto first_crit =
          run_watch.first_fire(watch::Severity::kCritical);
      if (first_crit) {
        rec.alerts.emplace_back(
            "lead_ms", monitor.detected_at()->ms() - first_crit->ms());
      }
    }
    rec.events = sim->events_executed();
    if (dp_first_confirm) rec.detection_latency_ns = dp_first_confirm->ns();
    if (dp_first_confirm && dp_first_recover) {
      rec.recovery_time_ns = (*dp_first_recover - *dp_first_confirm).ns();
    }
    rec.false_positive =
        dp_confirms > 0 && !rec.deadlocked && dp_recoveries == 0;

    // Post-hoc forensics over the complete pause history (measured window
    // plus drain): the causality DAG, trigger attribution, and cascade
    // shape, appended to the record as forensics.* metrics.
    forensics::CausalInput causal =
        forensics::input_from_pause_log(*s.topo, pauses, sim->now());
    causal.drops = std::move(drop_log);
    causal.deadlock_cycle = monitor.cycle();
    if (monitor.detected_at()) {
      causal.deadlock_at_ps = monitor.detected_at()->ps();
    }
    const forensics::CascadeReport cascade = forensics::analyze(causal);
    {
      telemetry::MetricsRegistry forensics_reg;
      const forensics::CascadeMetricIds ids =
          forensics::register_cascade_metrics(forensics_reg);
      forensics::record_cascade(forensics_reg, ids, cascade);
      for (auto& kv : forensics_reg.snapshot().flatten()) {
        rec.telemetry.push_back(std::move(kv));
      }
    }

    if (recorder != nullptr) {
      char idx[32];
      std::snprintf(idx, sizeof(idx), "run_%05d", rec.run_index);
      const std::string stem = opts.trace_dir + "/" + idx;
      const std::vector<telemetry::TraceRecord> window =
          recorder->snapshot();
      // Flow arrows come from a records-based analysis of the same window
      // the Perfetto export renders, so no arrow points at an overwritten
      // span.
      forensics::CausalInput win_in =
          forensics::input_from_records(*s.topo, window);
      win_in.deadlock_cycle = causal.deadlock_cycle;
      win_in.deadlock_at_ps = causal.deadlock_at_ps;
      const forensics::CascadeReport win_report =
          forensics::analyze(win_in);
      write_text_file(stem + ".trace.json",
                      telemetry::to_perfetto_json(
                          *s.topo, window, {},
                          forensics::flow_arrows(win_report)));
      write_text_file(stem + ".telemetry.jsonl",
                      telemetry::to_jsonl(*s.topo, window));
      write_text_file(stem + ".timeseries.jsonl", timeseries);
      write_text_file(stem + ".alerts.jsonl", alerts_jsonl);
      write_text_file(stem + ".forensics.txt",
                      forensics::to_text(cascade));
      write_text_file(stem + ".forensics.dot",
                      forensics::to_dot(cascade));
      if (!post_mortem.empty()) {
        write_text_file(stem + ".postmortem.jsonl", post_mortem);
      }
    }
  } catch (const std::exception& e) {
    rec.status = RunStatus::kFailed;
    rec.error = e.what();
  }
  rec.wall_ms = elapsed_ms(wall0);
  return rec;
}

CampaignExecutor::CampaignExecutor(const ScenarioRegistry& registry,
                                   ExecutorOptions opts)
    : registry_(registry), opts_(std::move(opts)) {}

CampaignResult CampaignExecutor::run(const std::vector<RunSpec>& specs,
                                     std::uint64_t root_seed) {
  CampaignResult result;
  result.root_seed = root_seed;
  result.records.resize(specs.size());
  if (specs.empty()) return result;

  int jobs = opts_.jobs > 0
                 ? opts_.jobs
                 : static_cast<int>(std::thread::hardware_concurrency());
  if (jobs < 1) jobs = 1;
  if (static_cast<std::size_t>(jobs) > specs.size()) {
    jobs = static_cast<int>(specs.size());
  }
  effective_jobs_ = jobs;
  result.jobs = jobs;

  const auto wall0 = std::chrono::steady_clock::now();
  std::atomic<std::size_t> cursor{0};
  std::mutex done_mutex;

  const auto worker = [&] {
    // Each worker recycles one simulator arena across all its runs: the
    // event slab/heap grown by run i is adopted by run i+1 instead of being
    // freed and re-grown (see Simulator::ScopedArenaRecycling).
    const Simulator::ScopedArenaRecycling arena_scope;
    while (true) {
      const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
      if (i >= specs.size()) return;
      if (cancel_.load(std::memory_order_relaxed)) {
        // Not started: record the spec identity with status=cancelled.
        RunRecord& rec = result.records[i];
        rec.run_index = specs[i].run_index;
        rec.cell_index = specs[i].cell_index;
        rec.seed_index = specs[i].seed_index;
        rec.scenario = specs[i].scenario;
        rec.params = specs[i].params;
        rec.seed = specs[i].seed;
        rec.status = RunStatus::kCancelled;
      } else {
        result.records[i] = execute_run(registry_, specs[i], &cancel_, opts_);
      }
      if (opts_.on_run_done) {
        const std::lock_guard<std::mutex> lock(done_mutex);
        opts_.on_run_done(result.records[i]);
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(jobs) - 1);
  for (int t = 1; t < jobs; ++t) pool.emplace_back(worker);
  worker();  // the calling thread is worker 0
  for (std::thread& t : pool) t.join();

  result.total_wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - wall0)
          .count();
  return result;
}

}  // namespace dcdl::campaign
