// Thread-pool campaign executor.
//
// Every Simulator is an independent single-threaded deterministic engine, so
// a campaign of N runs is embarrassingly parallel: workers pull run specs
// off an atomic cursor and write records into pre-assigned slots — no locks
// on the result path, and the record order (hence every artifact byte)
// depends only on the spec order.
//
// Robustness: each run is guarded by
//   - graceful failure capture: exceptions AND dcdl contract violations
//     inside one run become status=failed records instead of aborting the
//     campaign (see detail::contract_handler);
//   - a cooperative cancellation/timeout guard: a recurring simulator event
//     checks the campaign's cancel flag and the per-run wall-clock budget,
//     stopping runs that deadlock-and-spin without preempting any thread.
#pragma once

#include <atomic>
#include <functional>

#include "dcdl/campaign/result.hpp"
#include "dcdl/hybrid/hybrid.hpp"
#include "dcdl/watch/watch.hpp"

namespace dcdl::campaign {

struct ExecutorOptions {
  /// Worker threads; 0 = std::thread::hardware_concurrency().
  int jobs = 0;
  /// Per-run wall-clock budget in ms; 0 = unlimited. A tripped budget
  /// yields status=timeout (inherently nondeterministic — leave at 0 when
  /// byte-stable artifacts matter).
  double run_wall_budget_ms = 0;
  /// Simulated-time cadence of the cancellation/timeout guard event.
  Time guard_poll = Time{1'000'000'000};  // 1 ms
  /// Shards per run: 0 = legacy single-threaded engine; >= 1 = sharded
  /// conservative engine with (up to) this many worker threads per run.
  /// Records are byte-identical for every value >= 1 (a --shards 1 run
  /// exercises the sharded machinery and matches --shards N exactly;
  /// shards never appear in the campaign JSON). The legacy engine breaks
  /// same-timestamp ties by insertion order rather than by the canonical
  /// channel keys, so 0 is its own — equally valid — stream. Composes
  /// multiplicatively with `jobs` — a campaign at jobs=J, shards=S runs up
  /// to J*S worker threads, so shard wide runs with few jobs, or keep
  /// shards=0/1 when the campaign itself saturates the cores.
  int shards = 0;
  /// Hybrid fluid/packet engine configuration applied to every run
  /// (mode kOff — the default — is pure packet simulation and leaves the
  /// event stream untouched). When on, each run gets its own
  /// HybridController and the record carries the schema-v4 columns
  /// hybrid_mode / zoom_events / fluid_fraction.
  hybrid::HybridConfig hybrid;
  /// Time-series probe sampling interval (dcdl::probe). The sampler is
  /// always on: it rides the externally visible simulator (the control sim
  /// under --shards), so its events land at window barriers and the series
  /// are byte-identical across --jobs and --shards >= 1. Every ok record
  /// carries the probe summary (schema v5); with trace_dir set, each run
  /// additionally writes `run_NNNNN.timeseries.jsonl`.
  Time probe_interval = Time{100'000'000};  // 100 us
  /// Ring capacity (ticks) of each run's time-series store. At the default
  /// 100 us interval this covers 409.6 ms of history — longer runs keep the
  /// most recent window and report dropped_ticks in the artifact header.
  std::size_t probe_capacity = 1u << 12;
  /// Early-warning watcher configuration (dcdl::watch). Like the probe it
  /// is always on and rides the externally visible simulator, so the alert
  /// stream is byte-identical across --jobs and --shards >= 1. Every ok
  /// record carries the alert summary (schema v6); with trace_dir set,
  /// each run additionally writes `run_NNNNN.alerts.jsonl`.
  watch::WatchOptions watch;
  /// Progress callback, invoked under a lock after each run completes.
  std::function<void(const RunRecord&)> on_run_done;

  /// Non-empty: every run attaches a flight recorder and writes
  /// `run_NNNNN.trace.json` (Perfetto) + `run_NNNNN.telemetry.jsonl` +
  /// `run_NNNNN.timeseries.jsonl` (dcdl.timeseries.v1) +
  /// `run_NNNNN.alerts.jsonl` (dcdl.alerts.v1) into
  /// this existing directory; a run whose deadlock monitor confirms a cycle
  /// additionally writes `run_NNNNN.postmortem.jsonl` with the last-events
  /// window captured at the detection instant. One file set per run_index,
  /// so artifacts are identical across --jobs counts.
  std::string trace_dir;
  /// Flight-recorder ring capacity (records) when trace_dir is set.
  std::size_t trace_capacity = 1u << 16;
  /// Records in a deadlock post-mortem dump.
  std::size_t post_mortem_window = 4096;
};

/// Executes one spec synchronously on the calling thread. This is both the
/// worker body and the standalone single-cell reproduction entry point: the
/// record it returns is identical to the one a campaign produces for the
/// same spec (pass cancel = nullptr for standalone use).
RunRecord execute_run(const ScenarioRegistry& registry, const RunSpec& spec,
                      const std::atomic<bool>* cancel = nullptr,
                      const ExecutorOptions& opts = {});

class CampaignExecutor {
 public:
  explicit CampaignExecutor(const ScenarioRegistry& registry,
                            ExecutorOptions opts = {});

  /// Runs all specs; blocks until every run completed, failed, timed out,
  /// or was cancelled. records[i] corresponds to specs[i].
  CampaignResult run(const std::vector<RunSpec>& specs,
                     std::uint64_t root_seed = 0);

  /// Cooperative cancellation (callable from any thread, e.g. a signal
  /// context): in-flight runs stop at their next guard poll and are marked
  /// cancelled; queued runs are not started.
  void cancel() { cancel_.store(true, std::memory_order_relaxed); }

  /// The job count run() resolved to (after the hardware default and the
  /// spec-count clamp).
  int effective_jobs() const { return effective_jobs_; }

 private:
  const ScenarioRegistry& registry_;
  ExecutorOptions opts_;
  std::atomic<bool> cancel_{false};
  int effective_jobs_ = 1;
};

}  // namespace dcdl::campaign
