#include "dcdl/campaign/param.hpp"

#include <cctype>
#include <charconv>
#include <cstdlib>

namespace dcdl::campaign {

const char* to_string(ParamKind kind) {
  switch (kind) {
    case ParamKind::kInt: return "int";
    case ParamKind::kDouble: return "double";
    case ParamKind::kBool: return "bool";
    case ParamKind::kString: return "string";
  }
  return "?";
}

std::string format_double(double v) {
  char buf[64];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec != std::errc{}) return "nan";
  return std::string(buf, end);
}

ParamValue ParamValue::of_int(std::int64_t v) {
  ParamValue p;
  p.kind_ = ParamKind::kInt;
  p.int_ = v;
  return p;
}

ParamValue ParamValue::of_double(double v) {
  ParamValue p;
  p.kind_ = ParamKind::kDouble;
  p.double_ = v;
  return p;
}

ParamValue ParamValue::of_bool(bool v) {
  ParamValue p;
  p.kind_ = ParamKind::kBool;
  p.bool_ = v;
  return p;
}

ParamValue ParamValue::of_string(std::string v) {
  ParamValue p;
  p.kind_ = ParamKind::kString;
  p.string_ = std::move(v);
  return p;
}

ParamValue ParamValue::parse(const std::string& text, std::string* unit) {
  if (unit) unit->clear();
  if (text == "true") return of_bool(true);
  if (text == "false") return of_bool(false);
  // Number with an optional alphabetic unit suffix.
  const char* begin = text.c_str();
  char* end = nullptr;
  const double d = std::strtod(begin, &end);
  if (end != begin) {
    std::string rest(end);
    bool alpha = !rest.empty();
    for (const char c : rest) {
      alpha = alpha && (std::isalpha(static_cast<unsigned char>(c)) != 0);
    }
    if (rest.empty() || alpha) {
      if (unit) *unit = rest;
      const bool looks_int =
          text.find('.') == std::string::npos &&
          text.find('e') == std::string::npos &&
          text.find('E') == std::string::npos;
      if (looks_int) {
        return of_int(static_cast<std::int64_t>(d));
      }
      return of_double(d);
    }
  }
  return of_string(text);
}

std::int64_t ParamValue::as_int() const {
  if (kind_ == ParamKind::kInt) return int_;
  if (kind_ == ParamKind::kDouble) return static_cast<std::int64_t>(double_);
  if (kind_ == ParamKind::kBool) return bool_ ? 1 : 0;
  throw CampaignError("param value '" + string_ + "' is not numeric");
}

double ParamValue::as_double() const {
  if (kind_ == ParamKind::kDouble) return double_;
  if (kind_ == ParamKind::kInt) return static_cast<double>(int_);
  if (kind_ == ParamKind::kBool) return bool_ ? 1 : 0;
  throw CampaignError("param value '" + string_ + "' is not numeric");
}

bool ParamValue::as_bool() const {
  if (kind_ == ParamKind::kBool) return bool_;
  if (kind_ == ParamKind::kInt) return int_ != 0;
  if (kind_ == ParamKind::kString)
    return string_ != "false" && string_ != "0" && string_ != "no";
  throw CampaignError("param value is not a bool");
}

const std::string& ParamValue::as_string() const {
  if (kind_ != ParamKind::kString)
    throw CampaignError("param value is not a string");
  return string_;
}

std::string ParamValue::to_string() const {
  switch (kind_) {
    case ParamKind::kInt: return std::to_string(int_);
    case ParamKind::kDouble: return format_double(double_);
    case ParamKind::kBool: return bool_ ? "true" : "false";
    case ParamKind::kString: return string_;
  }
  return "";
}

std::int64_t ParamMap::get_int(const std::string& name,
                               std::int64_t fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second.as_int();
}

double ParamMap::get_double(const std::string& name, double fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second.as_double();
}

bool ParamMap::get_bool(const std::string& name, bool fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second.as_bool();
}

std::string ParamMap::get_string(const std::string& name,
                                 const std::string& fallback) const {
  const auto it = values_.find(name);
  return it == values_.end() ? fallback : it->second.to_string();
}

}  // namespace dcdl::campaign
