// Typed key/value parameters for campaign scenarios.
//
// A ParamMap is the wire format between sweep specs and scenario factories:
// every knob of a registered scenario is addressable by name, so a sweep can
// grid over any of them without the factory knowing about sweeps. Values are
// deliberately a small closed set (int, double, bool, string) — everything a
// command line or a JSON artifact can carry losslessly.
#pragma once

#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>

namespace dcdl::campaign {

/// Campaign-layer failures (unknown scenario, malformed grid, bad param):
/// these are *user input* errors, reported gracefully, never contract aborts.
struct CampaignError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

enum class ParamKind { kInt, kDouble, kBool, kString };

const char* to_string(ParamKind kind);

class ParamValue {
 public:
  ParamValue() = default;
  static ParamValue of_int(std::int64_t v);
  static ParamValue of_double(double v);
  static ParamValue of_bool(bool v);
  static ParamValue of_string(std::string v);

  /// Parses "17" -> int, "2.5" / "1e9" -> double, "true"/"false" -> bool,
  /// anything else -> string. A recognized unit suffix on a number (e.g.
  /// "8gbps") is stripped; the unit text is returned via `unit` if non-null.
  static ParamValue parse(const std::string& text, std::string* unit = nullptr);

  ParamKind kind() const { return kind_; }
  /// Numeric accessors coerce between int and double; anything else throws
  /// CampaignError (a type mismatch is a spec bug worth surfacing).
  std::int64_t as_int() const;
  double as_double() const;
  bool as_bool() const;
  const std::string& as_string() const;

  /// Canonical text form (shortest round-trip for doubles) used by the JSON
  /// and CSV sinks; deterministic across runs and thread counts.
  std::string to_string() const;

  friend bool operator==(const ParamValue&, const ParamValue&) = default;

 private:
  ParamKind kind_ = ParamKind::kInt;
  std::int64_t int_ = 0;
  double double_ = 0;
  bool bool_ = false;
  std::string string_;
};

/// An ordered name -> value map (ordered so serialization is deterministic).
class ParamMap {
 public:
  void set(const std::string& name, ParamValue value) {
    values_[name] = std::move(value);
  }
  bool has(const std::string& name) const { return values_.count(name) != 0; }

  std::int64_t get_int(const std::string& name, std::int64_t fallback) const;
  double get_double(const std::string& name, double fallback) const;
  bool get_bool(const std::string& name, bool fallback) const;
  std::string get_string(const std::string& name,
                         const std::string& fallback) const;

  const std::map<std::string, ParamValue>& items() const { return values_; }
  bool empty() const { return values_.empty(); }

  friend bool operator==(const ParamMap&, const ParamMap&) = default;

 private:
  std::map<std::string, ParamValue> values_;
};

/// Declaration of one scenario knob, used for validation and --list output.
struct ParamSpec {
  std::string name;
  ParamKind kind = ParamKind::kDouble;
  /// Unit suffix accepted after numbers in grid specs ("gbps", "us", ...).
  std::string unit;
  std::string description;
};

/// Shortest-round-trip decimal text for a double (std::to_chars), so JSON
/// and CSV artifacts are byte-identical regardless of how the value was
/// computed or which thread produced it.
std::string format_double(double v);

}  // namespace dcdl::campaign
