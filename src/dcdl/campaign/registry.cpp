#include "dcdl/campaign/registry.hpp"

#include "dcdl/analysis/boundary.hpp"
#include "dcdl/analysis/fluid.hpp"
#include "dcdl/analysis/risk.hpp"
#include "dcdl/dataplane/dataplane.hpp"

namespace dcdl::campaign {

ScenarioRegistry& ScenarioRegistry::global() {
  static ScenarioRegistry reg = [] {
    ScenarioRegistry r;
    register_builtin_scenarios(r);
    return r;
  }();
  return reg;
}

void ScenarioRegistry::add(ScenarioDef def) {
  if (defs_.count(def.name)) {
    throw CampaignError("scenario '" + def.name + "' is already registered");
  }
  replace(std::move(def));
}

void ScenarioRegistry::replace(ScenarioDef def) {
  if (def.name.empty() || !def.make) {
    throw CampaignError("scenario definition needs a name and a factory");
  }
  defs_[def.name] = std::move(def);
}

const ScenarioDef* ScenarioRegistry::find(const std::string& name) const {
  const auto it = defs_.find(name);
  return it == defs_.end() ? nullptr : &it->second;
}

const ScenarioDef& ScenarioRegistry::at(const std::string& name) const {
  const ScenarioDef* def = find(name);
  if (!def) {
    std::string known;
    for (const auto& [n, d] : defs_) known += (known.empty() ? "" : ", ") + n;
    throw CampaignError("unknown scenario '" + name + "' (known: " + known +
                        ")");
  }
  return *def;
}

std::vector<std::string> ScenarioRegistry::names() const {
  std::vector<std::string> out;
  for (const auto& [n, d] : defs_) out.push_back(n);
  return out;
}

void ScenarioRegistry::validate_params(const std::string& scenario,
                                       const ParamMap& params) const {
  const ScenarioDef& def = at(scenario);
  for (const auto& [name, value] : params.items()) {
    if (name == "seed") continue;
    bool known = false;
    for (const ParamSpec& p : def.params) known = known || p.name == name;
    if (!known) {
      throw CampaignError("scenario '" + scenario + "' has no param '" + name +
                          "'");
    }
  }
}

namespace {

using scenarios::Scenario;

// Shared knob readers, defaulting to the scenario struct's own defaults so a
// registered scenario with no overrides is exactly the paper configuration.
Time time_us(const ParamMap& pm, const char* name, Time fallback) {
  return Time{static_cast<std::int64_t>(pm.get_double(name, fallback.us()) *
                                        1e6)};
}

/// Shared "dataplane" knob: the in-switch DCFIT pipeline's recovery policy.
ParamSpec dataplane_param_spec() {
  return {"dataplane", ParamKind::kString, "",
          "in-switch pipeline policy: off|detect|drop|reroute|pfc_lift"};
}

dataplane::DataplaneConfig dataplane_cfg(const ParamMap& pm) {
  dataplane::DataplaneConfig cfg;
  const std::string s = pm.get_string("dataplane", "off");
  if (!dataplane::parse_policy(s, &cfg.policy)) {
    throw CampaignError("unknown dataplane policy '" + s +
                        "' (off|detect|drop|reroute|pfc_lift)");
  }
  return cfg;
}

ScenarioDef::Finisher loop_threshold_metrics(int loop_len, Rate bandwidth,
                                             int ttl, Rate inject) {
  return [=](const RunRecord&, MetricSink& out) {
    const double thr =
        analysis::BoundaryModel::deadlock_threshold(loop_len, bandwidth, ttl)
            .as_gbps();
    out.emplace_back("r_threshold_gbps", thr);
    out.emplace_back("threshold_residual_gbps", inject.as_gbps() - thr);
    out.emplace_back(
        "analytic_deadlock",
        analysis::BoundaryModel::predicts_deadlock(loop_len, bandwidth, ttl,
                                                   inject)
            ? 1
            : 0);
  };
}

scenarios::RoutingLoopParams loop_params(const ParamMap& pm) {
  scenarios::RoutingLoopParams p;
  p.loop_len = static_cast<int>(pm.get_int("loop_len", p.loop_len));
  p.bandwidth = Rate::gbps(pm.get_double("bw_gbps", p.bandwidth.as_gbps()));
  p.link_delay = time_us(pm, "link_delay_us", p.link_delay);
  p.ttl = static_cast<int>(pm.get_int("ttl", p.ttl));
  p.inject = Rate::gbps(pm.get_double("inject", p.inject.as_gbps()));
  p.packet_bytes =
      static_cast<std::uint32_t>(pm.get_int("packet_bytes", p.packet_bytes));
  p.xoff_bytes = pm.get_int("xoff_bytes", p.xoff_bytes);
  p.num_classes = static_cast<int>(pm.get_int("num_classes", p.num_classes));
  p.ttl_class_band =
      static_cast<int>(pm.get_int("ttl_class_band", p.ttl_class_band));
  p.dataplane = dataplane_cfg(pm);
  return p;
}

std::vector<ParamSpec> loop_param_specs() {
  return {
      {"loop_len", ParamKind::kInt, "", "switches in the routing loop"},
      {"bw_gbps", ParamKind::kDouble, "gbps", "link bandwidth"},
      {"link_delay_us", ParamKind::kDouble, "us", "per-link propagation"},
      {"ttl", ParamKind::kInt, "", "initial packet TTL"},
      {"inject", ParamKind::kDouble, "gbps", "injection rate; 0 = greedy"},
      {"packet_bytes", ParamKind::kInt, "", "frame size"},
      {"xoff_bytes", ParamKind::kInt, "", "static PFC threshold"},
      {"num_classes", ParamKind::kInt, "", "lossless priority classes"},
      {"ttl_class_band", ParamKind::kInt, "", "TTL band width; 0 = off"},
      dataplane_param_spec(),
  };
}

void register_routing_loop(ScenarioRegistry& reg) {
  ScenarioDef def;
  def.name = "routing_loop";
  def.description =
      "paper §3.1 / Fig.2: single flow into an n-switch routing loop "
      "(deadlock iff inject > n*B/TTL)";
  def.params = loop_param_specs();
  def.make = [](const ParamMap& pm) {
    return scenarios::make_routing_loop(loop_params(pm));
  };
  def.instrument = [](Scenario&, const ParamMap& pm) {
    const auto p = loop_params(pm);
    return loop_threshold_metrics(p.loop_len, p.bandwidth, p.ttl, p.inject);
  };
  reg.add(std::move(def));
}

void register_four_switch(ScenarioRegistry& reg) {
  ScenarioDef def;
  def.name = "four_switch";
  def.description =
      "paper §3.2-3.3 / Figs.3-5: A-B-C-D ring, two crossing flows, "
      "optional third flow and Fig.5 rate limit";
  def.params = {
      {"with_flow3", ParamKind::kBool, "", "add the Fig.4 third flow"},
      {"flow3_limit", ParamKind::kDouble, "gbps",
       "Fig.5 ingress limit on flow 3; 0 = unlimited"},
      {"bw_gbps", ParamKind::kDouble, "gbps", "link bandwidth"},
      {"link_delay_us", ParamKind::kDouble, "us", "per-link propagation"},
      {"packet_bytes", ParamKind::kInt, "", "frame size"},
      {"xoff_bytes", ParamKind::kInt, "", "static PFC threshold"},
      {"buffer_bytes", ParamKind::kInt, "", "switch buffer"},
      {"ttl", ParamKind::kInt, "", "initial packet TTL"},
      {"tx_jitter_ns", ParamKind::kDouble, "ns", "inter-frame jitter"},
      dataplane_param_spec(),
  };
  def.make = [](const ParamMap& pm) {
    scenarios::FourSwitchParams p;
    p.with_flow3 = pm.get_bool("with_flow3", p.with_flow3);
    p.flow3_limit =
        Rate::gbps(pm.get_double("flow3_limit", p.flow3_limit.as_gbps()));
    p.bandwidth = Rate::gbps(pm.get_double("bw_gbps", p.bandwidth.as_gbps()));
    p.link_delay = time_us(pm, "link_delay_us", p.link_delay);
    p.packet_bytes =
        static_cast<std::uint32_t>(pm.get_int("packet_bytes", p.packet_bytes));
    p.xoff_bytes = pm.get_int("xoff_bytes", p.xoff_bytes);
    p.buffer_bytes = pm.get_int("buffer_bytes", p.buffer_bytes);
    p.ttl = static_cast<std::uint8_t>(pm.get_int("ttl", p.ttl));
    p.tx_jitter = Time{static_cast<std::int64_t>(
        pm.get_double("tx_jitter_ns", p.tx_jitter.ns()) * 1e3)};
    p.seed = static_cast<std::uint64_t>(pm.get_int("seed", 1));
    p.dataplane = dataplane_cfg(pm);
    return scenarios::make_four_switch(p);
  };
  reg.add(std::move(def));
}

void register_ring(ScenarioRegistry& reg) {
  ScenarioDef def;
  def.name = "ring";
  def.description =
      "paper Fig.1: n-switch ring with span-s circulating flows";
  def.params = {
      {"num_switches", ParamKind::kInt, "", "switches in the ring"},
      {"span", ParamKind::kInt, "", "ring links each flow traverses"},
      {"bw_gbps", ParamKind::kDouble, "gbps", "link bandwidth"},
      {"link_delay_us", ParamKind::kDouble, "us", "per-link propagation"},
      {"packet_bytes", ParamKind::kInt, "", "frame size"},
      {"xoff_bytes", ParamKind::kInt, "", "static PFC threshold"},
      {"ttl", ParamKind::kInt, "", "initial packet TTL"},
      {"num_classes", ParamKind::kInt, "", "lossless priority classes"},
      {"hop_classes", ParamKind::kBool, "", "hop-count buffer classes"},
      {"tx_jitter_ns", ParamKind::kDouble, "ns", "inter-frame jitter"},
      dataplane_param_spec(),
  };
  def.make = [](const ParamMap& pm) {
    scenarios::RingDeadlockParams p;
    p.num_switches =
        static_cast<int>(pm.get_int("num_switches", p.num_switches));
    p.span = static_cast<int>(pm.get_int("span", p.span));
    p.bandwidth = Rate::gbps(pm.get_double("bw_gbps", p.bandwidth.as_gbps()));
    p.link_delay = time_us(pm, "link_delay_us", p.link_delay);
    p.packet_bytes =
        static_cast<std::uint32_t>(pm.get_int("packet_bytes", p.packet_bytes));
    p.xoff_bytes = pm.get_int("xoff_bytes", p.xoff_bytes);
    p.ttl = static_cast<std::uint8_t>(pm.get_int("ttl", p.ttl));
    p.num_classes = static_cast<int>(pm.get_int("num_classes", p.num_classes));
    p.hop_classes = pm.get_bool("hop_classes", p.hop_classes);
    p.tx_jitter = Time{static_cast<std::int64_t>(
        pm.get_double("tx_jitter_ns", p.tx_jitter.ns()) * 1e3)};
    p.seed = static_cast<std::uint64_t>(pm.get_int("seed", 1));
    p.dataplane = dataplane_cfg(pm);
    return scenarios::make_ring_deadlock(p);
  };
  reg.add(std::move(def));
}

void register_transient_loop(ScenarioRegistry& reg) {
  ScenarioDef def;
  def.name = "transient_loop";
  def.description =
      "paper §1: routes loop during [loop_start, +duration) then repair; "
      "the deadlock outlives the loop";
  def.params = {
      {"loop_len", ParamKind::kInt, "", "switches in the transient loop"},
      {"bw_gbps", ParamKind::kDouble, "gbps", "link bandwidth"},
      {"link_delay_us", ParamKind::kDouble, "us", "per-link propagation"},
      {"ttl", ParamKind::kInt, "", "initial packet TTL"},
      {"inject", ParamKind::kDouble, "gbps", "injection rate; 0 = greedy"},
      {"packet_bytes", ParamKind::kInt, "", "frame size"},
      {"xoff_bytes", ParamKind::kInt, "", "static PFC threshold"},
      {"loop_start_us", ParamKind::kDouble, "us", "loop formation time"},
      {"loop_duration_us", ParamKind::kDouble, "us", "loop lifetime"},
      {"num_classes", ParamKind::kInt, "", "lossless priority classes"},
      {"ttl_class_band", ParamKind::kInt, "", "TTL band width; 0 = off"},
      dataplane_param_spec(),
  };
  def.make = [](const ParamMap& pm) {
    scenarios::TransientLoopParams p;
    p.loop_len = static_cast<int>(pm.get_int("loop_len", p.loop_len));
    p.bandwidth = Rate::gbps(pm.get_double("bw_gbps", p.bandwidth.as_gbps()));
    p.link_delay = time_us(pm, "link_delay_us", p.link_delay);
    p.ttl = static_cast<int>(pm.get_int("ttl", p.ttl));
    p.inject = Rate::gbps(pm.get_double("inject", p.inject.as_gbps()));
    p.packet_bytes =
        static_cast<std::uint32_t>(pm.get_int("packet_bytes", p.packet_bytes));
    p.xoff_bytes = pm.get_int("xoff_bytes", p.xoff_bytes);
    p.loop_start = time_us(pm, "loop_start_us", p.loop_start);
    p.loop_duration = time_us(pm, "loop_duration_us", p.loop_duration);
    p.num_classes = static_cast<int>(pm.get_int("num_classes", p.num_classes));
    p.ttl_class_band =
        static_cast<int>(pm.get_int("ttl_class_band", p.ttl_class_band));
    p.dataplane = dataplane_cfg(pm);
    return scenarios::make_transient_loop(p);
  };
  def.instrument = [](Scenario&, const ParamMap& pm) {
    scenarios::TransientLoopParams p;
    const int loop_len = static_cast<int>(pm.get_int("loop_len", p.loop_len));
    const Rate bw = Rate::gbps(pm.get_double("bw_gbps", p.bandwidth.as_gbps()));
    const int ttl = static_cast<int>(pm.get_int("ttl", p.ttl));
    const Rate inject = Rate::gbps(pm.get_double("inject", p.inject.as_gbps()));
    return loop_threshold_metrics(loop_len, bw, ttl, inject);
  };
  reg.add(std::move(def));
}

void register_valley(ScenarioRegistry& reg) {
  ScenarioDef def;
  def.name = "valley";
  def.description =
      "paper §2 (Guo et al.): valley-path flows close a cycle in a tree "
      "fabric; strict up-down is the fix";
  def.params = {
      {"with_extra_flow", ParamKind::kBool, "", "add the tipping flow"},
      {"strict_up_down", ParamKind::kBool, "", "route valley-free instead"},
      {"bw_gbps", ParamKind::kDouble, "gbps", "link bandwidth"},
      {"link_delay_us", ParamKind::kDouble, "us", "per-link propagation"},
      {"packet_bytes", ParamKind::kInt, "", "frame size"},
      {"xoff_bytes", ParamKind::kInt, "", "static PFC threshold"},
      {"ttl", ParamKind::kInt, "", "initial packet TTL"},
      {"tx_jitter_ns", ParamKind::kDouble, "ns", "inter-frame jitter"},
      dataplane_param_spec(),
  };
  def.make = [](const ParamMap& pm) {
    scenarios::ValleyViolationParams p;
    p.with_extra_flow = pm.get_bool("with_extra_flow", p.with_extra_flow);
    p.strict_up_down = pm.get_bool("strict_up_down", p.strict_up_down);
    p.bandwidth = Rate::gbps(pm.get_double("bw_gbps", p.bandwidth.as_gbps()));
    p.link_delay = time_us(pm, "link_delay_us", p.link_delay);
    p.packet_bytes =
        static_cast<std::uint32_t>(pm.get_int("packet_bytes", p.packet_bytes));
    p.xoff_bytes = pm.get_int("xoff_bytes", p.xoff_bytes);
    p.ttl = static_cast<std::uint8_t>(pm.get_int("ttl", p.ttl));
    p.tx_jitter = Time{static_cast<std::int64_t>(
        pm.get_double("tx_jitter_ns", p.tx_jitter.ns()) * 1e3)};
    p.seed = static_cast<std::uint64_t>(pm.get_int("seed", 1));
    p.dataplane = dataplane_cfg(pm);
    return scenarios::make_valley_violation(p);
  };
  reg.add(std::move(def));
}

void register_incast(ScenarioRegistry& reg) {
  ScenarioDef def;
  def.name = "incast";
  def.description =
      "leaf-spine N-to-1 incast (PFC propagation / DCQCN workloads)";
  def.params = {
      {"num_leaves", ParamKind::kInt, "", "leaf switches"},
      {"num_spines", ParamKind::kInt, "", "spine switches"},
      {"hosts_per_leaf", ParamKind::kInt, "", "hosts per leaf"},
      {"senders", ParamKind::kInt, "", "sending hosts"},
      {"bw_gbps", ParamKind::kDouble, "gbps", "link bandwidth"},
      {"link_delay_us", ParamKind::kDouble, "us", "per-link propagation"},
      {"packet_bytes", ParamKind::kInt, "", "frame size"},
      {"xoff_bytes", ParamKind::kInt, "", "static PFC threshold"},
      {"ecn", ParamKind::kBool, "", "enable ECN marking"},
      {"dcqcn", ParamKind::kBool, "", "enable DCQCN pacers"},
      {"phantom_speed_fraction", ParamKind::kDouble, "",
       "phantom queue drain fraction"},
  };
  def.make = [](const ParamMap& pm) {
    scenarios::IncastParams p;
    p.num_leaves = static_cast<int>(pm.get_int("num_leaves", p.num_leaves));
    p.num_spines = static_cast<int>(pm.get_int("num_spines", p.num_spines));
    p.hosts_per_leaf =
        static_cast<int>(pm.get_int("hosts_per_leaf", p.hosts_per_leaf));
    p.num_senders = static_cast<int>(pm.get_int("senders", p.num_senders));
    p.bandwidth = Rate::gbps(pm.get_double("bw_gbps", p.bandwidth.as_gbps()));
    p.link_delay = time_us(pm, "link_delay_us", p.link_delay);
    p.packet_bytes =
        static_cast<std::uint32_t>(pm.get_int("packet_bytes", p.packet_bytes));
    p.xoff_bytes = pm.get_int("xoff_bytes", p.xoff_bytes);
    p.ecn = pm.get_bool("ecn", p.ecn);
    p.dcqcn = pm.get_bool("dcqcn", p.dcqcn);
    p.phantom_speed_fraction =
        pm.get_double("phantom_speed_fraction", p.phantom_speed_fraction);
    return scenarios::make_incast(p);
  };
  reg.add(std::move(def));
}

// bench_fluid_model as a campaign scenario: the packet run fills the main
// columns (deadlocked, detect_ms, goodput); the fluid twin of the same
// configuration is integrated inside the finisher and lands in the metrics,
// so one CSV row holds both verdicts and the §3.2 gap is a column diff.
void register_fluid_gap(ScenarioRegistry& reg) {
  ScenarioDef def;
  def.name = "fluid_gap";
  def.description =
      "fluid-vs-packet twin run (paper §3.2/§3.3): packet verdict in the "
      "core columns, fluid twin verdict + Eq.3 analytics in the metrics";
  def.params = {
      {"family", ParamKind::kString, "", "loop | four_switch"},
      {"loop_len", ParamKind::kInt, "", "loop: switches in the routing loop"},
      {"inject", ParamKind::kDouble, "gbps", "loop: injection rate"},
      {"ttl", ParamKind::kInt, "", "loop: initial packet TTL"},
      {"bw_gbps", ParamKind::kDouble, "gbps", "link bandwidth"},
      {"with_flow3", ParamKind::kBool, "", "four_switch: add the Fig.4 flow"},
      {"flow3_limit", ParamKind::kDouble, "gbps",
       "four_switch: flow-3 ingress limit; 0 = greedy"},
      {"fluid_run_ms", ParamKind::kDouble, "ms", "fluid integration horizon"},
  };
  def.make = [](const ParamMap& pm) {
    const std::string family = pm.get_string("family", "loop");
    if (family == "loop") {
      scenarios::RoutingLoopParams p;
      p.loop_len = static_cast<int>(pm.get_int("loop_len", p.loop_len));
      p.bandwidth =
          Rate::gbps(pm.get_double("bw_gbps", p.bandwidth.as_gbps()));
      p.ttl = static_cast<int>(pm.get_int("ttl", p.ttl));
      p.inject = Rate::gbps(pm.get_double("inject", p.inject.as_gbps()));
      return scenarios::make_routing_loop(p);
    }
    if (family == "four_switch") {
      scenarios::FourSwitchParams p;
      p.with_flow3 = pm.get_bool("with_flow3", true);
      p.flow3_limit =
          Rate::gbps(pm.get_double("flow3_limit", p.flow3_limit.as_gbps()));
      p.bandwidth =
          Rate::gbps(pm.get_double("bw_gbps", p.bandwidth.as_gbps()));
      p.seed = static_cast<std::uint64_t>(pm.get_int("seed", 1));
      return scenarios::make_four_switch(p);
    }
    throw CampaignError("fluid_gap: unknown family '" + family +
                        "' (loop | four_switch)");
  };
  def.instrument = [](Scenario&, const ParamMap& pm) -> ScenarioDef::Finisher {
    return [pm](const RunRecord&, MetricSink& out) {
      const std::string family = pm.get_string("family", "loop");
      const Time horizon{static_cast<std::int64_t>(
          pm.get_double("fluid_run_ms", 10.0) * 1e9)};
      analysis::FluidResult fr;
      if (family == "loop") {
        scenarios::RoutingLoopParams p;
        const int loop_len =
            static_cast<int>(pm.get_int("loop_len", p.loop_len));
        const Rate bw =
            Rate::gbps(pm.get_double("bw_gbps", p.bandwidth.as_gbps()));
        const int ttl = static_cast<int>(pm.get_int("ttl", p.ttl));
        const Rate inject =
            Rate::gbps(pm.get_double("inject", p.inject.as_gbps()));
        analysis::FluidModel fm =
            analysis::make_fluid_routing_loop(loop_len, bw, ttl, inject);
        fr = fm.run(horizon);
        out.emplace_back("r_threshold_gbps",
                         analysis::BoundaryModel::deadlock_threshold(
                             loop_len, bw, ttl)
                             .as_gbps());
        out.emplace_back("analytic_deadlock",
                         analysis::BoundaryModel::predicts_deadlock(
                             loop_len, bw, ttl, inject)
                             ? 1
                             : 0);
      } else {
        const bool with_flow3 = pm.get_bool("with_flow3", true);
        const double limit = pm.get_double("flow3_limit", 0.0);
        // The fluid model needs an explicit demand; greedy = line rate.
        const Rate flow3 = Rate::gbps(
            limit > 0 ? limit : pm.get_double("bw_gbps", 40.0));
        analysis::FluidFourSwitch fs =
            analysis::make_fluid_four_switch(with_flow3, flow3);
        fr = fs.model.run(horizon);
      }
      out.emplace_back("fluid_deadlocked", fr.deadlocked ? 1 : 0);
      out.emplace_back("fluid_deadlock_at_ms",
                       fr.deadlocked ? fr.deadlock_at.ms() : -1.0);
      out.emplace_back("fluid_cycle_queues",
                       static_cast<double>(fr.deadlock_queues.size()));
      double goodput = 0;
      for (const double bps : fr.mean_goodput_bps) goodput += bps;
      out.emplace_back("fluid_goodput_gbps", goodput / 1e9);
    };
  };
  reg.add(std::move(def));
}

// bench_risk_score as a campaign scenario: the slack-link rule is scored at
// t=0 over the live network, the packet outcome lands in `deadlocked`, and
// prediction-vs-outcome agreement is a per-row comparison in the sweep CSV.
void register_risk_probe(ScenarioRegistry& reg) {
  ScenarioDef def;
  def.name = "risk_probe";
  def.description =
      "tighter-than-CBD risk scoring: slack-link rule prediction in the "
      "metrics, packet outcome in the core columns";
  def.params = {
      {"family", ParamKind::kString, "",
       "four_switch | loop | ring | incast | valley"},
      {"with_flow3", ParamKind::kBool, "", "four_switch: add the Fig.4 flow"},
      {"flow3_limit", ParamKind::kDouble, "gbps",
       "four_switch: flow-3 ingress limit; 0 = greedy"},
      {"with_extra_flow", ParamKind::kBool, "", "valley: add the tipping flow"},
      {"inject", ParamKind::kDouble, "gbps", "loop: injection rate"},
  };
  def.make = [](const ParamMap& pm) {
    const std::string family = pm.get_string("family", "four_switch");
    const auto seed = static_cast<std::uint64_t>(pm.get_int("seed", 1));
    if (family == "four_switch") {
      scenarios::FourSwitchParams p;
      p.with_flow3 = pm.get_bool("with_flow3", p.with_flow3);
      p.flow3_limit =
          Rate::gbps(pm.get_double("flow3_limit", p.flow3_limit.as_gbps()));
      p.seed = seed;
      return scenarios::make_four_switch(p);
    }
    if (family == "loop") {
      scenarios::RoutingLoopParams p;
      p.inject = Rate::gbps(pm.get_double("inject", p.inject.as_gbps()));
      return scenarios::make_routing_loop(p);
    }
    if (family == "ring") {
      scenarios::RingDeadlockParams p;
      p.seed = seed;
      return scenarios::make_ring_deadlock(p);
    }
    if (family == "incast") {
      return scenarios::make_incast(scenarios::IncastParams{});
    }
    if (family == "valley") {
      scenarios::ValleyViolationParams p;
      p.with_extra_flow = pm.get_bool("with_extra_flow", p.with_extra_flow);
      p.seed = seed;
      return scenarios::make_valley_violation(p);
    }
    throw CampaignError("risk_probe: unknown family '" + family +
                        "' (four_switch | loop | ring | incast | valley)");
  };
  def.instrument = [](Scenario& s, const ParamMap& pm) {
    // Assess at t=0, before any packet moves — the same vantage point the
    // standalone bench uses. Demands mirror the knobs that cap flows.
    const std::string family = pm.get_string("family", "four_switch");
    std::vector<Rate> demands;
    if (family == "loop") {
      demands = {Rate::gbps(pm.get_double(
          "inject", scenarios::RoutingLoopParams{}.inject.as_gbps()))};
    } else if (family == "four_switch") {
      const double limit = pm.get_double("flow3_limit", 0.0);
      if (pm.get_bool("with_flow3", false) && limit > 0) {
        demands = {Rate::zero(), Rate::zero(), Rate::gbps(limit)};
      }
    }
    const analysis::RiskReport risk =
        analysis::assess_deadlock_risk(*s.net, s.flows, demands);
    const double cbd = risk.cbd_present ? 1 : 0;
    const double predicted = risk.deadlock_reachable() ? 1 : 0;
    const double max_risk = risk.max_risk;
    const auto cycles = static_cast<double>(risk.cycles.size());
    double min_util = 0;
    double slack = -1;
    if (!risk.cycles.empty()) {
      min_util = risk.cycles[0].min_utilization;
      slack = risk.cycles[0].slack_links;
    }
    return [=](const RunRecord&, MetricSink& out) {
      out.emplace_back("cbd_present", cbd);
      out.emplace_back("predicted_lockable", predicted);
      out.emplace_back("max_risk", max_risk);
      out.emplace_back("cycles", cycles);
      out.emplace_back("min_cycle_util", min_util);
      out.emplace_back("slack_links", slack);
    };
  };
  reg.add(std::move(def));
}

}  // namespace

void register_builtin_scenarios(ScenarioRegistry& reg) {
  register_routing_loop(reg);
  register_four_switch(reg);
  register_ring(reg);
  register_transient_loop(reg);
  register_valley(reg);
  register_incast(reg);
  register_fluid_gap(reg);
  register_risk_probe(reg);
}

}  // namespace dcdl::campaign
