// Scenario registry: string names + typed parameter overrides mapped onto
// the scenarios::make_* factories, so sweeps, the dcdl_sweep CLI, and the
// bench harnesses all construct experiments through one declarative surface.
//
// The registry is extensible at runtime: a bench can register a bespoke
// workload (extra mitigation wiring, custom instrumentation) and sweep it
// with the same executor and result sink as the built-ins.
#pragma once

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "dcdl/campaign/param.hpp"
#include "dcdl/scenarios/scenario.hpp"

namespace dcdl::campaign {

/// Ordered list of named scenario-specific metrics emitted per run.
using MetricSink = std::vector<std::pair<std::string, double>>;

struct RunRecord;  // result.hpp

struct ScenarioDef {
  std::string name;
  std::string description;
  /// Declared knobs; sweeps over undeclared names are rejected up front.
  std::vector<ParamSpec> params;
  /// Builds a ready-to-run scenario from the (possibly partial) overrides.
  std::function<scenarios::Scenario(const ParamMap&)> make;

  /// Optional per-run instrumentation: called after `make`, before the
  /// simulation runs, so it can attach trace hooks. The returned finisher
  /// is invoked at stop time (after the measured run, before the drain
  /// phase) with the core record filled in, to append extra metrics.
  using Finisher = std::function<void(const RunRecord&, MetricSink&)>;
  std::function<Finisher(scenarios::Scenario&, const ParamMap&)> instrument;
};

class ScenarioRegistry {
 public:
  /// Process-wide registry preloaded with the built-in scenarios
  /// (routing_loop, four_switch, ring, transient_loop, valley, incast,
  /// fluid_gap, risk_probe).
  /// Register extensions before launching an executor; the executor's
  /// worker threads only read.
  static ScenarioRegistry& global();

  /// Registers a new scenario; throws CampaignError on a duplicate name.
  void add(ScenarioDef def);
  /// Registers or overwrites (bench-local variants of a built-in).
  void replace(ScenarioDef def);

  const ScenarioDef* find(const std::string& name) const;
  /// Like find, but throws CampaignError with the known names on a miss.
  const ScenarioDef& at(const std::string& name) const;
  std::vector<std::string> names() const;

  /// Throws CampaignError if `params` contains a name the scenario does not
  /// declare (almost always a typo in a sweep spec). "seed" is always
  /// accepted: the sweep layer injects it for every run.
  void validate_params(const std::string& scenario,
                       const ParamMap& params) const;

 private:
  std::map<std::string, ScenarioDef> defs_;
};

/// Registers the built-in paper scenarios into `reg` (used by global();
/// exposed so tests can build isolated registries).
void register_builtin_scenarios(ScenarioRegistry& reg);

}  // namespace dcdl::campaign
