#include "dcdl/campaign/result.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <set>
#include <system_error>

namespace dcdl::campaign {

const char* to_string(RunStatus status) {
  switch (status) {
    case RunStatus::kOk: return "ok";
    case RunStatus::kFailed: return "failed";
    case RunStatus::kTimeout: return "timeout";
    case RunStatus::kCancelled: return "cancelled";
  }
  return "?";
}

std::size_t CampaignResult::count(RunStatus status) const {
  std::size_t n = 0;
  for (const RunRecord& r : records) n += r.status == status ? 1 : 0;
  return n;
}

namespace {

// Minimal deterministic JSON emitter: insertion-ordered objects, shortest
// round-trip doubles, no locale dependence.
class Json {
 public:
  void begin_object() { punct('{'); }
  void end_object() { close('}'); }
  void begin_array() { punct('['); }
  void end_array() { close(']'); }

  void key(const std::string& k) {
    comma();
    string(k);
    out_ += ':';
    fresh_ = true;  // the value follows without a comma
  }

  void value(const std::string& v) { comma(); string(v); }
  void value(const char* v) { value(std::string(v)); }
  void value(double v) { comma(); out_ += format_double(v); }
  void value(std::int64_t v) { comma(); out_ += std::to_string(v); }
  void value(std::uint64_t v) { comma(); out_ += std::to_string(v); }
  void value(bool v) { comma(); out_ += v ? "true" : "false"; }
  void value(const ParamValue& v) {
    switch (v.kind()) {
      case ParamKind::kInt: value(v.as_int()); break;
      case ParamKind::kDouble: value(v.as_double()); break;
      case ParamKind::kBool: value(v.as_bool()); break;
      case ParamKind::kString: value(v.as_string()); break;
    }
  }

  std::string take() { return std::move(out_); }

 private:
  void comma() {
    if (!fresh_) out_ += ',';
    fresh_ = false;
  }
  void punct(char c) {
    comma();
    out_ += c;
    fresh_ = true;
  }
  void close(char c) {
    out_ += c;
    fresh_ = false;
  }
  void string(const std::string& s) {
    out_ += '"';
    for (const char c : s) {
      switch (c) {
        case '"': out_ += "\\\""; break;
        case '\\': out_ += "\\\\"; break;
        case '\n': out_ += "\\n"; break;
        case '\t': out_ += "\\t"; break;
        case '\r': out_ += "\\r"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out_ += buf;
          } else {
            out_ += c;
          }
      }
    }
    out_ += '"';
  }

  std::string out_;
  bool fresh_ = true;
};

void emit_run(Json& j, const RunRecord& r, const WriteOptions& opts) {
  j.begin_object();
  j.key("run"); j.value(std::int64_t{r.run_index});
  j.key("cell"); j.value(std::int64_t{r.cell_index});
  j.key("seed_index"); j.value(std::int64_t{r.seed_index});
  j.key("scenario"); j.value(r.scenario);
  j.key("seed"); j.value(r.seed);
  j.key("params");
  j.begin_object();
  for (const auto& [name, value] : r.params.items()) {
    j.key(name);
    j.value(value);
  }
  j.end_object();
  j.key("status"); j.value(to_string(r.status));
  if (!r.error.empty()) { j.key("error"); j.value(r.error); }
  if (r.status == RunStatus::kOk) {
    j.key("deadlocked"); j.value(r.deadlocked);
    j.key("detect_ms"); j.value(r.detect_ms);
    j.key("trapped_bytes"); j.value(r.trapped_bytes);
    j.key("goodput_gbps"); j.value(r.goodput_gbps);
    j.key("pause_assertions"); j.value(r.pause_assertions);
    j.key("detection_latency_ns"); j.value(r.detection_latency_ns);
    j.key("recovery_time_ns"); j.value(r.recovery_time_ns);
    j.key("false_positive"); j.value(r.false_positive);
    j.key("hybrid_mode"); j.value(r.hybrid_mode);
    j.key("zoom_events"); j.value(r.zoom_events);
    j.key("fluid_fraction"); j.value(r.fluid_fraction);
    j.key("delivered");
    j.begin_array();
    for (const auto& [flow, bytes] : r.delivered) {
      j.begin_object();
      j.key("flow"); j.value(std::int64_t{flow});
      j.key("bytes"); j.value(bytes);
      j.end_object();
    }
    j.end_array();
    j.key("metrics");
    j.begin_object();
    for (const auto& [name, value] : r.metrics) {
      j.key(name);
      j.value(value);
    }
    j.end_object();
    j.key("events"); j.value(r.events);
    j.key("telemetry");
    j.begin_object();
    for (const auto& [name, value] : r.telemetry) {
      j.key(name);
      j.value(value);
    }
    j.end_object();
    j.key("probe");
    j.begin_object();
    for (const auto& [name, value] : r.probe) {
      j.key(name);
      j.value(value);
    }
    j.end_object();
    j.key("alerts");
    j.begin_object();
    for (const auto& [name, value] : r.alerts) {
      j.key(name);
      j.value(value);
    }
    j.end_object();
  }
  if (opts.include_timing) {
    j.key("timing");
    j.begin_object();
    j.key("wall_ms"); j.value(r.wall_ms);
    j.end_object();
  }
  j.end_object();
}

}  // namespace

std::string run_to_json(const RunRecord& record, const WriteOptions& opts) {
  Json j;
  emit_run(j, record, opts);
  return j.take();
}

std::string to_json(const CampaignResult& result, const WriteOptions& opts) {
  Json j;
  j.begin_object();
  j.key("schema"); j.value(kResultSchema);
  j.key("root_seed"); j.value(result.root_seed);
  j.key("run_count"); j.value(std::int64_t{
      static_cast<std::int64_t>(result.records.size())});
  if (opts.include_timing) {
    j.key("timing");
    j.begin_object();
    j.key("total_wall_ms"); j.value(result.total_wall_ms);
    j.key("jobs"); j.value(std::int64_t{result.jobs});
    j.end_object();
  }
  j.key("runs");
  j.begin_array();
  for (const RunRecord& r : result.records) emit_run(j, r, opts);
  j.end_array();
  j.end_object();
  std::string out = j.take();
  out += '\n';
  return out;
}

std::string to_csv(const CampaignResult& result) {
  std::set<std::string> param_names;
  std::set<std::string> metric_names;
  for (const RunRecord& r : result.records) {
    for (const auto& [name, value] : r.params.items()) param_names.insert(name);
    for (const auto& [name, value] : r.metrics) metric_names.insert(name);
  }

  std::string out =
      "run,cell,seed_index,scenario,seed,status,deadlocked,detect_ms,"
      "trapped_bytes,goodput_gbps,pause_assertions,events,"
      "detection_latency_ns,recovery_time_ns,false_positive,hybrid_mode,"
      "zoom_events,fluid_fraction";
  for (const std::string& n : param_names) out += ",param." + n;
  for (const std::string& n : metric_names) out += ",metric." + n;
  out += '\n';

  for (const RunRecord& r : result.records) {
    out += std::to_string(r.run_index);
    out += ',' + std::to_string(r.cell_index);
    out += ',' + std::to_string(r.seed_index);
    out += ',' + r.scenario;
    out += ',' + std::to_string(r.seed);
    out += ',';
    out += to_string(r.status);
    const bool ok = r.status == RunStatus::kOk;
    out += ',' + std::string(ok ? (r.deadlocked ? "1" : "0") : "");
    out += ',' + (ok ? format_double(r.detect_ms) : "");
    out += ',' + (ok ? std::to_string(r.trapped_bytes) : "");
    out += ',' + (ok ? format_double(r.goodput_gbps) : "");
    out += ',' + (ok ? std::to_string(r.pause_assertions) : "");
    out += ',' + (ok ? std::to_string(r.events) : "");
    out += ',' + (ok ? format_double(r.detection_latency_ns) : "");
    out += ',' + (ok ? format_double(r.recovery_time_ns) : "");
    out += ',' + std::string(ok ? (r.false_positive ? "1" : "0") : "");
    out += ',' + std::string(ok ? r.hybrid_mode : "");
    out += ',' + (ok ? std::to_string(r.zoom_events) : "");
    out += ',' + (ok ? format_double(r.fluid_fraction) : "");
    for (const std::string& n : param_names) {
      out += ',';
      if (r.params.has(n)) out += r.params.get_string(n, "");
    }
    for (const std::string& n : metric_names) {
      out += ',';
      for (const auto& [name, value] : r.metrics) {
        if (name == n) {
          out += format_double(value);
          break;
        }
      }
    }
    out += '\n';
  }
  return out;
}

void write_text_file(const std::string& path, const std::string& content) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) throw CampaignError("cannot open '" + path + "' for writing");
  const std::size_t written = std::fwrite(content.data(), 1, content.size(), f);
  const int rc = std::fclose(f);
  if (written != content.size() || rc != 0) {
    throw CampaignError("short write to '" + path + "'");
  }
}

void ensure_output_dir(const std::string& dir) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    throw CampaignError("cannot create output directory '" + dir +
                        "': " + ec.message());
  }
  const std::string probe = dir + "/.dcdl_write_probe";
  std::FILE* f = std::fopen(probe.c_str(), "w");
  if (!f) {
    throw CampaignError("output directory '" + dir + "' is not writable");
  }
  std::fclose(f);
  std::filesystem::remove(probe, ec);
}

}  // namespace dcdl::campaign
