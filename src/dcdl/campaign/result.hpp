// Structured campaign results: one record per run, aggregated into
// machine-readable JSON and CSV artifacts with a versioned schema.
//
// Determinism contract: everything serialized by default depends only on the
// sweep spec and root seed — never on wall clock, thread count, or
// scheduling — so re-running a campaign diffs clean. Wall-clock accounting
// exists on every record but is only serialized under
// WriteOptions::include_timing.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "dcdl/campaign/registry.hpp"
#include "dcdl/campaign/sweep.hpp"
#include "dcdl/net/packet.hpp"

namespace dcdl::campaign {

/// Schema identifier embedded in every JSON artifact; bump on any
/// backwards-incompatible field change and document in DESIGN.md.
/// v2: every ok run carries a "telemetry" object — the uniform metrics
/// snapshot (net.* counters, sim.* engine gauges) taken at stop time.
/// v3: ok runs additionally carry the in-band dataplane columns
/// "detection_latency_ns", "recovery_time_ns" (-1 = no such event) and
/// "false_positive". Additive: v1/v2 readers keying on known field names
/// parse v3 artifacts unchanged.
/// v4: ok runs carry the hybrid-engine columns "hybrid_mode" ("off" /
/// "static" / "risk"), "zoom_events" (region escalations + de-escalations)
/// and "fluid_fraction" (share of flow-time integrated at fluid level).
/// Additive over v3 in the same way.
/// v5: ok runs carry a "probe" object — the dcdl::probe summary (series
/// max/mean plus FCT / PFC-pause / detection / recovery / hop-wait
/// histogram percentiles) captured at stop time. Additive over v4; the CSV
/// layout is unchanged (probe values live in the JSON only).
/// v6: ok runs carry an "alerts" object — the dcdl::watch early-warning
/// summary (emitted fire counts by severity, first-fire times, per-rule
/// fire counts, per-signal maxima, and "lead_ms" — the DeadlockMonitor
/// confirmation instant minus the first critical alert — when both exist).
/// The probe object additionally gains p999_us percentile columns.
/// Additive over v5 in the same JSON-only way; the CSV layout is
/// unchanged.
inline constexpr const char* kResultSchema = "dcdl.campaign.v6";

enum class RunStatus {
  kOk,         ///< ran to completion
  kFailed,     ///< factory/simulation raised (exception or contract breach)
  kTimeout,    ///< per-run wall-clock budget exceeded; metrics partial
  kCancelled,  ///< campaign cancelled before/while this run executed
};
const char* to_string(RunStatus status);

struct RunRecord {
  int run_index = 0;
  int cell_index = 0;
  int seed_index = 0;
  std::string scenario;
  ParamMap params;
  std::uint64_t seed = 0;

  RunStatus status = RunStatus::kCancelled;
  std::string error;  ///< failure description when status == kFailed

  // Core metrics (valid when status == kOk).
  bool deadlocked = false;
  double detect_ms = -1;  ///< online detection time; -1 = never confirmed
  std::int64_t trapped_bytes = 0;
  double goodput_gbps = 0;  ///< aggregate delivered*8/run_for at stop time
  std::uint64_t pause_assertions = 0;  ///< Xoff count up to stop time
  /// In-band dataplane pipeline (schema v3; all -1/false when it is off).
  double detection_latency_ns = -1;  ///< first in-band confirm; -1 = none
  double recovery_time_ns = -1;  ///< first recovery minus confirm; -1 = none
  /// The pipeline confirmed a cycle in a run that did not deadlock and
  /// took no recovery action — the confirmation itself was spurious.
  bool false_positive = false;
  /// Hybrid fluid/packet engine (schema v4; "off"/0/0 when it is off).
  std::string hybrid_mode = "off";
  std::uint64_t zoom_events = 0;   ///< region escalations + de-escalations
  double fluid_fraction = 0;       ///< flow-time share at fluid level
  std::vector<std::pair<FlowId, std::int64_t>> delivered;  ///< per flow
  /// Scenario-specific metrics from the ScenarioDef instrument hook.
  MetricSink metrics;
  /// Simulator events executed (deterministic for a given spec+seed).
  std::uint64_t events = 0;
  /// The uniform telemetry snapshot (flattened name -> value, registration
  /// order), sampled at stop time — see telemetry::RunTelemetry. Like every
  /// serialized field, deterministic for a given spec+seed.
  std::vector<std::pair<std::string, double>> telemetry;
  /// Time-series probe summary (schema v5): series max/mean and latency
  /// histogram percentiles, flattened name -> value in emission order.
  /// Captured at the same stop instant as `telemetry`; JSON-only (the CSV
  /// column set is unchanged).
  std::vector<std::pair<std::string, double>> probe;
  /// Early-warning alert summary (schema v6): dcdl::watch's digest plus
  /// "lead_ms" when both a critical alert and a monitor confirmation
  /// happened. Same stop-instant capture and JSON-only story as `probe`.
  std::vector<std::pair<std::string, double>> alerts;

  // Wall-clock accounting — excluded from artifacts by default.
  double wall_ms = 0;
};

struct CampaignResult {
  std::uint64_t root_seed = 0;
  std::vector<RunRecord> records;  ///< in run_index order

  // Timing-only (never in deterministic artifacts).
  double total_wall_ms = 0;
  int jobs = 1;

  std::size_t count(RunStatus status) const;
};

struct WriteOptions {
  /// Adds per-run "timing" objects and a campaign "timing" header. Off by
  /// default: timing is nondeterministic and would break artifact diffing.
  bool include_timing = false;
};

std::string to_json(const CampaignResult& result, const WriteOptions& = {});
/// One record as a standalone JSON object (same field layout as an entry of
/// "runs"); the standalone-reproduction story for a single cell.
std::string run_to_json(const RunRecord& record, const WriteOptions& = {});

/// Flat table: core columns, then every param column, then every
/// scenario-metric column (union across records, sorted by name).
std::string to_csv(const CampaignResult& result);

/// Overwrites `path` with `content`; throws CampaignError on I/O failure.
void write_text_file(const std::string& path, const std::string& content);

/// Creates `dir` (and parents) and verifies it is writable by probing a
/// temporary file; throws CampaignError otherwise. The shared front door
/// for every CLI `--trace`/output directory, so an unwritable path fails
/// fast with one clear message instead of a per-artifact I/O error
/// mid-sweep.
void ensure_output_dir(const std::string& dir);

}  // namespace dcdl::campaign
