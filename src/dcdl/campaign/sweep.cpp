#include "dcdl/campaign/sweep.hpp"

#include <cstdio>
#include <cstdlib>

namespace dcdl::campaign {

GridAxis linspace_axis(const std::string& param, double lo, double hi,
                       int steps) {
  if (steps < 1) throw CampaignError("axis '" + param + "': steps must be >= 1");
  GridAxis axis;
  axis.param = param;
  for (int i = 0; i < steps; ++i) {
    const double v =
        steps == 1 ? lo : lo + (hi - lo) * i / static_cast<double>(steps - 1);
    axis.values.push_back(ParamValue::of_double(v));
  }
  return axis;
}

std::uint64_t derive_seed(std::uint64_t root_seed, int run_index) {
  // SplitMix64 over the stream position; the golden-ratio stride keeps
  // adjacent ordinals decorrelated.
  std::uint64_t z = root_seed +
                    0x9E3779B97F4A7C15ULL *
                        (static_cast<std::uint64_t>(run_index) + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::vector<RunSpec> expand(const SweepSpec& spec) {
  if (spec.scenario.empty()) throw CampaignError("sweep needs a scenario");
  if (spec.seeds_per_cell < 1) {
    throw CampaignError("seeds_per_cell must be >= 1");
  }
  std::size_t cells = 1;
  for (const GridAxis& axis : spec.axes) {
    if (axis.values.empty()) {
      throw CampaignError("axis '" + axis.param + "' has no values");
    }
    cells *= axis.values.size();
  }

  std::vector<RunSpec> out;
  out.reserve(cells * static_cast<std::size_t>(spec.seeds_per_cell));
  for (std::size_t cell = 0; cell < cells; ++cell) {
    // Decode the cell ordinal into per-axis indices, last axis fastest.
    ParamMap params = spec.base;
    std::size_t rest = cell;
    for (std::size_t a = spec.axes.size(); a-- > 0;) {
      const GridAxis& axis = spec.axes[a];
      params.set(axis.param, axis.values[rest % axis.values.size()]);
      rest /= axis.values.size();
    }
    for (int s = 0; s < spec.seeds_per_cell; ++s) {
      RunSpec run;
      run.scenario = spec.scenario;
      run.cell_index = static_cast<int>(cell);
      run.seed_index = s;
      run.run_index = static_cast<int>(out.size());
      run.seed = derive_seed(spec.root_seed, run.run_index);
      run.params = params;
      run.params.set("seed",
                     ParamValue::of_int(static_cast<std::int64_t>(run.seed)));
      run.run_for = spec.run_for;
      run.drain_grace = spec.drain_grace;
      run.monitor_dwell = spec.monitor_dwell;
      out.push_back(std::move(run));
    }
  }
  return out;
}

namespace {

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t end = text.find(sep, start);
    if (end == std::string::npos) end = text.size();
    std::string piece = text.substr(start, end - start);
    // Trim surrounding whitespace.
    while (!piece.empty() && piece.front() == ' ') piece.erase(piece.begin());
    while (!piece.empty() && piece.back() == ' ') piece.pop_back();
    if (!piece.empty()) out.push_back(std::move(piece));
    start = end + 1;
  }
  return out;
}

double parse_number(const std::string& text, std::string* unit,
                    const std::string& context) {
  const char* begin = text.c_str();
  char* end = nullptr;
  const double v = std::strtod(begin, &end);
  if (end == begin) {
    throw CampaignError("grid '" + context + "': expected a number, got '" +
                        text + "'");
  }
  if (unit) *unit = std::string(end);
  return v;
}

GridAxis parse_axis(const std::string& term) {
  const auto eq = term.find('=');
  if (eq == std::string::npos || eq == 0) {
    throw CampaignError("grid term '" + term + "' is not name=values");
  }
  GridAxis axis;
  axis.param = term.substr(0, eq);
  const std::string values = term.substr(eq + 1);

  const auto dots = values.find("..");
  if (dots != std::string::npos) {
    // name=lo..hi[unit]:steps
    const auto colon = values.rfind(':');
    if (colon == std::string::npos || colon < dots) {
      throw CampaignError("grid term '" + term +
                          "': range needs ':steps' (e.g. 2..8gbps:7)");
    }
    const double lo = parse_number(values.substr(0, dots), nullptr, term);
    std::string unit;
    const double hi =
        parse_number(values.substr(dots + 2, colon - dots - 2), &unit, term);
    const long steps = std::strtol(values.c_str() + colon + 1, nullptr, 10);
    if (steps < 1) {
      throw CampaignError("grid term '" + term + "': steps must be >= 1");
    }
    return linspace_axis(axis.param, lo, hi, static_cast<int>(steps));
  }

  for (const std::string& item : split(values, ',')) {
    axis.values.push_back(ParamValue::parse(item));
  }
  if (axis.values.empty()) {
    throw CampaignError("grid term '" + term + "' has no values");
  }
  return axis;
}

}  // namespace

std::vector<GridAxis> parse_grid(const std::string& text) {
  std::vector<GridAxis> axes;
  for (const std::string& term : split(text, ';')) {
    axes.push_back(parse_axis(term));
  }
  return axes;
}

std::string format_progress(std::size_t done, std::size_t total,
                            int last_run_index, const std::string& last_status,
                            double elapsed_s) {
  char buf[160];
  int n = std::snprintf(buf, sizeof(buf), "  %zu/%zu run(s) done", done, total);
  std::string out(buf, static_cast<std::size_t>(n));
  if (last_run_index >= 0) {
    n = std::snprintf(buf, sizeof(buf), " (last: run %d %s)", last_run_index,
                      last_status.c_str());
    out.append(buf, static_cast<std::size_t>(n));
  }
  if (done == 0 || elapsed_s <= 0) {
    // No completed run (or no elapsed wall time) yet: any rate/ETA here
    // would be a 0/0 extrapolation, so render explicit placeholders.
    out += " --.- run/s, eta --:--";
    return out;
  }
  const double rate = static_cast<double>(done) / elapsed_s;
  const double eta_s = static_cast<double>(total - done) / rate;
  n = std::snprintf(buf, sizeof(buf), " %.1f run/s, eta %.0fs", rate, eta_s);
  out.append(buf, static_cast<std::size_t>(n));
  return out;
}

void apply_sets(ParamMap& out, const std::string& text) {
  for (const std::string& term : split(text, ';')) {
    const auto eq = term.find('=');
    if (eq == std::string::npos || eq == 0) {
      throw CampaignError("set term '" + term + "' is not name=value");
    }
    out.set(term.substr(0, eq), ParamValue::parse(term.substr(eq + 1)));
  }
}

}  // namespace dcdl::campaign
