// Sweep specification: cartesian grids over scenario parameters plus
// deterministic per-run seed streams derived from one root seed.
//
// A sweep expands to a flat list of RunSpecs whose order — and whose seeds —
// depend only on the spec, never on thread scheduling, so a campaign's
// artifacts are byte-identical at any --jobs and any single cell can be
// re-executed standalone to reproduce its record.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dcdl/campaign/param.hpp"
#include "dcdl/common/units.hpp"

namespace dcdl::campaign {

/// One grid dimension: the parameter name and its ordered values.
struct GridAxis {
  std::string param;
  std::vector<ParamValue> values;
};

/// Inclusive linear spacing lo..hi with `steps` points (steps >= 1; a single
/// step collapses to lo).
GridAxis linspace_axis(const std::string& param, double lo, double hi,
                       int steps);

struct SweepSpec {
  std::string scenario;
  /// Fixed overrides applied to every cell (grid axes take precedence).
  ParamMap base;
  /// Cartesian grid; the last axis varies fastest in expansion order.
  std::vector<GridAxis> axes;
  /// Independent replicas per cell, each with its own derived seed.
  int seeds_per_cell = 1;
  std::uint64_t root_seed = 1;

  Time run_for = Time{6'000'000'000};         // 6 ms
  Time drain_grace = Time{16'000'000'000};    // 16 ms
  Time monitor_dwell = Time{1'000'000'000};   // 1 ms
};

/// One fully-resolved simulation cell, self-contained: re-running a RunSpec
/// standalone reproduces the campaign's record for it exactly.
struct RunSpec {
  std::string scenario;
  ParamMap params;  // base + axis values + the derived "seed"
  std::uint64_t seed = 0;
  int run_index = 0;   // global ordinal within the campaign
  int cell_index = 0;  // grid cell (ignores the seed replica)
  int seed_index = 0;  // replica within the cell
  Time run_for = Time{6'000'000'000};
  Time drain_grace = Time{16'000'000'000};
  Time monitor_dwell = Time{1'000'000'000};
};

/// SplitMix64 stream: statistically independent seeds per run ordinal,
/// stable across platforms and thread counts.
std::uint64_t derive_seed(std::uint64_t root_seed, int run_index);

/// Cartesian expansion; throws CampaignError on an empty axis or a
/// non-positive seed count.
std::vector<RunSpec> expand(const SweepSpec& spec);

/// Parses a grid description, the CLI/bench surface for sweeps:
///   "inject=2..8gbps:7"            linear range, 7 points (unit optional)
///   "ttl=8,16,32"                  explicit list (numbers or enum strings)
///   "inject=2..8gbps:7;ttl=8,16"   multiple axes, ';'-separated
/// Throws CampaignError with the offending term on malformed input.
std::vector<GridAxis> parse_grid(const std::string& text);

/// Parses "name=value;name2=value2" fixed overrides into `out`.
void apply_sets(ParamMap& out, const std::string& text);

/// Renders one `dcdl_sweep --progress` status line (no trailing newline).
/// Before the first run completes (done == 0) — or when the wall clock has
/// not advanced (elapsed_s <= 0) — the observed rate and the ETA it implies
/// are meaningless, so the line shows `--.- run/s, eta --:--` instead of an
/// inf/nan extrapolation. `last_run_index` < 0 omits the "(last: ...)"
/// segment (used for the initial 0/N line printed at sweep start).
std::string format_progress(std::size_t done, std::size_t total,
                            int last_run_index, const std::string& last_status,
                            double elapsed_s);

}  // namespace dcdl::campaign
