// Lightweight contract checks in the spirit of the Core Guidelines'
// Expects/Ensures. Always on (the simulator is not a hot inner loop for
// users; correctness of accounting matters more than the branch).
#pragma once

#include <cstdio>
#include <cstdlib>

namespace dcdl::detail {

/// Optional per-thread override of the abort behaviour. When set, a contract
/// violation calls the handler instead of aborting; the handler must not
/// return (it throws). The campaign executor uses this to capture a broken
/// run as a failed record instead of killing the whole campaign process.
using ContractHandler = void (*)(const char* kind, const char* expr,
                                 const char* file, int line);
inline thread_local ContractHandler contract_handler = nullptr;

[[noreturn]] inline void contract_fail(const char* kind, const char* expr,
                                       const char* file, int line) {
  if (contract_handler != nullptr) {
    contract_handler(kind, expr, file, line);
  }
  std::fprintf(stderr, "dcdl: %s violated: %s at %s:%d\n", kind, expr, file,
               line);
  std::abort();
}

}  // namespace dcdl::detail

#define DCDL_EXPECTS(cond)                                                   \
  ((cond) ? void(0)                                                          \
          : ::dcdl::detail::contract_fail("precondition", #cond, __FILE__,   \
                                          __LINE__))
#define DCDL_ENSURES(cond)                                                   \
  ((cond) ? void(0)                                                          \
          : ::dcdl::detail::contract_fail("postcondition", #cond, __FILE__,  \
                                          __LINE__))
#define DCDL_ASSERT(cond)                                                    \
  ((cond) ? void(0)                                                          \
          : ::dcdl::detail::contract_fail("invariant", #cond, __FILE__,      \
                                          __LINE__))
