#include "dcdl/common/flags.hpp"

#include <cstdio>
#include <cstdlib>
#include <thread>

#include "dcdl/common/contract.hpp"

namespace dcdl {

Flags::Flags(int argc, char** argv) {
  DCDL_EXPECTS(argc >= 1);
  program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";  // bare boolean flag
    }
  }
}

std::int64_t Flags::get_int(const std::string& name, std::int64_t default_value) {
  used_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double Flags::get_double(const std::string& name, double default_value) {
  used_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  return std::strtod(it->second.c_str(), nullptr);
}

bool Flags::get_bool(const std::string& name, bool default_value) {
  used_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  return it->second != "false" && it->second != "0" && it->second != "no";
}

std::string Flags::get_string(const std::string& name,
                              const std::string& default_value) {
  used_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  return it->second;
}

int Flags::jobs() {
  const auto hw = static_cast<std::int64_t>(std::thread::hardware_concurrency());
  const std::int64_t n = get_int("jobs", hw > 0 ? hw : 1);
  return static_cast<int>(n > 0 ? n : 1);
}

std::string Flags::out(const std::string& default_path) {
  return get_string("out", default_path);
}

void Flags::check_unused() const {
  bool bad = false;
  for (const auto& [name, value] : values_) {
    if (!used_.count(name)) {
      std::fprintf(stderr, "%s: unknown flag --%s=%s\n", program_.c_str(),
                   name.c_str(), value.c_str());
      bad = true;
    }
  }
  if (bad) {
    std::fprintf(stderr, "known flags:");
    for (const auto& [name, was_used] : used_) {
      if (was_used) std::fprintf(stderr, " --%s", name.c_str());
    }
    std::fprintf(stderr, "\n");
    std::exit(2);
  }
}

}  // namespace dcdl
