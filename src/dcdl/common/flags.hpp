// A tiny command-line flag parser for the bench/example binaries, so every
// experiment can be re-run with different parameters without recompiling.
// Syntax: --name=value or --name value; bools accept --name / --name=false.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace dcdl {

class Flags {
 public:
  /// Parses argv. Unknown flags abort with a usage message listing the
  /// flags that were queried so far, so call get_* for all flags first or
  /// use declare() up front.
  Flags(int argc, char** argv);

  std::int64_t get_int(const std::string& name, std::int64_t default_value);
  double get_double(const std::string& name, double default_value);
  bool get_bool(const std::string& name, bool default_value);
  std::string get_string(const std::string& name, const std::string& default_value);

  /// --jobs N: worker-thread count shared by every bench/CLI entry point
  /// that can parallelize (campaign sweeps). Defaults to
  /// std::thread::hardware_concurrency() (at least 1).
  int jobs();

  /// --out <path>: result-artifact path shared by every bench/CLI entry
  /// point that writes one; empty = no artifact.
  std::string out(const std::string& default_path = "");

  /// Call after all get_* calls: aborts if the command line contained a flag
  /// that was never queried (almost always a typo in an experiment sweep).
  void check_unused() const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> used_;
  std::vector<std::string> positional_;
  std::string program_;
};

}  // namespace dcdl
