// Flow-id keyed map with dense array access on the packet path.
//
// Every scenario in the repo numbers flows from 1 upward, so the per-packet
// lookup (sink statistics, flow-slot registries) is a single vector index.
// Arbitrarily large ids remain legal through a hash-map fallback that the
// hot path never touches.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "dcdl/net/packet.hpp"

namespace dcdl {

template <typename T>
class FlowMap {
 public:
  /// Value for `id`, default-constructing on first access.
  T& at_or_insert(FlowId id) {
    if (id < kDenseIds) {
      if (id >= dense_.size()) grow(id);
      return dense_[id];
    }
    return sparse_[id];
  }

  const T* find(FlowId id) const {
    if (id < kDenseIds) {
      return id < dense_.size() ? &dense_[id] : nullptr;
    }
    const auto it = sparse_.find(id);
    return it == sparse_.end() ? nullptr : &it->second;
  }

 private:
  void grow(FlowId id) {
    std::size_t cap = dense_.empty() ? 64 : dense_.size();
    while (cap <= id) cap *= 2;
    if (cap > kDenseIds) cap = kDenseIds;
    dense_.resize(cap);
  }

  /// Ids below this live in the dense vector (worst case a few hundred KB
  /// for typical T); beyond it the hash fallback bounds memory.
  static constexpr FlowId kDenseIds = 65536;

  std::vector<T> dense_;
  std::unordered_map<FlowId, T> sparse_;
};

}  // namespace dcdl
