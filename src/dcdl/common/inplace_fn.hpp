// Small-buffer-optimized move-only callable — the event-slab counterpart of
// std::function.
//
// The discrete-event hot path schedules millions of short-lived closures
// (device member calls capturing `this` plus a couple of ids, or a Packet
// by value). std::function heap-allocates most of them and drags two
// pointers of indirection through every heap sift. InplaceFn stores any
// callable up to N bytes directly inside the object — the simulator's event
// slab therefore holds the closure bytes inline, and steady-state
// scheduling never touches the allocator. Oversized captures (cold control
// paths only) fall back to a single heap cell so the API stays total.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace dcdl {

template <typename Sig, std::size_t N = 64>
class InplaceFn;

template <typename R, typename... Args, std::size_t N>
class InplaceFn<R(Args...), N> {
 public:
  InplaceFn() = default;
  InplaceFn(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InplaceFn> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  InplaceFn(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= N && alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      invoke_ = [](void* p, Args&&... args) -> R {
        return (*static_cast<Fn*>(p))(std::forward<Args>(args)...);
      };
      manage_ = [](void* dst, void* src) {
        if (src != nullptr) {
          ::new (dst) Fn(std::move(*static_cast<Fn*>(src)));
          static_cast<Fn*>(src)->~Fn();
        } else {
          static_cast<Fn*>(dst)->~Fn();
        }
      };
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      invoke_ = [](void* p, Args&&... args) -> R {
        return (**static_cast<Fn**>(p))(std::forward<Args>(args)...);
      };
      manage_ = [](void* dst, void* src) {
        if (src != nullptr) {
          ::new (dst) Fn*(*static_cast<Fn**>(src));
        } else {
          delete *static_cast<Fn**>(dst);
        }
      };
    }
  }

  InplaceFn(InplaceFn&& o) noexcept { move_from(o); }
  InplaceFn& operator=(InplaceFn&& o) noexcept {
    if (this != &o) {
      reset();
      move_from(o);
    }
    return *this;
  }
  InplaceFn& operator=(std::nullptr_t) {
    reset();
    return *this;
  }
  InplaceFn(const InplaceFn&) = delete;
  InplaceFn& operator=(const InplaceFn&) = delete;
  ~InplaceFn() { reset(); }

  explicit operator bool() const { return invoke_ != nullptr; }

  R operator()(Args... args) {
    return invoke_(buf_, std::forward<Args>(args)...);
  }

  void reset() {
    if (invoke_ != nullptr) {
      manage_(buf_, nullptr);
      invoke_ = nullptr;
      manage_ = nullptr;
    }
  }

 private:
  /// manage_(dst, src): src != nullptr relocates *src into dst (raw
  /// storage) and destroys src; src == nullptr destroys dst.
  using Invoke = R (*)(void*, Args&&...);
  using Manage = void (*)(void*, void*);

  void move_from(InplaceFn& o) noexcept {
    if (o.invoke_ != nullptr) {
      o.manage_(buf_, o.buf_);
      invoke_ = o.invoke_;
      manage_ = o.manage_;
      o.invoke_ = nullptr;
      o.manage_ = nullptr;
    }
  }

  alignas(std::max_align_t) std::byte buf_[N];
  Invoke invoke_ = nullptr;
  Manage manage_ = nullptr;
};

}  // namespace dcdl
