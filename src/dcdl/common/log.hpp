// Minimal leveled logging to stderr. The simulator itself never logs on the
// fast path; logging exists for tools and debugging scenario setups.
#pragma once

#include <cstdio>
#include <string>

namespace dcdl {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide minimum level; messages below it are dropped.
LogLevel log_level();
void set_log_level(LogLevel level);

namespace detail {
void log_line(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));
}  // namespace detail

#define DCDL_LOG_DEBUG(...) ::dcdl::detail::log_line(::dcdl::LogLevel::kDebug, __VA_ARGS__)
#define DCDL_LOG_INFO(...) ::dcdl::detail::log_line(::dcdl::LogLevel::kInfo, __VA_ARGS__)
#define DCDL_LOG_WARN(...) ::dcdl::detail::log_line(::dcdl::LogLevel::kWarn, __VA_ARGS__)
#define DCDL_LOG_ERROR(...) ::dcdl::detail::log_line(::dcdl::LogLevel::kError, __VA_ARGS__)

}  // namespace dcdl
