// Growable ring-buffer FIFO.
//
// std::deque allocates and frees ~512-byte blocks as its window slides, so
// a steady packet stream through an egress queue still churns the
// allocator. RingQueue keeps one power-of-two contiguous buffer: push/pop
// are an index mask each, and once the buffer has grown to the high-water
// mark of the queue it never allocates again. Restricted to trivially
// destructible element types (packets and their queue wrappers), which lets
// pop_front be a bare index bump.
#pragma once

#include <cstddef>
#include <type_traits>
#include <utility>
#include <vector>

namespace dcdl {

template <typename T>
class RingQueue {
  static_assert(std::is_trivially_destructible_v<T>,
                "RingQueue elements must be trivially destructible");

 public:
  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }

  T& front() { return buf_[head_]; }
  const T& front() const { return buf_[head_]; }

  /// i-th element from the front (0 == front()).
  const T& operator[](std::size_t i) const {
    return buf_[(head_ + i) & mask_];
  }

  void push_back(T v) {
    if (size_ == buf_.size()) grow();
    buf_[(head_ + size_) & mask_] = std::move(v);
    ++size_;
  }

  void pop_front() {
    head_ = (head_ + 1) & mask_;
    --size_;
  }

  void clear() {
    head_ = 0;
    size_ = 0;
  }

 private:
  void grow() {
    const std::size_t new_cap = buf_.empty() ? 8 : buf_.size() * 2;
    std::vector<T> next(new_cap);
    for (std::size_t i = 0; i < size_; ++i) {
      next[i] = std::move(buf_[(head_ + i) & mask_]);
    }
    buf_ = std::move(next);
    head_ = 0;
    mask_ = new_cap - 1;
  }

  std::vector<T> buf_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
  std::size_t mask_ = 0;
};

}  // namespace dcdl
