#include "dcdl/common/rng.hpp"

#include <cmath>

namespace dcdl {

double Rng::exponential(double mean) {
  // Inverse CDF; guard against log(0).
  double u = uniform_double();
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

}  // namespace dcdl
