// Deterministic pseudo-random numbers for reproducible simulations.
// xoshiro256++ seeded through SplitMix64, as recommended by the authors of
// the generator family. Not cryptographic; plenty for workload generation.
#pragma once

#include <cstdint>
#include <utility>

namespace dcdl {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // SplitMix64 to expand the seed into four non-zero words.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9E3779B97F4A7C15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t uniform(std::uint64_t bound) {
    // Rejection sampling over the largest multiple of bound that fits.
    const std::uint64_t limit = ~std::uint64_t{0} - ~std::uint64_t{0} % bound;
    while (true) {
      const std::uint64_t x = next();
      if (x < limit) return x % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    uniform(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double uniform_double() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Exponentially distributed double with the given mean.
  double exponential(double mean);

  /// Fisher-Yates shuffle of [first, last).
  template <typename It>
  void shuffle(It first, It last) {
    const auto n = last - first;
    for (auto i = n - 1; i > 0; --i) {
      const auto j = static_cast<decltype(i)>(
          uniform(static_cast<std::uint64_t>(i + 1)));
      using std::swap;
      swap(first[i], first[j]);
    }
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace dcdl
