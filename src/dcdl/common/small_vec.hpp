// Inline-capacity vector for move-only element types.
//
// The first N elements live inside the object; growing past N moves them to
// a single heap block. Used where a handful of elements is the norm and the
// per-element dispatch must stay contiguous and allocation-free (trace hook
// lists, most prominently).
#pragma once

#include <cstddef>
#include <new>
#include <utility>

namespace dcdl {

template <typename T, std::size_t N>
class SmallVec {
 public:
  SmallVec() = default;
  SmallVec(const SmallVec&) = delete;
  SmallVec& operator=(const SmallVec&) = delete;

  SmallVec(SmallVec&& o) noexcept { move_from(o); }
  SmallVec& operator=(SmallVec&& o) noexcept {
    if (this != &o) {
      destroy();
      move_from(o);
    }
    return *this;
  }

  ~SmallVec() { destroy(); }

  void push_back(T v) {
    if (size_ == cap_) grow();
    ::new (static_cast<void*>(data() + size_)) T(std::move(v));
    ++size_;
  }

  void clear() {
    for (std::size_t i = 0; i < size_; ++i) data()[i].~T();
    size_ = 0;
  }

  bool empty() const { return size_ == 0; }
  std::size_t size() const { return size_; }
  T* begin() { return data(); }
  T* end() { return data() + size_; }
  const T* begin() const { return data(); }
  const T* end() const { return data() + size_; }
  T& operator[](std::size_t i) { return data()[i]; }
  const T& operator[](std::size_t i) const { return data()[i]; }

 private:
  T* data() {
    return heap_ != nullptr ? heap_ : reinterpret_cast<T*>(inline_);
  }
  const T* data() const {
    return heap_ != nullptr ? heap_ : reinterpret_cast<const T*>(inline_);
  }

  void grow() {
    // The explicit N*2 floor also convinces GCC's bounds checker the block
    // is never zero-sized.
    const std::size_t new_cap = cap_ * 2 < N * 2 ? N * 2 : cap_ * 2;
    T* block = static_cast<T*>(
        ::operator new(new_cap * sizeof(T), std::align_val_t{alignof(T)}));
    for (std::size_t i = 0; i < size_; ++i) {
      ::new (static_cast<void*>(block + i)) T(std::move(data()[i]));
      data()[i].~T();
    }
    release_heap();
    heap_ = block;
    cap_ = new_cap;
  }

  void release_heap() {
    if (heap_ != nullptr) {
      ::operator delete(heap_, std::align_val_t{alignof(T)});
      heap_ = nullptr;
    }
  }

  void destroy() {
    clear();
    release_heap();
    cap_ = N;
  }

  void move_from(SmallVec& o) noexcept {
    if (o.heap_ != nullptr) {
      heap_ = o.heap_;
      size_ = o.size_;
      cap_ = o.cap_;
      o.heap_ = nullptr;
      o.size_ = 0;
      o.cap_ = N;
    } else {
      for (std::size_t i = 0; i < o.size_; ++i) {
        ::new (static_cast<void*>(data() + i)) T(std::move(o.data()[i]));
        o.data()[i].~T();
      }
      size_ = o.size_;
      o.size_ = 0;
    }
  }

  alignas(T) std::byte inline_[N * sizeof(T)];
  T* heap_ = nullptr;
  std::size_t size_ = 0;
  std::size_t cap_ = N;
};

}  // namespace dcdl
