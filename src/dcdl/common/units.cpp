#include "dcdl/common/units.hpp"

#include <cmath>
#include <cstdio>

namespace dcdl {

std::string Time::to_string() const {
  char buf[64];
  if (ps_ >= 1'000'000'000) {
    std::snprintf(buf, sizeof(buf), "%.3fms", ms());
  } else if (ps_ >= 1'000'000) {
    std::snprintf(buf, sizeof(buf), "%.3fus", us());
  } else {
    std::snprintf(buf, sizeof(buf), "%.3fns", ns());
  }
  return buf;
}

std::string Rate::to_string() const {
  char buf[64];
  if (bps_ >= 1'000'000'000) {
    std::snprintf(buf, sizeof(buf), "%.3fGbps", as_gbps());
  } else {
    std::snprintf(buf, sizeof(buf), "%.3fMbps", static_cast<double>(bps_) / 1e6);
  }
  return buf;
}

}  // namespace dcdl
