// Strongly-typed physical units used throughout dcdl.
//
// Time is an integer count of picoseconds. At 40 Gbps a 1000-byte frame
// serializes in exactly 200 ns = 200'000 ps, so every quantity the paper's
// scenarios need is exactly representable; no floating-point drift can
// reorder events. Rates are integer bits/second.
#pragma once

#include <cstdint>
#include <limits>
#include <string>

namespace dcdl {

/// A point in (or span of) simulated time, in picoseconds.
class Time {
 public:
  constexpr Time() = default;
  constexpr explicit Time(std::int64_t picoseconds) : ps_(picoseconds) {}

  static constexpr Time zero() { return Time{0}; }
  static constexpr Time max() {
    return Time{std::numeric_limits<std::int64_t>::max()};
  }

  constexpr std::int64_t ps() const { return ps_; }
  constexpr double ns() const { return static_cast<double>(ps_) / 1e3; }
  constexpr double us() const { return static_cast<double>(ps_) / 1e6; }
  constexpr double ms() const { return static_cast<double>(ps_) / 1e9; }
  constexpr double sec() const { return static_cast<double>(ps_) / 1e12; }

  friend constexpr Time operator+(Time a, Time b) { return Time{a.ps_ + b.ps_}; }
  friend constexpr Time operator-(Time a, Time b) { return Time{a.ps_ - b.ps_}; }
  friend constexpr Time operator*(Time a, std::int64_t k) { return Time{a.ps_ * k}; }
  friend constexpr Time operator*(std::int64_t k, Time a) { return Time{a.ps_ * k}; }
  friend constexpr Time operator/(Time a, std::int64_t k) { return Time{a.ps_ / k}; }
  constexpr Time& operator+=(Time o) { ps_ += o.ps_; return *this; }
  constexpr Time& operator-=(Time o) { ps_ -= o.ps_; return *this; }
  friend constexpr auto operator<=>(Time, Time) = default;

  std::string to_string() const;

 private:
  std::int64_t ps_ = 0;
};

namespace literals {
constexpr Time operator""_ps(unsigned long long v) { return Time{static_cast<std::int64_t>(v)}; }
constexpr Time operator""_ns(unsigned long long v) { return Time{static_cast<std::int64_t>(v) * 1'000}; }
constexpr Time operator""_us(unsigned long long v) { return Time{static_cast<std::int64_t>(v) * 1'000'000}; }
constexpr Time operator""_ms(unsigned long long v) { return Time{static_cast<std::int64_t>(v) * 1'000'000'000}; }
constexpr Time operator""_sec(unsigned long long v) { return Time{static_cast<std::int64_t>(v) * 1'000'000'000'000}; }
}  // namespace literals

/// A link or flow rate in bits per second.
class Rate {
 public:
  constexpr Rate() = default;
  constexpr explicit Rate(std::int64_t bits_per_second) : bps_(bits_per_second) {}

  static constexpr Rate zero() { return Rate{0}; }
  static constexpr Rate gbps(double g) {
    return Rate{static_cast<std::int64_t>(g * 1e9)};
  }
  static constexpr Rate mbps(double m) {
    return Rate{static_cast<std::int64_t>(m * 1e6)};
  }

  constexpr std::int64_t bps() const { return bps_; }
  constexpr double as_gbps() const { return static_cast<double>(bps_) / 1e9; }
  constexpr bool is_zero() const { return bps_ == 0; }

  friend constexpr auto operator<=>(Rate, Rate) = default;
  friend constexpr Rate operator+(Rate a, Rate b) { return Rate{a.bps_ + b.bps_}; }
  friend constexpr Rate operator-(Rate a, Rate b) { return Rate{a.bps_ - b.bps_}; }

  std::string to_string() const;

 private:
  std::int64_t bps_ = 0;
};

/// Time to serialize `bytes` onto a wire running at `rate`.
/// Rounds up to the next picosecond so a transmission never finishes early.
constexpr Time serialization_time(std::int64_t bytes, Rate rate) {
  // ps = bytes * 8 / (bps / 1e12) = bytes * 8e12 / bps, computed without
  // overflow for bytes up to ~10^5 and bps down to 1 Mbps.
  const std::int64_t bits = bytes * 8;
  const std::int64_t whole = bits / rate.bps();
  const std::int64_t rem = bits % rate.bps();
  return Time{whole * 1'000'000'000'000 +
              (rem * 1'000'000'000'000 + rate.bps() - 1) / rate.bps()};
}

/// Bytes transferred at `rate` over duration `t` (floor).
constexpr std::int64_t bytes_in(Rate rate, Time t) {
  // bytes = bps * ps / 8e12. Split to avoid overflow: bps up to ~1e12,
  // ps up to ~1e13 for realistic runs would overflow, so divide first.
  const std::int64_t whole_us = t.ps() / 1'000'000;
  const std::int64_t rem_ps = t.ps() % 1'000'000;
  // bits = bps * seconds
  const std::int64_t bits =
      rate.bps() / 1'000'000 * whole_us +
      rate.bps() % 1'000'000 * whole_us / 1'000'000 +
      rate.bps() / 1'000'000 * rem_ps / 1'000'000;
  return bits / 8;
}

constexpr std::int64_t kKiB = 1024;
constexpr std::int64_t kMiB = 1024 * 1024;

}  // namespace dcdl
