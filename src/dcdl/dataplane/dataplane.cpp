#include "dcdl/dataplane/dataplane.hpp"

namespace dcdl::dataplane {

const char* to_string(RecoveryPolicy p) {
  switch (p) {
    case RecoveryPolicy::kOff: return "off";
    case RecoveryPolicy::kDetect: return "detect";
    case RecoveryPolicy::kDrop: return "drop";
    case RecoveryPolicy::kReroute: return "reroute";
    case RecoveryPolicy::kPfcLift: return "pfc_lift";
  }
  return "?";
}

bool parse_policy(const std::string& s, RecoveryPolicy* out) {
  if (s == "off") { *out = RecoveryPolicy::kOff; return true; }
  if (s == "detect") { *out = RecoveryPolicy::kDetect; return true; }
  if (s == "drop") { *out = RecoveryPolicy::kDrop; return true; }
  if (s == "reroute") { *out = RecoveryPolicy::kReroute; return true; }
  if (s == "pfc_lift" || s == "lift") {
    *out = RecoveryPolicy::kPfcLift;
    return true;
  }
  return false;
}

const char* to_string(DataplaneEvent e) {
  switch (e) {
    case DataplaneEvent::kCandidate: return "candidate";
    case DataplaneEvent::kConfirmed: return "confirmed";
    case DataplaneEvent::kRecovered: return "recovered";
    case DataplaneEvent::kFalseAlarm: return "false_alarm";
    case DataplaneEvent::kRearmed: return "rearmed";
  }
  return "?";
}

}  // namespace dcdl::dataplane
