// In-switch DCFIT-style deadlock detection and auto-recovery.
//
// The centralized `analysis::DeadlockMonitor` confirms a deadlock by
// polling every switch and computing a global wait-for fixpoint — fine for
// a simulator, impossible in a real data plane. This subsystem is the
// in-network alternative (DCFIT, arXiv:2009.13446): each switch runs a
// small match-action pipeline on its PFC path, and the *initial-trigger*
// switch detects the cyclic buffer dependency locally when metadata it
// stamped comes back around the cycle. Three stages:
//
//  1. TAG — when an ingress counter crosses Xoff, the outgoing PAUSE
//     carries a PauseTag. If the congestion is home-grown the switch
//     *originates* a tag naming itself and the (port, class) counter; if
//     the backlog is itself the product of a frozen egress that arrived
//     with a tag, the switch *propagates* that tag (visited-bitmap |= own
//     bit, hops += 1). Tags travel upstream with the pause chain — the
//     direction of the wait-for graph.
//
//  2. DETECT — a switch receiving a PAUSE whose tag names *itself* as
//     origin has local proof of a cycle: a pause chain it started has come
//     back to freeze one of its own egress queues. It becomes a
//     *candidate* and waits `confirm_dwell`; if the origin counter is
//     still asserting Xoff with zero departures in the window, the cycle
//     is *confirmed* (a draining transient — TTL expiry, self-resolving
//     cascade — fails this check and is traced as a false alarm).
//
//  3. RECOVER — a pluggable policy breaks the cycle at the detecting
//     switch: drop the frozen queues' packets (kDrop), install routing
//     detours and re-queue around the cycle (kReroute), or ignore the
//     received PAUSE for one lift window (kPfcLift). The stage then
//     disarms for `cooldown` and re-arms, so a second deadlock in the same
//     run is caught again.
//
// Everything here is deliberately free of Switch/Network dependencies: the
// Pipeline is a pure per-switch state machine over (tags, counters,
// instants) that `device/switch.cpp` drives from its PFC funnel. All
// pipeline timers are scheduled through Device::schedule_at (canonical
// self-channel keys), so detection and recovery are byte-identical for
// every shard count.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dcdl/common/units.hpp"
#include "dcdl/net/packet.hpp"

namespace dcdl::dataplane {

/// What the recovery stage does once a cycle is confirmed.
enum class RecoveryPolicy : std::uint8_t {
  kOff,      ///< pipeline absent entirely (zero-cost default)
  kDetect,   ///< detect + trace only, never intervene (false-positive runs)
  kDrop,     ///< flush the frozen egress queues (lossy, like the watchdog)
  kReroute,  ///< install RouteTable detours and re-queue around the cycle
  kPfcLift,  ///< ignore received PAUSE for one lift window (risk: overflow)
};

const char* to_string(RecoveryPolicy p);
/// Parses "off", "detect", "drop", "reroute", "pfc_lift" (also "lift").
/// Returns false (and leaves `out` untouched) on anything else.
bool parse_policy(const std::string& s, RecoveryPolicy* out);

struct DataplaneConfig {
  RecoveryPolicy policy = RecoveryPolicy::kOff;
  /// Candidate-to-confirmed dwell: the origin counter must stay Xoff with
  /// zero departures this long. Long enough to outlive TTL-drain
  /// transients, short next to the centralized monitor's poll+dwell.
  Time confirm_dwell = Time{200'000'000};  // 200 us
  /// After a recovery action the stage disarms this long before re-arming
  /// (lets the unwinding cascade drain without re-triggering).
  /// Disarm window after a recovery action. Kept well under the
  /// centralized monitor's dwell: when the underlying congestion persists
  /// the wedge re-forms within a few hundred us, and the pipeline must be
  /// back in the fight before the watchdog would call it a deadlock.
  Time cooldown = Time{500'000'000};  // 500 us
  /// kPfcLift: how long received PAUSE is ignored on the frozen egress.
  Time pfc_lift = Time{500'000'000};  // 500 us

  bool enabled() const { return policy != RecoveryPolicy::kOff; }
};

/// Pipeline observation events (Trace::dataplane hook, telemetry records).
enum class DataplaneEvent : std::uint8_t {
  kCandidate,   ///< own tag returned; dwell started (detail = tag hops)
  kConfirmed,   ///< cycle confirmed at this switch (detail = tag hops)
  kRecovered,   ///< recovery action applied (detail = packets acted on)
  kFalseAlarm,  ///< dwell check failed; counter drained (detail = 0)
  kRearmed,     ///< cooldown elapsed, stage armed again (detail = 0)
};

const char* to_string(DataplaneEvent e);

/// The path metadata carried with a PFC PAUSE frame (16 bytes on the
/// wire model — comfortably inside a 64-byte control frame). `visited` is
/// a Bloom-style node bitmap (bit = id mod 32): one-sided evidence only,
/// the detect stage keys off `origin == self`, never off the bitmap.
/// `seq` is the origin's origination epoch: a wedge that re-forms after a
/// recovery regenerates the same (origin, hops, visited) triple, and
/// without the epoch the compare-to-last-sent re-propagation guard at any
/// switch holding stale state from the first wedge would silently kill the
/// new circulation.
struct PauseTag {
  NodeId origin = kInvalidNode;       ///< switch that originated the chain
  PortId origin_port = kInvalidPort;  ///< its Xoff ingress counter
  ClassId origin_cls = 0;
  std::uint8_t hops = 0;  ///< pause-chain hops travelled since origin
  std::uint32_t seq = 0;  ///< origination epoch at the origin switch
  std::uint32_t visited = 0;

  bool valid() const { return origin != kInvalidNode; }
};
static_assert(sizeof(PauseTag) == 16, "PauseTag rides inline in PFC events");

inline bool operator==(const PauseTag& a, const PauseTag& b) {
  return a.origin == b.origin && a.origin_port == b.origin_port &&
         a.origin_cls == b.origin_cls && a.hops == b.hops &&
         a.seq == b.seq && a.visited == b.visited;
}
inline bool operator!=(const PauseTag& a, const PauseTag& b) {
  return !(a == b);
}

constexpr std::uint32_t visit_bit(NodeId id) { return 1u << (id % 32); }

/// Per-switch pipeline state machine. Pure bookkeeping: the owning Switch
/// supplies counter/queue facts and performs the actual recovery action;
/// the Pipeline decides *when* and tracks every instant and count.
class Pipeline {
 public:
  struct Stats {
    std::uint64_t tags_originated = 0;
    std::uint64_t tags_propagated = 0;
    std::uint64_t packets_tagged = 0;  ///< packets stamped at fabric entry
    std::uint64_t packet_loops = 0;  ///< packets seen back at entry switch
    std::uint64_t candidates = 0;
    std::uint64_t confirms = 0;
    std::uint64_t recoveries = 0;
    std::uint64_t false_alarms = 0;
  };

  Pipeline(const DataplaneConfig& cfg, NodeId self, std::size_t ports,
           std::size_t classes)
      : cfg_(cfg),
        self_(self),
        classes_(classes),
        rx_(ports * classes),
        last_sent_(ports * classes) {}

  const DataplaneConfig& config() const { return cfg_; }
  NodeId self() const { return self_; }
  const Stats& stats() const { return stats_; }

  // --- Tag stage ---
  /// A tag naming this switch's (port, cls) ingress counter as the chain
  /// origin.
  PauseTag originate(PortId port, ClassId cls) {
    ++stats_.tags_originated;
    PauseTag t;
    t.origin = self_;
    t.origin_port = port;
    t.origin_cls = cls;
    t.hops = 0;
    t.seq = ++origin_seq_;
    t.visited = visit_bit(self_);
    return t;
  }
  /// `upstream` extended by this switch (the pause chain grows one hop).
  PauseTag propagate(const PauseTag& upstream) {
    ++stats_.tags_propagated;
    PauseTag t = upstream;
    t.visited |= visit_bit(self_);
    if (t.hops != 0xFF) t.hops += 1;
    return t;
  }

  /// Tag received with the PAUSE currently freezing egress (port, cls);
  /// invalid when unpaused or the PAUSE carried no tag.
  const PauseTag& rx(PortId egress, ClassId cls) const {
    return rx_[key(egress, cls)];
  }
  void store_rx(PortId egress, ClassId cls, const PauseTag& tag) {
    rx_[key(egress, cls)] = tag;
  }
  void clear_rx(PortId egress, ClassId cls) {
    rx_[key(egress, cls)] = PauseTag{};
  }

  /// Last tag sent upstream with the Xoff of ingress counter (port, cls).
  /// `remember_sent` returns false when `tag` matches what was already
  /// sent — the loop guard that terminates re-propagation around a cycle.
  const PauseTag& last_sent(PortId in_port, ClassId cls) const {
    return last_sent_[key(in_port, cls)];
  }
  bool remember_sent(PortId in_port, ClassId cls, const PauseTag& tag) {
    PauseTag& slot = last_sent_[key(in_port, cls)];
    if (slot == tag) return false;
    slot = tag;
    return true;
  }
  void clear_sent(PortId in_port, ClassId cls) {
    last_sent_[key(in_port, cls)] = PauseTag{};
  }

  /// Packet-side tag stage bookkeeping (stamping happens in the switch's
  /// forwarding path; see Packet::tag_origin).
  void note_packet_tagged() { ++stats_.packets_tagged; }
  void note_packet_loop() { ++stats_.packet_loops; }

  // --- Detect stage ---
  bool is_own(const PauseTag& t) const { return t.origin == self_; }
  bool armed() const { return armed_; }
  bool candidate_pending() const { return candidate_; }

  /// Starts the confirm dwell for a returned own-tag. Returns false when
  /// the stage is disarmed (cooldown) or already dwelling.
  bool arm_candidate(const PauseTag& t, std::uint64_t origin_departures,
                     Time now) {
    if (!armed_ || candidate_) return false;
    candidate_ = true;
    cand_tag_ = t;
    cand_departures_ = origin_departures;
    cand_at_ = now;
    ++stats_.candidates;
    return true;
  }
  const PauseTag& candidate_tag() const { return cand_tag_; }

  /// Outcome of a confirm dwell (see resolve_candidate).
  enum class Verdict : std::uint8_t {
    kConfirmed,   ///< still asserted, zero departures: deadlock
    kRetry,       ///< still asserted but draining: keep dwelling
    kFalseAlarm,  ///< the origin counter resumed: transient, dwell ends
  };

  /// Dwell expiry. A returned own-tag proves the cyclic dependency existed
  /// when it was stamped, and the proof only expires when the origin
  /// counter resumes — so "still asserted but still draining" re-arms the
  /// dwell rather than dropping the candidate (a congestion cascade can
  /// take milliseconds to harden after the pause cycle first closes, with
  /// no new pause edge to re-circulate the tag).
  Verdict resolve_candidate(bool origin_still_asserted,
                            std::uint64_t origin_departures) {
    if (!origin_still_asserted) {
      candidate_ = false;
      ++stats_.false_alarms;
      return Verdict::kFalseAlarm;
    }
    if (origin_departures == cand_departures_) {
      candidate_ = false;
      ++stats_.confirms;
      return Verdict::kConfirmed;
    }
    cand_departures_ = origin_departures;
    return Verdict::kRetry;
  }

  // --- Recovery stage ---
  void note_recovery() {
    ++stats_.recoveries;
    armed_ = false;
  }
  void rearm() { armed_ = true; }

 private:
  std::size_t key(PortId port, ClassId cls) const {
    return static_cast<std::size_t>(port) * classes_ + cls;
  }

  DataplaneConfig cfg_;
  NodeId self_;
  std::size_t classes_;
  std::vector<PauseTag> rx_;
  std::vector<PauseTag> last_sent_;
  bool armed_ = true;
  std::uint32_t origin_seq_ = 0;
  bool candidate_ = false;
  PauseTag cand_tag_;
  std::uint64_t cand_departures_ = 0;
  Time cand_at_ = Time::zero();
  Stats stats_;
};

}  // namespace dcdl::dataplane
