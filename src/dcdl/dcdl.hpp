// Umbrella header: the whole public API of dcdl.
//
// For faster builds include only what you use; this header exists for
// exploratory programs and examples.
#pragma once

#include "dcdl/common/flags.hpp"
#include "dcdl/common/log.hpp"
#include "dcdl/common/rng.hpp"
#include "dcdl/common/units.hpp"

#include "dcdl/sim/sharded.hpp"
#include "dcdl/sim/simulator.hpp"

#include "dcdl/net/packet.hpp"
#include "dcdl/topo/generators.hpp"
#include "dcdl/topo/topology.hpp"

#include "dcdl/routing/bgp.hpp"
#include "dcdl/routing/compute.hpp"
#include "dcdl/routing/mesh_routing.hpp"
#include "dcdl/routing/route_table.hpp"
#include "dcdl/routing/sdn.hpp"

#include "dcdl/device/config.hpp"
#include "dcdl/device/host.hpp"
#include "dcdl/device/network.hpp"
#include "dcdl/device/switch.hpp"
#include "dcdl/device/trace.hpp"

#include "dcdl/traffic/flow.hpp"

#include "dcdl/analysis/bdg.hpp"
#include "dcdl/analysis/boundary.hpp"
#include "dcdl/analysis/deadlock.hpp"
#include "dcdl/analysis/fluid.hpp"
#include "dcdl/analysis/risk.hpp"

#include "dcdl/dataplane/dataplane.hpp"

#include "dcdl/hybrid/hybrid.hpp"

#include "dcdl/mitigation/class_policy.hpp"
#include "dcdl/mitigation/dcqcn.hpp"
#include "dcdl/mitigation/smart_limiter.hpp"
#include "dcdl/mitigation/thresholds.hpp"
#include "dcdl/mitigation/timely.hpp"
#include "dcdl/mitigation/watchdog.hpp"

#include "dcdl/probe/export.hpp"
#include "dcdl/probe/probe.hpp"
#include "dcdl/probe/profiler.hpp"

#include "dcdl/stats/cascade.hpp"
#include "dcdl/stats/csv.hpp"
#include "dcdl/stats/hooks.hpp"
#include "dcdl/stats/latency.hpp"
#include "dcdl/stats/pause_log.hpp"
#include "dcdl/stats/sampler.hpp"
#include "dcdl/stats/throughput.hpp"

#include "dcdl/telemetry/telemetry.hpp"

#include "dcdl/watch/export.hpp"
#include "dcdl/watch/rules.hpp"
#include "dcdl/watch/watch.hpp"

#include "dcdl/forensics/forensics.hpp"

#include "dcdl/scenarios/scenario.hpp"

#include "dcdl/campaign/campaign.hpp"
