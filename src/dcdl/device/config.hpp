// Runtime network configuration: PFC thresholds, buffer sizes, ECN/phantom
// queue marking, class remapping hooks. Defaults follow the paper's
// simulation setup (§3.2): 40 Gbps links, 12 MB switch buffer, 40 KB static
// PFC threshold per ingress queue, 1000-byte packets.
#pragma once

#include <cstdint>
#include <functional>

#include "dcdl/common/units.hpp"
#include "dcdl/dataplane/dataplane.hpp"
#include "dcdl/net/packet.hpp"

namespace dcdl {

struct PfcConfig {
  bool enabled = true;
  /// Ingress-queue occupancy at/above which a PAUSE is sent upstream.
  std::int64_t xoff_bytes = 40 * kKiB;
  /// Occupancy below which a RESUME is sent (Xon). Hysteresis of two MTUs
  /// below Xoff by default; must be <= xoff_bytes.
  std::int64_t xon_bytes = 40 * kKiB - 2 * 1000;
  /// PFC frame size: control frames incur this serialization on the reverse
  /// channel plus propagation delay, but never queue behind data.
  std::int64_t control_frame_bytes = 64;

  /// 802.1Qbb pause quanta: a received PAUSE expires after this duration
  /// unless refreshed. Zero (default) models the common simulator
  /// simplification of a persistent pause-until-resume. The real maximum
  /// is 65535 quanta of 512 bit-times (~838 us at 40 GbE).
  Time pause_quanta = Time::zero();
  /// With quanta enabled, the asserting switch re-sends PAUSE every
  /// quanta/2 while the counter stays above Xon — real switches do this,
  /// which is exactly why deadlocks do NOT expire with the quanta. Turning
  /// refresh off lets pauses lapse: deadlocks self-heal, but the expired
  /// pause admits traffic into a full buffer (overflow drops — the
  /// lossless guarantee is gone).
  bool pause_refresh = true;
};

/// ECN marking via a per-egress phantom (virtual) queue, as in the paper's
/// §4 "preventing PFC from being generated" (DCQCN + phantom queuing,
/// citing Alizadeh et al.). With `phantom_speed_fraction == 1.0` this
/// degenerates to marking on the real egress backlog.
struct EcnConfig {
  bool enabled = false;
  std::int64_t mark_threshold_bytes = 60 * kKiB;
  /// Phantom queue drains at this fraction of the link speed (<1 marks
  /// early, signalling congestion before the real queue builds).
  double phantom_speed_fraction = 1.0;
};

struct NetConfig {
  /// Number of PFC priority classes instantiated per ingress port.
  int num_classes = 1;
  std::uint32_t mtu_bytes = 1000;
  /// Total shared buffer per switch; exceeding it is a buffer-overflow drop
  /// (the lossless invariant tests assert this never happens with sane
  /// thresholds/headroom).
  std::int64_t switch_buffer_bytes = 12 * kMiB;
  PfcConfig pfc;
  EcnConfig ecn;
  /// In-switch DCFIT detection/recovery pipeline (dcdl::dataplane). Off by
  /// default: with `policy == kOff` no per-switch pipeline state is even
  /// allocated and every PFC frame takes the historical untagged path, so
  /// golden traces are byte-identical to a build without the subsystem.
  dataplane::DataplaneConfig dataplane;
  /// Delay from a receiver spotting an ECN mark to the sender's rate
  /// controller reacting (models the CNP path out of band).
  Time cnp_feedback_delay = Time{5'000'000};  // 5 us

  /// When true, receivers feed every packet's end-to-end RTT back to the
  /// source pacer (after cnp_feedback_delay) — the TIMELY signal path
  /// (paper §4 cites TIMELY alongside DCQCN).
  bool rtt_feedback = false;

  /// Per-transmission inter-frame gap jitter: each data transmission holds
  /// its egress for serialization + U[0, tx_jitter]. Physical networks and
  /// the paper's NS-3 stack are never perfectly synchronous; a few ns of
  /// seeded jitter reproduces the threshold-crossing fluctuations that
  /// drive multi-flow deadlock formation (§3.2), which an exactly
  /// symmetric discrete-event schedule would otherwise suppress. Zero
  /// disables (used by the analytic-threshold experiments).
  Time tx_jitter = Time::zero();
  std::uint64_t jitter_seed = 1;

  /// Optional per-switch re-classification hook, evaluated when a packet is
  /// accepted at a switch ingress (after TTL processing). Used by the
  /// TTL-class mitigation and the structured-buffer-pool baseline. Must
  /// return a class in [0, num_classes).
  std::function<ClassId(const Packet&, NodeId sw)> reclass;
};

}  // namespace dcdl
