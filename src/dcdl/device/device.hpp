// Base class for runtime network elements (switches and hosts).
#pragma once

#include "dcdl/net/packet.hpp"

namespace dcdl {

class Network;

class Device {
 public:
  Device(Network& net, NodeId id) : net_(net), id_(id) {}
  virtual ~Device() = default;
  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  NodeId id() const { return id_; }

  /// A data packet finished arriving on `in_port` (store-and-forward).
  virtual void on_receive(PortId in_port, Packet pkt) = 0;

  /// A PFC frame from the peer of `port` changed the pause state of this
  /// device's egress on that port for class `cls`.
  virtual void on_pfc(PortId port, ClassId cls, bool pause) = 0;

 protected:
  Network& net_;
  NodeId id_;
};

}  // namespace dcdl
