// Base class for runtime network elements (switches and hosts).
#pragma once

#include <vector>

#include "dcdl/device/trace.hpp"
#include "dcdl/net/packet.hpp"
#include "dcdl/sim/simulator.hpp"

namespace dcdl {

class Network;

class Device {
 public:
  Device(Network& net, NodeId id) : net_(net), id_(id) {}
  virtual ~Device() = default;
  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  NodeId id() const { return id_; }

  /// This device's local clock. Identical to the network simulator's clock
  /// in single-threaded runs; in sharded runs it is the owning shard's
  /// clock, which the engine keeps aligned at every window barrier.
  Time now() const { return sim_->now(); }

  /// A data packet finished arriving on `in_port` (store-and-forward).
  virtual void on_receive(PortId in_port, Packet pkt) = 0;

  /// A PFC frame from the peer of `port` changed the pause state of this
  /// device's egress on that port for class `cls`.
  virtual void on_pfc(PortId port, ClassId cls, bool pause) = 0;

  /// Packets dropped by this device, by reason. Kept per-device (not
  /// globally on the Network) so concurrent shards never share a counter;
  /// Network::drops() sums across devices.
  std::uint64_t drop_count(DropReason reason) const {
    return drop_counts_[static_cast<int>(reason)];
  }

  /// Cumulative bytes serialized out of egress `port`. Maintained natively
  /// (one indexed add per transmission, like drop_counts_) so samplers can
  /// read utilization as device state at barriers instead of observing
  /// every tx_start on the hot path.
  std::uint64_t tx_byte_count(PortId port) const {
    return port < tx_byte_counts_.size() ? tx_byte_counts_[port] : 0;
  }

 protected:
  /// Self-scheduling: timers, transmit-complete callbacks, pause refreshes.
  /// In sharded runs these go onto the device's own shard under the
  /// device's private (channel, sequence) key — the key is a pure function
  /// of this device's deterministic execution, so the global event order
  /// stays invariant to the shard count. In legacy runs (self_chan_ == 0)
  /// they use the plain scheduling-order path, bit-identical to history.
  EventId schedule_at(Time at, EventFn fn) {
    if (self_chan_ != 0) {
      return sim_->schedule_keyed(at, self_chan_, ++self_seq_, std::move(fn));
    }
    return sim_->schedule_at(at, std::move(fn));
  }
  EventId schedule_in(Time delay, EventFn fn) {
    return schedule_at(sim_->now() + delay, std::move(fn));
  }
  void cancel_event(EventId id) { sim_->cancel(id); }

  void count_drop(DropReason reason) {
    ++drop_counts_[static_cast<int>(reason)];
  }

  /// Sizes the per-port tx counters; subclasses call this once at
  /// construction so count_tx stays a bare indexed add.
  void init_tx_ports(std::size_t ports) { tx_byte_counts_.assign(ports, 0); }
  void count_tx(PortId port, std::int64_t bytes) {
    tx_byte_counts_[port] += static_cast<std::uint64_t>(bytes);
  }

  Network& net_;
  NodeId id_;

 private:
  friend class Network;
  /// Called by the Network right after construction: the simulator this
  /// device schedules on (the network simulator, or the owning shard's) and
  /// the device's self-channel (0 = legacy scheduling-order mode).
  void bind_sim(Simulator* sim, std::uint64_t self_chan) {
    sim_ = sim;
    self_chan_ = self_chan;
  }

  Simulator* sim_ = nullptr;
  std::uint64_t self_chan_ = 0;
  std::uint64_t self_seq_ = 0;
  std::uint64_t drop_counts_[kNumDropReasons] = {};
  std::vector<std::uint64_t> tx_byte_counts_;
};

}  // namespace dcdl
