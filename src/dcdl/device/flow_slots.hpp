// Per-switch flow-slot registry: dense indices for per-flow accounting.
//
// The ingress counters track bytes per (port, class, flow). Keying that by
// FlowId directly forces a hash lookup on every packet arrival AND
// departure; instead each switch assigns every flow *currently resident in
// its buffer* a small dense slot index, and the per-counter tallies become
// plain vectors indexed by slot. The registry counts switch-wide resident
// bytes per slot and recycles a slot the moment its flow fully drains, so
// the dense vectors stay sized to the live working set, not to the lifetime
// flow population (a long campaign cycles through thousands of flow ids; a
// switch only ever buffers a handful at once).
#pragma once

#include <cstdint>
#include <vector>

#include "dcdl/common/contract.hpp"
#include "dcdl/common/flow_map.hpp"
#include "dcdl/net/packet.hpp"

namespace dcdl {

class FlowSlotRegistry {
 public:
  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;

  /// Slot for `flow`, allocating (or recycling) one on first resident byte;
  /// records `bytes` entering the switch. One dense-array read per packet.
  std::uint32_t acquire(FlowId flow, std::int64_t bytes) {
    std::uint32_t& idx = index_.at_or_insert(flow);
    if (idx == 0) {  // FlowMap default-constructs to 0 == "no slot"
      std::uint32_t slot;
      if (!free_.empty()) {
        slot = free_.back();
        free_.pop_back();
        slots_[slot] = SlotInfo{flow, 0};
      } else {
        slot = static_cast<std::uint32_t>(slots_.size());
        slots_.push_back(SlotInfo{flow, 0});
      }
      idx = slot + 1;
    }
    const std::uint32_t slot = idx - 1;
    DCDL_ASSERT(slots_[slot].flow == flow);
    slots_[slot].resident_bytes += bytes;
    return slot;
  }

  /// Records `bytes` leaving the switch; frees the slot when the flow's
  /// switch-wide residency reaches zero (every per-counter tally for it is
  /// exactly zero at that point, so recycling needs no sweeps).
  void release(std::uint32_t slot, std::int64_t bytes) {
    SlotInfo& s = slots_[slot];
    s.resident_bytes -= bytes;
    DCDL_ASSERT(s.resident_bytes >= 0);
    if (s.resident_bytes == 0) {
      index_.at_or_insert(s.flow) = 0;
      free_.push_back(slot);
    }
  }

  /// Slot of a currently-resident flow, kNoSlot if it holds no bytes here.
  std::uint32_t lookup(FlowId flow) const {
    const std::uint32_t* idx = index_.find(flow);
    return idx == nullptr || *idx == 0 ? kNoSlot : *idx - 1;
  }

  /// High-water slot count — the size dense accounting vectors grow to.
  std::uint32_t capacity() const {
    return static_cast<std::uint32_t>(slots_.size());
  }

  /// Flows currently holding buffer in this switch.
  std::size_t resident_flows() const { return slots_.size() - free_.size(); }

 private:
  struct SlotInfo {
    FlowId flow = 0;
    std::int64_t resident_bytes = 0;
  };

  FlowMap<std::uint32_t> index_;  ///< flow -> slot + 1; 0 means absent
  std::vector<SlotInfo> slots_;
  std::vector<std::uint32_t> free_;
};

}  // namespace dcdl
