#include "dcdl/device/host.hpp"

#include <algorithm>

#include "dcdl/common/contract.hpp"
#include "dcdl/device/network.hpp"

namespace dcdl {

Host::Host(Network& net, NodeId id, const NetConfig& cfg)
    : Device(net, id), cfg_(cfg) {
  DCDL_EXPECTS(net.topo().degree(id) == 1);  // hosts are single-homed
  init_tx_ports(1);
  jitter_rng_.reseed(cfg.jitter_seed * 0x9E3779B97F4A7C15ULL + id);
}

void Host::add_flow(const FlowSpec& spec, std::unique_ptr<Pacer> pacer) {
  DCDL_EXPECTS(spec.src_host == id_);
  DCDL_EXPECTS(spec.prio < cfg_.num_classes);
  DCDL_EXPECTS(spec.packet_bytes > 0);
  flows_.push_back(FlowState{spec, std::move(pacer)});
  schedule_wake(std::max(spec.start, now()));
}

void Host::stop_flow(FlowId flow) {
  for (auto& f : flows_) {
    if (f.spec.id == flow) f.stopped = true;
  }
}

void Host::stop_all_flows() {
  for (auto& f : flows_) f.stopped = true;
}

void Host::limit_flow(FlowId flow, Rate rate, std::int64_t burst_bytes) {
  for (auto& f : flows_) {
    if (f.spec.id == flow) {
      f.pacer = std::make_unique<TokenBucketPacer>(rate, burst_bytes);
    }
  }
}

void Host::hold_flow(FlowId flow, bool held) {
  for (auto& f : flows_) {
    if (f.spec.id != flow) continue;
    if (f.held == held) return;
    f.held = held;
    if (!held) try_send();  // re-enter the scheduler right away
    return;
  }
}

bool Host::flow_held(FlowId flow) const {
  for (const auto& f : flows_) {
    if (f.spec.id == flow) return f.held;
  }
  return false;
}

void Host::credit_delivery(FlowId flow, std::int64_t bytes,
                           std::uint64_t packets) {
  auto& s = delivered_.at_or_insert(flow);
  s.bytes += bytes;
  s.packets += packets;
}

void Host::schedule_wake(Time at) {
  if (busy_) return;  // complete_transmit will call try_send anyway
  if (wake_.valid() && wake_at_ <= at) return;
  cancel_event(wake_);
  wake_at_ = at;
  wake_ = schedule_at(at, [this] {
    wake_ = EventId{};
    wake_at_ = Time::max();
    try_send();
  });
}

void Host::try_send() {
  if (busy_ || flows_.empty()) return;
  const Time now = this->now();
  Time earliest = Time::max();
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    const std::size_t idx = (rr_ + i) % flows_.size();
    FlowState& f = flows_[idx];
    if (f.stopped || f.held || now >= f.spec.stop) continue;
    if (now < f.spec.start) {
      earliest = std::min(earliest, f.spec.start);
      continue;
    }
    if (paused_now(f.spec.prio)) continue;  // PFC backpressure at the NIC
    if (f.pacer) {
      const Time ready = f.pacer->ready_at(now, f.spec.packet_bytes);
      if (ready > now) {
        earliest = std::min(earliest, ready);
        continue;
      }
    }

    // Inject one packet of this flow.
    rr_ = (idx + 1) % flows_.size();
    Packet pkt;
    pkt.id = net_.next_packet_id(id_);
    pkt.flow = f.spec.id;
    pkt.src = f.spec.src_host;
    pkt.dst = f.spec.dst_host;
    pkt.size_bytes = f.spec.packet_bytes;
    pkt.ttl = f.spec.ttl;
    pkt.prio = f.spec.prio;
    pkt.ecn_capable = f.spec.ecn_capable;
    pkt.injected_at = now;
    if (f.pacer) f.pacer->on_sent(now, pkt.size_bytes);
    f.sent_bytes += pkt.size_bytes;
    f.sent_packets += 1;
    if (net_.trace().tx_start) net_.trace().tx_start(now, pkt, id_, 0);
    count_tx(0, pkt.size_bytes);

    busy_ = true;
    Time hold = serialization_time(pkt.size_bytes, net_.link_rate(id_, 0));
    if (cfg_.tx_jitter > Time::zero()) {
      hold += Time{static_cast<std::int64_t>(jitter_rng_.uniform(
          static_cast<std::uint64_t>(cfg_.tx_jitter.ps()) + 1))};
    }
    schedule_in(hold, [this] { complete_transmit(); });
    net_.transmit(id_, 0, pkt);
    return;
  }
  if (earliest < Time::max()) schedule_wake(earliest);
}

void Host::complete_transmit() {
  busy_ = false;
  try_send();
}

void Host::on_receive(PortId, Packet pkt) {
  auto& s = delivered_.at_or_insert(pkt.flow);
  s.bytes += pkt.size_bytes;
  s.packets += 1;
  if (net_.trace().delivered) net_.trace().delivered(now(), pkt);
  if (pkt.ecn_marked) net_.send_cnp(id_, pkt.flow, pkt.src);
  if (cfg_.rtt_feedback) {
    net_.send_rtt_sample(id_, pkt.flow, pkt.src, now() - pkt.injected_at);
  }
}

void Host::on_rtt(FlowId flow, Time rtt) {
  const Time now = this->now();
  for (auto& f : flows_) {
    if (f.spec.id == flow && f.pacer) {
      f.pacer->on_rtt(now, rtt);
      try_send();
      if (!busy_) schedule_wake(now);
      return;
    }
  }
}

bool Host::paused_now(ClassId cls) const {
  if (!paused_.at(cls)) return false;
  if (cfg_.pfc.pause_quanta > Time::zero() &&
      now() >= pause_expiry_.at(cls)) {
    return false;  // quanta lapsed without refresh
  }
  return true;
}

void Host::on_pfc(PortId port, ClassId cls, bool pause) {
  DCDL_EXPECTS(port == 0);
  paused_.at(cls) = pause;
  if (pause && cfg_.pfc.pause_quanta > Time::zero()) {
    pause_expiry_.at(cls) = now() + cfg_.pfc.pause_quanta;
    schedule_in(cfg_.pfc.pause_quanta, [this] { try_send(); });
  }
  if (!pause) try_send();
}

void Host::on_cnp(FlowId flow) {
  const Time now = this->now();
  for (auto& f : flows_) {
    if (f.spec.id == flow && f.pacer) {
      f.pacer->on_cnp(now);
      try_send();
      if (!busy_) schedule_wake(now);  // re-evaluate pacing after rate change
      return;
    }
  }
}

std::int64_t Host::sent_bytes(FlowId flow) const {
  for (const auto& f : flows_) {
    if (f.spec.id == flow) return f.sent_bytes;
  }
  return 0;
}

std::uint64_t Host::sent_packets(FlowId flow) const {
  for (const auto& f : flows_) {
    if (f.spec.id == flow) return f.sent_packets;
  }
  return 0;
}

std::int64_t Host::delivered_bytes(FlowId flow) const {
  const SinkStats* s = delivered_.find(flow);
  return s == nullptr ? 0 : s->bytes;
}

std::uint64_t Host::delivered_packets(FlowId flow) const {
  const SinkStats* s = delivered_.find(flow);
  return s == nullptr ? 0 : s->packets;
}

Pacer* Host::pacer(FlowId flow) {
  for (auto& f : flows_) {
    if (f.spec.id == flow) return f.pacer.get();
  }
  return nullptr;
}

}  // namespace dcdl
