// Host / RDMA-NIC model.
//
// Hosts source flows (each with a pacing model) and sink packets. The NIC
// egress honours PFC: when the attached switch pauses a class, flows of
// that class stop at the source — which is exactly the backpressure that
// lets deadlocks starve whole applications. Active flows of equal priority
// share the NIC round-robin.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "dcdl/common/flow_map.hpp"
#include "dcdl/common/rng.hpp"
#include "dcdl/device/config.hpp"
#include "dcdl/device/device.hpp"
#include "dcdl/sim/simulator.hpp"
#include "dcdl/traffic/flow.hpp"

namespace dcdl {

class Host final : public Device {
 public:
  Host(Network& net, NodeId id, const NetConfig& cfg);

  /// Registers a flow sourced by this host. A null pacer means greedy
  /// (infinite demand). Injection begins at spec.start.
  void add_flow(const FlowSpec& spec, std::unique_ptr<Pacer> pacer = nullptr);

  /// Stops a flow immediately (no further packets are injected).
  void stop_flow(FlowId flow);
  void stop_all_flows();

  /// Replaces a flow's pacer with a token bucket at `rate` — the NIC-side
  /// rate limiter used by intelligent rate limiting (shaping at the source
  /// avoids the PFC backpressure that switch-side shaping inflicts on
  /// co-located innocent flows).
  void limit_flow(FlowId flow, Rate rate, std::int64_t burst_bytes);

  /// Reversibly holds a flow at the NIC (hybrid engine boundary adapter:
  /// while a flow is integrated by the fluid model its packets must not
  /// also exist in the event stream). A held flow injects nothing but
  /// keeps its pacer and spec intact; releasing it re-enters the normal
  /// scheduler immediately, with the original pacer deciding the next
  /// departure.
  void hold_flow(FlowId flow, bool held);
  bool flow_held(FlowId flow) const;

  /// Accounts `bytes`/`packets` of `flow` as delivered at this host
  /// without any packet existing (hybrid boundary adapter: fluid-region
  /// delivery converted back into sink statistics). Deliberately does not
  /// fire Trace::delivered — no packet, no trace record, golden digests
  /// unchanged.
  void credit_delivery(FlowId flow, std::int64_t bytes, std::uint64_t packets);

  // Device interface.
  void on_receive(PortId in_port, Packet pkt) override;
  void on_pfc(PortId port, ClassId cls, bool pause) override;

  /// Congestion feedback for a flow sourced here (from Network::send_cnp).
  void on_cnp(FlowId flow);

  /// RTT sample for a flow sourced here (from Network::send_rtt_sample).
  void on_rtt(FlowId flow, Time rtt);

  // --- statistics ---
  std::int64_t sent_bytes(FlowId flow) const;
  std::uint64_t sent_packets(FlowId flow) const;
  std::int64_t delivered_bytes(FlowId flow) const;
  std::uint64_t delivered_packets(FlowId flow) const;
  Pacer* pacer(FlowId flow);
  bool egress_paused(ClassId cls) const { return paused_.at(cls); }

 private:
  struct FlowState {
    FlowSpec spec;
    std::unique_ptr<Pacer> pacer;  // null = greedy
    std::int64_t sent_bytes = 0;
    std::uint64_t sent_packets = 0;
    bool stopped = false;
    bool held = false;  ///< fluidized by the hybrid engine
  };
  struct SinkStats {
    std::int64_t bytes = 0;
    std::uint64_t packets = 0;
  };

  void try_send();
  void complete_transmit();
  void schedule_wake(Time at);
  /// Pause state after 802.1Qbb quanta expiry (if configured).
  bool paused_now(ClassId cls) const;

  const NetConfig& cfg_;
  std::vector<FlowState> flows_;
  std::size_t rr_ = 0;
  bool busy_ = false;
  std::array<bool, kMaxClasses> paused_{};
  std::array<Time, kMaxClasses> pause_expiry_{};
  EventId wake_{};
  Time wake_at_ = Time::max();
  /// Sink tallies, dense-indexed by FlowId (no hashing per delivery).
  FlowMap<SinkStats> delivered_;
  Rng jitter_rng_;
};

}  // namespace dcdl
