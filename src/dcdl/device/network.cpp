#include "dcdl/device/network.hpp"

#include <algorithm>

#include "dcdl/common/contract.hpp"
#include "dcdl/device/host.hpp"
#include "dcdl/device/switch.hpp"

namespace dcdl {

thread_local Trace* Network::tls_trace_ = nullptr;

const char* to_string(DropReason r) {
  switch (r) {
    case DropReason::kTtlExpired: return "ttl_expired";
    case DropReason::kNoRoute: return "no_route";
    case DropReason::kBufferOverflow: return "buffer_overflow";
    case DropReason::kWatchdogReset: return "watchdog_reset";
    case DropReason::kDataplaneReset: return "dataplane_reset";
  }
  return "?";
}

namespace {

// Canonical channel layout (see network.hpp file comment). Channel 0 is the
// legacy scheduling-order channel and must never be produced here.
std::uint64_t wire_channel(std::uint32_t link, std::uint32_t dir) {
  return 1 + 2ull * link + dir;
}
std::uint64_t oob_channel(const Topology& topo, NodeId from) {
  return 1 + 2ull * topo.link_count() + from;
}
std::uint64_t self_channel(const Topology& topo, NodeId id) {
  return 1 + 2ull * topo.link_count() + topo.node_count() + id;
}

}  // namespace

Network::Network(Simulator& sim, const Topology& topo, NetConfig cfg)
    : sim_(sim), topo_(topo), cfg_(std::move(cfg)) {
  DCDL_EXPECTS(cfg_.pfc.xon_bytes <= cfg_.pfc.xoff_bytes);
  const int requested = ScopedShardRequest::active();
  if (requested >= 1) init_sharding(requested);
  devices_.reserve(topo.node_count());
  for (NodeId id = 0; id < topo.node_count(); ++id) {
    if (topo.is_switch(id)) {
      devices_.push_back(std::make_unique<Switch>(*this, id, cfg_));
    } else {
      devices_.push_back(std::make_unique<Host>(*this, id, cfg_));
    }
    if (engine_ != nullptr) {
      devices_.back()->bind_sim(&engine_->shard_sim(plan_.node_shard[id]),
                                self_channel(topo_, id));
    } else {
      devices_.back()->bind_sim(&sim_, /*self_chan=*/0);
    }
  }
}

Network::~Network() = default;

void Network::init_sharding(int requested_shards) {
  plan_ = topo::assign_shards(topo_, requested_shards);
  Time lookahead = Time::max();
  if (plan_.num_shards > 1) {
    // The conservative horizon: nothing a shard does before time T can
    // affect another shard before T + lookahead. Wire traffic (data and
    // PFC frames alike) crosses the cut no faster than the smallest
    // cut-link propagation delay; out-of-band CNP/RTT feedback — which
    // skips the wire entirely — is bounded by its configured delay, so it
    // clamps the horizon whenever the scenario can generate it.
    lookahead = plan_.min_cut_delay;
    if (cfg_.ecn.enabled || cfg_.rtt_feedback) {
      lookahead = std::min(lookahead, cfg_.cnp_feedback_delay);
    }
    DCDL_EXPECTS(lookahead > Time::zero());
  }
  engine_ = std::make_unique<ShardedEngine>(sim_, plan_.num_shards, lookahead);
  wire_seq_.assign(2 * static_cast<std::size_t>(topo_.link_count()), 0);
  oob_seq_.assign(topo_.node_count(), 0);
  host_pkt_seq_.assign(topo_.node_count(), 0);
  shard_traces_.resize(static_cast<std::size_t>(plan_.num_shards));
  engine_->set_on_worker_start(
      [this](std::uint32_t s) { tls_trace_ = &shard_traces_[s]; });
  engine_->set_on_run_start([this] { arm_shard_traces(); });
  engine_->set_replay(
      [this](const ShardedEngine::TraceRec& rec) { replay_record(rec); });
}

Trace& Network::trace() {
  return tls_trace_ != nullptr ? *tls_trace_ : trace_;
}

ShardedEngine::TraceRec Network::make_rec(std::uint32_t shard,
                                          ShardedEngine::RecKind kind,
                                          Time at) {
  Simulator& sm = engine_->shard_sim(shard);
  ShardedEngine::TraceRec rec;
  rec.at = at;
  rec.chan = sm.current_chan();
  rec.seq = sm.current_seq();
  rec.intra = sm.next_intra();
  rec.kind = kind;
  return rec;
}

void Network::arm_shard_traces() {
  for (std::uint32_t s = 0; s < shard_traces_.size(); ++s) {
    Trace& st = shard_traces_[s];
    if (trace_.pfc_state) {
      st.pfc_state = [this, s](Time t, NodeId n, PortId p, ClassId c,
                               bool paused) {
        ShardedEngine::TraceRec rec =
            make_rec(s, ShardedEngine::RecKind::kPfcState, t);
        rec.node = n;
        rec.port = p;
        rec.cls = c;
        rec.flag = paused ? 1 : 0;
        engine_->push_record(s, rec);
      };
    } else {
      st.pfc_state = nullptr;
    }
    if (trace_.queue_bytes) {
      st.queue_bytes = [this, s](Time t, NodeId n, PortId p, ClassId c,
                                 std::int64_t bytes) {
        ShardedEngine::TraceRec rec =
            make_rec(s, ShardedEngine::RecKind::kQueueBytes, t);
        rec.node = n;
        rec.port = p;
        rec.cls = c;
        rec.value = bytes;
        engine_->push_record(s, rec);
      };
    } else {
      st.queue_bytes = nullptr;
    }
    if (trace_.delivered) {
      st.delivered = [this, s](Time t, const Packet& pkt) {
        ShardedEngine::TraceRec rec =
            make_rec(s, ShardedEngine::RecKind::kDelivered, t);
        rec.pkt = pkt;
        engine_->push_record(s, rec);
      };
    } else {
      st.delivered = nullptr;
    }
    if (trace_.dropped) {
      st.dropped = [this, s](Time t, const Packet& pkt, NodeId n,
                             DropReason r) {
        ShardedEngine::TraceRec rec =
            make_rec(s, ShardedEngine::RecKind::kDropped, t);
        rec.pkt = pkt;
        rec.node = n;
        rec.flag = static_cast<std::uint8_t>(r);
        engine_->push_record(s, rec);
      };
    } else {
      st.dropped = nullptr;
    }
    if (trace_.tx_start) {
      st.tx_start = [this, s](Time t, const Packet& pkt, NodeId n, PortId p) {
        ShardedEngine::TraceRec rec =
            make_rec(s, ShardedEngine::RecKind::kTxStart, t);
        rec.pkt = pkt;
        rec.node = n;
        rec.port = p;
        engine_->push_record(s, rec);
      };
    } else {
      st.tx_start = nullptr;
    }
    if (trace_.cnp) {
      st.cnp = [this, s](Time t, FlowId f) {
        ShardedEngine::TraceRec rec =
            make_rec(s, ShardedEngine::RecKind::kCnp, t);
        rec.flow = f;
        engine_->push_record(s, rec);
      };
    } else {
      st.cnp = nullptr;
    }
    if (trace_.hop_wait) {
      st.hop_wait = [this, s](Time t, NodeId n, PortId p, ClassId c,
                              Time waited) {
        ShardedEngine::TraceRec rec =
            make_rec(s, ShardedEngine::RecKind::kHopWait, t);
        rec.node = n;
        rec.port = p;
        rec.cls = c;
        rec.value = waited.ps();
        engine_->push_record(s, rec);
      };
    } else {
      st.hop_wait = nullptr;
    }
    if (trace_.dataplane) {
      st.dataplane = [this, s](Time t, NodeId n, dataplane::DataplaneEvent e,
                               ClassId c, std::uint64_t detail) {
        ShardedEngine::TraceRec rec =
            make_rec(s, ShardedEngine::RecKind::kDataplane, t);
        rec.node = n;
        rec.cls = c;
        rec.flag = static_cast<std::uint8_t>(e);
        rec.value = static_cast<std::int64_t>(detail);
        engine_->push_record(s, rec);
      };
    } else {
      st.dataplane = nullptr;
    }
  }
}

void Network::replay_record(const ShardedEngine::TraceRec& rec) {
  switch (rec.kind) {
    case ShardedEngine::RecKind::kPfcState:
      trace_.pfc_state(rec.at, rec.node, rec.port, rec.cls, rec.flag != 0);
      break;
    case ShardedEngine::RecKind::kQueueBytes:
      trace_.queue_bytes(rec.at, rec.node, rec.port, rec.cls, rec.value);
      break;
    case ShardedEngine::RecKind::kDelivered:
      trace_.delivered(rec.at, rec.pkt);
      break;
    case ShardedEngine::RecKind::kDropped:
      trace_.dropped(rec.at, rec.pkt, rec.node,
                     static_cast<DropReason>(rec.flag));
      break;
    case ShardedEngine::RecKind::kTxStart:
      trace_.tx_start(rec.at, rec.pkt, rec.node, rec.port);
      break;
    case ShardedEngine::RecKind::kCnp:
      trace_.cnp(rec.at, rec.flow);
      break;
    case ShardedEngine::RecKind::kHopWait:
      trace_.hop_wait(rec.at, rec.node, rec.port, rec.cls, Time{rec.value});
      break;
    case ShardedEngine::RecKind::kDataplane:
      trace_.dataplane(rec.at, rec.node,
                       static_cast<dataplane::DataplaneEvent>(rec.flag),
                       rec.cls, static_cast<std::uint64_t>(rec.value));
      break;
  }
}

Switch& Network::switch_at(NodeId id) {
  DCDL_EXPECTS(topo_.is_switch(id));
  return static_cast<Switch&>(*devices_.at(id));
}

const Switch& Network::switch_at(NodeId id) const {
  DCDL_EXPECTS(topo_.is_switch(id));
  return static_cast<const Switch&>(*devices_.at(id));
}

Host& Network::host_at(NodeId id) {
  DCDL_EXPECTS(topo_.is_host(id));
  return static_cast<Host&>(*devices_.at(id));
}

const Host& Network::host_at(NodeId id) const {
  DCDL_EXPECTS(topo_.is_host(id));
  return static_cast<const Host&>(*devices_.at(id));
}

void Network::transmit(NodeId from, PortId port, Packet pkt) {
  const PortPeer& pp = topo_.peer(from, port);
  const LinkSpec& link = topo_.link(pp.link);
  const Time ser = serialization_time(pkt.size_bytes, link.rate);
  DCDL_ASSERT(pp.peer_node < devices_.size());
  Device* peer = devices_[pp.peer_node].get();
  const PortId peer_port = pp.peer_port;
  if (engine_ != nullptr) {
    const std::uint32_t dir = from == link.a ? 0u : 1u;
    const Time at = device_sim(from).now() + ser + link.delay;
    engine_->post(plan_.node_shard[pp.peer_node], at,
                  wire_channel(pp.link, dir), ++wire_seq_[2 * pp.link + dir],
                  [peer, peer_port, pkt]() mutable {
                    peer->on_receive(peer_port, pkt);
                  });
    return;
  }
  sim_.schedule_in(ser + link.delay, [peer, peer_port, pkt]() mutable {
    peer->on_receive(peer_port, pkt);
  });
}

void Network::send_pfc(NodeId from, PortId port, ClassId cls, bool pause) {
  const PortPeer& pp = topo_.peer(from, port);
  const LinkSpec& link = topo_.link(pp.link);
  const Time ser = serialization_time(cfg_.pfc.control_frame_bytes, link.rate);
  DCDL_ASSERT(pp.peer_node < devices_.size());
  Device* peer = devices_[pp.peer_node].get();
  const PortId peer_port = pp.peer_port;
  if (engine_ != nullptr) {
    // PFC frames share the wire channel (and its sequence space) with data:
    // both are emissions of the same directed link, keyed in the order the
    // sending device produced them.
    const std::uint32_t dir = from == link.a ? 0u : 1u;
    const Time at = device_sim(from).now() + ser + link.delay;
    engine_->post(plan_.node_shard[pp.peer_node], at,
                  wire_channel(pp.link, dir), ++wire_seq_[2 * pp.link + dir],
                  [peer, peer_port, cls, pause] {
                    peer->on_pfc(peer_port, cls, pause);
                  });
    return;
  }
  sim_.schedule_in(ser + link.delay, [peer, peer_port, cls, pause] {
    peer->on_pfc(peer_port, cls, pause);
  });
}

void Network::send_pfc(NodeId from, PortId port, ClassId cls, bool pause,
                       const dataplane::PauseTag& tag) {
  const PortPeer& pp = topo_.peer(from, port);
  if (!topo_.is_switch(pp.peer_node)) {
    // Hosts have no pipeline; the tag is meaningful only switch-to-switch.
    send_pfc(from, port, cls, pause);
    return;
  }
  const LinkSpec& link = topo_.link(pp.link);
  const Time ser = serialization_time(cfg_.pfc.control_frame_bytes, link.rate);
  auto* peer = static_cast<Switch*>(devices_[pp.peer_node].get());
  const PortId peer_port = pp.peer_port;
  if (engine_ != nullptr) {
    const std::uint32_t dir = from == link.a ? 0u : 1u;
    const Time at = device_sim(from).now() + ser + link.delay;
    engine_->post(plan_.node_shard[pp.peer_node], at,
                  wire_channel(pp.link, dir), ++wire_seq_[2 * pp.link + dir],
                  [peer, peer_port, cls, pause, tag] {
                    peer->on_pfc_tagged(peer_port, cls, pause, tag);
                  });
    return;
  }
  sim_.schedule_in(ser + link.delay, [peer, peer_port, cls, pause, tag] {
    peer->on_pfc_tagged(peer_port, cls, pause, tag);
  });
}

void Network::send_cnp(NodeId from, FlowId flow, NodeId src_host) {
  DCDL_EXPECTS(topo_.is_host(src_host));
  if (engine_ != nullptr) {
    const Time at = device_sim(from).now() + cfg_.cnp_feedback_delay;
    engine_->post(plan_.node_shard[src_host], at, oob_channel(topo_, from),
                  ++oob_seq_[from], [this, flow, src_host] {
                    Trace& tr = trace();
                    if (tr.cnp) tr.cnp(device(src_host).now(), flow);
                    host_at(src_host).on_cnp(flow);
                  });
    return;
  }
  sim_.schedule_in(cfg_.cnp_feedback_delay, [this, flow, src_host] {
    if (trace_.cnp) trace_.cnp(sim_.now(), flow);
    host_at(src_host).on_cnp(flow);
  });
}

void Network::send_rtt_sample(NodeId from, FlowId flow, NodeId src_host,
                              Time rtt) {
  DCDL_EXPECTS(topo_.is_host(src_host));
  if (engine_ != nullptr) {
    const Time at = device_sim(from).now() + cfg_.cnp_feedback_delay;
    engine_->post(plan_.node_shard[src_host], at, oob_channel(topo_, from),
                  ++oob_seq_[from], [this, flow, src_host, rtt] {
                    host_at(src_host).on_rtt(flow, rtt);
                  });
    return;
  }
  sim_.schedule_in(cfg_.cnp_feedback_delay, [this, flow, src_host, rtt] {
    host_at(src_host).on_rtt(flow, rtt);
  });
}

void Network::notify_routes_changed(NodeId sw) {
  switch_at(sw).on_routes_changed();
}

std::int64_t Network::total_queued_bytes() const {
  std::int64_t total = 0;
  for (NodeId id = 0; id < topo_.node_count(); ++id) {
    if (topo_.is_switch(id)) total += switch_at(id).total_buffered();
  }
  return total;
}

std::uint64_t Network::drops(DropReason reason) const {
  std::uint64_t total = 0;
  for (const std::unique_ptr<Device>& d : devices_) {
    total += d->drop_count(reason);
  }
  return total;
}

}  // namespace dcdl
