#include "dcdl/device/network.hpp"

#include "dcdl/common/contract.hpp"
#include "dcdl/device/host.hpp"
#include "dcdl/device/switch.hpp"

namespace dcdl {

const char* to_string(DropReason r) {
  switch (r) {
    case DropReason::kTtlExpired: return "ttl_expired";
    case DropReason::kNoRoute: return "no_route";
    case DropReason::kBufferOverflow: return "buffer_overflow";
    case DropReason::kWatchdogReset: return "watchdog_reset";
  }
  return "?";
}

Network::Network(Simulator& sim, const Topology& topo, NetConfig cfg)
    : sim_(sim), topo_(topo), cfg_(std::move(cfg)) {
  DCDL_EXPECTS(cfg_.pfc.xon_bytes <= cfg_.pfc.xoff_bytes);
  devices_.reserve(topo.node_count());
  for (NodeId id = 0; id < topo.node_count(); ++id) {
    if (topo.is_switch(id)) {
      devices_.push_back(std::make_unique<Switch>(*this, id, cfg_));
    } else {
      devices_.push_back(std::make_unique<Host>(*this, id, cfg_));
    }
  }
}

Network::~Network() = default;

Switch& Network::switch_at(NodeId id) {
  DCDL_EXPECTS(topo_.is_switch(id));
  return static_cast<Switch&>(*devices_.at(id));
}

const Switch& Network::switch_at(NodeId id) const {
  DCDL_EXPECTS(topo_.is_switch(id));
  return static_cast<const Switch&>(*devices_.at(id));
}

Host& Network::host_at(NodeId id) {
  DCDL_EXPECTS(topo_.is_host(id));
  return static_cast<Host&>(*devices_.at(id));
}

const Host& Network::host_at(NodeId id) const {
  DCDL_EXPECTS(topo_.is_host(id));
  return static_cast<const Host&>(*devices_.at(id));
}

void Network::transmit(NodeId from, PortId port, Packet pkt) {
  const PortPeer& pp = topo_.peer(from, port);
  const LinkSpec& link = topo_.link(pp.link);
  const Time ser = serialization_time(pkt.size_bytes, link.rate);
  DCDL_ASSERT(pp.peer_node < devices_.size());
  Device* peer = devices_[pp.peer_node].get();
  const PortId peer_port = pp.peer_port;
  sim_.schedule_in(ser + link.delay, [peer, peer_port, pkt]() mutable {
    peer->on_receive(peer_port, pkt);
  });
}

void Network::send_pfc(NodeId from, PortId port, ClassId cls, bool pause) {
  const PortPeer& pp = topo_.peer(from, port);
  const LinkSpec& link = topo_.link(pp.link);
  const Time ser = serialization_time(cfg_.pfc.control_frame_bytes, link.rate);
  DCDL_ASSERT(pp.peer_node < devices_.size());
  Device* peer = devices_[pp.peer_node].get();
  const PortId peer_port = pp.peer_port;
  sim_.schedule_in(ser + link.delay, [peer, peer_port, cls, pause] {
    peer->on_pfc(peer_port, cls, pause);
  });
}

void Network::send_cnp(FlowId flow, NodeId src_host) {
  DCDL_EXPECTS(topo_.is_host(src_host));
  sim_.schedule_in(cfg_.cnp_feedback_delay, [this, flow, src_host] {
    if (trace_.cnp) trace_.cnp(sim_.now(), flow);
    host_at(src_host).on_cnp(flow);
  });
}

void Network::send_rtt_sample(FlowId flow, NodeId src_host, Time rtt) {
  DCDL_EXPECTS(topo_.is_host(src_host));
  sim_.schedule_in(cfg_.cnp_feedback_delay, [this, flow, src_host, rtt] {
    host_at(src_host).on_rtt(flow, rtt);
  });
}

void Network::notify_routes_changed(NodeId sw) {
  switch_at(sw).on_routes_changed();
}

std::int64_t Network::total_queued_bytes() const {
  std::int64_t total = 0;
  for (NodeId id = 0; id < topo_.node_count(); ++id) {
    if (topo_.is_switch(id)) total += switch_at(id).total_buffered();
  }
  return total;
}

}  // namespace dcdl
