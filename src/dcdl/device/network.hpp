// The runtime network: owns the devices built from a Topology, moves packets
// and PFC frames across wires, and exposes global introspection used by the
// analysis and statistics layers.
//
// Sharded mode: when a ScopedShardRequest is active on the constructing
// thread, the Network partitions the topology (topo/partition.hpp), builds a
// ShardedEngine whose lookahead is the minimum cut-link delay (clamped by
// the out-of-band feedback delay when ECN/TIMELY is enabled), binds every
// device to its shard's simulator, and routes cross-shard wire/PFC/feedback
// events through the engine's mailboxes under canonical (time, channel,
// sequence) keys:
//
//   wire channels  1 + 2*link + dir        seq: per directed link
//   oob channels   1 + 2L + sender          seq: per sending node
//   self channels  1 + 2L + N + device      seq: per device
//
// Every sequence counter has exactly one writer (the sending side's shard),
// and every key is a pure function of the scenario — so the merged event
// order, and with it every observable byte, is identical for all shard
// counts. The externally visible Simulator (`sim()`) becomes the control
// simulator: run_until() on it drives the sharded engine via its run
// delegate, and monitors/samplers scheduled on it keep working unchanged.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "dcdl/common/units.hpp"
#include "dcdl/device/config.hpp"
#include "dcdl/device/device.hpp"
#include "dcdl/device/trace.hpp"
#include "dcdl/net/packet.hpp"
#include "dcdl/sim/sharded.hpp"
#include "dcdl/sim/simulator.hpp"
#include "dcdl/topo/partition.hpp"
#include "dcdl/topo/topology.hpp"

namespace dcdl {

class Switch;
class Host;

class Network {
 public:
  /// Builds one device per topology node. The topology and simulator must
  /// outlive the network. Constructing under a ScopedShardRequest opts the
  /// network into sharded execution (see file comment).
  Network(Simulator& sim, const Topology& topo, NetConfig cfg);
  ~Network();
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  Simulator& sim() { return sim_; }
  const Topology& topo() const { return topo_; }
  const NetConfig& config() const { return cfg_; }

  /// The observation hooks. On shard worker threads this returns the
  /// shard's buffering trace (records tagged with the executing event's
  /// key, merged and replayed globally ordered at each window barrier);
  /// everywhere else — attachment sites, legacy runs, control phases — the
  /// real hook set.
  Trace& trace();

  /// True when this network runs on the sharded engine.
  bool sharded() const { return engine_ != nullptr; }
  /// The sharded engine (sharded() must be true) — bench/tests introspect
  /// window and mailbox statistics through this.
  ShardedEngine& engine() { return *engine_; }
  const topo::ShardPlan& shard_plan() const { return plan_; }

  Device& device(NodeId id) { return *devices_.at(id); }
  Switch& switch_at(NodeId id);
  const Switch& switch_at(NodeId id) const;
  Host& host_at(NodeId id);
  const Host& host_at(NodeId id) const;

  Rate link_rate(NodeId node, PortId port) const {
    return topo_.link(topo_.peer(node, port).link).rate;
  }
  Time link_delay(NodeId node, PortId port) const {
    return topo_.link(topo_.peer(node, port).link).delay;
  }

  /// Serializes `pkt` out of (from, port): the peer's on_receive fires after
  /// serialization + propagation. The caller owns modelling the sender's
  /// busy period (it lasts exactly serialization_time(size, link_rate)).
  void transmit(NodeId from, PortId port, Packet pkt);

  /// Sends a PFC pause/resume for `cls` to the peer of (from, port).
  /// Control frames incur propagation plus their own 64-byte serialization
  /// but never queue behind data (modelling simplification; see DESIGN.md).
  void send_pfc(NodeId from, PortId port, ClassId cls, bool pause);

  /// Tag-carrying variant (dataplane pipeline enabled): the PauseTag rides
  /// with the PFC frame and is delivered through Switch::on_pfc_tagged when
  /// the peer is a switch (hosts receive the plain frame — the tag is
  /// switch-to-switch metadata). Same wire channel and sequence space as
  /// the untagged path, so shard determinism is unchanged.
  void send_pfc(NodeId from, PortId port, ClassId cls, bool pause,
                const dataplane::PauseTag& tag);

  /// Out-of-band congestion notification from `from` to the flow's source
  /// host.
  void send_cnp(NodeId from, FlowId flow, NodeId src_host);

  /// Out-of-band RTT sample from `from` to the flow's source host (TIMELY
  /// feedback).
  void send_rtt_sample(NodeId from, FlowId flow, NodeId src_host, Time rtt);

  /// Tell a switch its route table changed so it can re-resolve queued
  /// packets (used by the BGP / SDN-update substrates).
  void notify_routes_changed(NodeId sw);

  /// Fresh packet id for a packet injected by `src`. Sharded runs draw from
  /// a per-host namespace (single writer per shard, and invariant to the
  /// shard count); legacy runs keep the historical global counter.
  std::uint64_t next_packet_id(NodeId src) {
    if (engine_ != nullptr) {
      return (static_cast<std::uint64_t>(src + 1) << 40) |
             ++host_pkt_seq_[src];
    }
    return ++packet_id_;
  }

  /// Total bytes buffered across all switch ingress queues. After all flows
  /// stop, a non-zero residue once the event queue is quiet means packets
  /// are permanently trapped — the paper's operational deadlock criterion.
  std::int64_t total_queued_bytes() const;

  /// Total packets dropped, by reason (for the lossless-invariant tests).
  /// Summed over per-device counters.
  std::uint64_t drops(DropReason reason) const;

 private:
  void init_sharding(int requested_shards);
  /// (Re)installs per-shard buffering hooks mirroring whatever is attached
  /// to the real trace — invoked by the engine at the start of every run.
  void arm_shard_traces();
  /// Fires one merged record into the real hooks (engine replay sink).
  void replay_record(const ShardedEngine::TraceRec& rec);
  ShardedEngine::TraceRec make_rec(std::uint32_t shard,
                                   ShardedEngine::RecKind kind, Time at);
  Simulator& device_sim(NodeId id) {
    return engine_ != nullptr ? engine_->shard_sim(plan_.node_shard[id])
                              : sim_;
  }

  Simulator& sim_;
  const Topology& topo_;
  NetConfig cfg_;
  Trace trace_;

  // Sharded-mode state. engine_ is declared before devices_ so worker
  // threads are joined after devices are gone only via ~Network's explicit
  // member order: devices never run once the coordinator stops driving
  // windows, so either order is safe; engine-first keeps the plan and seq
  // tables alive for the engine's entire lifetime.
  topo::ShardPlan plan_;
  std::unique_ptr<ShardedEngine> engine_;
  std::vector<Trace> shard_traces_;          ///< buffering hooks, per shard
  std::vector<std::uint64_t> wire_seq_;      ///< per directed link (2L)
  std::vector<std::uint64_t> oob_seq_;       ///< per sending node
  std::vector<std::uint64_t> host_pkt_seq_;  ///< per source host
  static thread_local Trace* tls_trace_;     ///< shard workers' redirection

  std::vector<std::unique_ptr<Device>> devices_;
  std::uint64_t packet_id_ = 0;
};

}  // namespace dcdl
