// The runtime network: owns the devices built from a Topology, moves packets
// and PFC frames across wires, and exposes global introspection used by the
// analysis and statistics layers.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "dcdl/common/units.hpp"
#include "dcdl/device/config.hpp"
#include "dcdl/device/device.hpp"
#include "dcdl/device/trace.hpp"
#include "dcdl/net/packet.hpp"
#include "dcdl/sim/simulator.hpp"
#include "dcdl/topo/topology.hpp"

namespace dcdl {

class Switch;
class Host;

class Network {
 public:
  /// Builds one device per topology node. The topology and simulator must
  /// outlive the network.
  Network(Simulator& sim, const Topology& topo, NetConfig cfg);
  ~Network();
  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  Simulator& sim() { return sim_; }
  const Topology& topo() const { return topo_; }
  const NetConfig& config() const { return cfg_; }
  Trace& trace() { return trace_; }

  Device& device(NodeId id) { return *devices_.at(id); }
  Switch& switch_at(NodeId id);
  const Switch& switch_at(NodeId id) const;
  Host& host_at(NodeId id);
  const Host& host_at(NodeId id) const;

  Rate link_rate(NodeId node, PortId port) const {
    return topo_.link(topo_.peer(node, port).link).rate;
  }
  Time link_delay(NodeId node, PortId port) const {
    return topo_.link(topo_.peer(node, port).link).delay;
  }

  /// Serializes `pkt` out of (from, port): the peer's on_receive fires after
  /// serialization + propagation. The caller owns modelling the sender's
  /// busy period (it lasts exactly serialization_time(size, link_rate)).
  void transmit(NodeId from, PortId port, Packet pkt);

  /// Sends a PFC pause/resume for `cls` to the peer of (from, port).
  /// Control frames incur propagation plus their own 64-byte serialization
  /// but never queue behind data (modelling simplification; see DESIGN.md).
  void send_pfc(NodeId from, PortId port, ClassId cls, bool pause);

  /// Out-of-band congestion notification to the flow's source host.
  void send_cnp(FlowId flow, NodeId src_host);

  /// Out-of-band RTT sample to the flow's source host (TIMELY feedback).
  void send_rtt_sample(FlowId flow, NodeId src_host, Time rtt);

  /// Tell a switch its route table changed so it can re-resolve queued
  /// packets (used by the BGP / SDN-update substrates).
  void notify_routes_changed(NodeId sw);

  std::uint64_t next_packet_id() { return ++packet_id_; }

  /// Total bytes buffered across all switch ingress queues. After all flows
  /// stop, a non-zero residue once the event queue is quiet means packets
  /// are permanently trapped — the paper's operational deadlock criterion.
  std::int64_t total_queued_bytes() const;

  /// Total packets dropped, by reason (for the lossless-invariant tests).
  std::uint64_t drops(DropReason reason) const {
    return drop_counts_[static_cast<int>(reason)];
  }
  void count_drop(DropReason reason) {
    ++drop_counts_[static_cast<int>(reason)];
  }

 private:
  Simulator& sim_;
  const Topology& topo_;
  NetConfig cfg_;
  Trace trace_;
  std::vector<std::unique_ptr<Device>> devices_;
  std::uint64_t packet_id_ = 0;
  std::uint64_t drop_counts_[kNumDropReasons] = {};
};

}  // namespace dcdl
