#include "dcdl/device/switch.hpp"

#include <algorithm>

#include "dcdl/common/contract.hpp"
#include "dcdl/device/network.hpp"

namespace dcdl {

Switch::Switch(Network& net, NodeId id, const NetConfig& cfg)
    : Device(net, id), cfg_(cfg) {
  DCDL_EXPECTS(cfg.num_classes >= 1 && cfg.num_classes <= kMaxClasses);
  const std::size_t ports = net.topo().degree(id);
  from_stride_ = static_cast<std::uint32_t>(cfg.num_classes);
  num_classes_ = static_cast<std::size_t>(cfg.num_classes);
  ingress_.resize(ports);
  egress_.resize(ports);
  for (auto& in : ingress_) {
    in.cls.resize(num_classes_);
    for (auto& c : in.cls) {
      c.xoff = cfg.pfc.xoff_bytes;
      c.xon = cfg.pfc.xon_bytes;
    }
  }
  for (auto& eg : egress_) {
    eg.cls.resize(num_classes_);
    for (auto& c : eg.cls) {
      // Attribution vector spans every possible from_key up front, so the
      // enqueue/dequeue paths are bare indexed adds.
      c.from.assign(ports * num_classes_, 0);
    }
  }
  routes_.set_ecmp_salt(0x5DEECE66DULL * (id + 1));
  jitter_rng_.reseed(cfg.jitter_seed * 0x9E3779B97F4A7C15ULL + id);
}

void Switch::set_thresholds(PortId port, ClassId cls, std::int64_t xoff_bytes,
                            std::int64_t xon_bytes) {
  DCDL_EXPECTS(xon_bytes <= xoff_bytes);
  auto& c = ingress_.at(port).cls.at(cls);
  c.xoff = xoff_bytes;
  c.xon = xon_bytes;
}

void Switch::set_ingress_shaper(PortId port, Rate rate,
                                std::int64_t burst_bytes) {
  ingress_.at(port).shaper =
      std::make_unique<TokenBucketPacer>(rate, burst_bytes);
}

void Switch::clear_ingress_shaper(PortId port) {
  auto& in = ingress_.at(port);
  in.shaper.reset();
  while (!in.held.empty()) {
    Packet pkt = std::move(in.held.front());
    in.held.pop_front();
    in.held_bytes -= pkt.size_bytes;
    const std::uint32_t slot = flow_slots_.lookup(pkt.flow);
    DCDL_ASSERT(slot != FlowSlotRegistry::kNoSlot);
    route_and_enqueue(port, pkt.prio, slot, std::move(pkt));
  }
}

Time Switch::tx_hold_time(const Packet& pkt, PortId egress) {
  Time hold = serialization_time(pkt.size_bytes, net_.link_rate(id_, egress));
  if (cfg_.tx_jitter > Time::zero()) {
    hold += Time{static_cast<std::int64_t>(jitter_rng_.uniform(
        static_cast<std::uint64_t>(cfg_.tx_jitter.ps()) + 1))};
  }
  return hold;
}

void Switch::update_pause_state(PortId port, ClassId cls) {
  // Every ingress-counter change funnels through here (admission, departure,
  // watchdog flush), so this is the one occupancy observation point.
  if (net_.trace().queue_bytes) {
    net_.trace().queue_bytes(now(), id_, port, cls,
                             ingress_[port].cls[cls].bytes);
  }
  if (!cfg_.pfc.enabled) return;
  auto& c = ingress_[port].cls[cls];
  if (!c.pause_asserted && c.bytes >= c.xoff) {
    c.pause_asserted = true;
    net_.send_pfc(id_, port, cls, /*pause=*/true);
    schedule_pause_refresh(port, cls);
    if (net_.trace().pfc_state) {
      net_.trace().pfc_state(now(), id_, port, cls, true);
    }
  } else if (c.pause_asserted && c.bytes < c.xon) {
    c.pause_asserted = false;
    net_.send_pfc(id_, port, cls, /*pause=*/false);
    if (net_.trace().pfc_state) {
      net_.trace().pfc_state(now(), id_, port, cls, false);
    }
  }
}

std::uint32_t Switch::charge_ingress(IngressCounter& ctr, FlowId flow,
                                     std::int64_t bytes) {
  const std::uint32_t slot = flow_slots_.acquire(flow, bytes);
  if (slot >= ctr.flow_bytes.size()) {
    // First time this counter sees a slot this high: catch up to the
    // registry's high-water capacity. A recycled slot is guaranteed zero
    // here (its flow fully drained from every counter before it was freed).
    ctr.flow_bytes.resize(flow_slots_.capacity(), 0);
  }
  ctr.flow_bytes[slot] += bytes;
  return slot;
}

void Switch::on_receive(PortId in_port, Packet pkt) {
  const Time now = this->now();
  if (total_buffered_ + pkt.size_bytes > cfg_.switch_buffer_bytes) {
    // Shared buffer exhausted. With sane PFC headroom this cannot happen;
    // the lossless-invariant tests assert the drop counter stays zero.
    count_drop(DropReason::kBufferOverflow);
    if (net_.trace().dropped) {
      net_.trace().dropped(now, pkt, id_, DropReason::kBufferOverflow);
    }
    return;
  }

  const ClassId in_class = pkt.prio;  // accounting class = class as received
  auto& in = ingress_[in_port];
  DCDL_ASSERT(in_class < in.cls.size());

  // Ingress admission: the packet now occupies buffer.
  auto& ctr = in.cls[in_class];
  ctr.bytes += pkt.size_bytes;
  const std::uint32_t flow_slot =
      charge_ingress(ctr, pkt.flow, pkt.size_bytes);
  total_buffered_ += pkt.size_bytes;
  update_pause_state(in_port, in_class);

  if (!flow_shapers_.empty()) {
    if (const auto it = flow_shapers_.find(pkt.flow);
        it != flow_shapers_.end()) {
      it->second.held_bytes += pkt.size_bytes;
      it->second.held.push_back(HeldPacket{std::move(pkt), in_port, in_class});
      schedule_flow_release(it->first);
      return;
    }
  }
  if (in.shaper) {
    in.held_bytes += pkt.size_bytes;
    in.held.push_back(std::move(pkt));
    schedule_shaper_release(in_port);
    return;
  }
  route_and_enqueue(in_port, in_class, flow_slot, std::move(pkt));
}

void Switch::set_flow_shaper(FlowId flow, Rate rate,
                             std::int64_t burst_bytes) {
  flow_shapers_[flow].shaper =
      std::make_unique<TokenBucketPacer>(rate, burst_bytes);
}

void Switch::clear_flow_shaper(FlowId flow) {
  const auto it = flow_shapers_.find(flow);
  if (it == flow_shapers_.end()) return;
  while (!it->second.held.empty()) {
    HeldPacket h = std::move(it->second.held.front());
    it->second.held.pop_front();
    const std::uint32_t slot = flow_slots_.lookup(h.pkt.flow);
    DCDL_ASSERT(slot != FlowSlotRegistry::kNoSlot);
    route_and_enqueue(h.in_port, h.in_class, slot, std::move(h.pkt));
  }
  flow_shapers_.erase(it);
}

void Switch::schedule_flow_release(FlowId flow) {
  auto& fs = flow_shapers_.at(flow);
  if (fs.release_scheduled || fs.held.empty()) return;
  const Time now = this->now();
  const Time ready = fs.shaper->ready_at(now, fs.held.front().pkt.size_bytes);
  fs.release_scheduled = true;
  schedule_at(std::max(now, ready), [this, flow] {
    // The shaper may have been cleared while this release was in flight.
    const auto it = flow_shapers_.find(flow);
    if (it == flow_shapers_.end()) return;
    it->second.release_scheduled = false;
    release_flow_held(flow);
  });
}

void Switch::release_flow_held(FlowId flow) {
  auto& fs = flow_shapers_.at(flow);
  const Time now = this->now();
  while (!fs.held.empty() &&
         fs.shaper->ready_at(now, fs.held.front().pkt.size_bytes) <= now) {
    HeldPacket h = std::move(fs.held.front());
    fs.held.pop_front();
    fs.held_bytes -= h.pkt.size_bytes;
    fs.shaper->on_sent(now, h.pkt.size_bytes);
    const std::uint32_t slot = flow_slots_.lookup(h.pkt.flow);
    DCDL_ASSERT(slot != FlowSlotRegistry::kNoSlot);
    route_and_enqueue(h.in_port, h.in_class, slot, std::move(h.pkt));
  }
  schedule_flow_release(flow);
}

void Switch::schedule_shaper_release(PortId in_port) {
  auto& in = ingress_[in_port];
  if (in.release_scheduled || in.held.empty() || !in.shaper) return;
  const Time now = this->now();
  const Time ready = in.shaper->ready_at(now, in.held.front().size_bytes);
  in.release_scheduled = true;
  schedule_at(std::max(now, ready), [this, in_port] {
    ingress_[in_port].release_scheduled = false;
    release_held(in_port);
  });
}

void Switch::release_held(PortId in_port) {
  auto& in = ingress_[in_port];
  const Time now = this->now();
  while (!in.held.empty() && in.shaper &&
         in.shaper->ready_at(now, in.held.front().size_bytes) <= now) {
    Packet pkt = std::move(in.held.front());
    in.held.pop_front();
    in.held_bytes -= pkt.size_bytes;
    in.shaper->on_sent(now, pkt.size_bytes);
    const std::uint32_t slot = flow_slots_.lookup(pkt.flow);
    DCDL_ASSERT(slot != FlowSlotRegistry::kNoSlot);
    route_and_enqueue(in_port, pkt.prio, slot, std::move(pkt));
  }
  schedule_shaper_release(in_port);
}

void Switch::dec_ingress(PortId in_port, ClassId in_class,
                         std::uint32_t flow_slot, const Packet& pkt) {
  auto& ctr = ingress_[in_port].cls[in_class];
  ctr.bytes -= pkt.size_bytes;
  DCDL_ASSERT(ctr.bytes >= 0);
  total_buffered_ -= pkt.size_bytes;
  ctr.departure_count += 1;
  DCDL_ASSERT(flow_slot < ctr.flow_bytes.size());
  ctr.flow_bytes[flow_slot] -= pkt.size_bytes;
  DCDL_ASSERT(ctr.flow_bytes[flow_slot] >= 0);
  flow_slots_.release(flow_slot, pkt.size_bytes);
  update_pause_state(in_port, in_class);
}

void Switch::route_and_enqueue(PortId in_port, ClassId in_class,
                               std::uint32_t flow_slot, Packet pkt) {
  const Time now = this->now();
  const auto egress = routes_.lookup(pkt.flow, pkt.dst);
  if (!egress) {
    dec_ingress(in_port, in_class, flow_slot, pkt);
    count_drop(DropReason::kNoRoute);
    if (net_.trace().dropped) {
      net_.trace().dropped(now, pkt, id_, DropReason::kNoRoute);
    }
    return;
  }
  const NodeId next = net_.topo().peer(id_, *egress).peer_node;
  if (net_.topo().is_switch(next)) {
    // Further switch-to-switch forwarding: TTL check and decrement.
    if (pkt.ttl == 0) {
      dec_ingress(in_port, in_class, flow_slot, pkt);
      count_drop(DropReason::kTtlExpired);
      if (net_.trace().dropped) {
        net_.trace().dropped(now, pkt, id_, DropReason::kTtlExpired);
      }
      return;
    }
    pkt.ttl -= 1;
    pkt.hops += 1;
  }
  // Departure class: the class the packet will occupy on the next wire.
  if (cfg_.reclass) {
    const ClassId out = cfg_.reclass(pkt, id_);
    DCDL_ASSERT(out < cfg_.num_classes);
    pkt.prio = out;
  }
  auto& eg = egress_[*egress];
  if (ecn_mark_on_enqueue(eg, *egress, pkt)) pkt.ecn_marked = true;
  auto& q = eg.cls[pkt.prio];
  q.bytes += pkt.size_bytes;
  q.from[from_key(in_port, in_class)] += pkt.size_bytes;
  q.q.push_back(QueuedPacket{std::move(pkt), in_port, in_class, flow_slot});
  try_transmit(*egress);
}

bool Switch::ecn_mark_on_enqueue(EgressPort& eg, PortId port,
                                 const Packet& pkt) {
  if (!cfg_.ecn.enabled || !pkt.ecn_capable) return false;
  if (cfg_.ecn.phantom_speed_fraction >= 1.0) {
    // Mark against the real egress backlog.
    std::int64_t backlog = 0;
    for (const auto& q : eg.cls) backlog += q.bytes;
    return backlog > cfg_.ecn.mark_threshold_bytes;
  }
  // Phantom queue: drains at a fraction of line speed, marks early.
  const Time now = this->now();
  const double drain_bps =
      static_cast<double>(net_.link_rate(id_, port).bps()) *
      cfg_.ecn.phantom_speed_fraction;
  const double drained = drain_bps * (now - eg.phantom_last).ps() / 8e12;
  eg.phantom_bytes = std::max(0.0, eg.phantom_bytes - drained);
  eg.phantom_last = now;
  eg.phantom_bytes += pkt.size_bytes;
  return eg.phantom_bytes > static_cast<double>(cfg_.ecn.mark_threshold_bytes);
}

bool Switch::effectively_paused(const EgressPort& eg, ClassId cls) const {
  if (!eg.paused[cls]) return false;
  const Time now = this->now();
  if (cfg_.pfc.pause_quanta > Time::zero() && now >= eg.pause_expiry[cls]) {
    return false;  // the pause quanta lapsed without a refresh
  }
  return now >= eg.ignore_pause_until[cls];
}

void Switch::schedule_pause_refresh(PortId port, ClassId cls) {
  if (cfg_.pfc.pause_quanta == Time::zero() || !cfg_.pfc.pause_refresh) {
    return;
  }
  auto& ctr = ingress_[port].cls[cls];
  if (ctr.refresh_scheduled) return;
  ctr.refresh_scheduled = true;
  schedule_in(cfg_.pfc.pause_quanta / 2, [this, port, cls] {
    auto& c = ingress_[port].cls[cls];
    c.refresh_scheduled = false;
    if (c.pause_asserted) {
      net_.send_pfc(id_, port, cls, /*pause=*/true);
      schedule_pause_refresh(port, cls);
    }
  });
}

void Switch::try_transmit(PortId egress) {
  auto& eg = egress_[egress];
  if (eg.busy) return;
  const std::size_t num_cls = num_classes_;
  for (std::size_t i = 0; i < num_cls; ++i) {
    const std::size_t c = (eg.rr_class + i) % num_cls;
    auto& q = eg.cls[c];
    if (q.q.empty() || effectively_paused(eg, static_cast<ClassId>(c))) {
      continue;
    }

    eg.rr_class = (c + 1) % num_cls;
    QueuedPacket qp = std::move(q.q.front());
    q.q.pop_front();
    q.bytes -= qp.pkt.size_bytes;
    q.from[from_key(qp.in_port, qp.in_class)] -= qp.pkt.size_bytes;
    DCDL_ASSERT(q.from[from_key(qp.in_port, qp.in_class)] >= 0);
    dec_ingress(qp.in_port, qp.in_class, qp.flow_slot, qp.pkt);

    if (net_.trace().tx_start) {
      net_.trace().tx_start(now(), qp.pkt, id_, egress);
    }
    eg.busy = true;
    const Time hold = tx_hold_time(qp.pkt, egress);
    schedule_in(hold, [this, egress] { complete_transmit(egress); });
    net_.transmit(id_, egress, std::move(qp.pkt));
    return;
  }
}

void Switch::complete_transmit(PortId egress) {
  egress_[egress].busy = false;
  try_transmit(egress);
}

void Switch::on_pfc(PortId port, ClassId cls, bool pause) {
  auto& eg = egress_.at(port);
  const Time now = this->now();
  if (pause && !eg.paused.at(cls)) {
    eg.paused_since.at(cls) = now;
  }
  eg.paused.at(cls) = pause;
  if (pause && cfg_.pfc.pause_quanta > Time::zero()) {
    eg.pause_expiry.at(cls) = now + cfg_.pfc.pause_quanta;
    // Wake the transmitter when the quanta lapses in case no refresh comes.
    schedule_in(cfg_.pfc.pause_quanta, [this, port] { try_transmit(port); });
  }
  if (!pause) try_transmit(port);
}

Time Switch::egress_paused_for(PortId port, ClassId cls) const {
  const auto& eg = egress_.at(port);
  if (!eg.paused.at(cls)) return Time::zero();
  return now() - eg.paused_since.at(cls);
}

std::uint64_t Switch::flush_egress_queue(PortId port, ClassId cls) {
  auto& eg = egress_.at(port);
  auto& q = eg.cls.at(cls);
  const Time now = this->now();
  std::uint64_t dropped = 0;
  while (!q.q.empty()) {
    QueuedPacket qp = std::move(q.q.front());
    q.q.pop_front();
    q.bytes -= qp.pkt.size_bytes;
    q.from[from_key(qp.in_port, qp.in_class)] -= qp.pkt.size_bytes;
    // Releasing the buffer credits the ingress counter (possibly sending
    // the RESUME that untangles the upstream), exactly like a forward —
    // but a flushed packet is not a departure.
    auto& ctr = ingress_.at(qp.in_port).cls.at(qp.in_class);
    ctr.bytes -= qp.pkt.size_bytes;
    total_buffered_ -= qp.pkt.size_bytes;
    DCDL_ASSERT(qp.flow_slot < ctr.flow_bytes.size());
    ctr.flow_bytes[qp.flow_slot] -= qp.pkt.size_bytes;
    flow_slots_.release(qp.flow_slot, qp.pkt.size_bytes);
    update_pause_state(qp.in_port, qp.in_class);
    count_drop(DropReason::kWatchdogReset);
    if (net_.trace().dropped) {
      net_.trace().dropped(now, qp.pkt, id_, DropReason::kWatchdogReset);
    }
    ++dropped;
  }
  return dropped;
}

void Switch::ignore_pause_until(PortId port, ClassId cls, Time until) {
  auto& eg = egress_.at(port);
  eg.ignore_pause_until.at(cls) = until;
  // Restart the storm clock so the watchdog measures the pause anew after
  // its intervention rather than re-firing every poll.
  eg.paused_since.at(cls) = now();
  try_transmit(port);
}

std::int64_t Switch::ingress_bytes(PortId port, ClassId cls) const {
  return ingress_.at(port).cls.at(cls).bytes;
}

std::int64_t Switch::ingress_flow_bytes(PortId port, ClassId cls,
                                        FlowId flow) const {
  const std::uint32_t slot = flow_slots_.lookup(flow);
  if (slot == FlowSlotRegistry::kNoSlot) return 0;
  const auto& fb = ingress_.at(port).cls.at(cls).flow_bytes;
  return slot < fb.size() ? fb[slot] : 0;
}

bool Switch::pause_asserted(PortId port, ClassId cls) const {
  return ingress_.at(port).cls.at(cls).pause_asserted;
}

bool Switch::egress_paused(PortId port, ClassId cls) const {
  return egress_.at(port).paused.at(cls);
}

std::int64_t Switch::egress_queue_bytes(PortId port, ClassId cls) const {
  return egress_.at(port).cls.at(cls).bytes;
}

std::int64_t Switch::egress_bytes_from(PortId port, ClassId cls,
                                       PortId in_port, ClassId in_cls) const {
  const auto& from = egress_.at(port).cls.at(cls).from;
  const std::uint32_t key = from_key(in_port, in_cls);
  return key < from.size() ? from[key] : 0;
}

std::uint64_t Switch::departures(PortId port, ClassId cls) const {
  return ingress_.at(port).cls.at(cls).departure_count;
}

std::int64_t Switch::shaper_held_bytes(PortId port) const {
  std::int64_t total = ingress_.at(port).held_bytes;
  for (const auto& [flow, fs] : flow_shapers_) {
    for (std::size_t i = 0; i < fs.held.size(); ++i) {
      if (fs.held[i].in_port == port) total += fs.held[i].pkt.size_bytes;
    }
  }
  return total;
}

}  // namespace dcdl
