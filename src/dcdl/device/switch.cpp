#include "dcdl/device/switch.hpp"

#include <algorithm>
#include <limits>

#include "dcdl/common/contract.hpp"
#include "dcdl/device/network.hpp"
#include "dcdl/probe/profiler.hpp"
#include "dcdl/routing/compute.hpp"

namespace dcdl {

Switch::Switch(Network& net, NodeId id, const NetConfig& cfg)
    : Device(net, id), cfg_(cfg) {
  DCDL_EXPECTS(cfg.num_classes >= 1 && cfg.num_classes <= kMaxClasses);
  const std::size_t ports = net.topo().degree(id);
  from_stride_ = static_cast<std::uint32_t>(cfg.num_classes);
  num_classes_ = static_cast<std::size_t>(cfg.num_classes);
  ingress_.resize(ports);
  egress_.resize(ports);
  init_tx_ports(ports);
  for (auto& in : ingress_) {
    in.cls.resize(num_classes_);
    for (auto& c : in.cls) {
      c.xoff = cfg.pfc.xoff_bytes;
      c.xon = cfg.pfc.xon_bytes;
    }
  }
  for (auto& eg : egress_) {
    eg.cls.resize(num_classes_);
    for (auto& c : eg.cls) {
      // Attribution vector spans every possible from_key up front, so the
      // enqueue/dequeue paths are bare indexed adds.
      c.from.assign(ports * num_classes_, 0);
    }
  }
  routes_.set_ecmp_salt(0x5DEECE66DULL * (id + 1));
  jitter_rng_.reseed(cfg.jitter_seed * 0x9E3779B97F4A7C15ULL + id);
  if (cfg.dataplane.enabled()) {
    dp_ = std::make_unique<dataplane::Pipeline>(cfg.dataplane, id, ports,
                                                num_classes_);
  }
}

void Switch::set_thresholds(PortId port, ClassId cls, std::int64_t xoff_bytes,
                            std::int64_t xon_bytes) {
  DCDL_EXPECTS(xon_bytes <= xoff_bytes);
  auto& c = ingress_.at(port).cls.at(cls);
  c.xoff = xoff_bytes;
  c.xon = xon_bytes;
}

void Switch::set_ingress_shaper(PortId port, Rate rate,
                                std::int64_t burst_bytes) {
  ingress_.at(port).shaper =
      std::make_unique<TokenBucketPacer>(rate, burst_bytes);
}

void Switch::clear_ingress_shaper(PortId port) {
  auto& in = ingress_.at(port);
  in.shaper.reset();
  while (!in.held.empty()) {
    Packet pkt = std::move(in.held.front());
    in.held.pop_front();
    in.held_bytes -= pkt.size_bytes;
    const std::uint32_t slot = flow_slots_.lookup(pkt.flow);
    DCDL_ASSERT(slot != FlowSlotRegistry::kNoSlot);
    route_and_enqueue(port, pkt.prio, slot, std::move(pkt));
  }
}

Time Switch::tx_hold_time(const Packet& pkt, PortId egress) {
  Time hold = serialization_time(pkt.size_bytes, net_.link_rate(id_, egress));
  if (cfg_.tx_jitter > Time::zero()) {
    hold += Time{static_cast<std::int64_t>(jitter_rng_.uniform(
        static_cast<std::uint64_t>(cfg_.tx_jitter.ps()) + 1))};
  }
  return hold;
}

void Switch::update_pause_state(PortId port, ClassId cls) {
  // Every ingress-counter change funnels through here (admission, departure,
  // watchdog flush), so this is the one occupancy observation point.
  if (net_.trace().queue_bytes) {
    net_.trace().queue_bytes(now(), id_, port, cls,
                             ingress_[port].cls[cls].bytes);
  }
  if (!cfg_.pfc.enabled) return;
  auto& c = ingress_[port].cls[cls];
  if (!c.pause_asserted && c.bytes >= c.xoff) {
    c.pause_asserted = true;
    if (dp_ != nullptr) {
      // Tag stage: the outgoing Xoff carries the pause-chain metadata.
      const dataplane::PauseTag tag = dp_tag_for_xoff(port, cls);
      dp_->remember_sent(port, cls, tag);
      net_.send_pfc(id_, port, cls, /*pause=*/true, tag);
    } else {
      net_.send_pfc(id_, port, cls, /*pause=*/true);
    }
    schedule_pause_refresh(port, cls);
    if (net_.trace().pfc_state) {
      net_.trace().pfc_state(now(), id_, port, cls, true);
    }
  } else if (c.pause_asserted && c.bytes < c.xon) {
    c.pause_asserted = false;
    if (dp_ != nullptr) {
      // The resume travels the tagged path so the upstream switch clears
      // its stored rx-tag for the thawing egress.
      dp_->clear_sent(port, cls);
      net_.send_pfc(id_, port, cls, /*pause=*/false, dataplane::PauseTag{});
    } else {
      net_.send_pfc(id_, port, cls, /*pause=*/false);
    }
    if (net_.trace().pfc_state) {
      net_.trace().pfc_state(now(), id_, port, cls, false);
    }
  }
}

std::uint32_t Switch::charge_ingress(IngressCounter& ctr, FlowId flow,
                                     std::int64_t bytes) {
  const std::uint32_t slot = flow_slots_.acquire(flow, bytes);
  if (slot >= ctr.flow_bytes.size()) {
    // First time this counter sees a slot this high: catch up to the
    // registry's high-water capacity. A recycled slot is guaranteed zero
    // here (its flow fully drained from every counter before it was freed).
    ctr.flow_bytes.resize(flow_slots_.capacity(), 0);
  }
  ctr.flow_bytes[slot] += bytes;
  return slot;
}

void Switch::on_receive(PortId in_port, Packet pkt) {
  const Time now = this->now();
  if (total_buffered_ + pkt.size_bytes > cfg_.switch_buffer_bytes) {
    // Shared buffer exhausted. With sane PFC headroom this cannot happen;
    // the lossless-invariant tests assert the drop counter stays zero.
    count_drop(DropReason::kBufferOverflow);
    if (net_.trace().dropped) {
      net_.trace().dropped(now, pkt, id_, DropReason::kBufferOverflow);
    }
    return;
  }

  const ClassId in_class = pkt.prio;  // accounting class = class as received
  auto& in = ingress_[in_port];
  DCDL_ASSERT(in_class < in.cls.size());

  // Ingress admission: the packet now occupies buffer.
  auto& ctr = in.cls[in_class];
  ctr.bytes += pkt.size_bytes;
  const std::uint32_t flow_slot =
      charge_ingress(ctr, pkt.flow, pkt.size_bytes);
  total_buffered_ += pkt.size_bytes;
  update_pause_state(in_port, in_class);

  if (!flow_shapers_.empty()) {
    if (const auto it = flow_shapers_.find(pkt.flow);
        it != flow_shapers_.end()) {
      it->second.held_bytes += pkt.size_bytes;
      it->second.held.push_back(HeldPacket{std::move(pkt), in_port, in_class});
      schedule_flow_release(it->first);
      return;
    }
  }
  if (in.shaper) {
    in.held_bytes += pkt.size_bytes;
    in.held.push_back(std::move(pkt));
    schedule_shaper_release(in_port);
    return;
  }
  route_and_enqueue(in_port, in_class, flow_slot, std::move(pkt));
}

void Switch::set_flow_shaper(FlowId flow, Rate rate,
                             std::int64_t burst_bytes) {
  flow_shapers_[flow].shaper =
      std::make_unique<TokenBucketPacer>(rate, burst_bytes);
}

void Switch::clear_flow_shaper(FlowId flow) {
  const auto it = flow_shapers_.find(flow);
  if (it == flow_shapers_.end()) return;
  while (!it->second.held.empty()) {
    HeldPacket h = std::move(it->second.held.front());
    it->second.held.pop_front();
    const std::uint32_t slot = flow_slots_.lookup(h.pkt.flow);
    DCDL_ASSERT(slot != FlowSlotRegistry::kNoSlot);
    route_and_enqueue(h.in_port, h.in_class, slot, std::move(h.pkt));
  }
  flow_shapers_.erase(it);
}

void Switch::schedule_flow_release(FlowId flow) {
  auto& fs = flow_shapers_.at(flow);
  if (fs.release_scheduled || fs.held.empty()) return;
  const Time now = this->now();
  const Time ready = fs.shaper->ready_at(now, fs.held.front().pkt.size_bytes);
  fs.release_scheduled = true;
  schedule_at(std::max(now, ready), [this, flow] {
    // The shaper may have been cleared while this release was in flight.
    const auto it = flow_shapers_.find(flow);
    if (it == flow_shapers_.end()) return;
    it->second.release_scheduled = false;
    release_flow_held(flow);
  });
}

void Switch::release_flow_held(FlowId flow) {
  auto& fs = flow_shapers_.at(flow);
  const Time now = this->now();
  while (!fs.held.empty() &&
         fs.shaper->ready_at(now, fs.held.front().pkt.size_bytes) <= now) {
    HeldPacket h = std::move(fs.held.front());
    fs.held.pop_front();
    fs.held_bytes -= h.pkt.size_bytes;
    fs.shaper->on_sent(now, h.pkt.size_bytes);
    const std::uint32_t slot = flow_slots_.lookup(h.pkt.flow);
    DCDL_ASSERT(slot != FlowSlotRegistry::kNoSlot);
    route_and_enqueue(h.in_port, h.in_class, slot, std::move(h.pkt));
  }
  schedule_flow_release(flow);
}

void Switch::schedule_shaper_release(PortId in_port) {
  auto& in = ingress_[in_port];
  if (in.release_scheduled || in.held.empty() || !in.shaper) return;
  const Time now = this->now();
  const Time ready = in.shaper->ready_at(now, in.held.front().size_bytes);
  in.release_scheduled = true;
  schedule_at(std::max(now, ready), [this, in_port] {
    ingress_[in_port].release_scheduled = false;
    release_held(in_port);
  });
}

void Switch::release_held(PortId in_port) {
  auto& in = ingress_[in_port];
  const Time now = this->now();
  while (!in.held.empty() && in.shaper &&
         in.shaper->ready_at(now, in.held.front().size_bytes) <= now) {
    Packet pkt = std::move(in.held.front());
    in.held.pop_front();
    in.held_bytes -= pkt.size_bytes;
    in.shaper->on_sent(now, pkt.size_bytes);
    const std::uint32_t slot = flow_slots_.lookup(pkt.flow);
    DCDL_ASSERT(slot != FlowSlotRegistry::kNoSlot);
    route_and_enqueue(in_port, pkt.prio, slot, std::move(pkt));
  }
  schedule_shaper_release(in_port);
}

void Switch::dec_ingress(PortId in_port, ClassId in_class,
                         std::uint32_t flow_slot, const Packet& pkt) {
  auto& ctr = ingress_[in_port].cls[in_class];
  ctr.bytes -= pkt.size_bytes;
  DCDL_ASSERT(ctr.bytes >= 0);
  total_buffered_ -= pkt.size_bytes;
  ctr.departure_count += 1;
  DCDL_ASSERT(flow_slot < ctr.flow_bytes.size());
  ctr.flow_bytes[flow_slot] -= pkt.size_bytes;
  DCDL_ASSERT(ctr.flow_bytes[flow_slot] >= 0);
  flow_slots_.release(flow_slot, pkt.size_bytes);
  update_pause_state(in_port, in_class);
}

void Switch::route_and_enqueue(PortId in_port, ClassId in_class,
                               std::uint32_t flow_slot, Packet pkt) {
  const Time now = this->now();
  if (dp_ != nullptr) {
    // Packet-side tag stage: stamp at fabric entry, note a revisit at the
    // stamping switch (direct forwarding-loop evidence, e.g. Fig. 2).
    if (pkt.tag_origin == 0xFFFF) {
      pkt.tag_origin = static_cast<std::uint16_t>(id_);
      dp_->note_packet_tagged();
    } else if (pkt.tag_origin == static_cast<std::uint16_t>(id_) &&
               pkt.hops > 0) {
      dp_->note_packet_loop();
    }
    pkt.tag_visited |= 1u << (id_ % 32);
  }
  const auto egress = routes_.lookup(pkt.flow, pkt.dst);
  if (!egress) {
    dec_ingress(in_port, in_class, flow_slot, pkt);
    count_drop(DropReason::kNoRoute);
    if (net_.trace().dropped) {
      net_.trace().dropped(now, pkt, id_, DropReason::kNoRoute);
    }
    return;
  }
  const NodeId next = net_.topo().peer(id_, *egress).peer_node;
  if (net_.topo().is_switch(next)) {
    // Further switch-to-switch forwarding: TTL check and decrement.
    if (pkt.ttl == 0) {
      dec_ingress(in_port, in_class, flow_slot, pkt);
      count_drop(DropReason::kTtlExpired);
      if (net_.trace().dropped) {
        net_.trace().dropped(now, pkt, id_, DropReason::kTtlExpired);
      }
      return;
    }
    pkt.ttl -= 1;
    pkt.hops += 1;
  }
  // Departure class: the class the packet will occupy on the next wire.
  if (cfg_.reclass) {
    const ClassId out = cfg_.reclass(pkt, id_);
    DCDL_ASSERT(out < cfg_.num_classes);
    pkt.prio = out;
  }
  auto& eg = egress_[*egress];
  if (ecn_mark_on_enqueue(eg, *egress, pkt)) pkt.ecn_marked = true;
  auto& q = eg.cls[pkt.prio];
  q.bytes += pkt.size_bytes;
  q.from[from_key(in_port, in_class)] += pkt.size_bytes;
  q.q.push_back(
      QueuedPacket{std::move(pkt), in_port, in_class, flow_slot, now});
  try_transmit(*egress);
}

bool Switch::ecn_mark_on_enqueue(EgressPort& eg, PortId port,
                                 const Packet& pkt) {
  if (!cfg_.ecn.enabled || !pkt.ecn_capable) return false;
  if (cfg_.ecn.phantom_speed_fraction >= 1.0) {
    // Mark against the real egress backlog.
    std::int64_t backlog = 0;
    for (const auto& q : eg.cls) backlog += q.bytes;
    return backlog > cfg_.ecn.mark_threshold_bytes;
  }
  // Phantom queue: drains at a fraction of line speed, marks early.
  const Time now = this->now();
  const double drain_bps =
      static_cast<double>(net_.link_rate(id_, port).bps()) *
      cfg_.ecn.phantom_speed_fraction;
  const double drained = drain_bps * (now - eg.phantom_last).ps() / 8e12;
  eg.phantom_bytes = std::max(0.0, eg.phantom_bytes - drained);
  eg.phantom_last = now;
  eg.phantom_bytes += pkt.size_bytes;
  return eg.phantom_bytes > static_cast<double>(cfg_.ecn.mark_threshold_bytes);
}

bool Switch::effectively_paused(const EgressPort& eg, ClassId cls) const {
  if (!eg.paused[cls]) return false;
  const Time now = this->now();
  if (cfg_.pfc.pause_quanta > Time::zero() && now >= eg.pause_expiry[cls]) {
    return false;  // the pause quanta lapsed without a refresh
  }
  return now >= eg.ignore_pause_until[cls];
}

void Switch::schedule_pause_refresh(PortId port, ClassId cls) {
  if (cfg_.pfc.pause_quanta == Time::zero() || !cfg_.pfc.pause_refresh) {
    return;
  }
  auto& ctr = ingress_[port].cls[cls];
  if (ctr.refresh_scheduled) return;
  ctr.refresh_scheduled = true;
  schedule_in(cfg_.pfc.pause_quanta / 2, [this, port, cls] {
    auto& c = ingress_[port].cls[cls];
    c.refresh_scheduled = false;
    if (c.pause_asserted) {
      if (dp_ != nullptr) {
        net_.send_pfc(id_, port, cls, /*pause=*/true,
                      dp_->last_sent(port, cls));
      } else {
        net_.send_pfc(id_, port, cls, /*pause=*/true);
      }
      schedule_pause_refresh(port, cls);
    }
  });
}

void Switch::try_transmit(PortId egress) {
  auto& eg = egress_[egress];
  if (eg.busy) return;
  const std::size_t num_cls = num_classes_;
  for (std::size_t i = 0; i < num_cls; ++i) {
    const std::size_t c = (eg.rr_class + i) % num_cls;
    auto& q = eg.cls[c];
    if (q.q.empty() || effectively_paused(eg, static_cast<ClassId>(c))) {
      continue;
    }

    eg.rr_class = (c + 1) % num_cls;
    QueuedPacket qp = std::move(q.q.front());
    q.q.pop_front();
    q.bytes -= qp.pkt.size_bytes;
    q.from[from_key(qp.in_port, qp.in_class)] -= qp.pkt.size_bytes;
    DCDL_ASSERT(q.from[from_key(qp.in_port, qp.in_class)] >= 0);
    dec_ingress(qp.in_port, qp.in_class, qp.flow_slot, qp.pkt);

    if (net_.trace().hop_wait) {
      const Time t = now();
      net_.trace().hop_wait(t, id_, egress, static_cast<ClassId>(c),
                            t - qp.enqueued_at);
    }
    if (net_.trace().tx_start) {
      net_.trace().tx_start(now(), qp.pkt, id_, egress);
    }
    count_tx(egress, qp.pkt.size_bytes);
    eg.busy = true;
    const Time hold = tx_hold_time(qp.pkt, egress);
    schedule_in(hold, [this, egress] { complete_transmit(egress); });
    net_.transmit(id_, egress, std::move(qp.pkt));
    return;
  }
}

void Switch::complete_transmit(PortId egress) {
  egress_[egress].busy = false;
  try_transmit(egress);
}

void Switch::on_pfc_tagged(PortId port, ClassId cls, bool pause,
                           const dataplane::PauseTag& tag) {
  on_pfc(port, cls, pause);
  if (dp_ == nullptr) return;
  if (!pause) {
    dp_->clear_rx(port, cls);
    return;
  }
  dp_->store_rx(port, cls, tag);
  if (!tag.valid()) return;
  if (dp_->is_own(tag)) {
    dp_on_own_tag(port, cls, tag);
    return;
  }
  dp_late_propagate(port, cls, tag);
}

dataplane::PauseTag Switch::dp_tag_for_xoff(PortId port, ClassId cls) {
  // Propagate when the backlog behind this counter traces to an egress
  // queue frozen by a tagged downstream PAUSE — the chain grows upstream.
  // Deterministic scan order: lowest (egress, class) wins ties.
  const std::uint32_t key_in = from_key(port, cls);
  for (PortId e = 0; e < static_cast<PortId>(egress_.size()); ++e) {
    const auto& eg = egress_[e];
    for (std::size_t c2 = 0; c2 < num_classes_; ++c2) {
      const auto c2id = static_cast<ClassId>(c2);
      if (!effectively_paused(eg, c2id)) continue;
      if (eg.cls[c2].from[key_in] <= 0) continue;
      const dataplane::PauseTag& rx = dp_->rx(e, c2id);
      if (!rx.valid() || dp_->is_own(rx)) continue;
      return dp_->propagate(rx);
    }
  }
  return dp_->originate(port, cls);
}

void Switch::dp_late_propagate(PortId port, ClassId cls,
                               const dataplane::PauseTag& tag) {
  // Ingress counters that crossed Xoff before this tag arrived originated
  // their own chains; re-send their PAUSE with the fresher upstream tag so
  // the true chain keeps growing. remember_sent() is the loop guard: a tag
  // stabilizes after one trip around a cycle, so re-sends terminate.
  bool have = false;
  dataplane::PauseTag prop;
  const auto& q = egress_[port].cls[cls];
  for (PortId p = 0; p < static_cast<PortId>(ingress_.size()); ++p) {
    for (std::size_t c2 = 0; c2 < num_classes_; ++c2) {
      const auto c2id = static_cast<ClassId>(c2);
      if (!ingress_[p].cls[c2].pause_asserted) continue;
      if (q.from[from_key(p, c2id)] <= 0) continue;
      if (!have) {
        prop = dp_->propagate(tag);
        have = true;
      }
      if (!dp_->remember_sent(p, c2id, prop)) continue;
      net_.send_pfc(id_, p, c2id, /*pause=*/true, prop);
    }
  }
}

void Switch::dp_on_own_tag(PortId port, ClassId cls,
                           const dataplane::PauseTag& tag) {
  probe::Profiler::Scope span(probe::Profiler::Span::kDataplane);
  // Local proof of a cyclic buffer dependency: the chain we started at
  // ingress (origin_port, origin_cls) came back to freeze our egress
  // (port, cls), and that egress holds bytes charged to exactly that
  // ingress counter — the dependency bites its own tail here.
  const auto& ctr = ingress_[tag.origin_port].cls[tag.origin_cls];
  if (!ctr.pause_asserted) return;
  if (egress_bytes_from(port, cls, tag.origin_port, tag.origin_cls) <= 0) {
    return;
  }
  if (!dp_->arm_candidate(tag, ctr.departure_count, now())) return;
  if (net_.trace().dataplane) {
    net_.trace().dataplane(now(), id_, dataplane::DataplaneEvent::kCandidate,
                           tag.origin_cls, tag.hops);
  }
  schedule_in(dp_->config().confirm_dwell, [this] { dp_resolve_candidate(); });
}

void Switch::dp_resolve_candidate() {
  probe::Profiler::Scope span(probe::Profiler::Span::kDataplane);
  if (dp_ == nullptr || !dp_->candidate_pending()) return;
  const dataplane::PauseTag tag = dp_->candidate_tag();
  const auto& ctr = ingress_[tag.origin_port].cls[tag.origin_cls];
  using Verdict = dataplane::Pipeline::Verdict;
  switch (dp_->resolve_candidate(ctr.pause_asserted, ctr.departure_count)) {
    case Verdict::kFalseAlarm:
      // The origin counter resumed during the dwell — a transient
      // (TTL-expiry loop, self-resolving cascade), not a deadlock.
      if (net_.trace().dataplane) {
        net_.trace().dataplane(now(), id_,
                               dataplane::DataplaneEvent::kFalseAlarm,
                               tag.origin_cls, 0);
      }
      return;
    case Verdict::kRetry:
      // Still asserted, still draining: the cycle may be hardening with no
      // new pause edge to bring the tag back — keep watching this one.
      schedule_in(dp_->config().confirm_dwell,
                  [this] { dp_resolve_candidate(); });
      return;
    case Verdict::kConfirmed:
      break;
  }
  if (net_.trace().dataplane) {
    net_.trace().dataplane(now(), id_, dataplane::DataplaneEvent::kConfirmed,
                           tag.origin_cls, tag.hops);
  }
  dp_recover(tag);
}

void Switch::dp_recover(const dataplane::PauseTag& tag) {
  using dataplane::RecoveryPolicy;
  const RecoveryPolicy policy = dp_->config().policy;
  if (policy == RecoveryPolicy::kDetect) return;  // observe only, stay armed
  const Time now = this->now();
  std::uint64_t acted = 0;
  for (PortId e = 0; e < static_cast<PortId>(egress_.size()); ++e) {
    for (std::size_t c2 = 0; c2 < num_classes_; ++c2) {
      const auto c2id = static_cast<ClassId>(c2);
      if (!effectively_paused(egress_[e], c2id)) continue;
      if (egress_[e].cls[c2].bytes <= 0) continue;
      switch (policy) {
        case RecoveryPolicy::kDrop:
          acted += flush_egress_queue(e, c2id, DropReason::kDataplaneReset);
          break;
        case RecoveryPolicy::kReroute:
          acted += dp_reroute_queue(e, c2id);
          break;
        case RecoveryPolicy::kPfcLift:
          ignore_pause_until(e, c2id, now + dp_->config().pfc_lift);
          ++acted;
          break;
        default:
          break;
      }
    }
  }
  dp_->note_recovery();
  if (net_.trace().dataplane) {
    net_.trace().dataplane(now, id_, dataplane::DataplaneEvent::kRecovered,
                           tag.origin_cls, acted);
  }
  schedule_in(dp_->config().cooldown, [this] {
    if (dp_ == nullptr || dp_->armed()) return;
    dp_->rearm();
    if (net_.trace().dataplane) {
      net_.trace().dataplane(this->now(), id_,
                             dataplane::DataplaneEvent::kRearmed, 0, 0);
    }
    dp_rescan_own_tags();
  });
}

void Switch::dp_rescan_own_tags() {
  // Stored rx-tags survive the cooldown. If our own tag is still parked on
  // a frozen egress — the wedge re-formed while the stage was disarmed and
  // the returning tag was ignored — restart the detect stage from the
  // stored state rather than waiting for a pause edge that may never come
  // (a re-hardened cycle generates none).
  for (PortId e = 0; e < static_cast<PortId>(egress_.size()); ++e) {
    for (std::size_t c2 = 0; c2 < num_classes_; ++c2) {
      const auto c2id = static_cast<ClassId>(c2);
      const dataplane::PauseTag& rx = dp_->rx(e, c2id);
      if (!rx.valid() || !dp_->is_own(rx)) continue;
      dp_on_own_tag(e, c2id, rx);
    }
  }
}

std::uint64_t Switch::dp_reroute_queue(PortId port, ClassId cls) {
  auto& q = egress_[port].cls[cls];
  std::uint64_t moved = 0;
  // Drain the frozen queue into scratch first: re-queue may legitimately
  // re-select the same egress when no detour exists, and must not then be
  // popped again. Heap allocation is fine here — recovery is rare and off
  // the steady-state path.
  std::vector<QueuedPacket> scratch;
  scratch.reserve(q.q.size());
  while (!q.q.empty()) {
    QueuedPacket qp = std::move(q.q.front());
    q.q.pop_front();
    q.bytes -= qp.pkt.size_bytes;
    q.from[from_key(qp.in_port, qp.in_class)] -= qp.pkt.size_bytes;
    scratch.push_back(std::move(qp));
  }
  for (QueuedPacket& qp : scratch) {
    dp_install_detour(qp.pkt, port);
    ++moved;
    // Re-route with ingress attribution intact (the packet never left the
    // switch, so its counter charge stands); TTL is re-checked like any
    // forward, so a detour that cannot escape eventually self-limits.
    route_and_enqueue(qp.in_port, qp.in_class, qp.flow_slot,
                      std::move(qp.pkt));
  }
  return moved;
}

void Switch::dp_install_detour(const Packet& pkt, PortId avoid) {
  const std::vector<int> dist = routing::hop_distances(net_.topo(), pkt.dst);
  constexpr int kUnreachable = std::numeric_limits<int>::max() / 4;
  PortId best = kInvalidPort;
  int best_dist = kUnreachable;
  for (PortId p = 0; p < static_cast<PortId>(egress_.size()); ++p) {
    if (p == avoid) continue;
    const NodeId peer = net_.topo().peer(id_, p).peer_node;
    if (net_.topo().is_host(peer) && peer != pkt.dst) continue;
    if (dist[peer] < best_dist) {
      best_dist = dist[peer];
      best = p;
    }
  }
  if (best == kInvalidPort) return;
  if (routes_.flow_route(pkt.flow).has_value()) {
    routes_.set_flow_route(pkt.flow, best);
  } else {
    routes_.set_dst_route(pkt.dst, best);
  }
}

void Switch::on_pfc(PortId port, ClassId cls, bool pause) {
  auto& eg = egress_.at(port);
  const Time now = this->now();
  if (pause && !eg.paused.at(cls)) {
    eg.paused_since.at(cls) = now;
  }
  eg.paused.at(cls) = pause;
  if (pause && cfg_.pfc.pause_quanta > Time::zero()) {
    eg.pause_expiry.at(cls) = now + cfg_.pfc.pause_quanta;
    // Wake the transmitter when the quanta lapses in case no refresh comes.
    schedule_in(cfg_.pfc.pause_quanta, [this, port] { try_transmit(port); });
  }
  if (!pause) try_transmit(port);
}

Time Switch::egress_paused_for(PortId port, ClassId cls) const {
  const auto& eg = egress_.at(port);
  if (!eg.paused.at(cls)) return Time::zero();
  return now() - eg.paused_since.at(cls);
}

std::uint64_t Switch::flush_egress_queue(PortId port, ClassId cls,
                                         DropReason reason) {
  auto& eg = egress_.at(port);
  auto& q = eg.cls.at(cls);
  const Time now = this->now();
  std::uint64_t dropped = 0;
  while (!q.q.empty()) {
    QueuedPacket qp = std::move(q.q.front());
    q.q.pop_front();
    q.bytes -= qp.pkt.size_bytes;
    q.from[from_key(qp.in_port, qp.in_class)] -= qp.pkt.size_bytes;
    // Releasing the buffer credits the ingress counter (possibly sending
    // the RESUME that untangles the upstream), exactly like a forward —
    // but a flushed packet is not a departure.
    auto& ctr = ingress_.at(qp.in_port).cls.at(qp.in_class);
    ctr.bytes -= qp.pkt.size_bytes;
    total_buffered_ -= qp.pkt.size_bytes;
    DCDL_ASSERT(qp.flow_slot < ctr.flow_bytes.size());
    ctr.flow_bytes[qp.flow_slot] -= qp.pkt.size_bytes;
    flow_slots_.release(qp.flow_slot, qp.pkt.size_bytes);
    update_pause_state(qp.in_port, qp.in_class);
    count_drop(reason);
    if (net_.trace().dropped) {
      net_.trace().dropped(now, qp.pkt, id_, reason);
    }
    ++dropped;
  }
  return dropped;
}

void Switch::ignore_pause_until(PortId port, ClassId cls, Time until) {
  auto& eg = egress_.at(port);
  eg.ignore_pause_until.at(cls) = until;
  // Restart the storm clock so the watchdog measures the pause anew after
  // its intervention rather than re-firing every poll.
  eg.paused_since.at(cls) = now();
  try_transmit(port);
}

std::int64_t Switch::ingress_bytes(PortId port, ClassId cls) const {
  return ingress_.at(port).cls.at(cls).bytes;
}

std::int64_t Switch::max_ingress_bytes() const {
  std::int64_t max_bytes = 0;
  for (const IngressPort& port : ingress_) {
    for (const IngressCounter& ctr : port.cls) {
      max_bytes = std::max(max_bytes, ctr.bytes);
    }
  }
  return max_bytes;
}

std::int64_t Switch::ingress_flow_bytes(PortId port, ClassId cls,
                                        FlowId flow) const {
  const std::uint32_t slot = flow_slots_.lookup(flow);
  if (slot == FlowSlotRegistry::kNoSlot) return 0;
  const auto& fb = ingress_.at(port).cls.at(cls).flow_bytes;
  return slot < fb.size() ? fb[slot] : 0;
}

bool Switch::pause_asserted(PortId port, ClassId cls) const {
  return ingress_.at(port).cls.at(cls).pause_asserted;
}

bool Switch::egress_paused(PortId port, ClassId cls) const {
  return egress_.at(port).paused.at(cls);
}

std::int64_t Switch::egress_queue_bytes(PortId port, ClassId cls) const {
  return egress_.at(port).cls.at(cls).bytes;
}

std::int64_t Switch::egress_bytes_from(PortId port, ClassId cls,
                                       PortId in_port, ClassId in_cls) const {
  const auto& from = egress_.at(port).cls.at(cls).from;
  const std::uint32_t key = from_key(in_port, in_cls);
  return key < from.size() ? from[key] : 0;
}

std::uint64_t Switch::departures(PortId port, ClassId cls) const {
  return ingress_.at(port).cls.at(cls).departure_count;
}

std::int64_t Switch::shaper_held_bytes(PortId port) const {
  std::int64_t total = ingress_.at(port).held_bytes;
  for (const auto& [flow, fs] : flow_shapers_) {
    for (std::size_t i = 0; i < fs.held.size(); ++i) {
      if (fs.held[i].in_port == port) total += fs.held[i].pkt.size_bytes;
    }
  }
  return total;
}

}  // namespace dcdl
