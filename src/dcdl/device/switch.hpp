// The lossless-Ethernet switch model.
//
// Architecture — output-queued with ingress accounting, mirroring the
// shared-buffer commodity switches (and the authors' NS-3 qbb model) the
// paper studies:
//
//  - A packet that finishes arriving on ingress port p is routed at once
//    and placed in the FIFO of its egress (port, class) queue. There is no
//    head-of-line blocking at the ingress.
//  - An *ingress counter* per (ingress port, class) tracks the bytes of all
//    packets resident in the switch that arrived on that port/class (the
//    paper: "for each ingress queue, the switch maintains a counter to
//    track the bytes of buffered packets received by this ingress queue").
//    The counter rises at arrival and falls when the packet is dequeued
//    for transmission.
//  - PFC: counter >= Xoff sends PAUSE(class) to the upstream device;
//    counter < Xon sends RESUME. A received PAUSE freezes this switch's
//    (egress, class) queue on that port. Frozen queues hold buffer, which
//    keeps upstream ingress counters high — the cascade that makes
//    deadlock possible.
//  - Egress scheduling: one transmitter per port serving its per-class
//    FIFOs round-robin across unpaused classes; within a class, strict
//    arrival order. Per-ingress fairness at a saturated egress emerges
//    from PFC duty-cycling the ingresses (paper footnote 4).
//  - TTL: on arrival, a packet that still needs switch-to-switch
//    forwarding is dropped if its TTL is exhausted, else decremented, so a
//    packet injected with TTL=T survives exactly T switch-to-switch hops —
//    matching the boundary-state model (Eq. 2: n·B = TTL·r).
//  - Optional per-ingress-port token-bucket shapers (paper §3.3/§4 rate
//    limiting): arriving packets wait in a per-ingress holding FIFO and
//    are released to their egress queue at the shaped rate. Held bytes
//    count toward the ingress counter (they occupy buffer).
//  - ECN marking for the DCQCN mitigation: on enqueue against the real
//    egress backlog, or against a phantom queue draining at a fraction of
//    line rate (EcnConfig).
//
// Hot-path memory layout (see DESIGN.md "Hot-path memory architecture"):
// per-flow ingress tallies are dense vectors indexed by the switch's
// FlowSlotRegistry, per-ingress egress attribution is a dense vector
// indexed by from_key, and every packet FIFO is a pooled RingQueue — a
// packet arrival/forward touches no hash table and, at steady state,
// performs no heap allocation.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "dcdl/common/ring_queue.hpp"
#include "dcdl/common/rng.hpp"
#include "dcdl/device/config.hpp"
#include "dcdl/device/device.hpp"
#include "dcdl/device/flow_slots.hpp"
#include "dcdl/routing/route_table.hpp"
#include "dcdl/sim/simulator.hpp"
#include "dcdl/traffic/flow.hpp"

namespace dcdl {

class Switch final : public Device {
 public:
  Switch(Network& net, NodeId id, const NetConfig& cfg);

  RouteTable& routes() { return routes_; }
  const RouteTable& routes() const { return routes_; }

  /// Overrides the PFC thresholds of one ingress counter (per-port /
  /// per-tier / per-class threshold policies, paper §4).
  void set_thresholds(PortId port, ClassId cls, std::int64_t xoff_bytes,
                      std::int64_t xon_bytes);

  /// Installs a token-bucket rate limiter on an ingress port (paper §3.3:
  /// Figure 5 applies one to RX2 of switch B).
  void set_ingress_shaper(PortId port, Rate rate, std::int64_t burst_bytes);
  void clear_ingress_shaper(PortId port);

  /// Installs a per-flow token-bucket limiter (paper §4: "commodity
  /// switches support bandwidth shaping ... even [for] particular flows").
  /// Shaped packets wait in a per-flow holding queue (still charged to
  /// their ingress counter) and are released at `rate`. The basis of the
  /// "intelligent rate limiting [that] avoid[s] over-punishing innocent
  /// flows".
  void set_flow_shaper(FlowId flow, Rate rate, std::int64_t burst_bytes);
  void clear_flow_shaper(FlowId flow);

  /// Route changes only affect packets not yet routed (already-queued
  /// packets keep their egress, as in real switches).
  void on_routes_changed() {}

  // Device interface.
  void on_receive(PortId in_port, Packet pkt) override;
  void on_pfc(PortId port, ClassId cls, bool pause) override;

  /// PFC delivery with dataplane path metadata (Network routes tagged
  /// frames here for switch peers). Applies the plain on_pfc transition,
  /// then runs the pipeline's detect stage: store/clear the egress rx-tag,
  /// recognize a returning own-tag (cycle candidate), or re-propagate a
  /// fresher upstream tag to already-asserted ingress counters.
  void on_pfc_tagged(PortId port, ClassId cls, bool pause,
                     const dataplane::PauseTag& tag);

  /// The in-switch detection pipeline, or nullptr when the dataplane is
  /// off (the default — no state is allocated).
  const dataplane::Pipeline* pipeline() const { return dp_.get(); }

  // --- Introspection (analysis & statistics) ---
  std::size_t num_ports() const { return ingress_.size(); }
  /// Ingress counter value (the quantity PFC thresholds act on).
  std::int64_t ingress_bytes(PortId port, ClassId cls) const;
  /// Bytes of one flow currently attributed to an ingress counter (the
  /// paper's per-flow "buffer occupancy at RX1" series).
  std::int64_t ingress_flow_bytes(PortId port, ClassId cls, FlowId flow) const;
  /// Largest ingress-counter value across every (port, class) of this
  /// switch — the hybrid zoom's escalation signal (compared against a
  /// fraction of Xoff) without per-counter calls at every control step.
  std::int64_t max_ingress_bytes() const;
  /// True if this ingress counter currently holds its upstream in PAUSE.
  bool pause_asserted(PortId port, ClassId cls) const;
  /// True if the downstream device paused this egress queue.
  bool egress_paused(PortId port, ClassId cls) const;
  bool egress_busy(PortId port) const { return egress_.at(port).busy; }
  std::int64_t egress_queue_bytes(PortId port, ClassId cls) const;
  /// Bytes in egress queue (port, cls) attributed to ingress counter
  /// (in_port, in_cls) — used by the deadlock detector's frozen-set
  /// fixpoint.
  std::int64_t egress_bytes_from(PortId port, ClassId cls, PortId in_port,
                                 ClassId in_cls) const;
  /// Transmissions attributed to an ingress counter.
  std::uint64_t departures(PortId port, ClassId cls) const;
  std::int64_t total_buffered() const { return total_buffered_; }
  /// Bytes waiting in the ingress shaper's holding queue (0 if no shaper).
  std::int64_t shaper_held_bytes(PortId port) const;
  /// Flows currently holding buffer in this switch (flow-slot registry).
  std::size_t resident_flows() const { return flow_slots_.resident_flows(); }
  /// High-water flow-slot count — dense accounting vectors grow to this
  /// and never beyond the concurrent working set (slots recycle on drain).
  std::uint32_t flow_slot_capacity() const { return flow_slots_.capacity(); }

  // --- Reactive recovery (PFC watchdog support, paper §1) ---
  /// How long this egress (port, class) has been continuously paused by
  /// its downstream (zero if not currently paused).
  Time egress_paused_for(PortId port, ClassId cls) const;
  /// Flushes every packet queued in egress (port, class), releasing the
  /// ingress counters they were charged to (traced as `reason` drops —
  /// kWatchdogReset for the watchdog, kDataplaneReset for the dataplane
  /// kDrop recovery). Returns the number of packets dropped.
  std::uint64_t flush_egress_queue(PortId port, ClassId cls,
                                   DropReason reason =
                                       DropReason::kWatchdogReset);
  /// Ignores the received pause state of (port, class) until `until`
  /// (transmission proceeds as if unpaused; late RESUMEs re-arm normally).
  void ignore_pause_until(PortId port, ClassId cls, Time until);

 private:
  struct QueuedPacket {
    Packet pkt;          ///< prio already rewritten to the departure class
    PortId in_port;      ///< ingress attribution for counter/PFC accounting
    ClassId in_class;
    std::uint32_t flow_slot;  ///< dense per-flow accounting index
    /// Enqueue timestamp: dequeue minus this is the per-hop queuing delay
    /// reported through Trace::hop_wait. Lives in the RingQueue, not in
    /// event closures, so the 64-byte InplaceFn budget is untouched.
    Time enqueued_at;
  };

  struct IngressCounter {
    std::int64_t bytes = 0;
    bool pause_asserted = false;
    bool refresh_scheduled = false;
    std::uint64_t departure_count = 0;
    std::int64_t xoff = 0;
    std::int64_t xon = 0;
    /// Per-flow bytes, indexed by flow slot (see FlowSlotRegistry). Grown
    /// lazily to the registry's high-water capacity; a recycled slot is
    /// guaranteed zero here when it is reassigned.
    std::vector<std::int64_t> flow_bytes;
  };

  struct IngressPort {
    std::vector<IngressCounter> cls;
    std::unique_ptr<TokenBucketPacer> shaper;
    RingQueue<Packet> held;  ///< awaiting shaper release
    std::int64_t held_bytes = 0;
    bool release_scheduled = false;
  };

  /// Held packets remember their ingress attribution.
  struct HeldPacket {
    Packet pkt;
    PortId in_port;
    ClassId in_class;
  };

  struct FlowShaper {
    std::unique_ptr<TokenBucketPacer> shaper;
    RingQueue<HeldPacket> held;
    std::int64_t held_bytes = 0;
    bool release_scheduled = false;
  };

  struct EgressClassQueue {
    RingQueue<QueuedPacket> q;
    std::int64_t bytes = 0;
    /// Attribution: bytes per from_key(in_port, in_class), dense (sized
    /// ports * num_classes at construction — no per-packet hashing).
    std::vector<std::int64_t> from;
  };

  struct EgressPort {
    std::vector<EgressClassQueue> cls;
    std::array<bool, kMaxClasses> paused{};
    std::array<Time, kMaxClasses> paused_since{};
    std::array<Time, kMaxClasses> ignore_pause_until{};
    /// With pause_quanta enabled: when the current pause lapses.
    std::array<Time, kMaxClasses> pause_expiry{};
    bool busy = false;
    std::size_t rr_class = 0;
    // Phantom queue state for ECN marking.
    double phantom_bytes = 0;
    Time phantom_last = Time::zero();
  };

  /// Effective pause state after quanta expiry and any watchdog
  /// ignore-window.
  bool effectively_paused(const EgressPort& eg, ClassId cls) const;
  void schedule_pause_refresh(PortId port, ClassId cls);

  /// Routes and enqueues a packet that has cleared ingress admission (and
  /// the shaper, if any). `flow_slot` is the packet's dense accounting
  /// index, already charged at admission.
  void route_and_enqueue(PortId in_port, ClassId in_class,
                         std::uint32_t flow_slot, Packet pkt);
  void try_transmit(PortId egress);
  void complete_transmit(PortId egress);
  void schedule_shaper_release(PortId in_port);
  void release_held(PortId in_port);
  void schedule_flow_release(FlowId flow);
  void release_flow_held(FlowId flow);
  void dec_ingress(PortId in_port, ClassId in_class, std::uint32_t flow_slot,
                   const Packet& pkt);
  void update_pause_state(PortId port, ClassId cls);
  bool ecn_mark_on_enqueue(EgressPort& eg, PortId port, const Packet& pkt);
  Time tx_hold_time(const Packet& pkt, PortId egress);
  /// Charges `bytes` of `flow` to counter (in_port, in_class) and returns
  /// the flow's dense slot, growing the counter's tally vector on a
  /// first-ever slot high-water (steady state: a bare vector index).
  std::uint32_t charge_ingress(IngressCounter& ctr, FlowId flow,
                               std::int64_t bytes);
  std::uint32_t from_key(PortId in_port, ClassId in_cls) const {
    return static_cast<std::uint32_t>(in_port) * from_stride_ + in_cls;
  }

  // --- Dataplane pipeline stages (all no-ops unless dp_ is allocated) ---
  /// Tag stage, PFC side: the tag to send with the Xoff of ingress counter
  /// (port, cls) — a propagated upstream tag when the backlog traces to a
  /// frozen tagged egress, else a fresh origin tag.
  dataplane::PauseTag dp_tag_for_xoff(PortId port, ClassId cls);
  /// A tagged PAUSE just froze egress (port, cls): forward the chain to
  /// ingress counters that asserted Xoff *before* the tag arrived.
  void dp_late_propagate(PortId port, ClassId cls,
                         const dataplane::PauseTag& tag);
  /// Detect stage: our own tag returned with a PAUSE on egress (port, cls).
  void dp_on_own_tag(PortId port, ClassId cls,
                     const dataplane::PauseTag& tag);
  /// Confirm-dwell expiry: confirmed cycle -> recovery, else false alarm.
  void dp_resolve_candidate();
  /// Recovery stage: apply the configured policy, disarm, schedule re-arm.
  void dp_recover(const dataplane::PauseTag& tag);

  /// Post-cooldown sweep: restart detection from stored rx-tags (an own
  /// tag that returned while the stage was disarmed would otherwise be
  /// lost — a re-hardened wedge sends no fresh pause edge to re-carry it).
  void dp_rescan_own_tags();
  /// kReroute: pop the frozen egress queue, install detours, re-queue.
  std::uint64_t dp_reroute_queue(PortId port, ClassId cls);
  /// Installs a detour route for `pkt` avoiding egress `avoid` (no-op when
  /// no alternative next hop reaches the destination).
  void dp_install_detour(const Packet& pkt, PortId avoid);

  const NetConfig& cfg_;
  RouteTable routes_;
  /// Hoisted per-packet constants (avoid re-deriving from cfg_ per packet).
  std::uint32_t from_stride_ = 1;  ///< == cfg_.num_classes
  std::size_t num_classes_ = 1;
  std::vector<IngressPort> ingress_;
  std::vector<EgressPort> egress_;
  FlowSlotRegistry flow_slots_;
  std::unordered_map<FlowId, FlowShaper> flow_shapers_;
  std::int64_t total_buffered_ = 0;
  Rng jitter_rng_;
  /// In-switch DCFIT pipeline; allocated only when cfg.dataplane.enabled().
  std::unique_ptr<dataplane::Pipeline> dp_;
};

}  // namespace dcdl
