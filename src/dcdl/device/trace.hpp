// Observation hooks. All instrumentation (pause-event logs, occupancy
// samplers, throughput meters, deadlock detectors) attaches through these
// callbacks; the data path never depends on what is listening.
//
// Each Trace slot is a HookSlot: a small inline vector of InplaceFn
// observers dispatched in attachment order. Unlike the former chain of
// nested std::functions, appending the Nth observer costs one push into
// contiguous storage (no re-wrapping) and firing a hook walks that storage
// directly — no heap allocation and no nested indirection on the hot path.
#pragma once

#include <cstdint>
#include <type_traits>
#include <utility>

#include "dcdl/common/inplace_fn.hpp"
#include "dcdl/common/small_vec.hpp"
#include "dcdl/common/units.hpp"
#include "dcdl/dataplane/dataplane.hpp"
#include "dcdl/net/packet.hpp"

namespace dcdl {

enum class DropReason : std::uint8_t {
  kTtlExpired,      ///< TTL reached zero at a switch (the r_d drain of Eq. 1)
  kNoRoute,         ///< no forwarding entry (transient blackhole)
  kBufferOverflow,  ///< shared buffer exhausted (must not happen under PFC)
  kWatchdogReset,   ///< reactive recovery flushed a storm-paused queue (§1)
  kDataplaneReset,  ///< dataplane kDrop recovery flushed a deadlocked queue
};
constexpr int kNumDropReasons = 5;

const char* to_string(DropReason r);

/// One observation slot: zero or more observers fired in attachment order.
/// Assigning a callable replaces the whole list (and assigning nullptr
/// clears it), preserving the ergonomics of the former std::function slots;
/// stats::append_hook chains additional observers.
template <typename... Args>
class HookSlot {
 public:
  /// Observers are stored inline up to 48 bytes of captures — every
  /// observer in the stats layer captures a single object pointer.
  using Fn = InplaceFn<void(Args...), 48>;

  HookSlot() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, HookSlot> &&
                std::is_invocable_v<std::decay_t<F>&, Args...>>>
  HookSlot& operator=(F&& f) {
    fns_.clear();
    fns_.push_back(Fn(std::forward<F>(f)));
    return *this;
  }

  HookSlot& operator=(std::nullptr_t) {
    fns_.clear();
    return *this;
  }

  void append(Fn fn) {
    if (fn) fns_.push_back(std::move(fn));
  }

  explicit operator bool() const { return !fns_.empty(); }

  void operator()(Args... args) {
    for (Fn& f : fns_) f(args...);
  }

 private:
  SmallVec<Fn, 2> fns_;
};

struct Trace {
  /// A switch ingress queue (node, port, class) changed the pause state it
  /// imposes on its upstream: paused=true means an Xoff was emitted.
  HookSlot<Time, NodeId, PortId, ClassId, bool> pfc_state;

  /// A switch ingress counter (node, port, class) changed; `bytes` is its
  /// new value. Fired on every packet admission and departure — the exact
  /// occupancy series behind the paper's Fig. 3d sawtooth and the Perfetto
  /// exporter's counter tracks. Leave empty when not needed: an unobserved
  /// slot costs one branch.
  HookSlot<Time, NodeId, PortId, ClassId, std::int64_t> queue_bytes;

  /// Packet delivered to its destination host.
  HookSlot<Time, const Packet&> delivered;

  /// Packet dropped at `node`.
  HookSlot<Time, const Packet&, NodeId, DropReason> dropped;

  /// A device started serializing a packet out of (node, port).
  HookSlot<Time, const Packet&, NodeId, PortId> tx_start;

  /// Sender-side congestion notification delivered for a flow.
  HookSlot<Time, FlowId> cnp;

  /// A queued packet left a switch ingress queue toward egress `port`
  /// after `waited` of queuing delay (dequeue time minus enqueue time).
  /// Fired alongside tx_start for switch-forwarded packets — the per-hop
  /// queuing-delay distribution behind the probe layer's hop_wait
  /// histogram. Leave empty when not needed: an unobserved slot costs one
  /// branch, and the golden digests never observe it.
  HookSlot<Time, NodeId, PortId, ClassId, Time> hop_wait;

  /// Data-plane detection pipeline event at a switch (candidate, confirm,
  /// recovery, false alarm, re-arm); `detail` is event-specific (tag hops
  /// for candidate/confirmed, packets acted on for recovered). Never fired
  /// when the pipeline is off.
  HookSlot<Time, NodeId, dataplane::DataplaneEvent, ClassId, std::uint64_t>
      dataplane;

  /// Hybrid engine region zoom transition: region `region` switched to
  /// packet level (to_packet=true: escalation) or back to fluid
  /// (de-escalation). Fired from control phases only — never from the
  /// packet hot path — and never when the hybrid layer is off.
  HookSlot<Time, std::uint32_t, bool> region_state;
};

}  // namespace dcdl
