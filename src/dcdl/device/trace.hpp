// Observation hooks. All instrumentation (pause-event logs, occupancy
// samplers, throughput meters, deadlock detectors) attaches through these
// callbacks; the data path never depends on what is listening.
#pragma once

#include <cstdint>
#include <functional>

#include "dcdl/common/units.hpp"
#include "dcdl/net/packet.hpp"

namespace dcdl {

enum class DropReason : std::uint8_t {
  kTtlExpired,      ///< TTL reached zero at a switch (the r_d drain of Eq. 1)
  kNoRoute,         ///< no forwarding entry (transient blackhole)
  kBufferOverflow,  ///< shared buffer exhausted (must not happen under PFC)
  kWatchdogReset,   ///< reactive recovery flushed a storm-paused queue (§1)
};
constexpr int kNumDropReasons = 4;

const char* to_string(DropReason r);

struct Trace {
  /// A switch ingress queue (node, port, class) changed the pause state it
  /// imposes on its upstream: paused=true means an Xoff was emitted.
  std::function<void(Time, NodeId node, PortId port, ClassId cls, bool paused)>
      pfc_state;

  /// Packet delivered to its destination host.
  std::function<void(Time, const Packet&)> delivered;

  /// Packet dropped at `node`.
  std::function<void(Time, const Packet&, NodeId node, DropReason)> dropped;

  /// A device started serializing a packet out of (node, port).
  std::function<void(Time, const Packet&, NodeId node, PortId port)> tx_start;

  /// Sender-side congestion notification delivered for a flow.
  std::function<void(Time, FlowId)> cnp;
};

}  // namespace dcdl
