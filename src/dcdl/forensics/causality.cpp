#include "dcdl/forensics/causality.hpp"

#include <algorithm>

#include "dcdl/device/trace.hpp"

namespace dcdl::forensics {

const char* to_string(TriggerKind kind) {
  switch (kind) {
    case TriggerKind::kRoutingLoop: return "routing-loop";
    case TriggerKind::kHostPause: return "host-pause";
    case TriggerKind::kCongestionCascade: return "congestion-cascade";
  }
  return "?";
}

CausalInput make_input(const Topology& topo) {
  CausalInput in;
  for (NodeId n = 0; n < topo.node_count(); ++n) {
    const NodeSpec& spec = topo.node(n);
    in.nodes[n] = {spec.name, spec.kind == NodeKind::kSwitch};
    const auto& ports = topo.ports(n);
    for (PortId p = 0; p < ports.size(); ++p) {
      const PortPeer& pp = ports[p];
      CausalInput::PortInfo info;
      info.peer_node = pp.peer_node;
      info.peer_port = pp.peer_port;
      info.peer_is_switch = topo.is_switch(pp.peer_node);
      info.delay_ps = topo.link(pp.link).delay.ps();
      in.ports[{n, p}] = info;
    }
  }
  return in;
}

CausalInput input_from_records(
    const Topology& topo, const std::vector<telemetry::TraceRecord>& records) {
  CausalInput in = make_input(topo);
  for (const telemetry::TraceRecord& r : records) {
    switch (r.kind) {
      case telemetry::RecordKind::kPfcXoff:
      case telemetry::RecordKind::kPfcXon:
        in.pauses.push_back({r.t_ps, r.node, r.port, r.cls,
                             r.kind == telemetry::RecordKind::kPfcXoff});
        break;
      case telemetry::RecordKind::kQueueBytes:
        in.occupancy.push_back({r.t_ps, r.node, r.port, r.cls, r.bytes});
        break;
      case telemetry::RecordKind::kDropped:
        in.drops.push_back({r.t_ps, r.node, r.reason});
        break;
      default:
        break;
    }
    in.window_end_ps = std::max(in.window_end_ps, r.t_ps);
  }
  return in;
}

CausalInput input_from_pause_log(const Topology& topo,
                                 const stats::PauseEventLog& log,
                                 Time window_end) {
  CausalInput in = make_input(topo);
  for (const stats::PauseEvent& e : log.events()) {
    in.pauses.push_back({e.t.ps(), e.node, e.port, e.cls, e.paused});
  }
  in.window_end_ps = window_end.ps();
  return in;
}

namespace {

/// Union-find over span indices (path halving, union by attachment to the
/// smaller root index so component numbering is stable).
class DisjointSet {
 public:
  explicit DisjointSet(std::size_t n) : parent_(n) {
    for (std::size_t i = 0; i < n; ++i) parent_[i] = static_cast<std::uint32_t>(i);
  }
  std::uint32_t find(std::uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(std::uint32_t a, std::uint32_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    // Smaller index wins: the set id is always its earliest span.
    if (a < b) parent_[b] = a; else parent_[a] = b;
  }

 private:
  std::vector<std::uint32_t> parent_;
};

}  // namespace

std::optional<std::uint32_t> CascadeReport::initial_trigger() const {
  if (deadlock_trigger) return deadlock_trigger;
  if (components.empty()) return std::nullopt;
  return components.front().root;
}

CascadeReport analyze(const CausalInput& in) {
  CascadeReport out;
  out.window_end_ps = in.window_end_ps;
  out.deadlock_cycle = in.deadlock_cycle;
  out.deadlock_at_ps = in.deadlock_at_ps;
  out.nodes = in.nodes;

  // Observation streams arrive time-ordered from every builder; a stable
  // sort makes analyze() total for hand-assembled inputs too.
  std::vector<CausalInput::Pause> pauses = in.pauses;
  std::stable_sort(pauses.begin(), pauses.end(),
                   [](const CausalInput::Pause& a, const CausalInput::Pause& b) {
                     return a.t_ps < b.t_ps;
                   });
  for (const CausalInput::Pause& p : pauses) {
    out.window_end_ps = std::max(out.window_end_ps, p.t_ps);
  }

  // Per-node port directory and per-queue occupancy series for the
  // threshold-crossing annotation.
  std::map<NodeId, std::vector<std::pair<PortId, CausalInput::PortInfo>>>
      ports_of;
  for (const auto& [key, info] : in.ports) {
    ports_of[key.first].emplace_back(key.second, info);
  }
  std::map<QueueKey, std::vector<std::pair<std::int64_t, std::uint32_t>>> occ;
  for (const CausalInput::Occupancy& o : in.occupancy) {
    occ[QueueKey{o.node, o.port, o.cls}].emplace_back(o.t_ps, o.bytes);
  }

  // Single chronological sweep: an Xoff opens a span and links to every
  // cause still asserted (and physically arrived) at that instant; an Xon
  // closes its span.
  std::map<QueueKey, std::uint32_t> active;
  for (const CausalInput::Pause& p : pauses) {
    const QueueKey key{p.node, p.port, p.cls};
    if (!p.paused) {
      const auto it = active.find(key);
      if (it != active.end()) {
        out.spans[it->second].end_ps = p.t_ps;
        active.erase(it);
      }
      continue;
    }
    if (active.count(key) != 0) continue;  // duplicate Xoff: already open

    PauseSpan span;
    span.queue = key;
    span.start_ps = p.t_ps;
    if (const auto oit = occ.find(key); oit != occ.end()) {
      // Last occupancy observation at or before the assertion.
      const auto& series = oit->second;
      auto up = std::upper_bound(
          series.begin(), series.end(), std::make_pair(p.t_ps, UINT32_MAX));
      if (up != series.begin()) span.bytes_at_assert = std::prev(up)->second;
    }
    const std::uint32_t idx = static_cast<std::uint32_t>(out.spans.size());
    if (const auto pit = ports_of.find(p.node); pit != ports_of.end()) {
      for (const auto& [port, info] : pit->second) {
        (void)port;
        if (!info.peer_is_switch) continue;
        const auto cit =
            active.find(QueueKey{info.peer_node, info.peer_port, p.cls});
        if (cit == active.end()) continue;
        PauseSpan& cause = out.spans[cit->second];
        // The cause's pause frame must have reached this switch already.
        if (cause.start_ps + info.delay_ps > p.t_ps) continue;
        span.causes.push_back(cit->second);
        cause.effects.push_back(idx);
        span.depth = std::max(span.depth, cause.depth + 1);
      }
    }
    active[key] = idx;
    out.spans.push_back(std::move(span));
  }

  // Deadlock-cycle marking: the cycle queues' spans still asserted at the
  // confirmation instant.
  if (out.deadlock_at_ps) {
    const std::int64_t at = *out.deadlock_at_ps;
    for (const QueueKey& q : out.deadlock_cycle) {
      for (PauseSpan& s : out.spans) {
        if (s.queue == q && s.start_ps <= at &&
            (s.end_ps < 0 || s.end_ps > at)) {
          s.in_deadlock_cycle = true;
        }
      }
    }
  }

  // Weakly-connected components over cause edges; ids in order of each
  // component's earliest span, so numbering is stable and chronological.
  DisjointSet dsu(out.spans.size());
  for (std::uint32_t i = 0; i < out.spans.size(); ++i) {
    for (const std::uint32_t c : out.spans[i].causes) dsu.unite(i, c);
  }
  std::map<std::uint32_t, int> component_of_root;  // dsu root -> id
  for (std::uint32_t i = 0; i < out.spans.size(); ++i) {
    const std::uint32_t r = dsu.find(i);
    const auto [it, fresh] = component_of_root.emplace(
        r, static_cast<int>(out.components.size()));
    if (fresh) out.components.emplace_back();
    const int cid = it->second;
    out.spans[i].component = cid;
    CascadeComponent& comp = out.components[static_cast<std::size_t>(cid)];
    comp.span_count += 1;
    if (comp.span_count == 1) comp.root = i;  // provisional: first span
    comp.max_depth = std::max(comp.max_depth, out.spans[i].depth);
    if (out.spans[i].causes.empty()) comp.roots.push_back(i);
    if (out.spans[i].in_deadlock_cycle) comp.contains_deadlock_cycle = true;
  }
  for (CascadeComponent& comp : out.components) {
    // The trigger is the earliest origin; spans are already in time order,
    // so the first collected root is it.
    if (!comp.roots.empty()) comp.root = comp.roots.front();
  }

  // Width per component: the largest population of any one depth.
  {
    std::map<std::pair<int, int>, int> by_comp_depth;
    for (const PauseSpan& s : out.spans) {
      const int w = ++by_comp_depth[{s.component, s.depth}];
      CascadeComponent& comp =
          out.components[static_cast<std::size_t>(s.component)];
      comp.max_width = std::max(comp.max_width, w);
    }
  }

  // Trigger classification. Routing-loop evidence: TTL-expired drops at
  // any switch that participates in the cascade — circulating traffic is
  // what ages out. Host-pause: the trigger queue pauses a host, i.e. the
  // backlog formed at the fabric edge. Everything else is in-network
  // congestion.
  {
    std::vector<std::map<NodeId, bool>> comp_nodes(out.components.size());
    for (const PauseSpan& s : out.spans) {
      comp_nodes[static_cast<std::size_t>(s.component)][s.queue.node] = true;
    }
    for (std::size_t c = 0; c < out.components.size(); ++c) {
      CascadeComponent& comp = out.components[c];
      bool loop_evidence = false;
      for (const CausalInput::Drop& d : in.drops) {
        if (d.reason != static_cast<std::uint8_t>(DropReason::kTtlExpired)) {
          continue;
        }
        if (comp_nodes[c].count(d.node) != 0) {
          loop_evidence = true;
          break;
        }
      }
      if (loop_evidence) {
        comp.trigger = TriggerKind::kRoutingLoop;
        continue;
      }
      const PauseSpan& root = out.spans[comp.root];
      const auto pit = in.ports.find({root.queue.node, root.queue.port});
      if (pit != in.ports.end() && !pit->second.peer_is_switch) {
        comp.trigger = TriggerKind::kHostPause;
      } else {
        comp.trigger = TriggerKind::kCongestionCascade;
      }
    }
  }

  // Deadlock attribution: the cascade containing the confirmed cycle, and
  // the time from its trigger to the confirmation.
  for (const CascadeComponent& comp : out.components) {
    if (!comp.contains_deadlock_cycle) continue;
    out.deadlock_trigger = comp.root;
    if (out.deadlock_at_ps) {
      out.time_to_deadlock_ps =
          *out.deadlock_at_ps - out.spans[comp.root].start_ps;
    }
    break;
  }

  // Pause-storm fan-out histogram: how many downstream pauses each span
  // directly induced.
  for (const PauseSpan& s : out.spans) {
    const std::size_t k = s.effects.size();
    if (out.fanout_hist.size() <= k) out.fanout_hist.resize(k + 1, 0);
    out.fanout_hist[k] += 1;
  }
  return out;
}

}  // namespace dcdl::forensics
