// Causal pause-propagation analysis — the post-mortem layer on top of the
// flight recorder and pause log.
//
// The paper's core claim is that a PFC deadlock is the *end state of a
// causal chain*: a pause cascade that closes into a cyclic buffer
// dependency. The telemetry layer records the flat event stream; this
// module reconstructs the chain. Nodes of the causality DAG are pause
// intervals (one per Xoff..Xon at a (switch, port, class) ingress queue,
// annotated with the queue occupancy that crossed the Xoff threshold);
// an edge C -> E means the downstream pause C was holding one of E's
// switch's egress ports when E asserted — C is a cause of E. Roots of
// each weakly-connected component are the *initial triggers* (DCFIT, Wu &
// Ng, arXiv:2009.13446: identifying the first pause of a cascade is the
// actionable output of deadlock diagnosis), classified as routing-loop,
// host-pause, or congestion-cascade origins.
//
// Everything here is offline/post-hoc: analysis runs on a finished event
// stream and allocates freely. Nothing is ever called from the simulation
// hot path (the zero-alloc steady-state invariant is untouched).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "dcdl/stats/pause_log.hpp"
#include "dcdl/telemetry/record.hpp"
#include "dcdl/topo/topology.hpp"

namespace dcdl::forensics {

using stats::QueueKey;

/// Normalized analysis input, buildable from a live network's observers or
/// from an offline `dcdl.telemetry.v1` JSONL (see trace_io.hpp). Holding a
/// plain struct — not a Network — keeps the analyzer usable long after the
/// simulation is gone.
struct CausalInput {
  /// One endpoint's view of a link: who is on the other side, and how long
  /// a pause frame takes to get there (the propagation delay the simulator
  /// models for PFC control frames).
  struct PortInfo {
    NodeId peer_node = kInvalidNode;
    PortId peer_port = kInvalidPort;
    bool peer_is_switch = false;
    std::int64_t delay_ps = 0;
  };
  /// (node, port) -> peer. Deterministic iteration (std::map) keeps every
  /// derived artifact byte-stable.
  std::map<std::pair<NodeId, PortId>, PortInfo> ports;
  /// node -> (name, is_switch) for human-readable reports.
  std::map<NodeId, std::pair<std::string, bool>> nodes;

  struct Pause {
    std::int64_t t_ps = 0;
    NodeId node = 0;
    PortId port = 0;
    ClassId cls = 0;
    bool paused = false;
  };
  std::vector<Pause> pauses;  ///< time-ordered Xoff/Xon transitions

  struct Occupancy {
    std::int64_t t_ps = 0;
    NodeId node = 0;
    PortId port = 0;
    ClassId cls = 0;
    std::uint32_t bytes = 0;
  };
  /// Optional queue_bytes series (records-based inputs have it; a bare
  /// pause log does not). Used to annotate each span with the occupancy
  /// that crossed the threshold.
  std::vector<Occupancy> occupancy;

  struct Drop {
    std::int64_t t_ps = 0;
    NodeId node = 0;
    std::uint8_t reason = 0;  ///< DropReason
  };
  std::vector<Drop> drops;  ///< trigger-classification evidence

  /// End of the observed window; analyze() extends it to the last pause if
  /// later. Open pauses are reported as [start, window_end).
  std::int64_t window_end_ps = 0;

  /// Verdict of the online deadlock monitor, when one ran.
  std::vector<QueueKey> deadlock_cycle;
  std::optional<std::int64_t> deadlock_at_ps;
};

/// Seeds `ports`/`nodes` from a topology (no observations yet).
CausalInput make_input(const Topology& topo);

/// Topology + a flight-recorder window (pauses, occupancy, drops all come
/// from the records).
CausalInput input_from_records(
    const Topology& topo, const std::vector<telemetry::TraceRecord>& records);

/// Topology + a full pause history. Occupancy stays empty; callers that
/// also observed drops can append them to `drops` for classification.
CausalInput input_from_pause_log(const Topology& topo,
                                 const stats::PauseEventLog& log,
                                 Time window_end);

/// How a cascade started — the classification of its root pause.
enum class TriggerKind : std::uint8_t {
  /// TTL-expired drops were observed at switches of this cascade: the
  /// congestion that seeded it was traffic circulating a routing loop
  /// (paper §3.1 / Fig. 2).
  kRoutingLoop,
  /// The root queue's upstream peer is a host: backpressure formed at the
  /// fabric edge, where injected traffic first lands.
  kHostPause,
  /// Switch-to-switch congestion with no loop evidence: an in-network
  /// oversubscription cascade (paper §3.2 / Figs. 3-4).
  kCongestionCascade,
};
const char* to_string(TriggerKind kind);

/// One node of the causality DAG: a pause interval at one ingress queue.
struct PauseSpan {
  QueueKey queue{};
  std::int64_t start_ps = 0;
  std::int64_t end_ps = -1;  ///< -1: still asserted at the window end
  /// Last observed occupancy of the queue at/before the assertion — the
  /// threshold crossing that fired the Xoff. 0 when no occupancy series
  /// was provided.
  std::uint32_t bytes_at_assert = 0;
  /// Longest cause chain beneath this span (0 = origin / initial trigger).
  int depth = 0;
  int component = 0;
  /// The span is one of the confirmed wait-for cycle's queues, still
  /// asserted at the confirmation instant.
  bool in_deadlock_cycle = false;
  std::vector<std::uint32_t> causes;   ///< span indices (edges in)
  std::vector<std::uint32_t> effects;  ///< span indices (edges out)
};

/// One weakly-connected component of the DAG — a cascade.
struct CascadeComponent {
  std::uint32_t root = 0;              ///< earliest depth-0 span (the trigger)
  std::vector<std::uint32_t> roots;    ///< all depth-0 spans, time order
  TriggerKind trigger = TriggerKind::kCongestionCascade;
  int max_depth = 0;
  /// Most spans at any single depth — how wide the cascade fanned.
  int max_width = 0;
  std::uint32_t span_count = 0;
  bool contains_deadlock_cycle = false;
};

struct CascadeReport {
  std::vector<PauseSpan> spans;  ///< in assertion-time order
  /// Ordered by root assertion time (deterministic).
  std::vector<CascadeComponent> components;
  /// fanout_hist[k] = spans that directly induced k downstream pauses.
  std::vector<std::uint64_t> fanout_hist;
  std::int64_t window_end_ps = 0;

  // Deadlock attribution (when the input carried a monitor verdict).
  std::vector<QueueKey> deadlock_cycle;
  std::optional<std::int64_t> deadlock_at_ps;
  /// Root span of the cascade that closed the cycle.
  std::optional<std::uint32_t> deadlock_trigger;
  /// deadlock_at - trigger assertion time; -1 when no deadlock.
  std::int64_t time_to_deadlock_ps = -1;

  /// Copied from the input for self-contained rendering.
  std::map<NodeId, std::pair<std::string, bool>> nodes;

  /// Index of the primary trigger: the deadlock cascade's root when a
  /// deadlock was confirmed, else the earliest component's root. Nullopt
  /// when no pauses were observed.
  std::optional<std::uint32_t> initial_trigger() const;
};

/// Builds the causality DAG and attributes every cascade to its trigger.
///
/// Edge rule: span E at (sw, port, cls) has cause C if C is a pause still
/// asserted at E's assertion instant, sitting at the ingress queue of a
/// *switch* peer of any of sw's ports for the same class — i.e. C was
/// holding one of sw's egresses when E fired — and C's pause frame had
/// physically arrived: C.start + link_delay <= E.start. Depth(E) = 1 + max
/// depth of causes. This refines stats::analyze_pause_cascade's
/// active-parent rule with the arrival-time filter, so a pause that
/// asserted less than one propagation delay before E cannot be blamed for
/// it; on closely-spaced assertions the two can report different depths,
/// and the forensic one is the physical lower bound.
CascadeReport analyze(const CausalInput& in);

}  // namespace dcdl::forensics
