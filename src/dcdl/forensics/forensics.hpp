// Umbrella for dcdl::forensics — offline post-mortem analysis of PFC pause
// propagation: the causal DAG, initial-trigger attribution, cascade
// metrics, and the text / DOT / Perfetto-flow renderers.
//
// Everything in this subsystem runs after (or entirely outside) the
// simulation; nothing here is callable from the zero-alloc hot path.
#pragma once

#include "dcdl/forensics/causality.hpp"
#include "dcdl/forensics/metrics.hpp"
#include "dcdl/forensics/report.hpp"
#include "dcdl/forensics/trace_io.hpp"
