#include "dcdl/forensics/metrics.hpp"

namespace dcdl::forensics {

CascadeMetricIds register_cascade_metrics(telemetry::MetricsRegistry& reg) {
  CascadeMetricIds ids;
  ids.pause_spans = reg.gauge("forensics.pause_spans");
  ids.cascades = reg.gauge("forensics.cascades");
  ids.max_depth = reg.gauge("forensics.cascade_max_depth");
  ids.max_width = reg.gauge("forensics.cascade_max_width");
  ids.triggers_routing_loop = reg.gauge("forensics.triggers.routing_loop");
  ids.triggers_host_pause = reg.gauge("forensics.triggers.host_pause");
  ids.triggers_congestion = reg.gauge("forensics.triggers.congestion");
  ids.time_to_deadlock_ms = reg.gauge("forensics.time_to_deadlock_ms");
  ids.fanout = reg.histogram("forensics.fanout", {0, 1, 2, 4, 8, 16});
  return ids;
}

void record_cascade(telemetry::MetricsRegistry& reg,
                    const CascadeMetricIds& ids,
                    const CascadeReport& report) {
  reg.set(ids.pause_spans, static_cast<double>(report.spans.size()));
  reg.set(ids.cascades, static_cast<double>(report.components.size()));
  int max_depth = 0, max_width = 0;
  int loops = 0, hosts = 0, congestion = 0;
  for (const CascadeComponent& c : report.components) {
    max_depth = std::max(max_depth, c.max_depth);
    max_width = std::max(max_width, c.max_width);
    switch (c.trigger) {
      case TriggerKind::kRoutingLoop: ++loops; break;
      case TriggerKind::kHostPause: ++hosts; break;
      case TriggerKind::kCongestionCascade: ++congestion; break;
    }
  }
  reg.set(ids.max_depth, max_depth);
  reg.set(ids.max_width, max_width);
  reg.set(ids.triggers_routing_loop, loops);
  reg.set(ids.triggers_host_pause, hosts);
  reg.set(ids.triggers_congestion, congestion);
  reg.set(ids.time_to_deadlock_ms,
          report.time_to_deadlock_ps < 0
              ? -1.0
              : static_cast<double>(report.time_to_deadlock_ps) / 1e9);
  for (const PauseSpan& s : report.spans) {
    reg.observe(ids.fanout, static_cast<double>(s.effects.size()));
  }
}

}  // namespace dcdl::forensics
