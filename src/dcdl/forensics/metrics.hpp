// Cascade metrics as MetricsRegistry entries, so every campaign RunRecord
// (and any --metrics report) carries the forensic summary next to the
// net.* / sim.* uniform set. Registration and recording both happen after
// the measured window — nothing here runs on the simulation hot path.
#pragma once

#include "dcdl/forensics/causality.hpp"
#include "dcdl/telemetry/metrics.hpp"

namespace dcdl::forensics {

struct CascadeMetricIds {
  telemetry::GaugeId pause_spans;       ///< DAG nodes in the window
  telemetry::GaugeId cascades;          ///< weakly-connected components
  telemetry::GaugeId max_depth;         ///< deepest cause chain
  telemetry::GaugeId max_width;         ///< widest single depth level
  telemetry::GaugeId triggers_routing_loop;
  telemetry::GaugeId triggers_host_pause;
  telemetry::GaugeId triggers_congestion;
  /// Trigger assertion -> deadlock confirmation; -1 when no deadlock.
  telemetry::GaugeId time_to_deadlock_ms;
  /// Downstream pauses each span directly induced (pause-storm fan-out).
  telemetry::HistogramId fanout;
};

/// Registers the `forensics.*` set (idempotent per registry).
CascadeMetricIds register_cascade_metrics(telemetry::MetricsRegistry& reg);

/// Writes one report's summary into the registered slots.
void record_cascade(telemetry::MetricsRegistry& reg,
                    const CascadeMetricIds& ids, const CascadeReport& report);

}  // namespace dcdl::forensics
