#include "dcdl/forensics/report.hpp"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>

namespace dcdl::forensics {

namespace {

void appendf(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));
void appendf(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) out.append(buf, static_cast<std::size_t>(n));
}

/// "switch s2" / "host h0" / "node 7" — matching the Perfetto labels.
std::string node_name(const CascadeReport& report, NodeId id) {
  const auto it = report.nodes.find(id);
  if (it == report.nodes.end()) return "node " + std::to_string(id);
  const char* kind = it->second.second ? "switch" : "host";
  if (it->second.first.empty()) {
    return std::string(kind) + " " + std::to_string(id);
  }
  return std::string(kind) + " " + it->second.first;
}

std::string queue_name(const CascadeReport& report, const QueueKey& q) {
  return node_name(report, q.node) + " port " + std::to_string(q.port) +
         " class " + std::to_string(q.cls);
}

double ms(std::int64_t ps) { return static_cast<double>(ps) / 1e9; }

}  // namespace

std::string to_text(const CascadeReport& report, const TextOptions& opts) {
  std::string out;
  appendf(out,
          "forensics: %zu pause span(s) in %zu cascade(s), window "
          "[0, %.3f ms]\n",
          report.spans.size(), report.components.size(),
          ms(report.window_end_ps));
  if (report.spans.empty()) {
    out += "  no pause activity observed\n";
    return out;
  }

  if (report.deadlock_at_ps) {
    appendf(out, "deadlock: confirmed at t=%.3f ms, wait-for cycle of %zu "
            "queue(s):\n",
            ms(*report.deadlock_at_ps), report.deadlock_cycle.size());
    for (const QueueKey& q : report.deadlock_cycle) {
      appendf(out, "  %s\n", queue_name(report, q).c_str());
    }
  } else {
    out += "deadlock: none confirmed in this window\n";
  }

  if (const auto trigger = report.initial_trigger()) {
    const PauseSpan& t = report.spans[*trigger];
    const CascadeComponent& comp =
        report.components[static_cast<std::size_t>(t.component)];
    appendf(out, "initial trigger: %s at t=%.3f ms (%s origin)\n",
            queue_name(report, t.queue).c_str(), ms(t.start_ps),
            to_string(comp.trigger));
    if (t.bytes_at_assert > 0) {
      appendf(out, "  queue held %u bytes at the Xoff crossing\n",
              t.bytes_at_assert);
    }
    appendf(out, "  cascade depth %d, width %d, %u span(s)",
            comp.max_depth, comp.max_width, comp.span_count);
    if (report.time_to_deadlock_ps >= 0) {
      appendf(out, "; time-to-deadlock %.3f ms",
              ms(report.time_to_deadlock_ps));
    }
    out += '\n';
  }

  for (std::size_t c = 0; c < report.components.size(); ++c) {
    if (c >= opts.max_components) {
      appendf(out, "  ... %zu further cascade(s) elided\n",
              report.components.size() - c);
      break;
    }
    const CascadeComponent& comp = report.components[c];
    const PauseSpan& root = report.spans[comp.root];
    appendf(out,
            "cascade %zu: trigger %s at t=%.3f ms (%s origin), depth %d, "
            "width %d, %u span(s), %zu independent origin(s)%s\n",
            c, queue_name(report, root.queue).c_str(), ms(root.start_ps),
            to_string(comp.trigger), comp.max_depth, comp.max_width,
            comp.span_count, comp.roots.size(),
            comp.contains_deadlock_cycle ? " [holds the deadlock cycle]"
                                         : "");
  }

  out += "pause-storm fan-out:";
  for (std::size_t k = 0; k < report.fanout_hist.size(); ++k) {
    appendf(out, " %zu->%" PRIu64, k, report.fanout_hist[k]);
  }
  out += '\n';
  return out;
}

std::string to_dot(const CascadeReport& report) {
  std::string out;
  out += "digraph pause_cascade {\n";
  out += "  rankdir=LR;\n";
  out += "  node [shape=box, fontname=\"monospace\", fontsize=10];\n";
  for (std::size_t i = 0; i < report.spans.size(); ++i) {
    const PauseSpan& s = report.spans[i];
    appendf(out, "  s%zu [label=\"%s\\n", i,
            queue_name(report, s.queue).c_str());
    if (s.end_ps >= 0) {
      appendf(out, "[%.3f, %.3f) ms", ms(s.start_ps), ms(s.end_ps));
    } else {
      appendf(out, "[%.3f ms, never released)", ms(s.start_ps));
    }
    appendf(out, "\\ndepth %d", s.depth);
    if (s.bytes_at_assert > 0) appendf(out, ", %u B", s.bytes_at_assert);
    out += '"';
    if (s.in_deadlock_cycle) out += ", color=red, penwidth=2";
    if (s.causes.empty()) out += ", peripheries=2";
    out += "];\n";
  }
  for (std::size_t i = 0; i < report.spans.size(); ++i) {
    for (const std::uint32_t e : report.spans[i].effects) {
      appendf(out, "  s%zu -> s%u", i, e);
      if (report.spans[i].in_deadlock_cycle &&
          report.spans[e].in_deadlock_cycle) {
        out += " [color=red, penwidth=2]";
      }
      out += ";\n";
    }
  }
  out += "}\n";
  return out;
}

std::vector<telemetry::FlowArrow> flow_arrows(const CascadeReport& report) {
  std::vector<telemetry::FlowArrow> arrows;
  for (const PauseSpan& s : report.spans) {
    for (const std::uint32_t e : s.effects) {
      const PauseSpan& effect = report.spans[e];
      telemetry::FlowArrow a;
      a.from_node = s.queue.node;
      a.from_port = s.queue.port;
      a.from_cls = s.queue.cls;
      a.from_ts_ps = s.start_ps;
      a.to_node = effect.queue.node;
      a.to_port = effect.queue.port;
      a.to_cls = effect.queue.cls;
      a.to_ts_ps = effect.start_ps;
      arrows.push_back(a);
    }
  }
  return arrows;
}

}  // namespace dcdl::forensics
