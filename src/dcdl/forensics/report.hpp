// Renderers for a CascadeReport.
//
//  - to_text: the human-readable post-mortem ("deadlock at t=…; initial
//    trigger: S2 port 1 class 0 at t=…; cascade depth 4").
//  - to_dot: the causality DAG as Graphviz DOT, wait-for-cycle spans
//    highlighted, triggers double-bordered.
//  - flow_arrows: cause->effect edges as telemetry::FlowArrow, ready to be
//    drawn into the Perfetto export.
//
// All output is deterministic: a pure function of the report, fixed field
// order, fixed-precision times — byte-identical across runs and --jobs
// levels.
#pragma once

#include <string>
#include <vector>

#include "dcdl/forensics/causality.hpp"
#include "dcdl/telemetry/export.hpp"

namespace dcdl::forensics {

struct TextOptions {
  /// Components listed individually; the rest are summarized in one line.
  std::size_t max_components = 8;
};

/// The human-readable post-mortem.
std::string to_text(const CascadeReport& report, const TextOptions& = {});

/// Graphviz DOT of the causality DAG. One node per pause span (label:
/// queue, interval, depth), one edge per cause->effect link; spans of the
/// confirmed deadlock cycle are drawn red and bold, triggers with a double
/// border.
std::string to_dot(const CascadeReport& report);

/// One arrow per causality edge, anchored at the cause span's assertion
/// and the effect span's assertion.
std::vector<telemetry::FlowArrow> flow_arrows(const CascadeReport& report);

}  // namespace dcdl::forensics
