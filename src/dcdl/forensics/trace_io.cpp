#include "dcdl/forensics/trace_io.hpp"

#include <cstdio>
#include <stdexcept>

#include "dcdl/dataplane/dataplane.hpp"
#include "dcdl/device/trace.hpp"

namespace dcdl::forensics {

namespace {

[[noreturn]] void fail(std::size_t line_no, const std::string& why) {
  throw std::runtime_error("dcdl.telemetry.v1 parse error at line " +
                           std::to_string(line_no) + ": " + why);
}

/// `"key":<integer>` scan inside one line/object; nullopt when absent.
std::optional<std::int64_t> find_int(const std::string& s,
                                     const char* key,
                                     std::size_t from = 0) {
  const std::string needle = std::string("\"") + key + "\":";
  const std::size_t at = s.find(needle, from);
  if (at == std::string::npos) return std::nullopt;
  std::size_t p = at + needle.size();
  bool neg = false;
  if (p < s.size() && s[p] == '-') {
    neg = true;
    ++p;
  }
  if (p >= s.size() || s[p] < '0' || s[p] > '9') return std::nullopt;
  std::int64_t v = 0;
  while (p < s.size() && s[p] >= '0' && s[p] <= '9') {
    v = v * 10 + (s[p] - '0');
    ++p;
  }
  return neg ? -v : v;
}

/// `"key":"<value>"` scan; nullopt when absent.
std::optional<std::string> find_string(const std::string& s, const char* key,
                                       std::size_t from = 0) {
  const std::string needle = std::string("\"") + key + "\":\"";
  const std::size_t at = s.find(needle, from);
  if (at == std::string::npos) return std::nullopt;
  const std::size_t begin = at + needle.size();
  const std::size_t end = s.find('"', begin);
  if (end == std::string::npos) return std::nullopt;
  return s.substr(begin, end - begin);
}

/// The balanced-bracket region starting at s[open] (which must be '[' or
/// '{'); returns the content between the brackets.
std::string bracket_region(const std::string& s, std::size_t open,
                           char open_ch, char close_ch) {
  int depth = 0;
  for (std::size_t p = open; p < s.size(); ++p) {
    if (s[p] == open_ch) ++depth;
    if (s[p] == close_ch && --depth == 0) {
      return s.substr(open + 1, p - open - 1);
    }
  }
  return std::string();
}

/// Splits a "{...},{...},..." array body into its top-level objects.
std::vector<std::string> split_objects(const std::string& body) {
  std::vector<std::string> out;
  int depth = 0;
  std::size_t begin = 0;
  for (std::size_t p = 0; p < body.size(); ++p) {
    if (body[p] == '{') {
      if (depth == 0) begin = p;
      ++depth;
    } else if (body[p] == '}') {
      if (--depth == 0) out.push_back(body.substr(begin, p - begin + 1));
    }
  }
  return out;
}

void parse_topology(const std::string& header, LoadedTrace& out) {
  const std::size_t at = header.find("\"topology\":");
  if (at == std::string::npos) return;
  const std::size_t open = header.find('{', at);
  if (open == std::string::npos) fail(1, "malformed topology header");
  const std::string body = bracket_region(header, open, '{', '}');

  const std::size_t nodes_at = body.find("\"nodes\":");
  const std::size_t links_at = body.find("\"links\":");
  if (nodes_at == std::string::npos || links_at == std::string::npos) {
    fail(1, "topology header missing nodes/links");
  }
  const std::string nodes = bracket_region(
      body, body.find('[', nodes_at), '[', ']');
  for (const std::string& obj : split_objects(nodes)) {
    const auto kind = find_string(obj, "kind");
    const std::string name = find_string(obj, "name").value_or("");
    if (!kind) fail(1, "topology node without kind");
    if (*kind == "switch") {
      out.topo.add_switch(name);
    } else {
      out.topo.add_host(name);
    }
  }
  // Links replay in add order, reproducing the original per-node port
  // numbering exactly (ports are assigned sequentially by add_link).
  const std::string links = bracket_region(
      body, body.find('[', links_at), '[', ']');
  for (const std::string& obj : split_objects(links)) {
    const auto a = find_int(obj, "a");
    const auto b = find_int(obj, "b");
    const auto delay = find_int(obj, "delay_ps");
    if (!a || !b) fail(1, "topology link without endpoints");
    out.topo.add_link(static_cast<NodeId>(*a), static_cast<NodeId>(*b),
                      Rate::gbps(40), Time{delay.value_or(0)});
  }
  out.has_topology = true;
}

void parse_cycle(const std::string& header, LoadedTrace& out) {
  const std::size_t at = header.find("\"cycle\":");
  if (at == std::string::npos) return;
  const std::string body = bracket_region(
      header, header.find('[', at), '[', ']');
  for (const std::string& obj : split_objects(body)) {
    const auto node = find_int(obj, "node");
    const auto port = find_int(obj, "port");
    const auto cls = find_int(obj, "cls");
    if (!node || !port || !cls) fail(1, "malformed cycle entry");
    out.cycle.push_back(QueueKey{static_cast<NodeId>(*node),
                                 static_cast<PortId>(*port),
                                 static_cast<ClassId>(*cls)});
  }
}

std::optional<telemetry::RecordKind> kind_from_name(const std::string& name) {
  for (int k = 0; k < telemetry::kNumRecordKinds; ++k) {
    const auto kind = static_cast<telemetry::RecordKind>(k);
    if (name == telemetry::to_string(kind)) return kind;
  }
  return std::nullopt;
}

std::uint8_t reason_from_name(const std::string& name, std::size_t line_no) {
  for (int r = 0; r < kNumDropReasons; ++r) {
    if (name == to_string(static_cast<DropReason>(r))) {
      return static_cast<std::uint8_t>(r);
    }
  }
  fail(line_no, "unknown drop reason '" + name + "'");
}

std::uint8_t dataplane_event_from_name(const std::string& name,
                                       std::size_t line_no) {
  for (int e = 0;
       e <= static_cast<int>(dataplane::DataplaneEvent::kRearmed); ++e) {
    if (name ==
        dataplane::to_string(static_cast<dataplane::DataplaneEvent>(e))) {
      return static_cast<std::uint8_t>(e);
    }
  }
  fail(line_no, "unknown dataplane event '" + name + "'");
}

}  // namespace

LoadedTrace parse_jsonl(const std::string& content) {
  LoadedTrace out;
  std::size_t pos = 0, line_no = 0;
  while (pos < content.size()) {
    std::size_t eol = content.find('\n', pos);
    if (eol == std::string::npos) eol = content.size();
    const std::string line = content.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    if (line.empty()) continue;

    if (line_no == 1) {
      if (line.find("\"schema\":\"dcdl.telemetry.v1\"") ==
          std::string::npos) {
        fail(1, "not a dcdl.telemetry.v1 dump (schema header missing)");
      }
      out.post_mortem = line.find("\"post_mortem\":true") !=
                        std::string::npos;
      out.detected_at_ps = find_int(line, "detected_at_ps");
      parse_cycle(line, out);
      parse_topology(line, out);
      continue;
    }

    telemetry::TraceRecord r;
    const auto t = find_int(line, "t_ps");
    const auto kind_name = find_string(line, "kind");
    if (!t || !kind_name) fail(line_no, "record without t_ps/kind");
    const auto kind = kind_from_name(*kind_name);
    if (!kind) fail(line_no, "unknown record kind '" + *kind_name + "'");
    r.t_ps = *t;
    r.kind = *kind;
    r.node = static_cast<std::uint32_t>(find_int(line, "node").value_or(0));
    r.flow = static_cast<std::uint32_t>(find_int(line, "flow").value_or(0));
    r.bytes =
        static_cast<std::uint32_t>(find_int(line, "bytes").value_or(0));
    r.port = static_cast<std::uint16_t>(
        find_int(line, "port").value_or(kInvalidPort));
    r.cls = static_cast<std::uint8_t>(find_int(line, "cls").value_or(0));
    if (*kind == telemetry::RecordKind::kDropped) {
      const auto reason = find_string(line, "reason");
      if (!reason) fail(line_no, "drop record without reason");
      r.reason = reason_from_name(*reason, line_no);
    } else if (*kind == telemetry::RecordKind::kDataplaneDetect ||
               *kind == telemetry::RecordKind::kDataplaneRecover) {
      // The exporter renders these as "event"/"detail" rather than raw
      // reason/bytes; restore both so the round trip is a fixed point.
      const auto event = find_string(line, "event");
      if (!event) fail(line_no, "dataplane record without event");
      r.reason = dataplane_event_from_name(*event, line_no);
      r.bytes =
          static_cast<std::uint32_t>(find_int(line, "detail").value_or(0));
    } else if (*kind == telemetry::RecordKind::kRegionState) {
      // Rendered as "region"/"level"; node carries the region index and
      // bytes the direction (1 = escalated to packet).
      r.node =
          static_cast<std::uint32_t>(find_int(line, "region").value_or(0));
      r.bytes = find_string(line, "level").value_or("fluid") == "packet";
    }
    out.records.push_back(r);
  }
  if (line_no == 0) fail(1, "empty input");
  return out;
}

LoadedTrace load_jsonl_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) {
    throw std::runtime_error("cannot open '" + path + "' for reading");
  }
  std::string content;
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    content.append(buf, n);
  }
  const bool bad = std::ferror(f) != 0;
  std::fclose(f);
  if (bad) throw std::runtime_error("read error on '" + path + "'");
  return parse_jsonl(content);
}

CausalInput input_from_trace(const LoadedTrace& trace) {
  if (!trace.has_topology) {
    throw std::runtime_error(
        "trace has no topology header; re-record it with a current "
        "dcdl_sim/dcdl_sweep (telemetry::to_jsonl(topo, ...)) so the causal "
        "DAG can be reconstructed offline");
  }
  CausalInput in = input_from_records(trace.topo, trace.records);
  in.deadlock_cycle = trace.cycle;
  in.deadlock_at_ps = trace.detected_at_ps;
  return in;
}

}  // namespace dcdl::forensics
