// Offline trace loading: parses a `dcdl.telemetry.v1` JSONL dump (regular
// or post-mortem) back into TraceRecords, and — when the writer embedded
// the topology in the header (telemetry::to_jsonl(topo, ...), the default
// for every CLI since the forensics PR) — rebuilds the Topology so the
// causal analysis can run anywhere, long after the simulation exited.
//
// The parser is a focused scanner for the exact machine-generated format
// the exporters emit (fixed field order per kind, one object per line);
// it is not a general JSON parser. Malformed input throws
// std::runtime_error with the offending line number.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "dcdl/forensics/causality.hpp"

namespace dcdl::forensics {

struct LoadedTrace {
  Topology topo;
  /// The header carried a topology; without it the causal DAG cannot be
  /// built (input_from_trace throws).
  bool has_topology = false;
  std::vector<telemetry::TraceRecord> records;

  // Post-mortem headers additionally carry the monitor's verdict.
  bool post_mortem = false;
  std::vector<QueueKey> cycle;
  std::optional<std::int64_t> detected_at_ps;
};

/// Parses an in-memory dump (header line + record lines).
LoadedTrace parse_jsonl(const std::string& content);
/// Reads and parses a dump file; throws std::runtime_error on I/O failure.
LoadedTrace load_jsonl_file(const std::string& path);

/// Analysis input from a loaded trace, deadlock verdict included. Throws
/// std::runtime_error when the dump has no topology header.
CausalInput input_from_trace(const LoadedTrace& trace);

}  // namespace dcdl::forensics
