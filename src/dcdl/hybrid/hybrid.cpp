#include "dcdl/hybrid/hybrid.hpp"

#include <algorithm>
#include <set>
#include <tuple>

#include "dcdl/common/contract.hpp"
#include "dcdl/device/host.hpp"
#include "dcdl/device/switch.hpp"
#include "dcdl/probe/profiler.hpp"

namespace dcdl::hybrid {

const char* to_string(Mode m) {
  switch (m) {
    case Mode::kOff: return "off";
    case Mode::kStatic: return "static";
    case Mode::kRisk: return "risk";
  }
  return "?";
}

std::optional<Mode> parse_mode(const std::string& s) {
  if (s == "off") return Mode::kOff;
  if (s == "static") return Mode::kStatic;
  if (s == "risk") return Mode::kRisk;
  return std::nullopt;
}

namespace {

/// Union-find over flow indices for the fluid-component grouping.
struct UnionFind {
  std::vector<std::size_t> parent;
  explicit UnionFind(std::size_t n) : parent(n) {
    for (std::size_t i = 0; i < n; ++i) parent[i] = i;
  }
  std::size_t find(std::size_t x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  }
  void unite(std::size_t a, std::size_t b) {
    a = find(a);
    b = find(b);
    if (a != b) parent[std::max(a, b)] = std::min(a, b);
  }
};

}  // namespace

HybridController::HybridController(Network& net, std::vector<FlowSpec> flows,
                                   HybridConfig cfg)
    : net_(net),
      flows_(std::move(flows)),
      cfg_(cfg),
      regions_(topo::assign_shards(
          net.topo(),
          cfg.regions > 0
              ? cfg.regions
              : std::max<int>(
                    1, static_cast<int>(net.topo().switches().size())))),
      assessor_(net, flows_) {
  if (cfg_.mode == Mode::kOff) return;
  DCDL_EXPECTS(cfg_.fluid_dt > Time::zero());
  DCDL_EXPECTS(cfg_.zoom_xoff_fraction > 0.0);
  region_.assign(static_cast<std::size_t>(regions_.num_shards), Region{});
  eligible_.assign(flows_.size(), 0);
  fluid_.assign(flows_.size(), 0);
  carry_.assign(flows_.size(), 0.0);
  prev_sent_.assign(flows_.size(), 0);
  prev_measure_at_ = net_.sim().now();
  last_step_ = net_.sim().now();

  // Static per-flow eligibility: open-loop CBR-like flows that run for the
  // whole simulation. Everything else stays at packet level forever.
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    const FlowSpec& f = flows_[i];
    if (f.start != Time::zero() || f.stop != Time::max()) continue;
    if (f.ecn_capable || net_.config().rtt_feedback) continue;
    Pacer* p = net_.host_at(f.src_host).pacer(f.id);
    if (p == nullptr || !p->current_rate().has_value()) continue;
    eligible_[i] = 1;
  }

  refresh_geometry();
  const std::vector<Rate> demands = pacer_rates();
  assessor_.reassess(demands);
  ++stats_.risk_reassessments;
  utilization_ = analysis::channel_utilization(net_, flows_, demands);
  apply_pins();
  refluidize(net_.sim().now());
  schedule_next();
}

HybridController::~HybridController() { finalize(); }

int HybridController::region_of(NodeId node) const {
  return static_cast<int>(regions_.node_shard.at(node));
}

bool HybridController::region_packet(int r) const {
  return region_.at(static_cast<std::size_t>(r)).packet;
}

bool HybridController::region_pinned(int r) const {
  return region_.at(static_cast<std::size_t>(r)).pinned;
}

bool HybridController::flow_fluid(FlowId flow) const {
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    if (flows_[i].id == flow) return fluid_[i] != 0;
  }
  return false;
}

std::size_t HybridController::fluid_flows() const {
  std::size_t n = 0;
  for (const char f : fluid_) n += f != 0 ? 1u : 0u;
  return n;
}

std::vector<Rate> HybridController::pacer_rates() const {
  std::vector<Rate> r(flows_.size(), Rate::zero());
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    // The accessor is non-const on Host; the controller holds a non-const
    // network reference throughout.
    Pacer* p = const_cast<Network&>(net_).host_at(flows_[i].src_host)
                   .pacer(flows_[i].id);
    if (p != nullptr) r[i] = p->current_rate().value_or(Rate::zero());
  }
  return r;
}

void HybridController::refresh_geometry() {
  channels_ = analysis::flow_channels(net_, flows_);
  path_links_.assign(flows_.size(), {});
  path_regions_.assign(flows_.size(), {});
  const Topology& topo = net_.topo();
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    std::set<std::uint32_t> links;
    std::set<int> regs;
    for (const auto& [node, port] : channels_[i]) {
      links.insert(topo.peer(node, port).link);
      regs.insert(region_of(node));
      regs.insert(region_of(topo.peer(node, port).peer_node));
    }
    path_links_[i].assign(links.begin(), links.end());
    path_regions_[i].assign(regs.begin(), regs.end());
  }
}

void HybridController::set_region_packet(Time now, int r, bool packet) {
  Region& rg = region_.at(static_cast<std::size_t>(r));
  if (rg.packet == packet) return;
  rg.packet = packet;
  rg.below_xon_since = Time::max();
  if (packet) {
    ++stats_.escalations;
  } else {
    ++stats_.deescalations;
  }
  ++stats_.zoom_events;
  net_.trace().region_state(now, static_cast<std::uint32_t>(r), packet);
}

void HybridController::apply_pins() {
  const Time now = net_.sim().now();
  const analysis::RiskReport& rep = assessor_.report();
  std::vector<char> pinned(region_.size(), 0);
  for (const analysis::CycleRisk& c : rep.cycles) {
    for (const analysis::QueueKey& qk : c.cycle) {
      pinned[static_cast<std::size_t>(region_of(qk.node))] = 1;
    }
  }
  for (std::size_t r = 0; r < region_.size(); ++r) {
    region_[r].pinned = pinned[r] != 0;
    if (region_[r].pinned && !region_[r].packet) {
      set_region_packet(now, static_cast<int>(r), true);
    }
  }
}

void HybridController::scan_regions(Time now) {
  // Per-region peak ingress occupancy: the live packet counters plus the
  // fluid queues mapped back to their switches' regions.
  std::vector<std::int64_t> occ(region_.size(), 0);
  for (const NodeId sw : net_.topo().switches()) {
    const auto r = static_cast<std::size_t>(region_of(sw));
    occ[r] = std::max(occ[r], net_.switch_at(sw).max_ingress_bytes());
  }
  for (const FluidInstance& inst : models_) {
    for (std::size_t q = 0; q < inst.queue_switch.size(); ++q) {
      const auto r =
          static_cast<std::size_t>(region_of(inst.queue_switch[q]));
      occ[r] = std::max(
          occ[r],
          static_cast<std::int64_t>(inst.model.occupancy(static_cast<int>(q))));
    }
  }
  const auto escalate_at = static_cast<std::int64_t>(
      cfg_.zoom_xoff_fraction *
      static_cast<double>(net_.config().pfc.xoff_bytes));
  const std::int64_t xon = net_.config().pfc.xon_bytes;
  for (std::size_t r = 0; r < region_.size(); ++r) {
    Region& rg = region_[r];
    if (!rg.packet) {
      if (occ[r] >= escalate_at) {
        set_region_packet(now, static_cast<int>(r), true);
      }
    } else if (!rg.pinned) {
      if (occ[r] < xon) {
        if (rg.below_xon_since == Time::max()) {
          rg.below_xon_since = now;
        } else if (now - rg.below_xon_since >= cfg_.cooldown) {
          set_region_packet(now, static_cast<int>(r), false);
        }
      } else {
        rg.below_xon_since = Time::max();
      }
    }
  }
}

void HybridController::refluidize(Time now) {
  // Desired fluid set under the current risk report, region levels, and
  // utilization snapshot.
  const analysis::RiskReport& rep = assessor_.report();
  const std::set<FlowId> looping(rep.looping_flows.begin(),
                                 rep.looping_flows.end());
  const Topology& topo = net_.topo();
  std::vector<char> want(flows_.size(), 0);
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    if (eligible_[i] == 0) continue;
    if (looping.count(flows_[i].id) > 0) continue;
    const auto& ch = channels_[i];
    // The installed route must actually reach the destination (last egress
    // lands on dst); misrouted or blackholed flows stay packet.
    if (ch.size() < 2 ||
        topo.peer(ch.back().first, ch.back().second).peer_node !=
            flows_[i].dst_host) {
      continue;
    }
    bool ok = true;
    for (const int r : path_regions_[i]) {
      if (region_[static_cast<std::size_t>(r)].packet) {
        ok = false;
        break;
      }
    }
    if (ok) {
      for (const auto& c : ch) {
        const auto it = utilization_.find(c);
        if (it != utilization_.end() && it->second >= cfg_.saturation) {
          ok = false;
          break;
        }
      }
    }
    want[i] = ok ? 1 : 0;
  }
  // Link-disjointness fixpoint: a candidate sharing any topology link with
  // a packet-level flow is withdrawn, which may expose further overlaps.
  bool changed = true;
  while (changed) {
    changed = false;
    std::vector<char> packet_link(topo.link_count(), 0);
    for (std::size_t i = 0; i < flows_.size(); ++i) {
      if (want[i] != 0) continue;
      for (const std::uint32_t l : path_links_[i]) packet_link[l] = 1;
    }
    for (std::size_t i = 0; i < flows_.size(); ++i) {
      if (want[i] == 0) continue;
      for (const std::uint32_t l : path_links_[i]) {
        if (packet_link[l] != 0) {
          want[i] = 0;
          changed = true;
          break;
        }
      }
    }
  }

  bool dirty = false;
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    if (want[i] != fluid_[i]) {
      dirty = true;
      break;
    }
  }
  if (!dirty) return;
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    if (want[i] == fluid_[i]) continue;
    net_.host_at(flows_[i].src_host)
        .hold_flow(flows_[i].id, want[i] != 0);
    if (want[i] == 0) carry_[i] = 0.0;  // drop the sub-packet remainder
  }
  fluid_ = want;
  rebuild_models();
  ++stats_.fluid_rebuilds;
  (void)now;
}

void HybridController::rebuild_models() {
  models_.clear();
  std::vector<std::size_t> members;
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    if (fluid_[i] != 0) members.push_back(i);
  }
  if (members.empty()) return;

  // Group fluidized flows into connected components over shared links.
  UnionFind uf(members.size());
  {
    std::map<std::uint32_t, std::size_t> owner;
    for (std::size_t m = 0; m < members.size(); ++m) {
      for (const std::uint32_t l : path_links_[members[m]]) {
        const auto [it, fresh] = owner.emplace(l, m);
        if (!fresh) uf.unite(it->second, m);
      }
    }
  }
  std::map<std::size_t, std::size_t> component;  // root -> models_ index
  const Topology& topo = net_.topo();
  const PfcConfig& pfc = net_.config().pfc;
  // Per-component builder state, parallel to models_.
  std::vector<std::map<std::pair<NodeId, PortId>, int>> link_of;
  std::vector<std::map<std::tuple<NodeId, PortId, ClassId>, int>> queue_of;
  for (std::size_t m = 0; m < members.size(); ++m) {
    const std::size_t i = members[m];
    const std::size_t root = uf.find(m);
    const auto [cit, fresh] = component.emplace(root, models_.size());
    if (fresh) {
      models_.emplace_back();
      link_of.emplace_back();
      queue_of.emplace_back();
    }
    FluidInstance& inst = models_[cit->second];
    auto& links = link_of[cit->second];
    auto& queues = queue_of[cit->second];

    analysis::FluidFlow ff;
    ff.name = "flow " + std::to_string(flows_[i].id);
    Pacer* p = net_.host_at(flows_[i].src_host).pacer(flows_[i].id);
    ff.demand = p->current_rate().value_or(Rate::zero());
    const auto& ch = channels_[i];
    for (std::size_t j = 1; j < ch.size(); ++j) {
      const auto [up_node, up_port] = ch[j - 1];
      const auto lit = links.find({up_node, up_port});
      int l;
      if (lit != links.end()) {
        l = lit->second;
      } else {
        analysis::FluidLink fl;
        fl.name = "link " + std::to_string(up_node) + ":" +
                  std::to_string(up_port);
        fl.capacity = net_.link_rate(up_node, up_port);
        fl.control_delay = net_.link_delay(up_node, up_port);
        l = inst.model.add_link(fl);
        links.emplace(std::make_pair(up_node, up_port), l);
      }
      const NodeId sw = ch[j].first;
      const PortId in_port = topo.peer(up_node, up_port).peer_port;
      const auto key = std::make_tuple(sw, in_port, flows_[i].prio);
      const auto qit = queues.find(key);
      int q;
      if (qit != queues.end()) {
        q = qit->second;
      } else {
        analysis::FluidQueue fq;
        fq.name = "sw " + std::to_string(sw) + " p" +
                  std::to_string(in_port);
        fq.xoff_bytes = pfc.xoff_bytes;
        fq.xon_bytes = pfc.xon_bytes;
        fq.upstream_link = l;
        q = inst.model.add_queue(fq);
        queues.emplace(key, q);
        inst.queue_switch.push_back(sw);
      }
      ff.queues.push_back(q);
    }
    inst.flow_of.push_back(i);
    inst.model.add_flow(std::move(ff));
  }
  for (FluidInstance& inst : models_) inst.model.begin(cfg_.fluid_dt);
}

std::vector<Rate> HybridController::measured_rates(Time now) {
  std::vector<Rate> r(flows_.size(), Rate::zero());
  const Time elapsed = now - prev_measure_at_;
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    Host& host = net_.host_at(flows_[i].src_host);
    if (fluid_[i] != 0) {
      // A held flow injects nothing; its demand is its pacer rate.
      Pacer* p = host.pacer(flows_[i].id);
      r[i] = p != nullptr ? p->current_rate().value_or(Rate::zero())
                          : Rate::zero();
      continue;
    }
    const std::int64_t sent = host.sent_bytes(flows_[i].id);
    if (elapsed > Time::zero()) {
      const double bps = static_cast<double>(sent - prev_sent_[i]) * 8.0 *
                         1e12 / static_cast<double>(elapsed.ps());
      // Zero means "treat as greedy" downstream, which is the conservative
      // reading for a flow that sent nothing (it may be paused, not idle).
      r[i] = Rate{static_cast<std::int64_t>(bps)};
    }
    prev_sent_[i] = sent;
  }
  prev_measure_at_ = now;
  return r;
}

void HybridController::schedule_next() {
  pending_ = net_.sim().schedule_at(last_step_ + cfg_.fluid_dt,
                                    [this] { step(); });
  armed_ = true;
}

void HybridController::step() {
  probe::Profiler::Scope span(probe::Profiler::Span::kFluidStep);
  armed_ = false;
  if (stopped_) return;
  const Time now = net_.sim().now();
  ++stats_.steps;

  // 1. Advance the fluid components and credit whole-packet deliveries to
  //    the sink hosts (the fluid -> packet boundary adapter).
  for (FluidInstance& inst : models_) {
    inst.model.step();
    for (std::size_t m = 0; m < inst.flow_of.size(); ++m) {
      const std::size_t i = inst.flow_of[m];
      carry_[i] += inst.model.step_delivered(static_cast<int>(m));
      const auto pkt = static_cast<double>(flows_[i].packet_bytes);
      const auto whole = static_cast<std::uint64_t>(carry_[i] / pkt);
      if (whole == 0) continue;
      const std::int64_t bytes =
          static_cast<std::int64_t>(whole) * flows_[i].packet_bytes;
      carry_[i] -= static_cast<double>(bytes);
      net_.host_at(flows_[i].dst_host)
          .credit_delivery(flows_[i].id, bytes, whole);
      stats_.credited_bytes += bytes;
      stats_.credited_packets += whole;
    }
  }
  fluid_flowtime_ps_ += static_cast<double>(fluid_flows()) *
                        static_cast<double>(cfg_.fluid_dt.ps());
  last_step_ = now;

  // 2. Zoom: occupancy scan + hysteresis.
  scan_regions(now);

  // 3. Risk mode: periodic online reassessment over the *live* routes (so
  //    loops that form mid-run surface) with measured rates as demands.
  if (cfg_.mode == Mode::kRisk && cfg_.risk_every > 0 &&
      stats_.steps % static_cast<std::uint64_t>(cfg_.risk_every) == 0) {
    refresh_geometry();
    const std::vector<Rate> measured = measured_rates(now);
    assessor_.reassess(measured);
    ++stats_.risk_reassessments;
    utilization_ = analysis::channel_utilization(net_, flows_, measured);
    apply_pins();
  }

  // 4. Re-derive the fluid set (no-op when nothing changed).
  refluidize(now);
  schedule_next();
}

void HybridController::finalize() {
  if (stopped_ || cfg_.mode == Mode::kOff) {
    stopped_ = true;
    return;
  }
  stopped_ = true;
  if (armed_) {
    net_.sim().cancel(pending_);
    armed_ = false;
  }
  const Time end = net_.sim().now();
  if (!flows_.empty() && end > Time::zero()) {
    stats_.fluid_fraction =
        fluid_flowtime_ps_ /
        (static_cast<double>(flows_.size()) * static_cast<double>(end.ps()));
  }
  // Held flows stay held: the run is over, and releasing them here would
  // schedule fresh injections into whatever drain phase follows.
}

}  // namespace dcdl::hybrid
