// Hybrid fluid/packet engine: risk-guided zoom with verdict-equivalence
// guarantees.
//
// The packet simulator is exact but pays one event per packet per hop; the
// fluid model (analysis/fluid.hpp) integrates rate-balance ODEs at a fixed
// step but — by the paper's own §3.2 lesson — cannot be trusted anywhere a
// deadlock might form (it predicts "no deadlock" for Figure 4). The hybrid
// layer splits the difference: the topology is partitioned into regions
// (per-pod on fat-trees, reusing topo::assign_shards), and each *flow* runs
// at exactly one level at a time:
//
//   - fluid: the flow is held at its NIC (Host::hold_flow) and integrated
//     by a per-component FluidModel; deliveries are credited back to the
//     sink host in whole-packet multiples (Host::credit_delivery).
//   - packet: the normal hot path, untouched.
//
// Verdict equivalence is by construction, not by hope: a flow is only
// eligible for fluid integration while every ingredient of deadlock
// formation is provably absent from its path —
//
//   1. it is not looping (risk analysis surfaces routing loops, including
//      ones that form mid-run in risk mode),
//   2. it is open-loop CBR-like (a rate-based pacer; greedy, ECN/TIMELY
//      controlled, or windowed flows stay packet),
//   3. it runs for the whole simulation (start == 0, stop == inf),
//   4. every channel it crosses sits below the saturation threshold under
//      stable-state analysis (risk.hpp's channel_utilization),
//   5. its path is link-disjoint from every packet-level flow (computed to
//      a fixpoint, so de-fluidizing one flow cascades), and
//   6. every region it crosses is at fluid level.
//
// Under this rule every deadlock-capable scenario in the campaign suite
// keeps all flows at packet level, so hybrid runs report byte-for-byte the
// same verdict, detection time, and forensic initial trigger as pure packet
// runs — while fabrics whose congestion is localized (the common case the
// paper's §1 motivates) fluidize their background traffic and skip almost
// all of its packet events.
//
// Zoom is dynamic and hysteretic: a region escalates to packet level when
// any of its ingress counters crosses zoom_xoff_fraction * Xoff or when
// risk analysis pins a dependency cycle through it; it de-escalates after
// its counters have stayed below Xon for a cooldown. All controller work
// runs as control-simulator events (on sharded runs these fire at window
// barriers where devices are frozen), so escalation decisions — and with
// them every observable byte — are identical across --jobs and --shards.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "dcdl/analysis/fluid.hpp"
#include "dcdl/analysis/risk.hpp"
#include "dcdl/device/network.hpp"
#include "dcdl/topo/partition.hpp"
#include "dcdl/traffic/flow.hpp"

namespace dcdl::hybrid {

enum class Mode : std::uint8_t {
  kOff = 0,     ///< pure packet simulation (the controller is inert)
  kStatic = 1,  ///< one risk assessment at t=0; zoom by occupancy only
  kRisk = 2,    ///< periodic online risk reassessment guides the zoom
};

const char* to_string(Mode m);
/// Parses "off" / "static" / "risk"; nullopt on anything else.
std::optional<Mode> parse_mode(const std::string& s);

struct HybridConfig {
  Mode mode = Mode::kOff;
  /// A region escalates to packet level when any ingress counter in it
  /// reaches this fraction of Xoff.
  double zoom_xoff_fraction = 0.5;
  /// A region de-escalates after all its counters stayed below Xon this
  /// long (hysteresis: flapping regions stay packet).
  Time cooldown = Time{1'000'000'000};  // 1 ms
  /// Fluid integration step and controller cadence.
  Time fluid_dt = Time{100'000'000};  // 100 us
  /// Risk mode: reassess every this many fluid steps.
  int risk_every = 10;
  /// Stable-utilization ceiling for fluidization (matches risk.hpp's
  /// saturation threshold).
  double saturation = 0.95;
  /// Requested region count; 0 = one request per switch (assign_shards
  /// then yields its structural maximum: per-pod on fat-trees, per-switch
  /// on rings/meshes).
  int regions = 0;
};

struct HybridStats {
  std::uint64_t steps = 0;            ///< fluid steps taken
  std::uint64_t escalations = 0;      ///< region fluid -> packet
  std::uint64_t deescalations = 0;    ///< region packet -> fluid
  std::uint64_t zoom_events = 0;      ///< escalations + deescalations
  std::uint64_t risk_reassessments = 0;
  std::uint64_t fluid_rebuilds = 0;   ///< fluid component set rebuilt
  std::int64_t credited_bytes = 0;    ///< delivered via the fluid adapter
  std::uint64_t credited_packets = 0;
  /// Share of flow-time spent at fluid level: sum over steps of
  /// (fluid flows / all flows) * dt, over elapsed time. 0 = pure packet.
  double fluid_fraction = 0;
};

/// Orchestrates the zoom. Construct after the scenario (network + flows +
/// pacers) is fully built and before run_until; call finalize() when the
/// run ends (harvests the tail accounting and stops the step events). The
/// network must outlive the controller.
class HybridController {
 public:
  HybridController(Network& net, std::vector<FlowSpec> flows,
                   HybridConfig cfg);
  ~HybridController();
  HybridController(const HybridController&) = delete;
  HybridController& operator=(const HybridController&) = delete;

  /// Stops the recurring controller events and closes the accounting
  /// (fluid_fraction). Idempotent; implied by the destructor.
  void finalize();

  const HybridConfig& config() const { return cfg_; }
  const HybridStats& stats() const { return stats_; }
  const analysis::RiskReport& risk() const { return assessor_.report(); }

  int num_regions() const { return regions_.num_shards; }
  bool region_packet(int r) const;
  bool region_pinned(int r) const;
  /// Region of a node under the zoom partition.
  int region_of(NodeId node) const;

  /// True while `flow` is integrated at fluid level.
  bool flow_fluid(FlowId flow) const;
  /// Flows currently at fluid level.
  std::size_t fluid_flows() const;

 private:
  struct Region {
    bool packet = false;  ///< escalated (or pinned) to packet level
    bool pinned = false;  ///< a risk cycle runs through it
    /// When the region's counters last dropped below Xon (max() = they are
    /// not below); de-escalation requires now - below_xon_since >= cooldown.
    Time below_xon_since = Time::max();
  };
  /// One fluid component: a connected set of fluidized flows sharing
  /// topology links, integrated as a single FluidModel.
  struct FluidInstance {
    analysis::FluidModel model;
    std::vector<std::size_t> flow_of;  ///< model flow index -> flows_ index
    std::vector<NodeId> queue_switch;  ///< model queue index -> switch node
  };

  void step();
  void schedule_next();
  /// Re-walks the installed routes into channels_/path_links_/path_regions_.
  void refresh_geometry();
  /// Rebuilds the fluid components for the current fluid_ set.
  void rebuild_models();
  /// Demand vector from the pacers (zero = greedy).
  std::vector<Rate> pacer_rates() const;
  /// Re-derives pins from the current risk report; escalates newly pinned
  /// regions.
  void apply_pins();
  /// Occupancy scan over all regions (packet counters + fluid queues);
  /// applies the escalation / cooldown state machine.
  void scan_regions(Time now);
  /// Recomputes the fluidizable set (per-flow eligibility, saturation,
  /// region levels, link-disjointness fixpoint), holds/releases flows, and
  /// rebuilds the fluid components for the new set.
  void refluidize(Time now);
  void set_region_packet(Time now, int r, bool packet);
  std::vector<Rate> measured_rates(Time now);

  Network& net_;
  std::vector<FlowSpec> flows_;
  HybridConfig cfg_;
  topo::ShardPlan regions_;
  std::vector<Region> region_;
  analysis::OnlineRiskAssessor assessor_;
  std::map<std::pair<NodeId, PortId>, double> utilization_;

  /// Per-flow path geometry (parallel to flows_), fixed at construction
  /// from the installed routes; refreshed on reassess in risk mode.
  std::vector<std::vector<std::pair<NodeId, PortId>>> channels_;
  std::vector<std::vector<std::uint32_t>> path_links_;
  std::vector<std::vector<int>> path_regions_;
  std::vector<char> eligible_;  ///< static per-flow checks (pacer, window)
  std::vector<char> fluid_;     ///< currently integrated at fluid level
  std::vector<double> carry_;   ///< fractional delivered bytes per flow

  std::vector<FluidInstance> models_;

  HybridStats stats_;
  double fluid_flowtime_ps_ = 0;  ///< sum of fluid-flow count * dt
  Time last_step_ = Time::zero();
  std::vector<std::int64_t> prev_sent_;  ///< for measured_rates
  Time prev_measure_at_ = Time::zero();
  EventId pending_{};
  bool armed_ = false;
  bool stopped_ = false;
};

}  // namespace dcdl::hybrid
