#include "dcdl/mitigation/class_policy.hpp"

#include <algorithm>

#include "dcdl/common/contract.hpp"

namespace dcdl::mitigation {

std::function<ClassId(const Packet&, NodeId)> ttl_class_mapper(
    int band, int num_classes) {
  DCDL_EXPECTS(band >= 1);
  DCDL_EXPECTS(num_classes >= 1 && num_classes <= kMaxClasses);
  return [band, num_classes](const Packet& pkt, NodeId) -> ClassId {
    const int cls = pkt.ttl / band;
    return static_cast<ClassId>(std::min(cls, num_classes - 1));
  };
}

std::function<ClassId(const Packet&, NodeId)> hop_class_mapper(
    int num_classes) {
  DCDL_EXPECTS(num_classes >= 1 && num_classes <= kMaxClasses);
  return [num_classes](const Packet& pkt, NodeId) -> ClassId {
    return static_cast<ClassId>(
        std::min<int>(pkt.hops, num_classes - 1));
  };
}

}  // namespace dcdl::mitigation
