// Priority-class assignment policies (paper §4 "TTL-based mitigation" and
// the structured-buffer-pool baseline of §1/§2).
//
// These return reclass hooks for NetConfig::reclass. The hook runs when a
// packet departs a switch, so the class a packet travels in reflects its
// current TTL / hop count, exactly as the paper's schemes require.
#pragma once

#include <functional>

#include "dcdl/net/packet.hpp"

namespace dcdl::mitigation {

/// TTL-banded classes: packets whose TTLs differ by at least `band` travel
/// in different PFC classes, so the *effective* TTL inside one class is at
/// most `band` (paper §4). class = min(ttl / band, num_classes - 1).
/// TTL only decreases, so inter-class dependencies point from higher class
/// to lower class and can never cycle — except inside the top class, where
/// all TTLs >= (num_classes-1)*band are clamped together (the "worst case"
/// the paper notes, where rate limiting must take over).
std::function<ClassId(const Packet&, NodeId)> ttl_class_mapper(
    int band, int num_classes);

/// Structured buffer pool (Gerla–Kleinrock / Karol et al.): the class
/// equals the number of switch-to-switch hops traveled, clamped to the top
/// class. With num_classes > longest path length there is no cyclic buffer
/// dependency at all — the classic (expensive) deadlock-free guarantee the
/// paper's §1 describes as needing more lossless classes than shallow
/// commodity switches can offer.
std::function<ClassId(const Packet&, NodeId)> hop_class_mapper(
    int num_classes);

}  // namespace dcdl::mitigation
