#include "dcdl/mitigation/dcqcn.hpp"

#include <algorithm>
#include <cmath>

#include "dcdl/common/contract.hpp"

namespace dcdl::mitigation {

DcqcnPacer::DcqcnPacer(DcqcnParams params)
    : p_(params), rc_(params.line_rate), rt_(params.line_rate),
      last_increase_(Time::zero()), last_alpha_(Time::zero()),
      tokens_last_(Time::zero()) {
  DCDL_EXPECTS(params.line_rate.bps() > 0);
  DCDL_EXPECTS(params.min_rate.bps() > 0);
  tokens_bytes_ = 0;
}

void DcqcnPacer::clamp() {
  rc_ = Rate{std::clamp(rc_.bps(), p_.min_rate.bps(), p_.line_rate.bps())};
  rt_ = Rate{std::clamp(rt_.bps(), p_.min_rate.bps(), p_.line_rate.bps())};
}

void DcqcnPacer::increase_step() {
  ++increase_stage_;
  if (increase_stage_ > p_.fast_recovery_periods) {
    rt_ = rt_ + p_.rai;  // additive increase ("active increase" stage)
  }
  rc_ = Rate{(rc_.bps() + rt_.bps()) / 2};
  clamp();
}

void DcqcnPacer::advance(Time now) {
  // Rate-increase periods since the last CNP (or last processed period).
  while (now - last_increase_ >= p_.increase_timer) {
    last_increase_ += p_.increase_timer;
    increase_step();
  }
  while (now - last_alpha_ >= p_.alpha_timer) {
    last_alpha_ += p_.alpha_timer;
    alpha_ *= (1.0 - p_.g);
  }
}

Time DcqcnPacer::ready_at(Time now, std::uint32_t bytes) {
  advance(now);
  // Token bucket at rc_, burst of one packet.
  const double added = static_cast<double>(rc_.bps()) *
                       (now - tokens_last_).ps() / 8e12;
  tokens_bytes_ = std::min(static_cast<double>(bytes), tokens_bytes_ + added);
  tokens_last_ = now;
  if (tokens_bytes_ >= static_cast<double>(bytes)) return now;
  const double deficit = static_cast<double>(bytes) - tokens_bytes_;
  const double wait_ps = deficit * 8e12 / static_cast<double>(rc_.bps());
  return now + Time{static_cast<std::int64_t>(std::ceil(wait_ps))};
}

void DcqcnPacer::on_sent(Time now, std::uint32_t bytes) {
  advance(now);
  const double added = static_cast<double>(rc_.bps()) *
                       (now - tokens_last_).ps() / 8e12;
  tokens_bytes_ = std::min(static_cast<double>(bytes), tokens_bytes_ + added);
  tokens_last_ = now;
  tokens_bytes_ -= static_cast<double>(bytes);
  // Byte-counter increase events (one per byte_counter bytes since CNP).
  bytes_since_cnp_ += bytes;
  while (bytes_since_cnp_ >= p_.byte_counter) {
    bytes_since_cnp_ -= p_.byte_counter;
    increase_step();
  }
}

void DcqcnPacer::on_cnp(Time now) {
  advance(now);
  ++cnp_count_;
  rt_ = rc_;
  rc_ = Rate{static_cast<std::int64_t>(
      static_cast<double>(rc_.bps()) * (1.0 - alpha_ / 2.0))};
  alpha_ = (1.0 - p_.g) * alpha_ + p_.g;
  increase_stage_ = 0;
  bytes_since_cnp_ = 0;
  last_increase_ = now;
  last_alpha_ = now;
  clamp();
}

}  // namespace dcdl::mitigation
