#include "dcdl/mitigation/smart_limiter.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "dcdl/common/contract.hpp"
#include "dcdl/device/host.hpp"
#include "dcdl/device/switch.hpp"

namespace dcdl::mitigation {

namespace {
using Channel = std::pair<NodeId, PortId>;
constexpr double kSaturated = 0.95;
}  // namespace

RateLimitPlan plan_rate_limits(const Network& net,
                               const std::vector<FlowSpec>& flows,
                               const std::vector<Rate>& demands,
                               double target_utilization,
                               int required_slack_links) {
  DCDL_EXPECTS(target_utilization > 0 && target_utilization < kSaturated);
  RateLimitPlan plan;
  const auto channels = analysis::flow_channels(net, flows);

  std::vector<Rate> caps(flows.size(), Rate::zero());
  for (std::size_t i = 0; i < demands.size() && i < caps.size(); ++i) {
    caps[i] = demands[i];
  }
  std::map<FlowId, Rate> planned;  // flow -> tightest cap planned so far

  for (int iter = 0; iter < 8; ++iter) {
    const analysis::RiskReport report =
        analysis::assess_deadlock_risk(net, flows, caps);
    const analysis::CycleRisk* worst = nullptr;
    for (const auto& c : report.cycles) {
      if (c.slack_links < required_slack_links &&
          (!worst || c.slack_links < worst->slack_links)) {
        worst = &c;
      }
    }
    if (!worst) break;

    // Choose the saturated cycle link crossed by the fewest flows — the
    // minimal blast radius.
    std::size_t best_hop = worst->cycle.size();
    std::vector<std::size_t> best_crossers;
    Channel best_chan{kInvalidNode, kInvalidPort};
    for (std::size_t hop = 0; hop < worst->cycle.size(); ++hop) {
      if (worst->link_utilization[hop] < kSaturated) continue;
      const auto& next = worst->cycle[(hop + 1) % worst->cycle.size()];
      const PortPeer& pp = net.topo().peer(next.node, next.port);
      const Channel chan{pp.peer_node, pp.peer_port};
      std::vector<std::size_t> crossers;
      for (std::size_t i = 0; i < flows.size(); ++i) {
        if (std::find(channels[i].begin(), channels[i].end(), chan) !=
            channels[i].end()) {
          crossers.push_back(i);
        }
      }
      if (crossers.empty()) continue;
      if (best_hop == worst->cycle.size() ||
          crossers.size() < best_crossers.size()) {
        best_hop = hop;
        best_crossers = std::move(crossers);
        best_chan = chan;
      }
    }
    if (best_hop == worst->cycle.size()) break;  // nothing limitable

    const double capacity_bps = static_cast<double>(
        net.link_rate(best_chan.first, best_chan.second).bps());
    const Rate fair_split{static_cast<std::int64_t>(
        target_utilization * capacity_bps /
        static_cast<double>(best_crossers.size()))};
    for (const std::size_t i : best_crossers) {
      // First pass: cap at the fair split of the link. If the link is
      // still saturated on re-assessment (TTL amplification in loops
      // multiplies a flow's load), tighten geometrically.
      Rate new_cap = fair_split;
      if (!caps[i].is_zero() && caps[i] <= fair_split) {
        new_cap = Rate{caps[i].bps() / 2};
      }
      if (caps[i].is_zero() || new_cap < caps[i]) {
        caps[i] = new_cap;
        NodeId sw = kInvalidNode;
        for (const Channel& c : channels[i]) {
          if (net.topo().is_switch(c.first)) {
            sw = c.first;
            break;
          }
        }
        if (sw == kInvalidNode) continue;
        planned[flows[i].id] = new_cap;
        bool updated = false;
        for (auto& a : plan.actions) {
          if (a.flow == flows[i].id) {
            a.rate = std::min(a.rate, new_cap);
            updated = true;
          }
        }
        if (!updated) {
          plan.actions.push_back(
              RateLimitAction{sw, flows[i].src_host, flows[i].id, new_cap});
        }
      }
    }
  }

  for (const FlowSpec& f : flows) {
    if (!planned.count(f.id)) plan.untouched.push_back(f.id);
  }
  return plan;
}

void apply_rate_limits(Network& net, const RateLimitPlan& plan,
                       std::uint32_t burst_bytes, bool at_source) {
  for (const RateLimitAction& a : plan.actions) {
    if (at_source) {
      net.host_at(a.src_host).limit_flow(a.flow, a.rate, burst_bytes);
    } else {
      net.switch_at(a.sw).set_flow_shaper(a.flow, a.rate, burst_bytes);
    }
  }
}

}  // namespace dcdl::mitigation
