// Intelligent rate limiting (paper §4): "If we are able to predict the
// rate threshold for deadlock, we may bound the individual flow rate by
// that threshold on switches that are involved in cyclic buffer
// dependency. However, this requires intelligent rate limiting schemes to
// avoid over-punishing innocent flows. We leave this to future work."
//
// This planner is that future work, built on the risk analyzer: for every
// lockable dependency cycle it de-saturates cycle links (starting with the
// ones carrying the fewest flows — minimal blast radius) by installing
// per-flow shapers at each guilty flow's first switch, until the cycle has
// at least two slack links (the empirically safe configuration; see
// analysis/risk.hpp). Flows not crossing any lockable cycle are never
// touched.
#pragma once

#include <vector>

#include "dcdl/analysis/risk.hpp"
#include "dcdl/device/network.hpp"
#include "dcdl/traffic/flow.hpp"

namespace dcdl::mitigation {

struct RateLimitAction {
  NodeId sw;        ///< the flow's first switch (switch-side option)
  NodeId src_host;  ///< the flow's source NIC (default install point)
  FlowId flow;
  Rate rate;        ///< shaped rate
};

struct RateLimitPlan {
  std::vector<RateLimitAction> actions;
  /// Flows left untouched (for the over-punishment audit).
  std::vector<FlowId> untouched;

  bool empty() const { return actions.empty(); }
};

/// Plans per-flow limits so every dependency cycle ends up with at least
/// `required_slack_links` links below `target_utilization`.
RateLimitPlan plan_rate_limits(const Network& net,
                               const std::vector<FlowSpec>& flows,
                               const std::vector<Rate>& demands = {},
                               double target_utilization = 0.85,
                               int required_slack_links = 2);

/// Installs the plan. By default limits are applied at each flow's source
/// NIC; `at_source=false` uses switch-side per-flow shapers instead —
/// physically valid, but held packets occupy the ingress buffer, so PFC
/// backpressure then throttles *everything* sharing that ingress (see
/// tests/test_smart_limiter.cpp for the measured difference).
void apply_rate_limits(Network& net, const RateLimitPlan& plan,
                       std::uint32_t burst_bytes = 2000,
                       bool at_source = true);

}  // namespace dcdl::mitigation
