#include "dcdl/mitigation/thresholds.hpp"

#include <algorithm>

#include "dcdl/common/contract.hpp"
#include "dcdl/device/switch.hpp"

namespace dcdl::mitigation {

void apply_directional_thresholds(Network& net, std::int64_t xoff_down,
                                  std::int64_t xoff_up,
                                  std::int64_t hysteresis) {
  const Topology& topo = net.topo();
  for (const NodeId sw : topo.switches()) {
    const int my_tier = topo.node(sw).tier;
    const auto& ports = topo.ports(sw);
    for (PortId p = 0; p < ports.size(); ++p) {
      const int peer_tier = topo.node(ports[p].peer_node).tier;
      const std::int64_t xoff = peer_tier < my_tier ? xoff_down : xoff_up;
      for (int c = 0; c < net.config().num_classes; ++c) {
        net.switch_at(sw).set_thresholds(p, static_cast<ClassId>(c), xoff,
                                         std::max<std::int64_t>(0, xoff - hysteresis));
      }
    }
  }
}

void apply_tier_thresholds(Network& net,
                           const std::vector<std::int64_t>& xoff_by_tier,
                           std::int64_t hysteresis) {
  DCDL_EXPECTS(!xoff_by_tier.empty());
  const Topology& topo = net.topo();
  for (const NodeId sw : topo.switches()) {
    const std::size_t tier = static_cast<std::size_t>(
        std::max(0, topo.node(sw).tier));
    const std::int64_t xoff =
        xoff_by_tier[std::min(tier, xoff_by_tier.size() - 1)];
    for (PortId p = 0; p < topo.ports(sw).size(); ++p) {
      for (int c = 0; c < net.config().num_classes; ++c) {
        net.switch_at(sw).set_thresholds(p, static_cast<ClassId>(c), xoff,
                                         std::max<std::int64_t>(0, xoff - hysteresis));
      }
    }
  }
}

void apply_class_thresholds(Network& net,
                            const std::vector<std::int64_t>& xoff_by_class,
                            std::int64_t hysteresis) {
  DCDL_EXPECTS(static_cast<int>(xoff_by_class.size()) >=
               net.config().num_classes);
  const Topology& topo = net.topo();
  for (const NodeId sw : topo.switches()) {
    for (PortId p = 0; p < topo.ports(sw).size(); ++p) {
      for (int c = 0; c < net.config().num_classes; ++c) {
        const std::int64_t xoff = xoff_by_class[static_cast<std::size_t>(c)];
        net.switch_at(sw).set_thresholds(p, static_cast<ClassId>(c), xoff,
                                         std::max<std::int64_t>(0, xoff - hysteresis));
      }
    }
  }
}

}  // namespace dcdl::mitigation
