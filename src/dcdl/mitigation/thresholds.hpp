// PFC threshold policies (paper §4, "limiting PFC pause frames
// propagation"): make pauses originate near sources and let higher tiers
// absorb bursts instead of cascading them.
#pragma once

#include <cstdint>
#include <vector>

#include "dcdl/device/network.hpp"

namespace dcdl::mitigation {

/// Directional thresholds: on every switch, ingress ports facing a
/// *lower-tier* neighbour (downstream, toward leaves/hosts) get
/// `xoff_down`, ports facing an equal-or-higher tier get `xoff_up`.
/// The paper suggests smaller thresholds downstream and larger upstream so
/// pause propagation is damped near the core. Xon is xoff - hysteresis.
void apply_directional_thresholds(Network& net, std::int64_t xoff_down,
                                  std::int64_t xoff_up,
                                  std::int64_t hysteresis);

/// Per-tier thresholds: switch tier t uses xoff_by_tier[min(t, size-1)]
/// on all its ingress queues ("use switches with larger threshold values at
/// higher tiers so that they absorb small bursts").
void apply_tier_thresholds(Network& net,
                           const std::vector<std::int64_t>& xoff_by_tier,
                           std::int64_t hysteresis);

/// Per-class thresholds on every switch ("classify packets with different
/// TTL into different classes and assign them different PFC thresholds").
void apply_class_thresholds(Network& net,
                            const std::vector<std::int64_t>& xoff_by_class,
                            std::int64_t hysteresis);

}  // namespace dcdl::mitigation
