#include "dcdl/mitigation/timely.hpp"

#include <algorithm>
#include <cmath>

#include "dcdl/common/contract.hpp"

namespace dcdl::mitigation {

TimelyPacer::TimelyPacer(TimelyParams params)
    : p_(params), rate_(params.line_rate) {
  DCDL_EXPECTS(params.line_rate.bps() > 0);
  DCDL_EXPECTS(params.min_rate.bps() > 0);
  DCDL_EXPECTS(params.t_low <= params.t_high);
}

void TimelyPacer::clamp() {
  rate_ = Rate{std::clamp(rate_.bps(), p_.min_rate.bps(), p_.line_rate.bps())};
}

void TimelyPacer::on_rtt(Time, Time rtt) {
  ++samples_;
  if (prev_rtt_ == Time::zero()) {
    prev_rtt_ = rtt;
    return;
  }
  const double new_diff = static_cast<double>((rtt - prev_rtt_).ps());
  rtt_diff_ps_ = (1.0 - p_.ewma_alpha) * rtt_diff_ps_ +
                 p_.ewma_alpha * new_diff;
  prev_rtt_ = rtt;
  last_gradient_ =
      rtt_diff_ps_ / static_cast<double>(std::max<std::int64_t>(
                         p_.min_rtt.ps(), 1));

  if (rtt < p_.t_low) {
    rate_ = rate_ + p_.delta;
    negative_streak_ = 0;
  } else if (rtt > p_.t_high) {
    const double cut =
        1.0 - p_.beta * (1.0 - static_cast<double>(p_.t_high.ps()) /
                                   static_cast<double>(rtt.ps()));
    rate_ = Rate{static_cast<std::int64_t>(
        static_cast<double>(rate_.bps()) * cut)};
    negative_streak_ = 0;
  } else if (last_gradient_ <= 0) {
    ++negative_streak_;
    const int n = negative_streak_ >= p_.hai_threshold ? 5 : 1;
    rate_ = rate_ + Rate{p_.delta.bps() * n};
  } else {
    negative_streak_ = 0;
    const double cut = 1.0 - p_.beta * std::min(last_gradient_, 1.0);
    rate_ = Rate{static_cast<std::int64_t>(
        static_cast<double>(rate_.bps()) * cut)};
  }
  clamp();
}

Time TimelyPacer::ready_at(Time now, std::uint32_t bytes) {
  const double added = static_cast<double>(rate_.bps()) *
                       (now - tokens_last_).ps() / 8e12;
  tokens_bytes_ = std::min(static_cast<double>(bytes), tokens_bytes_ + added);
  tokens_last_ = now;
  if (tokens_bytes_ >= static_cast<double>(bytes)) return now;
  const double wait_ps = (static_cast<double>(bytes) - tokens_bytes_) * 8e12 /
                         static_cast<double>(rate_.bps());
  return now + Time{static_cast<std::int64_t>(std::ceil(wait_ps))};
}

void TimelyPacer::on_sent(Time now, std::uint32_t bytes) {
  const double added = static_cast<double>(rate_.bps()) *
                       (now - tokens_last_).ps() / 8e12;
  tokens_bytes_ = std::min(static_cast<double>(bytes), tokens_bytes_ + added);
  tokens_last_ = now;
  tokens_bytes_ -= static_cast<double>(bytes);
}

}  // namespace dcdl::mitigation
