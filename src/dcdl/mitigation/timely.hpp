// TIMELY-like RTT-gradient congestion control (Mittal et al., SIGCOMM'15 —
// the paper's §4 cites it next to DCQCN among the transports "designed to
// reduce the possibility of PFC generation").
//
// Per RTT sample:
//   rtt_diff  <- (1-a) * rtt_diff + a * (rtt - prev_rtt)
//   gradient  <- rtt_diff / min_rtt
//   if rtt < T_low:            rate += delta            (additive)
//   else if rtt > T_high:      rate *= (1 - b * (1 - T_high/rtt))
//   else if gradient <= 0:     rate += N * delta        (N grows while the
//                                                        gradient stays <=0)
//   else:                      rate *= (1 - b * gradient)
//
// Pacing is a token bucket at the current rate, as with the DCQCN pacer.
#pragma once

#include <cstdint>

#include "dcdl/common/units.hpp"
#include "dcdl/traffic/flow.hpp"

namespace dcdl::mitigation {

struct TimelyParams {
  Rate line_rate = Rate::gbps(40);
  Rate min_rate = Rate::mbps(10);
  Rate delta = Rate::mbps(100);       ///< additive increment
  double beta = 0.8;                  ///< multiplicative decrease factor
  double ewma_alpha = 0.125;          ///< rtt_diff gain
  /// Thresholds are tuned to this simulator's fabrics (base one-way
  /// latency ~4 us at 1 us/link propagation); the original paper used
  /// ~50/500 us against full datacenter RTTs.
  Time t_low = Time{8'000'000};       ///< 8 us
  Time t_high = Time{40'000'000};     ///< 40 us
  Time min_rtt = Time{4'000'000};     ///< propagation floor for gradients
  int hai_threshold = 5;              ///< samples before hyper-increase
};

class TimelyPacer final : public Pacer {
 public:
  explicit TimelyPacer(TimelyParams params);

  Time ready_at(Time now, std::uint32_t bytes) override;
  void on_sent(Time now, std::uint32_t bytes) override;
  void on_rtt(Time now, Time rtt) override;
  std::optional<Rate> current_rate() const override { return rate_; }

  double gradient() const { return last_gradient_; }
  std::uint64_t samples() const { return samples_; }

 private:
  void clamp();

  TimelyParams p_;
  Rate rate_;
  Time prev_rtt_ = Time::zero();
  double rtt_diff_ps_ = 0;
  double last_gradient_ = 0;
  int negative_streak_ = 0;
  std::uint64_t samples_ = 0;
  double tokens_bytes_ = 0;
  Time tokens_last_ = Time::zero();
};

}  // namespace dcdl::mitigation
