#include "dcdl/mitigation/watchdog.hpp"

#include "dcdl/common/contract.hpp"
#include "dcdl/device/switch.hpp"

namespace dcdl::mitigation {

PfcWatchdog::PfcWatchdog(Network& net, Params params)
    : net_(net), params_(params) {
  DCDL_EXPECTS(params.poll > Time::zero());
  DCDL_EXPECTS(params.storm_threshold > Time::zero());
}

void PfcWatchdog::start(Time from, Time until) {
  until_ = until;
  net_.sim().schedule_at(from, [this] { poll_once(); });
}

void PfcWatchdog::poll_once() {
  const Time now = net_.sim().now();
  for (const NodeId sw_id : net_.topo().switches()) {
    auto& sw = net_.switch_at(sw_id);
    for (PortId p = 0; p < sw.num_ports(); ++p) {
      for (ClassId c = 0; c < net_.config().num_classes; ++c) {
        if (sw.egress_paused_for(p, c) < params_.storm_threshold) continue;
        const std::uint64_t dropped = sw.flush_egress_queue(p, c);
        sw.ignore_pause_until(p, c, now + params_.ignore_duration);
        packets_dropped_ += dropped;
        resets_.push_back(ResetEvent{now, sw_id, p, c, dropped});
      }
    }
  }
  if (now + params_.poll <= until_) {
    net_.sim().schedule_in(params_.poll, [this] { poll_once(); });
  }
}

}  // namespace dcdl::mitigation
