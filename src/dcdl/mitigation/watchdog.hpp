// Reactive deadlock recovery: a PFC storm watchdog (paper §1's "reactive
// mechanisms ... detect that a deadlock has formed, and then try to break
// it by resetting links/ports/hosts ... inelegant, disruptive, and should
// be used only as a last resort").
//
// Mirrors production PFC watchdogs (SONiC/Arista/Mellanox): every `poll`,
// each switch egress (port, class) that has been continuously paused for
// longer than `storm_threshold` is declared stormed; its queue is flushed
// (packets dropped — the disruption) and its received pause state is
// ignored for `ignore_duration` so the flushed buffer can drain and the
// upstream RESUMEs can propagate.
#pragma once

#include <cstdint>
#include <vector>

#include "dcdl/common/units.hpp"
#include "dcdl/device/network.hpp"
#include "dcdl/stats/pause_log.hpp"

namespace dcdl::mitigation {

class PfcWatchdog {
 public:
  struct Params {
    Time poll = Time{100'000'000};              // 100 us
    Time storm_threshold = Time{2'000'000'000}; // 2 ms continuous pause
    Time ignore_duration = Time{500'000'000};   // 500 us
  };

  struct ResetEvent {
    Time at;
    NodeId sw;
    PortId port;
    ClassId cls;
    std::uint64_t packets_dropped;
  };

  PfcWatchdog(Network& net, Params params);

  /// Starts polling at `from` until `until`.
  void start(Time from, Time until);

  std::uint64_t resets() const { return resets_.size(); }
  std::uint64_t packets_dropped() const { return packets_dropped_; }
  const std::vector<ResetEvent>& reset_events() const { return resets_; }

 private:
  void poll_once();

  Network& net_;
  Params params_;
  Time until_ = Time::zero();
  std::vector<ResetEvent> resets_;
  std::uint64_t packets_dropped_ = 0;
};

}  // namespace dcdl::mitigation
