// Data-plane packet model. Packets are small value types moved through
// queues; there is no payload, only the header fields the paper's dynamics
// depend on (size, TTL, priority class, flow identity, ECN bits).
#pragma once

#include <cstdint>

#include "dcdl/common/units.hpp"

namespace dcdl {

using NodeId = std::uint32_t;
using PortId = std::uint16_t;
using FlowId = std::uint32_t;
using ClassId = std::uint8_t;

constexpr NodeId kInvalidNode = 0xFFFFFFFFu;
constexpr PortId kInvalidPort = 0xFFFFu;

/// Maximum number of PFC priority classes (IEEE 802.1Qbb defines 8).
constexpr int kMaxClasses = 8;

struct Packet {
  std::uint64_t id = 0;       ///< globally unique, assigned at injection
  FlowId flow = 0;
  NodeId src = kInvalidNode;  ///< source host
  NodeId dst = kInvalidNode;  ///< destination host
  std::uint32_t size_bytes = 0;
  std::uint8_t ttl = 0;       ///< remaining hops; 0 means "about to be dropped"
  ClassId prio = 0;           ///< PFC priority class the packet travels in
  std::uint8_t hops = 0;      ///< switch-to-switch hops traversed so far
  bool ecn_capable = false;
  bool ecn_marked = false;
  /// Data-plane path metadata (dcdl::dataplane tag stage). Stamped by the
  /// first switch the packet traverses when the pipeline is enabled;
  /// 0xFFFF means untagged. Kept narrow on purpose: the packet must stay
  /// small enough that a transmit closure [device*, port, Packet] fits a
  /// simulator event's 64-byte inline budget.
  std::uint16_t tag_origin = 0xFFFF;  ///< fabric-entry switch (id mod 2^16)
  std::uint32_t tag_visited = 0;      ///< node bitmap, bit = id mod 32
  Time injected_at = Time::zero();
};

}  // namespace dcdl
