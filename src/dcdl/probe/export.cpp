#include "dcdl/probe/export.hpp"

#include <cstdint>
#include <vector>

#include "dcdl/campaign/param.hpp"

namespace dcdl::probe {

namespace {

using campaign::format_double;

/// Indices of the series that go into an export.
std::vector<std::uint32_t> exported_series(const SeriesStore& s,
                                           const TimeseriesOptions& opts) {
  std::vector<std::uint32_t> ids;
  for (std::uint32_t i = 0; i < s.num_series(); ++i) {
    if (s.deterministic(i) || opts.include_engine_series) ids.push_back(i);
  }
  return ids;
}

}  // namespace

std::string to_timeseries_jsonl(const RunProbe& probe,
                                const TimeseriesOptions& opts) {
  const SeriesStore& s = probe.series();
  const std::vector<std::uint32_t> ids = exported_series(s, opts);

  std::string out;
  out += "{\"schema\":\"";
  out += kTimeseriesSchema;
  out += "\",\"interval_ps\":" + std::to_string(probe.interval().ps());
  out += ",\"start_ps\":" + std::to_string(probe.start_time().ps());
  out += ",\"ticks\":" + std::to_string(s.ticks());
  out += ",\"dropped_ticks\":" + std::to_string(s.dropped_ticks());
  out += ",\"series\":[";
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (i != 0) out += ",";
    out += "\"" + s.name(ids[i]) + "\"";
  }
  out += "]}\n";

  for (std::size_t k = 0; k < s.ticks(); ++k) {
    out += "{\"t_ps\":" + std::to_string(s.tick_time(k).ps());
    out += ",\"v\":[";
    for (std::size_t i = 0; i < ids.size(); ++i) {
      if (i != 0) out += ",";
      out += format_double(s.value(k, ids[i]));
    }
    out += "]}\n";
  }

  for (const RunProbe::NamedHist& h : probe.histograms()) {
    out += "{\"hist\":\"";
    out += h.name;
    out += "\",\"unit\":\"ps\"";
    out += ",\"count\":" + std::to_string(h.hist->count());
    out += ",\"sum\":" + std::to_string(h.hist->sum());
    out += ",\"min\":" + std::to_string(h.hist->min());
    out += ",\"max\":" + std::to_string(h.hist->max());
    out += ",\"p50\":" + std::to_string(h.hist->percentile(0.50));
    out += ",\"p90\":" + std::to_string(h.hist->percentile(0.90));
    out += ",\"p99\":" + std::to_string(h.hist->percentile(0.99));
    out += ",\"p999\":" + std::to_string(h.hist->percentile(0.999));
    out += ",\"buckets\":[";
    bool first = true;
    h.hist->for_each_bucket([&](std::uint64_t edge, std::uint64_t count) {
      if (!first) out += ",";
      first = false;
      out += "[" + std::to_string(edge) + "," + std::to_string(count) + "]";
    });
    out += "]}\n";
  }
  return out;
}

std::string to_perfetto_counters(const RunProbe& probe,
                                 const TimeseriesOptions& opts) {
  const SeriesStore& s = probe.series();
  const std::vector<std::uint32_t> ids = exported_series(s, opts);
  // A pid well clear of the telemetry exporter's per-node process ids.
  constexpr int kPid = 900000;

  std::string out = "{\"traceEvents\":[";
  bool first = true;
  const auto emit = [&](const std::string& ev) {
    if (!first) out += ",";
    first = false;
    out += "\n" + ev;
  };
  emit("{\"ph\":\"M\",\"pid\":" + std::to_string(kPid) +
       ",\"name\":\"process_name\",\"args\":{\"name\":\"probe\"}}");
  for (std::size_t k = 0; k < s.ticks(); ++k) {
    const std::int64_t ts_us = s.tick_time(k).ps() / 1'000'000;
    for (const std::uint32_t id : ids) {
      emit("{\"ph\":\"C\",\"pid\":" + std::to_string(kPid) +
           ",\"ts\":" + std::to_string(ts_us) + ",\"name\":\"" + s.name(id) +
           "\",\"args\":{\"v\":" + format_double(s.value(k, id)) + "}}");
    }
  }
  out += "\n]}\n";
  return out;
}

}  // namespace dcdl::probe
