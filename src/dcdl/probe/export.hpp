// Exporters for the probe layer.
//
//   * `dcdl.timeseries.v1` JSONL: one header object (schema, interval,
//     series directory), one row object per retained tick, then one object
//     per histogram with exact count/sum/min/max, bounded-error
//     p50/p90/p99/p999, and the non-empty (upper_edge, count) bucket list.
//     Only series flagged deterministic are written unless
//     `include_engine_series` is set, so the artifact is byte-identical
//     across --jobs x --shards within each engine identity class.
//
//   * Perfetto counter tracks: a standalone trace-event JSON with one "C"
//     event per series per tick under a synthetic "probe" process, ready
//     to load next to the telemetry exporter's pause spans.
//
// Doubles are rendered with campaign::format_double (shortest-round-trip
// std::to_chars), the same writer the campaign artifacts use, so equality
// of inputs means equality of bytes.
#pragma once

#include <string>

#include "dcdl/probe/probe.hpp"

namespace dcdl::probe {

inline constexpr const char* kTimeseriesSchema = "dcdl.timeseries.v1";

struct TimeseriesOptions {
  /// Include series flagged non-deterministic (engine window/stall
  /// counts). Off for golden artifacts.
  bool include_engine_series = false;
};

std::string to_timeseries_jsonl(const RunProbe& probe,
                                const TimeseriesOptions& opts = {});

/// Perfetto counter tracks for the sampled series (deterministic series
/// only unless opts says otherwise).
std::string to_perfetto_counters(const RunProbe& probe,
                                 const TimeseriesOptions& opts = {});

}  // namespace dcdl::probe
