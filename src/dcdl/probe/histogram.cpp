#include "dcdl/probe/histogram.hpp"

#include <cmath>

namespace dcdl::probe {

std::int64_t LogHistogram::percentile(double q) const {
  if (count_ == 0) return 0;
  if (q <= 0.0) q = 0.0;
  if (q >= 1.0) return max_;
  // Rank of the target observation, 1-based.
  std::uint64_t rank = static_cast<std::uint64_t>(
      std::ceil(q * static_cast<double>(count_)));
  if (rank < 1) rank = 1;
  if (rank > count_) rank = count_;
  std::uint64_t seen = 0;
  for (std::uint32_t i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      const std::uint64_t edge = upper_edge(i);
      const std::int64_t bounded = static_cast<std::int64_t>(edge);
      return bounded > max_ ? max_ : bounded;
    }
  }
  return max_;  // unreachable when count_ > 0
}

}  // namespace dcdl::probe
