// Log-bucketed latency histogram (HdrHistogram-style) for the probe layer.
//
// Values are non-negative 64-bit integers — in dcdl they are always
// picosecond durations. Bucketing is the classic sub-bucketed-octave
// scheme: the first 64 values are exact, and every octave above that is
// split into 32 sub-buckets, so any recorded value lands in a bucket whose
// upper edge is within 1/32 (3.2%) of the value itself. count / sum /
// min / max are exact; percentiles are reported as the covering bucket's
// upper edge, clamped to the exact max — a bounded-relative-error quantile
// with no per-record allocation, no sorting, and a fixed 15 KiB footprint.
//
// record() is O(1) (a count-leading-zeros and two array increments) and is
// cheap enough to sit on trace-hook paths: the probe layer feeds it from
// delivered / hop-wait / PFC observers, which in sharded runs fire on the
// coordinator thread during record replay.
#pragma once

#include <bit>
#include <cstdint>
#include <vector>

namespace dcdl::probe {

class LogHistogram {
 public:
  /// Sub-bucket resolution: 2^6 exact low values, 2^5 sub-buckets per
  /// octave above that. Part of the `dcdl.timeseries.v1` bucket layout —
  /// change only with a schema bump.
  static constexpr int kSubBits = 6;
  static constexpr std::uint64_t kSub = 1ull << kSubBits;  // 64
  static constexpr std::uint32_t kHalf =
      static_cast<std::uint32_t>(kSub / 2);  // 32 sub-buckets per octave
  /// 64 exact buckets + 58 octaves (uint64 range) of 32 sub-buckets.
  static constexpr std::uint32_t kNumBuckets =
      static_cast<std::uint32_t>(kSub) + 58 * kHalf;

  LogHistogram() : buckets_(kNumBuckets, 0) {}

  /// Bucket index covering `v`. Exact below kSub; one sub-bucketed octave
  /// per power of two above.
  static std::uint32_t index_of(std::uint64_t v) {
    if (v < kSub) return static_cast<std::uint32_t>(v);
    const int msb = 63 - std::countl_zero(v);
    const int shift = msb - kSubBits + 1;
    const std::uint64_t sub = v >> shift;  // in [kHalf, kSub)
    return static_cast<std::uint32_t>(kSub) +
           static_cast<std::uint32_t>(shift - 1) * kHalf +
           static_cast<std::uint32_t>(sub - kHalf);
  }

  /// Largest value that lands in bucket `idx` (inclusive upper edge).
  static std::uint64_t upper_edge(std::uint32_t idx) {
    if (idx < kSub) return idx;
    const std::uint32_t rel = idx - static_cast<std::uint32_t>(kSub);
    const int shift = static_cast<int>(rel / kHalf) + 1;
    const std::uint64_t sub = kHalf + rel % kHalf;
    return ((sub + 1) << shift) - 1;
  }

  /// Records one observation. Negative durations (a clock bug upstream)
  /// are clamped to zero rather than dropped, so count stays exact.
  void record(std::int64_t v) {
    const std::uint64_t u = v < 0 ? 0 : static_cast<std::uint64_t>(v);
    ++buckets_[index_of(u)];
    ++count_;
    sum_ += static_cast<std::int64_t>(u);
    if (count_ == 1 || static_cast<std::int64_t>(u) < min_) {
      min_ = static_cast<std::int64_t>(u);
    }
    if (static_cast<std::int64_t>(u) > max_) max_ = static_cast<std::int64_t>(u);
  }

  bool empty() const { return count_ == 0; }
  std::uint64_t count() const { return count_; }
  std::int64_t sum() const { return sum_; }
  std::int64_t min() const { return count_ == 0 ? 0 : min_; }
  std::int64_t max() const { return max_; }
  double mean() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(sum_) / static_cast<double>(count_);
  }

  /// Quantile q in [0, 1]: the upper edge of the bucket holding the
  /// ceil(q * count)-th smallest observation, clamped to the exact max.
  /// Relative error is bounded by the sub-bucket width (<= 3.2%); the
  /// extremes are exact (q=0 -> a value <= min's bucket edge, q=1 -> max).
  std::int64_t percentile(double q) const;

  /// Visits non-empty buckets in ascending value order as
  /// f(upper_edge, count) — the export shape.
  template <typename F>
  void for_each_bucket(F&& f) const {
    for (std::uint32_t i = 0; i < kNumBuckets; ++i) {
      if (buckets_[i] != 0) f(upper_edge(i), buckets_[i]);
    }
  }

 private:
  std::vector<std::uint64_t> buckets_;
  std::uint64_t count_ = 0;
  std::int64_t sum_ = 0;
  std::int64_t min_ = 0;
  std::int64_t max_ = 0;
};

}  // namespace dcdl::probe
