#include "dcdl/probe/probe.hpp"

#include <algorithm>

#include "dcdl/stats/hooks.hpp"

namespace dcdl::probe {

namespace {

std::string channel_name(const Topology& topo, NodeId node, PortId port) {
  const NodeSpec& spec = topo.node(node);
  std::string base =
      spec.name.empty() ? "n" + std::to_string(node) : spec.name;
  return "util." + base + ":" + std::to_string(port);
}

}  // namespace

RunProbe::RunProbe(Network& net, ProbeOptions opts)
    : net_(net), opts_(opts), series_(opts.capacity) {
  const Topology& topo = net_.topo();

  // Dense (node, egress port) -> channel index table.
  chan_offset_.resize(topo.node_count() + 1, 0);
  for (std::size_t n = 0; n < topo.node_count(); ++n) {
    chan_offset_[n + 1] =
        chan_offset_[n] + static_cast<std::uint32_t>(topo.degree(
                              static_cast<NodeId>(n)));
  }
  const std::size_t channels = chan_offset_.back();
  chan_rate_bps_.resize(channels, 1);
  last_tx_bytes_.resize(channels, 0);
  for (std::size_t n = 0; n < topo.node_count(); ++n) {
    const NodeId node = static_cast<NodeId>(n);
    for (PortId p = 0; p < topo.degree(node); ++p) {
      const std::int64_t bps = topo.link(topo.peer(node, p).link).rate.bps();
      chan_rate_bps_[chan_offset_[n] + p] = bps > 0 ? bps : 1;
    }
  }

  // Series layout. Registration order is the artifact column order.
  queue_bytes_id_ = series_.add("queue_bytes");
  delivered_id_ = series_.add("delivered_bytes");
  drops_id_ = series_.add("drops");
  active_pauses_id_ = series_.add("pfc.active_pauses");
  paused_frac_id_ = series_.add("pfc.paused_frac");
  util_max_id_ = series_.add("util.max");
  if (channels <= opts_.max_util_series) {
    util_ids_.reserve(channels);
    for (std::size_t n = 0; n < topo.node_count(); ++n) {
      const NodeId node = static_cast<NodeId>(n);
      for (PortId p = 0; p < topo.degree(node); ++p) {
        util_ids_.push_back(series_.add(channel_name(topo, node, p)));
      }
    }
  }

  flows_.reserve(256);
  attach_hooks();
}

void RunProbe::attach_hooks() {
  Trace& tr = net_.trace();

  stats::append_hook(
      tr.delivered, [this](Time t, const Packet& pkt) {
        delivered_bytes_tick_ += pkt.size_bytes;
        pkt_latency_.record((t - pkt.injected_at).ps());
        if (pkt.flow >= flows_.size()) flows_.resize(pkt.flow + 1);
        FlowObs& f = flows_[pkt.flow];
        if (!f.any || pkt.injected_at < f.first_injected) {
          f.first_injected = pkt.injected_at;
        }
        f.last_delivered = t;
        f.any = true;
      });

  // Drops and per-link tx bytes are deliberately NOT hooked: the devices
  // maintain those counters natively, and tick() diffs them as state reads
  // — the same barrier-time pattern as total_queued_bytes(), keeping the
  // probe off the per-transmission hot path entirely.

  stats::append_hook(
      tr.hop_wait,
      [this](Time, NodeId, PortId, ClassId, Time waited) {
        hop_wait_.record(waited.ps());
      });

  stats::append_hook(
      tr.pfc_state,
      [this](Time t, NodeId node, PortId port, ClassId cls, bool paused) {
        advance_pause_integral(t);
        const std::uint64_t key = queue_key(node, port, cls);
        if (paused) {
          if (open_xoff_.emplace(key, t).second) ++active_pauses_;
        } else {
          auto it = open_xoff_.find(key);
          if (it != open_xoff_.end()) {
            pfc_pause_.record((t - it->second).ps());
            open_xoff_.erase(it);
            --active_pauses_;
          }
        }
      });

  stats::append_hook(
      tr.dataplane, [this](Time t, NodeId node, dataplane::DataplaneEvent ev,
                           ClassId, std::uint64_t) {
        if (ev == dataplane::DataplaneEvent::kConfirmed) {
          dp_detect_.record((t - start_).ps());
          last_confirm_[node] = t;
        } else if (ev == dataplane::DataplaneEvent::kRecovered) {
          auto it = last_confirm_.find(node);
          if (it != last_confirm_.end()) {
            dp_recover_.record((t - it->second).ps());
          }
        }
      });
}

void RunProbe::add_gauge_series(std::string name, std::function<double()> fn,
                                bool deterministic) {
  gauges_.push_back(
      CustomGauge{series_.add(std::move(name), deterministic), std::move(fn)});
}

void RunProbe::start(Simulator& sim, Time until) {
  sim_ = &sim;
  start_ = sim.now();
  last_tick_ = start_;
  pause_integral_t_ = start_;
  // Baseline the cumulative device counters so a probe attached to a warm
  // network reports per-interval deltas from here, not from time zero.
  last_drops_ = total_drops();
  const Topology& topo = net_.topo();
  std::size_t c = 0;
  for (std::size_t n = 0; n < topo.node_count(); ++n) {
    const NodeId node = static_cast<NodeId>(n);
    for (PortId p = 0; p < topo.degree(node); ++p) {
      last_tx_bytes_[c++] = net_.device(node).tx_byte_count(p);
    }
  }
  if (net_.sharded() && opts_.engine_series) {
    engine_windows_id_ = series_.add("engine.windows", /*deterministic=*/false);
    engine_stalls_id_ =
        series_.add("engine.window_stalls", /*deterministic=*/false);
    has_engine_series_ = true;
  }
  sampler_ = std::make_unique<IntervalSampler>(
      sim, opts_.interval, [this](Time t) { tick(t); });
  sampler_->start(until);
}

void RunProbe::advance_pause_integral(Time t) {
  pause_integral_ps_ += active_pauses_ * (t - pause_integral_t_).ps();
  pause_integral_t_ = t;
}

void RunProbe::tick(Time t) {
  advance_pause_integral(t);
  const std::int64_t dt_ps = (t - last_tick_).ps();

  series_.begin_tick(t);
  series_.set(queue_bytes_id_,
              static_cast<double>(net_.total_queued_bytes()));
  series_.set(delivered_id_, static_cast<double>(delivered_bytes_tick_));
  const std::uint64_t drops_now = total_drops();
  series_.set(drops_id_, static_cast<double>(drops_now - last_drops_));
  series_.set(active_pauses_id_, static_cast<double>(active_pauses_));
  series_.set(paused_frac_id_,
              dt_ps > 0 ? static_cast<double>(pause_integral_ps_ -
                                              pause_integral_mark_) /
                              static_cast<double>(dt_ps)
                        : 0.0);

  double util_max = 0.0;
  const Topology& topo = net_.topo();
  std::size_t c = 0;
  for (std::size_t n = 0; n < topo.node_count(); ++n) {
    const NodeId node = static_cast<NodeId>(n);
    for (PortId p = 0; p < topo.degree(node); ++p, ++c) {
      const std::uint64_t cum = net_.device(node).tx_byte_count(p);
      const std::uint64_t bytes = cum - last_tx_bytes_[c];
      last_tx_bytes_[c] = cum;
      // bits / (rate * seconds), all in exact integer inputs:
      //   util = bytes*8 / (bps * dt_ps / 1e12)
      const double util =
          dt_ps > 0 ? static_cast<double>(bytes) * 8.0e12 /
                          (static_cast<double>(chan_rate_bps_[c]) *
                           static_cast<double>(dt_ps))
                    : 0.0;
      if (!util_ids_.empty()) {
        series_.set(util_ids_[c], util);
      }
      util_max = std::max(util_max, util);
    }
  }
  series_.set(util_max_id_, util_max);

  for (const CustomGauge& g : gauges_) series_.set(g.id, g.fn());

  if (has_engine_series_) {
    const ShardedEngine::Stats& st = net_.engine().stats();
    std::uint64_t stalls = 0;
    for (const auto& sh : st.shard) stalls += sh.idle_windows;
    series_.set(engine_windows_id_,
                static_cast<double>(st.windows - last_windows_));
    series_.set(engine_stalls_id_,
                static_cast<double>(stalls - last_stalls_));
    last_windows_ = st.windows;
    last_stalls_ = stalls;
  }

  delivered_bytes_tick_ = 0;
  last_drops_ = drops_now;
  pause_integral_mark_ = pause_integral_ps_;
  last_tick_ = t;
}

std::uint64_t RunProbe::total_drops() const {
  std::uint64_t total = 0;
  for (int r = 0; r < kNumDropReasons; ++r) {
    total += net_.drops(static_cast<DropReason>(r));
  }
  return total;
}

void RunProbe::finalize() {
  if (finalized_) return;
  finalized_ = true;
  for (const FlowObs& f : flows_) {
    if (f.any) fct_.record((f.last_delivered - f.first_injected).ps());
  }
}

std::vector<RunProbe::NamedHist> RunProbe::histograms() const {
  return {{"fct", &fct_},
          {"pkt_latency", &pkt_latency_},
          {"hop_wait", &hop_wait_},
          {"pfc_pause", &pfc_pause_},
          {"dp_detect", &dp_detect_},
          {"dp_recover", &dp_recover_}};
}

std::vector<std::pair<std::string, double>> RunProbe::summary() const {
  std::vector<std::pair<std::string, double>> out;
  out.emplace_back("ticks", static_cast<double>(series_.total_ticks()));
  const auto series_stats = [&](const char* label, std::uint32_t id) {
    out.emplace_back(std::string(label) + ".max", series_.series_max(id));
    out.emplace_back(std::string(label) + ".mean", series_.series_mean(id));
  };
  series_stats("queue_bytes", queue_bytes_id_);
  series_stats("pfc.active_pauses", active_pauses_id_);
  series_stats("pfc.paused_frac", paused_frac_id_);
  series_stats("util.max", util_max_id_);
  for (const NamedHist& h : histograms()) {
    out.emplace_back(std::string(h.name) + ".count",
                     static_cast<double>(h.hist->count()));
    if (h.hist->empty()) continue;
    const std::string base(h.name);
    out.emplace_back(base + ".mean_us", h.hist->mean() / 1e6);
    out.emplace_back(base + ".p50_us",
                     static_cast<double>(h.hist->percentile(0.50)) / 1e6);
    out.emplace_back(base + ".p90_us",
                     static_cast<double>(h.hist->percentile(0.90)) / 1e6);
    out.emplace_back(base + ".p99_us",
                     static_cast<double>(h.hist->percentile(0.99)) / 1e6);
    out.emplace_back(base + ".p999_us",
                     static_cast<double>(h.hist->percentile(0.999)) / 1e6);
    out.emplace_back(base + ".max_us",
                     static_cast<double>(h.hist->max()) / 1e6);
  }
  return out;
}

}  // namespace dcdl::probe
