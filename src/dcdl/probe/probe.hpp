// dcdl::probe — always-on time-series and latency-distribution layer.
//
// RunProbe bundles three instruments over one run:
//
//   * An IntervalSampler (default 100 us, configurable) scheduled on the
//     scenario's externally visible simulator. In sharded runs that is the
//     control simulator, whose events execute at window barriers after all
//     device records up to the barrier have been replayed in globally
//     merged (time, channel, sequence) order — so every sampled value is a
//     pure function of the scenario, and the resulting series are
//     byte-identical across --jobs x --shards for every shard count >= 1
//     (legacy --shards 0 keeps its own identity class, exactly like the
//     trace artifacts). Samples land in a ring-buffered SeriesStore.
//
//   * Log-bucketed LogHistograms fed from trace hooks: flow completion
//     time, per-packet sojourn, per-hop queuing delay (the new
//     Trace::hop_wait hook), PFC pause duration (Xoff -> Xon per queue),
//     and dataplane detection / recovery latency.
//
//   * Per-interval accumulators behind the series: per-link utilization
//     and drops are read as device state at each tick (the devices keep
//     cumulative per-egress tx-byte and drop counters natively, so the
//     probe adds no per-transmission hook cost); delivered bytes and the
//     active-pause count plus its time integral (mean simultaneous pauses
//     per interval — the cascade-growth trajectory the paper's Section 2
//     narrates) come from the endpoint-rate trace hooks.
//
// The wall-clock self-profiler lives separately in probe/profiler.hpp;
// its output is nondeterministic and never mixes with these artifacts.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "dcdl/common/units.hpp"
#include "dcdl/device/network.hpp"
#include "dcdl/probe/histogram.hpp"
#include "dcdl/probe/series.hpp"
#include "dcdl/sim/simulator.hpp"

namespace dcdl::probe {

struct ProbeOptions {
  /// Sampling interval; ticks fire at start + k * interval.
  Time interval = Time{100'000'000};  // 100 us
  /// Retained ticks per series (ring; oldest evicted beyond this).
  std::size_t capacity = 1u << 12;
  /// Per-channel utilization series are emitted only when the topology has
  /// at most this many directed channels; larger fabrics keep the
  /// aggregate `util.max` series only, so artifact width stays bounded.
  std::size_t max_util_series = 128;
  /// Sample sharded-engine window/stall counters. These depend on the
  /// shard plan, so the series are flagged non-deterministic and excluded
  /// from golden artifacts.
  bool engine_series = true;
};

/// One recurring sim-time callback: fires at now + interval, re-arming
/// itself until `until` (inclusive). Scheduling on a sharded run's control
/// simulator makes each firing a window-barrier control event.
class IntervalSampler {
 public:
  IntervalSampler(Simulator& sim, Time interval, std::function<void(Time)> fn)
      : sim_(sim), interval_(interval), fn_(std::move(fn)) {}

  void start(Time until) {
    until_ = until;
    arm();
  }

 private:
  void arm() {
    const Time next = sim_.now() + interval_;
    if (next > until_) return;
    sim_.schedule_at(next, [this] {
      fn_(sim_.now());
      arm();
    });
  }

  Simulator& sim_;
  Time interval_;
  Time until_ = Time::zero();
  std::function<void(Time)> fn_;
};

class RunProbe {
 public:
  /// Chains observers onto `net`'s trace hooks; the probe must outlive the
  /// network's dispatches. Construct after the network, before the run.
  explicit RunProbe(Network& net, ProbeOptions opts = {});
  RunProbe(const RunProbe&) = delete;
  RunProbe& operator=(const RunProbe&) = delete;

  /// Registers an extra gauge sampled at every tick (e.g. the hybrid
  /// engine's fluid fraction). Call before start().
  void add_gauge_series(std::string name, std::function<double()> fn,
                        bool deterministic = true);

  /// Schedules the sampler on `sim`: ticks at now + k*interval up to and
  /// including `until`.
  void start(Simulator& sim, Time until);

  /// Closes per-flow bookkeeping: records one FCT observation per flow
  /// that delivered at least one packet (last delivery minus first
  /// injection — the completion span of dcdl's open-ended flows).
  /// Idempotent; call after the run, before exporting.
  void finalize();

  const SeriesStore& series() const { return series_; }
  Time interval() const { return opts_.interval; }
  Time start_time() const { return start_; }

  const LogHistogram& fct() const { return fct_; }
  const LogHistogram& pkt_latency() const { return pkt_latency_; }
  const LogHistogram& hop_wait() const { return hop_wait_; }
  const LogHistogram& pfc_pause() const { return pfc_pause_; }
  const LogHistogram& dp_detect() const { return dp_detect_; }
  const LogHistogram& dp_recover() const { return dp_recover_; }

  struct NamedHist {
    const char* name;
    const LogHistogram* hist;
  };
  /// Export view, fixed order (part of the dcdl.timeseries.v1 layout).
  std::vector<NamedHist> histograms() const;

  /// Deterministic scalar digest for campaign records: tick count, series
  /// aggregates, and count/mean/p50/p90/p99/p999/max (microseconds) per
  /// non-empty histogram.
  std::vector<std::pair<std::string, double>> summary() const;

 private:
  void attach_hooks();
  void tick(Time t);
  void advance_pause_integral(Time t);
  std::uint64_t total_drops() const;
  static std::uint64_t queue_key(NodeId node, PortId port, ClassId cls) {
    return (static_cast<std::uint64_t>(node) << 24) |
           (static_cast<std::uint64_t>(port) << 8) |
           static_cast<std::uint64_t>(cls);
  }

  Network& net_;
  ProbeOptions opts_;
  Simulator* sim_ = nullptr;
  std::unique_ptr<IntervalSampler> sampler_;
  Time start_ = Time::zero();
  Time last_tick_ = Time::zero();
  bool finalized_ = false;

  SeriesStore series_;
  std::uint32_t queue_bytes_id_ = 0;
  std::uint32_t delivered_id_ = 0;
  std::uint32_t drops_id_ = 0;
  std::uint32_t active_pauses_id_ = 0;
  std::uint32_t paused_frac_id_ = 0;
  std::uint32_t util_max_id_ = 0;
  std::vector<std::uint32_t> util_ids_;  ///< per channel, empty when capped
  struct CustomGauge {
    std::uint32_t id;
    std::function<double()> fn;
  };
  std::vector<CustomGauge> gauges_;
  std::uint32_t engine_windows_id_ = 0;
  std::uint32_t engine_stalls_id_ = 0;
  bool has_engine_series_ = false;
  std::uint64_t last_windows_ = 0;
  std::uint64_t last_stalls_ = 0;

  // Per-channel (node, egress port) accounting. Utilization diffs the
  // devices' cumulative tx-byte counters at each tick.
  std::vector<std::uint32_t> chan_offset_;  ///< node -> first channel index
  std::vector<std::int64_t> chan_rate_bps_;
  std::vector<std::uint64_t> last_tx_bytes_;  ///< cumulative, at last tick

  std::int64_t delivered_bytes_tick_ = 0;
  std::uint64_t last_drops_ = 0;  ///< cumulative, at last tick

  // PFC pause tracking.
  std::unordered_map<std::uint64_t, Time> open_xoff_;
  std::int64_t active_pauses_ = 0;
  std::int64_t pause_integral_ps_ = 0;  ///< sum of active * elapsed
  Time pause_integral_t_ = Time::zero();
  std::int64_t pause_integral_mark_ = 0;  ///< integral at last tick

  // Per-flow FCT bookkeeping.
  struct FlowObs {
    Time first_injected = Time::zero();
    Time last_delivered = Time::zero();
    bool any = false;
  };
  std::vector<FlowObs> flows_;

  // Dataplane latency bookkeeping.
  std::unordered_map<std::uint32_t, Time> last_confirm_;

  LogHistogram fct_;
  LogHistogram pkt_latency_;
  LogHistogram hop_wait_;
  LogHistogram pfc_pause_;
  LogHistogram dp_detect_;
  LogHistogram dp_recover_;
};

}  // namespace dcdl::probe
