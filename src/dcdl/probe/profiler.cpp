#include "dcdl/probe/profiler.hpp"

#include <cinttypes>
#include <cstdio>

namespace dcdl::probe {

Profiler*& Profiler::current() {
  static thread_local Profiler* tls = nullptr;
  return tls;
}

const char* Profiler::span_name(Span s) {
  switch (s) {
    case Span::kEventLoop: return "event_loop";
    case Span::kDevicePass: return "device_pass";
    case Span::kBarrierWait: return "barrier_wait";
    case Span::kMailboxes: return "mailboxes";
    case Span::kReplay: return "replay";
    case Span::kControlPhase: return "control_phase";
    case Span::kFluidStep: return "fluid_step";
    case Span::kDataplane: return "dataplane";
  }
  return "?";
}

std::string Profiler::report() const {
  std::string out =
      "span            calls        wall_ms        units   ns/unit\n";
  char line[160];
  for (int i = 0; i < kNumSpans; ++i) {
    const Accum& a = spans_[i];
    if (a.calls == 0) continue;
    const double ms = static_cast<double>(a.wall_ns) / 1e6;
    if (a.units > 0) {
      std::snprintf(line, sizeof(line),
                    "%-14s %6" PRIu64 " %14.3f %12" PRIu64 " %9.1f\n",
                    span_name(static_cast<Span>(i)), a.calls, ms, a.units,
                    static_cast<double>(a.wall_ns) /
                        static_cast<double>(a.units));
    } else {
      std::snprintf(line, sizeof(line),
                    "%-14s %6" PRIu64 " %14.3f %12s %9s\n",
                    span_name(static_cast<Span>(i)), a.calls, ms, "-", "-");
    }
    out += line;
  }
  return out;
}

}  // namespace dcdl::probe
