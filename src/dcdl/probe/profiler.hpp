// Wall-clock engine self-profiler: scoped span accumulators around the
// simulator's coarse phases (event loop, device pass, barrier wait, trace
// replay, control phase, fluid step, dataplane resolution) so "where does
// simulator time actually go" is answerable without an external profiler.
//
// Design constraints, in order:
//   1. Zero cost when off. Instrumented sites read one thread_local
//      pointer; with no profiler installed that is a load + branch and no
//      clock call. Installation is explicit (--profile) and scoped.
//   2. Thread-safety without atomics. The profiler pointer is
//      thread_local, and only the thread that installs it ever writes
//      spans — shard worker threads see a null pointer and record
//      nothing. No cross-thread writes exist, so TSan cleanliness is by
//      construction (same argument as the sharded engine's barriers).
//   3. Honest granularity. Spans wrap phases, not individual heap pops:
//      timing every event would cost two clock reads per event — far more
//      than the probe layer's own <5% overhead budget. The event-loop
//      span instead carries the executed-event delta, so per-event cost
//      is derivable (total_ns / events) without per-event clocks.
//
// Profiler output is wall-clock and therefore nondeterministic; it is
// never written into golden artifacts (trace JSON, timeseries JSONL,
// campaign records) — only to stderr/stdout reports behind --profile.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>

namespace dcdl::probe {

class Profiler {
 public:
  enum class Span : std::uint8_t {
    kEventLoop = 0,     ///< Simulator::run_until / run drain loops
    kDevicePass = 1,    ///< sharded: coordinator view of one device window
    kBarrierWait = 2,   ///< sharded: coordinator blocked on window barriers
    kMailboxes = 3,     ///< sharded: cross-shard mailbox drain
    kReplay = 4,        ///< sharded: merged trace-record replay
    kControlPhase = 5,  ///< sharded: control-simulator drain at a barrier
    kFluidStep = 6,     ///< hybrid: fluid-model integration step
    kDataplane = 7,     ///< dataplane: tag/verdict/recovery resolution
  };
  static constexpr int kNumSpans = 8;

  struct Accum {
    std::uint64_t wall_ns = 0;
    std::uint64_t calls = 0;
    std::uint64_t units = 0;  ///< span-specific work count (events, records)
  };

  /// The installing thread's active profiler (null when profiling is off).
  static Profiler*& current();

  /// RAII install/uninstall on the constructing thread.
  class ScopedInstall {
   public:
    explicit ScopedInstall(Profiler& p) : prev_(current()) { current() = &p; }
    ~ScopedInstall() { current() = prev_; }
    ScopedInstall(const ScopedInstall&) = delete;
    ScopedInstall& operator=(const ScopedInstall&) = delete;

   private:
    Profiler* prev_;
  };

  /// RAII span: no-op (no clock call) when no profiler is installed.
  /// `add_units` before destruction attributes work items to the span.
  class Scope {
   public:
    explicit Scope(Span s) : p_(current()), span_(s) {
      if (p_ != nullptr) t0_ = std::chrono::steady_clock::now();
    }
    ~Scope() {
      if (p_ != nullptr) {
        const auto dt = std::chrono::steady_clock::now() - t0_;
        p_->add(span_,
                static_cast<std::uint64_t>(
                    std::chrono::duration_cast<std::chrono::nanoseconds>(dt)
                        .count()),
                units_);
      }
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

    void add_units(std::uint64_t n) { units_ += n; }

   private:
    Profiler* p_;
    Span span_;
    std::uint64_t units_ = 0;
    std::chrono::steady_clock::time_point t0_{};
  };

  void add(Span s, std::uint64_t wall_ns, std::uint64_t units = 0) {
    Accum& a = spans_[static_cast<int>(s)];
    a.wall_ns += wall_ns;
    ++a.calls;
    a.units += units;
  }

  const Accum& at(Span s) const { return spans_[static_cast<int>(s)]; }

  /// Aligned text table (spans with zero calls omitted). Spans nest —
  /// e.g. a fluid step runs inside the event loop — so columns are
  /// inclusive wall time, not a partition of the run.
  std::string report() const;

  static const char* span_name(Span s);

 private:
  Accum spans_[kNumSpans] = {};
};

}  // namespace dcdl::probe
