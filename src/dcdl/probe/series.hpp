// Ring-buffered time series: one shared timestamp column plus one double
// column per registered series, written a whole row ("tick") at a time by
// the IntervalSampler and evicting the oldest row once capacity is hit.
//
// Registration (add) happens at probe setup; after the first tick the
// layout is frozen and every write is an indexed store into preallocated
// storage — the sampler never allocates during a run.
//
// Series carry a `deterministic` flag: deterministic series are pure
// functions of the scenario (queue bytes, pause counts, utilization) and
// land in exported artifacts that must be byte-identical across
// --jobs x --shards; non-deterministic ones (engine window/stall counts,
// which depend on the shard plan) are retained for interactive inspection
// but excluded from golden artifacts by default.
#pragma once

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

#include "dcdl/common/units.hpp"

namespace dcdl::probe {

class SeriesStore {
 public:
  explicit SeriesStore(std::size_t capacity = 1u << 12)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  /// Registers a series; must be called before the first begin_tick.
  std::uint32_t add(std::string name, bool deterministic = true) {
    assert(total_ticks_ == 0 && "series layout is frozen after the first tick");
    names_.push_back(std::move(name));
    deterministic_.push_back(deterministic);
    return static_cast<std::uint32_t>(names_.size() - 1);
  }

  std::size_t num_series() const { return names_.size(); }
  const std::string& name(std::uint32_t id) const { return names_[id]; }
  bool deterministic(std::uint32_t id) const { return deterministic_[id]; }

  /// Opens the row for time `t` (zero-filled); evicts the oldest row when
  /// the ring is full. First call freezes the series layout.
  void begin_tick(Time t) {
    if (total_ticks_ == 0) {
      times_.resize(capacity_);
      values_.resize(capacity_ * names_.size(), 0.0);
    }
    cur_ = static_cast<std::size_t>(total_ticks_ % capacity_);
    times_[cur_] = t;
    double* row = &values_[cur_ * names_.size()];
    for (std::size_t i = 0; i < names_.size(); ++i) row[i] = 0.0;
    ++total_ticks_;
  }

  /// Writes one value into the currently open row.
  void set(std::uint32_t id, double v) {
    values_[cur_ * names_.size() + id] = v;
  }

  /// Rows currently retained (<= capacity).
  std::size_t ticks() const {
    return total_ticks_ < capacity_ ? static_cast<std::size_t>(total_ticks_)
                                    : capacity_;
  }
  /// Rows ever written (> ticks() once the ring wrapped).
  std::uint64_t total_ticks() const { return total_ticks_; }
  std::uint64_t dropped_ticks() const { return total_ticks_ - ticks(); }
  std::size_t capacity() const { return capacity_; }

  /// k-th retained row, oldest first.
  Time tick_time(std::size_t k) const { return times_[slot(k)]; }
  double value(std::size_t k, std::uint32_t id) const {
    return values_[slot(k) * names_.size() + id];
  }

  double series_max(std::uint32_t id) const {
    double m = 0.0;
    for (std::size_t k = 0; k < ticks(); ++k) {
      const double v = value(k, id);
      if (k == 0 || v > m) m = v;
    }
    return m;
  }
  double series_mean(std::uint32_t id) const {
    if (ticks() == 0) return 0.0;
    double s = 0.0;
    for (std::size_t k = 0; k < ticks(); ++k) s += value(k, id);
    return s / static_cast<double>(ticks());
  }

 private:
  std::size_t slot(std::size_t k) const {
    return static_cast<std::size_t>((total_ticks_ - ticks() + k) % capacity_);
  }

  std::size_t capacity_;
  std::vector<std::string> names_;
  std::vector<bool> deterministic_;
  std::vector<Time> times_;    ///< ring, capacity_ entries
  std::vector<double> values_; ///< ring, capacity_ * num_series entries
  std::size_t cur_ = 0;
  std::uint64_t total_ticks_ = 0;
};

}  // namespace dcdl::probe
