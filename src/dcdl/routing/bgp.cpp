#include "dcdl/routing/bgp.hpp"

#include <algorithm>

#include "dcdl/common/contract.hpp"
#include "dcdl/device/switch.hpp"
#include "dcdl/routing/compute.hpp"

namespace dcdl::routing {

BgpFabric::BgpFabric(Network& net, Params params)
    : net_(net), params_(params), rng_(params.seed) {
  rib_.resize(net.topo().node_count());
  best_.resize(net.topo().node_count());
}

void BgpFabric::start() {
  const Topology& topo = net_.topo();
  for (const NodeId sw : topo.switches()) {
    const auto& ports = topo.ports(sw);
    for (PortId p = 0; p < ports.size(); ++p) {
      const NodeId peer = ports[p].peer_node;
      if (!topo.is_host(peer)) continue;
      best_[sw][peer] = std::vector<NodeId>{};  // directly attached
      net_.switch_at(sw).routes().set_dst_route(peer, p);
      advertise(sw, peer);
    }
  }
}

void BgpFabric::send(NodeId from, PortId port, Advertisement adv) {
  const Topology& topo = net_.topo();
  const PortPeer& pp = topo.peer(from, port);
  if (!topo.is_switch(pp.peer_node)) return;
  const std::uint32_t link = pp.link;
  if (link_failed(link)) return;
  ++messages_sent_;
  ++pending_messages_;
  const Time latency =
      topo.link(link).delay + params_.processing_delay +
      Time{static_cast<std::int64_t>(rng_.uniform(
          static_cast<std::uint64_t>(params_.processing_jitter.ps()) + 1))};
  const NodeId to = pp.peer_node;
  const PortId in_port = pp.peer_port;
  net_.sim().schedule_in(latency, [this, to, in_port, link, adv] {
    --pending_messages_;
    if (link_failed(link)) return;  // lost with the adjacency
    deliver(to, in_port, adv);
  });
}

void BgpFabric::advertise(NodeId sw, NodeId dst) {
  const Topology& topo = net_.topo();
  const auto& best = best_[sw][dst];
  Advertisement adv;
  adv.dst = dst;
  adv.withdraw = !best.has_value();
  if (best) {
    adv.as_path.reserve(best->size() + 1);
    adv.as_path.push_back(sw);
    adv.as_path.insert(adv.as_path.end(), best->begin(), best->end());
  }
  const auto& ports = topo.ports(sw);
  for (PortId p = 0; p < ports.size(); ++p) {
    if (topo.is_switch(ports[p].peer_node)) send(sw, p, adv);
  }
}

void BgpFabric::deliver(NodeId to, PortId in_port, Advertisement adv) {
  auto& per_dst = rib_[to][adv.dst];
  if (adv.withdraw) {
    per_dst.erase(in_port);
  } else {
    per_dst[in_port] = adv.as_path;
  }
  reselect(to, adv.dst);
}

void BgpFabric::reselect(NodeId sw, NodeId dst) {
  // Direct attachment always wins and never changes; skip reselection.
  if (const auto it = best_[sw].find(dst);
      it != best_[sw].end() && it->second && it->second->empty()) {
    return;
  }

  const auto& per_dst = rib_[sw][dst];
  std::optional<std::vector<NodeId>> new_best;
  PortId new_port = kInvalidPort;
  for (const auto& [port, path] : per_dst) {
    // AS-path loop prevention.
    if (std::find(path.begin(), path.end(), sw) != path.end()) continue;
    if (!new_best || path.size() < new_best->size() ||
        (path.size() == new_best->size() && port < new_port)) {
      new_best = path;
      new_port = port;
    }
  }

  auto& cur = best_[sw][dst];
  if (cur == new_best && (!new_best || cur == new_best)) {
    // Same path selection; still make sure the egress matches (same path
    // length via a different neighbour counts as a change below).
  }
  const bool changed = cur != new_best;
  if (!changed) return;
  cur = new_best;
  if (new_best) {
    net_.switch_at(sw).routes().set_dst_route(dst, new_port);
  } else {
    net_.switch_at(sw).routes().clear_dst_route(dst);
  }
  net_.notify_routes_changed(sw);
  advertise(sw, dst);
}

void BgpFabric::fail_link(std::uint32_t link) {
  DCDL_EXPECTS(!link_failed(link));
  failed_links_.insert(link);
  const LinkSpec& l = net_.topo().link(link);
  for (const auto& [sw, port] :
       {std::pair{l.a, l.port_a}, std::pair{l.b, l.port_b}}) {
    if (!net_.topo().is_switch(sw)) continue;
    const NodeId peer = net_.topo().peer(sw, port).peer_node;
    if (net_.topo().is_host(peer)) {
      // Lost a directly attached host: withdraw it.
      best_[sw][peer] = std::nullopt;
      net_.switch_at(sw).routes().clear_dst_route(peer);
      advertise(sw, peer);
      continue;
    }
    // Drop every path learned over this port and reselect.
    std::vector<NodeId> affected;
    for (auto& [dst, paths] : rib_[sw]) {
      if (paths.erase(port) > 0) affected.push_back(dst);
    }
    for (const NodeId dst : affected) reselect(sw, dst);
  }
}

void BgpFabric::restore_link(std::uint32_t link) {
  DCDL_EXPECTS(link_failed(link));
  failed_links_.erase(link);
  const LinkSpec& l = net_.topo().link(link);
  for (const auto& [sw, port] :
       {std::pair{l.a, l.port_a}, std::pair{l.b, l.port_b}}) {
    if (!net_.topo().is_switch(sw)) continue;
    const NodeId peer = net_.topo().peer(sw, port).peer_node;
    if (net_.topo().is_host(peer)) {
      best_[sw][peer] = std::vector<NodeId>{};
      net_.switch_at(sw).routes().set_dst_route(peer, port);
      advertise(sw, peer);
      continue;
    }
    // Full-table exchange over the restored adjacency.
    for (const auto& [dst, best] : best_[sw]) {
      if (!best) continue;
      Advertisement adv;
      adv.dst = dst;
      adv.withdraw = false;
      adv.as_path.push_back(sw);
      adv.as_path.insert(adv.as_path.end(), best->begin(), best->end());
      send(sw, port, adv);
    }
  }
}

std::optional<std::vector<NodeId>> BgpFabric::find_loop(const Network& net,
                                                        NodeId dst) {
  return find_forwarding_loop(net, dst);
}

}  // namespace dcdl::routing
