// BGP-like distributed path-vector routing substrate.
//
// The paper (§1, footnote 1): "In our datacenters, we use BGP for routing,
// with each switch being a private AS ... deadlocks can occur when
// transient loops form ... as BGP re-routes around link failures."
//
// Model: per destination host, switches exchange path advertisements with
// their switch neighbours. Best path = shortest AS path (tie-break on
// neighbour id); AS-path loop prevention rejects paths containing the
// receiver. Every received update is processed after `processing_delay`
// (plus link propagation), and a changed best path triggers advertisements
// to all neighbours. Routes are installed into the live switch tables the
// moment they are selected — so while withdrawals race stale alternates,
// the data plane can carry genuine transient micro-loops, which is exactly
// the deadlock trigger under study.
//
// Control-plane messages ride out-of-band scheduled callbacks (production
// fabrics prioritize/segregate control traffic); only their latency is
// modelled.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "dcdl/common/rng.hpp"
#include "dcdl/common/units.hpp"
#include "dcdl/device/network.hpp"

namespace dcdl::routing {

class BgpFabric {
 public:
  struct Params {
    /// Fixed per-message processing latency at the receiver.
    Time processing_delay = Time{50'000'000};  // 50 us
    /// Extra uniform jitter added per message (models CPU scheduling
    /// variance; makes convergence realistically asynchronous).
    Time processing_jitter = Time{50'000'000};  // up to +50 us
    std::uint64_t seed = 7;
  };

  BgpFabric(Network& net, Params params);

  /// Originates routes for every host destination (call once, then run the
  /// simulator until converged()).
  void start();

  /// Fails a switch-switch link now: both endpoints drop adjacency state
  /// and re-converge. Data already queued keeps flowing (the link itself
  /// is only logically removed from routing — the paper's concern is the
  /// routing churn, not the link's physics).
  void fail_link(std::uint32_t link);

  /// Restores a previously failed link; endpoints re-advertise in full.
  void restore_link(std::uint32_t link);

  /// True when no control messages or pending advertisements remain.
  bool converged() const { return pending_messages_ == 0; }

  std::uint64_t messages_sent() const { return messages_sent_; }

  /// Walks the installed tables: returns a forwarding loop (switch cycle)
  /// for `dst` if one currently exists.
  static std::optional<std::vector<NodeId>> find_loop(const Network& net,
                                                      NodeId dst);

 private:
  struct Advertisement {
    NodeId dst;
    bool withdraw;
    std::vector<NodeId> as_path;  // sender first
  };

  void deliver(NodeId to, PortId in_port, Advertisement adv);
  void reselect(NodeId sw, NodeId dst);
  void advertise(NodeId sw, NodeId dst);
  void send(NodeId from, PortId port, Advertisement adv);
  bool link_failed(std::uint32_t link) const {
    return failed_links_.count(link) > 0;
  }

  Network& net_;
  Params params_;
  Rng rng_;
  // rib_in[sw][dst][in_port] = path as received (empty vector = direct).
  std::vector<std::map<NodeId, std::map<PortId, std::vector<NodeId>>>> rib_;
  // Selected best path per (sw, dst); nullopt = unreachable.
  std::vector<std::map<NodeId, std::optional<std::vector<NodeId>>>> best_;
  std::set<std::uint32_t> failed_links_;
  std::uint64_t pending_messages_ = 0;
  std::uint64_t messages_sent_ = 0;
};

}  // namespace dcdl::routing
