#include "dcdl/routing/compute.hpp"

#include <algorithm>
#include <deque>
#include <limits>

#include "dcdl/common/contract.hpp"
#include "dcdl/device/switch.hpp"

namespace dcdl::routing {

namespace {
constexpr int kInf = std::numeric_limits<int>::max() / 2;
}  // namespace

std::vector<int> hop_distances(const Topology& topo, NodeId dst) {
  std::vector<int> dist(topo.node_count(), kInf);
  std::deque<NodeId> frontier{dst};
  dist[dst] = 0;
  while (!frontier.empty()) {
    const NodeId cur = frontier.front();
    frontier.pop_front();
    // Hosts other than dst never relay traffic.
    if (topo.is_host(cur) && cur != dst) continue;
    for (const auto& pp : topo.ports(cur)) {
      if (dist[pp.peer_node] > dist[cur] + 1) {
        dist[pp.peer_node] = dist[cur] + 1;
        frontier.push_back(pp.peer_node);
      }
    }
  }
  return dist;
}

void install_shortest_paths(Network& net, bool ecmp) {
  const Topology& topo = net.topo();
  for (const NodeId dst : topo.hosts()) {
    const std::vector<int> dist = hop_distances(topo, dst);
    for (const NodeId sw : topo.switches()) {
      if (dist[sw] >= kInf) continue;
      std::vector<PortId> next;
      const auto& ports = topo.ports(sw);
      for (PortId p = 0; p < ports.size(); ++p) {
        const NodeId peer = ports[p].peer_node;
        if (topo.is_host(peer) && peer != dst) continue;
        if (dist[peer] == dist[sw] - 1) {
          next.push_back(p);
          if (!ecmp) break;
        }
      }
      if (!next.empty()) net.switch_at(sw).routes().set_dst_ecmp(dst, next);
    }
  }
}

void install_flow_path(Network& net, FlowId flow,
                       const std::vector<NodeId>& path) {
  const Topology& topo = net.topo();
  DCDL_EXPECTS(path.size() >= 2);
  DCDL_EXPECTS(topo.is_host(path.front()));
  DCDL_EXPECTS(topo.is_host(path.back()));
  for (std::size_t i = 1; i + 1 < path.size(); ++i) {
    DCDL_EXPECTS(topo.is_switch(path[i]));
    const auto egress = topo.port_towards(path[i], path[i + 1]);
    DCDL_EXPECTS(egress.has_value());
    net.switch_at(path[i]).routes().set_flow_route(flow, *egress);
  }
}

void install_loop_route(Network& net, NodeId dst,
                        const std::vector<NodeId>& cycle) {
  const Topology& topo = net.topo();
  DCDL_EXPECTS(cycle.size() >= 2);
  for (std::size_t i = 0; i < cycle.size(); ++i) {
    const NodeId cur = cycle[i];
    const NodeId nxt = cycle[(i + 1) % cycle.size()];
    DCDL_EXPECTS(topo.is_switch(cur));
    const auto egress = topo.port_towards(cur, nxt);
    DCDL_EXPECTS(egress.has_value());
    net.switch_at(cur).routes().set_dst_route(dst, *egress);
  }
}

std::vector<int> up_down_levels(const Topology& topo) {
  // Classic up*/down*: orient every link by a BFS spanning order from a
  // root switch ("up" = toward the root). The root is the highest-tier
  // switch (ties: largest id), so on fat-trees the orientation agrees with
  // the tier structure, and on flat topologies (Jellyfish) the BFS order
  // still guarantees every pair is connected by an up*down* path (up to
  // the root, down from it, or shorter).
  NodeId root = kInvalidNode;
  for (const NodeId sw : topo.switches()) {
    if (root == kInvalidNode ||
        std::pair(topo.node(sw).tier, sw) >
            std::pair(topo.node(root).tier, root)) {
      root = sw;
    }
  }
  DCDL_EXPECTS(root != kInvalidNode);
  std::vector<int> level(topo.node_count(), kInf);
  std::deque<NodeId> frontier{root};
  level[root] = 0;
  while (!frontier.empty()) {
    const NodeId cur = frontier.front();
    frontier.pop_front();
    for (const auto& pp : topo.ports(cur)) {
      if (!topo.is_switch(pp.peer_node)) continue;
      if (level[pp.peer_node] > level[cur] + 1) {
        level[pp.peer_node] = level[cur] + 1;
        frontier.push_back(pp.peer_node);
      }
    }
  }
  // Hosts sit strictly below their switch.
  for (const NodeId h : topo.hosts()) {
    level[h] = level[topo.peer(h, 0).peer_node] + 1;
  }
  return level;
}

void install_up_down(Network& net, bool ecmp) {
  const Topology& topo = net.topo();
  const std::vector<int> level = up_down_levels(topo);
  const auto is_up = [&](NodeId from, NodeId to) {
    if (level[to] != level[from]) return level[to] < level[from];
    return to < from;
  };

  for (const NodeId dst : topo.hosts()) {
    // D[x]: shortest distance from x to dst using only down moves.
    // Computed by BFS from dst along reverse-down (i.e. up) edges.
    std::vector<int> down_dist(topo.node_count(), kInf);
    down_dist[dst] = 0;
    std::deque<NodeId> frontier{dst};
    while (!frontier.empty()) {
      const NodeId cur = frontier.front();
      frontier.pop_front();
      if (topo.is_host(cur) && cur != dst) continue;
      for (const auto& pp : topo.ports(cur)) {
        const NodeId up_node = pp.peer_node;
        if (!is_up(cur, up_node)) continue;  // need up edge cur -> up_node
        if (down_dist[up_node] > down_dist[cur] + 1) {
          down_dist[up_node] = down_dist[cur] + 1;
          frontier.push_back(up_node);
        }
      }
    }
    // C[x]: shortest up*down* distance. Seed with D, relax up edges to a
    // fixpoint (Bellman-Ford; the up relation is acyclic so this is cheap).
    std::vector<int> cost = down_dist;
    bool changed = true;
    while (changed) {
      changed = false;
      for (const NodeId sw : topo.switches()) {
        for (const auto& pp : topo.ports(sw)) {
          if (!topo.is_switch(pp.peer_node)) continue;
          if (!is_up(sw, pp.peer_node)) continue;
          if (cost[pp.peer_node] < kInf &&
              cost[sw] > cost[pp.peer_node] + 1) {
            cost[sw] = cost[pp.peer_node] + 1;
            changed = true;
          }
        }
      }
    }

    for (const NodeId sw : topo.switches()) {
      std::vector<PortId> next;
      const auto& ports = topo.ports(sw);
      if (down_dist[sw] < kInf) {
        // Destination lies below: go down along shortest down paths.
        for (PortId p = 0; p < ports.size(); ++p) {
          const NodeId peer = ports[p].peer_node;
          if (topo.is_host(peer) && peer != dst) continue;
          if (is_up(sw, peer)) continue;
          if (down_dist[peer] == down_dist[sw] - 1) next.push_back(p);
        }
      } else if (cost[sw] < kInf) {
        // Go up toward the cheapest up neighbour.
        int best = kInf;
        for (PortId p = 0; p < ports.size(); ++p) {
          const NodeId peer = ports[p].peer_node;
          if (!topo.is_switch(peer) || !is_up(sw, peer)) continue;
          best = std::min(best, cost[peer]);
        }
        for (PortId p = 0; p < ports.size(); ++p) {
          const NodeId peer = ports[p].peer_node;
          if (!topo.is_switch(peer) || !is_up(sw, peer)) continue;
          if (cost[peer] == best) next.push_back(p);
        }
      }
      if (!next.empty()) {
        if (!ecmp) next.resize(1);
        net.switch_at(sw).routes().set_dst_ecmp(dst, next);
      }
    }
  }
}

std::vector<NodeId> shortest_path(const Topology& topo, NodeId src_host,
                                  NodeId dst_host) {
  const std::vector<int> dist = hop_distances(topo, dst_host);
  if (dist[src_host] >= kInf) return {};
  std::vector<NodeId> path{src_host};
  NodeId cur = src_host;
  while (cur != dst_host) {
    NodeId best = kInvalidNode;
    for (const auto& pp : topo.ports(cur)) {
      if (topo.is_host(pp.peer_node) && pp.peer_node != dst_host) continue;
      if (dist[pp.peer_node] == dist[cur] - 1) {
        best = pp.peer_node;
        break;
      }
    }
    DCDL_ASSERT(best != kInvalidNode);
    path.push_back(best);
    cur = best;
  }
  return path;
}

std::optional<std::vector<NodeId>> find_forwarding_loop(const Network& net,
                                                        NodeId dst) {
  const Topology& topo = net.topo();
  // 0 = unvisited, 1 = on current walk, 2 = known loop-free.
  std::vector<int> color(topo.node_count(), 0);
  for (const NodeId start : topo.switches()) {
    if (color[start] != 0) continue;
    std::vector<NodeId> trail;
    NodeId cur = start;
    while (true) {
      if (!topo.is_switch(cur)) break;  // reached a host: done
      if (color[cur] == 1) {
        const auto begin = std::find(trail.begin(), trail.end(), cur);
        return std::vector<NodeId>(begin, trail.end());
      }
      if (color[cur] == 2) break;
      color[cur] = 1;
      trail.push_back(cur);
      const auto egress = net.switch_at(cur).routes().lookup(0, dst);
      if (!egress) break;  // blackhole: no loop this way
      cur = topo.peer(cur, *egress).peer_node;
    }
    for (const NodeId n : trail) color[n] = 2;
  }
  return std::nullopt;
}

}  // namespace dcdl::routing
