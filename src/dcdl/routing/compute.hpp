// Route computation and installation.
//
// The paper's case studies pin exact per-flow paths ("we configure static
// routing on all switches so that flow paths are enforced"); the fabric
// experiments use destination-based shortest-path/ECMP; the baseline uses
// up*/down* (valley-free) routing, which is deadlock-free on tiered
// topologies; and the routing-loop experiments install a deliberate
// forwarding cycle for one destination.
#pragma once

#include <optional>
#include <vector>

#include "dcdl/device/network.hpp"
#include "dcdl/net/packet.hpp"
#include "dcdl/topo/topology.hpp"

namespace dcdl::routing {

/// Installs hop-count shortest-path routes for every host destination on
/// every switch. With `ecmp` true all equal-cost next hops are installed
/// (selection by deterministic per-switch flow hash), else only the first.
void install_shortest_paths(Network& net, bool ecmp = true);

/// Installs an exact path for one flow. `path` = [src_host, sw0, sw1, ...,
/// dst_host]; consecutive nodes must be adjacent. Only switch hops get
/// table entries (hosts always transmit on their single port).
void install_flow_path(Network& net, FlowId flow,
                       const std::vector<NodeId>& path);

/// Installs destination-based forwarding for `dst` along a switch cycle:
/// cycle[i] forwards to cycle[i+1], the last back to the first. Any packet
/// for `dst` entering the cycle loops until its TTL drains (paper §3.1).
void install_loop_route(Network& net, NodeId dst,
                        const std::vector<NodeId>& cycle);

/// Up*/down* (valley-free) routing on a tiered topology: a legal path goes
/// up zero or more tiers, then down zero or more tiers. On trees this is
/// deadlock-free (Stephens et al., the paper's routing-restriction
/// baseline). Ordering between nodes uses (tier, id). Destinations that are
/// unreachable under the restriction simply get no entry.
void install_up_down(Network& net, bool ecmp = true);

/// The node ordering install_up_down orients links by: BFS levels from the
/// root switch (highest (tier, id)); hosts sit one level below their
/// switch. "Up" = strictly smaller (level, id). Exposed so analyses and
/// tests can verify valley-freedom against the same orientation.
std::vector<int> up_down_levels(const Topology& topo);

/// Pure computation used by tests and analysis: hop distances from every
/// node to `dst` over switch-switch and switch-host links.
std::vector<int> hop_distances(const Topology& topo, NodeId dst);

/// One shortest path (node sequence) from src host to dst host, or empty if
/// unreachable.
std::vector<NodeId> shortest_path(const Topology& topo, NodeId src_host,
                                  NodeId dst_host);

/// Walks the installed destination-based tables for `dst` from every
/// switch; returns a forwarding loop (switch cycle) if one currently
/// exists. Used to observe transient micro-loops during BGP convergence
/// and SDN updates.
std::optional<std::vector<NodeId>> find_forwarding_loop(const Network& net,
                                                        NodeId dst);

}  // namespace dcdl::routing
