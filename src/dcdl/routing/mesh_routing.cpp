#include "dcdl/routing/mesh_routing.hpp"

#include "dcdl/common/contract.hpp"
#include "dcdl/common/rng.hpp"
#include "dcdl/device/switch.hpp"

namespace dcdl::routing {

namespace {

// Installs one destination's routes with row-first (xy=true) or
// column-first (xy=false) order.
void install_one(Network& net, const topo::MeshTopo& mesh, int dst_r,
                 int dst_c, bool xy) {
  const NodeId dst_host = mesh.host[static_cast<std::size_t>(dst_r)]
                                   [static_cast<std::size_t>(dst_c)];
  for (int r = 0; r < mesh.rows; ++r) {
    for (int c = 0; c < mesh.cols; ++c) {
      const NodeId sw = mesh.sw[static_cast<std::size_t>(r)]
                               [static_cast<std::size_t>(c)];
      NodeId next;
      if (r == dst_r && c == dst_c) {
        next = dst_host;
      } else if (xy ? c != dst_c : r == dst_r) {
        // Correct the column index (east/west move).
        const int nc = c + (dst_c > c ? 1 : -1);
        next = mesh.sw[static_cast<std::size_t>(r)]
                      [static_cast<std::size_t>(nc)];
      } else {
        // Correct the row index (north/south move).
        const int nr = r + (dst_r > r ? 1 : -1);
        next = mesh.sw[static_cast<std::size_t>(nr)]
                      [static_cast<std::size_t>(c)];
      }
      const auto port = net.topo().port_towards(sw, next);
      DCDL_ASSERT(port.has_value());
      net.switch_at(sw).routes().set_dst_route(dst_host, *port);
    }
  }
}

}  // namespace

void install_xy_routing(Network& net, const topo::MeshTopo& mesh) {
  for (int r = 0; r < mesh.rows; ++r) {
    for (int c = 0; c < mesh.cols; ++c) install_one(net, mesh, r, c, true);
  }
}

void install_yx_routing(Network& net, const topo::MeshTopo& mesh) {
  for (int r = 0; r < mesh.rows; ++r) {
    for (int c = 0; c < mesh.cols; ++c) install_one(net, mesh, r, c, false);
  }
}

void install_mixed_xy_yx(Network& net, const topo::MeshTopo& mesh,
                         std::uint64_t seed) {
  Rng rng(seed);
  for (int r = 0; r < mesh.rows; ++r) {
    for (int c = 0; c < mesh.cols; ++c) {
      install_one(net, mesh, r, c, rng.uniform(2) == 0);
    }
  }
}

void install_mesh_route(Network& net, const topo::MeshTopo& mesh, int dst_r,
                        int dst_c, bool xy) {
  install_one(net, mesh, dst_r, dst_c, xy);
}

}  // namespace dcdl::routing
