// Turn-model routing on 2D meshes (the paper's reference [22], Wu's
// odd-even turn model, belongs to this family). Dimension-order (XY)
// routing forbids half of all turns and is the classic deadlock-free
// baseline; mixing XY and YX per destination re-introduces the forbidden
// turn combinations and with them cyclic buffer dependencies — a compact
// demonstration that deadlock-freedom is a property of the *turn set*,
// not of the topology.
#pragma once

#include <cstdint>

#include "dcdl/device/network.hpp"
#include "dcdl/topo/generators.hpp"

namespace dcdl::routing {

/// Dimension-order XY routing: correct column first... no — row first:
/// packets travel along their row (X/east-west) to the destination's
/// column, then along the column (Y/north-south). Only four of the eight
/// turns occur, the channel dependency graph is acyclic, and the mesh is
/// deadlock-free for any traffic (Dally-Seitz).
void install_xy_routing(Network& net, const topo::MeshTopo& mesh);

/// YX routing (column first): equally deadlock-free on its own.
void install_yx_routing(Network& net, const topo::MeshTopo& mesh);

/// Per-destination random mix of XY and YX: each destination is routed
/// consistently (no loops), but the union of turn sets is the full eight
/// turns, so cyclic buffer dependencies appear across destinations — the
/// misconfiguration analogue for NoC-style fabrics.
void install_mixed_xy_yx(Network& net, const topo::MeshTopo& mesh,
                         std::uint64_t seed);

/// Routes a single destination (given by mesh coordinates) with row-first
/// (xy=true) or column-first order — the building block of the above, for
/// constructing specific turn combinations.
void install_mesh_route(Network& net, const topo::MeshTopo& mesh, int dst_r,
                        int dst_c, bool xy);

}  // namespace dcdl::routing
