#include "dcdl/routing/route_table.hpp"

namespace dcdl {

namespace {
// 64-bit mix (SplitMix64 finalizer) for ECMP selection.
std::uint64_t mix(std::uint64_t x) {
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}
}  // namespace

std::optional<PortId> RouteTable::lookup(FlowId flow, NodeId dst) const {
  if (const auto it = by_flow_.find(flow); it != by_flow_.end()) {
    return it->second;
  }
  const auto it = by_dst_.find(dst);
  if (it == by_dst_.end() || it->second.empty()) return std::nullopt;
  const auto& set = it->second;
  if (set.size() == 1) return set[0];
  const std::uint64_t h = mix((static_cast<std::uint64_t>(flow) << 32) ^
                              dst ^ salt_ * 0x9E3779B97F4A7C15ULL);
  return set[h % set.size()];
}

}  // namespace dcdl
