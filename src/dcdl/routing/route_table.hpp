// Per-device forwarding state.
//
// Lookup order: exact per-flow routes (used by the paper's case studies,
// which pin flow paths with static routing), then destination-based entries
// (possibly ECMP sets, selected by a deterministic flow hash salted per
// switch). Tables are mutable at runtime so the BGP-convergence and
// SDN-update substrates can produce transient loops; `version()` lets the
// switch invalidate egress decisions cached on queued packets.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "dcdl/net/packet.hpp"

namespace dcdl {

class RouteTable {
 public:
  void set_flow_route(FlowId flow, PortId egress) {
    by_flow_[flow] = egress;
    ++version_;
  }

  void set_dst_route(NodeId dst, PortId egress) {
    set_dst_ecmp(dst, {egress});
  }

  void set_dst_ecmp(NodeId dst, std::vector<PortId> egresses) {
    by_dst_[dst] = std::move(egresses);
    ++version_;
  }

  void clear_dst_route(NodeId dst) {
    by_dst_.erase(dst);
    ++version_;
  }

  void clear() {
    by_flow_.clear();
    by_dst_.clear();
    ++version_;
  }

  /// Salt mixed into the ECMP hash so distinct switches spread flows
  /// differently (mirrors per-switch hash seeds in real fabrics).
  void set_ecmp_salt(std::uint64_t salt) { salt_ = salt; }

  std::optional<PortId> lookup(FlowId flow, NodeId dst) const;

  /// ECMP candidate set for a destination (nullptr if none).
  const std::vector<PortId>* dst_candidates(NodeId dst) const {
    const auto it = by_dst_.find(dst);
    return it == by_dst_.end() ? nullptr : &it->second;
  }

  std::optional<PortId> flow_route(FlowId flow) const {
    const auto it = by_flow_.find(flow);
    if (it == by_flow_.end()) return std::nullopt;
    return it->second;
  }

  const std::unordered_map<FlowId, PortId>& flow_routes() const {
    return by_flow_;
  }
  const std::unordered_map<NodeId, std::vector<PortId>>& dst_routes() const {
    return by_dst_;
  }

  /// Monotonic change counter.
  std::uint64_t version() const { return version_; }

 private:
  std::unordered_map<FlowId, PortId> by_flow_;
  std::unordered_map<NodeId, std::vector<PortId>> by_dst_;
  std::uint64_t salt_ = 0;
  std::uint64_t version_ = 0;
};

}  // namespace dcdl
