#include "dcdl/routing/sdn.hpp"

#include <algorithm>
#include <map>

#include "dcdl/common/contract.hpp"
#include "dcdl/device/switch.hpp"

namespace dcdl::routing {

void SdnUpdatePlan::apply_one(Network& net, const SdnRouteChange& c) const {
  auto& routes = net.switch_at(c.sw).routes();
  if (c.egress) {
    routes.set_dst_route(c.dst, *c.egress);
  } else {
    routes.clear_dst_route(c.dst);
  }
  net.notify_routes_changed(c.sw);
}

Time SdnUpdatePlan::apply_naive(Network& net, Time start, Time spread,
                                std::uint64_t seed) const {
  Rng rng(seed);
  Time last = start;
  for (const SdnRouteChange& c : changes_) {
    const Time at =
        start + Time{static_cast<std::int64_t>(rng.uniform(
                    static_cast<std::uint64_t>(spread.ps()) + 1))};
    last = std::max(last, at);
    net.sim().schedule_at(at, [this, &net, c] { apply_one(net, c); });
  }
  return last;
}

Time SdnUpdatePlan::apply_ordered(Network& net, Time start, Time gap) const {
  const Topology& topo = net.topo();
  // Final next-hop map: current tables overlaid with the plan.
  std::map<NodeId, std::optional<PortId>> final_next;
  for (const NodeId sw : topo.switches()) {
    final_next[sw] = net.switch_at(sw).routes().lookup(0, dst_);
  }
  for (const SdnRouteChange& c : changes_) final_next[c.sw] = c.egress;

  // Distance of each switch to dst under the final state (|V|+1 = cannot
  // reach / loops).
  const int inf = static_cast<int>(topo.node_count()) + 1;
  std::map<NodeId, int> dist;
  const std::function<int(NodeId, int)> walk = [&](NodeId sw,
                                                   int depth) -> int {
    if (const auto it = dist.find(sw); it != dist.end()) return it->second;
    if (depth > static_cast<int>(topo.node_count())) return inf;
    const auto eg = final_next[sw];
    if (!eg) return dist[sw] = inf;
    const NodeId next = topo.peer(sw, *eg).peer_node;
    if (next == dst_) return dist[sw] = 1;
    if (!topo.is_switch(next)) return dist[sw] = inf;
    const int d = walk(next, depth + 1);
    return dist[sw] = (d >= inf ? inf : d + 1);
  };
  for (const NodeId sw : topo.switches()) walk(sw, 0);

  // Downstream-first: update switches closest to dst (in the final state)
  // before anything that will route through them. Every intermediate state
  // is loop-free: updated switches only point at updated-or-final-correct
  // downstream switches.
  std::vector<SdnRouteChange> ordered = changes_;
  std::stable_sort(ordered.begin(), ordered.end(),
                   [&](const SdnRouteChange& a, const SdnRouteChange& b) {
                     return dist[a.sw] < dist[b.sw];
                   });
  Time at = start;
  for (const SdnRouteChange& c : ordered) {
    net.sim().schedule_at(at, [this, &net, c] { apply_one(net, c); });
    at += gap;
  }
  return at - gap;
}

}  // namespace dcdl::routing
