// SDN route-update model (paper §1: "In SDN-based datacenters, transient
// loops can occur during updates", citing Jin et al., SIGCOMM'14).
//
// A plan is a set of per-switch route replacements for one destination.
// Applying it "naively" pushes each switch's update at its own time
// (controller-to-switch latency varies), so the fabric passes through
// mixed old/new states that may contain forwarding loops. Applying it
// "ordered" sequences the updates so that every intermediate state is
// loop-free (updates are applied downstream-first along the new paths —
// the classic consistent-update order), at the cost of a longer update.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "dcdl/common/rng.hpp"
#include "dcdl/common/units.hpp"
#include "dcdl/device/network.hpp"

namespace dcdl::routing {

struct SdnRouteChange {
  NodeId sw;
  NodeId dst;
  /// New egress port; nullopt removes the entry.
  std::optional<PortId> egress;
};

class SdnUpdatePlan {
 public:
  explicit SdnUpdatePlan(NodeId dst) : dst_(dst) {}

  void add(NodeId sw, std::optional<PortId> egress) {
    changes_.push_back(SdnRouteChange{sw, dst_, egress});
  }
  NodeId dst() const { return dst_; }
  const std::vector<SdnRouteChange>& changes() const { return changes_; }

  /// Naive apply: each change lands at start + U[0, spread]. Returns the
  /// (scheduled) completion time of the last change.
  Time apply_naive(Network& net, Time start, Time spread,
                   std::uint64_t seed = 11) const;

  /// Consistent apply: changes are ordered so no intermediate table state
  /// contains a loop for dst (each switch is updated only after every
  /// switch on its *new* downstream path is updated), with `gap` between
  /// consecutive updates. Returns the completion time.
  Time apply_ordered(Network& net, Time start, Time gap) const;

 private:
  void apply_one(Network& net, const SdnRouteChange& c) const;

  NodeId dst_;
  std::vector<SdnRouteChange> changes_;
};

}  // namespace dcdl::routing
