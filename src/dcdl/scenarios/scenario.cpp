#include "dcdl/scenarios/scenario.hpp"

#include "dcdl/common/contract.hpp"
#include "dcdl/mitigation/class_policy.hpp"
#include "dcdl/mitigation/dcqcn.hpp"
#include "dcdl/routing/compute.hpp"
#include "dcdl/stats/hooks.hpp"
#include "dcdl/topo/generators.hpp"

namespace dcdl::scenarios {

using namespace dcdl::topo;

NodeId Scenario::node(const std::string& name) const {
  for (NodeId id = 0; id < topo->node_count(); ++id) {
    if (topo->node(id).name == name) return id;
  }
  DCDL_EXPECTS(false && "unknown node name");
  return kInvalidNode;
}

Scenario make_routing_loop(const RoutingLoopParams& p) {
  DCDL_EXPECTS(p.loop_len >= 2);
  DCDL_EXPECTS(p.ttl >= 1);
  Scenario s;
  s.sim = std::make_unique<Simulator>();

  RingTopo ring = make_ring(p.loop_len, /*hosts_per_switch=*/1,
                            LinkParams{p.bandwidth, p.link_delay});
  s.topo = std::make_unique<Topology>(std::move(ring.topo));

  NetConfig cfg;
  cfg.num_classes = p.num_classes;
  cfg.mtu_bytes = p.packet_bytes;
  cfg.pfc.xoff_bytes = p.xoff_bytes;
  cfg.pfc.xon_bytes = p.xoff_bytes - 2 * p.packet_bytes;
  cfg.dataplane = p.dataplane;
  if (p.ttl_class_band > 0) {
    cfg.reclass =
        mitigation::ttl_class_mapper(p.ttl_class_band, p.num_classes);
  }
  s.net = std::make_unique<Network>(*s.sim, *s.topo, cfg);

  // Routing loop: every switch forwards packets for the sink host around
  // the ring, so nothing is ever delivered and TTL is the only drain.
  const NodeId sink = ring.hosts[1 % p.loop_len][0];
  routing::install_loop_route(*s.net, sink, ring.switches);

  FlowSpec flow;
  flow.id = 1;
  flow.src_host = ring.hosts[0][0];
  flow.dst_host = sink;
  flow.packet_bytes = p.packet_bytes;
  flow.ttl = static_cast<std::uint8_t>(p.ttl);
  if (p.ttl_class_band > 0) {
    flow.prio = static_cast<ClassId>(
        std::min(p.ttl / p.ttl_class_band, p.num_classes - 1));
  }
  std::unique_ptr<Pacer> pacer;
  if (!p.inject.is_zero()) {
    pacer = std::make_unique<TokenBucketPacer>(p.inject, p.packet_bytes);
  }
  s.net->host_at(flow.src_host).add_flow(flow, std::move(pacer));
  s.flows.push_back(flow);

  for (int i = 0; i < p.loop_len; ++i) {
    const NodeId from = ring.switches[static_cast<std::size_t>(i)];
    const NodeId to = ring.switches[static_cast<std::size_t>((i + 1) % p.loop_len)];
    const auto in_port = s.topo->port_towards(to, from);
    DCDL_ASSERT(in_port.has_value());
    s.cycle_queues.push_back(stats::QueueKey{to, *in_port, 0});
    s.cycle_labels.push_back("L" + std::to_string(i + 1));
  }
  return s;
}

Scenario make_four_switch(const FourSwitchParams& p) {
  Scenario s;
  s.sim = std::make_unique<Simulator>();
  s.topo = std::make_unique<Topology>();
  Topology& t = *s.topo;

  const NodeId A = t.add_switch("A");
  const NodeId B = t.add_switch("B");
  const NodeId C = t.add_switch("C");
  const NodeId D = t.add_switch("D");
  t.add_link(A, B, p.bandwidth, p.link_delay);  // L1
  t.add_link(B, C, p.bandwidth, p.link_delay);  // L2
  t.add_link(C, D, p.bandwidth, p.link_delay);  // L3
  t.add_link(D, A, p.bandwidth, p.link_delay);  // L4
  const NodeId hA = t.add_host("hA");
  const NodeId hB = t.add_host("hB");
  const NodeId hC = t.add_host("hC");
  const NodeId hD = t.add_host("hD");
  t.add_link(A, hA, p.bandwidth, p.link_delay);
  t.add_link(B, hB, p.bandwidth, p.link_delay);
  t.add_link(C, hC, p.bandwidth, p.link_delay);
  t.add_link(D, hD, p.bandwidth, p.link_delay);
  NodeId hB3 = kInvalidNode;
  NodeId hC3 = kInvalidNode;
  if (p.with_flow3) {
    hB3 = t.add_host("hB3");
    hC3 = t.add_host("hC3");
    t.add_link(B, hB3, p.bandwidth, p.link_delay);
    t.add_link(C, hC3, p.bandwidth, p.link_delay);
  }

  NetConfig cfg;
  cfg.mtu_bytes = p.packet_bytes;
  cfg.switch_buffer_bytes = p.buffer_bytes;
  cfg.pfc.xoff_bytes = p.xoff_bytes;
  cfg.pfc.xon_bytes = p.xoff_bytes - 2 * p.packet_bytes;
  cfg.dataplane = p.dataplane;
  cfg.tx_jitter = p.tx_jitter;
  cfg.jitter_seed = p.seed;
  s.net = std::make_unique<Network>(*s.sim, t, cfg);

  FlowSpec f1;
  f1.id = 1;
  f1.src_host = hA;
  f1.dst_host = hD;
  f1.packet_bytes = p.packet_bytes;
  f1.ttl = p.ttl;
  routing::install_flow_path(*s.net, f1.id, {hA, A, B, C, D, hD});
  s.net->host_at(hA).add_flow(f1);
  s.flows.push_back(f1);

  FlowSpec f2;
  f2.id = 2;
  f2.src_host = hC;
  f2.dst_host = hB;
  f2.packet_bytes = p.packet_bytes;
  f2.ttl = p.ttl;
  routing::install_flow_path(*s.net, f2.id, {hC, C, D, A, B, hB});
  s.net->host_at(hC).add_flow(f2);
  s.flows.push_back(f2);

  if (p.with_flow3) {
    FlowSpec f3;
    f3.id = 3;
    f3.src_host = hB3;
    f3.dst_host = hC3;
    f3.packet_bytes = p.packet_bytes;
    f3.ttl = p.ttl;
    routing::install_flow_path(*s.net, f3.id, {hB3, B, C, hC3});
    s.net->host_at(hB3).add_flow(f3);
    s.flows.push_back(f3);
    if (!p.flow3_limit.is_zero()) {
      const auto rx2 = t.port_towards(B, hB3);
      DCDL_ASSERT(rx2.has_value());
      s.net->switch_at(B).set_ingress_shaper(*rx2, p.flow3_limit,
                                             p.packet_bytes);
    }
  }

  // The paper's L1..L4 pause identities: Li is paused when the ingress
  // queue at its downstream switch asserts Xoff (all ring ingresses are
  // the "RX1" queues of the paper).
  const auto rx = [&t](NodeId sw, NodeId from) {
    const auto port = t.port_towards(sw, from);
    DCDL_ASSERT(port.has_value());
    return stats::QueueKey{sw, *port, 0};
  };
  s.cycle_queues = {rx(B, A), rx(C, B), rx(D, C), rx(A, D)};
  s.cycle_labels = {"L1", "L2", "L3", "L4"};
  return s;
}

Scenario make_ring_deadlock(const RingDeadlockParams& p) {
  DCDL_EXPECTS(p.num_switches >= 3);
  DCDL_EXPECTS(p.span >= 2 && p.span <= p.num_switches - 1);
  Scenario s;
  s.sim = std::make_unique<Simulator>();
  RingTopo ring = make_ring(p.num_switches, /*hosts_per_switch=*/1,
                            LinkParams{p.bandwidth, p.link_delay});
  s.topo = std::make_unique<Topology>(std::move(ring.topo));

  NetConfig cfg;
  cfg.num_classes = p.num_classes;
  cfg.mtu_bytes = p.packet_bytes;
  cfg.pfc.xoff_bytes = p.xoff_bytes;
  cfg.pfc.xon_bytes = p.xoff_bytes - 2 * p.packet_bytes;
  cfg.dataplane = p.dataplane;
  cfg.tx_jitter = p.tx_jitter;
  cfg.jitter_seed = p.seed;
  if (p.hop_classes) {
    cfg.reclass = mitigation::hop_class_mapper(p.num_classes);
  }
  s.net = std::make_unique<Network>(*s.sim, *s.topo, cfg);

  const int n = p.num_switches;
  for (int i = 0; i < n; ++i) {
    FlowSpec f;
    f.id = static_cast<FlowId>(i + 1);
    const int dst_sw = (i + p.span) % n;
    f.src_host = ring.hosts[static_cast<std::size_t>(i)][0];
    f.dst_host = ring.hosts[static_cast<std::size_t>(dst_sw)][0];
    f.packet_bytes = p.packet_bytes;
    f.ttl = p.ttl;
    std::vector<NodeId> path{f.src_host};
    for (int h = 0; h <= p.span; ++h) {
      path.push_back(ring.switches[static_cast<std::size_t>((i + h) % n)]);
    }
    path.push_back(f.dst_host);
    routing::install_flow_path(*s.net, f.id, path);
    s.net->host_at(f.src_host).add_flow(f);
    s.flows.push_back(f);
  }

  for (int i = 0; i < n; ++i) {
    const NodeId from = ring.switches[static_cast<std::size_t>(i)];
    const NodeId to = ring.switches[static_cast<std::size_t>((i + 1) % n)];
    const auto in_port = s.topo->port_towards(to, from);
    DCDL_ASSERT(in_port.has_value());
    s.cycle_queues.push_back(stats::QueueKey{to, *in_port, 0});
    s.cycle_labels.push_back("L" + std::to_string(i + 1));
  }
  return s;
}

Scenario make_transient_loop(const TransientLoopParams& p) {
  DCDL_EXPECTS(p.loop_len >= 2);
  Scenario s;
  s.sim = std::make_unique<Simulator>();
  RingTopo ring = make_ring(p.loop_len, /*hosts_per_switch=*/1,
                            LinkParams{p.bandwidth, p.link_delay});
  s.topo = std::make_unique<Topology>(std::move(ring.topo));

  NetConfig cfg;
  cfg.num_classes = p.num_classes;
  cfg.mtu_bytes = p.packet_bytes;
  cfg.pfc.xoff_bytes = p.xoff_bytes;
  cfg.pfc.xon_bytes = p.xoff_bytes - 2 * p.packet_bytes;
  cfg.dataplane = p.dataplane;
  if (p.ttl_class_band > 0) {
    cfg.reclass =
        mitigation::ttl_class_mapper(p.ttl_class_band, p.num_classes);
  }
  s.net = std::make_unique<Network>(*s.sim, *s.topo, cfg);

  const NodeId dst = ring.hosts[1 % p.loop_len][0];
  // Correct routes: everyone forwards toward the switch owning dst.
  routing::install_shortest_paths(*s.net);

  FlowSpec flow;
  flow.id = 1;
  flow.src_host = ring.hosts[0][0];
  flow.dst_host = dst;
  flow.packet_bytes = p.packet_bytes;
  flow.ttl = static_cast<std::uint8_t>(p.ttl);
  if (p.ttl_class_band > 0) {
    flow.prio = static_cast<ClassId>(
        std::min(p.ttl / p.ttl_class_band, p.num_classes - 1));
  }
  std::unique_ptr<Pacer> pacer;
  if (!p.inject.is_zero()) {
    pacer = std::make_unique<TokenBucketPacer>(p.inject, p.packet_bytes);
  }
  s.net->host_at(flow.src_host).add_flow(flow, std::move(pacer));
  s.flows.push_back(flow);

  // The transient loop: at loop_start the dst routes turn into a forwarding
  // cycle (misconfiguration / routing churn); at loop_start + duration the
  // correct shortest-path routes are restored.
  Network* net = s.net.get();
  const std::vector<NodeId> cycle = ring.switches;
  s.sim->schedule_at(p.loop_start, [net, dst, cycle] {
    routing::install_loop_route(*net, dst, cycle);
    for (const NodeId sw : cycle) net->notify_routes_changed(sw);
  });
  s.sim->schedule_at(p.loop_start + p.loop_duration, [net, dst, cycle] {
    // Repair: recompute shortest paths for dst only.
    const Topology& topo = net->topo();
    const std::vector<int> dist = routing::hop_distances(topo, dst);
    for (const NodeId sw : topo.switches()) {
      const auto& ports = topo.ports(sw);
      for (PortId q = 0; q < ports.size(); ++q) {
        const NodeId peer = ports[q].peer_node;
        if (topo.is_host(peer) && peer != dst) continue;
        if (dist[peer] == dist[sw] - 1) {
          net->switch_at(sw).routes().set_dst_route(dst, q);
          break;
        }
      }
      net->notify_routes_changed(sw);
    }
  });

  for (int i = 0; i < p.loop_len; ++i) {
    const NodeId from = ring.switches[static_cast<std::size_t>(i)];
    const NodeId to =
        ring.switches[static_cast<std::size_t>((i + 1) % p.loop_len)];
    const auto in_port = s.topo->port_towards(to, from);
    DCDL_ASSERT(in_port.has_value());
    s.cycle_queues.push_back(stats::QueueKey{to, *in_port, 0});
    s.cycle_labels.push_back("L" + std::to_string(i + 1));
  }
  return s;
}

Scenario make_valley_violation(const ValleyViolationParams& p) {
  Scenario s;
  s.sim = std::make_unique<Simulator>();
  s.topo = std::make_unique<Topology>();
  Topology& t = *s.topo;

  const NodeId L1 = t.add_switch("L1", 1);
  const NodeId L2 = t.add_switch("L2", 1);
  const NodeId L3 = t.add_switch("L3", 1);
  const NodeId S1 = t.add_switch("S1", 2);
  const NodeId S2 = t.add_switch("S2", 2);
  for (const NodeId leaf : {L1, L2, L3}) {
    for (const NodeId spine : {S1, S2}) {
      t.add_link(leaf, spine, p.bandwidth, p.link_delay);
    }
  }
  const NodeId h1a = t.add_host("h1a");
  const NodeId h2a = t.add_host("h2a");
  const NodeId h1b = t.add_host("h1b");
  const NodeId h2b = t.add_host("h2b");
  t.add_link(L1, h1a, p.bandwidth, p.link_delay);
  t.add_link(L2, h2a, p.bandwidth, p.link_delay);
  t.add_link(L3, h1b, p.bandwidth, p.link_delay);
  t.add_link(L3, h2b, p.bandwidth, p.link_delay);
  NodeId h3a = kInvalidNode;
  NodeId h3b = kInvalidNode;
  if (p.with_extra_flow) {
    h3a = t.add_host("h3a");
    h3b = t.add_host("h3b");
    t.add_link(L1, h3a, p.bandwidth, p.link_delay);
    t.add_link(L2, h3b, p.bandwidth, p.link_delay);
  }

  NetConfig cfg;
  cfg.mtu_bytes = p.packet_bytes;
  cfg.pfc.xoff_bytes = p.xoff_bytes;
  cfg.pfc.xon_bytes = p.xoff_bytes - 2 * p.packet_bytes;
  cfg.dataplane = p.dataplane;
  cfg.tx_jitter = p.tx_jitter;
  cfg.jitter_seed = p.seed;
  s.net = std::make_unique<Network>(*s.sim, t, cfg);

  FlowSpec f1;
  f1.id = 1;
  f1.src_host = h1a;
  f1.dst_host = h1b;
  f1.packet_bytes = p.packet_bytes;
  f1.ttl = p.ttl;
  FlowSpec f2;
  f2.id = 2;
  f2.src_host = h2a;
  f2.dst_host = h2b;
  f2.packet_bytes = p.packet_bytes;
  f2.ttl = p.ttl;
  if (p.strict_up_down) {
    // The fix: proper valley-free leaf-spine-leaf paths.
    routing::install_flow_path(*s.net, f1.id, {h1a, L1, S1, L3, h1b});
    routing::install_flow_path(*s.net, f2.id, {h2a, L2, S2, L3, h2b});
  } else {
    // The misconfiguration: each flow bounces down-up through the other
    // source leaf (Guo et al.'s unexpected flooding produced exactly such
    // non-valley-free lossless paths).
    routing::install_flow_path(*s.net, f1.id, {h1a, L1, S1, L2, S2, L3, h1b});
    routing::install_flow_path(*s.net, f2.id, {h2a, L2, S2, L1, S1, L3, h2b});
  }
  s.net->host_at(h1a).add_flow(f1);
  s.net->host_at(h2a).add_flow(f2);
  s.flows = {f1, f2};
  if (p.with_extra_flow) {
    // An entirely legitimate up-down flow; its only crime is saturating
    // the cycle's slack link S1 -> L2.
    FlowSpec f3;
    f3.id = 3;
    f3.src_host = h3a;
    f3.dst_host = h3b;
    f3.packet_bytes = p.packet_bytes;
    f3.ttl = p.ttl;
    routing::install_flow_path(*s.net, f3.id, {h3a, L1, S1, L2, h3b});
    s.net->host_at(h3a).add_flow(f3);
    s.flows.push_back(f3);
  }

  const auto rx = [&t](NodeId sw, NodeId from) {
    return stats::QueueKey{sw, *t.port_towards(sw, from), 0};
  };
  s.cycle_queues = {rx(S1, L1), rx(L2, S1), rx(S2, L2), rx(L1, S2)};
  s.cycle_labels = {"L1->S1", "S1->L2", "L2->S2", "S2->L1"};
  return s;
}

Scenario make_incast(const IncastParams& p) {
  DCDL_EXPECTS(p.num_leaves >= 2);
  DCDL_EXPECTS(p.num_senders <= (p.num_leaves - 1) * p.hosts_per_leaf);
  Scenario s;
  s.sim = std::make_unique<Simulator>();
  LeafSpineTopo ls = make_leaf_spine(p.num_leaves, p.num_spines,
                                     p.hosts_per_leaf,
                                     LinkParams{p.bandwidth, p.link_delay});
  s.topo = std::make_unique<Topology>(std::move(ls.topo));

  NetConfig cfg;
  cfg.mtu_bytes = p.packet_bytes;
  cfg.pfc.xoff_bytes = p.xoff_bytes;
  cfg.pfc.xon_bytes = p.xoff_bytes - 2 * p.packet_bytes;
  cfg.ecn.enabled = p.ecn;
  cfg.ecn.phantom_speed_fraction = p.phantom_speed_fraction;
  s.net = std::make_unique<Network>(*s.sim, *s.topo, cfg);
  routing::install_shortest_paths(*s.net);

  const NodeId receiver = ls.hosts[0][0];
  int made = 0;
  for (int leaf = 1; leaf < p.num_leaves && made < p.num_senders; ++leaf) {
    for (int h = 0; h < p.hosts_per_leaf && made < p.num_senders; ++h) {
      FlowSpec f;
      f.id = static_cast<FlowId>(made + 1);
      f.src_host = ls.hosts[static_cast<std::size_t>(leaf)]
                           [static_cast<std::size_t>(h)];
      f.dst_host = receiver;
      f.packet_bytes = p.packet_bytes;
      f.ecn_capable = p.ecn;
      f.stop = p.flow_stop;
      std::unique_ptr<Pacer> pacer;
      if (p.dcqcn) {
        mitigation::DcqcnParams dp;
        dp.line_rate = p.bandwidth;
        pacer = std::make_unique<mitigation::DcqcnPacer>(dp);
      }
      s.net->host_at(f.src_host).add_flow(f, std::move(pacer));
      s.flows.push_back(f);
      ++made;
    }
  }
  return s;
}

RunSummary run_and_check(
    Scenario& s, Time run_for, Time drain_grace, Time monitor_dwell,
    std::function<void(const analysis::DeadlockMonitor&)> on_confirmed) {
  analysis::DeadlockMonitor monitor(*s.net, Time{50'000'000}, monitor_dwell);
  if (on_confirmed) monitor.set_on_confirmed(std::move(on_confirmed));
  RunSummary out;
  if (s.net->config().dataplane.enabled()) {
    // Capture the pipeline's instants/counts and re-arm the centralized
    // monitor after every in-band recovery so a second deadlock in the
    // same run is still confirmed. `out` and `monitor` outlive the run and
    // the drain, the only phases in which this hook can fire.
    stats::append_hook(
        s.net->trace().dataplane,
        [&out, &monitor](Time t, NodeId n, dataplane::DataplaneEvent e,
                         ClassId, std::uint64_t) {
          switch (e) {
            case dataplane::DataplaneEvent::kCandidate:
              ++out.dp_candidates;
              break;
            case dataplane::DataplaneEvent::kConfirmed:
              ++out.dp_confirms;
              if (!out.dp_detected_at) {
                out.dp_detected_at = t;
                out.dp_trigger = n;
              }
              break;
            case dataplane::DataplaneEvent::kRecovered:
              ++out.dp_recoveries;
              if (!out.dp_recovered_at) out.dp_recovered_at = t;
              monitor.rearm();
              break;
            case dataplane::DataplaneEvent::kFalseAlarm:
              ++out.dp_false_alarms;
              break;
            case dataplane::DataplaneEvent::kRearmed:
              break;
          }
        });
  }
  const Time start = s.sim->now();
  monitor.start(start, start + run_for + drain_grace);
  s.sim->run_until(start + run_for);

  for (const FlowSpec& f : s.flows) {
    out.delivered.emplace_back(
        f.id, s.net->host_at(f.dst_host).delivered_bytes(f.id));
  }
  const auto drain = analysis::stop_and_drain(*s.net, drain_grace);
  out.trapped_bytes = drain.trapped_bytes;
  out.deadlocked = drain.deadlocked;
  out.detected_at = monitor.detected_at();
  out.cycle = monitor.cycle();
  return out;
}

}  // namespace dcdl::scenarios
