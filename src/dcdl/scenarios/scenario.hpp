// Canonical experiment scenarios — the exact setups of the paper's Figures
// 1–5 plus the fabric workloads used by the mitigation and baseline
// benches. Tests, examples, and bench harnesses all build on these so the
// reproduced numbers come from one implementation of each setup.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "dcdl/analysis/deadlock.hpp"
#include "dcdl/device/host.hpp"
#include "dcdl/device/network.hpp"
#include "dcdl/device/switch.hpp"
#include "dcdl/sim/simulator.hpp"
#include "dcdl/stats/pause_log.hpp"
#include "dcdl/topo/topology.hpp"
#include "dcdl/traffic/flow.hpp"

namespace dcdl::scenarios {

/// A self-contained simulation: simulator + topology + network + the flow
/// set, plus labels for the queues whose pause state the paper plots.
struct Scenario {
  std::unique_ptr<Simulator> sim;
  std::unique_ptr<Topology> topo;
  std::unique_ptr<Network> net;
  std::vector<FlowSpec> flows;

  /// Ingress queues forming the cyclic buffer dependency under study, in
  /// cycle order, with the paper's labels (e.g. "L1".."L4": the queue at
  /// the downstream end of each cycle link).
  std::vector<stats::QueueKey> cycle_queues;
  std::vector<std::string> cycle_labels;

  /// Named node lookup (host and switch ids by construction name).
  NodeId node(const std::string& name) const;
};

/// §3.1 / Figure 2: a routing loop of `loop_len` switches; a single flow is
/// injected at switch 0 toward a destination whose routes cycle forever.
/// Deadlock iff inject_rate > loop_len * bandwidth / ttl (Eq. 3).
struct RoutingLoopParams {
  int loop_len = 2;
  Rate bandwidth = Rate::gbps(40);
  Time link_delay = Time{1'000'000};  // 1 us
  int ttl = 16;
  /// Injection rate; zero = greedy (infinite demand).
  Rate inject = Rate::gbps(6);
  std::uint32_t packet_bytes = 1000;
  std::int64_t xoff_bytes = 40 * kKiB;
  int num_classes = 1;
  /// Optional TTL-band class mitigation (0 = off): see
  /// mitigation::ttl_class_mapper.
  int ttl_class_band = 0;
  /// In-switch DCFIT detection/recovery pipeline (off by default).
  dataplane::DataplaneConfig dataplane;
};
Scenario make_routing_loop(const RoutingLoopParams& params);

/// §3.2 / Figures 3 and 4 (and §3.3 / Figure 5): four switches A,B,C,D in
/// a ring; flow 1 hA -> A,B,C,D -> hD; flow 2 hC -> C,D,A,B -> hB; with
/// `with_flow3`, flow 3 hB3 -> B,C -> hC3. `flow3_limit` installs the
/// Figure-5 token-bucket rate limiter on B's ingress from flow 3's host.
struct FourSwitchParams {
  bool with_flow3 = false;
  Rate flow3_limit = Rate::zero();  // zero = unlimited
  Rate bandwidth = Rate::gbps(40);
  /// 2 us reproduces the paper's PFC control-loop amplitude (occupancy
  /// sawtooth ~15 KB above / ~20 KB below the 40 KB threshold, Fig. 3d).
  Time link_delay = Time{2'000'000};
  std::uint32_t packet_bytes = 1000;
  std::int64_t xoff_bytes = 40 * kKiB;
  std::int64_t buffer_bytes = 12 * kMiB;
  std::uint8_t ttl = 64;
  /// Inter-frame gap jitter (see NetConfig::tx_jitter). 10 ns is 5% of a
  /// 1000-byte serialization at 40 Gbps.
  Time tx_jitter = Time{10'000};
  std::uint64_t seed = 1;
  /// In-switch DCFIT detection/recovery pipeline (off by default).
  dataplane::DataplaneConfig dataplane;
};
Scenario make_four_switch(const FourSwitchParams& params);

/// Figure 1: a ring of `n` switches where flow i enters at switch i and
/// travels `span` ring links clockwise before exiting to a host — the
/// figure's circulating A->B->C->A traffic. Every ring link is loaded by
/// `span` flows, every ring ingress counter backs up into the next ring
/// egress, and the cyclic dependency locks up under greedy traffic.
struct RingDeadlockParams {
  int num_switches = 3;
  /// Ring links each flow traverses, in [2, num_switches - 1]; per-flow
  /// routing cannot express a full wrap (the path would revisit its first
  /// switch with two different next hops).
  int span = 2;
  Rate bandwidth = Rate::gbps(40);
  Time link_delay = Time{1'000'000};
  std::uint32_t packet_bytes = 1000;
  std::int64_t xoff_bytes = 40 * kKiB;
  std::uint8_t ttl = 64;
  int num_classes = 1;
  /// Optional hop-count buffer classes (structured buffer pool baseline);
  /// false leaves single-class PFC.
  bool hop_classes = false;
  Time tx_jitter = Time{10'000};
  std::uint64_t seed = 1;
  /// In-switch DCFIT detection/recovery pipeline (off by default).
  dataplane::DataplaneConfig dataplane;
};
Scenario make_ring_deadlock(const RingDeadlockParams& params);

/// Leaf-spine incast: `num_senders` hosts across other leaves all send to
/// one receiver. Used by the PFC-propagation (threshold policy) and
/// DCQCN benches.
struct IncastParams {
  int num_leaves = 4;
  int num_spines = 2;
  int hosts_per_leaf = 4;
  int num_senders = 8;
  Rate bandwidth = Rate::gbps(40);
  Time link_delay = Time{1'000'000};
  std::uint32_t packet_bytes = 1000;
  std::int64_t xoff_bytes = 40 * kKiB;
  bool ecn = false;
  bool dcqcn = false;
  double phantom_speed_fraction = 1.0;
  Time flow_stop = Time::max();
};
Scenario make_incast(const IncastParams& params);

/// §1: a transient routing loop (BGP re-route / SDN update / misconfig)
/// traps lossless traffic. Routes toward the destination are correct
/// before `loop_start`, form a forwarding cycle during
/// [loop_start, loop_start + loop_duration), and are then repaired. The
/// paper's point: a deadlock formed inside the window persists after the
/// routes are fixed, because the pause cycle freezes the very queues whose
/// packets would need to be re-forwarded.
struct TransientLoopParams {
  int loop_len = 2;
  Rate bandwidth = Rate::gbps(40);
  Time link_delay = Time{1'000'000};
  int ttl = 16;
  /// Injection rate; zero = greedy.
  Rate inject = Rate::gbps(10);
  std::uint32_t packet_bytes = 1000;
  std::int64_t xoff_bytes = 40 * kKiB;
  Time loop_start = Time{1'000'000'000};     // 1 ms
  Time loop_duration = Time{2'000'000'000};  // 2 ms
  int num_classes = 1;
  int ttl_class_band = 0;  ///< optional TTL-class mitigation
  /// In-switch DCFIT detection/recovery pipeline (off by default). The
  /// false-positive experiments run this scenario below the Eq. 3 boundary
  /// — the loop drains by itself and the pipeline must stay silent.
  dataplane::DataplaneConfig dataplane;
};
Scenario make_transient_loop(const TransientLoopParams& params);

/// §2's real-world tree deadlock (the paper cites Guo et al., SIGCOMM'16:
/// "even for tree-based topology, cyclic buffer dependency can still occur
/// if up-down routing is not strictly followed"): a 3-leaf/2-spine fabric
/// where two flows to leaf L3 take *valley* paths (down-up-down through
/// the other leaf):
///   flow 1: h1a -> L1 -> S1 -> L2 -> S2 -> L3 -> h1b
///   flow 2: h2a -> L2 -> S2 -> L1 -> S1 -> L3 -> h2b
/// Their ingress queues close a 4-cycle (S1<-L1, L2<-S1, S2<-L2, L1<-S2)
/// even though the topology is a tree fabric. Exactly as in Figures 3/4,
/// the two valley flows alone leave two slack cycle links (no deadlock);
/// a third, perfectly valley-free flow h3a@L1 -> S1 -> L2 -> h3b saturates
/// one of them and the fabric deadlocks.
struct ValleyViolationParams {
  /// Adds the innocent up-down flow that tips the cycle (Figure-4
  /// analogue). Default on: the deadlocking configuration.
  bool with_extra_flow = true;
  Rate bandwidth = Rate::gbps(40);
  Time link_delay = Time{2'000'000};
  std::uint32_t packet_bytes = 1000;
  std::int64_t xoff_bytes = 40 * kKiB;
  std::uint8_t ttl = 64;
  Time tx_jitter = Time{10'000};
  std::uint64_t seed = 1;
  /// Route the same endpoint pairs with strict up*/down* instead of the
  /// valley paths (the fix): no cycle, no deadlock.
  bool strict_up_down = false;
  /// In-switch DCFIT detection/recovery pipeline (off by default).
  dataplane::DataplaneConfig dataplane;
};
Scenario make_valley_violation(const ValleyViolationParams& params);

/// Summary of one run: online wait-for detection plus the paper's
/// stop-and-drain criterion.
struct RunSummary {
  bool deadlocked = false;
  /// When the online monitor confirmed the deadlock (if it did).
  std::optional<Time> detected_at;
  /// The confirmed wait-for cycle (empty unless detected_at is set).
  std::vector<stats::QueueKey> cycle;
  std::int64_t trapped_bytes = 0;
  /// Per-flow delivered bytes at the moment flows were stopped.
  std::vector<std::pair<FlowId, std::int64_t>> delivered;

  // --- In-band dataplane pipeline (all empty/zero when it is off) ---
  /// First in-band confirmation instant and the switch that confirmed (the
  /// pipeline's initial-trigger attribution — cross-check it against the
  /// offline forensics report).
  std::optional<Time> dp_detected_at;
  std::optional<NodeId> dp_trigger;
  /// First recovery-action instant (recovery latency = this minus
  /// dp_detected_at).
  std::optional<Time> dp_recovered_at;
  std::uint64_t dp_candidates = 0;
  std::uint64_t dp_confirms = 0;
  std::uint64_t dp_recoveries = 0;
  std::uint64_t dp_false_alarms = 0;
};

/// Runs the scenario for `run_for`, then stops all flows and drains for
/// `drain_grace`; reports deadlock per both detectors. `on_confirmed`, when
/// set, fires at the simulated instant the online monitor confirms the
/// wait-for cycle (cycle()/detected_at() filled in) — the hook the
/// forensics layer uses to capture a post-mortem before the drain phase
/// perturbs the queues. When the scenario's dataplane pipeline is enabled,
/// its events are captured into the summary's dp_* fields and every
/// recovery re-arms the centralized monitor, so a later second deadlock in
/// the same run is still confirmed.
RunSummary run_and_check(
    Scenario& s, Time run_for, Time drain_grace,
    Time monitor_dwell = Time{1'000'000'000},
    std::function<void(const analysis::DeadlockMonitor&)> on_confirmed = {});

}  // namespace dcdl::scenarios
