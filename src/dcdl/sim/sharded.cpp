#include "dcdl/sim/sharded.hpp"

#include <algorithm>

#include "dcdl/common/contract.hpp"
#include "dcdl/probe/profiler.hpp"

namespace dcdl {

namespace {

thread_local int tls_shard_request = 0;
thread_local int tls_worker_shard = -1;

Time saturating_add(Time a, Time b) {
  if (a == Time::max() || b == Time::max()) return Time::max();
  if (a.ps() > Time::max().ps() - b.ps()) return Time::max();
  return a + b;
}

}  // namespace

ScopedShardRequest::ScopedShardRequest(int shards) : prev_(tls_shard_request) {
  tls_shard_request = shards;
}

ScopedShardRequest::~ScopedShardRequest() { tls_shard_request = prev_; }

int ScopedShardRequest::active() { return tls_shard_request; }

int ShardedEngine::current_worker_shard() { return tls_worker_shard; }

ShardedEngine::ShardedEngine(Simulator& control, int num_shards,
                             Time lookahead)
    : ctl_(&control), lookahead_(lookahead) {
  DCDL_EXPECTS(num_shards >= 1);
  DCDL_EXPECTS(num_shards == 1 || lookahead > Time::zero());
  shards_.reserve(static_cast<std::size_t>(num_shards));
  for (int i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Simulator>());
  }
  const std::size_t k = static_cast<std::size_t>(num_shards);
  mail_.resize(k * k);
  records_.resize(k);
  merge_cursor_.resize(k);
  round_executed_.assign(k, 0);
  stats_.shard.resize(k);
  ctl_->set_run_delegate(this);
}

ShardedEngine::~ShardedEngine() {
  ctl_->set_run_delegate(nullptr);
  if (workers_started_) {
    quit_ = true;
    start_gate_->arrive_and_wait();
    for (std::thread& t : workers_) t.join();
  }
}

void ShardedEngine::ensure_workers() {
  if (workers_started_) return;
  workers_started_ = true;
  const std::ptrdiff_t parties = num_shards() + 1;  // workers + coordinator
  start_gate_.emplace(parties);
  end_gate_.emplace(parties);
  workers_.reserve(shards_.size());
  for (std::uint32_t i = 0; i < shards_.size(); ++i) {
    workers_.emplace_back([this, i] { worker_main(i); });
  }
}

void ShardedEngine::worker_main(std::uint32_t shard) {
  tls_worker_shard = static_cast<int>(shard);
  if (on_worker_start_) on_worker_start_(shard);
  for (;;) {
    start_gate_->arrive_and_wait();
    if (quit_) break;
    round_executed_[shard] =
        shards_[shard]->run_keyed_window(round_at_, round_chan_);
    end_gate_->arrive_and_wait();
  }
}

void ShardedEngine::post(std::uint32_t dst_shard, Time at, std::uint64_t chan,
                         std::uint64_t seq, EventFn fn) {
  const int from = tls_worker_shard;
  if (from < 0 || from == static_cast<int>(dst_shard)) {
    // Same shard, coordinator, or setup code: the destination simulator is
    // quiescent or owned by this thread — schedule directly.
    shards_[dst_shard]->schedule_keyed(at, chan, seq, std::move(fn));
    return;
  }
  mail_[static_cast<std::size_t>(from) * shards_.size() + dst_shard]
      .push_back(RemoteEvent{at, chan, seq, std::move(fn)});
}

void ShardedEngine::drain_mailboxes() {
  probe::Profiler::Scope span(probe::Profiler::Span::kMailboxes);
  // Fixed (src, dst, FIFO) order. Delivery order does not affect execution
  // order (events fire by key), but keeping it fixed means the slab/heap
  // layouts — and hence allocation behaviour — are deterministic too.
  const std::size_t k = shards_.size();
  for (std::size_t src = 0; src < k; ++src) {
    for (std::size_t dst = 0; dst < k; ++dst) {
      std::vector<RemoteEvent>& box = mail_[src * k + dst];
      for (RemoteEvent& ev : box) {
        // The conservative contract: a cross-shard event sent during the
        // window that just closed lands at or beyond the next window's
        // start, never inside territory the destination already executed.
        DCDL_ASSERT(ev.at >= shards_[dst]->now());
        stats_.cross_shard_events++;
        shards_[dst]->schedule_keyed(ev.at, ev.chan, ev.seq,
                                     std::move(ev.fn));
      }
      box.clear();  // keeps capacity: zero-alloc steady state
    }
  }
}

void ShardedEngine::replay_records() {
  if (!replay_) {
    for (std::vector<TraceRec>& r : records_) r.clear();
    return;
  }
  probe::Profiler::Scope span(probe::Profiler::Span::kReplay);
  for (const std::vector<TraceRec>& r : records_) span.add_units(r.size());
  // K-way merge by (at, chan, seq, intra). Each shard's buffer is already
  // sorted by that key: a shard executes its events in key order, and
  // same-timestamp events scheduled *during* the window always target a
  // channel >= the one executing (self > oob > wire, and every inter-node
  // latency is strictly positive), so append order == key order.
  const std::size_t k = records_.size();
  std::fill(merge_cursor_.begin(), merge_cursor_.end(), std::size_t{0});
  for (;;) {
    std::size_t best = k;
    for (std::size_t s = 0; s < k; ++s) {
      if (merge_cursor_[s] >= records_[s].size()) continue;
      if (best == k) {
        best = s;
        continue;
      }
      const TraceRec& a = records_[s][merge_cursor_[s]];
      const TraceRec& b = records_[best][merge_cursor_[best]];
      if (a.at != b.at ? a.at < b.at
          : a.chan != b.chan ? a.chan < b.chan
          : a.seq != b.seq   ? a.seq < b.seq
                             : a.intra < b.intra) {
        best = s;
      }
    }
    if (best == k) break;
    replay_(records_[best][merge_cursor_[best]]);
    ++merge_cursor_[best];
  }
  for (std::vector<TraceRec>& r : records_) r.clear();
}

void ShardedEngine::device_pass(Time limit_at, std::uint64_t limit_chan) {
  probe::Profiler::Scope pass(probe::Profiler::Span::kDevicePass);
  round_at_ = limit_at;
  round_chan_ = limit_chan;
  {
    // Coordinator-side view: between the two gates the workers own the
    // window, so this span is "waiting on device execution".
    probe::Profiler::Scope wait(probe::Profiler::Span::kBarrierWait);
    start_gate_->arrive_and_wait();
    end_gate_->arrive_and_wait();
  }
  std::uint64_t total = 0;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    total += round_executed_[s];
    stats_.shard[s].executed += round_executed_[s];
    if (round_executed_[s] == 0) stats_.shard[s].idle_windows++;
  }
  ctl_->credit_external_events(total);
  pass.add_units(total);
  stats_.device_passes++;
  drain_mailboxes();
  replay_records();
}

Time ShardedEngine::min_shard_event_time() {
  Time tmin = Time::max();
  for (const std::unique_ptr<Simulator>& s : shards_) {
    tmin = std::min(tmin, s->next_event_time());
  }
  return tmin;
}

bool ShardedEngine::run_core(Time deadline) {
  ensure_workers();
  if (on_run_start_) on_run_start_();
  ctl_->clear_stop();
  for (;;) {
    const Time tmin = min_shard_event_time();
    const Time tctl = ctl_->next_event_time();
    const Time first = std::min(tmin, tctl);
    if (first == Time::max() || first > deadline) break;
    const Time horizon = saturating_add(tmin, lookahead_);
    if (tctl <= deadline && tctl < horizon) {
      // Control phase at Tc = tctl. Finish all device events with time
      // <= Tc first (their buffered observations replay before control
      // runs, exactly as in a sequential execution), then drain control on
      // this thread, then re-pass for any device events control injected
      // at Tc — repeat until quiescent at Tc.
      device_pass(tctl, Simulator::kAllChannels);
      stats_.windows++;
      for (;;) {
        bool control_ok;
        {
          probe::Profiler::Scope ctl_span(
              probe::Profiler::Span::kControlPhase);
          control_ok = ctl_->drain_through(tctl);
        }
        if (!control_ok) {
          // stop() fired inside a control event (deadlock monitor halting
          // the run, campaign guard tripping).
          return false;
        }
        stats_.control_phases++;
        if (min_shard_event_time() > tctl) break;
        device_pass(tctl, Simulator::kAllChannels);
      }
    } else if (horizon <= deadline && horizon != Time::max()) {
      // Plain conservative window [tmin, horizon): every shard executes
      // keys < (horizon, 0) — boundary exclusive, so an event exactly at
      // the horizon (the earliest possible cross-shard delivery) is safe.
      device_pass(horizon, 0);
      stats_.windows++;
    } else {
      // Tail window: nothing (device or control) beyond `first` needs
      // cross-window coordination before the deadline.
      device_pass(deadline, Simulator::kAllChannels);
      stats_.windows++;
    }
  }
  return true;
}

bool ShardedEngine::run_until(Time deadline) {
  if (!run_core(deadline)) return false;
  for (const std::unique_ptr<Simulator>& s : shards_) s->advance_to(deadline);
  ctl_->advance_to(deadline);
  return true;
}

void ShardedEngine::run_all() { run_core(Time::max()); }

}  // namespace dcdl
