// Sharded conservative parallel discrete-event engine.
//
// One simulation run executes across N worker threads, each owning a
// Simulator for one topology shard, coordinated by conservative time
// windows:
//
//   window protocol
//     T_min  = earliest pending event across all shards
//     L      = lookahead = min cross-shard latency (cut-link propagation
//              delay, clamped by the out-of-band CNP/RTT feedback delay)
//     every shard may safely execute events with key < (T_min + L, 0):
//     a cross-shard effect of any event at time s >= T_min becomes visible
//     at s + L' >= T_min + L (L' >= L by construction, serialization adds
//     strictly positive margin), i.e. never inside the window.
//
// PFC pause propagation is what makes the paper's deadlocks spread — and
// its delay is exactly this lookahead: an Xoff/Xon crossing a shard
// boundary incurs the same cut-link propagation as data, so the pause
// cascade can never outrun the window either.
//
// Cross-shard events travel through per-(src-shard, dst-shard) mailboxes:
// a worker posts into its own row (single writer), the coordinator drains
// all rows between windows in fixed (src, dst, FIFO) order. Ordering of
// execution does NOT depend on drain order: every event carries a canonical
// (time, channel, sequence) key assigned by the sender, and each shard's
// heap fires in key order. The observable stream is therefore the key-sorted
// event sequence — a pure function of the scenario, byte-identical for
// every shard count (including 1).
//
// Control events (deadlock-monitor polls, route flaps, campaign guards,
// stats samplers) live on the *control* simulator — the one the Scenario
// owns. The engine installs itself as that simulator's run delegate, so
// run_until() on it drives the whole sharded run; at each control
// timestamp Tc the engine finishes all device events with time <= Tc,
// drains the control events at Tc on the coordinator thread (devices
// frozen at the barrier — control code may call into them synchronously),
// and repeats the device pass for any same-time events control injected.
//
// Synchronization is two std::barriers per device pass and nothing else:
// everything a worker reads was written before the start barrier, and
// everything the coordinator reads was written before the end barrier. No
// locks, no atomics on the event path — ThreadSanitizer-clean by
// construction (see DESIGN.md "Sharded simulation architecture").
#pragma once

#include <barrier>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "dcdl/common/units.hpp"
#include "dcdl/net/packet.hpp"
#include "dcdl/sim/simulator.hpp"

namespace dcdl {

/// Declares, for the current thread, that Networks constructed while this
/// object is alive should run on a sharded engine with (up to) `shards`
/// shards. Scenario factories don't take engine parameters; this is how
/// callers (CLI --shards, campaign executor, tests) opt a construction in.
/// shards <= 1 requests the legacy single-threaded engine.
class ScopedShardRequest {
 public:
  explicit ScopedShardRequest(int shards);
  ~ScopedShardRequest();
  ScopedShardRequest(const ScopedShardRequest&) = delete;
  ScopedShardRequest& operator=(const ScopedShardRequest&) = delete;

  /// The innermost active request on this thread (0 = none/legacy).
  static int active();

 private:
  int prev_;
};

class ShardedEngine final : public Simulator::RunDelegate {
 public:
  /// A buffered observation, tagged with the ordering key of the event that
  /// emitted it. Workers append these instead of firing Trace hooks; the
  /// coordinator k-way-merges all shard buffers by (at, chan, seq, intra)
  /// and replays them into the real hooks — observers see one globally
  /// ordered stream, identical for every shard count.
  enum class RecKind : std::uint8_t {
    kPfcState,
    kQueueBytes,
    kDelivered,
    kDropped,
    kTxStart,
    kCnp,
    kDataplane,
    kHopWait,  ///< per-hop queuing delay; value = waited picoseconds
  };
  struct TraceRec {
    Time at = Time::zero();
    std::uint64_t chan = 0;
    std::uint64_t seq = 0;
    std::uint32_t intra = 0;
    RecKind kind = RecKind::kPfcState;
    Packet pkt{};  ///< kDelivered / kDropped / kTxStart
    NodeId node = 0;
    PortId port = 0;
    ClassId cls = 0;
    std::uint8_t flag = 0;    ///< pfc pause bit / drop reason / dp event
    std::int64_t value = 0;   ///< queue_bytes / dataplane detail
    FlowId flow = 0;          ///< kCnp
  };

  struct ShardStats {
    std::uint64_t executed = 0;      ///< events fired on this shard
    std::uint64_t idle_windows = 0;  ///< device passes with zero events
  };
  struct Stats {
    std::uint64_t windows = 0;        ///< conservative windows completed
    std::uint64_t device_passes = 0;  ///< barrier round-trips
    std::uint64_t control_phases = 0;
    std::uint64_t cross_shard_events = 0;  ///< mailbox deliveries
    std::vector<ShardStats> shard;
  };

  /// `control` is the scenario-owned simulator; the engine installs itself
  /// as its run delegate and removes itself on destruction. `lookahead`
  /// must be > 0 when num_shards > 1.
  ShardedEngine(Simulator& control, int num_shards, Time lookahead);
  ~ShardedEngine() override;
  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  int num_shards() const { return static_cast<int>(shards_.size()); }
  Time lookahead() const { return lookahead_; }
  Simulator& shard_sim(std::uint32_t shard) { return *shards_[shard]; }
  Simulator& control_sim() { return *ctl_; }

  /// Schedules a keyed event on `dst_shard`'s simulator. From that shard's
  /// own worker (or from the coordinator, where all shards are quiescent)
  /// this is a direct schedule; from another shard's worker it is appended
  /// to the mailbox and delivered at the next window barrier. `at` must lie
  /// beyond the current window for cross-shard posts — guaranteed by the
  /// lookahead contract, asserted at drain time.
  void post(std::uint32_t dst_shard, Time at, std::uint64_t chan,
            std::uint64_t seq, EventFn fn);

  /// Appends a trace record to `shard`'s buffer (worker-side).
  void push_record(std::uint32_t shard, const TraceRec& rec) {
    records_[shard].push_back(rec);
  }

  /// Sink for merged trace records (the Network's hook replayer).
  void set_replay(std::function<void(const TraceRec&)> fn) {
    replay_ = std::move(fn);
  }
  /// Invoked at the start of every run_until (coordinator thread, workers
  /// idle) — the Network re-arms per-shard trace buffering to match the
  /// hooks currently attached.
  void set_on_run_start(std::function<void()> fn) {
    on_run_start_ = std::move(fn);
  }
  /// Invoked once on each worker thread before its first window (sets up
  /// thread-local state such as the Network's trace redirection).
  void set_on_worker_start(std::function<void(std::uint32_t)> fn) {
    on_worker_start_ = std::move(fn);
  }

  /// Shard owned by the calling thread, or -1 off worker threads
  /// (coordinator, setup, control phases).
  static int current_worker_shard();

  /// Drives the whole run to `deadline` (all simulators end at deadline).
  /// Returns false if the control simulator's stop() fired.
  bool run_until(Time deadline);
  /// Runs until every simulator is idle. Like Simulator::run(), leaves the
  /// clocks wherever the last window put them.
  void run_all();

  const Stats& stats() const { return stats_; }

  // Simulator::RunDelegate
  bool delegate_run_until(Time deadline) override {
    return run_until(deadline);
  }
  void delegate_run() override { run_all(); }

 private:
  struct RemoteEvent {
    Time at;
    std::uint64_t chan;
    std::uint64_t seq;
    EventFn fn;
  };

  void ensure_workers();
  void worker_main(std::uint32_t shard);
  /// One barrier round: every shard executes events with key <
  /// (limit_at, limit_chan), then the coordinator drains mailboxes and
  /// replays merged trace records.
  void device_pass(Time limit_at, std::uint64_t limit_chan);
  void drain_mailboxes();
  void replay_records();
  bool run_core(Time deadline);
  Time min_shard_event_time();

  Simulator* ctl_;
  Time lookahead_;
  std::vector<std::unique_ptr<Simulator>> shards_;
  /// mail_[src * K + dst]: single writer (src worker between barriers),
  /// single reader (coordinator at the barrier).
  std::vector<std::vector<RemoteEvent>> mail_;
  std::vector<std::vector<TraceRec>> records_;
  std::vector<std::size_t> merge_cursor_;

  // Round publication: written by the coordinator before the start
  // barrier, read by workers after it (and vice versa for the results via
  // the end barrier). The barriers provide the happens-before edges.
  Time round_at_ = Time::zero();
  std::uint64_t round_chan_ = 0;
  bool quit_ = false;
  std::vector<std::uint64_t> round_executed_;

  std::optional<std::barrier<>> start_gate_;
  std::optional<std::barrier<>> end_gate_;
  std::vector<std::thread> workers_;
  bool workers_started_ = false;

  std::function<void(const TraceRec&)> replay_;
  std::function<void()> on_run_start_;
  std::function<void(std::uint32_t)> on_worker_start_;

  Stats stats_;
};

}  // namespace dcdl
