#include "dcdl/sim/simulator.hpp"

#include "dcdl/common/contract.hpp"

namespace dcdl {

EventId Simulator::schedule_at(Time at, EventFn fn) {
  DCDL_EXPECTS(at >= now_);
  DCDL_EXPECTS(fn != nullptr);
  const std::uint64_t seq = next_seq_++;
  pending_.insert(seq);
  heap_.push(Entry{at, seq, std::move(fn)});
  return EventId{seq};
}

void Simulator::cancel(EventId id) {
  // Erasing from the pending set is complete: the heap entry becomes a husk
  // reclaimed on pop, and a stale id (already fired/cancelled) is a no-op
  // with no residue.
  if (id.valid()) pending_.erase(id.seq);
}

bool Simulator::step() {
  while (!heap_.empty()) {
    // priority_queue::top() is const; move out via const_cast on the known
    // non-const underlying entry. The entry is popped immediately after.
    Entry entry = std::move(const_cast<Entry&>(heap_.top()));
    heap_.pop();
    if (pending_.erase(entry.seq) == 0) continue;  // cancelled husk
    DCDL_ASSERT(entry.at >= now_);
    now_ = entry.at;
    ++executed_;
    entry.fn();
    return true;
  }
  return false;
}

void Simulator::run() {
  stopped_ = false;
  while (!stopped_ && step()) {
  }
}

bool Simulator::run_until(Time deadline) {
  DCDL_EXPECTS(deadline >= now_);
  stopped_ = false;
  while (!stopped_) {
    // Peek past cancelled husks without executing live entries beyond the
    // deadline.
    while (!heap_.empty() && pending_.count(heap_.top().seq) == 0) {
      heap_.pop();
    }
    if (heap_.empty() || heap_.top().at > deadline) break;
    step();
  }
  if (!stopped_) {
    now_ = deadline;
    return true;
  }
  return false;
}

}  // namespace dcdl
