#include "dcdl/sim/simulator.hpp"

#include <algorithm>

#include "dcdl/common/contract.hpp"
#include "dcdl/probe/profiler.hpp"

namespace dcdl {

thread_local int Simulator::arena_scope_depth_ = 0;
thread_local Simulator::Arena* Simulator::arena_stash_ = nullptr;

Simulator::Simulator() {
  if (arena_scope_depth_ > 0 && arena_stash_ != nullptr) {
    heap_ = std::move(arena_stash_->heap);
    slab_ = std::move(arena_stash_->slab);
    free_slots_ = std::move(arena_stash_->free_slots);
    delete arena_stash_;
    arena_stash_ = nullptr;
  }
}

Simulator::~Simulator() {
  if (arena_scope_depth_ > 0 && arena_stash_ == nullptr) {
    // clear() destroys pending closures but keeps vector capacity — the
    // next Simulator on this thread starts with a warmed arena.
    heap_.clear();
    slab_.clear();
    free_slots_.clear();
    arena_stash_ = new Arena{std::move(heap_), std::move(slab_),
                             std::move(free_slots_)};
  }
}

Simulator::ScopedArenaRecycling::ScopedArenaRecycling() {
  ++arena_scope_depth_;
}

Simulator::ScopedArenaRecycling::~ScopedArenaRecycling() {
  if (--arena_scope_depth_ == 0) {
    delete arena_stash_;
    arena_stash_ = nullptr;
  }
}

EventId Simulator::push_entry(Time at, std::uint64_t chan, std::uint64_t seq,
                              EventFn fn) {
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slab_.size());
    slab_.emplace_back();
    ++slab_grows_;
  }
  Slot& s = slab_[slot];
  s.fn = std::move(fn);
  s.live = true;
  ++live_;
  ++scheduled_;
  heap_.push_back(Entry{at, chan, seq, slot, s.gen});
  if (heap_.size() > heap_high_water_) heap_high_water_ = heap_.size();
  std::push_heap(heap_.begin(), heap_.end(), EntryAfter{});
  return EventId{slot, s.gen};
}

EventId Simulator::schedule_at(Time at, EventFn fn) {
  DCDL_EXPECTS(at >= now_);
  DCDL_EXPECTS(static_cast<bool>(fn));
  return push_entry(at, /*chan=*/0, next_seq_++, std::move(fn));
}

EventId Simulator::schedule_keyed(Time at, std::uint64_t chan,
                                  std::uint64_t seq, EventFn fn) {
  DCDL_EXPECTS(at >= now_);
  DCDL_EXPECTS(chan != 0 && chan != kAllChannels);
  DCDL_EXPECTS(static_cast<bool>(fn));
  return push_entry(at, chan, seq, std::move(fn));
}

void Simulator::cancel(EventId id) {
  if (!id.valid() || id.slot >= slab_.size()) return;
  Slot& s = slab_[id.slot];
  if (s.gen != id.gen || !s.live) return;  // fired/cancelled/recycled: no-op
  s.fn.reset();
  s.live = false;
  ++s.gen;  // invalidates the heap husk and any other stale handle
  free_slots_.push_back(id.slot);
  --live_;
  ++cancelled_;
}

bool Simulator::step() {
  while (!heap_.empty()) {
    const Entry top = heap_.front();
    std::pop_heap(heap_.begin(), heap_.end(), EntryAfter{});
    heap_.pop_back();
    Slot& s = slab_[top.slot];
    if (s.gen != top.gen || !s.live) continue;  // cancelled husk: reclaim
    DCDL_ASSERT(top.at >= now_);
    // Retire the slot *before* firing: a cancel() of this event from inside
    // its own callback sees a bumped generation and is a no-op, and the
    // callback may immediately reschedule into the recycled slot.
    EventFn fn = std::move(s.fn);
    s.live = false;
    ++s.gen;
    free_slots_.push_back(top.slot);
    --live_;
    now_ = top.at;
    cur_chan_ = top.chan;
    cur_seq_ = top.seq;
    intra_ = 0;
    ++executed_;
    fn();
    return true;
  }
  return false;
}

void Simulator::skim_husks() {
  while (!heap_.empty()) {
    const Slot& s = slab_[heap_.front().slot];
    if (s.live && s.gen == heap_.front().gen) return;
    std::pop_heap(heap_.begin(), heap_.end(), EntryAfter{});
    heap_.pop_back();
  }
}

void Simulator::run() {
  if (delegate_ != nullptr) {
    delegate_->delegate_run();
    return;
  }
  stopped_ = false;
  // One span per drain, not per event: the profiler's contract is no
  // per-event clock reads (see probe/profiler.hpp). The executed delta
  // rides along so ns/event is still derivable.
  probe::Profiler::Scope span(probe::Profiler::Span::kEventLoop);
  const std::uint64_t before = executed_;
  while (!stopped_ && step()) {
  }
  span.add_units(executed_ - before);
}

bool Simulator::run_until(Time deadline) {
  DCDL_EXPECTS(deadline >= now_);
  if (delegate_ != nullptr) return delegate_->delegate_run_until(deadline);
  stopped_ = false;
  probe::Profiler::Scope span(probe::Profiler::Span::kEventLoop);
  const std::uint64_t before = executed_;
  while (!stopped_) {
    // Peek past cancelled husks without executing live entries beyond the
    // deadline.
    skim_husks();
    if (heap_.empty() || heap_.front().at > deadline) break;
    step();
  }
  span.add_units(executed_ - before);
  if (!stopped_) {
    now_ = deadline;
    return true;
  }
  return false;
}

std::uint64_t Simulator::run_keyed_window(Time limit_at,
                                          std::uint64_t limit_chan) {
  std::uint64_t executed = 0;
  for (;;) {
    skim_husks();
    if (heap_.empty()) break;
    const Entry& top = heap_.front();
    if (top.at > limit_at ||
        (top.at == limit_at && top.chan >= limit_chan)) {
      break;
    }
    step();
    ++executed;
  }
  advance_to(limit_at);
  return executed;
}

bool Simulator::drain_through(Time deadline) {
  while (!stopped_) {
    skim_husks();
    if (heap_.empty() || heap_.front().at > deadline) break;
    step();
  }
  if (!stopped_) {
    advance_to(deadline);
    return true;
  }
  return false;
}

Time Simulator::next_event_time() {
  skim_husks();
  return heap_.empty() ? Time::max() : heap_.front().at;
}

}  // namespace dcdl
