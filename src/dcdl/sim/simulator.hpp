// Single-threaded discrete-event simulation engine.
//
// Determinism: events at the same timestamp fire in scheduling order (a
// monotonically increasing sequence number breaks ties), so a scenario with
// a fixed RNG seed replays identically.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "dcdl/common/units.hpp"

namespace dcdl {

using EventFn = std::function<void()>;

/// Opaque handle for cancelling a scheduled event.
struct EventId {
  std::uint64_t seq = 0;
  bool valid() const { return seq != 0; }
};

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Time now() const { return now_; }

  /// Schedules `fn` to run at absolute time `at` (must be >= now()).
  EventId schedule_at(Time at, EventFn fn);

  /// Schedules `fn` to run `delay` after now().
  EventId schedule_in(Time delay, EventFn fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Cancels a pending event. Cancelling an already-fired or already
  /// cancelled event is a harmless no-op and never accumulates state: the
  /// engine tracks the *pending* set, so stale ids cannot leave tombstones
  /// behind (they used to, growing unboundedly under timer-heavy runs).
  void cancel(EventId id);

  /// Runs until the event queue is empty or stop() is called.
  void run();

  /// Runs events with timestamp <= deadline; afterwards now() == deadline
  /// (unless stop() fired earlier). Returns false if stopped early.
  bool run_until(Time deadline);

  /// Stops the current run() / run_until() after the current event returns.
  void stop() { stopped_ = true; }

  std::uint64_t events_executed() const { return executed_; }
  std::size_t pending_events() const { return pending_.size(); }

  /// Diagnostic: heap entries including cancelled husks awaiting their pop.
  /// Bounded by the number of still-scheduled timestamps; the regression
  /// test for the cancel-tombstone leak asserts on this.
  std::size_t heap_entries() const { return heap_.size(); }

 private:
  struct Entry {
    Time at;
    std::uint64_t seq;
    EventFn fn;
    bool operator>(const Entry& o) const {
      if (at != o.at) return at > o.at;
      return seq > o.seq;
    }
  };

  bool step();  // pops and runs one live event; false if queue empty

  Time now_ = Time::zero();
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  bool stopped_ = false;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
  /// Seqs scheduled but not yet fired or cancelled. A heap entry whose seq
  /// is absent here is a cancelled husk, skipped (and reclaimed) on pop.
  std::unordered_set<std::uint64_t> pending_;
};

}  // namespace dcdl
