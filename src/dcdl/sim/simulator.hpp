// Single-threaded discrete-event simulation engine.
//
// Determinism: events at the same timestamp fire in scheduling order (a
// monotonically increasing sequence number breaks ties), so a scenario with
// a fixed RNG seed replays identically. The golden-trace tests pin this
// ordering across engine refactors.
//
// Keyed scheduling (sharded mode): schedule_keyed() orders events by an
// explicit (time, channel, sequence) key instead of the global scheduling
// sequence. Channel/sequence pairs are assigned by the caller from
// topology-derived identities (wire, per-node timer, out-of-band path), so
// the execution order is a pure function of the scenario — independent of
// how many shard simulators the run is split across. Legacy schedule_at()
// uses channel 0 with the global sequence, which makes the extended
// comparator degenerate to the historical (time, seq) order bit-for-bit.
//
// Hot-path memory architecture (see DESIGN.md): callbacks live in a
// generation-tagged slab of fixed-size records recycled through a free
// list, the time-ordered heap holds only POD (time, chan, seq, slot, gen)
// entries, and closures are stored inline via InplaceFn — steady-state
// scheduling, firing, and cancelling perform zero heap allocation and zero
// hashing.
#pragma once

#include <cstdint>
#include <vector>

#include "dcdl/common/inplace_fn.hpp"
#include "dcdl/common/units.hpp"

namespace dcdl {

/// Event callbacks are stored inline in the event slab. 64 bytes covers
/// every closure the device layer schedules (the largest captures a Packet
/// by value plus a device pointer); larger captures still work via
/// InplaceFn's heap fallback but are not allocation-free.
using EventFn = InplaceFn<void(), 64>;

/// Opaque handle for cancelling a scheduled event. {slot, generation} into
/// the event slab: a stale handle (fired, cancelled, or recycled slot)
/// carries an old generation and is rejected by an O(1) array check.
struct EventId {
  std::uint32_t slot = 0xFFFFFFFFu;
  std::uint32_t gen = 0;
  bool valid() const { return slot != 0xFFFFFFFFu; }
};

class Simulator {
 public:
  /// Channel limit meaning "every channel at this timestamp" for
  /// run_keyed_window (no real channel ever uses this value).
  static constexpr std::uint64_t kAllChannels = ~std::uint64_t{0};

  /// A run driver substituted for the local event loop: when set, run() /
  /// run_until() on this simulator delegate to the coordinator (the sharded
  /// engine), so code holding a Simulator& — scenario helpers, the deadlock
  /// monitor's stop-and-drain — transparently drives the whole sharded run.
  class RunDelegate {
   public:
    virtual ~RunDelegate() = default;
    virtual bool delegate_run_until(Time deadline) = 0;
    virtual void delegate_run() = 0;
  };

  Simulator();
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Time now() const { return now_; }

  /// Schedules `fn` to run at absolute time `at` (must be >= now()).
  EventId schedule_at(Time at, EventFn fn);

  /// Schedules `fn` to run `delay` after now().
  EventId schedule_in(Time delay, EventFn fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Schedules `fn` under an explicit ordering key (at, chan, seq). Keys
  /// must be unique per simulator; `chan` must be non-zero (channel 0 is
  /// the legacy global-sequence channel). Events fire in key order.
  EventId schedule_keyed(Time at, std::uint64_t chan, std::uint64_t seq,
                         EventFn fn);

  /// Cancels a pending event. Cancelling an already-fired or already
  /// cancelled event is a harmless no-op and never accumulates state: the
  /// slot's generation tag was bumped when it retired, so a stale id fails
  /// the O(1) generation check. This also makes cancelling an event from
  /// inside its own callback a guaranteed no-op (the slot retires *before*
  /// the callback runs).
  void cancel(EventId id);

  /// Runs until the event queue is empty or stop() is called.
  void run();

  /// Runs events with timestamp <= deadline; afterwards now() == deadline
  /// (unless stop() fired earlier). Returns false if stopped early.
  bool run_until(Time deadline);

  /// Stops the current run() / run_until() after the current event returns.
  void stop() { stopped_ = true; }

  // --- sharded-engine interface (see sim/sharded.hpp) -------------------
  // These never allocate and are harmless on a legacy simulator; they are
  // grouped so the coordination protocol reads in one place.

  /// Executes every event with key < (limit_at, limit_chan); afterwards
  /// now() == max(now, limit_at). Returns the number of events executed.
  /// This is one shard's share of a conservative time window: the limit is
  /// the window boundary the coordinator proved safe.
  std::uint64_t run_keyed_window(Time limit_at, std::uint64_t limit_chan);

  /// Like run_until, but never routes through the run delegate and does not
  /// clear a pending stop() — the engine's internal control-phase drain.
  bool drain_through(Time deadline);

  /// Timestamp of the earliest live event, or Time::max() when idle.
  Time next_event_time();

  /// Fast-forwards the clock without executing anything (t < now is a
  /// no-op). Used to align shard clocks at window barriers so control-phase
  /// observations carry shard-count-invariant timestamps.
  void advance_to(Time t) {
    if (t > now_) now_ = t;
  }

  void set_run_delegate(RunDelegate* d) { delegate_ = d; }
  bool stop_requested() const { return stopped_; }
  void clear_stop() { stopped_ = false; }

  /// Folds events executed elsewhere (on shard simulators) into this
  /// simulator's executed count, so events_executed() on the control
  /// simulator reports the whole run — identically for every shard count.
  void credit_external_events(std::uint64_t n) { executed_ += n; }

  /// Ordering key of the event currently executing (valid inside a
  /// callback). Used to tag buffered trace records for the global merge.
  std::uint64_t current_chan() const { return cur_chan_; }
  std::uint64_t current_seq() const { return cur_seq_; }
  /// Per-event intra counter: 0, 1, 2, ... for successive calls during one
  /// callback — orders multiple trace records emitted by a single event.
  std::uint32_t next_intra() { return intra_++; }
  // ----------------------------------------------------------------------

  std::uint64_t events_executed() const { return executed_; }
  std::size_t pending_events() const { return live_; }

  /// Lifetime counters of the engine's hot path, exposed for the telemetry
  /// layer and bench_perf. All are monotonic except `pending`; none cost
  /// more than an integer bump per schedule/cancel to maintain.
  struct Counters {
    std::uint64_t scheduled = 0;  ///< schedule_at/schedule_keyed calls
    std::uint64_t executed = 0;   ///< callbacks fired
    std::uint64_t cancelled = 0;  ///< effective cancels (stale ids excluded)
    /// Times the event slab grew by a slot because the free list was empty —
    /// each is one real heap allocation; zero in a recycled-arena steady
    /// state.
    std::uint64_t slab_grows = 0;
    std::size_t slab_slots = 0;       ///< slab high-water (slabs never shrink)
    std::size_t heap_high_water = 0;  ///< max heap entries ever pending
    std::size_t pending = 0;          ///< live events right now
  };
  Counters counters() const {
    return Counters{scheduled_,   executed_,        cancelled_, slab_grows_,
                    slab_.size(), heap_high_water_, live_};
  }

  /// Diagnostic: heap entries including cancelled husks awaiting their pop.
  /// Bounded by the number of still-scheduled timestamps; the regression
  /// test for the cancel-tombstone leak asserts on this.
  std::size_t heap_entries() const { return heap_.size(); }

  /// Diagnostic: slab slots currently allocated (live + free-listed).
  std::size_t slab_slots() const { return slab_.size(); }

  /// While an object of this type is alive on a thread, Simulators
  /// destroyed on that thread donate their slab/heap storage to a
  /// thread-local stash and newly constructed ones adopt it — so a worker
  /// that runs many simulations back-to-back (the campaign executor) pays
  /// the arena growth once instead of once per run. Scopes nest; the stash
  /// is freed when the outermost scope exits. No effect on behaviour, only
  /// on allocation traffic.
  class ScopedArenaRecycling {
   public:
    ScopedArenaRecycling();
    ~ScopedArenaRecycling();
    ScopedArenaRecycling(const ScopedArenaRecycling&) = delete;
    ScopedArenaRecycling& operator=(const ScopedArenaRecycling&) = delete;
  };

 private:
  /// Heap entries are POD: sift operations move 32 bytes, never a closure.
  struct Entry {
    Time at;
    std::uint64_t chan;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;
  };

  /// "a fires after b" — used as the comparator of a std::push_heap /
  /// std::pop_heap min-heap on (at, chan, seq). Legacy events all carry
  /// chan 0, so their order is the historical (at, seq).
  struct EntryAfter {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      if (a.chan != b.chan) return a.chan > b.chan;
      return a.seq > b.seq;
    }
  };

  struct Slot {
    EventFn fn;
    std::uint32_t gen = 0;
    bool live = false;
  };

  /// Recyclable storage (see ScopedArenaRecycling).
  struct Arena {
    std::vector<Entry> heap;
    std::vector<Slot> slab;
    std::vector<std::uint32_t> free_slots;
  };

  EventId push_entry(Time at, std::uint64_t chan, std::uint64_t seq,
                     EventFn fn);
  bool step();  // pops and runs one live event; false if queue empty
  /// Pops cancelled husks off the heap top; afterwards the top (if any) is
  /// live.
  void skim_husks();

  static thread_local int arena_scope_depth_;
  static thread_local Arena* arena_stash_;

  Time now_ = Time::zero();
  std::uint64_t next_seq_ = 1;
  std::uint64_t scheduled_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t cancelled_ = 0;
  std::uint64_t slab_grows_ = 0;
  std::size_t heap_high_water_ = 0;
  std::size_t live_ = 0;
  bool stopped_ = false;
  std::uint64_t cur_chan_ = 0;
  std::uint64_t cur_seq_ = 0;
  std::uint32_t intra_ = 0;
  RunDelegate* delegate_ = nullptr;
  std::vector<Entry> heap_;
  std::vector<Slot> slab_;
  std::vector<std::uint32_t> free_slots_;
};

}  // namespace dcdl
