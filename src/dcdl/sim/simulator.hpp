// Single-threaded discrete-event simulation engine.
//
// Determinism: events at the same timestamp fire in scheduling order (a
// monotonically increasing sequence number breaks ties), so a scenario with
// a fixed RNG seed replays identically. The golden-trace tests pin this
// ordering across engine refactors.
//
// Hot-path memory architecture (see DESIGN.md): callbacks live in a
// generation-tagged slab of fixed-size records recycled through a free
// list, the time-ordered heap holds only POD (time, seq, slot, gen)
// entries, and closures are stored inline via InplaceFn — steady-state
// scheduling, firing, and cancelling perform zero heap allocation and zero
// hashing.
#pragma once

#include <cstdint>
#include <vector>

#include "dcdl/common/inplace_fn.hpp"
#include "dcdl/common/units.hpp"

namespace dcdl {

/// Event callbacks are stored inline in the event slab. 64 bytes covers
/// every closure the device layer schedules (the largest captures a Packet
/// by value plus a device pointer); larger captures still work via
/// InplaceFn's heap fallback but are not allocation-free.
using EventFn = InplaceFn<void(), 64>;

/// Opaque handle for cancelling a scheduled event. {slot, generation} into
/// the event slab: a stale handle (fired, cancelled, or recycled slot)
/// carries an old generation and is rejected by an O(1) array check.
struct EventId {
  std::uint32_t slot = 0xFFFFFFFFu;
  std::uint32_t gen = 0;
  bool valid() const { return slot != 0xFFFFFFFFu; }
};

class Simulator {
 public:
  Simulator();
  ~Simulator();
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Time now() const { return now_; }

  /// Schedules `fn` to run at absolute time `at` (must be >= now()).
  EventId schedule_at(Time at, EventFn fn);

  /// Schedules `fn` to run `delay` after now().
  EventId schedule_in(Time delay, EventFn fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Cancels a pending event. Cancelling an already-fired or already
  /// cancelled event is a harmless no-op and never accumulates state: the
  /// slot's generation tag was bumped when it retired, so a stale id fails
  /// the O(1) generation check. This also makes cancelling an event from
  /// inside its own callback a guaranteed no-op (the slot retires *before*
  /// the callback runs).
  void cancel(EventId id);

  /// Runs until the event queue is empty or stop() is called.
  void run();

  /// Runs events with timestamp <= deadline; afterwards now() == deadline
  /// (unless stop() fired earlier). Returns false if stopped early.
  bool run_until(Time deadline);

  /// Stops the current run() / run_until() after the current event returns.
  void stop() { stopped_ = true; }

  std::uint64_t events_executed() const { return executed_; }
  std::size_t pending_events() const { return live_; }

  /// Lifetime counters of the engine's hot path, exposed for the telemetry
  /// layer and bench_perf. All are monotonic except `pending`; none cost
  /// more than an integer bump per schedule/cancel to maintain.
  struct Counters {
    std::uint64_t scheduled = 0;  ///< schedule_at calls
    std::uint64_t executed = 0;   ///< callbacks fired
    std::uint64_t cancelled = 0;  ///< effective cancels (stale ids excluded)
    /// Times the event slab grew by a slot because the free list was empty —
    /// each is one real heap allocation; zero in a recycled-arena steady
    /// state.
    std::uint64_t slab_grows = 0;
    std::size_t slab_slots = 0;       ///< slab high-water (slabs never shrink)
    std::size_t heap_high_water = 0;  ///< max heap entries ever pending
    std::size_t pending = 0;          ///< live events right now
  };
  Counters counters() const {
    return Counters{next_seq_ - 1, executed_,        cancelled_, slab_grows_,
                    slab_.size(),  heap_high_water_, live_};
  }

  /// Diagnostic: heap entries including cancelled husks awaiting their pop.
  /// Bounded by the number of still-scheduled timestamps; the regression
  /// test for the cancel-tombstone leak asserts on this.
  std::size_t heap_entries() const { return heap_.size(); }

  /// Diagnostic: slab slots currently allocated (live + free-listed).
  std::size_t slab_slots() const { return slab_.size(); }

  /// While an object of this type is alive on a thread, Simulators
  /// destroyed on that thread donate their slab/heap storage to a
  /// thread-local stash and newly constructed ones adopt it — so a worker
  /// that runs many simulations back-to-back (the campaign executor) pays
  /// the arena growth once instead of once per run. Scopes nest; the stash
  /// is freed when the outermost scope exits. No effect on behaviour, only
  /// on allocation traffic.
  class ScopedArenaRecycling {
   public:
    ScopedArenaRecycling();
    ~ScopedArenaRecycling();
    ScopedArenaRecycling(const ScopedArenaRecycling&) = delete;
    ScopedArenaRecycling& operator=(const ScopedArenaRecycling&) = delete;
  };

 private:
  /// Heap entries are POD: sift operations move 24 bytes, never a closure.
  struct Entry {
    Time at;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;
  };

  /// "a fires after b" — used as the comparator of a std::push_heap /
  /// std::pop_heap min-heap on (at, seq).
  struct EntryAfter {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  struct Slot {
    EventFn fn;
    std::uint32_t gen = 0;
    bool live = false;
  };

  /// Recyclable storage (see ScopedArenaRecycling).
  struct Arena {
    std::vector<Entry> heap;
    std::vector<Slot> slab;
    std::vector<std::uint32_t> free_slots;
  };

  bool step();  // pops and runs one live event; false if queue empty
  /// Pops cancelled husks off the heap top; afterwards the top (if any) is
  /// live.
  void skim_husks();

  static thread_local int arena_scope_depth_;
  static thread_local Arena* arena_stash_;

  Time now_ = Time::zero();
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  std::uint64_t cancelled_ = 0;
  std::uint64_t slab_grows_ = 0;
  std::size_t heap_high_water_ = 0;
  std::size_t live_ = 0;
  bool stopped_ = false;
  std::vector<Entry> heap_;
  std::vector<Slot> slab_;
  std::vector<std::uint32_t> free_slots_;
};

}  // namespace dcdl
