#include "dcdl/stats/cascade.hpp"

#include <algorithm>

namespace dcdl::stats {

CascadeStats analyze_pause_cascade(const Network& net,
                                   const PauseEventLog& log) {
  const Topology& topo = net.topo();
  CascadeStats out;
  std::map<QueueKey, int> active;  // currently asserted pause -> depth
  std::uint64_t depth_sum = 0;

  for (const PauseEvent& e : log.events()) {
    const QueueKey key{e.node, e.port, e.cls};
    if (!e.paused) {
      active.erase(key);
      continue;
    }
    // Parents: active pauses imposed on any of this switch's egress ports
    // for the same class — i.e. the downstream ingress queues currently
    // pausing this switch's transmissions.
    int depth = 0;
    const auto& ports = topo.ports(e.node);
    for (PortId p = 0; p < ports.size(); ++p) {
      const PortPeer& pp = ports[p];
      if (!topo.is_switch(pp.peer_node)) continue;
      const auto it = active.find(QueueKey{pp.peer_node, pp.peer_port, e.cls});
      if (it != active.end()) depth = std::max(depth, it->second + 1);
    }
    active[key] = depth;
    if (static_cast<int>(out.count_by_depth.size()) <= depth) {
      out.count_by_depth.resize(static_cast<std::size_t>(depth) + 1, 0);
    }
    out.count_by_depth[static_cast<std::size_t>(depth)] += 1;
    out.total_pauses += 1;
    out.max_depth = std::max(out.max_depth, depth);
    depth_sum += static_cast<std::uint64_t>(depth);
  }
  out.mean_depth = out.total_pauses
                       ? static_cast<double>(depth_sum) /
                             static_cast<double>(out.total_pauses)
                       : 0.0;
  return out;
}

}  // namespace dcdl::stats
