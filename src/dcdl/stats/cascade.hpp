// Pause-cascade analysis (paper §4, "limiting PFC pause frames
// propagation": "the damage of HoL and the potential deadlock caused by
// PFC is significant because the pause frames are generated near the
// destination or in the middle of the network").
//
// From a PauseEventLog and the topology, reconstructs causality chains: a
// pause asserted by queue Q is attributed to a parent pause if, when Q
// crossed Xoff, the switch's relevant egress was being held by a
// downstream pause that was already active. Chains measure how deep PFC
// backpressure propagated from its congestion origin — the quantity the
// §4 threshold policies are designed to shrink.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "dcdl/device/network.hpp"
#include "dcdl/stats/pause_log.hpp"

namespace dcdl::stats {

struct CascadeStats {
  /// Number of pause assertions at each depth (0 = origin: no downstream
  /// pause was active anywhere on the switch when it fired).
  std::vector<std::uint64_t> count_by_depth;
  std::uint64_t total_pauses = 0;
  int max_depth = 0;
  double mean_depth = 0;
};

/// Attributes every pause assertion in `log` to a causal depth.
///
/// Attribution rule (conservative, topology-driven): assertion A at
/// (sw, port, cls) has parent B if B is an active pause assertion at the
/// downstream switch reachable from ANY of sw's egress ports for class
/// cls, i.e. sw's forwarding for that class was (partially) blocked when A
/// fired. Depth(A) = 1 + max depth of active parents; origins have depth 0.
CascadeStats analyze_pause_cascade(const Network& net,
                                   const PauseEventLog& log);

}  // namespace dcdl::stats
