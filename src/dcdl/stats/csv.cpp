#include "dcdl/stats/csv.hpp"

namespace dcdl::stats {

void CsvWriter::header(std::initializer_list<const char*> columns) {
  bool first = true;
  for (const char* c : columns) {
    std::fprintf(out_, "%s%s", first ? "" : ",", c);
    first = false;
  }
  std::fputc('\n', out_);
}

void CsvWriter::row(std::initializer_list<std::string> cells) {
  bool first = true;
  for (const auto& c : cells) {
    std::fprintf(out_, "%s%s", first ? "" : ",", c.c_str());
    first = false;
  }
  std::fputc('\n', out_);
}

void CsvWriter::section(const std::string& title) {
  std::fprintf(out_, "\n# %s\n", title.c_str());
}

std::string CsvWriter::num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string CsvWriter::num(std::int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  return buf;
}

}  // namespace dcdl::stats
