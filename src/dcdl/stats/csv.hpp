// Small CSV/series printer used by the bench harnesses so every figure's
// data can be regenerated as machine-readable rows on stdout.
#pragma once

#include <cstdio>
#include <initializer_list>
#include <string>
#include <vector>

namespace dcdl::stats {

class CsvWriter {
 public:
  explicit CsvWriter(std::FILE* out = stdout) : out_(out) {}

  void header(std::initializer_list<const char*> columns);
  void row(std::initializer_list<std::string> cells);

  /// Blank line + "# title" comment — separates series within one stream.
  void section(const std::string& title);

  static std::string num(double v);
  static std::string num(std::int64_t v);

 private:
  std::FILE* out_;
};

}  // namespace dcdl::stats
