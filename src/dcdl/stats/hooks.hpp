// Helper for attaching several observers to one Trace slot.
#pragma once

#include <functional>
#include <utility>

namespace dcdl::stats {

/// Chains `fn` after whatever is already installed in `slot`.
template <typename... Args, typename F>
void append_hook(std::function<void(Args...)>& slot, F fn) {
  if (!slot) {
    slot = std::move(fn);
    return;
  }
  slot = [prev = std::move(slot), fn = std::move(fn)](Args... args) {
    prev(args...);
    fn(args...);
  };
}

}  // namespace dcdl::stats
