// Helper for attaching several observers to one Trace slot.
#pragma once

#include <utility>

#include "dcdl/device/trace.hpp"

namespace dcdl::stats {

/// Chains `fn` after whatever is already installed in `slot`.
template <typename... Args, typename F>
void append_hook(HookSlot<Args...>& slot, F fn) {
  slot.append(typename HookSlot<Args...>::Fn(std::move(fn)));
}

}  // namespace dcdl::stats
