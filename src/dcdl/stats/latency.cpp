#include "dcdl/stats/latency.hpp"

#include "dcdl/common/contract.hpp"
#include "dcdl/stats/hooks.hpp"

namespace dcdl::stats {

const std::vector<Time> LatencyMeter::kEmpty;

LatencyMeter::LatencyMeter(Network& net) {
  append_hook<Time, const Packet&>(
      net.trace().delivered, [this](Time t, const Packet& pkt) {
        lat_[pkt.flow].push_back(t - pkt.injected_at);
        dirty_[pkt.flow] = true;
      });
}

const std::vector<Time>& LatencyMeter::sorted(FlowId flow) const {
  const auto it = lat_.find(flow);
  if (it == lat_.end()) return kEmpty;
  if (dirty_[flow]) {
    std::sort(it->second.begin(), it->second.end());
    dirty_[flow] = false;
  }
  return it->second;
}

std::size_t LatencyMeter::samples(FlowId flow) const {
  const auto it = lat_.find(flow);
  return it == lat_.end() ? 0 : it->second.size();
}

Time LatencyMeter::mean(FlowId flow) const {
  const auto& v = sorted(flow);
  if (v.empty()) return Time::zero();
  std::int64_t sum = 0;
  for (const Time t : v) sum += t.ps();
  return Time{sum / static_cast<std::int64_t>(v.size())};
}

Time LatencyMeter::percentile(FlowId flow, double q) const {
  DCDL_EXPECTS(q >= 0.0 && q <= 1.0);
  const auto& v = sorted(flow);
  if (v.empty()) return Time::zero();
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(v.size() - 1) + 0.5);
  return v[idx];
}

Time LatencyMeter::max(FlowId flow) const {
  const auto& v = sorted(flow);
  return v.empty() ? Time::zero() : v.back();
}

Time LatencyMeter::percentile_of(const std::vector<FlowId>& flows,
                                 double q) const {
  std::vector<Time> pool;
  for (const FlowId f : flows) {
    const auto& v = sorted(f);
    pool.insert(pool.end(), v.begin(), v.end());
  }
  if (pool.empty()) return Time::zero();
  std::sort(pool.begin(), pool.end());
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(pool.size() - 1) + 0.5);
  return pool[idx];
}

}  // namespace dcdl::stats
