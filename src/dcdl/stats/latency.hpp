// Per-flow end-to-end latency statistics (injection to delivery), for the
// fairness and HoL-damage analyses the paper's §4 calls for ("unfairness
// between long and short flows ... requires further study").
#pragma once

#include <algorithm>
#include <map>
#include <vector>

#include "dcdl/common/units.hpp"
#include "dcdl/device/network.hpp"

namespace dcdl::stats {

class LatencyMeter {
 public:
  /// Attaches to the network's delivered hook.
  explicit LatencyMeter(Network& net);

  std::size_t samples(FlowId flow) const;
  Time mean(FlowId flow) const;
  /// q in [0, 1]; e.g. 0.5 = median, 0.99 = p99.
  Time percentile(FlowId flow, double q) const;
  Time max(FlowId flow) const;

  /// Pooled percentile across a set of flows.
  Time percentile_of(const std::vector<FlowId>& flows, double q) const;

 private:
  const std::vector<Time>& sorted(FlowId flow) const;

  mutable std::map<FlowId, std::vector<Time>> lat_;
  mutable std::map<FlowId, bool> dirty_;
  static const std::vector<Time> kEmpty;
};

}  // namespace dcdl::stats
