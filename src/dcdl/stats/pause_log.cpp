#include "dcdl/stats/pause_log.hpp"

#include "dcdl/stats/hooks.hpp"

namespace dcdl::stats {

PauseEventLog::PauseEventLog(Network& net) {
  append_hook<Time, NodeId, PortId, ClassId, bool>(
      net.trace().pfc_state,
      [this](Time t, NodeId node, PortId port, ClassId cls, bool paused) {
        events_.push_back(PauseEvent{t, node, port, cls, paused});
      });
}

std::uint64_t PauseEventLog::pause_count(QueueKey key) const {
  std::uint64_t n = 0;
  for (const auto& e : events_) {
    if (e.paused && e.node == key.node && e.port == key.port &&
        e.cls == key.cls) {
      ++n;
    }
  }
  return n;
}

std::vector<std::pair<Time, Time>> PauseEventLog::intervals(QueueKey key,
                                                            Time until) const {
  std::vector<std::pair<Time, Time>> out;
  bool open = false;
  Time begin = Time::zero();
  for (const auto& e : events_) {
    if (e.node != key.node || e.port != key.port || e.cls != key.cls) continue;
    if (e.paused && !open) {
      open = true;
      begin = e.t;
    } else if (!e.paused && open) {
      open = false;
      out.emplace_back(begin, e.t);
    }
  }
  if (open) out.emplace_back(begin, until);
  return out;
}

Time PauseEventLog::total_paused(QueueKey key, Time until) const {
  Time total = Time::zero();
  for (const auto& [b, e] : intervals(key, until)) total += e - b;
  return total;
}

bool PauseEventLog::paused_at_end(QueueKey key) const {
  bool paused = false;
  for (const auto& e : events_) {
    if (e.node == key.node && e.port == key.port && e.cls == key.cls) {
      paused = e.paused;
    }
  }
  return paused;
}

std::optional<Time> PauseEventLog::first_all_paused(
    const std::vector<QueueKey>& keys, Time until) const {
  std::map<QueueKey, bool> state;
  for (const auto& k : keys) state[k] = false;
  std::size_t paused_count = 0;
  for (const auto& e : events_) {
    if (e.t > until) break;
    const auto it = state.find(QueueKey{e.node, e.port, e.cls});
    if (it == state.end()) continue;
    if (it->second != e.paused) {
      it->second = e.paused;
      paused_count += e.paused ? 1 : std::size_t(-1);
      if (paused_count == keys.size()) return e.t;
    }
  }
  return std::nullopt;
}

bool PauseEventLog::ever_all_paused(const std::vector<QueueKey>& keys,
                                    Time until) const {
  return first_all_paused(keys, until).has_value();
}

}  // namespace dcdl::stats
