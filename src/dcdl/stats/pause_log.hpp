// Records PFC pause/resume transitions — the raw material for the paper's
// "pause events at link Li" plots (Figures 3c, 4c, 5b).
//
// Identity convention: a pause event belongs to the *ingress queue that
// asserts it* — (switch, ingress port, class). The paused link is the link
// attached to that port, direction upstream-peer -> switch. "Link L4 is
// paused" in the paper means switch A's ingress from D asserted Xoff.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "dcdl/common/units.hpp"
#include "dcdl/device/network.hpp"
#include "dcdl/net/packet.hpp"

namespace dcdl::stats {

struct PauseEvent {
  Time t;
  NodeId node;
  PortId port;
  ClassId cls;
  bool paused;
};

struct QueueKey {
  NodeId node;
  PortId port;
  ClassId cls;
  friend auto operator<=>(const QueueKey&, const QueueKey&) = default;
};

class PauseEventLog {
 public:
  /// Starts recording; chains onto the network's pfc_state hook.
  explicit PauseEventLog(Network& net);

  const std::vector<PauseEvent>& events() const { return events_; }

  /// Number of Xoff assertions for one queue.
  std::uint64_t pause_count(QueueKey key) const;

  /// Total time the queue held its upstream paused, up to `until`
  /// (open pauses count until `until`).
  Time total_paused(QueueKey key, Time until) const;

  /// Whether the queue holds its upstream paused at the end of the log.
  bool paused_at_end(QueueKey key) const;

  /// Pause intervals [begin, end) for one queue; an open interval is closed
  /// at `until`.
  std::vector<std::pair<Time, Time>> intervals(QueueKey key, Time until) const;

  /// True if all `keys` are simultaneously paused at any instant <= until —
  /// the "all links in the cycle paused at once" condition of §3.2.
  bool ever_all_paused(const std::vector<QueueKey>& keys, Time until) const;

  /// First instant at which all `keys` are simultaneously paused, if any.
  std::optional<Time> first_all_paused(const std::vector<QueueKey>& keys,
                                       Time until) const;

  void clear() { events_.clear(); }

 private:
  std::vector<PauseEvent> events_;
};

}  // namespace dcdl::stats
