#include "dcdl/stats/sampler.hpp"

#include <algorithm>

#include "dcdl/common/contract.hpp"
#include "dcdl/device/switch.hpp"

namespace dcdl::stats {

OccupancySampler::OccupancySampler(Network& net, std::vector<Target> targets,
                                   Time period)
    : net_(net), targets_(std::move(targets)), period_(period) {
  DCDL_EXPECTS(period > Time::zero());
  series_.resize(targets_.size());
}

void OccupancySampler::start(Time from, Time until) {
  DCDL_EXPECTS(from >= net_.sim().now());
  until_ = until;
  net_.sim().schedule_at(from, [this] { sample_once(); });
}

void OccupancySampler::sample_once() {
  const Time now = net_.sim().now();
  for (std::size_t i = 0; i < targets_.size(); ++i) {
    const Target& t = targets_[i];
    const auto& sw = net_.switch_at(t.sw);
    const std::int64_t bytes =
        t.flow ? sw.ingress_flow_bytes(t.port, t.cls, *t.flow)
               : sw.ingress_bytes(t.port, t.cls);
    series_[i].push_back(SamplePoint{now, bytes});
  }
  if (now + period_ <= until_) {
    net_.sim().schedule_in(period_, [this] { sample_once(); });
  }
}

std::int64_t OccupancySampler::max_bytes(std::size_t target_index) const {
  std::int64_t best = 0;
  for (const auto& p : series_.at(target_index)) best = std::max(best, p.bytes);
  return best;
}

std::int64_t OccupancySampler::min_bytes_after(std::size_t target_index,
                                               Time from) const {
  std::int64_t best = std::numeric_limits<std::int64_t>::max();
  for (const auto& p : series_.at(target_index)) {
    if (p.t >= from) best = std::min(best, p.bytes);
  }
  return best == std::numeric_limits<std::int64_t>::max() ? 0 : best;
}

std::int64_t OccupancySampler::max_bytes_after(std::size_t target_index,
                                               Time from) const {
  std::int64_t best = 0;
  for (const auto& p : series_.at(target_index)) {
    if (p.t >= from) best = std::max(best, p.bytes);
  }
  return best;
}

}  // namespace dcdl::stats
