// Periodic sampling of ingress-queue occupancy — the paper samples "the
// instantaneous buffer occupancy of both flows at RX1 queues every 1us"
// for Figures 3(d-g) and 5(c-d).
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "dcdl/common/units.hpp"
#include "dcdl/device/network.hpp"
#include "dcdl/net/packet.hpp"

namespace dcdl::stats {

struct SamplePoint {
  Time t;
  std::int64_t bytes;
};

class OccupancySampler {
 public:
  struct Target {
    NodeId sw;
    PortId port;
    ClassId cls = 0;
    /// If set, sample only this flow's bytes in the queue (as the paper's
    /// per-flow occupancy plots do); otherwise the whole queue.
    std::optional<FlowId> flow;
  };

  OccupancySampler(Network& net, std::vector<Target> targets, Time period);

  /// Begins sampling at `from`, stopping after `until`.
  void start(Time from, Time until);

  const std::vector<Target>& targets() const { return targets_; }
  const std::vector<SamplePoint>& series(std::size_t target_index) const {
    return series_.at(target_index);
  }

  std::int64_t max_bytes(std::size_t target_index) const;
  std::int64_t min_bytes_after(std::size_t target_index, Time from) const;
  std::int64_t max_bytes_after(std::size_t target_index, Time from) const;

 private:
  void sample_once();

  Network& net_;
  std::vector<Target> targets_;
  Time period_;
  Time until_ = Time::zero();
  std::vector<std::vector<SamplePoint>> series_;
};

}  // namespace dcdl::stats
