#include "dcdl/stats/throughput.hpp"

#include <algorithm>

#include "dcdl/stats/hooks.hpp"

namespace dcdl::stats {

const std::vector<std::int64_t> ThroughputMeter::kEmpty;

ThroughputMeter::ThroughputMeter(Network& net, Time window) : window_(window) {
  append_hook<Time, const Packet&>(
      net.trace().delivered, [this](Time t, const Packet& pkt) {
        PerFlow& f = flows_[pkt.flow];
        f.bytes += pkt.size_bytes;
        f.packets += 1;
        f.cumulative.emplace_back(t, f.bytes);
        if (window_ > Time::zero()) {
          const std::size_t bucket =
              static_cast<std::size_t>(t.ps() / window_.ps());
          if (f.windows.size() <= bucket) f.windows.resize(bucket + 1, 0);
          f.windows[bucket] += pkt.size_bytes;
        }
      });
}

std::int64_t ThroughputMeter::delivered_bytes(FlowId flow) const {
  const auto it = flows_.find(flow);
  return it == flows_.end() ? 0 : it->second.bytes;
}

std::uint64_t ThroughputMeter::delivered_packets(FlowId flow) const {
  const auto it = flows_.find(flow);
  return it == flows_.end() ? 0 : it->second.packets;
}

std::int64_t ThroughputMeter::total_delivered_bytes() const {
  std::int64_t total = 0;
  for (const auto& [flow, f] : flows_) total += f.bytes;
  return total;
}

Rate ThroughputMeter::average_rate(FlowId flow, Time t0, Time t1) const {
  const auto it = flows_.find(flow);
  if (it == flows_.end() || t1 <= t0) return Rate::zero();
  const auto& cum = it->second.cumulative;
  const auto bytes_at = [&cum](Time t) -> std::int64_t {
    // Last cumulative total at or before t.
    std::int64_t best = 0;
    for (const auto& [when, total] : cum) {
      if (when <= t) best = total;
      else break;
    }
    return best;
  };
  const std::int64_t delta = bytes_at(t1) - bytes_at(t0);
  const double bps = static_cast<double>(delta) * 8e12 /
                     static_cast<double>((t1 - t0).ps());
  return Rate{static_cast<std::int64_t>(bps)};
}

const std::vector<std::int64_t>& ThroughputMeter::window_series(
    FlowId flow) const {
  const auto it = flows_.find(flow);
  return it == flows_.end() ? kEmpty : it->second.windows;
}

}  // namespace dcdl::stats
