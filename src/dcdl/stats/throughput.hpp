// Per-flow delivery accounting: running totals plus a windowed rate series
// (for throughput-over-time plots and goodput comparisons).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "dcdl/common/units.hpp"
#include "dcdl/device/network.hpp"
#include "dcdl/net/packet.hpp"

namespace dcdl::stats {

class ThroughputMeter {
 public:
  /// Attaches to the network's `delivered` hook. `window` buckets the rate
  /// series (0 disables the series, totals only).
  explicit ThroughputMeter(Network& net, Time window = Time::zero());

  std::int64_t delivered_bytes(FlowId flow) const;
  std::uint64_t delivered_packets(FlowId flow) const;
  std::int64_t total_delivered_bytes() const;

  /// Average goodput of a flow between t0 and t1.
  Rate average_rate(FlowId flow, Time t0, Time t1) const;

  /// Windowed series: bucket index -> bytes delivered in that window.
  const std::vector<std::int64_t>& window_series(FlowId flow) const;

  Time window() const { return window_; }

 private:
  struct PerFlow {
    std::int64_t bytes = 0;
    std::uint64_t packets = 0;
    std::vector<std::int64_t> windows;
    std::vector<std::pair<Time, std::int64_t>> cumulative;  // (t, total bytes)
  };

  Time window_;
  std::map<FlowId, PerFlow> flows_;
  static const std::vector<std::int64_t> kEmpty;
};

}  // namespace dcdl::stats
