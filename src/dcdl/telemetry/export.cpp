#include "dcdl/telemetry/export.hpp"

#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <map>
#include <set>

namespace dcdl::telemetry {

namespace {

/// Appends printf-formatted text to `out` (all emission goes through here;
/// %f with explicit precision keeps the output locale-independent and
/// deterministic).
void appendf(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));
void appendf(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list args;
  va_start(args, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  if (n > 0) out.append(buf, static_cast<std::size_t>(n));
}

/// Microsecond timestamp with picosecond resolution (trace_event "ts").
void append_ts(std::string& out, std::int64_t t_ps) {
  appendf(out, "%" PRId64 ".%06" PRId64, t_ps / 1'000'000,
          t_ps % 1'000'000);
}

/// trace_event thread ids: one per (port, class) queue, 0 = node scope.
int tid_of(std::uint16_t port, std::uint8_t cls) {
  if (port == kInvalidPort) return 0;
  return static_cast<int>(port) * kMaxClasses + cls + 1;
}

std::string node_label(const Topology& topo, NodeId id) {
  if (id >= topo.node_count()) return "node " + std::to_string(id);
  const NodeSpec& spec = topo.node(id);
  const char* kind = spec.kind == NodeKind::kSwitch ? "switch" : "host";
  if (spec.name.empty()) return std::string(kind) + " " + std::to_string(id);
  return std::string(kind) + " " + spec.name + " (" + std::to_string(id) +
         ")";
}

/// Synthetic pid for the hybrid region-state track: kRegionState records
/// carry a *region* index in `node`, not a NodeId, so they render under
/// their own process instead of polluting a device's timeline.
constexpr std::uint32_t kHybridRegionsPid = 4'000'000'000u;

}  // namespace

std::string to_perfetto_json(const Topology& topo,
                             const std::vector<TraceRecord>& records,
                             const PerfettoOptions& opts,
                             const std::vector<FlowArrow>& flows) {
  std::string out = "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  bool first = true;
  const auto comma = [&] {
    if (!first) out += ',';
    first = false;
    out += '\n';
  };

  // Pass 1: the (pid, tid) streams that will appear, for name metadata.
  // kRegionState records are excluded: their `node` is a region index, not
  // a NodeId — they get the synthetic "hybrid regions" process instead.
  std::set<NodeId> nodes;
  std::map<std::pair<NodeId, int>, std::pair<std::uint16_t, std::uint8_t>>
      threads;
  bool any_region = false;
  for (const TraceRecord& r : records) {
    if (r.kind == RecordKind::kRegionState) {
      any_region = true;
      continue;
    }
    nodes.insert(r.node);
    const int tid = tid_of(r.port, r.cls);
    if (tid != 0) threads[{r.node, tid}] = {r.port, r.cls};
  }
  if (any_region && opts.region_counters) {
    comma();
    appendf(out,
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%u,"
            "\"args\":{\"name\":\"hybrid regions\"}}",
            kHybridRegionsPid);
  }
  for (const NodeId n : nodes) {
    comma();
    appendf(out,
            "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%u,"
            "\"args\":{\"name\":\"%s\"}}",
            n, node_label(topo, n).c_str());
  }
  for (const auto& [key, pc] : threads) {
    comma();
    appendf(out,
            "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%u,\"tid\":%d,"
            "\"args\":{\"name\":\"ingress port %u class %u\"}}",
            key.first, key.second, pc.first, pc.second);
  }

  // Pass 2: the events. Pause spans track open Xoffs per (pid, tid) so the
  // B/E pairs always nest (one span per queue at a time) and every span
  // left open at the window's end is closed at the final timestamp.
  std::map<std::pair<NodeId, int>, std::int64_t> open_pauses;
  std::int64_t last_ts = records.empty() ? 0 : records.back().t_ps;
  for (const TraceRecord& r : records) {
    const int tid = tid_of(r.port, r.cls);
    switch (r.kind) {
      case RecordKind::kPfcXoff:
        if (!opts.pause_spans) break;
        if (open_pauses.emplace(std::make_pair(r.node, tid), r.t_ps)
                .second) {
          comma();
          appendf(out,
                  "{\"name\":\"PFC pause\",\"cat\":\"pfc\",\"ph\":\"B\","
                  "\"pid\":%u,\"tid\":%d,\"ts\":",
                  r.node, tid);
          append_ts(out, r.t_ps);
          out += '}';
        }
        break;
      case RecordKind::kPfcXon:
        if (opts.pause_spans) {
          // A window that starts mid-pause sees an Xon with no open span;
          // skip it rather than emit an unbalanced E.
          if (open_pauses.erase({r.node, tid}) > 0) {
            comma();
            appendf(out,
                    "{\"ph\":\"E\",\"pid\":%u,\"tid\":%d,\"ts\":", r.node,
                    tid);
            append_ts(out, r.t_ps);
            out += '}';
          }
        }
        if (opts.xon_instants) {
          comma();
          appendf(out,
                  "{\"name\":\"pfc resume\",\"cat\":\"pfc\",\"ph\":\"i\","
                  "\"s\":\"t\",\"pid\":%u,\"tid\":%d,\"ts\":",
                  r.node, tid);
          append_ts(out, r.t_ps);
          out += '}';
        }
        break;
      case RecordKind::kQueueBytes:
        if (!opts.occupancy_counters) break;
        comma();
        appendf(out,
                "{\"name\":\"ingress p%u/c%u bytes\",\"ph\":\"C\","
                "\"pid\":%u,\"ts\":",
                r.port, r.cls, r.node);
        append_ts(out, r.t_ps);
        appendf(out, ",\"args\":{\"bytes\":%u}}", r.bytes);
        break;
      case RecordKind::kDropped:
        if (!opts.drop_instants) break;
        comma();
        appendf(out,
                "{\"name\":\"drop %s\",\"cat\":\"drop\",\"ph\":\"i\","
                "\"s\":\"p\",\"pid\":%u,\"tid\":0,\"ts\":",
                to_string(static_cast<DropReason>(r.reason)), r.node);
        append_ts(out, r.t_ps);
        appendf(out, ",\"args\":{\"flow\":%u,\"bytes\":%u}}", r.flow,
                r.bytes);
        break;
      case RecordKind::kCnp:
        if (!opts.cnp_instants) break;
        comma();
        appendf(out,
                "{\"name\":\"cnp\",\"cat\":\"cc\",\"ph\":\"i\",\"s\":\"g\","
                "\"pid\":%u,\"tid\":0,\"ts\":",
                r.node);
        append_ts(out, r.t_ps);
        appendf(out, ",\"args\":{\"flow\":%u}}", r.flow);
        break;
      case RecordKind::kDelivered:
        if (!opts.delivered_instants) break;
        comma();
        appendf(out,
                "{\"name\":\"delivered\",\"cat\":\"pkt\",\"ph\":\"i\","
                "\"s\":\"p\",\"pid\":%u,\"tid\":0,\"ts\":",
                r.node);
        append_ts(out, r.t_ps);
        appendf(out, ",\"args\":{\"flow\":%u,\"bytes\":%u}}", r.flow,
                r.bytes);
        break;
      case RecordKind::kTxStart:
        if (!opts.tx_instants) break;
        comma();
        appendf(out,
                "{\"name\":\"tx\",\"cat\":\"pkt\",\"ph\":\"i\",\"s\":\"t\","
                "\"pid\":%u,\"tid\":%d,\"ts\":",
                r.node, tid);
        append_ts(out, r.t_ps);
        appendf(out, ",\"args\":{\"flow\":%u,\"bytes\":%u}}", r.flow,
                r.bytes);
        break;
      case RecordKind::kDataplaneDetect:
      case RecordKind::kDataplaneRecover:
        if (!opts.dataplane_instants) break;
        comma();
        appendf(out,
                "{\"name\":\"dataplane %s\",\"cat\":\"dataplane\","
                "\"ph\":\"i\",\"s\":\"p\",\"pid\":%u,\"tid\":0,\"ts\":",
                to_string(static_cast<dataplane::DataplaneEvent>(r.reason)),
                r.node);
        append_ts(out, r.t_ps);
        appendf(out, ",\"args\":{\"cls\":%u,\"detail\":%u}}", r.cls,
                r.bytes);
        break;
      case RecordKind::kRegionState:
        if (!opts.region_counters) break;
        comma();
        appendf(out,
                "{\"name\":\"region %u level\",\"ph\":\"C\",\"pid\":%u,"
                "\"ts\":",
                r.node, kHybridRegionsPid);
        append_ts(out, r.t_ps);
        appendf(out, ",\"args\":{\"packet\":%u}}", r.bytes);
        break;
    }
  }
  // Close spans still open at the window's end (a deadlocked cycle's whole
  // point is that its pauses never release).
  for (const auto& [key, since] : open_pauses) {
    (void)since;
    comma();
    appendf(out, "{\"ph\":\"E\",\"pid\":%u,\"tid\":%d,\"ts\":", key.first,
            key.second);
    append_ts(out, last_ts);
    out += '}';
  }
  // Causality arrows: a legacy flow start inside the cause span bound to a
  // finish (bt=e: bind to the enclosing slice) inside the effect span.
  for (std::size_t i = 0; i < flows.size(); ++i) {
    const FlowArrow& a = flows[i];
    comma();
    appendf(out,
            "{\"name\":\"pause cascade\",\"cat\":\"forensics\",\"ph\":\"s\","
            "\"id\":%zu,\"pid\":%u,\"tid\":%d,\"ts\":",
            i + 1, a.from_node, tid_of(a.from_port, a.from_cls));
    append_ts(out, a.from_ts_ps);
    out += '}';
    comma();
    appendf(out,
            "{\"name\":\"pause cascade\",\"cat\":\"forensics\",\"ph\":\"f\","
            "\"bt\":\"e\",\"id\":%zu,\"pid\":%u,\"tid\":%d,\"ts\":",
            i + 1, a.to_node, tid_of(a.to_port, a.to_cls));
    append_ts(out, a.to_ts_ps);
    out += '}';
  }
  out += "\n]}\n";
  return out;
}

namespace {

void append_record_jsonl(std::string& out, const TraceRecord& r) {
  appendf(out, "{\"t_ps\":%" PRId64 ",\"kind\":\"%s\"", r.t_ps,
          to_string(r.kind));
  switch (r.kind) {
    case RecordKind::kPfcXoff:
    case RecordKind::kPfcXon:
      appendf(out, ",\"node\":%u,\"port\":%u,\"cls\":%u", r.node, r.port,
              r.cls);
      break;
    case RecordKind::kQueueBytes:
      appendf(out, ",\"node\":%u,\"port\":%u,\"cls\":%u,\"bytes\":%u",
              r.node, r.port, r.cls, r.bytes);
      break;
    case RecordKind::kTxStart:
      appendf(out, ",\"node\":%u,\"port\":%u,\"cls\":%u,\"flow\":%u,"
              "\"bytes\":%u",
              r.node, r.port, r.cls, r.flow, r.bytes);
      break;
    case RecordKind::kDelivered:
      appendf(out, ",\"node\":%u,\"cls\":%u,\"flow\":%u,\"bytes\":%u",
              r.node, r.cls, r.flow, r.bytes);
      break;
    case RecordKind::kDropped:
      appendf(out,
              ",\"node\":%u,\"cls\":%u,\"flow\":%u,\"bytes\":%u,"
              "\"reason\":\"%s\"",
              r.node, r.cls, r.flow, r.bytes,
              to_string(static_cast<DropReason>(r.reason)));
      break;
    case RecordKind::kCnp:
      appendf(out, ",\"flow\":%u", r.flow);
      break;
    case RecordKind::kDataplaneDetect:
    case RecordKind::kDataplaneRecover:
      appendf(out, ",\"node\":%u,\"cls\":%u,\"event\":\"%s\",\"detail\":%u",
              r.node, r.cls,
              to_string(static_cast<dataplane::DataplaneEvent>(r.reason)),
              r.bytes);
      break;
    case RecordKind::kRegionState:
      appendf(out, ",\"region\":%u,\"level\":\"%s\"", r.node,
              r.bytes != 0 ? "packet" : "fluid");
      break;
  }
  out += "}\n";
}

/// The header's optional topology field: enough to rebuild adjacency (and
/// pause-propagation delays) offline. Links are in add order, so replaying
/// them reproduces the original port numbering exactly.
void append_topology_field(std::string& out, const Topology& topo) {
  out += ",\"topology\":{\"nodes\":[";
  for (NodeId n = 0; n < topo.node_count(); ++n) {
    const NodeSpec& spec = topo.node(n);
    appendf(out, "%s{\"kind\":\"%s\",\"name\":\"%s\"}", n == 0 ? "" : ",",
            spec.kind == NodeKind::kSwitch ? "switch" : "host",
            spec.name.c_str());
  }
  out += "],\"links\":[";
  for (std::uint32_t l = 0; l < topo.link_count(); ++l) {
    const LinkSpec& link = topo.link(l);
    appendf(out, "%s{\"a\":%u,\"b\":%u,\"delay_ps\":%" PRId64 "}",
            l == 0 ? "" : ",", link.a, link.b, link.delay.ps());
  }
  out += "]}";
}

std::string jsonl_impl(const Topology* topo,
                       const std::vector<TraceRecord>& records) {
  std::string out;
  out.reserve(records.size() * 80 + 128);
  appendf(out, "{\"schema\":\"%s\",\"record_count\":%zu", kTelemetrySchema,
          records.size());
  if (topo != nullptr) append_topology_field(out, *topo);
  out += "}\n";
  for (const TraceRecord& r : records) append_record_jsonl(out, r);
  return out;
}

std::string post_mortem_impl(const Topology* topo,
                             const FlightRecorder& recorder,
                             const std::vector<stats::QueueKey>& cycle,
                             Time detected_at, std::size_t window) {
  const std::vector<TraceRecord> records = recorder.last(window);
  std::string out;
  out.reserve(records.size() * 80 + 256);
  appendf(out,
          "{\"schema\":\"%s\",\"post_mortem\":true,\"detected_at_ps\":"
          "%" PRId64 ",\"records_dropped\":%" PRIu64 ",\"record_count\":%zu,"
          "\"cycle\":[",
          kTelemetrySchema, detected_at.ps(),
          recorder.total_recorded() - records.size(), records.size());
  for (std::size_t i = 0; i < cycle.size(); ++i) {
    appendf(out, "%s{\"node\":%u,\"port\":%u,\"cls\":%u}",
            i == 0 ? "" : ",", cycle[i].node, cycle[i].port, cycle[i].cls);
  }
  out += ']';
  if (topo != nullptr) append_topology_field(out, *topo);
  out += "}\n";
  for (const TraceRecord& r : records) append_record_jsonl(out, r);
  return out;
}

}  // namespace

std::string to_jsonl(const std::vector<TraceRecord>& records) {
  return jsonl_impl(nullptr, records);
}

std::string to_jsonl(const Topology& topo,
                     const std::vector<TraceRecord>& records) {
  return jsonl_impl(&topo, records);
}

std::string post_mortem_jsonl(const FlightRecorder& recorder,
                              const std::vector<stats::QueueKey>& cycle,
                              Time detected_at, std::size_t window) {
  return post_mortem_impl(nullptr, recorder, cycle, detected_at, window);
}

std::string post_mortem_jsonl(const Topology& topo,
                              const FlightRecorder& recorder,
                              const std::vector<stats::QueueKey>& cycle,
                              Time detected_at, std::size_t window) {
  return post_mortem_impl(&topo, recorder, cycle, detected_at, window);
}

}  // namespace dcdl::telemetry
