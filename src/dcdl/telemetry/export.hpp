// Exporters for flight-recorder windows.
//
//  - to_perfetto_json: Chrome trace_event JSON (load in chrome://tracing or
//    ui.perfetto.dev). Each switch renders as a process; each (port, class)
//    ingress queue as a thread whose PFC pause is a span and whose
//    occupancy is a counter track — the paper's Fig. 3 timelines,
//    interactive.
//  - to_jsonl: the versioned `dcdl.telemetry.v1` line format — one header
//    line, then one JSON object per record — for scripted analysis.
//  - post_mortem_jsonl: a JSONL dump whose header names the confirmed
//    wait-for cycle, emitted when the deadlock detector fires.
//
// All output is deterministic: field order is fixed, doubles are printed
// with fixed precision, and content depends only on the record stream.
#pragma once

#include <string>
#include <vector>

#include "dcdl/stats/pause_log.hpp"
#include "dcdl/telemetry/recorder.hpp"
#include "dcdl/topo/topology.hpp"

namespace dcdl::telemetry {

/// Schema tag of the JSONL dump header; bump on any field change.
inline constexpr const char* kTelemetrySchema = "dcdl.telemetry.v1";

struct PerfettoOptions {
  bool pause_spans = true;         ///< PFC Xoff..Xon as B/E span pairs
  bool occupancy_counters = true;  ///< ingress counters as "C" tracks
  bool drop_instants = true;       ///< incl. TTL expiry ("drop ttl_expired")
  bool cnp_instants = true;
  /// Explicit instant marker at every Xon, independent of the B/E span
  /// bookkeeping — a resume is visible even when the window opened
  /// mid-pause and the matching span begin was overwritten.
  bool xon_instants = true;
  /// Per-packet instants; off by default (they dwarf everything else).
  bool delivered_instants = false;
  bool tx_instants = false;
  /// In-switch pipeline milestones (candidate/confirmed/recovered/...).
  bool dataplane_instants = true;
  /// Hybrid engine region-state track: one counter per region under a
  /// synthetic "hybrid regions" process (1 = packet level, 0 = fluid).
  bool region_counters = true;
};

/// A cause -> effect arrow between two pause spans, rendered as a Chrome
/// trace_event flow (s/f event pair). Produced by forensics::flow_arrows
/// from the causality DAG; kept a plain struct here so the exporter does
/// not depend on the forensics layer.
struct FlowArrow {
  std::uint32_t from_node = 0;
  std::uint16_t from_port = 0;
  std::uint8_t from_cls = 0;
  std::int64_t from_ts_ps = 0;
  std::uint32_t to_node = 0;
  std::uint16_t to_port = 0;
  std::uint8_t to_cls = 0;
  std::int64_t to_ts_ps = 0;
};

/// Renders `records` (oldest first, as returned by FlightRecorder) as a
/// Chrome trace_event JSON object. `topo` supplies node names and kinds for
/// the process/thread metadata. `flows` draws cause->effect arrows between
/// pause spans (the forensic cascade, interactive).
std::string to_perfetto_json(const Topology& topo,
                             const std::vector<TraceRecord>& records,
                             const PerfettoOptions& opts = {},
                             const std::vector<FlowArrow>& flows = {});

/// `dcdl.telemetry.v1` JSONL: header line, then one object per record.
std::string to_jsonl(const std::vector<TraceRecord>& records);
/// Same, with the topology (nodes + links) embedded in the header so the
/// dump is self-contained for offline causal analysis (`dcdl_forensics`).
/// Additive: readers of the bare v1 format ignore the extra header field.
std::string to_jsonl(const Topology& topo,
                     const std::vector<TraceRecord>& records);

/// The deadlock post-mortem: the recorder's newest `window` records as
/// JSONL, with the confirmed cycle and detection time in the header.
std::string post_mortem_jsonl(const FlightRecorder& recorder,
                              const std::vector<stats::QueueKey>& cycle,
                              Time detected_at, std::size_t window = 4096);
/// Topology-bearing post-mortem (offline-analyzable, like to_jsonl above).
std::string post_mortem_jsonl(const Topology& topo,
                              const FlightRecorder& recorder,
                              const std::vector<stats::QueueKey>& cycle,
                              Time detected_at, std::size_t window = 4096);

}  // namespace dcdl::telemetry
