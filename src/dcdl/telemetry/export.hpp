// Exporters for flight-recorder windows.
//
//  - to_perfetto_json: Chrome trace_event JSON (load in chrome://tracing or
//    ui.perfetto.dev). Each switch renders as a process; each (port, class)
//    ingress queue as a thread whose PFC pause is a span and whose
//    occupancy is a counter track — the paper's Fig. 3 timelines,
//    interactive.
//  - to_jsonl: the versioned `dcdl.telemetry.v1` line format — one header
//    line, then one JSON object per record — for scripted analysis.
//  - post_mortem_jsonl: a JSONL dump whose header names the confirmed
//    wait-for cycle, emitted when the deadlock detector fires.
//
// All output is deterministic: field order is fixed, doubles are printed
// with fixed precision, and content depends only on the record stream.
#pragma once

#include <string>
#include <vector>

#include "dcdl/stats/pause_log.hpp"
#include "dcdl/telemetry/recorder.hpp"
#include "dcdl/topo/topology.hpp"

namespace dcdl::telemetry {

/// Schema tag of the JSONL dump header; bump on any field change.
inline constexpr const char* kTelemetrySchema = "dcdl.telemetry.v1";

struct PerfettoOptions {
  bool pause_spans = true;         ///< PFC Xoff..Xon as B/E span pairs
  bool occupancy_counters = true;  ///< ingress counters as "C" tracks
  bool drop_instants = true;
  bool cnp_instants = true;
  /// Per-packet instants; off by default (they dwarf everything else).
  bool delivered_instants = false;
  bool tx_instants = false;
};

/// Renders `records` (oldest first, as returned by FlightRecorder) as a
/// Chrome trace_event JSON object. `topo` supplies node names and kinds for
/// the process/thread metadata.
std::string to_perfetto_json(const Topology& topo,
                             const std::vector<TraceRecord>& records,
                             const PerfettoOptions& opts = {});

/// `dcdl.telemetry.v1` JSONL: header line, then one object per record.
std::string to_jsonl(const std::vector<TraceRecord>& records);

/// The deadlock post-mortem: the recorder's newest `window` records as
/// JSONL, with the confirmed cycle and detection time in the header.
std::string post_mortem_jsonl(const FlightRecorder& recorder,
                              const std::vector<stats::QueueKey>& cycle,
                              Time detected_at, std::size_t window = 4096);

}  // namespace dcdl::telemetry
