#include "dcdl/telemetry/metrics.hpp"

#include <stdexcept>

#include "dcdl/stats/hooks.hpp"

namespace dcdl::telemetry {

const char* to_string(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

std::uint32_t MetricsRegistry::register_name(const std::string& name,
                                             MetricKind kind,
                                             std::uint32_t index_if_new) {
  if (const auto it = by_name_.find(name); it != by_name_.end()) {
    const Entry& e = names_[it->second];
    if (e.kind != kind) {
      throw std::invalid_argument("metric '" + name + "' already registered "
                                  "as a " + std::string(to_string(e.kind)));
    }
    return e.index;
  }
  by_name_[name] = static_cast<std::uint32_t>(names_.size());
  names_.push_back(Entry{name, kind, index_if_new});
  return index_if_new;
}

CounterId MetricsRegistry::counter(const std::string& name) {
  const auto next = static_cast<std::uint32_t>(counters_.size());
  const std::uint32_t idx =
      register_name(name, MetricKind::kCounter, next);
  if (idx == next) counters_.push_back(0);
  return CounterId{idx};
}

GaugeId MetricsRegistry::gauge(const std::string& name) {
  const auto next = static_cast<std::uint32_t>(gauges_.size());
  const std::uint32_t idx = register_name(name, MetricKind::kGauge, next);
  if (idx == next) gauges_.push_back(0);
  return GaugeId{idx};
}

HistogramId MetricsRegistry::histogram(const std::string& name,
                                       std::vector<double> bounds) {
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    if (bounds[i] <= bounds[i - 1]) {
      throw std::invalid_argument("histogram '" + name +
                                  "' bounds must be strictly ascending");
    }
  }
  const auto next = static_cast<std::uint32_t>(histograms_.size());
  const std::uint32_t idx =
      register_name(name, MetricKind::kHistogram, next);
  if (idx == next) {
    Histogram h;
    h.buckets.assign(bounds.size() + 1, 0);
    h.bounds = std::move(bounds);
    histograms_.push_back(std::move(h));
  } else if (histograms_[idx].bounds != bounds) {
    throw std::invalid_argument("histogram '" + name +
                                "' re-registered with different bounds");
  }
  return HistogramId{idx};
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot out;
  out.items.reserve(names_.size());
  for (const Entry& e : names_) {
    MetricsSnapshot::Item item;
    item.name = e.name;
    item.kind = e.kind;
    switch (e.kind) {
      case MetricKind::kCounter:
        item.value = static_cast<double>(counters_[e.index]);
        break;
      case MetricKind::kGauge:
        item.value = gauges_[e.index];
        break;
      case MetricKind::kHistogram: {
        const Histogram& h = histograms_[e.index];
        item.value = static_cast<double>(h.count);
        item.sum = h.sum;
        item.bounds = h.bounds;
        item.buckets = h.buckets;
        break;
      }
    }
    out.items.push_back(std::move(item));
  }
  return out;
}

std::vector<std::pair<std::string, double>> MetricsSnapshot::flatten() const {
  std::vector<std::pair<std::string, double>> out;
  out.reserve(items.size());
  for (const Item& item : items) {
    if (item.kind == MetricKind::kHistogram) {
      out.emplace_back(item.name + ".count", item.value);
      out.emplace_back(item.name + ".sum", item.sum);
      out.emplace_back(item.name + ".mean",
                       item.value > 0 ? item.sum / item.value : 0);
    } else {
      out.emplace_back(item.name, item.value);
    }
  }
  return out;
}

double MetricsSnapshot::value(const std::string& name, double fallback) const {
  for (const auto& [n, v] : flatten()) {
    if (n == name) return v;
  }
  return fallback;
}

RunMetricIds register_run_metrics(MetricsRegistry& reg) {
  RunMetricIds ids;
  ids.pfc_xoff = reg.counter("net.pfc_xoff_total");
  ids.pfc_xon = reg.counter("net.pfc_xon_total");
  ids.tx_starts = reg.counter("net.tx_start_total");
  ids.delivered_packets = reg.counter("net.delivered_packets_total");
  ids.delivered_bytes = reg.counter("net.delivered_bytes_total");
  ids.cnp = reg.counter("net.cnp_total");
  for (int r = 0; r < kNumDropReasons; ++r) {
    ids.dropped[r] = reg.counter(
        std::string("net.dropped_packets_total.") +
        to_string(static_cast<DropReason>(r)));
  }
  // Packet-size buckets: 64B control frames through jumbo.
  ids.delivered_size =
      reg.histogram("net.delivered_packet_bytes", {64, 256, 1024, 4096, 9216});
  ids.queued_bytes = reg.gauge("net.queued_bytes");
  ids.sim_events_executed = reg.gauge("sim.events_executed");
  ids.sim_events_scheduled = reg.gauge("sim.events_scheduled");
  ids.sim_events_cancelled = reg.gauge("sim.events_cancelled");
  ids.sim_events_pending = reg.gauge("sim.events_pending");
  ids.sim_slab_slots = reg.gauge("sim.slab_slots");
  ids.sim_slab_grows = reg.gauge("sim.slab_grows");
  ids.sim_heap_high_water = reg.gauge("sim.heap_high_water");
  return ids;
}

void attach_run_metrics(MetricsRegistry& reg, const RunMetricIds& ids,
                        Network& net) {
  Trace& t = net.trace();
  MetricsRegistry* r = &reg;
  stats::append_hook(
      t.pfc_state,
      [r, xoff = ids.pfc_xoff, xon = ids.pfc_xon](Time, NodeId, PortId,
                                                  ClassId, bool paused) {
        r->add(paused ? xoff : xon);
      });
  stats::append_hook(t.tx_start,
                     [r, id = ids.tx_starts](Time, const Packet&, NodeId,
                                             PortId) { r->add(id); });
  stats::append_hook(
      t.delivered,
      [r, pkts = ids.delivered_packets, bytes = ids.delivered_bytes,
       size = ids.delivered_size](Time, const Packet& pkt) {
        r->add(pkts);
        r->add(bytes, pkt.size_bytes);
        r->observe(size, static_cast<double>(pkt.size_bytes));
      });
  // The closure captures every per-reason counter id: a missing capture
  // here once routed kDataplaneReset drops into a value-initialized id —
  // slot 0, i.e. net.pfc_xoff_total (regression-tested in test_telemetry).
  stats::append_hook(
      t.dropped,
      [r, d0 = ids.dropped[0], d1 = ids.dropped[1], d2 = ids.dropped[2],
       d3 = ids.dropped[3],
       d4 = ids.dropped[4]](Time, const Packet&, NodeId, DropReason reason) {
        const CounterId by_reason[kNumDropReasons] = {d0, d1, d2, d3, d4};
        r->add(by_reason[static_cast<int>(reason)]);
      });
  stats::append_hook(t.cnp,
                     [r, id = ids.cnp](Time, FlowId) { r->add(id); });
}

void sample_run_metrics(MetricsRegistry& reg, const RunMetricIds& ids,
                        const Simulator& sim, const Network& net) {
  const Simulator::Counters c = sim.counters();
  reg.set(ids.queued_bytes, static_cast<double>(net.total_queued_bytes()));
  reg.set(ids.sim_events_executed, static_cast<double>(c.executed));
  reg.set(ids.sim_events_scheduled, static_cast<double>(c.scheduled));
  reg.set(ids.sim_events_cancelled, static_cast<double>(c.cancelled));
  reg.set(ids.sim_events_pending, static_cast<double>(c.pending));
  reg.set(ids.sim_slab_slots, static_cast<double>(c.slab_slots));
  reg.set(ids.sim_slab_grows, static_cast<double>(c.slab_grows));
  reg.set(ids.sim_heap_high_water, static_cast<double>(c.heap_high_water));
}

RunTelemetry::RunTelemetry(Network& net) : net_(net) {
  ids_ = register_run_metrics(reg_);
  attach_run_metrics(reg_, ids_, net_);
}

void RunTelemetry::finalize() {
  sample_run_metrics(reg_, ids_, net_.sim(), net_);
}

MetricsSnapshot RunTelemetry::snapshot() {
  finalize();
  return reg_.snapshot();
}

}  // namespace dcdl::telemetry
