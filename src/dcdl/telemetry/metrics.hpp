// Metrics registry: named counters, gauges, and histograms backed by
// preallocated dense slots, so every run — standalone, campaign cell, or
// bench — exposes one uniform snapshot of what the simulator and network
// actually did.
//
// Two-phase contract (FlowSlotRegistry-style): registration happens during
// setup and may allocate (name table, bucket storage); after that the hot
// path is `counters_[id.v] += delta` / `gauges_[id.v] = v` / a bucket scan —
// a bare vector index, never a hash lookup, never an allocation. Typed id
// structs make it a compile error to bump a gauge or set a counter.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "dcdl/device/network.hpp"
#include "dcdl/sim/simulator.hpp"

namespace dcdl::telemetry {

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };
const char* to_string(MetricKind kind);

struct CounterId { std::uint32_t v = 0; };
struct GaugeId { std::uint32_t v = 0; };
struct HistogramId { std::uint32_t v = 0; };

/// A point-in-time copy of every registered metric, in registration order
/// (deterministic: depends only on setup code, never on run interleaving).
struct MetricsSnapshot {
  struct Item {
    std::string name;
    MetricKind kind = MetricKind::kCounter;
    /// Counter/gauge: the value. Histogram: total observation count.
    double value = 0;
    // Histogram-only detail.
    double sum = 0;
    std::vector<double> bounds;          ///< ascending upper bounds
    std::vector<std::uint64_t> buckets;  ///< bounds.size() + 1 (last = +inf)
  };
  std::vector<Item> items;

  /// Flat name -> value view for embedding in campaign records: counters and
  /// gauges verbatim; a histogram contributes `<name>.count`, `<name>.sum`,
  /// and `<name>.mean`.
  std::vector<std::pair<std::string, double>> flatten() const;
  /// Lookup by flattened name; returns `fallback` when absent.
  double value(const std::string& name, double fallback = 0) const;
};

class MetricsRegistry {
 public:
  /// Registration is idempotent per name; re-registering an existing name
  /// with a different kind (or different histogram bounds) throws
  /// std::invalid_argument — two subsystems silently sharing a slot is
  /// always a bug.
  CounterId counter(const std::string& name);
  GaugeId gauge(const std::string& name);
  /// `bounds` are ascending bucket upper bounds; an implicit +inf bucket is
  /// appended.
  HistogramId histogram(const std::string& name, std::vector<double> bounds);

  // --- Hot path: dense slot ops, zero allocation. ---
  void add(CounterId id, std::uint64_t delta = 1) {
    counters_[id.v] += delta;
  }
  void set(GaugeId id, double v) { gauges_[id.v] = v; }
  /// Bucket-boundary semantics (part of every exported artifact, pinned by
  /// test_telemetry's boundary regression tests):
  ///   - bounds are *inclusive* upper edges: v lands in the first bucket b
  ///     with v <= bounds[b], so a value exactly on a boundary belongs to
  ///     the bucket that boundary closes, never the one above it;
  ///   - anything above the last bound saturates into the implicit +inf
  ///     overflow bucket — observations are never dropped;
  ///   - non-finite values (NaN, +/-inf) also saturate into the overflow
  ///     bucket and are excluded from `sum`, so one bad sample cannot
  ///     poison the mean or leak into the smallest bucket (NaN compares
  ///     false against every bound). `count` still includes them: the
  ///     count/sum discrepancy is the visible signal that it happened.
  void observe(HistogramId id, double v) {
    Histogram& h = histograms_[id.v];
    std::size_t b = h.bounds.size();  // the saturating overflow bucket
    if (v == v && v <= std::numeric_limits<double>::max() &&
        v >= std::numeric_limits<double>::lowest()) {
      b = 0;
      while (b < h.bounds.size() && v > h.bounds[b]) ++b;
      h.sum += v;
    }
    ++h.buckets[b];
    ++h.count;
  }

  std::uint64_t counter_value(CounterId id) const { return counters_[id.v]; }
  double gauge_value(GaugeId id) const { return gauges_[id.v]; }
  std::uint64_t histogram_count(HistogramId id) const {
    return histograms_[id.v].count;
  }

  std::size_t size() const { return names_.size(); }
  MetricsSnapshot snapshot() const;

 private:
  struct Histogram {
    std::vector<double> bounds;
    std::vector<std::uint64_t> buckets;  ///< bounds.size() + 1
    std::uint64_t count = 0;
    double sum = 0;
  };
  /// Registration-ordered directory: (name, kind, dense index).
  struct Entry {
    std::string name;
    MetricKind kind;
    std::uint32_t index;
  };

  std::uint32_t register_name(const std::string& name, MetricKind kind,
                              std::uint32_t index_if_new);

  std::vector<Entry> names_;
  std::map<std::string, std::uint32_t> by_name_;  ///< name -> names_ index
  std::vector<std::uint64_t> counters_;
  std::vector<double> gauges_;
  std::vector<Histogram> histograms_;
};

/// The uniform per-run metric set: every campaign record and every
/// `--metrics` report exposes exactly these names (plus whatever the caller
/// registers on top).
struct RunMetricIds {
  // Event-driven counters (fed from Trace hooks).
  CounterId pfc_xoff;
  CounterId pfc_xon;
  CounterId tx_starts;
  CounterId delivered_packets;
  CounterId delivered_bytes;
  CounterId cnp;
  CounterId dropped[kNumDropReasons];
  HistogramId delivered_size;

  // Sampled at snapshot time.
  GaugeId queued_bytes;
  GaugeId sim_events_executed;
  GaugeId sim_events_scheduled;
  GaugeId sim_events_cancelled;
  GaugeId sim_events_pending;
  GaugeId sim_slab_slots;
  GaugeId sim_slab_grows;
  GaugeId sim_heap_high_water;
};

/// Bundles a registry pre-loaded with the uniform set, already chained onto
/// `net`'s trace hooks. Construct after the network, before the run;
/// finalize() samples the gauges (simulator counters, trapped bytes) —
/// call it at the measurement point, then snapshot().
class RunTelemetry {
 public:
  explicit RunTelemetry(Network& net);
  /// The trace hooks hold a pointer to reg_: the object must stay put.
  RunTelemetry(const RunTelemetry&) = delete;
  RunTelemetry& operator=(const RunTelemetry&) = delete;

  MetricsRegistry& registry() { return reg_; }
  const RunMetricIds& ids() const { return ids_; }

  /// Samples the point-in-time gauges off the simulator and network.
  void finalize();
  /// finalize() + snapshot() convenience.
  MetricsSnapshot snapshot();

 private:
  Network& net_;
  MetricsRegistry reg_;
  RunMetricIds ids_;
};

/// Registers the uniform set into an existing registry (for callers that
/// manage their own).
RunMetricIds register_run_metrics(MetricsRegistry& reg);
/// Chains counter-feeding observers onto `net`'s trace hooks. `reg` and the
/// id set must outlive the network's dispatches.
void attach_run_metrics(MetricsRegistry& reg, const RunMetricIds& ids,
                        Network& net);
/// Samples the gauges of the uniform set.
void sample_run_metrics(MetricsRegistry& reg, const RunMetricIds& ids,
                        const Simulator& sim, const Network& net);

}  // namespace dcdl::telemetry
