// The flight recorder's unit of storage: one fixed-layout POD record per
// observed event. Records are written into a preallocated ring on the hot
// path, so the layout is pinned: trivially copyable, standard layout, and
// exactly 32 bytes (two records per cache line). The static_asserts below
// make any accidental growth (a new field, a wider type, an implicit
// vtable) a compile error instead of a silent hot-path regression.
#pragma once

#include <cstdint>
#include <type_traits>

#include "dcdl/common/units.hpp"
#include "dcdl/device/trace.hpp"
#include "dcdl/net/packet.hpp"

namespace dcdl::telemetry {

/// What a TraceRecord describes. Values are part of the on-disk
/// `dcdl.telemetry.v1` schema — append only, never renumber.
enum class RecordKind : std::uint8_t {
  kPfcXoff = 0,     ///< ingress (node, port, cls) asserted PAUSE upstream
  kPfcXon = 1,      ///< ingress (node, port, cls) released its pause
  kTxStart = 2,     ///< (node, port) began serializing a packet
  kDelivered = 3,   ///< packet reached its destination host (node = dst)
  kDropped = 4,     ///< packet dropped at node; `reason` holds DropReason
  kCnp = 5,         ///< congestion notification delivered to flow's source
  kQueueBytes = 6,  ///< ingress counter (node, port, cls) now holds `bytes`
  /// Data-plane pipeline milestone at `node`; `reason` holds the
  /// dataplane::DataplaneEvent and `bytes` its detail word (tag hop count
  /// for candidates, queues acted on for recoveries).
  kDataplaneDetect = 7,
  kDataplaneRecover = 8,  ///< recovery action / re-arm at `node`
  /// Hybrid engine zoom transition: `node` holds the region index and
  /// `bytes` is 1 for an escalation to packet level, 0 for a de-escalation
  /// back to fluid. Fired from control phases only.
  kRegionState = 9,
};
constexpr int kNumRecordKinds = 10;

const char* to_string(RecordKind kind);

/// One observation. Field meaning varies slightly by kind (documented per
/// kind above); unused fields are zero so identical streams are
/// byte-comparable.
struct TraceRecord {
  std::int64_t t_ps = 0;      ///< simulated time, picoseconds
  std::uint32_t node = 0;     ///< switch/host the event happened at
  std::uint32_t flow = 0;     ///< flow id, 0 when not flow-scoped (PFC)
  /// kQueueBytes: the counter value. Packet kinds: packet size. Else 0.
  /// 32 bits caps a recorded counter at 4 GiB — far above any switch
  /// buffer this model configures (12 MiB default).
  std::uint32_t bytes = 0;
  std::uint16_t port = 0;     ///< port index, 0xFFFF when not port-scoped
  std::uint8_t cls = 0;       ///< PFC class / packet priority
  RecordKind kind = RecordKind::kPfcXoff;
  std::uint8_t reason = 0;    ///< DropReason for kDropped, else 0
  std::uint8_t pad_[7] = {};  ///< explicit: the asserts pin sizeof at 32
};

static_assert(std::is_trivially_copyable_v<TraceRecord>,
              "flight-recorder records must be memcpy-safe PODs");
static_assert(std::is_standard_layout_v<TraceRecord>,
              "flight-recorder records must have a pinned layout");
static_assert(sizeof(TraceRecord) == 32,
              "flight-recorder record grew: two records must fit one cache "
              "line, and the dcdl.telemetry.v1 layout is frozen");
static_assert(alignof(TraceRecord) == 8, "record alignment is part of the "
              "ring layout");

}  // namespace dcdl::telemetry
