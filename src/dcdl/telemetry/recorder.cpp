#include "dcdl/telemetry/recorder.hpp"

#include "dcdl/common/contract.hpp"
#include "dcdl/stats/hooks.hpp"

namespace dcdl::telemetry {

const char* to_string(RecordKind kind) {
  switch (kind) {
    case RecordKind::kPfcXoff: return "pfc_xoff";
    case RecordKind::kPfcXon: return "pfc_xon";
    case RecordKind::kTxStart: return "tx_start";
    case RecordKind::kDelivered: return "delivered";
    case RecordKind::kDropped: return "dropped";
    case RecordKind::kCnp: return "cnp";
    case RecordKind::kQueueBytes: return "queue_bytes";
    case RecordKind::kDataplaneDetect: return "dataplane_detect";
    case RecordKind::kDataplaneRecover: return "dataplane_recover";
    case RecordKind::kRegionState: return "region_state";
  }
  return "?";
}

namespace {

std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

FlightRecorder::FlightRecorder(std::size_t capacity) {
  DCDL_EXPECTS(capacity > 0);
  ring_.resize(round_up_pow2(capacity));
  mask_ = ring_.size() - 1;
}

void FlightRecorder::attach(Network& net, const AttachOptions& opts) {
  Trace& t = net.trace();
  if (opts.pfc) {
    stats::append_hook(
        t.pfc_state,
        [this](Time at, NodeId node, PortId port, ClassId cls, bool paused) {
          TraceRecord r;
          r.t_ps = at.ps();
          r.node = node;
          r.port = port;
          r.cls = cls;
          r.kind = paused ? RecordKind::kPfcXoff : RecordKind::kPfcXon;
          record(r);
        });
  }
  if (opts.tx_start) {
    stats::append_hook(
        t.tx_start,
        [this](Time at, const Packet& pkt, NodeId node, PortId port) {
          TraceRecord r;
          r.t_ps = at.ps();
          r.node = node;
          r.flow = pkt.flow;
          r.bytes = pkt.size_bytes;
          r.port = port;
          r.cls = pkt.prio;
          r.kind = RecordKind::kTxStart;
          record(r);
        });
  }
  if (opts.delivered) {
    stats::append_hook(t.delivered, [this](Time at, const Packet& pkt) {
      TraceRecord r;
      r.t_ps = at.ps();
      r.node = pkt.dst;
      r.flow = pkt.flow;
      r.bytes = pkt.size_bytes;
      r.port = kInvalidPort;
      r.cls = pkt.prio;
      r.kind = RecordKind::kDelivered;
      record(r);
    });
  }
  if (opts.dropped) {
    stats::append_hook(
        t.dropped,
        [this](Time at, const Packet& pkt, NodeId node, DropReason reason) {
          TraceRecord r;
          r.t_ps = at.ps();
          r.node = node;
          r.flow = pkt.flow;
          r.bytes = pkt.size_bytes;
          r.port = kInvalidPort;
          r.cls = pkt.prio;
          r.kind = RecordKind::kDropped;
          r.reason = static_cast<std::uint8_t>(reason);
          record(r);
        });
  }
  if (opts.cnp) {
    stats::append_hook(t.cnp, [this](Time at, FlowId flow) {
      TraceRecord r;
      r.t_ps = at.ps();
      r.flow = flow;
      r.port = kInvalidPort;
      r.kind = RecordKind::kCnp;
      record(r);
    });
  }
  if (opts.queue_bytes) {
    stats::append_hook(
        t.queue_bytes,
        [this](Time at, NodeId node, PortId port, ClassId cls,
               std::int64_t bytes) {
          TraceRecord r;
          r.t_ps = at.ps();
          r.node = node;
          r.bytes = static_cast<std::uint32_t>(bytes);
          r.port = port;
          r.cls = cls;
          r.kind = RecordKind::kQueueBytes;
          record(r);
        });
  }
  if (opts.dataplane) {
    stats::append_hook(
        t.dataplane,
        [this](Time at, NodeId node, dataplane::DataplaneEvent ev,
               ClassId cls, std::uint64_t detail) {
          TraceRecord r;
          r.t_ps = at.ps();
          r.node = node;
          r.bytes = static_cast<std::uint32_t>(detail);
          r.port = kInvalidPort;
          r.cls = cls;
          r.kind = (ev == dataplane::DataplaneEvent::kRecovered ||
                    ev == dataplane::DataplaneEvent::kRearmed)
                       ? RecordKind::kDataplaneRecover
                       : RecordKind::kDataplaneDetect;
          r.reason = static_cast<std::uint8_t>(ev);
          record(r);
        });
  }
  if (opts.region_state) {
    stats::append_hook(
        t.region_state,
        [this](Time at, std::uint32_t region, bool to_packet) {
          TraceRecord r;
          r.t_ps = at.ps();
          r.node = region;
          r.bytes = to_packet ? 1 : 0;
          r.port = kInvalidPort;
          r.kind = RecordKind::kRegionState;
          record(r);
        });
  }
}

std::size_t FlightRecorder::size() const {
  return total_ < ring_.size() ? static_cast<std::size_t>(total_)
                               : ring_.size();
}

std::vector<TraceRecord> FlightRecorder::snapshot() const {
  return last(size());
}

std::vector<TraceRecord> FlightRecorder::last(std::size_t n) const {
  const std::size_t have = size();
  if (n > have) n = have;
  std::vector<TraceRecord> out;
  out.reserve(n);
  for (std::uint64_t i = total_ - n; i != total_; ++i) {
    out.push_back(ring_[static_cast<std::size_t>(i) & mask_]);
  }
  return out;
}

}  // namespace dcdl::telemetry
