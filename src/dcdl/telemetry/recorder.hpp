// Flight recorder: a fixed-capacity ring of POD TraceRecords, continuously
// overwritten on the hot path and dumped on demand — most importantly when
// the deadlock detector confirms a stuck cycle, so the exact pause sequence
// that closed the cycle is available post-mortem (DCFIT's point: locating
// the *initial trigger* needs in-network history, not end-state guessing).
//
// Zero-allocation contract: the ring is preallocated at construction and
// record() is an index-masked store. Attaching chains InplaceFn observers
// (capturing one pointer) onto the network's Trace slots; nothing on the
// record path can touch the heap.
#pragma once

#include <cstdint>
#include <vector>

#include "dcdl/device/network.hpp"
#include "dcdl/telemetry/record.hpp"

namespace dcdl::telemetry {

class FlightRecorder {
 public:
  /// Which Trace slots attach() subscribes to. kQueueBytes fires per packet
  /// admission *and* departure, roughly doubling record volume — on by
  /// default because occupancy is what makes a post-mortem readable, but
  /// maskable for long windows of sparse events.
  struct AttachOptions {
    bool pfc = true;
    bool tx_start = true;
    bool delivered = true;
    bool dropped = true;
    bool cnp = true;
    bool queue_bytes = true;
    bool dataplane = true;     ///< in-switch detection/recovery milestones
    bool region_state = true;  ///< hybrid engine zoom transitions
  };

  /// Preallocates storage for `capacity` records (rounded up to a power of
  /// two so the ring index is a mask, not a division). Default 64Ki records
  /// = 2 MiB: ~a millisecond of a fully loaded four-switch run.
  explicit FlightRecorder(std::size_t capacity = 1u << 16);

  /// Chains this recorder onto `net`'s trace hooks. May be called for
  /// several networks (a multi-fabric setup shares one timeline). The
  /// recorder must outlive the network's hook dispatches.
  void attach(Network& net, const AttachOptions& opts);
  void attach(Network& net) { attach(net, AttachOptions()); }

  /// Hot path: O(1), allocation-free, overwrites the oldest record.
  void record(const TraceRecord& r) {
    ring_[static_cast<std::size_t>(total_) & mask_] = r;
    ++total_;
  }

  std::size_t capacity() const { return ring_.size(); }
  /// Records ever written (monotonic; > capacity() once wrapped).
  std::uint64_t total_recorded() const { return total_; }
  /// Records currently held (== capacity once wrapped).
  std::size_t size() const;

  /// The retained window, oldest record first.
  std::vector<TraceRecord> snapshot() const;
  /// The newest min(n, size()) records, oldest first — the "last N events
  /// before the deadlock" dump.
  std::vector<TraceRecord> last(std::size_t n) const;

  void clear() { total_ = 0; }

 private:
  std::vector<TraceRecord> ring_;
  std::size_t mask_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace dcdl::telemetry
