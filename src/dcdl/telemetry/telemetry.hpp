// Umbrella for the telemetry subsystem: watching a lossless fabric without
// perturbing it.
//
//   TraceRecord / RecordKind — 32-byte POD observation (record.hpp)
//   FlightRecorder           — fixed-capacity ring, deadlock post-mortems
//   MetricsRegistry          — dense named counters/gauges/histograms
//   RunTelemetry             — the uniform per-run metric set, pre-wired
//   to_perfetto_json / to_jsonl / post_mortem_jsonl — exporters
//
// Everything preallocates at attach time; the steady-state record path is
// allocation-free (enforced by tests/test_zero_alloc.cpp).
#pragma once

#include "dcdl/telemetry/export.hpp"
#include "dcdl/telemetry/metrics.hpp"
#include "dcdl/telemetry/record.hpp"
#include "dcdl/telemetry/recorder.hpp"
