#include "dcdl/topo/generators.hpp"

#include <algorithm>
#include <set>
#include <string>

#include "dcdl/common/contract.hpp"

namespace dcdl::topo {

namespace {
std::string idx_name(const char* prefix, int i) {
  return std::string(prefix) + std::to_string(i);
}
}  // namespace

RingTopo make_ring(int n, int hosts_per_switch, LinkParams lp) {
  DCDL_EXPECTS(n >= 2);
  RingTopo out;
  for (int i = 0; i < n; ++i) {
    out.switches.push_back(out.topo.add_switch(idx_name("S", i), 1));
  }
  // For n == 2 the "ring" degenerates to a single full-duplex link.
  const int ring_links = n == 2 ? 1 : n;
  for (int i = 0; i < ring_links; ++i) {
    out.topo.add_link(out.switches[i], out.switches[(i + 1) % n], lp.rate,
                      lp.delay);
  }
  out.hosts.resize(n);
  for (int i = 0; i < n; ++i) {
    for (int h = 0; h < hosts_per_switch; ++h) {
      const NodeId host = out.topo.add_host(
          idx_name("H", i * hosts_per_switch + h));
      out.topo.add_link(out.switches[i], host, lp.rate, lp.delay);
      out.hosts[i].push_back(host);
    }
  }
  return out;
}

RingTopo make_line(int n, int hosts_per_switch, LinkParams lp) {
  DCDL_EXPECTS(n >= 1);
  RingTopo out;
  for (int i = 0; i < n; ++i) {
    out.switches.push_back(out.topo.add_switch(idx_name("S", i), 1));
  }
  for (int i = 0; i + 1 < n; ++i) {
    out.topo.add_link(out.switches[i], out.switches[i + 1], lp.rate, lp.delay);
  }
  out.hosts.resize(n);
  for (int i = 0; i < n; ++i) {
    for (int h = 0; h < hosts_per_switch; ++h) {
      const NodeId host = out.topo.add_host(
          idx_name("H", i * hosts_per_switch + h));
      out.topo.add_link(out.switches[i], host, lp.rate, lp.delay);
      out.hosts[i].push_back(host);
    }
  }
  return out;
}

MeshTopo make_mesh(int rows, int cols, LinkParams lp) {
  DCDL_EXPECTS(rows >= 1 && cols >= 1);
  MeshTopo out;
  out.rows = rows;
  out.cols = cols;
  out.sw.assign(rows, std::vector<NodeId>(cols));
  out.host.assign(rows, std::vector<NodeId>(cols));
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      out.sw[r][c] = out.topo.add_switch(
          "S" + std::to_string(r) + "_" + std::to_string(c), 1);
    }
  }
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols) {
        out.topo.add_link(out.sw[r][c], out.sw[r][c + 1], lp.rate, lp.delay);
      }
      if (r + 1 < rows) {
        out.topo.add_link(out.sw[r][c], out.sw[r + 1][c], lp.rate, lp.delay);
      }
    }
  }
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      out.host[r][c] = out.topo.add_host(
          "H" + std::to_string(r) + "_" + std::to_string(c));
      out.topo.add_link(out.sw[r][c], out.host[r][c], lp.rate, lp.delay);
    }
  }
  return out;
}

LeafSpineTopo make_leaf_spine(int num_leaves, int num_spines,
                              int hosts_per_leaf, LinkParams lp) {
  DCDL_EXPECTS(num_leaves >= 1 && num_spines >= 1 && hosts_per_leaf >= 0);
  LeafSpineTopo out;
  for (int i = 0; i < num_leaves; ++i) {
    out.leaves.push_back(out.topo.add_switch(idx_name("leaf", i), 1));
  }
  for (int i = 0; i < num_spines; ++i) {
    out.spines.push_back(out.topo.add_switch(idx_name("spine", i), 2));
  }
  for (const NodeId leaf : out.leaves) {
    for (const NodeId spine : out.spines) {
      out.topo.add_link(leaf, spine, lp.rate, lp.delay);
    }
  }
  out.hosts.resize(num_leaves);
  int h = 0;
  for (int i = 0; i < num_leaves; ++i) {
    for (int j = 0; j < hosts_per_leaf; ++j) {
      const NodeId host = out.topo.add_host(idx_name("H", h++));
      out.topo.add_link(out.leaves[i], host, lp.rate, lp.delay);
      out.hosts[i].push_back(host);
    }
  }
  return out;
}

FatTreeTopo make_fat_tree(int k, LinkParams lp) {
  DCDL_EXPECTS(k >= 2 && k % 2 == 0);
  FatTreeTopo out;
  out.k = k;
  const int half = k / 2;
  // Core switches.
  for (int i = 0; i < half * half; ++i) {
    out.core.push_back(out.topo.add_switch(idx_name("core", i), 3));
  }
  out.agg.resize(k);
  out.edge.resize(k);
  for (int pod = 0; pod < k; ++pod) {
    for (int i = 0; i < half; ++i) {
      out.agg[pod].push_back(out.topo.add_switch(
          "agg" + std::to_string(pod) + "_" + std::to_string(i), 2));
      out.edge[pod].push_back(out.topo.add_switch(
          "edge" + std::to_string(pod) + "_" + std::to_string(i), 1));
    }
    // Pod-internal full bipartite agg <-> edge.
    for (int a = 0; a < half; ++a) {
      for (int e = 0; e < half; ++e) {
        out.topo.add_link(out.agg[pod][a], out.edge[pod][e], lp.rate, lp.delay);
      }
    }
    // Core uplinks: agg switch a in each pod connects to cores
    // [a*half, (a+1)*half).
    for (int a = 0; a < half; ++a) {
      for (int c = 0; c < half; ++c) {
        out.topo.add_link(out.core[a * half + c], out.agg[pod][a], lp.rate,
                          lp.delay);
      }
    }
    // Hosts.
    for (int e = 0; e < half; ++e) {
      for (int h = 0; h < half; ++h) {
        const NodeId host = out.topo.add_host(
            "h" + std::to_string(pod) + "_" + std::to_string(e) + "_" +
            std::to_string(h));
        out.topo.add_link(out.edge[pod][e], host, lp.rate, lp.delay);
        out.all_hosts.push_back(host);
      }
    }
  }
  return out;
}

BCubeTopo make_bcube(int n, int k, LinkParams lp) {
  DCDL_EXPECTS(n >= 2 && k >= 0 && k <= 3);
  BCubeTopo out;
  out.n = n;
  out.k = k;
  int num_hosts = 1;
  for (int i = 0; i <= k; ++i) num_hosts *= n;
  for (int h = 0; h < num_hosts; ++h) {
    out.hosts.push_back(out.topo.add_host(idx_name("srv", h)));
  }
  const int switches_per_level = num_hosts / n;
  out.level_switches.resize(k + 1);
  for (int level = 0; level <= k; ++level) {
    for (int s = 0; s < switches_per_level; ++s) {
      out.level_switches[level].push_back(out.topo.add_switch(
          "b" + std::to_string(level) + "_" + std::to_string(s), level + 1));
    }
    // Host h (digits d_k..d_0 base n) connects to level-l switch indexed by
    // the digits of h with digit l removed.
    for (int h = 0; h < num_hosts; ++h) {
      int high = h;
      int low = 0;
      int pow_l = 1;
      for (int i = 0; i < level; ++i) pow_l *= n;
      low = h % pow_l;
      high = h / (pow_l * n);
      const int sw_index = high * pow_l + low;
      out.topo.add_link(out.level_switches[level][sw_index], out.hosts[h],
                        lp.rate, lp.delay);
    }
  }
  return out;
}

BCubeRelayTopo make_bcube_relay(int n, int k, LinkParams lp) {
  DCDL_EXPECTS(n >= 2 && k >= 0 && k <= 3);
  BCubeRelayTopo out;
  out.n = n;
  out.k = k;
  int num_servers = 1;
  for (int i = 0; i <= k; ++i) num_servers *= n;
  for (int s = 0; s < num_servers; ++s) {
    out.servers.push_back(out.topo.add_switch(idx_name("nic", s), 0));
  }
  const int switches_per_level = num_servers / n;
  out.level_switches.resize(k + 1);
  for (int level = 0; level <= k; ++level) {
    for (int s = 0; s < switches_per_level; ++s) {
      out.level_switches[level].push_back(out.topo.add_switch(
          "b" + std::to_string(level) + "_" + std::to_string(s), level + 1));
    }
    for (int srv = 0; srv < num_servers; ++srv) {
      int pow_l = 1;
      for (int i = 0; i < level; ++i) pow_l *= n;
      const int low = srv % pow_l;
      const int high = srv / (pow_l * n);
      const int sw_index = high * pow_l + low;
      out.topo.add_link(out.level_switches[level][sw_index],
                        out.servers[static_cast<std::size_t>(srv)], lp.rate,
                        lp.delay);
    }
  }
  for (int s = 0; s < num_servers; ++s) {
    const NodeId host = out.topo.add_host(idx_name("srv", s));
    out.topo.add_link(out.servers[static_cast<std::size_t>(s)], host, lp.rate,
                      lp.delay);
    out.hosts.push_back(host);
  }
  return out;
}

JellyfishTopo make_jellyfish(int num_switches, int degree,
                             int hosts_per_switch, std::uint64_t seed,
                             LinkParams lp) {
  DCDL_EXPECTS(num_switches > degree);
  DCDL_EXPECTS((num_switches * degree) % 2 == 0);
  JellyfishTopo out;
  for (int i = 0; i < num_switches; ++i) {
    out.switches.push_back(out.topo.add_switch(idx_name("J", i), 1));
  }
  // Random regular graph via repeated pairing of free stubs; restart on a
  // dead end (simple and adequate at the scales we simulate).
  Rng rng(seed);
  std::set<std::pair<int, int>> edges;
  for (int attempt = 0; attempt < 1000; ++attempt) {
    edges.clear();
    std::vector<int> stubs;
    for (int i = 0; i < num_switches; ++i) {
      for (int d = 0; d < degree; ++d) stubs.push_back(i);
    }
    rng.shuffle(stubs.begin(), stubs.end());
    bool ok = true;
    for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
      int a = stubs[i], b = stubs[i + 1];
      if (a == b) { ok = false; break; }
      if (a > b) std::swap(a, b);
      if (!edges.insert({a, b}).second) { ok = false; break; }
    }
    if (ok) break;
  }
  DCDL_ASSERT(!edges.empty());
  for (const auto& [a, b] : edges) {
    out.topo.add_link(out.switches[a], out.switches[b], lp.rate, lp.delay);
  }
  out.hosts.resize(num_switches);
  int h = 0;
  for (int i = 0; i < num_switches; ++i) {
    for (int j = 0; j < hosts_per_switch; ++j) {
      const NodeId host = out.topo.add_host(idx_name("H", h++));
      out.topo.add_link(out.switches[i], host, lp.rate, lp.delay);
      out.hosts[i].push_back(host);
    }
  }
  return out;
}

}  // namespace dcdl::topo
