// Canonical datacenter (and test) topology generators.
//
// Every generator attaches hosts where the experiments need traffic
// endpoints and annotates switch tiers so tier-aware PFC threshold policies
// (paper §4, "limiting PFC pause frame propagation") can be applied.
#pragma once

#include <cstdint>
#include <vector>

#include "dcdl/common/rng.hpp"
#include "dcdl/common/units.hpp"
#include "dcdl/topo/topology.hpp"

namespace dcdl::topo {

struct LinkParams {
  Rate rate = Rate::gbps(40);
  Time delay = Time{1'000'000};  // 1 us
};

/// A ring of `n` switches, each with `hosts_per_switch` hosts.
/// The 3-switch ring is the paper's Figure 1 deadlock illustration.
struct RingTopo {
  Topology topo;
  std::vector<NodeId> switches;               // in ring order
  std::vector<std::vector<NodeId>> hosts;     // hosts[i] under switches[i]
};
RingTopo make_ring(int n, int hosts_per_switch = 1, LinkParams lp = {});

/// A line (path) of `n` switches with hosts at each switch.
RingTopo make_line(int n, int hosts_per_switch = 1, LinkParams lp = {});

/// rows x cols grid of switches, one host each; used for mesh-routing and
/// odd-even turn-model experiments.
struct MeshTopo {
  Topology topo;
  std::vector<std::vector<NodeId>> sw;     // sw[r][c]
  std::vector<std::vector<NodeId>> host;   // host[r][c]
  int rows = 0, cols = 0;
};
MeshTopo make_mesh(int rows, int cols, LinkParams lp = {});

/// Two-tier leaf-spine fabric: every leaf connects to every spine.
struct LeafSpineTopo {
  Topology topo;
  std::vector<NodeId> leaves;               // tier 1
  std::vector<NodeId> spines;               // tier 2
  std::vector<std::vector<NodeId>> hosts;   // hosts[i] under leaves[i]
};
LeafSpineTopo make_leaf_spine(int num_leaves, int num_spines,
                              int hosts_per_leaf, LinkParams lp = {});

/// Canonical k-ary fat-tree (k even): k pods, (k/2)^2 core switches,
/// k/2 aggregation + k/2 edge per pod, (k/2) hosts per edge switch.
struct FatTreeTopo {
  Topology topo;
  int k = 0;
  std::vector<NodeId> core;                          // tier 3
  std::vector<std::vector<NodeId>> agg;              // [pod][i], tier 2
  std::vector<std::vector<NodeId>> edge;             // [pod][i], tier 1
  std::vector<NodeId> all_hosts;
};
FatTreeTopo make_fat_tree(int k, LinkParams lp = {});

/// BCube(n, k): server-centric topology (paper cites it as a non-tree
/// topology without a deadlock-free-routing guarantee). Hosts have k+1
/// ports; level-l switches connect n hosts each.
struct BCubeTopo {
  Topology topo;
  int n = 0, k = 0;
  std::vector<NodeId> hosts;                          // n^(k+1) servers
  std::vector<std::vector<NodeId>> level_switches;    // [level][index]
};
BCubeTopo make_bcube(int n, int k, LinkParams lp = {});

/// BCube(n, k) with *relaying servers*: BCube's defining property is that
/// servers forward traffic. Each server is modelled as a relay switch (its
/// NIC, tier 0) with the actual host hanging off it, so the standard
/// switch data path (PFC, TTL, buffer accounting) applies to server-relay
/// hops and multi-digit BCube paths become routable.
struct BCubeRelayTopo {
  Topology topo;
  int n = 0, k = 0;
  std::vector<NodeId> servers;                        // relay NIC switches
  std::vector<NodeId> hosts;                          // hosts[i] on servers[i]
  std::vector<std::vector<NodeId>> level_switches;
};
BCubeRelayTopo make_bcube_relay(int n, int k, LinkParams lp = {});

/// Jellyfish: random r-regular graph over `num_switches` switches with
/// `hosts_per_switch` hosts each (paper cites it as another topology with
/// no deadlock-free guarantee).
struct JellyfishTopo {
  Topology topo;
  std::vector<NodeId> switches;
  std::vector<std::vector<NodeId>> hosts;
};
JellyfishTopo make_jellyfish(int num_switches, int degree,
                             int hosts_per_switch, std::uint64_t seed,
                             LinkParams lp = {});

}  // namespace dcdl::topo
