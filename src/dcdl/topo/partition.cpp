#include "dcdl/topo/partition.hpp"

#include <algorithm>
#include <numeric>

#include "dcdl/common/contract.hpp"

namespace dcdl::topo {

namespace {

/// Union-find over node ids (path halving, no rank — determinism over
/// asymptotics; these graphs have a few hundred switches).
class DisjointSet {
 public:
  explicit DisjointSet(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0u);
  }
  std::uint32_t find(std::uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void unite(std::uint32_t a, std::uint32_t b) {
    a = find(a);
    b = find(b);
    if (a != b) parent_[std::max(a, b)] = std::min(a, b);
  }

 private:
  std::vector<std::uint32_t> parent_;
};

/// Assigns each group (a list of switch ids) to the currently least-loaded
/// shard, by switch count, lowest shard id on ties. Groups are visited in
/// the deterministic order they were built (ascending representative id).
void pack_groups(const std::vector<std::vector<NodeId>>& groups, int shards,
                 std::vector<std::uint32_t>& node_shard) {
  std::vector<std::size_t> load(static_cast<std::size_t>(shards), 0);
  for (const std::vector<NodeId>& g : groups) {
    std::uint32_t best = 0;
    for (std::uint32_t s = 1; s < load.size(); ++s) {
      if (load[s] < load[best]) best = s;
    }
    for (const NodeId n : g) node_shard[n] = best;
    load[best] += g.size();
  }
}

}  // namespace

ShardPlan assign_shards(const Topology& topo, int requested_shards) {
  DCDL_EXPECTS(requested_shards >= 1);
  ShardPlan plan;
  plan.node_shard.assign(topo.node_count(), 0);

  const std::vector<NodeId> switches = topo.switches();
  if (requested_shards <= 1 || switches.size() <= 1) {
    plan.num_shards = 1;
    return plan;
  }

  // Distinguish a top tier only when something lies below it: fat-tree
  // cores (tier 3 over 1/2), leaf-spine spines (2 over 1). Rings and meshes
  // have a single tier and take the fallback path.
  int min_tier = switches.empty() ? 0 : topo.node(switches[0]).tier;
  int max_tier = min_tier;
  for (const NodeId sw : switches) {
    min_tier = std::min(min_tier, topo.node(sw).tier);
    max_tier = std::max(max_tier, topo.node(sw).tier);
  }
  const bool has_core = max_tier > min_tier;

  // Pods: connected components of the switch graph with the top tier
  // removed (per-pod fat-tree, per-leaf leaf-spine, per-group dragonfly).
  std::vector<std::vector<NodeId>> pods;
  std::vector<NodeId> core;
  if (has_core) {
    DisjointSet dsu(topo.node_count());
    for (std::uint32_t l = 0; l < topo.link_count(); ++l) {
      const LinkSpec& link = topo.link(l);
      if (!topo.is_switch(link.a) || !topo.is_switch(link.b)) continue;
      if (topo.node(link.a).tier == max_tier ||
          topo.node(link.b).tier == max_tier) {
        continue;
      }
      dsu.unite(link.a, link.b);
    }
    std::vector<std::uint32_t> rep_to_pod(topo.node_count(), 0xFFFFFFFFu);
    for (const NodeId sw : switches) {
      if (topo.node(sw).tier == max_tier) {
        core.push_back(sw);
        continue;
      }
      const std::uint32_t rep = dsu.find(sw);
      if (rep_to_pod[rep] == 0xFFFFFFFFu) {
        rep_to_pod[rep] = static_cast<std::uint32_t>(pods.size());
        pods.emplace_back();
      }
      pods[rep_to_pod[rep]].push_back(sw);
    }
  }

  if (pods.size() >= 2) {
    const int shards =
        std::min<int>(requested_shards, static_cast<int>(pods.size()));
    pack_groups(pods, shards, plan.node_shard);
    // Top-tier switches are pod-less by construction; spread them with the
    // same balancing rule, one switch per "group".
    std::vector<std::vector<NodeId>> singles;
    singles.reserve(core.size());
    for (const NodeId sw : core) singles.push_back({sw});
    {
      // Seed the balancer with the pod loads so cores fill the gaps.
      std::vector<std::size_t> load(static_cast<std::size_t>(shards), 0);
      for (const NodeId sw : switches) {
        if (topo.node(sw).tier != max_tier) ++load[plan.node_shard[sw]];
      }
      for (const NodeId sw : core) {
        std::uint32_t best = 0;
        for (std::uint32_t s = 1; s < load.size(); ++s) {
          if (load[s] < load[best]) best = s;
        }
        plan.node_shard[sw] = best;
        ++load[best];
      }
    }
    plan.num_shards = shards;
  } else {
    // Fallback: contiguous blocks over the switch id order. Generator
    // topologies number neighbours consecutively, so blocks are compact
    // (ring arcs, mesh strips).
    const int shards =
        std::min<int>(requested_shards, static_cast<int>(switches.size()));
    const std::size_t n = switches.size();
    for (std::size_t i = 0; i < n; ++i) {
      plan.node_shard[switches[i]] = static_cast<std::uint32_t>(
          i * static_cast<std::size_t>(shards) / n);
    }
    plan.num_shards = shards;
  }

  // Hosts join their switch's shard; hosts attach to exactly one device.
  for (const NodeId h : topo.hosts()) {
    const PortPeer& pp = topo.peer(h, 0);
    plan.node_shard[h] = plan.node_shard[pp.peer_node];
  }

  // Cut enumeration + the lookahead ingredient.
  for (std::uint32_t l = 0; l < topo.link_count(); ++l) {
    const LinkSpec& link = topo.link(l);
    const std::uint32_t sa = plan.node_shard[link.a];
    const std::uint32_t sb = plan.node_shard[link.b];
    if (sa == sb) continue;
    plan.cut_links.push_back(CutLink{l, sa, sb});
    plan.min_cut_delay = std::min(plan.min_cut_delay, link.delay);
  }
  return plan;
}

}  // namespace dcdl::topo
