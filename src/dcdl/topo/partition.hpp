// Topology sharding for the parallel (conservative PDES) engine: assign
// every node to a shard, enumerate the links cut by the partition, and
// report the minimum cut-link delay — the raw ingredient of the engine's
// conservative lookahead (a cross-shard packet or PFC frame becomes visible
// to its destination shard no earlier than one cut-link propagation delay
// after it was sent).
//
// Assignment strategy (deterministic, structure-aware):
//   1. If the switch graph has a distinguished top tier (fat-tree cores,
//      leaf-spine spines) *below* which lie at least two connected
//      components, each component becomes a "pod" — per-pod sharding for
//      fat-trees, per-leaf for leaf-spine, per-group for dragonfly-likes.
//      Pods are packed onto shards balancing switch counts; top-tier
//      switches are then spread across shards the same way.
//   2. Otherwise (rings, meshes, single-pod fabrics) the fallback splits
//      the switch id sequence into contiguous blocks — on generator-built
//      rings this yields arcs with exactly one cut link per boundary.
// Hosts always join their attached switch's shard, so host<->switch links
// are never cut and the cut set consists of inter-switch links only.
#pragma once

#include <cstdint>
#include <vector>

#include "dcdl/common/units.hpp"
#include "dcdl/topo/topology.hpp"

namespace dcdl::topo {

/// A link whose endpoints landed on different shards.
struct CutLink {
  std::uint32_t link = 0;  ///< index into Topology::link()
  std::uint32_t shard_a = 0;
  std::uint32_t shard_b = 0;
};

struct ShardPlan {
  int num_shards = 1;  ///< effective count (<= requested)
  /// node -> shard, indexed by NodeId over all nodes (switches and hosts).
  std::vector<std::uint32_t> node_shard;
  std::vector<CutLink> cut_links;
  /// Smallest one-way propagation delay across the cut; Time::max() when
  /// the partition cuts nothing (single shard).
  Time min_cut_delay = Time::max();
};

/// Partitions `topo` into at most `requested_shards` shards. The effective
/// shard count may be lower (never more shards than structural units).
/// Deterministic: same topology + same request => same plan.
ShardPlan assign_shards(const Topology& topo, int requested_shards);

}  // namespace dcdl::topo
