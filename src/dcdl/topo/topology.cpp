#include "dcdl/topo/topology.hpp"

#include <cstdio>

#include "dcdl/common/contract.hpp"

namespace dcdl {

NodeId Topology::add_switch(std::string name, int tier) {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  if (name.empty()) name = "sw" + std::to_string(id);
  nodes_.push_back(NodeSpec{NodeKind::kSwitch, std::move(name), tier});
  ports_.emplace_back();
  return id;
}

NodeId Topology::add_host(std::string name) {
  const NodeId id = static_cast<NodeId>(nodes_.size());
  if (name.empty()) name = "h" + std::to_string(id);
  nodes_.push_back(NodeSpec{NodeKind::kHost, std::move(name), 0});
  ports_.emplace_back();
  return id;
}

std::uint32_t Topology::add_link(NodeId a, NodeId b, Rate rate, Time delay) {
  DCDL_EXPECTS(a < nodes_.size() && b < nodes_.size());
  DCDL_EXPECTS(a != b);
  DCDL_EXPECTS(rate.bps() > 0);
  const std::uint32_t idx = static_cast<std::uint32_t>(links_.size());
  const PortId pa = static_cast<PortId>(ports_[a].size());
  const PortId pb = static_cast<PortId>(ports_[b].size());
  links_.push_back(LinkSpec{a, b, pa, pb, rate, delay});
  ports_[a].push_back(PortPeer{b, pb, idx});
  ports_[b].push_back(PortPeer{a, pa, idx});
  return idx;
}

std::optional<PortId> Topology::port_towards(NodeId from, NodeId to) const {
  const auto& plist = ports_.at(from);
  for (PortId p = 0; p < plist.size(); ++p) {
    if (plist[p].peer_node == to) return p;
  }
  return std::nullopt;
}

std::vector<NodeId> Topology::switch_neighbors(NodeId id) const {
  std::vector<NodeId> out;
  for (const auto& pp : ports_.at(id)) {
    if (is_switch(pp.peer_node)) out.push_back(pp.peer_node);
  }
  return out;
}

std::vector<NodeId> Topology::hosts() const {
  std::vector<NodeId> out;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (is_host(id)) out.push_back(id);
  }
  return out;
}

std::vector<NodeId> Topology::switches() const {
  std::vector<NodeId> out;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    if (is_switch(id)) out.push_back(id);
  }
  return out;
}

std::optional<NodeId> Topology::first_host_of(NodeId sw) const {
  for (const auto& pp : ports_.at(sw)) {
    if (is_host(pp.peer_node)) return pp.peer_node;
  }
  return std::nullopt;
}

std::string Topology::describe() const {
  std::string out;
  char buf[160];
  std::snprintf(buf, sizeof(buf), "topology: %zu nodes, %zu links\n",
                nodes_.size(), links_.size());
  out += buf;
  for (std::uint32_t i = 0; i < links_.size(); ++i) {
    const auto& l = links_[i];
    std::snprintf(buf, sizeof(buf), "  link %u: %s[p%u] <-> %s[p%u] %s %s\n",
                  i, nodes_[l.a].name.c_str(), l.port_a,
                  nodes_[l.b].name.c_str(), l.port_b,
                  l.rate.to_string().c_str(), l.delay.to_string().c_str());
    out += buf;
  }
  return out;
}

}  // namespace dcdl
