// Static description of a network: switches, hosts, and full-duplex links.
//
// A link between nodes a and b creates one port on each node; ports are
// numbered per node in the order links are added. The Topology is a pure
// description — the runtime network (devices, queues, wires) is built from
// it by device/Network.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "dcdl/common/units.hpp"
#include "dcdl/net/packet.hpp"

namespace dcdl {

enum class NodeKind : std::uint8_t { kSwitch, kHost };

struct NodeSpec {
  NodeKind kind = NodeKind::kSwitch;
  std::string name;
  int tier = 0;  ///< topology tier (e.g. 0=host, 1=ToR/leaf, 2=agg, 3=spine)
};

struct LinkSpec {
  NodeId a = kInvalidNode;
  NodeId b = kInvalidNode;
  PortId port_a = kInvalidPort;  ///< port index on a facing b
  PortId port_b = kInvalidPort;  ///< port index on b facing a
  Rate rate = Rate::gbps(40);
  Time delay = Time{1'000'000};  ///< one-way propagation, default 1 us
};

/// One endpoint's view of an attachment: the local port and the peer.
struct PortPeer {
  NodeId peer_node = kInvalidNode;
  PortId peer_port = kInvalidPort;
  std::uint32_t link = 0;  ///< index into links()
};

class Topology {
 public:
  NodeId add_switch(std::string name = {}, int tier = 1);
  NodeId add_host(std::string name = {});

  /// Adds a full-duplex link; returns its index. Port numbers on each side
  /// are assigned sequentially.
  std::uint32_t add_link(NodeId a, NodeId b, Rate rate = Rate::gbps(40),
                         Time delay = Time{1'000'000});

  std::size_t node_count() const { return nodes_.size(); }
  std::size_t link_count() const { return links_.size(); }
  const NodeSpec& node(NodeId id) const { return nodes_.at(id); }
  NodeSpec& node(NodeId id) { return nodes_.at(id); }
  const LinkSpec& link(std::uint32_t idx) const { return links_.at(idx); }
  bool is_switch(NodeId id) const { return node(id).kind == NodeKind::kSwitch; }
  bool is_host(NodeId id) const { return node(id).kind == NodeKind::kHost; }

  /// Number of ports on a node.
  std::size_t degree(NodeId id) const { return ports_.at(id).size(); }

  /// Peer of (node, port).
  const PortPeer& peer(NodeId id, PortId port) const {
    return ports_.at(id).at(port);
  }

  /// All attachments of a node.
  const std::vector<PortPeer>& ports(NodeId id) const { return ports_.at(id); }

  /// First port on `from` whose peer is `to`, if any.
  std::optional<PortId> port_towards(NodeId from, NodeId to) const;

  /// All switch neighbours of a switch (skips hosts).
  std::vector<NodeId> switch_neighbors(NodeId id) const;

  /// All host node ids / switch node ids.
  std::vector<NodeId> hosts() const;
  std::vector<NodeId> switches() const;

  /// The unique host attached to a switch port, scanning ports; nullopt if
  /// the switch has no host.
  std::optional<NodeId> first_host_of(NodeId sw) const;

  std::string describe() const;

 private:
  std::vector<NodeSpec> nodes_;
  std::vector<LinkSpec> links_;
  std::vector<std::vector<PortPeer>> ports_;
};

}  // namespace dcdl
