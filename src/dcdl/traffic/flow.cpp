#include "dcdl/traffic/flow.hpp"

#include <algorithm>
#include <cmath>

#include "dcdl/common/contract.hpp"

namespace dcdl {

TokenBucketPacer::TokenBucketPacer(Rate rate, std::int64_t burst_bytes)
    : rate_(rate), burst_bytes_(burst_bytes) {
  DCDL_EXPECTS(rate.bps() > 0);
  DCDL_EXPECTS(burst_bytes > 0);
  tokens_bytes_ = static_cast<double>(burst_bytes);
}

void TokenBucketPacer::refill(Time now) {
  DCDL_ASSERT(now >= last_);
  const double added =
      static_cast<double>(rate_.bps()) * (now - last_).ps() / 8e12;
  tokens_bytes_ = std::min(static_cast<double>(burst_bytes_),
                           tokens_bytes_ + added);
  last_ = now;
}

Time TokenBucketPacer::ready_at(Time now, std::uint32_t bytes) {
  refill(now);
  if (tokens_bytes_ >= static_cast<double>(bytes)) return now;
  const double deficit = static_cast<double>(bytes) - tokens_bytes_;
  const double wait_ps = deficit * 8e12 / static_cast<double>(rate_.bps());
  return now + Time{static_cast<std::int64_t>(std::ceil(wait_ps))};
}

void TokenBucketPacer::on_sent(Time now, std::uint32_t bytes) {
  refill(now);
  tokens_bytes_ -= static_cast<double>(bytes);
  // May go slightly negative due to the ceil in ready_at; that debt is
  // repaid by the next refill and keeps the long-run rate exact.
}

void TokenBucketPacer::set_rate(Time now, Rate rate) {
  DCDL_EXPECTS(rate.bps() > 0);
  refill(now);
  rate_ = rate;
}

PoissonPacer::PoissonPacer(Rate avg_rate, std::uint32_t packet_bytes,
                           std::uint64_t seed)
    : avg_rate_(avg_rate), rng_(seed) {
  DCDL_EXPECTS(avg_rate.bps() > 0);
  mean_gap_ps_ = static_cast<double>(packet_bytes) * 8e12 /
                 static_cast<double>(avg_rate.bps());
}

Time PoissonPacer::ready_at(Time now, std::uint32_t) {
  return std::max(now, next_);
}

void PoissonPacer::on_sent(Time now, std::uint32_t) {
  const double gap = rng_.exponential(mean_gap_ps_);
  next_ = now + Time{static_cast<std::int64_t>(gap)};
}

OnOffPacer::OnOffPacer(Time on_duration, Time off_duration, std::uint64_t seed,
                       bool randomized)
    : on_(on_duration), off_(off_duration), randomized_(randomized),
      rng_(seed), cur_on_(on_duration), cur_off_(off_duration) {
  DCDL_EXPECTS(on_duration > Time::zero());
  DCDL_EXPECTS(off_duration >= Time::zero());
}

void OnOffPacer::advance_to(Time now) {
  while (true) {
    const Time phase_len = in_on_ ? cur_on_ : cur_off_;
    if (now < phase_start_ + phase_len) return;
    phase_start_ += phase_len;
    in_on_ = !in_on_;
    if (randomized_) {
      const Time base = in_on_ ? on_ : off_;
      const double f = 0.5 + rng_.uniform_double();  // [0.5, 1.5) * base
      (in_on_ ? cur_on_ : cur_off_) =
          Time{static_cast<std::int64_t>(f * static_cast<double>(base.ps()))};
    }
  }
}

Time OnOffPacer::ready_at(Time now, std::uint32_t) {
  advance_to(now);
  if (in_on_) return now;
  return phase_start_ + cur_off_;
}

void OnOffPacer::on_sent(Time, std::uint32_t) {}

}  // namespace dcdl
