// Flow specifications and pacing models.
//
// The paper's case studies use "UDP flows with infinite traffic demand"
// (greedy: the NIC sends back-to-back whenever its egress is free and
// unpaused) and rate-limited variants. Pacers are also the attachment point
// for the DCQCN-like congestion controller (mitigation/dcqcn).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>

#include "dcdl/common/rng.hpp"
#include "dcdl/common/units.hpp"
#include "dcdl/net/packet.hpp"

namespace dcdl {

struct FlowSpec {
  FlowId id = 0;
  NodeId src_host = kInvalidNode;
  NodeId dst_host = kInvalidNode;
  ClassId prio = 0;
  std::uint32_t packet_bytes = 1000;
  std::uint8_t ttl = 64;
  bool ecn_capable = false;
  Time start = Time::zero();
  Time stop = Time::max();  ///< no packets are injected at or after this time
};

/// Decides when a flow's next packet may leave the NIC. Implementations are
/// consulted by the host scheduler; `ready_at` must be monotone in `now`.
class Pacer {
 public:
  virtual ~Pacer() = default;

  /// Earliest time >= now at which the next packet of `bytes` may start.
  virtual Time ready_at(Time now, std::uint32_t bytes) = 0;

  /// Called when a packet of `bytes` starts serialization at `now`.
  virtual void on_sent(Time now, std::uint32_t bytes) = 0;

  /// Congestion feedback (CNP) arrived for this flow. Default: ignore.
  virtual void on_cnp(Time /*now*/) {}

  /// An end-to-end RTT sample arrived for this flow (TIMELY-style
  /// feedback). Default: ignore.
  virtual void on_rtt(Time /*now*/, Time /*rtt*/) {}

  /// Current sending rate if the pacer is rate-based (for reporting).
  virtual std::optional<Rate> current_rate() const { return std::nullopt; }
};

/// Infinite demand: always ready.
class GreedyPacer final : public Pacer {
 public:
  Time ready_at(Time now, std::uint32_t) override { return now; }
  void on_sent(Time, std::uint32_t) override {}
};

/// Constant bit rate via a token bucket with a configurable burst (default
/// one packet: smooth pacing).
class TokenBucketPacer : public Pacer {
 public:
  TokenBucketPacer(Rate rate, std::int64_t burst_bytes);

  Time ready_at(Time now, std::uint32_t bytes) override;
  void on_sent(Time now, std::uint32_t bytes) override;
  std::optional<Rate> current_rate() const override { return rate_; }

  void set_rate(Time now, Rate rate);
  Rate rate() const { return rate_; }

 private:
  void refill(Time now);

  Rate rate_;
  std::int64_t burst_bytes_;
  double tokens_bytes_ = 0;  // fractional tokens keep long-run rate exact
  Time last_ = Time::zero();
};

/// Poisson packet arrivals with a given average rate.
class PoissonPacer final : public Pacer {
 public:
  PoissonPacer(Rate avg_rate, std::uint32_t packet_bytes, std::uint64_t seed);

  Time ready_at(Time now, std::uint32_t bytes) override;
  void on_sent(Time now, std::uint32_t bytes) override;
  std::optional<Rate> current_rate() const override { return avg_rate_; }

 private:
  Rate avg_rate_;
  double mean_gap_ps_;
  Rng rng_;
  Time next_ = Time::zero();
};

/// On/off source: greedy during on-periods, silent during off-periods.
class OnOffPacer final : public Pacer {
 public:
  OnOffPacer(Time on_duration, Time off_duration, std::uint64_t seed,
             bool randomized = false);

  Time ready_at(Time now, std::uint32_t bytes) override;
  void on_sent(Time now, std::uint32_t bytes) override;

 private:
  void advance_to(Time now);

  Time on_, off_;
  bool randomized_;
  Rng rng_;
  Time phase_start_ = Time::zero();
  bool in_on_ = true;
  Time cur_on_, cur_off_;
};

}  // namespace dcdl
