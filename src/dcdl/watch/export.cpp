#include "dcdl/watch/export.hpp"

#include "dcdl/campaign/param.hpp"

namespace dcdl::watch {

namespace {
using campaign::format_double;
}  // namespace

std::string node_label(const Topology& topo, std::int64_t node) {
  if (node < 0 || node >= static_cast<std::int64_t>(topo.node_count())) {
    return "-";
  }
  const NodeSpec& spec = topo.node(static_cast<NodeId>(node));
  return spec.name.empty() ? "n" + std::to_string(node) : spec.name;
}

std::string to_alerts_jsonl(const RunWatch& watch, const Topology& topo) {
  std::string out;
  out += "{\"schema\":\"";
  out += kAlertsSchema;
  out += "\",\"interval_ps\":" + std::to_string(watch.interval().ps());
  out += ",\"start_ps\":" + std::to_string(watch.start_time().ps());
  out += ",\"ticks\":" + std::to_string(watch.ticks());
  out += ",\"rules\":[";
  const std::vector<AlertRule>& rules = watch.engine().rules();
  for (std::size_t i = 0; i < rules.size(); ++i) {
    const AlertRule& r = rules[i];
    if (i != 0) out += ",";
    out += "{\"name\":\"" + r.name + "\",\"signal\":\"" + r.signal + "\"";
    out += ",\"severity\":\"";
    out += to_string(r.severity);
    out += "\",\"fire_above\":" + format_double(r.fire_above);
    out += ",\"clear_below\":" + format_double(r.clear_below);
    out += ",\"for_ticks\":" + std::to_string(r.for_ticks);
    out += ",\"dedup_ps\":" + std::to_string(r.dedup.ps()) + "}";
  }
  out += "]}\n";

  for (const AlertEvent& ev : watch.engine().events()) {
    out += "{\"t_ps\":" + std::to_string(ev.t.ps());
    out += ",\"rule\":\"" + rules[ev.rule].name + "\"";
    out += ",\"severity\":\"";
    out += to_string(ev.severity);
    out += "\",\"kind\":\"";
    out += ev.firing ? "fire" : "clear";
    out += "\",\"value\":" + format_double(ev.value);
    out += ",\"node\":\"" + node_label(topo, ev.node) + "\"}\n";
  }

  out += "{\"summary\":{";
  bool first = true;
  for (const auto& [name, value] : watch.summary()) {
    if (!first) out += ",";
    first = false;
    out += "\"" + name + "\":" + format_double(value);
  }
  out += "}}\n";
  return out;
}

std::string to_perfetto_alerts(const RunWatch& watch, const Topology& topo) {
  // A pid clear of the telemetry per-node processes (node ids) and the
  // probe counter process (900000).
  constexpr int kPid = 910000;
  const std::vector<AlertRule>& rules = watch.engine().rules();

  std::string out = "{\"traceEvents\":[";
  bool first = true;
  const auto emit = [&](const std::string& ev) {
    if (!first) out += ",";
    first = false;
    out += "\n" + ev;
  };
  emit("{\"ph\":\"M\",\"pid\":" + std::to_string(kPid) +
       ",\"name\":\"process_name\",\"args\":{\"name\":\"watch\"}}");
  for (const AlertEvent& ev : watch.engine().events()) {
    const std::int64_t ts_us = ev.t.ps() / 1'000'000;
    emit("{\"ph\":\"i\",\"s\":\"g\",\"pid\":" + std::to_string(kPid) +
         ",\"ts\":" + std::to_string(ts_us) + ",\"cat\":\"alert\"" +
         ",\"name\":\"" + std::string(to_string(ev.severity)) + " " +
         rules[ev.rule].name + (ev.firing ? "" : " clear") +
         "\",\"args\":{\"value\":" + format_double(ev.value) +
         ",\"node\":\"" + node_label(topo, ev.node) + "\"}}");
  }
  out += "\n]}\n";
  return out;
}

}  // namespace dcdl::watch
