// dcdl.alerts.v1 — serialized alert streams.
//
// Two artifacts per run:
//
//   * to_alerts_jsonl: one header line (schema, cadence, resolved rule
//     set), one line per emitted alert edge, one trailing summary line —
//     line-oriented so a partial file is still scannable. Everything in it
//     is a pure function of the scenario; under sharding the stream is
//     byte-identical for every --jobs x --shards with shards >= 1.
//
//   * to_perfetto_alerts: the same edges as Perfetto instant events (a
//     "watch" pseudo-process), so alerts line up against the flight
//     recorder's spans and the probe's counter tracks on one timeline.
#pragma once

#include <string>

#include "dcdl/topo/topology.hpp"
#include "dcdl/watch/watch.hpp"

namespace dcdl::watch {

inline constexpr const char* kAlertsSchema = "dcdl.alerts.v1";

std::string to_alerts_jsonl(const RunWatch& watch, const Topology& topo);

std::string to_perfetto_alerts(const RunWatch& watch, const Topology& topo);

/// Human-readable node label for alert attribution: the topology name when
/// set, "n<id>" otherwise, "-" for no attribution (-1).
std::string node_label(const Topology& topo, std::int64_t node);

}  // namespace dcdl::watch
