#include "dcdl/watch/rules.hpp"

#include <stdexcept>

namespace dcdl::watch {

const char* to_string(Severity s) {
  switch (s) {
    case Severity::kInfo: return "info";
    case Severity::kWarn: return "warn";
    case Severity::kCritical: return "critical";
  }
  return "?";
}

std::vector<AlertRule> default_rules() {
  std::vector<AlertRule> r;
  // A quarter of the fabric's ingress queues holding their upstream paused
  // is well past normal PFC duty; clears only once pressure really drains.
  r.push_back({"pause_pressure", "pause_frac", Severity::kWarn, 0.25, 0.10,
               2, Time{500'000'000}});
  // Healthy pause episodes last O(control loop) — tens of microseconds at
  // these link delays. A span aging past 300 us is compounding, not
  // flow control.
  r.push_back({"pause_age", "pause_age_us", Severity::kWarn, 300.0, 100.0, 1,
               Time{500'000'000}});
  // Sustained aggregate queue growth of >= 0.5 MB per ms (~4 Gbps pooling
  // up) — the cascade's fuel accumulating.
  r.push_back({"queue_growth", "queue_growth", Severity::kInfo, 5e5, 1e5, 2,
               Time{500'000'000}});
  // Any wait-for cycle at a barrier instant: the wedge exists right now,
  // even if it may still dissolve.
  r.push_back({"wedge_forming", "wedge_queues", Severity::kWarn, 1.0, 1.0, 1,
               Time{200'000'000}});
  // The same wedge persisting across consecutive samples is the page-worthy
  // signal: transients dissolve within a tick or two, a closing deadlock
  // does not (and the centralized monitor will not confirm it for another
  // dwell period — this is where the lead time comes from).
  r.push_back({"deadlock_imminent", "wedge_queues", Severity::kCritical, 1.0,
               1.0, 3, Time{1'000'000'000}});
  // Flow-level stable-state analysis says a dependency cycle is lockable
  // at the *measured* rates (<= 1 slack link) — the §3 boundary crossed.
  r.push_back({"risk_boundary", "risk_reachable", Severity::kInfo, 1.0, 1.0,
               1, Time{10'000'000'000}});
  return r;
}

RuleEngine::RuleEngine(std::vector<AlertRule> rules,
                       const std::vector<std::string>& signal_names,
                       std::size_t max_events)
    : rules_(std::move(rules)), max_events_(max_events) {
  state_.resize(rules_.size());
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    const AlertRule& r = rules_[i];
    if (r.clear_below > r.fire_above) {
      throw std::runtime_error("watch rule '" + r.name +
                               "': clear_below > fire_above");
    }
    if (r.for_ticks < 1) {
      throw std::runtime_error("watch rule '" + r.name + "': for_ticks < 1");
    }
    for (std::size_t j = 0; j < i; ++j) {
      if (rules_[j].name == r.name) {
        throw std::runtime_error("duplicate watch rule name '" + r.name +
                                 "'");
      }
    }
    bool found = false;
    for (std::size_t s = 0; s < signal_names.size(); ++s) {
      if (signal_names[s] == r.signal) {
        state_[i].signal = static_cast<std::uint32_t>(s);
        found = true;
        break;
      }
    }
    if (!found) {
      throw std::runtime_error("watch rule '" + r.name +
                               "' watches unknown signal '" + r.signal +
                               "'");
    }
  }
}

void RuleEngine::emit(Time t, std::uint32_t rule, bool firing, double value,
                      std::int64_t hot_node) {
  AlertEvent ev;
  ev.t = t;
  ev.rule = rule;
  ev.severity = rules_[rule].severity;
  ev.firing = firing;
  ev.value = value;
  ev.node = hot_node;
  if (events_.size() < max_events_) {
    events_.push_back(ev);
  } else {
    ++dropped_;
  }
  if (on_event_) on_event_(ev);
}

void RuleEngine::step(Time t, const std::vector<double>& values,
                      std::int64_t hot_node) {
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    const AlertRule& r = rules_[i];
    RuleState& st = state_[i];
    const double v = values[st.signal];
    if (!st.firing) {
      if (v >= r.fire_above) {
        ++st.streak;
        if (st.streak >= r.for_ticks) {
          st.firing = true;
          st.streak = 0;
          // Dedup window, boundary-inclusive: a fire at exactly
          // last_fire + dedup is emitted.
          const bool deduped = st.ever_fired && r.dedup > Time::zero() &&
                               t - st.last_fire < r.dedup;
          if (deduped) {
            ++suppressed_;
            st.emitted = false;
          } else {
            st.emitted = true;
            st.ever_fired = true;
            st.last_fire = t;
            ++st.fires;
            const int sev = static_cast<int>(r.severity);
            ++fires_[sev];
            if (!first_fire_[sev]) first_fire_[sev] = t;
            emit(t, static_cast<std::uint32_t>(i), true, v, hot_node);
          }
        }
      } else {
        st.streak = 0;
      }
    } else if (v < r.clear_below) {
      st.firing = false;
      st.streak = 0;
      // A suppressed fire's clear is suppressed too, keeping the emitted
      // stream balanced (every emitted fire has exactly one clear).
      if (st.emitted) {
        emit(t, static_cast<std::uint32_t>(i), false, v, hot_node);
      }
      st.emitted = false;
    }
  }
}

std::optional<Severity> RuleEngine::active_ceiling() const {
  std::optional<Severity> top;
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    if (!state_[i].firing) continue;
    if (!top || static_cast<int>(rules_[i].severity) >
                    static_cast<int>(*top)) {
      top = rules_[i].severity;
    }
  }
  return top;
}

}  // namespace dcdl::watch
