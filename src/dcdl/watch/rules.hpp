// dcdl::watch alert rules — the declarative early-warning rule engine.
//
// A rule watches one scalar signal and carries the full NOC-style alarm
// contract:
//
//   * hysteresis — the rule FIRES when the signal reaches `fire_above` and
//     only CLEARS once it falls below `clear_below` (<= fire_above), so a
//     signal oscillating inside the band produces one alert, not a flap
//     storm;
//   * arming — `for_ticks` consecutive over-threshold samples are required
//     before the fire edge, filtering single-tick transients;
//   * dedup — after a fire, re-fires within `dedup` of it are suppressed
//     (counted, state still tracked, edges not emitted) so one oscillating
//     cascade cannot flood the alert stream. The boundary tick is inclusive:
//     a re-fire at exactly `last_fire + dedup` IS emitted.
//
// The engine is pure state-machine code over (time, signal vector) inputs —
// no simulator or network dependence — so its edge cases are unit-testable
// tick by tick, and its event stream is trivially a pure function of the
// sampled signals (which the RunWatch samples at shard-window barriers;
// see watch.hpp for the determinism contract).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "dcdl/common/units.hpp"
#include "dcdl/net/packet.hpp"

namespace dcdl::watch {

enum class Severity : std::uint8_t { kInfo = 0, kWarn = 1, kCritical = 2 };
inline constexpr int kNumSeverities = 3;
const char* to_string(Severity s);

struct AlertRule {
  std::string name;    ///< unique within a rule set
  std::string signal;  ///< watched signal (resolved by name at setup)
  Severity severity = Severity::kWarn;
  /// Fire when signal >= fire_above for `for_ticks` consecutive samples.
  double fire_above = 0;
  /// Clear when signal < clear_below (must be <= fire_above).
  double clear_below = 0;
  /// Consecutive over-threshold ticks required before the fire edge.
  int for_ticks = 1;
  /// Minimum spacing between emitted fire edges; zero = no dedup.
  Time dedup = Time::zero();
};

/// One fire or clear edge. `rule` indexes RuleEngine::rules(); `node` is
/// the watcher's hot-spot attribution at the edge instant (-1 = none).
struct AlertEvent {
  Time t = Time::zero();
  std::uint32_t rule = 0;
  Severity severity = Severity::kInfo;
  bool firing = true;  ///< true = fire edge, false = clear edge
  double value = 0;
  std::int64_t node = -1;
};

/// The built-in early-warning set (see DESIGN.md "Early-warning
/// architecture" for the rationale behind each threshold). Signal names
/// match RunWatch's registry.
std::vector<AlertRule> default_rules();

class RuleEngine {
 public:
  /// Resolves every rule's signal against `signal_names`; throws
  /// std::runtime_error on an unknown signal, a duplicate rule name, or
  /// clear_below > fire_above. The event log is bounded by `max_events`;
  /// overflow edges are counted in dropped_events() and still drive the
  /// state machines.
  RuleEngine(std::vector<AlertRule> rules,
             const std::vector<std::string>& signal_names,
             std::size_t max_events = 4096);

  /// Observer invoked at every emitted edge (fire and clear), after it is
  /// appended to events().
  void set_on_event(std::function<void(const AlertEvent&)> fn) {
    on_event_ = std::move(fn);
  }

  /// Advances every rule one sample. `values` is indexed like the
  /// signal_names vector given at construction; `hot_node` is stamped on
  /// edges emitted this tick.
  void step(Time t, const std::vector<double>& values,
            std::int64_t hot_node = -1);

  const std::vector<AlertRule>& rules() const { return rules_; }
  const std::vector<AlertEvent>& events() const { return events_; }

  /// Emitted fire edges by severity.
  std::uint64_t fires(Severity s) const {
    return fires_[static_cast<int>(s)];
  }
  /// Time of the first emitted fire edge at severity `s`.
  std::optional<Time> first_fire(Severity s) const {
    return first_fire_[static_cast<int>(s)];
  }
  /// Fire edges swallowed by dedup windows (all rules).
  std::uint64_t suppressed() const { return suppressed_; }
  /// Edges beyond max_events (state machines still advanced).
  std::uint64_t dropped_events() const { return dropped_; }

  std::uint64_t rule_fires(std::size_t rule) const {
    return state_[rule].fires;
  }
  bool firing(std::size_t rule) const { return state_[rule].firing; }
  /// Highest severity currently in the firing state (none = empty).
  std::optional<Severity> active_ceiling() const;

 private:
  struct RuleState {
    std::uint32_t signal = 0;  ///< resolved signal index
    int streak = 0;            ///< consecutive over-threshold ticks
    bool firing = false;
    bool emitted = false;  ///< the current episode's fire edge was emitted
    bool ever_fired = false;
    Time last_fire = Time::zero();  ///< last EMITTED fire edge
    std::uint64_t fires = 0;        ///< emitted fire edges
  };

  void emit(Time t, std::uint32_t rule, bool firing, double value,
            std::int64_t hot_node);

  std::vector<AlertRule> rules_;
  std::vector<RuleState> state_;
  std::vector<AlertEvent> events_;
  std::size_t max_events_;
  std::function<void(const AlertEvent&)> on_event_;
  std::uint64_t fires_[kNumSeverities] = {0, 0, 0};
  std::optional<Time> first_fire_[kNumSeverities];
  std::uint64_t suppressed_ = 0;
  std::uint64_t dropped_ = 0;
};

}  // namespace dcdl::watch
