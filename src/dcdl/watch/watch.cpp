#include "dcdl/watch/watch.hpp"

#include <algorithm>

#include "dcdl/analysis/deadlock.hpp"
#include "dcdl/device/host.hpp"
#include "dcdl/device/switch.hpp"
#include "dcdl/stats/hooks.hpp"

namespace dcdl::watch {

namespace {

// Signal registry order — part of the dcdl.alerts.v1 layout; append only.
enum SignalId : std::uint32_t {
  kQueueBytes = 0,
  kQueueGrowth,
  kPauseFrac,
  kSwPauseMax,
  kPauseAgeUs,
  kWedgeQueues,
  kRiskMax,
  kRiskReachable,
  kNumSignals,
};

std::vector<std::string> signal_registry() {
  return {"queue_bytes", "queue_growth", "pause_frac",   "sw_pause_max",
          "pause_age_us", "wedge_queues", "risk_max",     "risk_reachable"};
}

std::uint64_t queue_key(NodeId node, PortId port, ClassId cls) {
  return (static_cast<std::uint64_t>(node) << 24) |
         (static_cast<std::uint64_t>(port) << 8) |
         static_cast<std::uint64_t>(cls);
}

}  // namespace

RunWatch::RunWatch(Network& net, std::vector<FlowSpec> flows,
                   WatchOptions opts)
    : net_(net), flows_(std::move(flows)), opts_(std::move(opts)) {
  names_ = signal_registry();
  values_.assign(names_.size(), 0.0);
  max_.assign(names_.size(), 0.0);
  if (opts_.rules.empty()) opts_.rules = default_rules();
  engine_ = std::make_unique<RuleEngine>(opts_.rules, names_,
                                         opts_.max_events);
  engine_->set_on_event([this](const AlertEvent& ev) {
    if (on_event_) on_event_(ev);
  });

  const Topology& topo = net_.topo();
  node_open_.assign(topo.node_count(), 0);
  for (const NodeId sw : topo.switches()) {
    total_switch_queues_ +=
        static_cast<std::int64_t>(net_.switch_at(sw).num_ports()) *
        net_.config().num_classes;
  }
  if (opts_.slope_window < 2) opts_.slope_window = 2;
  slope_ring_.assign(static_cast<std::size_t>(opts_.slope_window),
                     {Time::zero(), 0.0});

  if (opts_.risk_every > 0 && !flows_.empty()) {
    risk_ = std::make_unique<analysis::OnlineRiskAssessor>(net_, flows_);
    prev_sent_.assign(flows_.size(), 0);
  }

  // Open-pause bookkeeping rides the pfc_state hook — chained, so it
  // coexists with the probe's and the pause log's observers. Under
  // --shards the hook fires on the control thread during barrier replay.
  stats::append_hook(
      net_.trace().pfc_state,
      [this](Time t, NodeId node, PortId port, ClassId cls, bool paused) {
        const std::uint64_t key = queue_key(node, port, cls);
        if (paused) {
          if (open_xoff_.emplace(key, t).second) ++node_open_[node];
        } else {
          auto it = open_xoff_.find(key);
          if (it != open_xoff_.end()) {
            open_xoff_.erase(it);
            --node_open_[node];
          }
        }
      });
}

void RunWatch::start(Simulator& sim, Time until) {
  start_ = sim.now();
  prev_measure_at_ = start_;
  if (risk_ != nullptr) {
    for (std::size_t i = 0; i < flows_.size(); ++i) {
      prev_sent_[i] = net_.host_at(flows_[i].src_host).sent_bytes(
          flows_[i].id);
    }
  }
  // Pre-fill the slope ring with the starting occupancy so early slopes
  // measure growth from the attach instant, not from zero.
  const double q0 = static_cast<double>(net_.total_queued_bytes());
  for (auto& s : slope_ring_) s = {start_, q0};
  sampler_ = std::make_unique<probe::IntervalSampler>(
      sim, opts_.interval, [this](Time t) { tick(t); });
  sampler_->start(until);
}

void RunWatch::tick(Time t) {
  ++ticks_;
  const double queued = static_cast<double>(net_.total_queued_bytes());
  values_[kQueueBytes] = queued;

  // Trailing-window slope in bytes per millisecond: current sample vs the
  // oldest retained one.
  const auto& oldest = slope_ring_[slope_next_];
  const double dt_ms = (t - oldest.first).ms();
  values_[kQueueGrowth] =
      dt_ms > 0 ? (queued - oldest.second) / dt_ms : 0.0;
  slope_ring_[slope_next_] = {t, queued};
  slope_next_ = (slope_next_ + 1) % slope_ring_.size();

  values_[kPauseFrac] =
      total_switch_queues_ > 0
          ? static_cast<double>(open_xoff_.size()) /
                static_cast<double>(total_switch_queues_)
          : 0.0;

  // Worst single switch (ties to the lowest node id) — the pause hot spot.
  std::int64_t sw_max = 0;
  std::int64_t pause_node = -1;
  for (std::size_t n = 0; n < node_open_.size(); ++n) {
    if (node_open_[n] > sw_max) {
      sw_max = node_open_[n];
      pause_node = static_cast<std::int64_t>(n);
    }
  }
  values_[kSwPauseMax] = static_cast<double>(sw_max);

  // Oldest still-open pause span. Max over an unordered_map is
  // order-independent, so iteration order cannot leak into artifacts.
  std::int64_t oldest_ps = 0;
  for (const auto& [key, since] : open_xoff_) {
    oldest_ps = std::max(oldest_ps, (t - since).ps());
  }
  values_[kPauseAgeUs] = static_cast<double>(oldest_ps) / 1e6;

  const analysis::WaitForSnapshot snap = analysis::snapshot_wait_for(net_);
  values_[kWedgeQueues] =
      snap.has_cycle ? static_cast<double>(snap.cycle.size()) : 0.0;

  if (risk_ != nullptr && ticks_ % static_cast<std::uint64_t>(
                                       opts_.risk_every) == 0) {
    // Measured per-flow rates from the hosts' cumulative sent counters —
    // the same barrier-time state-read pattern as the probe's utilization.
    std::vector<Rate> measured(flows_.size(), Rate::zero());
    const Time elapsed = t - prev_measure_at_;
    for (std::size_t i = 0; i < flows_.size(); ++i) {
      const std::int64_t sent =
          net_.host_at(flows_[i].src_host).sent_bytes(flows_[i].id);
      if (elapsed > Time::zero()) {
        const double bps = static_cast<double>(sent - prev_sent_[i]) * 8.0 *
                           1e12 / static_cast<double>(elapsed.ps());
        measured[i] = Rate{static_cast<std::int64_t>(bps)};
      }
      prev_sent_[i] = sent;
    }
    prev_measure_at_ = t;
    const analysis::RiskReport& report = risk_->reassess(measured);
    risk_max_latched_ = report.max_risk;
    risk_reachable_latched_ = report.deadlock_reachable() ? 1.0 : 0.0;
  }
  values_[kRiskMax] = risk_max_latched_;
  values_[kRiskReachable] = risk_reachable_latched_;

  for (std::size_t i = 0; i < values_.size(); ++i) {
    max_[i] = std::max(max_[i], values_[i]);
  }

  hot_node_ = snap.has_cycle
                  ? static_cast<std::int64_t>(snap.cycle.front().node)
                  : pause_node;

  engine_->step(t, values_, hot_node_);
  if (on_tick_) on_tick_(t, *this);
}

std::vector<std::pair<std::string, double>> RunWatch::summary() const {
  std::vector<std::pair<std::string, double>> out;
  out.emplace_back("ticks", static_cast<double>(ticks_));
  out.emplace_back("fired.info",
                   static_cast<double>(engine_->fires(Severity::kInfo)));
  out.emplace_back("fired.warn",
                   static_cast<double>(engine_->fires(Severity::kWarn)));
  out.emplace_back(
      "fired.critical",
      static_cast<double>(engine_->fires(Severity::kCritical)));
  const auto first_ms = [&](Severity s) {
    const std::optional<Time> t = engine_->first_fire(s);
    return t ? t->ms() : -1.0;
  };
  out.emplace_back("first_warn_ms", first_ms(Severity::kWarn));
  out.emplace_back("first_critical_ms", first_ms(Severity::kCritical));
  out.emplace_back("suppressed",
                   static_cast<double>(engine_->suppressed()));
  out.emplace_back("dropped_events",
                   static_cast<double>(engine_->dropped_events()));
  const std::vector<AlertRule>& rules = engine_->rules();
  for (std::size_t i = 0; i < rules.size(); ++i) {
    out.emplace_back("rule." + rules[i].name + ".fires",
                     static_cast<double>(engine_->rule_fires(i)));
  }
  for (std::size_t i = 0; i < names_.size(); ++i) {
    out.emplace_back("sig." + names_[i] + ".max", max_[i]);
  }
  return out;
}

}  // namespace dcdl::watch
