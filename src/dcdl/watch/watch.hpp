// dcdl::watch — online early-warning engine.
//
// RunWatch is the live-monitoring counterpart to dcdl::probe's recorder: it
// samples the network's health at a fixed cadence *while the run executes*
// and drives the declarative alert-rule engine (rules.hpp), so a wedging
// cascade raises structured alerts with lead time over the centralized
// DeadlockMonitor's dwell-confirmed verdict.
//
// Determinism contract (identical to RunProbe's): the sampler is an
// IntervalSampler scheduled on the scenario's externally visible simulator.
// In sharded runs that is the control simulator, whose events execute at
// window barriers after all device records up to the barrier have been
// replayed in globally merged order — so every signal read is a pure
// function of the scenario, and the alert stream (dcdl.alerts.v1) is
// byte-identical across --jobs x --shards for every shard count >= 1.
// Legacy --shards 0 keeps its own identity class, exactly like the trace
// and timeseries artifacts.
//
// Signals sampled per tick (fixed registry order — part of the
// dcdl.alerts.v1 layout):
//
//   queue_bytes     aggregate buffered bytes across the fabric
//   queue_growth    aggregate queue growth in bytes per millisecond over a
//                   trailing window (the cascade's fuel accumulating)
//   pause_frac      open Xoff spans / total switch ingress (port, class)
//                   queues — the network-wide pause-pressure score
//   sw_pause_max    open Xoff spans on the single worst switch
//   pause_age_us    age of the oldest still-open pause span (microseconds)
//   wedge_queues    queues in the instantaneous wait-for cycle
//                   (analysis::snapshot_wait_for; 0 = no cycle)
//   risk_max        OnlineRiskAssessor max_risk, re-assessed with measured
//                   flow rates every `risk_every` ticks (latched between)
//   risk_reachable  1 when the assessor's slack-link rule says some
//                   dependency cycle is lockable at the measured rates
//
// Hot-spot attribution: each tick identifies the "hot node" — the head of
// the wait-for cycle when one exists, else the switch holding the most
// open pause spans (ties to the lowest id) — and stamps it on alert edges.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "dcdl/analysis/risk.hpp"
#include "dcdl/common/units.hpp"
#include "dcdl/device/network.hpp"
#include "dcdl/probe/probe.hpp"
#include "dcdl/traffic/flow.hpp"
#include "dcdl/watch/rules.hpp"

namespace dcdl::watch {

struct WatchOptions {
  /// Sampling cadence; ticks fire at start + k * interval.
  Time interval = Time{100'000'000};  // 100 us
  /// Re-assess deadlock risk (OnlineRiskAssessor over measured rates)
  /// every this many ticks; 0 disables the risk signals (they stay 0).
  int risk_every = 10;
  /// Trailing window (ticks) for the queue_growth slope.
  int slope_window = 8;
  /// Alert rules; empty = default_rules().
  std::vector<AlertRule> rules;
  /// Retained alert edges (overflow counted, not stored).
  std::size_t max_events = 4096;
};

class RunWatch {
 public:
  /// Chains a pause observer onto `net`'s trace hooks; the watcher must
  /// outlive the network's dispatches. Construct after the network, before
  /// the run. `flows` feeds the risk re-assessment (may be empty — risk
  /// signals then stay 0).
  RunWatch(Network& net, std::vector<FlowSpec> flows, WatchOptions opts = {});
  RunWatch(const RunWatch&) = delete;
  RunWatch& operator=(const RunWatch&) = delete;

  /// Schedules the sampler on `sim`: ticks at now + k*interval up to and
  /// including `until`.
  void start(Simulator& sim, Time until);

  /// Live observers, for status lines and log streaming. on_tick fires
  /// after every sample (signals and rule states updated); on_event fires
  /// at every emitted alert edge.
  void set_on_tick(std::function<void(Time, const RunWatch&)> fn) {
    on_tick_ = std::move(fn);
  }
  void set_on_event(std::function<void(const AlertEvent&)> fn) {
    on_event_ = std::move(fn);
  }

  const std::vector<std::string>& signal_names() const { return names_; }
  /// Last sampled values, indexed like signal_names().
  const std::vector<double>& signal_values() const { return values_; }
  /// Running per-signal maxima over the whole run.
  const std::vector<double>& signal_max() const { return max_; }
  const RuleEngine& engine() const { return *engine_; }

  Time interval() const { return opts_.interval; }
  Time start_time() const { return start_; }
  std::uint64_t ticks() const { return ticks_; }
  /// Hot-spot node at the last tick (-1 = none).
  std::int64_t hot_node() const { return hot_node_; }

  std::optional<Time> first_fire(Severity s) const {
    return engine_->first_fire(s);
  }

  /// Deterministic scalar digest for campaign records: tick count, emitted
  /// fire counts by severity, first-fire times, dedup/overflow counters,
  /// per-rule fire counts, and per-signal maxima.
  std::vector<std::pair<std::string, double>> summary() const;

 private:
  void tick(Time t);

  Network& net_;
  std::vector<FlowSpec> flows_;
  WatchOptions opts_;

  std::vector<std::string> names_;
  std::vector<double> values_;
  std::vector<double> max_;
  std::unique_ptr<RuleEngine> engine_;

  std::unique_ptr<probe::IntervalSampler> sampler_;
  Time start_ = Time::zero();
  std::uint64_t ticks_ = 0;
  std::int64_t hot_node_ = -1;

  std::function<void(Time, const RunWatch&)> on_tick_;
  std::function<void(const AlertEvent&)> on_event_;

  // Pause tracking (chained pfc_state observer).
  std::unordered_map<std::uint64_t, Time> open_xoff_;
  std::vector<std::int64_t> node_open_;  ///< open spans per node
  std::int64_t total_switch_queues_ = 0;

  // queue_growth trailing window: (time, queue_bytes) ring.
  std::vector<std::pair<Time, double>> slope_ring_;
  std::size_t slope_next_ = 0;

  // Risk re-assessment state.
  std::unique_ptr<analysis::OnlineRiskAssessor> risk_;
  std::vector<std::int64_t> prev_sent_;
  Time prev_measure_at_ = Time::zero();
  double risk_max_latched_ = 0;
  double risk_reachable_latched_ = 0;
};

}  // namespace dcdl::watch
