// Coverage of small public API surfaces: clear/reset paths, describe
// helpers, and accessor contracts.
#include <gtest/gtest.h>

#include "dcdl/dcdl.hpp"

namespace dcdl {
namespace {

using namespace dcdl::literals;
using namespace dcdl::topo;

TEST(ApiSurface, TopologyDescribeListsLinks) {
  Topology t;
  const NodeId a = t.add_switch("alpha");
  const NodeId h = t.add_host("beta");
  t.add_link(a, h, Rate::gbps(10), 2_us);
  const std::string desc = t.describe();
  EXPECT_NE(desc.find("alpha"), std::string::npos);
  EXPECT_NE(desc.find("beta"), std::string::npos);
  EXPECT_NE(desc.find("10.000Gbps"), std::string::npos);
  EXPECT_NE(desc.find("1 links"), std::string::npos);
}

TEST(ApiSurface, ClearIngressShaperReleasesHeldTraffic) {
  Simulator sim;
  const RingTopo line = make_line(2, 1);
  Topology topo = line.topo;
  Network net(sim, topo, NetConfig{});
  routing::install_shortest_paths(net);
  FlowSpec f;
  f.id = 1;
  f.src_host = line.hosts[0][0];
  f.dst_host = line.hosts[1][0];
  f.packet_bytes = 1000;
  net.host_at(f.src_host).add_flow(f);
  const NodeId s0 = line.switches[0];
  const PortId from_h = *topo.port_towards(s0, line.hosts[0][0]);
  net.switch_at(s0).set_ingress_shaper(from_h, Rate::gbps(1), 1000);
  sim.run_until(200_us);
  ASSERT_GT(net.switch_at(s0).shaper_held_bytes(from_h), 0);
  net.switch_at(s0).clear_ingress_shaper(from_h);
  EXPECT_EQ(net.switch_at(s0).shaper_held_bytes(from_h), 0);
  const auto before = net.host_at(f.dst_host).delivered_bytes(1);
  sim.run_until(400_us);
  // Unshaped now: ~40 Gbps instead of 1.
  EXPECT_GT(net.host_at(f.dst_host).delivered_bytes(1) - before, 800'000);
}

TEST(ApiSurface, ClearFlowShaperReleasesHeldTraffic) {
  Simulator sim;
  const RingTopo line = make_line(2, 1);
  Topology topo = line.topo;
  Network net(sim, topo, NetConfig{});
  routing::install_shortest_paths(net);
  FlowSpec f;
  f.id = 7;
  f.src_host = line.hosts[0][0];
  f.dst_host = line.hosts[1][0];
  f.packet_bytes = 1000;
  net.host_at(f.src_host).add_flow(f);
  const NodeId s0 = line.switches[0];
  net.switch_at(s0).set_flow_shaper(7, Rate::gbps(1), 1000);
  sim.run_until(200_us);
  net.switch_at(s0).clear_flow_shaper(7);
  const auto before = net.host_at(f.dst_host).delivered_bytes(7);
  sim.run_until(400_us);
  EXPECT_GT(net.host_at(f.dst_host).delivered_bytes(7) - before, 800'000);
}

TEST(ApiSurface, BdgVerticesAndEdgesAccessors) {
  scenarios::Scenario s =
      scenarios::make_four_switch(scenarios::FourSwitchParams{});
  const auto bdg = analysis::BufferDependencyGraph::build(*s.net, s.flows);
  EXPECT_GE(bdg.vertices().size(), 6u);  // 4 ring RX1 + 2 host ingresses
  std::size_t edge_count = 0;
  for (const auto& [from, tos] : bdg.edges()) edge_count += tos.size();
  EXPECT_EQ(edge_count, 6u);  // 4 cycle edges + 2 host-entry edges
}

TEST(ApiSurface, RouteTableIntrospection) {
  RouteTable rt;
  rt.set_flow_route(4, 2);
  rt.set_dst_ecmp(9, {0, 1});
  EXPECT_EQ(rt.flow_routes().size(), 1u);
  EXPECT_EQ(rt.dst_routes().size(), 1u);
  EXPECT_EQ(rt.flow_route(4), PortId{2});
  EXPECT_FALSE(rt.flow_route(5).has_value());
  rt.clear();
  EXPECT_TRUE(rt.flow_routes().empty());
  EXPECT_TRUE(rt.dst_routes().empty());
}

TEST(ApiSurface, DropReasonNames) {
  EXPECT_STREQ(to_string(DropReason::kTtlExpired), "ttl_expired");
  EXPECT_STREQ(to_string(DropReason::kNoRoute), "no_route");
  EXPECT_STREQ(to_string(DropReason::kBufferOverflow), "buffer_overflow");
  EXPECT_STREQ(to_string(DropReason::kWatchdogReset), "watchdog_reset");
}

TEST(ApiSurface, HostStopFlowIsSelective) {
  Simulator sim;
  const RingTopo line = make_line(2, 1);
  Topology topo = line.topo;
  Network net(sim, topo, NetConfig{});
  routing::install_shortest_paths(net);
  for (const FlowId id : {1u, 2u}) {
    FlowSpec f;
    f.id = id;
    f.src_host = line.hosts[0][0];
    f.dst_host = line.hosts[1][0];
    f.packet_bytes = 1000;
    net.host_at(f.src_host).add_flow(
        f, std::make_unique<TokenBucketPacer>(Rate::gbps(2), 1000));
  }
  sim.run_until(100_us);
  net.host_at(line.hosts[0][0]).stop_flow(1);
  const auto s1 = net.host_at(line.hosts[0][0]).sent_packets(1);
  sim.run_until(300_us);
  EXPECT_EQ(net.host_at(line.hosts[0][0]).sent_packets(1), s1);
  EXPECT_GT(net.host_at(line.hosts[0][0]).sent_packets(2),
            net.host_at(line.hosts[0][0]).sent_packets(1));
}

}  // namespace
}  // namespace dcdl
