// BCube with relaying servers: structure, routability through server NICs,
// and the paper's claim that such server-centric topologies carry no
// deadlock-free guarantee under their native (shortest-path) routing.
#include <gtest/gtest.h>

#include "dcdl/analysis/bdg.hpp"
#include "dcdl/device/host.hpp"
#include "dcdl/device/switch.hpp"
#include "dcdl/routing/compute.hpp"
#include "dcdl/topo/generators.hpp"

namespace dcdl::topo {
namespace {

using namespace dcdl::literals;

TEST(BCubeRelay, StructureCounts) {
  const BCubeRelayTopo bc = make_bcube_relay(4, 1);
  EXPECT_EQ(bc.servers.size(), 16u);
  EXPECT_EQ(bc.hosts.size(), 16u);
  EXPECT_EQ(bc.level_switches.size(), 2u);
  EXPECT_EQ(bc.level_switches[0].size(), 4u);
  // Each server NIC: k+1 fabric ports + 1 host port.
  for (const NodeId nic : bc.servers) {
    EXPECT_EQ(bc.topo.degree(nic), 3u);
  }
  for (const auto& level : bc.level_switches) {
    for (const NodeId sw : level) EXPECT_EQ(bc.topo.degree(sw), 4u);
  }
}

TEST(BCubeRelay, AllPairsRouteThroughServerRelays) {
  Simulator sim;
  const BCubeRelayTopo bc = make_bcube_relay(3, 1);
  Topology topo = bc.topo;
  Network net(sim, topo, NetConfig{});
  routing::install_shortest_paths(net);
  int max_hops = 0;
  for (const NodeId src : topo.hosts()) {
    for (const NodeId dst : topo.hosts()) {
      if (src == dst) continue;
      const auto path = routing::shortest_path(topo, src, dst);
      ASSERT_FALSE(path.empty());
      EXPECT_EQ(path.back(), dst);
      max_hops = std::max(max_hops, static_cast<int>(path.size()));
    }
  }
  // Correcting two digits: host-nic-sw-nic-sw-nic-host = 7 nodes.
  EXPECT_EQ(max_hops, 7);
}

TEST(BCubeRelay, TrafficActuallyRelaysThroughServers) {
  Simulator sim;
  const BCubeRelayTopo bc = make_bcube_relay(3, 1);
  Topology topo = bc.topo;
  Network net(sim, topo, NetConfig{});
  routing::install_shortest_paths(net);
  // Pick a two-digit-differing pair: servers 0 (digits 00) and 4 (digits
  // 11, base 3): the path must pass an intermediate server NIC.
  FlowSpec f;
  f.id = 1;
  f.src_host = bc.hosts[0];
  f.dst_host = bc.hosts[4];
  f.packet_bytes = 1000;
  net.host_at(f.src_host).add_flow(
      f, std::make_unique<TokenBucketPacer>(Rate::gbps(5), 1000));
  bool relayed = false;
  net.trace().tx_start = [&](Time, const Packet& pkt, NodeId node, PortId) {
    for (const NodeId nic : bc.servers) {
      if (node == nic && node != bc.servers[0] && node != bc.servers[4] &&
          pkt.flow == 1) {
        relayed = true;
      }
    }
  };
  sim.run_until(200_us);
  EXPECT_TRUE(relayed);
  EXPECT_GT(net.host_at(f.dst_host).delivered_packets(1), 0u);
}

TEST(BCubeRelay, ShortestPathsCarryCyclicDependencies) {
  // The paper (§2): BCube "do[es] not have deadlock-free guarantee".
  Simulator sim;
  const BCubeRelayTopo bc = make_bcube_relay(3, 1);
  Topology topo = bc.topo;
  Network net(sim, topo, NetConfig{});
  routing::install_shortest_paths(net);
  std::vector<FlowSpec> flows;
  FlowId id = 1;
  for (const NodeId src : topo.hosts()) {
    for (const NodeId dst : topo.hosts()) {
      if (src == dst) continue;
      FlowSpec f;
      f.id = id++;
      f.src_host = src;
      f.dst_host = dst;
      flows.push_back(f);
    }
  }
  EXPECT_FALSE(analysis::routing_deadlock_free(net, flows));
}

TEST(BCubeRelay, UpDownRestrictionRestoresTheGuarantee) {
  Simulator sim;
  const BCubeRelayTopo bc = make_bcube_relay(3, 1);
  Topology topo = bc.topo;
  Network net(sim, topo, NetConfig{});
  routing::install_up_down(net);
  std::vector<FlowSpec> flows;
  FlowId id = 1;
  for (const NodeId src : topo.hosts()) {
    for (const NodeId dst : topo.hosts()) {
      if (src == dst) continue;
      FlowSpec f;
      f.id = id++;
      f.src_host = src;
      f.dst_host = dst;
      flows.push_back(f);
    }
  }
  EXPECT_TRUE(analysis::routing_deadlock_free(net, flows));
}

}  // namespace
}  // namespace dcdl::topo
