// Buffer dependency graph analysis — the paper's necessary condition.
#include <gtest/gtest.h>

#include "dcdl/analysis/bdg.hpp"
#include "dcdl/device/switch.hpp"
#include "dcdl/mitigation/class_policy.hpp"
#include "dcdl/routing/compute.hpp"
#include "dcdl/scenarios/scenario.hpp"
#include "dcdl/topo/generators.hpp"

namespace dcdl::analysis {
namespace {

using namespace dcdl::topo;
using namespace dcdl::scenarios;

TEST(Bdg, FourSwitchTwoFlowsHasCycle) {
  // The paper's central observation: Figure 3 has a cyclic buffer
  // dependency even though it never deadlocks.
  Scenario s = make_four_switch(FourSwitchParams{});
  const auto bdg = BufferDependencyGraph::build(*s.net, s.flows);
  EXPECT_TRUE(bdg.has_cycle());
  const auto cycles = bdg.cycles();
  ASSERT_EQ(cycles.size(), 1u);
  EXPECT_EQ(cycles[0].size(), 4u);  // RX1 of A -> B -> C -> D
  EXPECT_TRUE(bdg.looping_flows().empty());
}

TEST(Bdg, FourSwitchFlow3DoesNotChangeTheCycle) {
  // "One additional dependency ... is added, but it is outside the cyclic
  // buffer dependency. The cyclic buffer dependency itself remains
  // unchanged." (§3.2)
  FourSwitchParams p;
  p.with_flow3 = true;
  Scenario s = make_four_switch(p);
  const auto bdg = BufferDependencyGraph::build(*s.net, s.flows);
  EXPECT_TRUE(bdg.has_cycle());
  EXPECT_EQ(bdg.cycles().size(), 1u);
  EXPECT_EQ(bdg.cycles()[0].size(), 4u);
}

TEST(Bdg, RoutingLoopFlowIsFlaggedAsLooping) {
  Scenario s = make_routing_loop(RoutingLoopParams{});
  const auto bdg = BufferDependencyGraph::build(*s.net, s.flows);
  EXPECT_TRUE(bdg.has_cycle());
  ASSERT_EQ(bdg.looping_flows().size(), 1u);
  EXPECT_EQ(bdg.looping_flows()[0], FlowId{1});
}

TEST(Bdg, SingleSwitchTrafficHasNoCycle) {
  Simulator sim;
  Topology topo;
  const NodeId s = topo.add_switch();
  const NodeId a = topo.add_host();
  const NodeId b = topo.add_host();
  topo.add_link(s, a);
  topo.add_link(s, b);
  Network net(sim, topo, NetConfig{});
  dcdl::routing::install_shortest_paths(net);
  FlowSpec f;
  f.id = 1;
  f.src_host = a;
  f.dst_host = b;
  EXPECT_TRUE(routing_deadlock_free(net, {f}));
}

TEST(Bdg, FatTreeShortestPathsAreDeadlockFree) {
  Simulator sim;
  const FatTreeTopo ft = make_fat_tree(4);
  Topology topo = ft.topo;
  Network net(sim, topo, NetConfig{});
  dcdl::routing::install_shortest_paths(net);
  std::vector<FlowSpec> flows;
  const int n = static_cast<int>(ft.all_hosts.size());
  for (int i = 0; i < n; ++i) {
    FlowSpec f;
    f.id = static_cast<FlowId>(i + 1);
    f.src_host = ft.all_hosts[static_cast<std::size_t>(i)];
    f.dst_host = ft.all_hosts[static_cast<std::size_t>((i + 5) % n)];
    flows.push_back(f);
  }
  EXPECT_TRUE(routing_deadlock_free(net, flows));
}

std::vector<FlowSpec> all_pairs(const std::vector<NodeId>& hosts) {
  std::vector<FlowSpec> flows;
  FlowId id = 1;
  for (const NodeId src : hosts) {
    for (const NodeId dst : hosts) {
      if (src == dst) continue;
      FlowSpec f;
      f.id = id++;
      f.src_host = src;
      f.dst_host = dst;
      flows.push_back(f);
    }
  }
  return flows;
}

TEST(Bdg, JellyfishShortestPathsHaveCyclesButUpDownDoesNot) {
  // The paper's baseline cost argument: unrestricted shortest paths on a
  // non-tree topology carry cyclic buffer dependencies; up*/down* removes
  // them by restricting paths.
  const JellyfishTopo j = make_jellyfish(12, 4, 1, /*seed=*/4);
  {
    Simulator sim;
    Topology topo = j.topo;
    Network net(sim, topo, NetConfig{});
    dcdl::routing::install_shortest_paths(net);
    EXPECT_FALSE(routing_deadlock_free(net, all_pairs(topo.hosts())));
  }
  {
    Simulator sim;
    Topology topo = j.topo;
    Network net(sim, topo, NetConfig{});
    dcdl::routing::install_up_down(net);
    EXPECT_TRUE(routing_deadlock_free(net, all_pairs(topo.hosts())));
  }
}

TEST(Bdg, HopClassesBreakTheRingCycle) {
  // Structured buffer pool: with classes > path hop count, the dependency
  // graph is acyclic even on the deadlocking ring.
  RingDeadlockParams p;
  p.num_classes = 4;  // paths use 3 switches -> 2 inter-switch hops
  p.hop_classes = true;
  Scenario s = make_ring_deadlock(p);
  const auto bdg = BufferDependencyGraph::build(*s.net, s.flows);
  EXPECT_FALSE(bdg.has_cycle());
}

TEST(Bdg, TooFewHopClassesLeaveACycle) {
  RingDeadlockParams p;
  p.num_classes = 1;
  p.hop_classes = true;  // everything clamps to class 0
  Scenario s = make_ring_deadlock(p);
  EXPECT_TRUE(BufferDependencyGraph::build(*s.net, s.flows).has_cycle());
}

TEST(Bdg, TtlClassesBreakLoopCycleWhenBandIsOne) {
  // With band 1 and enough classes, every hop of the looping walk lives in
  // its own class, so the per-class dependency cannot close a cycle until
  // classes clamp.
  RoutingLoopParams p;
  p.ttl = 6;
  p.num_classes = 8;
  p.ttl_class_band = 1;
  Scenario s = make_routing_loop(p);
  const auto bdg = BufferDependencyGraph::build(*s.net, s.flows);
  EXPECT_FALSE(bdg.has_cycle());
}

TEST(Bdg, DescribeMentionsCycleCount) {
  Scenario s = make_four_switch(FourSwitchParams{});
  const auto bdg = BufferDependencyGraph::build(*s.net, s.flows);
  const std::string desc = bdg.describe(*s.net);
  EXPECT_NE(desc.find("cycles: 1"), std::string::npos);
}

}  // namespace
}  // namespace dcdl::analysis
