// BGP-like path-vector substrate: convergence, failure re-routing, and
// transient behaviour — the paper's §1 deadlock trigger.
#include <gtest/gtest.h>

#include "dcdl/device/switch.hpp"
#include "dcdl/routing/bgp.hpp"
#include "dcdl/routing/compute.hpp"
#include "dcdl/topo/generators.hpp"

namespace dcdl::routing {
namespace {

using namespace dcdl::literals;
using namespace dcdl::topo;

// Walks the dst-based tables from src host; returns true if dst reached.
bool reaches(const Network& net, NodeId src, NodeId dst) {
  NodeId cur = net.topo().peer(src, 0).peer_node;
  for (int i = 0; i < 64; ++i) {
    if (cur == dst) return true;
    if (!net.topo().is_switch(cur)) return false;
    const auto eg = net.switch_at(cur).routes().lookup(0, dst);
    if (!eg) return false;
    cur = net.topo().peer(cur, *eg).peer_node;
  }
  return false;
}

TEST(Bgp, ConvergesOnLine) {
  Simulator sim;
  const RingTopo line = make_line(4, 1);
  Topology topo = line.topo;
  Network net(sim, topo, NetConfig{});
  BgpFabric bgp(net, BgpFabric::Params{});
  bgp.start();
  sim.run_until(100_ms);
  EXPECT_TRUE(bgp.converged());
  EXPECT_GT(bgp.messages_sent(), 0u);
  for (const NodeId src : topo.hosts()) {
    for (const NodeId dst : topo.hosts()) {
      if (src != dst) EXPECT_TRUE(reaches(net, src, dst));
    }
  }
}

TEST(Bgp, ConvergesOnFatTree) {
  Simulator sim;
  const FatTreeTopo ft = make_fat_tree(4);
  Topology topo = ft.topo;
  Network net(sim, topo, NetConfig{});
  BgpFabric bgp(net, BgpFabric::Params{});
  bgp.start();
  sim.run_until(500_ms);
  ASSERT_TRUE(bgp.converged());
  for (const NodeId src : topo.hosts()) {
    for (const NodeId dst : topo.hosts()) {
      if (src != dst) {
        EXPECT_TRUE(reaches(net, src, dst))
            << topo.node(src).name << "->" << topo.node(dst).name;
      }
    }
  }
}

TEST(Bgp, ConvergedRoutesAreLoopFree) {
  Simulator sim;
  const FatTreeTopo ft = make_fat_tree(4);
  Topology topo = ft.topo;
  Network net(sim, topo, NetConfig{});
  BgpFabric bgp(net, BgpFabric::Params{});
  bgp.start();
  sim.run_until(500_ms);
  for (const NodeId dst : topo.hosts()) {
    EXPECT_FALSE(find_forwarding_loop(net, dst).has_value());
  }
}

TEST(Bgp, ReRoutesAroundLinkFailure) {
  Simulator sim;
  const RingTopo ring = make_ring(4, 1);
  Topology topo = ring.topo;
  Network net(sim, topo, NetConfig{});
  BgpFabric bgp(net, BgpFabric::Params{});
  bgp.start();
  sim.run_until(100_ms);
  ASSERT_TRUE(reaches(net, ring.hosts[0][0], ring.hosts[1][0]));
  // Fail the direct S0-S1 link; traffic must re-route the long way.
  const auto port = topo.port_towards(ring.switches[0], ring.switches[1]);
  ASSERT_TRUE(port.has_value());
  const std::uint32_t link = topo.peer(ring.switches[0], *port).link;
  sim.schedule_at(sim.now(), [&] { bgp.fail_link(link); });
  sim.run_until(sim.now() + 200_ms);
  ASSERT_TRUE(bgp.converged());
  EXPECT_TRUE(reaches(net, ring.hosts[0][0], ring.hosts[1][0]));
  // The new path cannot use the failed link: S0's next hop for h1 must be
  // S3 (port toward switches[3]).
  const auto eg =
      net.switch_at(ring.switches[0]).routes().lookup(0, ring.hosts[1][0]);
  ASSERT_TRUE(eg.has_value());
  EXPECT_EQ(topo.peer(ring.switches[0], *eg).peer_node, ring.switches[3]);
}

TEST(Bgp, RestoreLinkRecoversShortPaths) {
  Simulator sim;
  const RingTopo ring = make_ring(4, 1);
  Topology topo = ring.topo;
  Network net(sim, topo, NetConfig{});
  BgpFabric bgp(net, BgpFabric::Params{});
  bgp.start();
  sim.run_until(100_ms);
  const auto port = topo.port_towards(ring.switches[0], ring.switches[1]);
  const std::uint32_t link = topo.peer(ring.switches[0], *port).link;
  bgp.fail_link(link);
  sim.run_until(sim.now() + 200_ms);
  bgp.restore_link(link);
  sim.run_until(sim.now() + 200_ms);
  ASSERT_TRUE(bgp.converged());
  const auto eg =
      net.switch_at(ring.switches[0]).routes().lookup(0, ring.hosts[1][0]);
  ASSERT_TRUE(eg.has_value());
  EXPECT_EQ(topo.peer(ring.switches[0], *eg).peer_node, ring.switches[1]);
}

TEST(Bgp, UnreachableAfterPartition) {
  Simulator sim;
  const RingTopo line = make_line(2, 1);
  Topology topo = line.topo;
  Network net(sim, topo, NetConfig{});
  BgpFabric bgp(net, BgpFabric::Params{});
  bgp.start();
  sim.run_until(100_ms);
  ASSERT_TRUE(reaches(net, line.hosts[0][0], line.hosts[1][0]));
  const auto port = topo.port_towards(line.switches[0], line.switches[1]);
  const std::uint32_t link = topo.peer(line.switches[0], *port).link;
  bgp.fail_link(link);
  sim.run_until(sim.now() + 200_ms);
  EXPECT_FALSE(reaches(net, line.hosts[0][0], line.hosts[1][0]));
}

TEST(Bgp, SurvivesSequentialFailuresOnFatTree) {
  // Fail three fabric links one after another; after each convergence the
  // surviving topology must stay fully reachable and loop-free.
  Simulator sim;
  const FatTreeTopo ft = make_fat_tree(4);
  Topology topo = ft.topo;
  Network net(sim, topo, NetConfig{});
  BgpFabric bgp(net, BgpFabric::Params{});
  bgp.start();
  sim.run_until(500_ms);
  ASSERT_TRUE(bgp.converged());

  // Fail: one core-agg link, one agg-edge link, one more core-agg link —
  // chosen so no host loses its only path in a k=4 fat tree.
  std::vector<std::uint32_t> victims;
  victims.push_back(topo.peer(ft.core[0], 0).link);
  victims.push_back(
      topo.peer(ft.agg[0][0], *topo.port_towards(ft.agg[0][0], ft.edge[0][0]))
          .link);
  victims.push_back(topo.peer(ft.core[3], 1).link);
  for (const std::uint32_t link : victims) {
    bgp.fail_link(link);
    sim.run_until(sim.now() + 500_ms);
    ASSERT_TRUE(bgp.converged());
    for (const NodeId src : topo.hosts()) {
      for (const NodeId dst : topo.hosts()) {
        if (src != dst) {
          EXPECT_TRUE(reaches(net, src, dst))
              << topo.node(src).name << "->" << topo.node(dst).name;
        }
      }
    }
    for (const NodeId dst : topo.hosts()) {
      EXPECT_FALSE(find_forwarding_loop(net, dst).has_value());
    }
  }
}

TEST(Bgp, RestoreAfterMultipleFailuresHealsFully) {
  Simulator sim;
  const FatTreeTopo ft = make_fat_tree(4);
  Topology topo = ft.topo;
  Network net(sim, topo, NetConfig{});
  BgpFabric bgp(net, BgpFabric::Params{});
  bgp.start();
  sim.run_until(500_ms);
  const std::uint32_t l1 = topo.peer(ft.core[0], 0).link;
  const std::uint32_t l2 = topo.peer(ft.core[1], 2).link;
  bgp.fail_link(l1);
  bgp.fail_link(l2);
  sim.run_until(sim.now() + 500_ms);
  bgp.restore_link(l1);
  bgp.restore_link(l2);
  sim.run_until(sim.now() + 500_ms);
  ASSERT_TRUE(bgp.converged());
  for (const NodeId src : topo.hosts()) {
    for (const NodeId dst : topo.hosts()) {
      if (src != dst) ASSERT_TRUE(reaches(net, src, dst));
    }
  }
}

TEST(Bgp, WithdrawalsPropagate) {
  // Fail a host's access link: every switch must eventually drop the dst.
  Simulator sim;
  const RingTopo line = make_line(3, 1);
  Topology topo = line.topo;
  Network net(sim, topo, NetConfig{});
  BgpFabric bgp(net, BgpFabric::Params{});
  bgp.start();
  sim.run_until(100_ms);
  const NodeId victim = line.hosts[2][0];
  const std::uint32_t link = topo.peer(victim, 0).link;
  bgp.fail_link(link);
  sim.run_until(sim.now() + 300_ms);
  ASSERT_TRUE(bgp.converged());
  for (const NodeId sw : topo.switches()) {
    EXPECT_FALSE(net.switch_at(sw).routes().lookup(0, victim).has_value())
        << topo.node(sw).name;
  }
}

}  // namespace
}  // namespace dcdl::routing
