// Boundary-state model (paper §3.1, Table 1, Equations 1-3).
#include <gtest/gtest.h>

#include "dcdl/analysis/boundary.hpp"

namespace dcdl::analysis {
namespace {

TEST(Boundary, PaperTestbedNumbers) {
  // B = 40 Gbps, n = 2, TTL = 16 -> threshold 5 Gbps (§3.1).
  const Rate thr = BoundaryModel::deadlock_threshold(2, Rate::gbps(40), 16);
  EXPECT_EQ(thr.bps(), 5'000'000'000);
}

TEST(Boundary, ThresholdScalesWithLoopLength) {
  EXPECT_EQ(BoundaryModel::deadlock_threshold(4, Rate::gbps(40), 16).bps(),
            10'000'000'000);
}

TEST(Boundary, ThresholdScalesInverselyWithTtl) {
  EXPECT_EQ(BoundaryModel::deadlock_threshold(2, Rate::gbps(40), 32).bps(),
            2'500'000'000);
}

TEST(Boundary, PredictsDeadlockStrictlyAboveThreshold) {
  const Rate b = Rate::gbps(40);
  EXPECT_FALSE(BoundaryModel::predicts_deadlock(2, b, 16, Rate::gbps(5)));
  EXPECT_TRUE(BoundaryModel::predicts_deadlock(2, b, 16,
                                               Rate{5'000'000'001}));
  EXPECT_FALSE(BoundaryModel::predicts_deadlock(2, b, 16, Rate::gbps(4)));
}

TEST(Boundary, TtlAtMostLoopLengthIsUnconditionallySafe) {
  // §4: "in an N-hop routing loop, if the initial TTL is not larger than
  // N, no deadlock will form because the deadlock threshold for r is B".
  EXPECT_TRUE(BoundaryModel::ttl_unconditionally_safe(4, 4));
  EXPECT_TRUE(BoundaryModel::ttl_unconditionally_safe(4, 3));
  EXPECT_FALSE(BoundaryModel::ttl_unconditionally_safe(4, 5));
  // And consistently, the threshold equals/exceeds B there.
  EXPECT_GE(BoundaryModel::deadlock_threshold(4, Rate::gbps(40), 4).bps(),
            Rate::gbps(40).bps());
}

TEST(Boundary, MaxSafeTtlIsInverseOfThreshold) {
  // r = 5 Gbps, n = 2, B = 40 -> TTL <= 16 keeps r <= nB/TTL.
  EXPECT_EQ(BoundaryModel::max_safe_ttl(2, Rate::gbps(40), Rate::gbps(5)), 16);
  EXPECT_EQ(BoundaryModel::max_safe_ttl(2, Rate::gbps(40), Rate::gbps(10)), 8);
  // Tiny rates saturate at the TTL field maximum.
  EXPECT_EQ(BoundaryModel::max_safe_ttl(2, Rate::gbps(40), Rate::mbps(1)),
            255);
  EXPECT_EQ(BoundaryModel::max_safe_ttl(2, Rate::gbps(40), Rate::zero()),
            255);
}

TEST(Boundary, SafeTtlIsConsistentWithPrediction) {
  for (const int n : {2, 3, 4, 8}) {
    for (const double r_gbps : {1.0, 2.5, 5.0, 20.0}) {
      const Rate r = Rate::gbps(r_gbps);
      const int ttl = BoundaryModel::max_safe_ttl(n, Rate::gbps(40), r);
      EXPECT_FALSE(BoundaryModel::predicts_deadlock(n, Rate::gbps(40), ttl, r))
          << "n=" << n << " r=" << r_gbps;
      if (ttl < 255) {
        EXPECT_TRUE(
            BoundaryModel::predicts_deadlock(n, Rate::gbps(40), ttl + 1, r))
            << "n=" << n << " r=" << r_gbps;
      }
    }
  }
}

}  // namespace
}  // namespace dcdl::analysis
