#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <stdexcept>

#include "dcdl/campaign/campaign.hpp"
#include "dcdl/common/contract.hpp"
#include "dcdl/scenarios/scenario.hpp"

namespace dcdl::campaign {
namespace {

using namespace dcdl::literals;

// ---------------------------------------------------------------- params

TEST(CampaignParam, ParseClassifiesScalars) {
  EXPECT_EQ(ParamValue::parse("17").kind(), ParamKind::kInt);
  EXPECT_EQ(ParamValue::parse("17").as_int(), 17);
  EXPECT_EQ(ParamValue::parse("2.5").kind(), ParamKind::kDouble);
  EXPECT_DOUBLE_EQ(ParamValue::parse("2.5").as_double(), 2.5);
  EXPECT_EQ(ParamValue::parse("1e9").kind(), ParamKind::kDouble);
  EXPECT_TRUE(ParamValue::parse("true").as_bool());
  EXPECT_FALSE(ParamValue::parse("false").as_bool());
  EXPECT_EQ(ParamValue::parse("tiered").kind(), ParamKind::kString);
  EXPECT_EQ(ParamValue::parse("tiered").as_string(), "tiered");
}

TEST(CampaignParam, ParseStripsUnitSuffix) {
  std::string unit;
  const ParamValue v = ParamValue::parse("8gbps", &unit);
  EXPECT_EQ(unit, "gbps");
  EXPECT_EQ(v.as_int(), 8);
  // "2.5us" keeps its fractional value.
  EXPECT_DOUBLE_EQ(ParamValue::parse("2.5us", &unit).as_double(), 2.5);
  EXPECT_EQ(unit, "us");
}

TEST(CampaignParam, NumericAccessorsCoerceAndStringsThrow) {
  EXPECT_DOUBLE_EQ(ParamValue::of_int(3).as_double(), 3.0);
  EXPECT_EQ(ParamValue::of_double(3.7).as_int(), 3);
  EXPECT_THROW(ParamValue::of_string("x").as_double(), CampaignError);
  EXPECT_THROW(ParamValue::of_int(1).as_string(), CampaignError);
}

// ----------------------------------------------------------------- sweep

TEST(CampaignSweep, ParseGridRangeAndList) {
  const std::vector<GridAxis> axes = parse_grid("inject=2..8gbps:7;ttl=8,16,32");
  ASSERT_EQ(axes.size(), 2u);
  EXPECT_EQ(axes[0].param, "inject");
  ASSERT_EQ(axes[0].values.size(), 7u);
  EXPECT_DOUBLE_EQ(axes[0].values.front().as_double(), 2.0);
  EXPECT_DOUBLE_EQ(axes[0].values.back().as_double(), 8.0);
  EXPECT_DOUBLE_EQ(axes[0].values[1].as_double(), 3.0);
  EXPECT_EQ(axes[1].param, "ttl");
  ASSERT_EQ(axes[1].values.size(), 3u);
  EXPECT_EQ(axes[1].values[1].as_int(), 16);
}

TEST(CampaignSweep, ParseGridRejectsMalformedInput) {
  EXPECT_THROW(parse_grid("inject"), CampaignError);
  EXPECT_THROW(parse_grid("inject=2..8:0"), CampaignError);
  EXPECT_THROW(parse_grid("=3"), CampaignError);
}

TEST(CampaignSweep, ExpandIsCartesianLastAxisFastest) {
  SweepSpec spec;
  spec.scenario = "routing_loop";
  spec.axes = {GridAxis{"ttl", {ParamValue::of_int(8), ParamValue::of_int(16)}},
               GridAxis{"inject",
                        {ParamValue::of_double(2), ParamValue::of_double(4),
                         ParamValue::of_double(6)}}};
  spec.seeds_per_cell = 2;
  const std::vector<RunSpec> runs = expand(spec);
  ASSERT_EQ(runs.size(), 12u);
  for (std::size_t i = 0; i < runs.size(); ++i) {
    EXPECT_EQ(runs[i].run_index, static_cast<int>(i));
    EXPECT_EQ(runs[i].cell_index, static_cast<int>(i / 2));
    EXPECT_EQ(runs[i].seed_index, static_cast<int>(i % 2));
    EXPECT_TRUE(runs[i].params.has("seed"));
  }
  // ttl varies slowest, inject fastest.
  EXPECT_EQ(runs[0].params.get_int("ttl", 0), 8);
  EXPECT_DOUBLE_EQ(runs[0].params.get_double("inject", 0), 2);
  EXPECT_DOUBLE_EQ(runs[2].params.get_double("inject", 0), 4);
  EXPECT_EQ(runs[6].params.get_int("ttl", 0), 16);
}

TEST(CampaignSweep, SeedStreamIsDeterministicAndSpread) {
  EXPECT_EQ(derive_seed(1, 0), derive_seed(1, 0));
  EXPECT_NE(derive_seed(1, 0), derive_seed(1, 1));
  EXPECT_NE(derive_seed(1, 0), derive_seed(2, 0));
}

// -------------------------------------------------------------- registry

TEST(CampaignSweep, FormatProgressGuardsRateAndEtaBeforeFirstRun) {
  // Before any run completes the rate/ETA are 0/0 — the line must show
  // placeholders, never an inf/nan extrapolation.
  const std::string initial = format_progress(0, 12, -1, "", 0.0);
  EXPECT_EQ(initial, "  0/12 run(s) done --.- run/s, eta --:--");
  EXPECT_EQ(initial.find("inf"), std::string::npos);
  EXPECT_EQ(initial.find("nan"), std::string::npos);

  // done > 0 with a stuck wall clock is guarded the same way.
  const std::string stuck = format_progress(3, 12, 2, "ok", 0.0);
  EXPECT_EQ(stuck, "  3/12 run(s) done (last: run 2 ok) --.- run/s, eta --:--");

  // Once real progress exists the observed rate and ETA appear.
  const std::string live = format_progress(6, 12, 5, "ok", 3.0);
  EXPECT_EQ(live, "  6/12 run(s) done (last: run 5 ok) 2.0 run/s, eta 3s");
}

TEST(CampaignRegistry, BuiltinsAreRegistered) {
  ScenarioRegistry reg;
  register_builtin_scenarios(reg);
  for (const char* name : {"routing_loop", "four_switch", "ring",
                           "transient_loop", "valley", "incast"}) {
    EXPECT_NE(reg.find(name), nullptr) << name;
  }
}

TEST(CampaignRegistry, RejectsUnknownScenarioAndParam) {
  ScenarioRegistry reg;
  register_builtin_scenarios(reg);
  EXPECT_THROW(reg.at("no_such_scenario"), CampaignError);
  ParamMap bad;
  bad.set("not_a_knob", ParamValue::of_int(1));
  EXPECT_THROW(reg.validate_params("routing_loop", bad), CampaignError);
  ParamMap good;
  good.set("inject", ParamValue::of_double(6));
  good.set("seed", ParamValue::of_int(7));  // sweep-injected, always allowed
  EXPECT_NO_THROW(reg.validate_params("routing_loop", good));
}

TEST(CampaignRegistry, DuplicateAddThrowsReplaceWins) {
  ScenarioRegistry reg;
  register_builtin_scenarios(reg);
  ScenarioDef dup;
  dup.name = "routing_loop";
  dup.make = [](const ParamMap&) { return scenarios::Scenario{}; };
  EXPECT_THROW(reg.add(dup), CampaignError);
  EXPECT_NO_THROW(reg.replace(dup));
}

// -------------------------------------------------------------- executor

SweepSpec small_loop_sweep() {
  SweepSpec spec;
  spec.scenario = "routing_loop";
  // One cell below the 5 Gbps threshold, one above -> both outcomes.
  spec.axes = {GridAxis{"inject", {ParamValue::of_double(4.5),
                                   ParamValue::of_double(6.5)}}};
  spec.seeds_per_cell = 2;
  spec.run_for = 2_ms;
  spec.drain_grace = 6_ms;
  return spec;
}

TEST(CampaignExecutorTest, ArtifactsAreByteIdenticalAcrossJobCounts) {
  ScenarioRegistry reg;
  register_builtin_scenarios(reg);
  const SweepSpec spec = small_loop_sweep();
  const std::vector<RunSpec> runs = expand(spec);

  ExecutorOptions serial;
  serial.jobs = 1;
  CampaignResult r1 = CampaignExecutor(reg, serial).run(runs, spec.root_seed);
  ExecutorOptions wide;
  wide.jobs = 8;
  CampaignResult r8 = CampaignExecutor(reg, wide).run(runs, spec.root_seed);

  ASSERT_EQ(r1.records.size(), 4u);
  EXPECT_EQ(r1.count(RunStatus::kOk), 4u);
  EXPECT_EQ(to_json(r1), to_json(r8));
  EXPECT_EQ(to_csv(r1), to_csv(r8));
  // Sanity on the physics riding along: above threshold deadlocks, below
  // does not.
  EXPECT_FALSE(r1.records[0].deadlocked);
  EXPECT_TRUE(r1.records[2].deadlocked);
}

TEST(CampaignExecutorTest, StandaloneRunReproducesCampaignRecord) {
  ScenarioRegistry reg;
  register_builtin_scenarios(reg);
  const SweepSpec spec = small_loop_sweep();
  const std::vector<RunSpec> runs = expand(spec);

  ExecutorOptions wide;
  wide.jobs = 4;
  const CampaignResult campaign =
      CampaignExecutor(reg, wide).run(runs, spec.root_seed);
  for (const RunSpec& one : runs) {
    const RunRecord standalone = execute_run(reg, one);
    EXPECT_EQ(run_to_json(standalone),
              run_to_json(campaign.records[static_cast<std::size_t>(
                  one.run_index)]))
        << "run " << one.run_index;
  }
}

TEST(CampaignExecutorTest, FactoryExceptionBecomesFailedRecord) {
  ScenarioRegistry reg;
  register_builtin_scenarios(reg);
  ScenarioDef bomb;
  bomb.name = "bomb";
  bomb.params = {{"inject", ParamKind::kDouble, "gbps", "unused"}};
  bomb.make = [](const ParamMap&) -> scenarios::Scenario {
    throw std::runtime_error("boom");
  };
  reg.add(std::move(bomb));

  SweepSpec spec = small_loop_sweep();
  std::vector<RunSpec> runs = expand(spec);
  runs[1].scenario = "bomb";  // one poisoned run amid healthy ones

  const CampaignResult result = CampaignExecutor(reg).run(runs, 1);
  EXPECT_EQ(result.count(RunStatus::kOk), 3u);
  EXPECT_EQ(result.count(RunStatus::kFailed), 1u);
  EXPECT_EQ(result.records[1].status, RunStatus::kFailed);
  EXPECT_EQ(result.records[1].error, "boom");
}

TEST(CampaignExecutorTest, ContractViolationBecomesFailedRecord) {
  ScenarioRegistry reg;
  ScenarioDef bad;
  bad.name = "contract_bomb";
  bad.make = [](const ParamMap& pm) -> scenarios::Scenario {
    DCDL_EXPECTS(pm.get_int("never_set", 0) == 1);
    return scenarios::Scenario{};
  };
  reg.add(std::move(bad));

  RunSpec one;
  one.scenario = "contract_bomb";
  const RunRecord rec = execute_run(reg, one);
  EXPECT_EQ(rec.status, RunStatus::kFailed);
  EXPECT_NE(rec.error.find("precondition"), std::string::npos) << rec.error;
}

TEST(CampaignExecutorTest, WallClockBudgetStopsSpinningRun) {
  ScenarioRegistry reg;
  register_builtin_scenarios(reg);
  ScenarioDef spinner;
  spinner.name = "spinner";
  spinner.make = [](const ParamMap&) {
    scenarios::RoutingLoopParams p;
    scenarios::Scenario s = scenarios::make_routing_loop(p);
    // A self-perpetuating 1 ns event chain: simulated time crawls, wall
    // time burns — the shape of a deadlock-and-spin run. Recursion via a
    // static member so no closure owns itself (a shared_ptr cycle here
    // leaks the chain when the budget guard abandons the run mid-flight).
    struct Spin {
      static void tick(Simulator* sim) {
        sim->schedule_in(1_ns, [sim] { tick(sim); });
      }
    };
    Simulator* sim = s.sim.get();
    sim->schedule_in(1_ns, [sim] { Spin::tick(sim); });
    return s;
  };
  reg.add(std::move(spinner));

  RunSpec one;
  one.scenario = "spinner";
  one.run_for = 50_ms;
  one.drain_grace = 1_ms;
  ExecutorOptions opts;
  opts.run_wall_budget_ms = 25;
  opts.guard_poll = Time{1000};  // poll every simulated ns
  const RunRecord rec = execute_run(reg, one, nullptr, opts);
  EXPECT_EQ(rec.status, RunStatus::kTimeout);
}

TEST(CampaignExecutorTest, CancelMarksRemainingRunsCancelled) {
  ScenarioRegistry reg;
  register_builtin_scenarios(reg);
  const SweepSpec spec = small_loop_sweep();
  ExecutorOptions opts;
  opts.jobs = 1;
  CampaignExecutor exec(reg, opts);
  exec.cancel();  // cancelled before start: every run is marked, none runs
  const CampaignResult result = exec.run(expand(spec), spec.root_seed);
  EXPECT_EQ(result.count(RunStatus::kCancelled), 4u);
  for (const RunRecord& r : result.records) {
    EXPECT_EQ(r.scenario, "routing_loop");  // identity still recorded
  }
}

// ---------------------------------------------------------------- result

TEST(CampaignResultSink, JsonAndCsvCarrySchemaParamsAndMetrics) {
  ScenarioRegistry reg;
  register_builtin_scenarios(reg);
  SweepSpec spec = small_loop_sweep();
  spec.seeds_per_cell = 1;
  const CampaignResult result =
      CampaignExecutor(reg).run(expand(spec), spec.root_seed);

  const std::string json = to_json(result);
  EXPECT_NE(json.find("\"schema\":\"dcdl.campaign.v6\""), std::string::npos);
  EXPECT_NE(json.find("\"inject\":4.5"), std::string::npos);
  EXPECT_NE(json.find("\"r_threshold_gbps\":5"), std::string::npos);
  EXPECT_EQ(json.find("\"timing\""), std::string::npos) << "wall clock leaked";
  // v2: every ok run embeds its telemetry snapshot.
  EXPECT_NE(json.find("\"telemetry\":{"), std::string::npos);
  EXPECT_NE(json.find("\"net.tx_start_total\""), std::string::npos);
  EXPECT_NE(json.find("\"sim.events_executed\""), std::string::npos);

  WriteOptions timed;
  timed.include_timing = true;
  EXPECT_NE(to_json(result, timed).find("\"timing\""), std::string::npos);

  const std::string csv = to_csv(result);
  const std::string header = csv.substr(0, csv.find('\n'));
  EXPECT_NE(header.find("param.inject"), std::string::npos);
  EXPECT_NE(header.find("metric.r_threshold_gbps"), std::string::npos);
  EXPECT_NE(header.find("goodput_gbps"), std::string::npos);
  // v3: the dataplane columns are always present (pipeline off -> -1/0).
  EXPECT_NE(header.find("detection_latency_ns"), std::string::npos);
  EXPECT_NE(header.find("recovery_time_ns"), std::string::npos);
  EXPECT_NE(header.find("false_positive"), std::string::npos);
  EXPECT_NE(json.find("\"detection_latency_ns\":-1"), std::string::npos);
  EXPECT_NE(json.find("\"false_positive\":false"), std::string::npos);
  // v4: the hybrid-engine columns are always present (mode off -> "off"/0/0).
  EXPECT_NE(header.find("hybrid_mode"), std::string::npos);
  EXPECT_NE(header.find("zoom_events"), std::string::npos);
  EXPECT_NE(header.find("fluid_fraction"), std::string::npos);
  EXPECT_NE(json.find("\"hybrid_mode\":\"off\""), std::string::npos);
  EXPECT_NE(json.find("\"zoom_events\":0"), std::string::npos);
}

}  // namespace
}  // namespace dcdl::campaign
