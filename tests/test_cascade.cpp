// Pause-cascade attribution: origins vs propagated pauses, and the §4
// claim that threshold policies shrink cascade depth.
#include <gtest/gtest.h>

#include "dcdl/mitigation/thresholds.hpp"
#include "dcdl/routing/compute.hpp"
#include "dcdl/scenarios/scenario.hpp"
#include "dcdl/stats/cascade.hpp"
#include "dcdl/topo/generators.hpp"

namespace dcdl::stats {
namespace {

using namespace dcdl::literals;
using namespace dcdl::scenarios;
using namespace dcdl::topo;

TEST(Cascade, SingleBottleneckPausesAreAllOrigins) {
  // One congested switch pausing its hosts: no switch-to-switch
  // propagation, every pause is depth 0.
  Scenario s = make_incast(IncastParams{});
  PauseEventLog log(*s.net);
  s.sim->run_until(5_ms);
  const CascadeStats stats = analyze_pause_cascade(*s.net, log);
  ASSERT_GT(stats.total_pauses, 0u);
  // The receiving leaf pauses the spines, which pause the sending leaves,
  // which pause the hosts: depth reaches 2 in a 2-tier fabric but no more.
  EXPECT_LE(stats.max_depth, 2);
}

TEST(Cascade, DeadlockCycleShowsDeepPropagation) {
  FourSwitchParams p;
  p.with_flow3 = true;
  Scenario s = make_four_switch(p);
  PauseEventLog log(*s.net);
  s.sim->run_until(20_ms);
  const CascadeStats stats = analyze_pause_cascade(*s.net, log);
  EXPECT_GE(stats.max_depth, 2)
      << "the pause chain must propagate around the ring";
  EXPECT_GT(stats.mean_depth, 0.0);
}

TEST(Cascade, CountsSumToTotal) {
  Scenario s = make_four_switch(FourSwitchParams{});
  PauseEventLog log(*s.net);
  s.sim->run_until(10_ms);
  const CascadeStats stats = analyze_pause_cascade(*s.net, log);
  std::uint64_t sum = 0;
  for (const auto c : stats.count_by_depth) sum += c;
  EXPECT_EQ(sum, stats.total_pauses);
}

TEST(Cascade, BurstAbsorbingThresholdsShrinkTheCascade) {
  // §4: larger upstream thresholds absorb bursts instead of propagating
  // pauses. Mean cascade depth must drop under the tiered policy.
  double depth_uniform = 0, depth_tiered = 0;
  for (const bool tiered : {false, true}) {
    Simulator sim;
    const LeafSpineTopo ls = make_leaf_spine(3, 2, 4);
    Topology topo = ls.topo;
    Network net(sim, topo, NetConfig{});
    routing::install_shortest_paths(net);
    if (tiered) {
      mitigation::apply_tier_thresholds(
          net, {8 * 1024, 8 * 1024, 160 * 1024}, 2000);
    } else {
      mitigation::apply_tier_thresholds(
          net, {8 * 1024, 8 * 1024, 8 * 1024}, 2000);
    }
    int made = 0;
    for (int leaf = 1; leaf < 3; ++leaf) {
      for (int h = 0; h < 3; ++h) {
        FlowSpec f;
        f.id = static_cast<FlowId>(++made);
        f.src_host = ls.hosts[static_cast<std::size_t>(leaf)]
                             [static_cast<std::size_t>(h)];
        f.dst_host = ls.hosts[0][0];
        f.packet_bytes = 1000;
        net.host_at(f.src_host).add_flow(
            f, std::make_unique<OnOffPacer>(10_us, 50_us, 31 * made, true));
      }
    }
    PauseEventLog log(net);
    sim.run_until(10_ms);
    const CascadeStats stats = analyze_pause_cascade(net, log);
    (tiered ? depth_tiered : depth_uniform) = stats.mean_depth;
  }
  EXPECT_LT(depth_tiered, depth_uniform);
}

}  // namespace
}  // namespace dcdl::stats
